package geosir

import (
	"math"
	"testing"
)

func square(x, y, side float64) Shape {
	return NewPolygon(Pt(x, y), Pt(x+side, y), Pt(x+side, y+side), Pt(x, y+side))
}

func triangle(x, y, s float64) Shape {
	return NewPolygon(Pt(x, y), Pt(x+s, y), Pt(x, y+2*s))
}

func lshape(x, y, s float64) Shape {
	return NewPolygon(
		Pt(x, y), Pt(x+2*s, y), Pt(x+2*s, y+s), Pt(x+s, y+s),
		Pt(x+s, y+3*s), Pt(x, y+3*s))
}

func buildEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New(DefaultOptions())
	images := [][]Shape{
		{square(0, 0, 20), triangle(5, 5, 3)},
		{square(0, 0, 10), square(8, 8, 6)},
		{triangle(0, 0, 4)},
		{lshape(0, 0, 2)},
		{square(0, 0, 20), lshape(3, 3, 1.5)},
	}
	for id, shapes := range images {
		if err := eng.AddImage(id, shapes); err != nil {
			t.Fatalf("AddImage(%d): %v", id, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineLifecycle(t *testing.T) {
	eng := New(DefaultOptions())
	if _, _, err := eng.FindSimilar(square(0, 0, 1), 1); err == nil {
		t.Error("unfrozen FindSimilar should fail")
	}
	if _, _, err := eng.Query("similar(q)", nil); err == nil {
		t.Error("unfrozen Query should fail")
	}
	eng = buildEngine(t)
	if err := eng.Freeze(); err != nil {
		t.Errorf("double freeze: %v", err)
	}
	if eng.NumImages() != 5 || eng.NumShapes() != 8 {
		t.Errorf("counts: %d images %d shapes", eng.NumImages(), eng.NumShapes())
	}
	if eng.NumEntries() < eng.NumShapes() {
		t.Error("entries should outnumber shapes (multiple copies)")
	}
	if eng.HashTable().Len() != eng.NumShapes() {
		t.Errorf("hash table has %d of %d shapes", eng.HashTable().Len(), eng.NumShapes())
	}
}

func TestFindSimilarExact(t *testing.T) {
	eng := buildEngine(t)
	// A rotated, scaled L-shape must hit the L-shape images.
	q := lshape(0, 0, 3).Transform(Similarity(1.8, 0.7, Pt(50, 50)))
	ms, stats, err := eng.FindSimilar(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d", len(ms))
	}
	if ms[0].Distance > 1e-6 {
		t.Errorf("best distance = %v", ms[0].Distance)
	}
	gotImages := map[int]bool{ms[0].ImageID: true, ms[1].ImageID: true}
	if !gotImages[3] || !gotImages[4] {
		t.Errorf("expected images 3 and 4, got %v", gotImages)
	}
	if stats.UsedHashing {
		t.Error("exact search should not fall back")
	}
	if ms[0].Approximate {
		t.Error("exact result flagged approximate")
	}
}

func TestFindSimilarFallsBackToHashing(t *testing.T) {
	eng := buildEngine(t)
	// A very dissimilar query: a 12-armed star. The fattening search will
	// not find anything within τ, so hashing must kick in.
	var pts []Point
	for i := 0; i < 24; i++ {
		r := 1.0
		if i%2 == 1 {
			r = 0.35
		}
		a := 2 * math.Pi * float64(i) / 24
		pts = append(pts, Pt(r*math.Cos(a), r*math.Sin(a)))
	}
	star := NewPolygon(pts...)
	ms, stats, err := eng.FindSimilar(star, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.UsedHashing {
		t.Errorf("expected hashing fallback (best distance would be large)")
	}
	if len(ms) == 0 {
		t.Fatal("fallback returned nothing")
	}
	for _, m := range ms {
		if !m.Approximate {
			t.Error("fallback results must be flagged approximate")
		}
	}
}

func TestFindApproximateDirect(t *testing.T) {
	eng := buildEngine(t)
	ms, err := eng.FindApproximate(square(0, 0, 3), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no approximate matches")
	}
	// The best hash match for a square must be a square (distance ~0).
	if ms[0].Distance > 0.01 {
		t.Errorf("best approximate distance = %v", ms[0].Distance)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Distance > ms[i].Distance {
			t.Error("approximate matches unsorted")
		}
	}
	if _, err := eng.FindApproximate(square(0, 0, 1), 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestEngineQuery(t *testing.T) {
	eng := buildEngine(t)
	binds := map[string]Shape{
		"sq":  square(0, 0, 5),
		"tri": triangle(0, 0, 5),
		"ell": lshape(0, 0, 2),
	}
	// Images with a square containing a triangle: image 0.
	ids, plan, err := eng.Query("contain(sq, tri, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 0 {
		t.Errorf("contain = %v, want [0]", ids)
	}
	if plan == "" {
		t.Error("empty plan")
	}
	// The paper's example form: similar(Q1) ∩ COMPLEMENT(overlap(Q2,Q3,any)).
	ids, _, err = eng.Query("similar(ell) AND NOT overlap(sq, sq, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 3 || ids[1] != 4 {
		t.Errorf("composite = %v, want [3 4]", ids)
	}
	// Error paths.
	if _, _, err := eng.Query("similar(unbound)", binds); err == nil {
		t.Error("unbound name should fail")
	}
	if _, _, err := eng.Query("][", binds); err == nil {
		t.Error("garbage should fail")
	}
}

func TestAddImageValidation(t *testing.T) {
	eng := New(DefaultOptions())
	bow := NewPolygon(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2))
	if err := eng.AddImage(0, []Shape{bow}); err == nil {
		t.Error("self-intersecting shape should be rejected")
	}
}

func TestFindBySketch(t *testing.T) {
	eng := buildEngine(t)
	// A two-shape sketch: square + triangle. Only image 0 has both.
	sketch := []Shape{square(0, 0, 6), triangle(0, 0, 4)}
	ms, err := eng.FindBySketch(sketch, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no sketch matches")
	}
	if ms[0].ImageID != 0 {
		t.Errorf("best sketch match = image %d, want 0 (has both shapes)", ms[0].ImageID)
	}
	if len(ms[0].PerShape) != 2 {
		t.Errorf("per-shape scores = %v", ms[0].PerShape)
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Score > ms[i].Score {
			t.Error("sketch matches unsorted")
		}
	}
	// Error paths.
	if _, err := eng.FindBySketch(nil, 1); err == nil {
		t.Error("empty sketch should fail")
	}
	if _, err := eng.FindBySketch(sketch, 0); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := eng.FindBySketch([]Shape{NewPolyline(Pt(0, 0))}, 1); err == nil {
		t.Error("invalid sketch shape should fail")
	}
	unfrozen := New(DefaultOptions())
	if _, err := unfrozen.FindBySketch(sketch, 1); err == nil {
		t.Error("unfrozen should fail")
	}
}

func TestFindBySketchSingleShapeAgreesWithFindSimilar(t *testing.T) {
	eng := buildEngine(t)
	q := lshape(0, 0, 2)
	sk, err := eng.FindBySketch([]Shape{q}, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs, _, err := eng.FindSimilar(q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sk) == 0 || len(fs) == 0 {
		t.Fatal("empty results")
	}
	if sk[0].ImageID != fs[0].ImageID {
		t.Errorf("sketch image %d != similar image %d", sk[0].ImageID, fs[0].ImageID)
	}
	if !almostEqF(sk[0].Score, fs[0].Distance, 1e-9) {
		t.Errorf("scores differ: %v vs %v", sk[0].Score, fs[0].Distance)
	}
}

func almostEqF(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
