// Topological queries (§5): find images by how their shapes relate —
// containment, overlap, disjointness, diameter angles — combined with
// union, intersection, and complement, and inspect the selectivity-driven
// execution plans.
package main

import (
	"fmt"
	"log"

	"repro"
)

func sq(x, y, side float64) geosir.Shape {
	return geosir.NewPolygon(
		geosir.Pt(x, y), geosir.Pt(x+side, y),
		geosir.Pt(x+side, y+side), geosir.Pt(x, y+side))
}

func tri(x, y, s float64) geosir.Shape {
	return geosir.NewPolygon(geosir.Pt(x, y), geosir.Pt(x+s, y), geosir.Pt(x, y+2*s))
}

func main() {
	eng := geosir.New(geosir.DefaultOptions())

	// A little corpus of annotated scenes.
	scenes := []struct {
		desc   string
		shapes []geosir.Shape
	}{
		{"square containing a triangle", []geosir.Shape{sq(0, 0, 20), tri(5, 5, 3)}},
		{"two overlapping squares", []geosir.Shape{sq(0, 0, 10), sq(8, 8, 6)}},
		{"a lone triangle", []geosir.Shape{tri(0, 0, 4)}},
		{"square and triangle, apart", []geosir.Shape{sq(0, 0, 5), tri(20, 20, 3)}},
		{"square containing a square", []geosir.Shape{sq(0, 0, 20), sq(5, 5, 4)}},
		{"nested squares, inner rotated 45°", []geosir.Shape{
			sq(0, 0, 20),
			sq(-3, -3, 6).Transform(geosir.Similarity(1, 0.7853981633974483, geosir.Pt(10, 10))),
		}},
	}
	for id, sc := range scenes {
		if err := eng.AddImage(id, sc.shapes); err != nil {
			log.Fatalf("scene %d: %v", id, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		log.Fatal(err)
	}

	binds := map[string]geosir.Shape{
		"sq":  sq(0, 0, 7),
		"tri": tri(0, 0, 5),
	}

	queries := []string{
		"contain(sq, tri, any)",
		"contain(sq, sq, any)",
		"contain(sq, sq, 0)",                  // only axis-aligned nesting
		"contain(sq, sq, 0.7853981633974483)", // only the 45°-rotated nesting
		"overlap(sq, sq, any)",
		"disjoint(sq, tri, any)",
		"similar(tri) AND NOT contain(sq, tri, any)",
		"similar(sq) OR similar(tri)",
		"NOT (similar(tri) OR overlap(sq, sq, any))",
	}
	for _, q := range queries {
		ids, plan, err := eng.Query(q, binds)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		fmt.Printf("%-46s -> %v\n", q, ids)
		fmt.Printf("    plan: %s\n", plan)
		for _, id := range ids {
			fmt.Printf("      image %d: %s\n", id, scenes[id].desc)
		}
	}
}
