// Video retrieval (§7 future work): track object boundaries across
// frames with the geometric-similarity measure, then search the video by
// sketch — "find the clip segments where something shaped like this
// appears".
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/geom"
	"repro/internal/video"
)

func main() {
	tr := video.NewTracker(video.DefaultOptions())

	// A synthetic clip: a square drifts right while slowly rotating, and a
	// star enters at frame 6 moving down.
	const frames = 16
	for f := 0; f < frames; f++ {
		var shapes []geom.Poly
		sq := square(4).Transform(geom.Transform{
			S: 1, Theta: 0.05 * float64(f), T: geom.Pt(float64(f)*0.6, 0),
		})
		shapes = append(shapes, sq)
		if f >= 6 {
			st := star(5, 3, 1.4).Transform(geom.Transform{
				S: 1, T: geom.Pt(30, 20-0.5*float64(f)),
			})
			shapes = append(shapes, st)
		}
		if err := tr.Observe(shapes); err != nil {
			log.Fatalf("frame %d: %v", f, err)
		}
	}

	fmt.Printf("tracked %d objects over %d frames:\n", len(tr.Tracks()), frames)
	for _, t := range tr.Tracks() {
		fmt.Printf("  track %d: frames %d..%d (%d observations, closed=%v)\n",
			t.ID, t.First().Frame, t.Last().Frame, t.Len(), t.Closed())
	}

	// Query: a hand-drawn five-pointed star.
	sketch := star(5, 3.2, 1.5)
	ms, err := tr.FindTracks(sketch, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nquery: a five-pointed star sketch")
	for i, m := range ms {
		fmt.Printf("  #%d: track %d, best frame %d, distance %.4f\n",
			i+1, m.TrackID, m.Frame, m.Distance)
	}
	if len(ms) > 0 && ms[0].TrackID == 1 {
		fmt.Println("\nthe star sketch found the star's track, entering at frame 6 ✓")
	}
}

func square(side float64) geom.Poly {
	return geom.NewPolygon(
		geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side))
}

func star(points int, outer, inner float64) geom.Poly {
	pts := make([]geom.Point, 2*points)
	for i := range pts {
		r := outer
		if i%2 == 1 {
			r = inner
		}
		a := math.Pi * float64(i) / float64(points)
		pts[i] = geom.Pt(r*math.Cos(a), r*math.Sin(a))
	}
	return geom.NewPolygon(pts...)
}
