// Quickstart: build a small image base and retrieve shapes similar to a
// hand-drawn sketch, exactly as a downstream user of the library would.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	eng := geosir.New(geosir.DefaultOptions())

	// Three images, each with a couple of object boundaries.
	images := map[int][]geosir.Shape{
		0: {
			// A house-like pentagon and its door.
			geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(4, 0), geosir.Pt(4, 3),
				geosir.Pt(2, 4.5), geosir.Pt(0, 3)),
			geosir.NewPolygon(geosir.Pt(1.5, 0), geosir.Pt(2.5, 0),
				geosir.Pt(2.5, 1.8), geosir.Pt(1.5, 1.8)),
		},
		1: {
			// A long arrow-like polyline and a triangle.
			geosir.NewPolyline(geosir.Pt(0, 0), geosir.Pt(5, 0), geosir.Pt(4.2, 0.6),
				geosir.Pt(5, 0), geosir.Pt(4.2, -0.6)).Clone(), // invalid (revisits); replaced below
			geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(2, 0), geosir.Pt(1, 1.7)),
		},
		2: {
			// A star-ish hexagon.
			geosir.NewPolygon(geosir.Pt(2, 0), geosir.Pt(3, 1), geosir.Pt(4.4, 1.2),
				geosir.Pt(3.4, 2.2), geosir.Pt(3.6, 3.6), geosir.Pt(2.3, 2.9)),
		},
	}
	// Fix up image 1's first shape (drawn badly on purpose: shapes must be
	// simple, Validate catches self-revisits).
	images[1][0] = geosir.NewPolyline(geosir.Pt(0, 0), geosir.Pt(5, 0),
		geosir.Pt(4.2, 0.6))

	for id, shapes := range images {
		if err := eng.AddImage(id, shapes); err != nil {
			log.Fatalf("image %d: %v", id, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d images / %d shapes (%d normalized copies)\n\n",
		eng.NumImages(), eng.NumShapes(), eng.NumEntries())

	// The user sketches a rough house — rotated and at a different scale.
	sketch := geosir.NewPolygon(
		geosir.Pt(0.1, 0), geosir.Pt(8.2, -0.2), geosir.Pt(8.1, 6.1),
		geosir.Pt(4, 9.2), geosir.Pt(-0.2, 6)).
		Transform(geosir.Similarity(0.8, 0.6, geosir.Pt(30, 10)))

	matches, stats, err := eng.FindSimilar(sketch, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retrieval converged=%v after %d envelope fattenings (ε=%.4f)\n",
		stats.Converged, stats.Iterations, stats.FinalEpsilon)
	for i, m := range matches {
		fmt.Printf("  #%d: shape %d in image %d, distance %.4f\n",
			i+1, m.ShapeID, m.ImageID, m.Distance)
	}
	if len(matches) > 0 && matches[0].ImageID == 0 {
		fmt.Println("\nthe sketch found the house ✓")
	}
}
