// Storage tuning (§4): compare the external-storage layouts on your own
// workload before deploying — the same methodology as the paper's
// Figures 7 and 8, on a workload you control.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/extstore"
)

func main() {
	cfg := experiments.DefaultConfig()
	cfg.Scale = 0.01 // 100 images: adjust to your base size
	cfg.Queries = 10

	f, err := experiments.BuildFixture(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload base: %s\n\n", f.Summary())

	// How many I/Os does each layout cost for top-3 retrievals with a
	// 64 KB buffer?
	rows, err := experiments.Fig7(f, 3, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mean disk reads per query (64-block buffer):")
	fmt.Printf("  %2s", "k")
	for _, l := range extstore.Layouts() {
		fmt.Printf(" %14s", l)
	}
	fmt.Println()
	for _, row := range rows {
		fmt.Printf("  %2d", row.K)
		for _, l := range extstore.Layouts() {
			fmt.Printf(" %14.1f", row.IO[l])
		}
		fmt.Println()
	}

	// Pick the winner at k=3 and report the improvement over the worst.
	best, worst := extstore.LayoutMean, extstore.LayoutMean
	for _, l := range extstore.Layouts() {
		if rows[2].IO[l] < rows[2].IO[best] {
			best = l
		}
		if rows[2].IO[l] > rows[2].IO[worst] {
			worst = l
		}
	}
	fmt.Printf("\nbest layout at k=3: %s (%.0f%% fewer reads than %s)\n",
		best, 100*(1-rows[2].IO[best]/rows[2].IO[worst]), worst)

	// But rehashing (bulk re-organization after many inserts) costs more
	// for the greedy layout — check whether your update rate can afford it.
	costs, err := experiments.Rehash(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrehash cost by layout:")
	for _, c := range costs {
		fmt.Printf("  %-14s comparisons=%-10d blockIO=%d\n",
			c.Layout, c.Comparisons, c.BlockReads+c.BlockWrites)
	}
}
