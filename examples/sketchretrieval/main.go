// Sketch retrieval over rasterized images: the full §6 pipeline.
//
// Synthetic "photographs" are rasterized (filled object silhouettes),
// object boundaries are extracted with Moore tracing and simplified with
// Douglas–Peucker, the shapes populate a GeoSIR engine, and a noisy
// sketch retrieves the right image — demonstrating that retrieval works
// end-to-end from pixels, not just from clean vector input.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/extract"
	"repro/internal/geom"
)

func main() {
	// Three scenes with different object silhouettes.
	scenes := []struct {
		name  string
		shape geom.Poly
	}{
		{"arrowhead", geom.NewPolygon(
			geom.Pt(20, 80), geom.Pt(120, 60), geom.Pt(100, 90), geom.Pt(120, 120))},
		{"hexnut", regular(6, 50, geom.Pt(90, 90))},
		{"wedge", geom.NewPolygon(
			geom.Pt(30, 30), geom.Pt(150, 40), geom.Pt(40, 140))},
	}

	eng := geosir.New(geosir.DefaultOptions())
	for id, sc := range scenes {
		r, err := extract.NewRaster(180, 180)
		if err != nil {
			log.Fatal(err)
		}
		r.FillPolygon(sc.shape)
		shapes := extract.ExtractShapes(r, 2.0)
		if len(shapes) == 0 {
			log.Fatalf("scene %q: extraction found nothing", sc.name)
		}
		fmt.Printf("scene %d (%s): %d foreground pixels -> %d boundary shape(s), %d vertices\n",
			id, sc.name, r.Count(), len(shapes), shapes[0].NumVertices())
		if err := eng.AddImage(id, shapes); err != nil {
			log.Fatalf("scene %q: %v", sc.name, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		log.Fatal(err)
	}

	// The user's sketch: the hexnut, drawn smaller, rotated, and wobbly.
	sketch := regular(6, 1, geom.Pt(0, 0))
	for i := range sketch.Pts {
		wob := 0.04 * math.Sin(float64(i)*2.1)
		sketch.Pts[i] = sketch.Pts[i].Scale(1 + wob)
	}
	sketch = sketch.Transform(geosir.Similarity(1, 0.5, geosir.Pt(7, 3)))

	matches, stats, err := eng.FindSimilar(sketch, len(scenes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsketch query: %d iterations, %d candidates, converged=%v\n",
		stats.Iterations, stats.Candidates, stats.Converged)
	for i, m := range matches {
		fmt.Printf("  #%d: image %d (%s), distance %.4f\n",
			i+1, m.ImageID, scenes[m.ImageID].name, m.Distance)
	}
	if len(matches) > 0 && matches[0].ImageID == 1 {
		fmt.Println("\nthe wobbly hex sketch retrieved the hexnut scene ✓")
	}
}

// regular builds a regular n-gon of the given radius around c.
func regular(n int, radius float64, c geom.Point) geom.Poly {
	pts := make([]geom.Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = c.Add(geom.Pt(radius*math.Cos(a), radius*math.Sin(a)))
	}
	return geom.NewPolygon(pts...)
}
