package geosir

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/annindex"
	"repro/internal/core"
	"repro/internal/geom"
)

// AnnMode selects how the MinHash/LSH candidate tier (internal/annindex,
// built at Freeze) participates in a Search.
type AnnMode int

const (
	// AnnOff (the zero value) ignores the ANN tier entirely.
	AnnOff AnnMode = iota
	// AnnVerify uses the tier only to *order* work: the exact kernel's
	// bootstrap evaluations and the hashing fallback's candidate scoring
	// visit ANN-similar shapes first, which tightens the admissible
	// cutoffs (and the cross-shard shared bound) sooner. Results are
	// byte-identical to AnnOff — the tier never decides what is
	// evaluated, only when (DESIGN.md §4.10).
	AnnVerify
	// AnnApprox answers ModeAuto/ModeApproximate/ModeSketch requests
	// from the ANN candidate set alone: probed buckets (extended to a
	// minimum candidate floor by a signature scan) are scored exactly by
	// the bounded evaluators, unprobed shapes are skipped. Sublinear in
	// the base's geometry at a measured recall (BENCH_ann.json).
	// ModeExact ignores the approximation and degrades to AnnVerify —
	// its contract is exactness.
	AnnApprox
)

// String names the mode for logs and wire formats.
func (m AnnMode) String() string {
	switch m {
	case AnnOff:
		return "off"
	case AnnVerify:
		return "verify"
	case AnnApprox:
		return "approx"
	}
	return fmt.Sprintf("ann(%d)", int(m))
}

// ParseAnnMode maps an ANN mode name back to its AnnMode value.
func ParseAnnMode(s string) (AnnMode, error) {
	switch s {
	case "", "off":
		return AnnOff, nil
	case "verify":
		return AnnVerify, nil
	case "approx", "approximate":
		return AnnApprox, nil
	}
	return 0, fmt.Errorf("geosir: unknown ann mode %q", s)
}

// annMinShapes is the candidate floor of a single-shape AnnApprox
// search: enough shapes that the exact top-k has headroom to be found
// among the candidates.
func annMinShapes(k int) int {
	if n := 12 * k; n > 64 {
		return n
	}
	return 64
}

// annCapShapes bounds how many of the ranked candidates an approximate
// search evaluates. Probe returns the *whole* bucket union best-first —
// on bases dense with near-duplicates that union can approach the full
// shape count, which would silently degrade the approximate path back
// to a linear scan. The cap keeps the evaluated set proportional to the
// floor, preserving the sublinear claim; recall relies on agreement
// ranking putting the true neighbors in this prefix (BENCH_ann.json).
func annCapShapes(minShapes int) int { return 2 * minShapes }

// annSketchMinShapes is the per-sketch-shape candidate floor. Sketch
// ranking drops images lacking a counterpart for any sketch shape, so
// each shape's candidates must cover the top images of the whole
// sketch; the floor is correspondingly wider.
func annSketchMinShapes(k int) int {
	if n := 16 * k; n > 96 {
		return n
	}
	return 96
}

// annPreload carries a persisted ANN section from Load to Freeze, where
// it is adopted (skipping signature computation) if it still matches
// the rebuilt entry count.
type annPreload struct {
	params annindex.Params
	sigs   []uint64
	n      int
}

// buildANN builds (or adopts the preloaded) candidate-generation index.
// Called under Freeze, after the core base froze; deterministic, so a
// rebuilt index is identical to a persisted one.
func (e *Engine) buildANN() {
	base := e.db.Base()
	n := base.NumEntries()
	if pre := e.annPre; pre != nil && pre.n == n {
		shapeOf := make([]int32, n)
		for i := 0; i < n; i++ {
			shapeOf[i] = int32(base.Entry(i).ShapeID)
		}
		e.ann = annindex.FromSignatures(pre.params, pre.sigs, shapeOf)
	} else {
		e.ann = annindex.Build(annindex.DefaultParams(), n, func(i int) (geom.Poly, int32) {
			en := base.Entry(i)
			return en.Poly, int32(en.ShapeID)
		})
	}
	e.annPre = nil
}

// annSignatures returns the signature family to persist: the frozen
// index's if one exists, a preloaded section's if the engine was loaded
// but never frozen, and otherwise a transient recomputation — so the
// snapshot encoding stays canonical whether or not Freeze ran.
func (e *Engine) annSignatures() (annindex.Params, []uint64, int) {
	if e.ann != nil {
		return e.ann.Params(), e.ann.Signatures(), e.ann.NumEntries()
	}
	if pre := e.annPre; pre != nil {
		return pre.params, pre.sigs, pre.n
	}
	base := e.db.Base()
	n := base.NumEntries()
	p := annindex.DefaultParams()
	sigs := annindex.ComputeSignatures(p, n, func(i int) geom.Poly { return base.Entry(i).Poly })
	return p, sigs, n
}

// ANNIndex exposes the candidate-generation index for advanced use
// (nil before Freeze).
func (e *Engine) ANNIndex() *annindex.Index { return e.ann }

// annProbe prepares the query against the ANN tier: canonical
// normalization, signature, bucket probe with the given candidate
// floor. Returns ok=false when the tier is absent or the query does not
// normalize (the caller's own normalization will surface the error).
func (e *Engine) annProbe(q Shape, minShapes int) (annindex.Candidates, bool) {
	if e.ann == nil {
		return annindex.Candidates{}, false
	}
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return annindex.Candidates{}, false
	}
	return e.ann.Probe(e.ann.Signature(pq.Entry().Poly), minShapes), true
}

// annRank probes the tier for verify-mode ordering: a sparse entry→
// score map the exact kernel uses to evaluate promising bootstrap
// candidates first. Any non-off mode ranks (AnnApprox degrades to
// ordering on the exact path). A nil map means no ordering.
func (e *Engine) annRank(q Shape, ann AnnMode) (map[int32]int32, Stats) {
	if ann == AnnOff {
		return nil, Stats{}
	}
	cand, ok := e.annProbe(q, 0)
	if !ok {
		return nil, Stats{}
	}
	st := Stats{UsedANN: true, ANNProbes: cand.Probes, ANNCandidates: len(cand.Entries)}
	if len(cand.Entries) == 0 {
		return nil, st
	}
	rank := make(map[int32]int32, len(cand.Entries))
	for i, ei := range cand.Entries {
		rank[ei] = cand.Scores[i]
	}
	return rank, st
}

// annOrderShapes reorders candidate shape ids best-first by ANN
// signature agreement (stable: unprobed shapes keep their relative
// order after the probed ones). Pure reordering — the §4.9 admissible
// scoring cutoffs make the surviving top-k independent of visit order —
// so AnnVerify results stay byte-identical while the k-th-best cutoff
// tightens sooner.
func (e *Engine) annOrderShapes(q Shape, ids []int) ([]int, Stats) {
	if len(ids) < 2 {
		return ids, Stats{}
	}
	cand, ok := e.annProbe(q, 0)
	if !ok {
		return ids, Stats{}
	}
	st := Stats{UsedANN: true, ANNProbes: cand.Probes, ANNCandidates: len(cand.Shapes)}
	if len(cand.Shapes) == 0 {
		return ids, st
	}
	score := make(map[int]int32, len(cand.Shapes))
	for i, s := range cand.Shapes {
		score[s] = cand.ShapeScores[i]
	}
	sort.SliceStable(ids, func(i, j int) bool { return score[ids[i]] > score[ids[j]] })
	return ids, st
}

// searchAnnApprox is the sublinear single-shape path: ANN candidates
// (bucket probes plus the signature-scan floor) scored exactly by the
// bounded evaluator under the running k-th-best cutoff. Matches are
// marked Approximate — the candidate set, not the distances, is the
// approximation.
func (e *Engine) searchAnnApprox(q Shape, k int, shared *core.SharedBound) ([]Match, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var blocks atomic.Int64
	pq.AttachBlockCounter(&blocks)
	cand := e.ann.Probe(e.ann.Signature(pq.Entry().Poly), annMinShapes(k))
	shapes := cand.Shapes
	if max := annCapShapes(annMinShapes(k)); len(shapes) > max {
		shapes = shapes[:max]
	}
	st := Stats{UsedANN: true, ANNProbes: cand.Probes, ANNCandidates: len(shapes)}
	out := e.scoreApprox(pq, shapes, k, shared)
	st.BlockReads = int(blocks.Load())
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, st, nil
}

// sketchShapeTableAnn is sketchShapeTable over the ANN candidate set:
// instead of matching the sketch shape against every stored shape, only
// the probed candidates are scored (exactly), and the per-image best
// distances are reduced from those. Images whose every shape went
// unprobed are absent — the sketch ranking's recall cost, measured in
// BENCH_ann.json.
func (e *Engine) sketchShapeTableAnn(q Shape, k int) (map[int]float64, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var blocks atomic.Int64
	pq.AttachBlockCounter(&blocks)
	cand := e.ann.Probe(e.ann.Signature(pq.Entry().Poly), annSketchMinShapes(k))
	shapes := cand.Shapes
	if max := annCapShapes(annSketchMinShapes(k)); len(shapes) > max {
		shapes = shapes[:max]
	}
	st := Stats{UsedANN: true, ANNProbes: cand.Probes, ANNCandidates: len(shapes)}
	base := e.db.Base()
	best := make(map[int]float64, len(shapes))
	inf := math.Inf(1)
	for _, sid := range shapes {
		d, _, err := base.ShapeDistancePreparedBounded(sid, pq, inf)
		if err != nil {
			continue
		}
		img := base.Shape(sid).Image
		if cur, ok := best[img]; !ok || d < cur {
			best[img] = d
		}
	}
	st.BlockReads = int(blocks.Load())
	return best, st, nil
}

// addANN folds another stage's ANN accounting into s.
func (s *Stats) addANN(o Stats) {
	s.UsedANN = s.UsedANN || o.UsedANN
	s.ANNProbes += o.ANNProbes
	s.ANNCandidates += o.ANNCandidates
	s.BlockReads += o.BlockReads
}
