package geosir

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/iofault"
)

// altEngine builds an engine whose snapshot differs from buildEngine's,
// so an atomicity violation (new bytes leaking into the old snapshot)
// cannot go unnoticed.
func altEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New(DefaultOptions())
	images := [][]Shape{
		{triangle(1, 1, 6)},
		{lshape(0, 0, 4), square(2, 2, 5)},
	}
	for id, shapes := range images {
		if err := eng.AddImage(id, shapes); err != nil {
			t.Fatalf("AddImage(%d): %v", id, err)
		}
	}
	return eng
}

// snapshotBytes returns the canonical GSIR2 encoding of eng.
func snapshotBytes(t *testing.T, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// faultOffsets returns the crash-point grid for a stream of the given
// size: every byte of the first 64 (framing & options live there), every
// seventh byte after, and the exact end-of-stream boundary offsets.
func faultOffsets(size int) []int {
	var offs []int
	for o := 0; o < size && o < 64; o++ {
		offs = append(offs, o)
	}
	for o := 64; o < size; o += 7 {
		offs = append(offs, o)
	}
	if size > 0 {
		offs = append(offs, size-1)
	}
	return offs
}

// TestSaveFileAtomicUnderWriteFaults kills SaveFile at every grid offset
// and checks the previous snapshot survives byte-identical, loadable, and
// without temp-file litter.
func TestSaveFileAtomicUnderWriteFaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.gsir")
	old := buildEngine(t)
	if err := old.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	prior, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	next := altEngine(t)
	size := len(snapshotBytes(t, next))
	for _, off := range faultOffsets(size) {
		err := next.saveFileAtomic(path, func(w io.Writer) io.Writer {
			return iofault.FailWriter(w, int64(off))
		})
		if !errors.Is(err, iofault.ErrInjected) {
			t.Fatalf("offset %d: save with injected fault returned %v", off, err)
		}
		cur, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("offset %d: prior snapshot unreadable: %v", off, err)
		}
		if !bytes.Equal(cur, prior) {
			t.Fatalf("offset %d: prior snapshot modified by failed save", off)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 1 {
			var names []string
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Fatalf("offset %d: temp litter left behind: %v", off, names)
		}
	}
	// The prior snapshot must still load and answer queries.
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("prior snapshot no longer loads: %v", err)
	}
	// A clean save finally replaces it.
	if err := next.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cur, snapshotBytes(t, next)) {
		t.Fatal("clean save did not publish the new snapshot")
	}
}

// TestSaveFileTornWriteDetected models the one failure rename-based
// atomicity cannot prevent: the writer lies about success (lost page
// cache without the fsync taking effect), publishing a truncated
// snapshot. The format must then detect the damage on load — never
// produce a silently smaller image base — and LoadPartial must salvage
// the verified prefix.
func TestSaveFileTornWriteDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.gsir")
	eng := buildEngine(t)
	full := snapshotBytes(t, eng)
	nimg := eng.NumImages()
	for _, off := range faultOffsets(len(full)) {
		err := eng.saveFileAtomic(path, func(w io.Writer) io.Writer {
			return iofault.TruncWriter(w, int64(off))
		})
		if err != nil {
			// The torn writer claims success all the way; Sync/rename
			// should too.
			t.Fatalf("offset %d: torn save surfaced an error: %v", off, err)
		}
		if _, err := LoadFile(path); err == nil {
			t.Fatalf("offset %d: truncated snapshot loaded without error", off)
		}
		eng2, rec, err := LoadPartialFile(path)
		if err != nil {
			// Unrecoverable only while the options section is incomplete.
			if off >= magicLen+4+optionsSectionLen+4 {
				t.Fatalf("offset %d: recovery failed past options section: %v", off, err)
			}
			continue
		}
		if rec.Complete() {
			t.Fatalf("offset %d: truncated snapshot reported complete", off)
		}
		if got := rec.ImagesLoaded + len(rec.Dropped) + rec.ImagesUnread; got != nimg {
			t.Fatalf("offset %d: %d loaded + %d dropped + %d unread ≠ %d expected",
				off, rec.ImagesLoaded, len(rec.Dropped), rec.ImagesUnread, nimg)
		}
		if eng2.NumImages() != rec.ImagesLoaded {
			t.Fatalf("offset %d: engine has %d images, report says %d",
				off, eng2.NumImages(), rec.ImagesLoaded)
		}
	}
}

// TestCorruptionFlipSweep flips every byte of a GSIR2 snapshot (two bit
// patterns) and checks the acceptance contract: each flip is either
// caught (Load fails) or harmless (identical image base) — and
// LoadPartial either reports the damaged images or recovers a base
// identical to the original. Never a silently different image base.
func TestCorruptionFlipSweep(t *testing.T) {
	eng := buildEngine(t)
	pristine := snapshotBytes(t, eng)
	for _, xor := range []byte{0xFF, 0x01} {
		for off := 0; off < len(pristine); off++ {
			mut := append([]byte(nil), pristine...)
			mut[off] ^= xor
			if le, err := Load(bytes.NewReader(mut)); err == nil {
				resaved := snapshotBytes(t, le)
				if !bytes.Equal(resaved, pristine) {
					t.Fatalf("offset %d xor %#x: Load accepted a silently different image base", off, xor)
				}
			}
			pe, rec, err := LoadPartial(bytes.NewReader(mut))
			if err != nil {
				continue // refused outright: detection, not silence
			}
			if rec.Complete() {
				resaved := snapshotBytes(t, pe)
				if !bytes.Equal(resaved, pristine) {
					t.Fatalf("offset %d xor %#x: LoadPartial claimed complete recovery of a different base", off, xor)
				}
			} else if len(rec.Dropped) == 0 && rec.ImagesUnread == 0 && rec.AuxDropped == 0 {
				t.Fatalf("offset %d xor %#x: incomplete recovery with no damage reported", off, xor)
			}
		}
	}
}

// sectionOffsets walks a GSIR2 stream and returns the byte offset of each
// section's length prefix (options first, then one per image).
func sectionOffsets(t *testing.T, data []byte) []int {
	t.Helper()
	if string(data[:magicLen]) != magicGSIR2 {
		t.Fatal("not a GSIR2 stream")
	}
	var offs []int
	off := magicLen
	for off < len(data) {
		offs = append(offs, off)
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4 + n + 4
	}
	if off != len(data) {
		t.Fatalf("section walk overran the stream: %d vs %d", off, len(data))
	}
	return offs
}

// TestLoadPartialSalvagesVerifiedImages corrupts exactly one image
// section and checks every other image survives with the damage reported.
func TestLoadPartialSalvagesVerifiedImages(t *testing.T) {
	eng := buildEngine(t)
	data := snapshotBytes(t, eng)
	offs := sectionOffsets(t, data)
	nimg := eng.NumImages()
	// Options, one per image, and the trailing ANN auxiliary section.
	if len(offs) != 1+nimg+1 {
		t.Fatalf("expected %d sections, found %d", 1+nimg+1, len(offs))
	}
	// Flip one payload byte in the second image's section.
	mut := append([]byte(nil), data...)
	target := offs[2] + 4 + 5 // inside the payload
	mut[target] ^= 0xFF
	if _, err := Load(bytes.NewReader(mut)); err == nil {
		t.Fatal("Load accepted a corrupt section")
	}
	eng2, rec, err := LoadPartial(bytes.NewReader(mut))
	if err != nil {
		t.Fatalf("LoadPartial: %v", err)
	}
	if rec.Format != "GSIR2" || rec.Truncated {
		t.Fatalf("unexpected report: %+v", rec)
	}
	if rec.ImagesLoaded != nimg-1 || len(rec.Dropped) != 1 {
		t.Fatalf("salvaged %d, dropped %d; want %d and 1", rec.ImagesLoaded, len(rec.Dropped), nimg)
	}
	d := rec.Dropped[0]
	if d.Section != 2 || d.ImageID != 1 || d.Offset != int64(offs[2]) || !errors.Is(d.Err, errBadCRC) {
		t.Fatalf("dropped report wrong: %+v", d)
	}
	if eng2.NumImages() != nimg-1 {
		t.Fatalf("engine has %d images, want %d", eng2.NumImages(), nimg-1)
	}
	// The salvaged engine must answer queries.
	q := lshape(0, 0, 3).Transform(Similarity(1.4, 0.5, Pt(40, 40)))
	if _, _, err := eng2.FindSimilar(q, 3); err != nil {
		t.Fatalf("salvaged engine cannot query: %v", err)
	}
}

// TestLoadPartialTruncatedTail truncates mid-stream: the verified prefix
// is salvaged, the remainder is reported dropped with Truncated set.
func TestLoadPartialTruncatedTail(t *testing.T) {
	eng := buildEngine(t)
	data := snapshotBytes(t, eng)
	offs := sectionOffsets(t, data)
	nimg := eng.NumImages()
	cut := offs[3] + 6 // mid-way through the third image's section
	_, rec, err := LoadPartial(bytes.NewReader(data[:cut]))
	if err != nil {
		t.Fatalf("LoadPartial: %v", err)
	}
	if !rec.Truncated {
		t.Fatal("truncation not reported")
	}
	if rec.ImagesLoaded != 2 || len(rec.Dropped) != 1 || rec.ImagesUnread != nimg-3 {
		t.Fatalf("salvaged %d, dropped %d, unread %d; want 2, 1, %d",
			rec.ImagesLoaded, len(rec.Dropped), rec.ImagesUnread, nimg-3)
	}
	if rec.Dropped[0].Offset != int64(offs[3]) {
		t.Fatalf("dropped offset %d, want %d", rec.Dropped[0].Offset, offs[3])
	}
}

// TestLoadPartialGSIR1Prefix salvages the undamaged prefix of a legacy
// stream (no checksums: recovery stops at the first parse error).
func TestLoadPartialGSIR1Prefix(t *testing.T) {
	eng := buildEngine(t)
	var buf bytes.Buffer
	if err := eng.SaveAs(&buf, FormatGSIR1); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	eng2, rec, err := LoadPartial(bytes.NewReader(data[:len(data)-20]))
	if err != nil {
		t.Fatalf("LoadPartial: %v", err)
	}
	if rec.Format != "GSIR1" || !rec.Truncated {
		t.Fatalf("unexpected report: %+v", rec)
	}
	if rec.ImagesLoaded+len(rec.Dropped)+rec.ImagesUnread != eng.NumImages() {
		t.Fatalf("accounting broken: %d + %d + %d ≠ %d",
			rec.ImagesLoaded, len(rec.Dropped), rec.ImagesUnread, eng.NumImages())
	}
	if rec.ImagesLoaded == 0 || eng2.NumImages() != rec.ImagesLoaded {
		t.Fatalf("salvage mismatch: engine %d vs report %d", eng2.NumImages(), rec.ImagesLoaded)
	}
	// An intact stream reports complete recovery and matches plain Load.
	eng3, rec3, err := LoadPartial(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rec3.Complete() || eng3.NumImages() != eng.NumImages() {
		t.Fatalf("intact stream not fully recovered: %+v", rec3)
	}
}

// TestLoadPartialUnrecoverableOptions verifies the documented failure
// mode: a destroyed options section cannot be recovered from.
func TestLoadPartialUnrecoverableOptions(t *testing.T) {
	eng := buildEngine(t)
	data := snapshotBytes(t, eng)
	mut := append([]byte(nil), data...)
	mut[magicLen+4+3] ^= 0xFF // inside the options payload
	_, _, err := LoadPartial(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "options") {
		t.Fatalf("want unrecoverable-options error, got %v", err)
	}
}
