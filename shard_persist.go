package geosir

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// A sharded snapshot is a directory:
//
//	<dir>/MANIFEST.json      image routing manifest (written last)
//	<dir>/shard-000.gsir2    shard 0, a standard GSIR snapshot
//	<dir>/shard-001.gsir2    shard 1, ...
//	<dir>/DELTA.wal          live-ingestion write-ahead log (optional)
//
// Each shard file is an ordinary atomic GSIR snapshot (PR 2's
// temp+fsync+rename path; frozen shards are written as GSIR3 so a
// reload assembles — or mmaps — instead of rebuilding, and the magic
// negotiates the format on load regardless of the .gsir2 suffix), so
// shard damage is contained: a corrupted or missing shard file degrades
// that shard — partial results with Recovery accounting — and never
// poisons its siblings. The manifest
// records the AddImage call order as (image id, shape count, shard,
// deleted) tuples; replaying it fixes every global shape id, so ids
// survive reload even when recovery drops images, and a re-save of the
// loaded engine keeps them stable.
//
// Version 2 (live ingestion, DESIGN.md §4.12) adds three things to the
// v1 schema, all backward compatible (v1 manifests still load):
//
//   - per-image "shard" (physical home, -1 = reservation only) and
//     "deleted" (frozen copy tombstoned after freeze) fields, so
//     compaction can place an image anywhere — not just at its hash
//     shard — and deletes need no shard rewrite;
//   - "generation", bumped by every compaction, for observability;
//   - "walSeq", the WAL fold watermark: every DELTA.wal operation with
//     sequence ≤ walSeq is already reflected in the shard files and
//     manifest and must be skipped on replay. The manifest rename is
//     compaction's commit point; walSeq is what makes the replay
//     idempotent if the process dies between that rename and the WAL
//     rewrite that follows it.

// manifestName is the routing manifest's file name inside a sharded
// snapshot directory.
const manifestName = "MANIFEST.json"

// walName is the live-ingestion write-ahead log's file name.
const walName = "DELTA.wal"

// shardManifestVersion is the current manifest schema version.
const shardManifestVersion = 2

type shardManifest struct {
	Version    int                  `json:"version"`
	Shards     int                  `json:"shards"`
	Generation uint64               `json:"generation,omitempty"`
	WALSeq     uint64               `json:"walSeq,omitempty"`
	Images     []shardManifestImage `json:"images"`
}

type shardManifestImage struct {
	ID     int `json:"id"`
	Shapes int `json:"shapes"`
	// Shard is the image's physical home. nil (absent, v1) means the
	// hash routing core.ShardFor applies; -1 means the image only
	// reserves global ids and no shard holds it.
	Shard   *int `json:"shard,omitempty"`
	Deleted bool `json:"deleted,omitempty"`
}

// homeShard resolves the image's physical shard under the manifest's
// routing rules (explicit v2 placement, hash fallback for v1).
func (im *shardManifestImage) homeShard(man *shardManifest) int {
	if im.Shard != nil {
		return *im.Shard
	}
	return core.ShardFor(im.ID, man.Shards)
}

// shardFileName names shard i's snapshot file.
func shardFileName(i int) string { return fmt.Sprintf("shard-%03d.gsir2", i) }

// SaveDir writes the sharded snapshot into dir (created if needed).
// Every shard file is written atomically, and the manifest is written
// atomically last — a crash mid-save leaves either the complete old
// snapshot or a mix of old manifest + new shard files, both of which
// load (the manifest is authoritative for routing, and shard files are
// self-checking).
//
// With live ingestion enabled, SaveDir persists the frozen part of the
// current view: the shards (including every compacted one) and the
// manifest's placement/tombstone log. Images still in the mutable delta
// are deliberately not saved here — the write-ahead log is their
// durable form, and the saved manifest's walSeq of 0 makes a subsequent
// EnableIngest replay them (mutations are applied idempotently).
func (se *ShardedEngine) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("geosir: creating snapshot dir: %w", err)
	}
	v := se.snapshot()
	for i, sh := range v.shards {
		// Frozen shards are written as GSIR3 so reloads assemble (or
		// mmap) instead of rebuilding; unfrozen placeholders (empty
		// shards) have no derived sections and stay GSIR2. The file name
		// does not encode the format — the magic negotiates on load.
		f := FormatGSIR2
		if sh.Frozen() {
			f = FormatGSIR3
		}
		if err := sh.SaveFileAs(filepath.Join(dir, shardFileName(i)), f); err != nil {
			return fmt.Errorf("geosir: saving shard %d: %w", i, err)
		}
	}
	man := manifestFromView(v, 0)
	return writeManifest(filepath.Join(dir, manifestName), man, nil)
}

// manifestFromView builds the v2 manifest describing a view's frozen
// part. walSeq is the WAL fold watermark to record (0 = nothing
// folded).
func manifestFromView(v *shardView, walSeq uint64) *shardManifest {
	man := &shardManifest{
		Version:    shardManifestVersion,
		Shards:     len(v.shards),
		Generation: v.gen,
		WALSeq:     walSeq,
		Images:     make([]shardManifestImage, len(v.order)),
	}
	for i, im := range v.order {
		s := im.Shard
		man.Images[i] = shardManifestImage{ID: im.ID, Shapes: im.Shapes, Shard: &s, Deleted: im.Deleted}
	}
	return man
}

// writeManifest writes the manifest with the same atomic discipline as
// SaveFile: temp file, fsync, rename, directory fsync. A non-nil wrap
// intercepts the payload writes (fault injection in tests).
func writeManifest(path string, man *shardManifest, wrap func(io.Writer) io.Writer) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+manifestName+".tmp-*")
	if err != nil {
		return fmt.Errorf("geosir: creating temp manifest: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	var w io.Writer = tmp
	if wrap != nil {
		w = wrap(tmp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(man); err != nil {
		tmp.Close()
		return fmt.Errorf("geosir: encoding manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("geosir: syncing manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("geosir: closing manifest: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("geosir: publishing manifest: %w", err)
	}
	syncDir(dir)
	return nil
}

// ShardFileRecovery reports how one shard file fared during
// LoadShardedDir.
type ShardFileRecovery struct {
	// Path is the shard file's path.
	Path string
	// Err is the whole-file failure (unreadable, bad header, or
	// inconsistent with the manifest), nil when the shard loaded.
	Err error
	// Recovery is the per-file salvage report (nil when Err is set).
	Recovery *Recovery
	// Dropped reports that the entire shard was discarded: its images
	// contribute nothing, but their global ids stay reserved.
	Dropped bool
}

// ShardRecovery reports what LoadShardedDir salvaged across the
// snapshot directory.
type ShardRecovery struct {
	// Shards holds one entry per shard file, in shard order. For a
	// single-file snapshot loaded through LoadAny it holds one entry.
	Shards []ShardFileRecovery
	// ImagesExpected is the image count the manifest declares.
	ImagesExpected int
	// ImagesLoaded is the number of images recovered across all shards
	// (tombstoned images whose bytes loaded count as recovered).
	ImagesLoaded int
}

// Complete reports whether every shard was recovered in full — the
// engine is then identical to a freshly built one.
func (r *ShardRecovery) Complete() bool {
	if r == nil {
		return false
	}
	for _, s := range r.Shards {
		if s.Err != nil || s.Dropped || !s.Recovery.Complete() {
			return false
		}
	}
	return true
}

// LoadMode selects how snapshot files are opened.
type LoadMode int

const (
	// LoadModeHeap decodes snapshots fully onto the Go heap (works for
	// every format on every platform).
	LoadModeHeap LoadMode = iota
	// LoadModeMmap memory-maps GSIR3 snapshots and serves their array
	// sections in place — O(1) open, page-cache-backed residency. Files
	// that are not GSIR3, damaged files, and platforms/builds without
	// mmap+cast support fall back to the heap path per file.
	LoadModeMmap
)

// String returns the mode's /statz and flag spelling.
func (m LoadMode) String() string {
	if m == LoadModeMmap {
		return "mmap"
	}
	return "heap"
}

// ParseLoadMode parses "heap" or "mmap".
func ParseLoadMode(s string) (LoadMode, error) {
	switch s {
	case "heap", "":
		return LoadModeHeap, nil
	case "mmap":
		return LoadModeMmap, nil
	}
	return LoadModeHeap, fmt.Errorf("geosir: unknown load mode %q (want heap or mmap)", s)
}

// loadShardFile opens one snapshot file under the requested mode. In
// mmap mode a clean GSIR3 file is mapped and served in place; any
// failure — wrong format, damage, unsupported platform — falls back to
// the salvaging heap loader, so mode is a performance choice, never an
// availability one.
func loadShardFile(path string, mode LoadMode) (*Engine, *Recovery, error) {
	if mode == LoadModeMmap {
		if eng, err := LoadFileMmap(path); err == nil {
			n := eng.NumImages()
			return eng, &Recovery{Format: "GSIR3", ImagesExpected: n, ImagesLoaded: n}, nil
		}
	}
	return LoadPartialFile(path)
}

// LoadShardedDir loads a sharded snapshot directory, salvaging whatever
// verifies. Damage is contained at two granularities: a corrupted image
// section costs that image (per-file Recovery), and an unreadable or
// manifest-inconsistent shard file costs that shard. Surviving shapes
// keep the global ids the manifest assigns. The manifest itself must be
// intact — without it no routing can be reconstructed. A DELTA.wal in
// the directory is not replayed here; EnableIngest owns it.
func LoadShardedDir(dir string) (*ShardedEngine, *ShardRecovery, error) {
	return LoadShardedDirMode(dir, LoadModeHeap)
}

// LoadShardedDirMode is LoadShardedDir with an explicit per-shard open
// strategy; see LoadMode.
func LoadShardedDirMode(dir string, mode LoadMode) (*ShardedEngine, *ShardRecovery, error) {
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, nil, err
	}

	rec := &ShardRecovery{
		Shards:         make([]ShardFileRecovery, man.Shards),
		ImagesExpected: len(man.Images),
	}
	shards := make([]*Engine, man.Shards)
	loaded := make([]map[int]int, man.Shards) // per shard: image id → shape count actually loaded
	var opts *Options
	for i := range shards {
		path := filepath.Join(dir, shardFileName(i))
		rec.Shards[i].Path = path
		eng, frec, err := loadShardFile(path, mode)
		if err != nil {
			rec.Shards[i].Err = err
			rec.Shards[i].Dropped = true
			continue
		}
		rec.Shards[i].Recovery = frec
		if groups, ok := consistentGroups(eng, man, i); ok {
			shards[i] = eng
			loaded[i] = groups
			if opts == nil {
				o := eng.Options()
				opts = &o
			}
		} else {
			rec.Shards[i].Err = fmt.Errorf("geosir: shard %d content disagrees with manifest; shard dropped", i)
			rec.Shards[i].Dropped = true
		}
	}
	if opts == nil {
		// Every shard failed: with no options section readable anywhere
		// there is nothing to degrade to.
		return nil, nil, errors.New("geosir: sharded snapshot: no shard loadable")
	}
	for i := range shards {
		if shards[i] == nil {
			shards[i] = New(*opts)
		}
	}

	// Replay the manifest to rebuild the global id map: each image's ids
	// go to its shard's next local slots when the shard actually holds
	// it, and are reserved-but-unmapped otherwise. An image whose shard
	// did not yield it is demoted to a pure reservation (Shard -1) so
	// the in-memory log never claims a physical copy that is gone.
	smap := core.NewShardMap(man.Shards)
	order := make([]shardImage, len(man.Images))
	for i := range man.Images {
		im := &man.Images[i]
		s := im.homeShard(man)
		order[i] = shardImage{ID: im.ID, Shapes: im.Shapes, Shard: s, Deleted: im.Deleted}
		if s < 0 {
			smap.Skip(im.Shapes)
			continue
		}
		if n, ok := loaded[s][im.ID]; ok && n == im.Shapes {
			smap.AssignImage(s, im.Shapes)
			rec.ImagesLoaded++
		} else {
			smap.Skip(im.Shapes)
			order[i].Shard = -1
		}
	}
	return newShardedFromParts(*opts, shards, smap, order, man.Generation), rec, nil
}

// readManifest reads and validates a routing manifest (v1 or v2).
func readManifest(path string) (*shardManifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("geosir: reading manifest: %w", err)
	}
	var man shardManifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("geosir: parsing manifest: %w", err)
	}
	if man.Version < 1 || man.Version > shardManifestVersion {
		return nil, fmt.Errorf("geosir: unsupported manifest version %d", man.Version)
	}
	if man.Shards < 1 || man.Shards > maxCount {
		return nil, fmt.Errorf("geosir: manifest declares %d shards", man.Shards)
	}
	if len(man.Images) > maxCount {
		return nil, fmt.Errorf("geosir: manifest declares %d images", len(man.Images))
	}
	for _, im := range man.Images {
		if im.Shapes < 0 || im.Shapes > maxCount {
			return nil, fmt.Errorf("geosir: manifest image %d declares %d shapes", im.ID, im.Shapes)
		}
		if im.Shard != nil && (*im.Shard < -1 || *im.Shard >= man.Shards) {
			return nil, fmt.Errorf("geosir: manifest image %d placed on shard %d of %d", im.ID, *im.Shard, man.Shards)
		}
	}
	return &man, nil
}

// consistentGroups checks a loaded shard against the manifest: the
// shard's images (in its insertion order, recovered from shape id
// order) must be a subsequence of the manifest images placed on it,
// with matching shape counts. Tombstoned images count — their bytes are
// still physically in the shard file (deletion is a manifest-side
// fact). On success it returns the shard's image id → shape count
// table. A shard that disagrees — an image the manifest never placed
// there, out-of-order images, or a shape-count mismatch that would
// shift every later local id — cannot be given stable global ids and is
// dropped wholesale by the caller.
func consistentGroups(eng *Engine, man *shardManifest, shard int) (map[int]int, bool) {
	groups := engineImageGroups(eng)
	counts := make(map[int]int, len(groups))
	g := 0
	for i := range man.Images {
		im := &man.Images[i]
		if im.homeShard(man) != shard || im.Shapes == 0 {
			continue
		}
		if g < len(groups) && groups[g].ID == im.ID {
			if groups[g].Shapes != im.Shapes {
				return nil, false
			}
			counts[im.ID] = groups[g].Shapes
			g++
		}
		// else: the shard dropped this image during per-file recovery —
		// fine, its ids will be skipped.
	}
	if g != len(groups) {
		return nil, false // shard holds images the manifest doesn't place here
	}
	return counts, true
}

// engineImageGroups recovers an engine's image insertion order as
// (image id, shape count) runs by walking shapes in id order — shape
// ids are assigned sequentially per AddImage, so each image's shapes
// are consecutive.
func engineImageGroups(eng *Engine) []shardImage {
	var out []shardImage
	for _, s := range eng.Base().Shapes() {
		if n := len(out); n > 0 && out[n-1].ID == s.Image {
			out[n-1].Shapes++
		} else {
			out = append(out, shardImage{ID: s.Image, Shapes: 1})
		}
	}
	return out
}

// LoadAny loads a snapshot path of either kind: a single GSIR file or a
// sharded snapshot directory (detected by it being a directory). The
// recovery report uses the sharded shape in both cases — a single file
// loads as one "shard" entry — so callers handle degradation uniformly.
func LoadAny(path string) (Searcher, *ShardRecovery, error) {
	return LoadAnyMode(path, LoadModeHeap)
}

// LoadAnyMode is LoadAny with an explicit per-file open strategy; see
// LoadMode.
func LoadAnyMode(path string, mode LoadMode) (Searcher, *ShardRecovery, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	if st.IsDir() {
		eng, rec, err := LoadShardedDirMode(path, mode)
		if err != nil {
			return nil, nil, err
		}
		return eng, rec, nil
	}
	eng, frec, err := loadShardFile(path, mode)
	if err != nil {
		return nil, nil, err
	}
	return eng, &ShardRecovery{
		Shards:         []ShardFileRecovery{{Path: path, Recovery: frec}},
		ImagesExpected: frec.ImagesExpected,
		ImagesLoaded:   frec.ImagesLoaded,
	}, nil
}
