package geosir_test

import (
	"fmt"

	geosir "repro"
)

// The basic flow: build an image base, freeze, retrieve by sketch.
func ExampleEngine_FindSimilar() {
	eng := geosir.New(geosir.DefaultOptions())
	_ = eng.AddImage(0, []geosir.Shape{
		geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(4, 0), geosir.Pt(4, 4), geosir.Pt(0, 4)),
	})
	_ = eng.AddImage(1, []geosir.Shape{
		geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(3, 0), geosir.Pt(0, 5)),
	})
	_ = eng.Freeze()

	// A rotated, scaled square sketch: retrieval is similarity-invariant.
	sketch := geosir.NewPolygon(
		geosir.Pt(0, 0), geosir.Pt(2, 0), geosir.Pt(2, 2), geosir.Pt(0, 2),
	).Transform(geosir.Similarity(3, 0.8, geosir.Pt(10, -5)))

	matches, _, _ := eng.FindSimilar(sketch, 1)
	fmt.Printf("image %d, distance %.4f\n", matches[0].ImageID, matches[0].Distance)
	// Output: image 0, distance 0.0000
}

// Topological queries combine similarity with pairwise shape relations.
func ExampleEngine_Query() {
	eng := geosir.New(geosir.DefaultOptions())
	big := geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(20, 0), geosir.Pt(20, 20), geosir.Pt(0, 20))
	small := geosir.NewPolygon(geosir.Pt(5, 5), geosir.Pt(9, 5), geosir.Pt(5, 12))
	_ = eng.AddImage(0, []geosir.Shape{big, small}) // triangle inside square
	_ = eng.AddImage(1, []geosir.Shape{small})      // lone triangle
	_ = eng.Freeze()

	binds := map[string]geosir.Shape{
		"sq":  geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(1, 0), geosir.Pt(1, 1), geosir.Pt(0, 1)),
		"tri": geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(4, 0), geosir.Pt(0, 7)),
	}
	ids, _, _ := eng.Query("contain(sq, tri, any)", binds)
	fmt.Println(ids)
	ids, _, _ = eng.Query("similar(tri) AND NOT contain(sq, tri, any)", binds)
	fmt.Println(ids)
	// Output:
	// [0]
	// [1]
}

// Multi-shape sketches rank images by how well they match every part.
func ExampleEngine_FindBySketch() {
	eng := geosir.New(geosir.DefaultOptions())
	sq := geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(8, 0), geosir.Pt(8, 8), geosir.Pt(0, 8))
	tri := geosir.NewPolygon(geosir.Pt(1, 1), geosir.Pt(4, 1), geosir.Pt(1, 6))
	_ = eng.AddImage(0, []geosir.Shape{sq, tri}) // both parts
	_ = eng.AddImage(1, []geosir.Shape{sq})      // square only
	_ = eng.Freeze()

	sketch := []geosir.Shape{
		geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(1, 0), geosir.Pt(1, 1), geosir.Pt(0, 1)),
		geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(3, 0), geosir.Pt(0, 5)),
	}
	ms, _ := eng.FindBySketch(sketch, 2)
	for _, m := range ms {
		fmt.Printf("image %d score %.4f\n", m.ImageID, m.Score)
	}
	// Image 0 matches both parts exactly; image 1 pays a penalty for the
	// missing triangle (its square is the best effort for that part).
	// Output:
	// image 0 score 0.0000
	// image 1 score 0.0524
}
