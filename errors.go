package geosir

import "errors"

// Sentinel errors of the public API. Every entry point reports state and
// argument problems through these values (possibly wrapped with
// context), so callers branch with errors.Is instead of matching
// message strings, and the HTTP layer maps them to statuses uniformly.
var (
	// ErrNotFrozen is returned by query entry points invoked before
	// Freeze built the retrieval indexes.
	ErrNotFrozen = errors.New("geosir: engine must be frozen")
	// ErrFrozen is returned by mutating entry points (AddImage) invoked
	// after Freeze made the engine read-only.
	ErrFrozen = errors.New("geosir: engine is frozen")
	// ErrEmptyQuery is returned when a search carries no query geometry:
	// a zero-vertex Query shape, or a ModeSketch request with no sketch
	// shapes.
	ErrEmptyQuery = errors.New("geosir: empty query")
	// ErrBadK is returned when a search asks for a non-positive number
	// of matches.
	ErrBadK = errors.New("geosir: k must be positive")
)
