package geosir

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := buildEngine(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumImages() != orig.NumImages() ||
		loaded.NumShapes() != orig.NumShapes() ||
		loaded.NumEntries() != orig.NumEntries() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			loaded.NumImages(), loaded.NumShapes(), loaded.NumEntries(),
			orig.NumImages(), orig.NumShapes(), orig.NumEntries())
	}
	// Queries must answer identically.
	q := lshape(0, 0, 3).Transform(Similarity(1.4, 0.5, Pt(40, 40)))
	m1, s1, err := orig.FindSimilar(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := loaded.FindSimilar(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || len(m1) != len(m2) {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
	// Topological queries too.
	binds := map[string]Shape{"sq": square(0, 0, 7), "tri": triangle(0, 0, 5)}
	ids1, _, err := orig.Query("contain(sq, tri, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := loaded.Query("contain(sq, tri, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids1) != len(ids2) {
		t.Fatalf("query results differ: %v vs %v", ids1, ids2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("query results differ: %v vs %v", ids1, ids2)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	orig := buildEngine(t)
	path := filepath.Join(t.TempDir(), "base.gsir")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShapes() != orig.NumShapes() {
		t.Errorf("shapes: %d vs %d", loaded.NumShapes(), orig.NumShapes())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Load(bytes.NewReader([]byte("NOTGS\n"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated body.
	orig := buildEngine(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated input should fail")
	}
}
