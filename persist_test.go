package geosir

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := buildEngine(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumImages() != orig.NumImages() ||
		loaded.NumShapes() != orig.NumShapes() ||
		loaded.NumEntries() != orig.NumEntries() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			loaded.NumImages(), loaded.NumShapes(), loaded.NumEntries(),
			orig.NumImages(), orig.NumShapes(), orig.NumEntries())
	}
	// Queries must answer identically.
	q := lshape(0, 0, 3).Transform(Similarity(1.4, 0.5, Pt(40, 40)))
	m1, s1, err := orig.FindSimilar(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := loaded.FindSimilar(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || len(m1) != len(m2) {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, m1[i], m2[i])
		}
	}
	// Topological queries too.
	binds := map[string]Shape{"sq": square(0, 0, 7), "tri": triangle(0, 0, 5)}
	ids1, _, err := orig.Query("contain(sq, tri, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	ids2, _, err := loaded.Query("contain(sq, tri, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids1) != len(ids2) {
		t.Fatalf("query results differ: %v vs %v", ids1, ids2)
	}
	for i := range ids1 {
		if ids1[i] != ids2[i] {
			t.Fatalf("query results differ: %v vs %v", ids1, ids2)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	orig := buildEngine(t)
	path := filepath.Join(t.TempDir(), "base.gsir")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumShapes() != orig.NumShapes() {
		t.Errorf("shapes: %d vs %d", loaded.NumShapes(), orig.NumShapes())
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should fail")
	}
}

// TestSaveLoadSaveByteIdentity proves both encodings are canonical:
// saving, loading, and saving again reproduces the stream byte for byte.
func TestSaveLoadSaveByteIdentity(t *testing.T) {
	orig := buildEngine(t)
	for _, f := range []Format{FormatGSIR1, FormatGSIR2} {
		var b1 bytes.Buffer
		if err := orig.SaveAs(&b1, f); err != nil {
			t.Fatalf("format %d: save: %v", f, err)
		}
		loaded, err := Load(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("format %d: load: %v", f, err)
		}
		if loaded.Options() != orig.Options() {
			t.Errorf("format %d: options drifted: %+v vs %+v", f, loaded.Options(), orig.Options())
		}
		var b2 bytes.Buffer
		if err := loaded.SaveAs(&b2, f); err != nil {
			t.Fatalf("format %d: re-save: %v", f, err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("format %d: save→load→save is not byte-identical (%d vs %d bytes)",
				f, b1.Len(), b2.Len())
		}
	}
}

// TestReloadedQueryEquivalence proves a reloaded engine (from either
// format) returns identical rankings for every query family.
func TestReloadedQueryEquivalence(t *testing.T) {
	orig := buildEngine(t)
	queries := []Shape{
		lshape(0, 0, 3).Transform(Similarity(1.4, 0.5, Pt(40, 40))),
		triangle(0, 0, 4).Transform(Similarity(0.8, 2.1, Pt(-5, 12))),
		square(0, 0, 9).Transform(Similarity(2.0, -0.7, Pt(3, -8))),
	}
	sketch := []Shape{square(0, 0, 10), triangle(2, 2, 3)}
	for _, f := range []Format{FormatGSIR1, FormatGSIR2} {
		var buf bytes.Buffer
		if err := orig.SaveAs(&buf, f); err != nil {
			t.Fatalf("format %d: save: %v", f, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("format %d: load: %v", f, err)
		}
		for qi, q := range queries {
			m1, s1, err1 := orig.FindSimilar(q, 4)
			m2, s2, err2 := loaded.FindSimilar(q, 4)
			if err1 != nil || err2 != nil {
				t.Fatalf("format %d query %d: errs %v / %v", f, qi, err1, err2)
			}
			if s1 != s2 || len(m1) != len(m2) {
				t.Fatalf("format %d query %d: stats differ: %+v vs %+v", f, qi, s1, s2)
			}
			for i := range m1 {
				if m1[i] != m2[i] {
					t.Fatalf("format %d query %d match %d: %+v vs %+v", f, qi, i, m1[i], m2[i])
				}
			}
			a1, err1 := orig.FindApproximate(q, 4)
			a2, err2 := loaded.FindApproximate(q, 4)
			if err1 != nil || err2 != nil || len(a1) != len(a2) {
				t.Fatalf("format %d query %d: approximate differs", f, qi)
			}
			for i := range a1 {
				if a1[i] != a2[i] {
					t.Fatalf("format %d query %d approx %d: %+v vs %+v", f, qi, i, a1[i], a2[i])
				}
			}
		}
		k1, err1 := orig.FindBySketch(sketch, 3)
		k2, err2 := loaded.FindBySketch(sketch, 3)
		if err1 != nil || err2 != nil || len(k1) != len(k2) {
			t.Fatalf("format %d: sketch retrieval differs: %v / %v", f, err1, err2)
		}
		for i := range k1 {
			if k1[i].ImageID != k2[i].ImageID || k1[i].Score != k2[i].Score {
				t.Fatalf("format %d sketch match %d: %+v vs %+v", f, i, k1[i], k2[i])
			}
		}
	}
}

// TestPersistEmptyEngine round-trips an engine with no images.
func TestPersistEmptyEngine(t *testing.T) {
	eng := New(DefaultOptions())
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumImages() != 0 || loaded.NumShapes() != 0 {
		t.Errorf("empty engine gained content: %d images, %d shapes",
			loaded.NumImages(), loaded.NumShapes())
	}
}

func TestSaveAsUnknownFormat(t *testing.T) {
	eng := New(DefaultOptions())
	if err := eng.SaveAs(&bytes.Buffer{}, Format(99)); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Load(bytes.NewReader([]byte("NOTGS\n"))); err == nil {
		t.Error("bad magic should fail")
	}
	// Truncated body.
	orig := buildEngine(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestPeek(t *testing.T) {
	eng := buildEngine(t)
	for _, f := range []Format{FormatGSIR1, FormatGSIR2} {
		var buf bytes.Buffer
		if err := eng.SaveAs(&buf, f); err != nil {
			t.Fatal(err)
		}
		info, err := Peek(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Peek(%v): %v", f, err)
		}
		if info.Format != f {
			t.Errorf("format = %v, want %v", info.Format, f)
		}
		if info.Images != eng.NumImages() {
			t.Errorf("images = %d, want %d", info.Images, eng.NumImages())
		}
		if info.Options != eng.Options() {
			t.Errorf("options = %+v, want %+v", info.Options, eng.Options())
		}
	}
	if _, err := Peek(bytes.NewReader([]byte("NOPE!\n rest"))); err == nil {
		t.Error("bad magic should fail Peek")
	}
}

func TestPeekFile(t *testing.T) {
	eng := buildEngine(t)
	path := filepath.Join(t.TempDir(), "snap.gsir")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := PeekFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatName != "GSIR2" || info.Images != eng.NumImages() || info.Size <= 0 {
		t.Errorf("info = %+v", info)
	}
	// A flipped byte inside the options section must fail the peek (CRC).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[magicLen+4+8] ^= 0xFF
	bad := filepath.Join(t.TempDir(), "bad.gsir")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := PeekFile(bad); err == nil {
		t.Error("corrupt options section should fail PeekFile")
	}
}
