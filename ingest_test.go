package geosir

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/iofault"
	"repro/internal/synth"
)

// The live-ingestion equivalence suite. The tentpole claim is that a
// frozen ShardedEngine with a live delta answers queries byte-identically
// to an engine that was built with every image up front — before, during,
// and after compaction — and that no acknowledged write is ever lost
// across a crash, at any point of the compaction protocol.

// enableIngest attaches ingestion with auto-compaction off so tests
// control fold timing explicitly.
func enableIngest(t *testing.T, se *ShardedEngine, dir string, cfg IngestConfig) {
	t.Helper()
	cfg.Dir = dir
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = -1
	}
	cfg.NoSync = true
	if err := se.EnableIngest(cfg); err != nil {
		t.Fatalf("EnableIngest: %v", err)
	}
	t.Cleanup(func() { se.CloseIngest() })
}

// splitBase partitions the equivalence base into a frozen prefix and a
// live-inserted suffix.
func splitBase(images []synth.Image) (frozen, live []synth.Image) {
	cut := len(images) * 7 / 10
	return images[:cut], images[cut:]
}

// buildLive builds a sharded engine over the frozen prefix, enables
// ingestion in a temp dir, and inserts the live suffix.
func buildLive(t *testing.T, frozen, live []synth.Image, shards int, cfg IngestConfig) *ShardedEngine {
	t.Helper()
	se := buildShardedFrom(t, frozen, shards)
	enableIngest(t, se, t.TempDir(), cfg)
	ctx := context.Background()
	for _, im := range live {
		if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
			t.Fatalf("InsertImage(%d): %v", im.ID, err)
		}
	}
	return se
}

// assertSearchEquivalent sweeps modes × k and compares both engines'
// results byte-for-byte (global shape ids included).
func assertSearchEquivalent(t *testing.T, label string, want Searcher, got *ShardedEngine, queries, sketch []Shape) {
	t.Helper()
	ctx := context.Background()
	many := got.NumShapes() + 5
	for _, k := range []int{1, 3, many} {
		for qi, q := range queries {
			for _, mode := range []Mode{ModeAuto, ModeExact, ModeApproximate} {
				req := SearchRequest{Query: q, K: k, Mode: mode}
				w, err := want.Search(ctx, req)
				if err != nil {
					t.Fatalf("%s: reference q%d k=%d %v: %v", label, qi, k, mode, err)
				}
				g, err := got.Search(ctx, req)
				if err != nil {
					t.Fatalf("%s: live q%d k=%d %v: %v", label, qi, k, mode, err)
				}
				assertMatchesEqual(t, fmt.Sprintf("%s q%d k=%d %v", label, qi, k, mode), w.Matches, g.Matches)
			}
		}
		req := SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch}
		w, err := want.Search(ctx, req)
		if err != nil {
			t.Fatalf("%s: reference sketch k=%d: %v", label, k, err)
		}
		g, err := got.Search(ctx, req)
		if err != nil {
			t.Fatalf("%s: live sketch k=%d: %v", label, k, err)
		}
		assertSketchEqual(t, label+" sketch", w.SketchMatches, g.SketchMatches)
	}
}

// TestIngestEquivalence pins the delta's exactness: a sharded engine
// frozen over 70% of the base with the remaining 30% live-inserted
// answers byte-identically to a single engine built over everything —
// with the delta live, and again after Compact folds it into a frozen
// shard. Global shape ids must line up too: the delta reserves them in
// insertion order exactly as a from-scratch build would.
func TestIngestEquivalence(t *testing.T) {
	images, queries, sketch := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	single := buildSingle(t, images)

	for _, shards := range []int{1, 2, 7} {
		se := buildLive(t, frozenImgs, liveImgs, shards, IngestConfig{})
		if se.NumImages() != single.NumImages() || se.NumShapes() != single.NumShapes() {
			t.Fatalf("shards=%d: size mismatch: %d/%d images, %d/%d shapes",
				shards, se.NumImages(), single.NumImages(), se.NumShapes(), single.NumShapes())
		}
		assertSearchEquivalent(t, fmt.Sprintf("shards=%d delta", shards), single, se, queries, sketch)

		if err := se.Compact(); err != nil {
			t.Fatalf("shards=%d: Compact: %v", shards, err)
		}
		st := se.IngestStats()
		if st.DeltaShapes != 0 || st.SealedShapes != 0 || st.Compactions != 1 {
			t.Fatalf("shards=%d: post-compaction stats: %+v", shards, st)
		}
		assertSearchEquivalent(t, fmt.Sprintf("shards=%d compacted", shards), single, se, queries, sketch)
	}
}

// TestIngestDeleteEquivalence checks deletes against a reference engine
// built without the deleted images. Global ids shift (the live engine
// keeps reservations for deleted images), so matches compare on
// (ImageID, Distance) rather than byte-identity.
func TestIngestDeleteEquivalence(t *testing.T) {
	images, queries, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()

	// Delete one frozen image and one delta image.
	delFrozen := frozenImgs[len(frozenImgs)/2].ID
	delDelta := liveImgs[len(liveImgs)/2].ID

	var kept []synth.Image
	for _, im := range images {
		if im.ID != delFrozen && im.ID != delDelta {
			kept = append(kept, im)
		}
	}
	ref := buildSingle(t, kept)

	for _, shards := range []int{1, 2, 7} {
		se := buildLive(t, frozenImgs, liveImgs, shards, IngestConfig{})
		for _, id := range []int{delFrozen, delDelta} {
			if err := se.DeleteImage(ctx, id); err != nil {
				t.Fatalf("shards=%d: DeleteImage(%d): %v", shards, id, err)
			}
		}
		if err := se.DeleteImage(ctx, delFrozen); !errors.Is(err, ErrNoImage) {
			t.Fatalf("shards=%d: double delete: got %v, want ErrNoImage", shards, err)
		}
		if se.NumImages() != ref.NumImages() || se.NumShapes() != ref.NumShapes() {
			t.Fatalf("shards=%d: size mismatch after delete: %d/%d images, %d/%d shapes",
				shards, se.NumImages(), ref.NumImages(), se.NumShapes(), ref.NumShapes())
		}
		for _, compacted := range []bool{false, true} {
			if compacted {
				if err := se.Compact(); err != nil {
					t.Fatalf("shards=%d: Compact: %v", shards, err)
				}
			}
			label := fmt.Sprintf("shards=%d compacted=%v", shards, compacted)
			for _, k := range []int{1, 3, se.NumShapes() + 5} {
				for qi, q := range queries {
					for _, mode := range []Mode{ModeExact, ModeApproximate} {
						w, err := ref.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode})
						if err != nil {
							t.Fatalf("%s: reference q%d: %v", label, qi, err)
						}
						g, err := se.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode})
						if err != nil {
							t.Fatalf("%s: live q%d: %v", label, qi, err)
						}
						if len(w.Matches) != len(g.Matches) {
							t.Fatalf("%s q%d k=%d %v: %d vs %d matches", label, qi, k, mode, len(g.Matches), len(w.Matches))
						}
						for i := range w.Matches {
							if w.Matches[i].ImageID != g.Matches[i].ImageID || w.Matches[i].Distance != g.Matches[i].Distance {
								t.Fatalf("%s q%d k=%d %v: match %d diverges: got (%d, %g), want (%d, %g)",
									label, qi, k, mode, i,
									g.Matches[i].ImageID, g.Matches[i].Distance,
									w.Matches[i].ImageID, w.Matches[i].Distance)
							}
							if g.Matches[i].ImageID == delFrozen || g.Matches[i].ImageID == delDelta {
								t.Fatalf("%s q%d: deleted image %d surfaced", label, qi, g.Matches[i].ImageID)
							}
						}
					}
				}
			}
		}
	}
}

// TestIngestReinsertAfterDelete exercises the id-reuse path: a deleted
// image id may be re-inserted with different shapes, gets fresh global
// ids, and the stale frozen copy never resurfaces — including after the
// reinsertion is itself compacted (a dead copy in one shard, a live one
// in another).
func TestIngestReinsertAfterDelete(t *testing.T) {
	images, queries, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()
	se := buildLive(t, frozenImgs, liveImgs, 2, IngestConfig{})

	victim := frozenImgs[0]
	if err := se.DeleteImage(ctx, victim.ID); err != nil {
		t.Fatal(err)
	}
	if err := se.InsertImage(ctx, victim.ID, victim.Shapes); err != nil {
		t.Fatalf("reinsert: %v", err)
	}
	if err := se.Compact(); err != nil {
		t.Fatal(err)
	}
	// Reference: same images, but the victim moved to the end of the
	// insertion order (its reinsertion point).
	var reordered []synth.Image
	for _, im := range images {
		if im.ID != victim.ID {
			reordered = append(reordered, im)
		}
	}
	reordered = append(reordered, victim)
	ref := buildSingle(t, reordered)
	for qi, q := range queries {
		w, err := ref.Search(ctx, SearchRequest{Query: q, K: 3, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		g, err := se.Search(ctx, SearchRequest{Query: q, K: 3, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		if len(w.Matches) != len(g.Matches) {
			t.Fatalf("q%d: %d vs %d matches", qi, len(g.Matches), len(w.Matches))
		}
		for i := range w.Matches {
			if w.Matches[i].ImageID != g.Matches[i].ImageID || w.Matches[i].Distance != g.Matches[i].Distance {
				t.Fatalf("q%d match %d: got (%d, %g), want (%d, %g)", qi, i,
					g.Matches[i].ImageID, g.Matches[i].Distance,
					w.Matches[i].ImageID, w.Matches[i].Distance)
			}
		}
	}
}

// TestIngestMidCompactionQueries runs the full equivalence sweep from
// inside the compaction (after the sealed delta is published, before
// the swap) — queries must answer identically from the {frozen, sealed,
// active} view.
func TestIngestMidCompactionQueries(t *testing.T) {
	images, queries, sketch := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	single := buildSingle(t, images)

	var se *ShardedEngine
	checked := false
	cfg := IngestConfig{CrashStage: func(stage string) error {
		if stage != "built" || checked {
			return nil
		}
		checked = true
		st := se.IngestStats()
		if st.SealedShapes == 0 {
			t.Errorf("mid-compaction: sealed delta empty: %+v", st)
		}
		assertSearchEquivalent(t, "mid-compaction", single, se, queries, sketch)
		return nil
	}}
	se = buildLive(t, frozenImgs, liveImgs, 2, cfg)
	if err := se.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !checked {
		t.Fatal("CrashStage hook never ran")
	}
	assertSearchEquivalent(t, "post-compaction", single, se, queries, sketch)
}

// TestIngestRestartReplay pins WAL durability and global-id stability
// across a restart: insert + delete, drop the engine without compacting,
// reload the directory, and compare byte-identical results (global ids
// included) against the pre-restart engine's answers.
func TestIngestRestartReplay(t *testing.T) {
	images, queries, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()
	dir := t.TempDir()

	se := buildShardedFrom(t, frozenImgs, 2)
	enableIngest(t, se, dir, IngestConfig{})
	for _, im := range liveImgs {
		if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.DeleteImage(ctx, frozenImgs[3].ID); err != nil {
		t.Fatal(err)
	}
	if err := se.DeleteImage(ctx, liveImgs[0].ID); err != nil {
		t.Fatal(err)
	}
	var want []*SearchResponse
	for _, q := range queries {
		r, err := se.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	wantImages, wantShapes := se.NumImages(), se.NumShapes()
	if err := se.CloseIngest(); err != nil {
		t.Fatal(err)
	}

	re, rec, err := LoadShardedDir(dir)
	if err != nil {
		t.Fatalf("LoadShardedDir: %v", err)
	}
	if !rec.Complete() {
		t.Fatalf("degraded load: %+v", rec)
	}
	enableIngest(t, re, dir, IngestConfig{})
	st := re.IngestStats()
	if st.Replayed == 0 {
		t.Fatalf("no WAL ops replayed: %+v", st)
	}
	if re.NumImages() != wantImages || re.NumShapes() != wantShapes {
		t.Fatalf("reloaded size: %d/%d images, %d/%d shapes",
			re.NumImages(), wantImages, re.NumShapes(), wantShapes)
	}
	for qi, q := range queries {
		got, err := re.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesEqual(t, fmt.Sprintf("replayed q%d", qi), want[qi].Matches, got.Matches)
	}
}

// TestIngestCrashMidCompaction is the acceptance-criteria test: abort
// the compaction at every stage of its protocol (plus a manifest-write
// fault), "crash" by abandoning the engine, recover the directory with
// LoadShardedDir + EnableIngest, and verify every acknowledged write is
// present and queries answer exactly as before the crash. The recovered
// state may be pre- or post-compaction — never torn.
func TestIngestCrashMidCompaction(t *testing.T) {
	images, queries, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()

	stages := []string{"built", "shard-saved", "manifest-written", "wal-rewritten", "manifest-fault"}
	for _, stage := range stages {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			se := buildShardedFrom(t, frozenImgs, 2)
			crashErr := errors.New("injected crash at " + stage)
			cfg := IngestConfig{CrashStage: func(s string) error {
				if s == stage {
					return crashErr
				}
				return nil
			}}
			if stage == "manifest-fault" {
				cfg = IngestConfig{WrapManifest: func(w io.Writer) io.Writer {
					return iofault.FailWriter(w, 64)
				}}
			}
			enableIngest(t, se, dir, cfg)
			for _, im := range liveImgs {
				if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
					t.Fatal(err)
				}
			}
			if err := se.DeleteImage(ctx, frozenImgs[1].ID); err != nil {
				t.Fatal(err)
			}
			var want []*SearchResponse
			for _, q := range queries {
				r, err := se.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, r)
			}
			wantImages, wantShapes := se.NumImages(), se.NumShapes()

			err := se.Compact()
			if err == nil {
				t.Fatalf("Compact succeeded despite %s fault", stage)
			}
			if stage != "manifest-fault" && !errors.Is(err, crashErr) {
				t.Fatalf("Compact error %v does not wrap the injected crash", err)
			}
			// The surviving engine must still answer correctly (a failed
			// fold leaves the sealed delta serving queries; a post-commit
			// failure leaves the swapped view serving them).
			for qi, q := range queries {
				got, serr := se.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
				if serr != nil {
					t.Fatal(serr)
				}
				assertMatchesEqual(t, fmt.Sprintf("surviving q%d", qi), want[qi].Matches, got.Matches)
			}
			se.CloseIngest() // release the WAL handle; the "crash"

			re, rec, lerr := LoadShardedDir(dir)
			if lerr != nil {
				t.Fatalf("recovery load: %v", lerr)
			}
			if !rec.Complete() {
				t.Fatalf("recovery degraded: %+v", rec)
			}
			enableIngest(t, re, dir, IngestConfig{})
			if re.NumImages() != wantImages || re.NumShapes() != wantShapes {
				t.Fatalf("recovered size: %d/%d images, %d/%d shapes",
					re.NumImages(), wantImages, re.NumShapes(), wantShapes)
			}
			for qi, q := range queries {
				got, serr := re.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
				if serr != nil {
					t.Fatal(serr)
				}
				assertMatchesEqual(t, fmt.Sprintf("recovered q%d", qi), want[qi].Matches, got.Matches)
			}
		})
	}
}

// TestIngestCompactRetry verifies the fold is retryable: after a
// manifest-write fault the sealed delta stays queryable, and a second
// Compact (fault cleared) commits it.
func TestIngestCompactRetry(t *testing.T) {
	images, queries, sketch := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	single := buildSingle(t, images)

	fail := true
	cfg := IngestConfig{WrapManifest: func(w io.Writer) io.Writer {
		if fail {
			return iofault.FailWriter(w, 64)
		}
		return w
	}}
	se := buildLive(t, frozenImgs, liveImgs, 2, cfg)
	if err := se.Compact(); err == nil {
		t.Fatal("Compact succeeded despite manifest fault")
	} else if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("Compact error %v does not wrap the injected fault", err)
	}
	st := se.IngestStats()
	if st.SealedShapes == 0 || st.Compactions != 0 {
		t.Fatalf("after failed fold: %+v", st)
	}
	assertSearchEquivalent(t, "sealed after failed fold", single, se, queries, sketch)

	fail = false
	if err := se.Compact(); err != nil {
		t.Fatalf("retry Compact: %v", err)
	}
	st = se.IngestStats()
	if st.SealedShapes != 0 || st.Compactions != 1 {
		t.Fatalf("after retry: %+v", st)
	}
	assertSearchEquivalent(t, "after retried fold", single, se, queries, sketch)
}

// faultyWriter fails writes while *fail is set.
type faultyWriter struct {
	w    io.Writer
	fail *bool
}

func (f faultyWriter) Write(p []byte) (int, error) {
	if *f.fail {
		return 0, iofault.ErrInjected
	}
	return f.w.Write(p)
}

// TestIngestWALAppendFault verifies an unacknowledged insert leaves no
// trace: when the WAL append fails the delta rolls back, including the
// global-id reservation, so later inserts line up with a crash replay.
func TestIngestWALAppendFault(t *testing.T) {
	images, queries, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()

	// The wrap is applied once at OpenWAL, so the fault gate has to live
	// inside the writer and consult the flag per write.
	fail := false
	cfg := IngestConfig{WrapWAL: func(w io.Writer) io.Writer {
		return faultyWriter{w: w, fail: &fail}
	}}
	se := buildLive(t, frozenImgs, liveImgs[:len(liveImgs)-1], 2, cfg)
	last := liveImgs[len(liveImgs)-1]

	fail = true
	if err := se.InsertImage(ctx, last.ID, last.Shapes); err == nil {
		t.Fatal("insert succeeded despite WAL fault")
	} else if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("insert error %v does not wrap the injected fault", err)
	}
	if se.IngestStats().DeltaImages != len(liveImgs)-1 {
		t.Fatalf("failed insert left a trace: %+v", se.IngestStats())
	}
	fail = false
	if err := se.InsertImage(ctx, last.ID, last.Shapes); err != nil {
		t.Fatalf("insert after rollback: %v", err)
	}
	// Global ids must be exactly what a from-scratch build assigns — the
	// rolled-back reservation must not have burned ids.
	single := buildSingle(t, images)
	for qi, q := range queries {
		w, err := single.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		g, err := se.Search(ctx, SearchRequest{Query: q, K: 5, Mode: ModeExact})
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesEqual(t, fmt.Sprintf("post-rollback q%d", qi), w.Matches, g.Matches)
	}
}

// TestIngestAutoCompaction verifies the threshold trigger: inserts past
// CompactThreshold shapes kick off a background fold.
func TestIngestAutoCompaction(t *testing.T) {
	images, _, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()
	se := buildShardedFrom(t, frozenImgs, 2)
	enableIngest(t, se, t.TempDir(), IngestConfig{CompactThreshold: 1})
	for _, im := range liveImgs[:3] {
		if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := se.IngestStats()
		if st.AutoCompactions > 0 && st.Compactions > 0 && !st.Compacting {
			if st.LastCompactError != "" {
				t.Fatalf("auto-compaction failed: %s", st.LastCompactError)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-compaction never completed: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIngestConcurrentSearch hammers the swap paths under -race:
// searches run continuously while inserts, deletes, and compactions
// mutate the view.
func TestIngestConcurrentSearch(t *testing.T) {
	images, queries, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()
	se := buildShardedFrom(t, frozenImgs, 2)
	enableIngest(t, se, t.TempDir(), IngestConfig{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[(i+w)%len(queries)]
				mode := []Mode{ModeExact, ModeApproximate, ModeAuto}[i%3]
				if _, err := se.Search(ctx, SearchRequest{Query: q, K: 3, Mode: mode}); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
			}
		}(w)
	}
	for i, im := range liveImgs {
		if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
			t.Fatal(err)
		}
		if i%4 == 3 {
			if err := se.Compact(); err != nil && !errors.Is(err, ErrCompacting) {
				t.Fatal(err)
			}
		}
		if i%5 == 4 {
			if err := se.DeleteImage(ctx, im.ID); err != nil && !errors.Is(err, ErrCompacting) {
				t.Fatal(err)
			}
		}
	}
	if err := se.Compact(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
}

// TestIngestErrors covers the refusal paths.
func TestIngestErrors(t *testing.T) {
	images, _, _ := equivBase(t)
	frozenImgs, _ := splitBase(images)
	ctx := context.Background()

	se := buildShardedFrom(t, frozenImgs, 2)
	if err := se.InsertImage(ctx, 999, nil); !errors.Is(err, ErrIngestOff) {
		t.Fatalf("insert before enable: %v", err)
	}
	if err := se.DeleteImage(ctx, 999); !errors.Is(err, ErrIngestOff) {
		t.Fatalf("delete before enable: %v", err)
	}
	if err := se.Compact(); !errors.Is(err, ErrIngestOff) {
		t.Fatalf("compact before enable: %v", err)
	}
	enableIngest(t, se, t.TempDir(), IngestConfig{})
	if err := se.EnableIngest(IngestConfig{Dir: t.TempDir()}); err == nil {
		t.Fatal("double EnableIngest succeeded")
	}
	if err := se.InsertImage(ctx, frozenImgs[0].ID, frozenImgs[0].Shapes); !errors.Is(err, ErrImageExists) {
		t.Fatalf("duplicate insert: %v", err)
	}
	if err := se.DeleteImage(ctx, -12345); !errors.Is(err, ErrNoImage) {
		t.Fatalf("delete unknown: %v", err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := se.InsertImage(cctx, 999, frozenImgs[0].Shapes); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled insert: %v", err)
	}
	// Mismatched directory: a manifest for a different engine is refused.
	other := buildShardedFrom(t, frozenImgs[:4], 3)
	dir := t.TempDir()
	if err := other.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	se2 := buildShardedFrom(t, frozenImgs, 2)
	if err := se2.EnableIngest(IngestConfig{Dir: dir}); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("mismatched dir: %v", err)
	}
}

// TestIngestManifestStability verifies SaveDir on a live engine stays
// loadable and that the WAL file persists alongside the shards.
func TestIngestManifestStability(t *testing.T) {
	images, _, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	ctx := context.Background()
	dir := t.TempDir()
	se := buildShardedFrom(t, frozenImgs, 2)
	enableIngest(t, se, dir, IngestConfig{})
	for _, im := range liveImgs {
		if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
			t.Fatal(err)
		}
	}
	if err := se.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, shardFileName(2))); err != nil {
		t.Fatalf("compacted shard file missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, walName)); err != nil {
		t.Fatalf("wal missing: %v", err)
	}
	se.CloseIngest()
	re, rec, err := LoadShardedDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Complete() {
		t.Fatalf("degraded: %+v", rec)
	}
	if re.NumImages() != se.NumImages() || re.NumShapes() != se.NumShapes() {
		t.Fatalf("reload size mismatch: %d/%d images, %d/%d shapes",
			re.NumImages(), se.NumImages(), re.NumShapes(), se.NumShapes())
	}
}

// TestCloseIngestQuiescesCompaction pins the shutdown/fold interaction:
// CloseIngest must wait out an in-flight compaction — otherwise the
// stale fold's phase 3 would rewrite the MANIFEST.json and DELTA.wal a
// successor engine (server reload-in-place) is already serving, losing
// its acknowledged writes. Once CloseIngest returns, every mutation
// path fails with ErrIngestOff, and the directory reloads to exactly
// the committed state.
func TestCloseIngestQuiescesCompaction(t *testing.T) {
	images, _, _ := equivBase(t)
	frozenImgs, liveImgs := splitBase(images)
	dir := t.TempDir()
	se := buildShardedFrom(t, frozenImgs, 2)
	entered := make(chan struct{})
	release := make(chan struct{})
	enableIngest(t, se, dir, IngestConfig{CrashStage: func(s string) error {
		if s == "built" {
			close(entered)
			<-release
		}
		return nil
	}})
	ctx := context.Background()
	for _, im := range liveImgs {
		if err := se.InsertImage(ctx, im.ID, im.Shapes); err != nil {
			t.Fatal(err)
		}
	}
	wantImages, wantShapes := se.NumImages(), se.NumShapes()

	compactDone := make(chan error, 1)
	go func() { compactDone <- se.Compact() }()
	<-entered
	closeDone := make(chan error, 1)
	go func() { closeDone <- se.CloseIngest() }()
	select {
	case err := <-closeDone:
		t.Fatalf("CloseIngest returned (%v) while the fold was still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-compactDone; err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("CloseIngest: %v", err)
	}
	if err := se.InsertImage(ctx, 424242, liveImgs[0].Shapes); !errors.Is(err, ErrIngestOff) {
		t.Fatalf("insert after close: %v", err)
	}
	if err := se.DeleteImage(ctx, liveImgs[0].ID); !errors.Is(err, ErrIngestOff) {
		t.Fatalf("delete after close: %v", err)
	}
	if err := se.Compact(); !errors.Is(err, ErrIngestOff) {
		t.Fatalf("compact after close: %v", err)
	}

	re, rec, err := LoadShardedDir(dir)
	if err != nil {
		t.Fatalf("recovery load: %v", err)
	}
	if !rec.Complete() {
		t.Fatalf("degraded reload: %+v", rec)
	}
	if re.NumImages() != wantImages || re.NumShapes() != wantShapes {
		t.Fatalf("reload size mismatch: %d/%d images, %d/%d shapes",
			re.NumImages(), wantImages, re.NumShapes(), wantShapes)
	}
}
