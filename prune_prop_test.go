package geosir

import (
	"context"
	"reflect"
	"testing"
)

// TestSharedBoundDeterministic is the property test for the cross-shard
// shared top-k bound (DESIGN.md §4.9): the bound makes each shard's
// *work* depend on scheduling — which shard publishes first decides what
// the others skip — so this test re-runs the same ModeExact and
// ModeApproximate queries many times on multi-shard engines with real
// fan-out concurrency and demands the matches stay byte-identical to
// each other and to the single unsharded engine. Run under -race this
// also checks the bound's atomics.
func TestSharedBoundDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("property soak")
	}
	images, queries, _ := equivBase(t)
	single := buildSingle(t, images)
	ctx := context.Background()
	const k = 4
	const rounds = 6

	for _, mode := range []Mode{ModeExact, ModeApproximate} {
		want := make([][]Match, len(queries))
		for qi, q := range queries {
			resp, err := single.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode})
			if err != nil {
				t.Fatalf("%s single q%d: %v", mode, qi, err)
			}
			want[qi] = resp.Matches
		}
		for _, shards := range []int{2, 7} {
			se := buildShardedFrom(t, images, shards)
			for round := 0; round < rounds; round++ {
				for qi, q := range queries {
					resp, err := se.Search(ctx, SearchRequest{Query: q, K: k, Mode: mode, Exec: ExecFanout, MaxWorkers: 4})
					if err != nil {
						t.Fatalf("%s shards=%d round %d q%d: %v", mode, shards, round, qi, err)
					}
					if !reflect.DeepEqual(resp.Matches, want[qi]) {
						t.Fatalf("%s shards=%d round %d q%d: matches diverge from single engine\ngot:  %+v\nwant: %+v",
							mode, shards, round, qi, resp.Matches, want[qi])
					}
				}
			}
		}
	}
}
