package geosir

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geohash"
	"repro/internal/ingest"
	"repro/internal/sched"
)

// Compile-time check: both engines answer the unified Search API.
var (
	_ Searcher = (*Engine)(nil)
	_ Searcher = (*ShardedEngine)(nil)
)

// ShardedEngine partitions the image base across N independent shards,
// each a full Engine with its own fattening index and geometric hash
// table. Images are routed to shards by a stable hash of their id
// (core.ShardFor), Freeze builds every shard index in parallel, and
// Search fans each request out across the shards and merges the
// per-shard answers with an exact bounded top-k merge — results are
// identical, byte for byte, to a single Engine over the same base (see
// DESIGN.md §4.8 for why the merge is exact).
//
// Shape ids in results are global: the ids a single unpartitioned
// Engine would have assigned, via the core.ShardMap recorded at
// AddImage time. Image ids need no translation (they are caller-chosen
// and stored verbatim).
//
// After Freeze the engine can optionally go live (EnableIngest): a
// mutable delta shard then accepts InsertImage/DeleteImage without a
// rebuild, queries union the delta with the frozen shards, and a
// background compaction folds the delta into a new immutable shard
// (DESIGN.md §4.12). All of that is coordinated through an immutable
// shardView swapped atomically, so Search never takes a lock.
//
// Concurrency: not safe for concurrent mutation before Freeze; after
// Freeze, Search is fully concurrent, and with ingestion enabled the
// mutation API (InsertImage/DeleteImage/Compact) is itself safe for
// concurrent callers and concurrent with Search.
type ShardedEngine struct {
	opts   Options
	shards []*Engine
	smap   *core.ShardMap
	order  []shardImage // AddImage order, persisted as the snapshot manifest
	frozen bool

	// view is the atomically-published query snapshot; non-nil once
	// frozen. Mutations (live ingestion, compaction) install a fresh
	// view; in-flight queries keep the one they loaded.
	view atomic.Pointer[shardView]
	// mutEpoch counts visible mutations: every acknowledged insert,
	// delete, and compaction swap bumps it, so result caches keyed on it
	// invalidate exactly when answers may change.
	mutEpoch atomic.Uint64
	// ing is the live-ingestion coordinator, non-nil after EnableIngest.
	// Atomic because CloseIngest (snapshot swap/reload) clears it
	// concurrently with mutations and stats reads.
	ing atomic.Pointer[ingestor]

	// sched plans each request's fan-out width over the live parts from
	// the in-flight load gauge; the zero value is ready to use
	// (DESIGN.md §4.13).
	sched sched.Planner
}

// shardImage is one image in the manifest log: the image id, how many
// shapes it contributed, which shard physically holds it (-1 when it
// only ever reserved ids), and whether it has since been deleted. The
// sequence of these fixes every global shape id.
type shardImage struct {
	ID      int
	Shapes  int
	Shard   int
	Deleted bool
}

// shardView is one immutable snapshot of everything a query needs. A
// view is built once, published with an atomic store, and never mutated
// afterwards; queries that loaded an old view keep a consistent base
// while mutations install successors.
type shardView struct {
	shards []*Engine
	smap   *core.ShardMap
	order  []shardImage
	gen    uint64 // compaction generation, for statz and the manifest

	// sealed is the delta a running compaction is folding (read-only),
	// active the delta accepting new writes. Both nil before
	// EnableIngest; sealed is nil outside a compaction window. sealed
	// precedes active: its global ids are lower, preserving merge order.
	sealed *ingest.Delta
	active *ingest.Delta

	// deadGIDs marks global shape ids whose frozen copy is tombstoned
	// (image deleted after its shard froze). deadIn is the same set
	// grouped per shard at image granularity, for the paths that filter
	// whole images (sketch tables, topological queries). An image id may
	// legitimately appear dead in one shard and live in another — delete
	// then re-insert then compact — so the per-shard grouping is not
	// redundant with a flat image set.
	deadGIDs map[int]bool
	deadIn   []map[int]bool
}

// deltas returns the live mutable parts of the view, sealed first so
// the k-way merge sees ascending global-id ranges.
func (v *shardView) deltas() []*ingest.Delta {
	out := make([]*ingest.Delta, 0, 2)
	if v.sealed != nil && v.sealed.NumShapes() > 0 {
		out = append(out, v.sealed)
	}
	if v.active != nil && v.active.NumShapes() > 0 {
		out = append(out, v.active)
	}
	return out
}

// liveShards returns the indices of shards that can answer queries:
// frozen and non-empty. A shard dropped wholesale by snapshot recovery
// is left empty and simply contributes nothing (partial results).
func (v *shardView) liveShards() []int {
	out := make([]int, 0, len(v.shards))
	for i, sh := range v.shards {
		if sh != nil && sh.Frozen() && sh.NumShapes() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// deadImagesIn returns the image ids whose copy on the given shard is
// tombstoned (nil when none).
func (v *shardView) deadImagesIn(shard int) map[int]bool {
	if shard < len(v.deadIn) {
		return v.deadIn[shard]
	}
	return nil
}

// liveLocal drops candidate local shape ids whose global id is
// tombstoned, in place. Filtering happens before scoring, so the
// per-shard running k-th best — and any bound published from it — only
// ever reflects shapes that can appear in the final answer.
func (v *shardView) liveLocal(shard int, ids []int) []int {
	if len(v.deadGIDs) == 0 {
		return ids
	}
	out := ids[:0]
	for _, id := range ids {
		if !v.deadGIDs[v.smap.Global(shard, id)] {
			out = append(out, id)
		}
	}
	return out
}

// toGlobal rewrites a shard's local shape ids to global ids in place.
// Within one shard local id order is ascending global id order, so a
// list sorted by (Distance, local id) stays sorted by (Distance,
// global id).
func (v *shardView) toGlobal(shard int, ms []Match) []Match {
	for i := range ms {
		ms[i].ShapeID = v.smap.Global(shard, ms[i].ShapeID)
	}
	return ms
}

// dropDead removes matches whose global shape id is tombstoned,
// preserving order. Call after toGlobal.
func (v *shardView) dropDead(ms []Match) []Match {
	if len(v.deadGIDs) == 0 {
		return ms
	}
	out := ms[:0]
	for _, m := range ms {
		if !v.deadGIDs[m.ShapeID] {
			out = append(out, m)
		}
	}
	return out
}

// liveShapeCount is the number of shapes a query can return: frozen
// shapes minus tombstones plus the deltas' live shapes.
func (v *shardView) liveShapeCount() int {
	n := 0
	for _, sh := range v.shards {
		if sh != nil && sh.NumImages() > 0 {
			n += sh.NumShapes()
		}
	}
	n -= len(v.deadGIDs)
	if v.sealed != nil {
		n += v.sealed.NumShapes()
	}
	if v.active != nil {
		n += v.active.NumShapes()
	}
	return n
}

// NewSharded creates an empty sharded engine over the given number of
// partitions (values < 1 are treated as 1). Every shard shares the same
// options.
func NewSharded(opts Options, shards int) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = New(opts)
	}
	return &ShardedEngine{
		opts:   engines[0].opts, // post-defaulting, same as Engine.Options()
		shards: engines,
		smap:   core.NewShardMap(shards),
	}
}

// newShardedFromParts assembles a sharded engine from already-loaded
// shards (see LoadShardedDir). Shards must be frozen or empty.
func newShardedFromParts(opts Options, shards []*Engine, smap *core.ShardMap, order []shardImage, gen uint64) *ShardedEngine {
	se := &ShardedEngine{opts: opts, shards: shards, smap: smap, order: order, frozen: true}
	se.publishBaseView(gen)
	return se
}

// publishBaseView installs the initial query view over the frozen
// shards, deriving the tombstone sets from the manifest log's Deleted
// flags (all empty on a freshly built engine).
func (se *ShardedEngine) publishBaseView(gen uint64) {
	v := &shardView{shards: se.shards, smap: se.smap, order: se.order, gen: gen}
	gid := 0
	for _, im := range se.order {
		if im.Deleted && im.Shard >= 0 {
			if v.deadGIDs == nil {
				v.deadGIDs = make(map[int]bool)
			}
			for g := gid; g < gid+im.Shapes; g++ {
				v.deadGIDs[g] = true
			}
			if v.deadIn == nil {
				v.deadIn = make([]map[int]bool, len(se.shards))
			}
			if v.deadIn[im.Shard] == nil {
				v.deadIn[im.Shard] = make(map[int]bool)
			}
			v.deadIn[im.Shard][im.ID] = true
		}
		gid += im.Shapes
	}
	se.view.Store(v)
}

// snapshot returns the current query view, or a transient one over the
// build-phase state before Freeze has published the first view.
func (se *ShardedEngine) snapshot() *shardView {
	if v := se.view.Load(); v != nil {
		return v
	}
	return &shardView{shards: se.shards, smap: se.smap, order: se.order}
}

// AddImage routes an image to its shard. Global shape ids are assigned
// in AddImage call order, exactly as a single Engine would assign them.
func (se *ShardedEngine) AddImage(imageID int, shapes []Shape) error {
	if se.frozen {
		return ErrFrozen
	}
	shard := core.ShardFor(imageID, len(se.shards))
	if err := se.shards[shard].AddImage(imageID, shapes); err != nil {
		return err
	}
	se.smap.AssignImage(shard, len(shapes))
	se.order = append(se.order, shardImage{ID: imageID, Shapes: len(shapes), Shard: shard})
	return nil
}

// Freeze builds every shard's retrieval index and hash table in
// parallel, one goroutine per non-empty shard. Empty shards (possible
// when shards > images) stay unfrozen and are skipped by queries.
func (se *ShardedEngine) Freeze() error {
	if se.frozen {
		return nil
	}
	if se.NumImages() == 0 {
		return errors.New("geosir: cannot freeze an empty engine")
	}
	errs := make([]error, len(se.shards))
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		if sh.NumImages() == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			errs[i] = sh.Freeze()
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("geosir: freezing shard %d: %w", i, err)
		}
	}
	se.frozen = true
	se.publishBaseView(0)
	return nil
}

// Options returns the shared per-shard configuration (after defaulting).
func (se *ShardedEngine) Options() Options { return se.opts }

// Frozen reports whether Freeze has completed.
func (se *ShardedEngine) Frozen() bool { return se.frozen }

// NumShards returns the partition count (compaction grows it).
func (se *ShardedEngine) NumShards() int { return len(se.snapshot().shards) }

// Shard exposes one partition's Engine for inspection (per-shard statz,
// tests). Treat it as read-only.
func (se *ShardedEngine) Shard(i int) *Engine { return se.snapshot().shards[i] }

// IDMap exposes the global⇄(shard, local) shape-id mapping of the
// current view.
func (se *ShardedEngine) IDMap() *core.ShardMap { return se.snapshot().smap }

// StorageStats aggregates the shards' storage backing: MappedBytes and
// ResidentBytes sum over mmap-served shards, and LoadMode is "mmap"
// when at least one shard serves from a mapping. A -1 resident estimate
// from any shard makes the aggregate -1 (unknown).
func (se *ShardedEngine) StorageStats() StorageStats {
	out := StorageStats{LoadMode: "heap"}
	for _, sh := range se.snapshot().shards {
		st := sh.StorageStats()
		if st.LoadMode != "mmap" {
			continue
		}
		out.LoadMode = "mmap"
		out.MappedBytes += st.MappedBytes
		if st.ResidentBytes < 0 || out.ResidentBytes < 0 {
			out.ResidentBytes = -1
		} else {
			out.ResidentBytes += st.ResidentBytes
		}
	}
	return out
}

// Close releases every shard's snapshot mapping (no-op for heap-backed
// shards). The engine must not be queried afterward.
func (se *ShardedEngine) Close() error {
	var first error
	for _, sh := range se.snapshot().shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// MutationEpoch returns the count of visible mutations (inserts,
// deletes, compaction swaps) since startup. Any two Searches bracketed
// by equal epochs saw the same logical base, so caches may key on it.
func (se *ShardedEngine) MutationEpoch() uint64 { return se.mutEpoch.Load() }

// Generation returns the compaction generation of the current view.
func (se *ShardedEngine) Generation() uint64 { return se.snapshot().gen }

// NumImages returns the number of live images: frozen images minus
// tombstones plus the deltas' live images.
func (se *ShardedEngine) NumImages() int {
	v := se.snapshot()
	n := 0
	for _, sh := range v.shards {
		n += sh.NumImages()
	}
	for _, dead := range v.deadIn {
		n -= len(dead)
	}
	if v.sealed != nil {
		n += v.sealed.NumImages()
	}
	if v.active != nil {
		n += v.active.NumImages()
	}
	return n
}

// NumShapes returns the number of live shapes (see liveShapeCount).
func (se *ShardedEngine) NumShapes() int { return se.snapshot().liveShapeCount() }

// NumEntries returns the number of stored normalized copies across all
// shards and deltas. Tombstoned frozen shapes' copies remain stored
// until a rebuild and are still counted.
func (se *ShardedEngine) NumEntries() int {
	v := se.snapshot()
	n := 0
	for _, sh := range v.shards {
		if sh.NumImages() > 0 {
			n += sh.NumEntries()
		}
	}
	if v.sealed != nil {
		n += v.sealed.NumEntries()
	}
	if v.active != nil {
		n += v.active.NumEntries()
	}
	return n
}

// tau returns the shared similarity threshold, used by the ModeAuto
// fallback decision.
func (se *ShardedEngine) tau(v *shardView) float64 {
	for _, si := range v.liveShards() {
		return v.shards[si].db.Tau()
	}
	if se.opts.Tau > 0 {
		return se.opts.Tau
	}
	return DefaultOptions().Tau // mirror of New()'s defaulting
}

// Search answers one retrieval request by fanning it out across the
// live shards — and, when ingestion is enabled, the mutable delta(s) —
// and merging the answers. The decision structure mirrors Engine.Search
// stage for stage: same validation order, same ModeAuto fallback rule
// (fall back to hashing unless every live part converged and the merged
// best match is within τ), same empty-approximate recovery. The view is
// loaded once per request, so a compaction swapping shards mid-request
// never mixes two bases in one answer.
//
// The fan-out width is planned once per request by internal/sched from
// req.Exec, the live in-flight gauge, and GOMAXPROCS; both stages of a
// ModeAuto request (exact, then the hashing fallback) run under the one
// plan. Width only changes how fast the answer arrives, never the
// answer: a sequential plan walks the same parts under the same shared
// bound and merges identically (DESIGN.md §4.13).
func (se *ShardedEngine) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !se.frozen {
		return nil, ErrNotFrozen
	}
	if req.K <= 0 {
		return nil, ErrBadK
	}
	release := se.sched.Enter()
	defer release()
	v := se.snapshot()
	pol, maxw := req.execPlan()
	nparts := len(v.liveShards()) + len(v.deltas())
	switch req.Mode {
	case ModeAuto, ModeExact:
		if len(req.Query.Pts) == 0 {
			return nil, ErrEmptyQuery
		}
		width := se.sched.Width(nparts, pol, maxw)
		if req.Mode == ModeAuto && req.Ann == AnnApprox {
			ms, stats, err := se.annApproxFanout(ctx, v, req.Query, req.K, width)
			if err != nil {
				return nil, err
			}
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		// The cross-shard shared bound makes each shard's candidate
		// pruning depend on what the other shards found first, which
		// perturbs the (timing-dependent) per-shard Stats and convergence
		// flags without affecting the merged matches. ModeAuto's fallback
		// decision reads stats.Converged and must stay deterministic, so
		// only ModeExact — where convergence is reporting, not control
		// flow — shares the bound.
		ms, stats, err := se.exactFanout(ctx, v, req.Query, req.K, width, req.Mode == ModeExact, req.Ann)
		if err != nil {
			return nil, err
		}
		if req.Mode == ModeExact || (stats.Converged && exactGoodEnough(ms, se.tau(v))) {
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		approx, astats, err := se.approxFanout(ctx, v, req.Query, req.K, width, req.Ann)
		if err != nil {
			return nil, err
		}
		stats.UsedHashing = true
		stats.addANN(astats)
		if len(approx) == 0 {
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		return &SearchResponse{Matches: approx, Stats: stats}, nil
	case ModeApproximate:
		if len(req.Query.Pts) == 0 {
			return nil, ErrEmptyQuery
		}
		width := se.sched.Width(nparts, pol, maxw)
		if req.Ann == AnnApprox {
			ms, stats, err := se.annApproxFanout(ctx, v, req.Query, req.K, width)
			if err != nil {
				return nil, err
			}
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		ms, stats, err := se.approxFanout(ctx, v, req.Query, req.K, width, req.Ann)
		if err != nil {
			return nil, err
		}
		stats.UsedHashing = true
		return &SearchResponse{Matches: ms, Stats: stats}, nil
	case ModeSketch:
		// Sketch work items are (sketch shape × part) pairs, so the
		// plan covers the full task count.
		width := se.sched.Width(nparts*len(req.Sketch), pol, maxw)
		sms, stats, err := se.sketchFanout(ctx, v, req.Sketch, req.K, width, req.Ann)
		if err != nil {
			return nil, err
		}
		return &SearchResponse{SketchMatches: sms, Stats: stats}, nil
	}
	return nil, fmt.Errorf("geosir: unknown search mode %d", int(req.Mode))
}

// SchedStats reports the engine's execution-scheduler counters: the
// in-flight request gauge and the fan-out/sequential plan counts.
func (se *ShardedEngine) SchedStats() SchedStats { return schedStatsFrom(se.sched.Stats()) }

// Query evaluates a topological query (§5) against every live shard
// and unions the matching image ids. Topological predicates relate
// shapes within one image, and every image lives whole on exactly one
// shard, so the per-shard evaluation loses nothing. Images tombstoned
// after freeze are filtered out; images still in the mutable delta are
// not yet visible to topological queries (they gain topology graphs at
// compaction). Like Engine.Query it updates shared selectivity
// estimators and must not race with itself; use one goroutine for
// topological queries.
func (se *ShardedEngine) Query(src string, binds map[string]Shape) ([]int, string, error) {
	if !se.frozen {
		return nil, "", ErrNotFrozen
	}
	v := se.snapshot()
	var all []int
	var plan string
	for _, si := range v.liveShards() {
		ids, p, err := v.shards[si].Query(src, binds)
		if err != nil {
			return nil, "", err
		}
		if dead := v.deadImagesIn(si); len(dead) > 0 {
			kept := ids[:0]
			for _, id := range ids {
				if !dead[id] {
					kept = append(kept, id)
				}
			}
			ids = kept
		}
		all = append(all, ids...)
		plan = p
	}
	sort.Ints(all)
	return all, plan, nil
}

// exactFanout runs the fattening search on every live shard — and an
// exhaustive exact match on every live delta — concurrently and merges
// the sorted per-part top-k lists exactly.
//
// Each shard is asked for min(k + tombstones, its shape count) matches:
// a shard cannot supply more than it holds, at most len(deadGIDs) of
// its best can be filtered as tombstoned, and capping lets small shards
// reach the convergence condition (the k-th best must exist to be
// proven within ε/2). Because the per-shape distances are intrinsic to
// (query, shape) and every shape lives on exactly one part, the merged
// top-k of converged parts is the true global top-k. Deltas are scanned
// exhaustively (they are small by construction) and always converge.
//
// With useShared set the shards additionally prune against each other
// mid-flight through one atomic shared bound: every uncapped shard
// publishes its live k-th best, every shard discards candidates proven
// strictly worse than the tightest published value. Capped shards must
// not publish — their k'-th best does not bound the global k-th — but
// may consume, since anything they discard is proven outside the merged
// top-k (DESIGN.md §4.9). Tombstones disable the bound entirely: a
// shard's k-th best over a set that still contains dead shapes does not
// bound the k-th best of the live base.
func (se *ShardedEngine) exactFanout(ctx context.Context, v *shardView, q Shape, k, width int, useShared bool, ann AnnMode) ([]Match, Stats, error) {
	live := v.liveShards()
	deltas := v.deltas()
	dead := len(v.deadGIDs)
	want := k + dead // overfetch so filtering cannot starve the merge
	n := len(live) + len(deltas)
	lists := make([][]Match, n)
	stats := make([]Stats, n)
	var shared *core.SharedBound
	if useShared && dead == 0 && len(live) > 1 {
		shared = core.NewSharedBound()
	}
	err := fanout(ctx, n, width, func(i int) error {
		if i >= len(live) {
			d := deltas[i-len(live)]
			dms, err := d.Match(ctx, q, want, true)
			if err != nil {
				return fmt.Errorf("geosir: delta: %w", err)
			}
			lists[i] = deltaToMatches(dms, false)
			stats[i] = Stats{Converged: true, Candidates: d.NumShapes()}
			return nil
		}
		si := live[i]
		sh := v.shards[si]
		kk := min(want, sh.NumShapes())
		// Each shard ranks its own bootstrap candidates against its own
		// ANN index — a per-shard visit-order change, so the per-shard
		// (and thus merged) matches are byte-identical to AnnOff.
		rank, annSt := sh.annRank(q, ann)
		ms, st, err := sh.searchExactShared(q, kk, rank, shared, kk == k && dead == 0)
		if err != nil {
			return fmt.Errorf("geosir: shard %d: %w", si, err)
		}
		st.addANN(annSt)
		lists[i] = v.dropDead(v.toGlobal(si, ms))
		stats[i] = st
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	merged := mergeStats(stats)
	// Mirror the single engine's convergence semantics: asking for more
	// matches than the base holds can never converge there (the k-th
	// best does not exist), so it must not count as converged here
	// either, even though every capped shard proved its own list.
	if k > v.liveShapeCount() {
		merged.Converged = false
	}
	return mergeTopK(lists, k), merged, nil
}

// approxFanout answers from the shards' and deltas' geometric hash
// tables. Every part shares one deterministic curve family, so the
// query hashes to the same characteristic quadruple everywhere and a
// single table's bucket is exactly the union of the per-part buckets.
// The widening decision is therefore global: only if the radius-0 union
// over every part (after tombstone filtering — a deleted shape is no
// candidate) is empty do all parts widen to the neighbor curves —
// per-part widening would admit candidates a single engine never sees.
func (se *ShardedEngine) approxFanout(ctx context.Context, v *shardView, q Shape, k, width int, ann AnnMode) ([]Match, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var blocks atomic.Int64
	pq.AttachBlockCounter(&blocks)
	live := v.liveShards()
	deltas := v.deltas()
	n := len(live) + len(deltas)
	if n == 0 {
		return []Match{}, Stats{}, nil
	}
	var family *geohash.Family
	if len(live) > 0 {
		family = v.shards[live[0]].family
	} else {
		family = deltas[0].Family()
	}
	quad := family.Characteristic(pq.Entry().Poly.Pts)
	cand := make([][]int, n)
	total := 0
	for i, si := range live {
		cand[i] = v.liveLocal(si, v.shards[si].table.Lookup(quad, 0))
		total += len(cand[i])
	}
	for j, d := range deltas {
		cand[len(live)+j] = d.Candidates(quad, 0)
		total += len(cand[len(live)+j])
	}
	if total == 0 {
		for i, si := range live {
			cand[i] = v.liveLocal(si, v.shards[si].table.Lookup(quad, 1))
		}
		for j, d := range deltas {
			cand[len(live)+j] = d.Candidates(quad, 1)
		}
	}
	// Parts hold disjoint live shape sets, so any part's running k-th
	// best bounds the merged k-th best from above; sharing it lets parts
	// abandon each other's hopeless candidates mid-score. Candidates are
	// tombstone-filtered before scoring, so published bounds only ever
	// reflect live shapes and stay admissible. The skipped shapes are
	// exactly those proven outside the merged top-k, so the merge below
	// is unchanged (DESIGN.md §4.9).
	var shared *core.SharedBound
	if n > 1 {
		shared = core.NewSharedBound()
	}
	lists := make([][]Match, n)
	stats := make([]Stats, n)
	err = fanout(ctx, n, width, func(i int) error {
		if i >= len(live) {
			d := deltas[i-len(live)]
			lists[i] = scoreDeltaApprox(d, pq, cand[i], k, shared)
			return nil
		}
		sh := v.shards[live[i]]
		ids := cand[i]
		if ann != AnnOff {
			// Per-shard best-first ordering against the shard's own ANN
			// index; the admissible cutoffs keep the surviving top-k
			// identical (DESIGN.md §4.9), only the bounds tighten sooner.
			ids, stats[i] = sh.annOrderShapes(q, ids)
		}
		ms := sh.scoreApprox(pq, ids, k, shared)
		sortMatches(ms) // local ids; local order == global order within a shard
		lists[i] = v.toGlobal(live[i], ms)
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var merged Stats
	for _, st := range stats {
		merged.addANN(st)
	}
	merged.BlockReads += int(blocks.Load())
	return mergeTopK(lists, k), merged, nil
}

// annApproxFanout is the sharded sublinear path: every live shard probes
// its own ANN index for candidates (each shard applies the full
// annMinShapes floor, so the union is at least as wide as a single
// engine's candidate set) and scores them exactly under one shared
// cross-shard bound; the per-part top-k lists merge exactly. Deltas have
// no ANN index — they are scanned exhaustively, which is both cheap
// (deltas are small) and strictly better recall than any probe. The
// result can differ from a single engine's AnnApprox answer only by
// having *more* candidates verified — recall is monotone in the shard
// count.
func (se *ShardedEngine) annApproxFanout(ctx context.Context, v *shardView, q Shape, k, width int) ([]Match, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var blocks atomic.Int64
	pq.AttachBlockCounter(&blocks)
	live := v.liveShards()
	deltas := v.deltas()
	n := len(live) + len(deltas)
	if n == 0 {
		return []Match{}, Stats{UsedANN: true}, nil
	}
	var shared *core.SharedBound
	if len(live) > 1 {
		shared = core.NewSharedBound()
	}
	lists := make([][]Match, n)
	stats := make([]Stats, n)
	err = fanout(ctx, n, width, func(i int) error {
		if i >= len(live) {
			d := deltas[i-len(live)]
			dms, err := d.Match(ctx, q, k, false)
			if err != nil {
				return fmt.Errorf("geosir: delta: %w", err)
			}
			lists[i] = deltaToMatches(dms, true)
			return nil
		}
		sh := v.shards[live[i]]
		if sh.ann == nil {
			lists[i] = []Match{}
			return nil
		}
		cand := sh.ann.Probe(sh.ann.Signature(pq.Entry().Poly), annMinShapes(k))
		shapes := cand.Shapes
		if max := annCapShapes(annMinShapes(k)); len(shapes) > max {
			shapes = shapes[:max]
		}
		shapes = v.liveLocal(live[i], shapes)
		stats[i] = Stats{UsedANN: true, ANNProbes: cand.Probes, ANNCandidates: len(shapes)}
		ms := sh.scoreApprox(pq, shapes, k, shared)
		sortMatches(ms) // local ids; local order == global order within a shard
		lists[i] = v.toGlobal(live[i], ms)
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	merged := Stats{UsedANN: true}
	for _, st := range stats {
		merged.addANN(st)
	}
	merged.BlockReads += int(blocks.Load())
	return mergeTopK(lists, k), merged, nil
}

// sketchFanout evaluates every (sketch shape, part) pair concurrently,
// unions each shape's per-part best-distance tables (parts hold
// disjoint live image sets, so union is just map merge; tombstoned
// images are removed from their shard's table first), and feeds the
// result through the same scoreSketchTables ranking as the single
// engine.
func (se *ShardedEngine) sketchFanout(ctx context.Context, v *shardView, sketch []Shape, k, width int, ann AnnMode) ([]SketchMatch, Stats, error) {
	if err := validateSketch(sketch); err != nil {
		return nil, Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	live := v.liveShards()
	deltas := v.deltas()
	per := len(live) + len(deltas)
	parts := make([]map[int]float64, len(sketch)*per)
	partStats := make([]Stats, len(parts))
	err := fanout(ctx, len(parts), width, func(t int) error {
		si, pi := t/per, t%per
		if pi >= len(live) {
			m, err := deltas[pi-len(live)].SketchTable(ctx, sketch[si])
			if err != nil {
				return fmt.Errorf("geosir: sketch shape %d: %w", si, err)
			}
			parts[t] = m
			return nil
		}
		sh := v.shards[live[pi]]
		var m map[int]float64
		var err error
		if ann == AnnApprox && sh.ann != nil {
			m, partStats[t], err = sh.sketchShapeTableAnn(sketch[si], k)
		} else {
			m, partStats[t], err = sh.sketchShapeTable(sketch[si])
		}
		if err != nil {
			return fmt.Errorf("geosir: sketch shape %d: %w", si, err)
		}
		if dead := v.deadImagesIn(live[pi]); len(dead) > 0 {
			for img := range dead {
				delete(m, img)
			}
		}
		parts[t] = m
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	for _, st := range partStats {
		stats.addANN(st)
	}
	perShape := make([]map[int]float64, len(sketch))
	for si := range sketch {
		best := make(map[int]float64)
		for pi := 0; pi < per; pi++ {
			for img, d := range parts[si*per+pi] {
				best[img] = d
			}
		}
		perShape[si] = best
	}
	return scoreSketchTables(perShape, k), stats, nil
}

// deltaToMatches converts delta matches (already global ids) to the
// public Match shape. Exact-path results carry the continuous measure;
// hashing-path results (approx) do not, matching the frozen paths.
func deltaToMatches(ms []ingest.Match, approx bool) []Match {
	out := make([]Match, 0, len(ms))
	for _, m := range ms {
		om := Match{ShapeID: m.GID, ImageID: m.ImageID, Distance: m.Distance, Approximate: approx}
		if !approx {
			om.ContinuousDistance = m.Continuous
		}
		out = append(out, om)
	}
	return out
}

// scoreDeltaApprox ranks a delta's hash-table candidates against a
// prepared query, mirroring Engine.scoreApprox exactly: every candidate
// is scored under the tightest currently-proven cutoff — the local k-th
// best and the cross-part shared bound — and the bounded evaluation
// abandons a shape as soon as a partial sum proves it strictly worse.
// The delta holds only live shapes disjoint from every other part, so
// its published bounds are admissible for the same reason a shard's are
// (DESIGN.md §4.9).
func scoreDeltaApprox(d *ingest.Delta, pq *core.PreparedQuery, ids []int, k int, shared *core.SharedBound) []Match {
	out := make([]Match, 0, len(ids))
	kth := newDistTopK(k)
	for _, id := range ids {
		cut := kth.Kth()
		if shared != nil {
			if sv := shared.Load(); sv < cut {
				cut = sv
			}
		}
		m, ok := d.ScoreBounded(id, pq, cut)
		if !ok {
			continue
		}
		kth.Add(m.Distance)
		if shared != nil {
			if bound := kth.Kth(); !math.IsInf(bound, 1) {
				shared.Tighten(bound)
			}
		}
		out = append(out, Match{
			ShapeID:     m.GID,
			ImageID:     m.ImageID,
			Distance:    m.Distance,
			Approximate: true,
		})
	}
	sortMatches(out)
	return out
}

// mergeStats aggregates per-shard retrieval stats: work counters sum,
// the iteration/ε high-water marks are maxima, and the merged result
// counts as converged only if every shard converged (only then is the
// merged top-k proven to be the true global top-k).
func mergeStats(ss []Stats) Stats {
	out := Stats{Converged: true}
	for _, s := range ss {
		out.Iterations = max(out.Iterations, s.Iterations)
		out.FinalEpsilon = max(out.FinalEpsilon, s.FinalEpsilon)
		out.VerticesCounted += s.VerticesCounted
		out.Candidates += s.Candidates
		out.Converged = out.Converged && s.Converged
		out.UsedANN = out.UsedANN || s.UsedANN
		out.ANNProbes += s.ANNProbes
		out.ANNCandidates += s.ANNCandidates
		out.BlockReads += s.BlockReads
	}
	return out
}

// fanout runs n independent work items on up to workers goroutines.
// Items are claimed from one atomic counter, so workers that finish
// cheap items immediately steal the next pending one — unlike a static
// split (or a single dispatcher goroutine feeding an unbuffered
// channel, which adds one rendezvous per item and idles workers while
// the dispatcher is descheduled), uneven item costs never strand work
// behind a slow peer. A context cancelled while items are still
// unclaimed stops the claiming and returns ctx.Err(); otherwise the
// first item error (by index) is returned. Cancellation detection is
// deliberately best-effort: a cancel that lands after every item has
// been claimed (but while some still run) is ignored and the call
// returns full results, and a cancel racing the final claims may
// resolve either way depending on which a worker observes first —
// callers get ctx.Err() only as a guarantee that some items never ran,
// never as a guarantee that the deadline was strictly respected.
func fanout(ctx context.Context, n, workers int, run func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// A sequential plan runs inline on the caller's goroutine: no
		// spawn, no barrier, same item order and same cancellation
		// contract (ctx.Err() is returned only when items never ran).
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					if next.Load() < int64(n) {
						aborted.Store(true)
					}
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeHeap is the k-way merge frontier over per-shard match lists,
// each already sorted by (Distance, ShapeID). The heap orders list
// indices by their head element under the same comparator, so popping
// heads yields the globally sorted sequence.
type mergeHeap struct {
	lists [][]Match
	pos   []int // cursor into each list
	order []int // heap of list indices, keyed by lists[i][pos[i]]
}

func (h *mergeHeap) Len() int { return len(h.order) }

func (h *mergeHeap) Less(i, j int) bool {
	a := h.lists[h.order[i]][h.pos[h.order[i]]]
	b := h.lists[h.order[j]][h.pos[h.order[j]]]
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ShapeID < b.ShapeID
}

func (h *mergeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }

func (h *mergeHeap) Push(x any) { h.order = append(h.order, x.(int)) }

func (h *mergeHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// mergeTopK merges sorted match lists into the k smallest elements
// under the sortMatches order (Distance, then ShapeID). The merge is
// exact and bounded: it inspects at most k + len(lists) heads, never
// materializing the full concatenation.
func mergeTopK(lists [][]Match, k int) []Match {
	h := &mergeHeap{lists: lists, pos: make([]int, len(lists))}
	total := 0
	for li, l := range lists {
		if len(l) > 0 {
			h.order = append(h.order, li)
			total += len(l)
		}
	}
	heap.Init(h)
	out := make([]Match, 0, min(k, total))
	for h.Len() > 0 && len(out) < k {
		li := h.order[0]
		out = append(out, h.lists[li][h.pos[li]])
		h.pos[li]++
		if h.pos[li] == len(h.lists[li]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}
