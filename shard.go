package geosir

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Compile-time check: both engines answer the unified Search API.
var (
	_ Searcher = (*Engine)(nil)
	_ Searcher = (*ShardedEngine)(nil)
)

// ShardedEngine partitions the image base across N independent shards,
// each a full Engine with its own fattening index and geometric hash
// table. Images are routed to shards by a stable hash of their id
// (core.ShardFor), Freeze builds every shard index in parallel, and
// Search fans each request out across the shards and merges the
// per-shard answers with an exact bounded top-k merge — results are
// identical, byte for byte, to a single Engine over the same base (see
// DESIGN.md §4.8 for why the merge is exact).
//
// Shape ids in results are global: the ids a single unpartitioned
// Engine would have assigned, via the core.ShardMap recorded at
// AddImage time. Image ids need no translation (they are caller-chosen
// and stored verbatim).
//
// Concurrency matches Engine: not safe for concurrent mutation, fully
// concurrent for Search after Freeze.
type ShardedEngine struct {
	opts   Options
	shards []*Engine
	smap   *core.ShardMap
	order  []shardImage // AddImage order, persisted as the snapshot manifest
	frozen bool
}

// shardImage is one AddImage call: the image id and how many shapes it
// contributed. The sequence of these fixes every global shape id.
type shardImage struct {
	ID     int
	Shapes int
}

// NewSharded creates an empty sharded engine over the given number of
// partitions (values < 1 are treated as 1). Every shard shares the same
// options.
func NewSharded(opts Options, shards int) *ShardedEngine {
	if shards < 1 {
		shards = 1
	}
	engines := make([]*Engine, shards)
	for i := range engines {
		engines[i] = New(opts)
	}
	return &ShardedEngine{
		opts:   engines[0].opts, // post-defaulting, same as Engine.Options()
		shards: engines,
		smap:   core.NewShardMap(shards),
	}
}

// newShardedFromParts assembles a sharded engine from already-loaded
// shards (see LoadShardedDir). Shards must be frozen or empty.
func newShardedFromParts(opts Options, shards []*Engine, smap *core.ShardMap, order []shardImage) *ShardedEngine {
	return &ShardedEngine{opts: opts, shards: shards, smap: smap, order: order, frozen: true}
}

// AddImage routes an image to its shard. Global shape ids are assigned
// in AddImage call order, exactly as a single Engine would assign them.
func (se *ShardedEngine) AddImage(imageID int, shapes []Shape) error {
	if se.frozen {
		return ErrFrozen
	}
	shard := core.ShardFor(imageID, len(se.shards))
	if err := se.shards[shard].AddImage(imageID, shapes); err != nil {
		return err
	}
	se.smap.AssignImage(shard, len(shapes))
	se.order = append(se.order, shardImage{ID: imageID, Shapes: len(shapes)})
	return nil
}

// Freeze builds every shard's retrieval index and hash table in
// parallel, one goroutine per non-empty shard. Empty shards (possible
// when shards > images) stay unfrozen and are skipped by queries.
func (se *ShardedEngine) Freeze() error {
	if se.frozen {
		return nil
	}
	if se.NumImages() == 0 {
		return errors.New("geosir: cannot freeze an empty engine")
	}
	errs := make([]error, len(se.shards))
	var wg sync.WaitGroup
	for i, sh := range se.shards {
		if sh.NumImages() == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, sh *Engine) {
			defer wg.Done()
			errs[i] = sh.Freeze()
		}(i, sh)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("geosir: freezing shard %d: %w", i, err)
		}
	}
	se.frozen = true
	return nil
}

// Options returns the shared per-shard configuration (after defaulting).
func (se *ShardedEngine) Options() Options { return se.opts }

// Frozen reports whether Freeze has completed.
func (se *ShardedEngine) Frozen() bool { return se.frozen }

// NumShards returns the partition count.
func (se *ShardedEngine) NumShards() int { return len(se.shards) }

// Shard exposes one partition's Engine for inspection (per-shard statz,
// tests). Treat it as read-only.
func (se *ShardedEngine) Shard(i int) *Engine { return se.shards[i] }

// IDMap exposes the global⇄(shard, local) shape-id mapping.
func (se *ShardedEngine) IDMap() *core.ShardMap { return se.smap }

// NumImages returns the number of images across all shards.
func (se *ShardedEngine) NumImages() int {
	n := 0
	for _, sh := range se.shards {
		n += sh.NumImages()
	}
	return n
}

// NumShapes returns the number of stored shapes across all shards.
func (se *ShardedEngine) NumShapes() int {
	n := 0
	for _, sh := range se.shards {
		if sh.NumImages() > 0 {
			n += sh.NumShapes()
		}
	}
	return n
}

// NumEntries returns the number of normalized copies across all shards.
func (se *ShardedEngine) NumEntries() int {
	n := 0
	for _, sh := range se.shards {
		if sh.NumImages() > 0 {
			n += sh.NumEntries()
		}
	}
	return n
}

// liveShards returns the indices of shards that can answer queries:
// frozen and non-empty. A shard dropped wholesale by snapshot recovery
// is left empty and simply contributes nothing (partial results).
func (se *ShardedEngine) liveShards() []int {
	out := make([]int, 0, len(se.shards))
	for i, sh := range se.shards {
		if sh != nil && sh.Frozen() && sh.NumShapes() > 0 {
			out = append(out, i)
		}
	}
	return out
}

// tau returns the shared similarity threshold, used by the ModeAuto
// fallback decision.
func (se *ShardedEngine) tau() float64 {
	for _, si := range se.liveShards() {
		return se.shards[si].db.Tau()
	}
	return 0
}

// Search answers one retrieval request by fanning it out across the
// live shards and merging the per-shard answers. The decision structure
// mirrors Engine.Search stage for stage: same validation order, same
// ModeAuto fallback rule (fall back to hashing unless every live shard
// converged and the merged best match is within τ), same
// empty-approximate recovery.
func (se *ShardedEngine) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !se.frozen {
		return nil, ErrNotFrozen
	}
	if req.K <= 0 {
		return nil, ErrBadK
	}
	switch req.Mode {
	case ModeAuto, ModeExact:
		if len(req.Query.Pts) == 0 {
			return nil, ErrEmptyQuery
		}
		if req.Mode == ModeAuto && req.Ann == AnnApprox {
			ms, stats, err := se.annApproxFanout(ctx, req.Query, req.K, req.Workers)
			if err != nil {
				return nil, err
			}
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		// The cross-shard shared bound makes each shard's candidate
		// pruning depend on what the other shards found first, which
		// perturbs the (timing-dependent) per-shard Stats and convergence
		// flags without affecting the merged matches. ModeAuto's fallback
		// decision reads stats.Converged and must stay deterministic, so
		// only ModeExact — where convergence is reporting, not control
		// flow — shares the bound.
		ms, stats, err := se.exactFanout(ctx, req.Query, req.K, req.Workers, req.Mode == ModeExact, req.Ann)
		if err != nil {
			return nil, err
		}
		if req.Mode == ModeExact || (stats.Converged && exactGoodEnough(ms, se.tau())) {
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		approx, astats, err := se.approxFanout(ctx, req.Query, req.K, req.Workers, req.Ann)
		if err != nil {
			return nil, err
		}
		stats.UsedHashing = true
		stats.addANN(astats)
		if len(approx) == 0 {
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		return &SearchResponse{Matches: approx, Stats: stats}, nil
	case ModeApproximate:
		if len(req.Query.Pts) == 0 {
			return nil, ErrEmptyQuery
		}
		if req.Ann == AnnApprox {
			ms, stats, err := se.annApproxFanout(ctx, req.Query, req.K, req.Workers)
			if err != nil {
				return nil, err
			}
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		ms, stats, err := se.approxFanout(ctx, req.Query, req.K, req.Workers, req.Ann)
		if err != nil {
			return nil, err
		}
		stats.UsedHashing = true
		return &SearchResponse{Matches: ms, Stats: stats}, nil
	case ModeSketch:
		sms, stats, err := se.sketchFanout(ctx, req.Sketch, req.K, req.Workers, req.Ann)
		if err != nil {
			return nil, err
		}
		return &SearchResponse{SketchMatches: sms, Stats: stats}, nil
	}
	return nil, fmt.Errorf("geosir: unknown search mode %d", int(req.Mode))
}

// Query evaluates a topological query (§5) against every live shard
// and unions the matching image ids. Topological predicates relate
// shapes within one image, and every image lives whole on exactly one
// shard, so the per-shard evaluation loses nothing. Like Engine.Query
// it updates shared selectivity estimators and must not race with
// itself; use one goroutine for topological queries.
func (se *ShardedEngine) Query(src string, binds map[string]Shape) ([]int, string, error) {
	if !se.frozen {
		return nil, "", ErrNotFrozen
	}
	var all []int
	var plan string
	for _, si := range se.liveShards() {
		ids, p, err := se.shards[si].Query(src, binds)
		if err != nil {
			return nil, "", err
		}
		all = append(all, ids...)
		plan = p
	}
	sort.Ints(all)
	return all, plan, nil
}

// exactFanout runs the fattening search on every live shard
// concurrently and merges the sorted per-shard top-k lists exactly.
//
// Each shard is asked for min(k, its shape count) matches — a shard
// cannot supply more than it holds, and capping lets small shards reach
// the convergence condition (the k-th best must exist to be proven
// within ε/2). Because the per-shape distances are intrinsic to
// (query, shape) and every shape lives on exactly one shard, the merged
// top-k of converged shards is the true global top-k.
//
// With useShared set the shards additionally prune against each other
// mid-flight through one atomic shared bound: every uncapped shard
// publishes its live k-th best, every shard discards candidates proven
// strictly worse than the tightest published value. Capped shards must
// not publish — their k'-th best does not bound the global k-th — but
// may consume, since anything they discard is proven outside the merged
// top-k (DESIGN.md §4.9).
func (se *ShardedEngine) exactFanout(ctx context.Context, q Shape, k, workers int, useShared bool, ann AnnMode) ([]Match, Stats, error) {
	live := se.liveShards()
	lists := make([][]Match, len(live))
	stats := make([]Stats, len(live))
	var shared *core.SharedBound
	if useShared && len(live) > 1 {
		shared = core.NewSharedBound()
	}
	err := fanout(ctx, len(live), workers, func(i int) error {
		si := live[i]
		sh := se.shards[si]
		kk := min(k, sh.NumShapes())
		// Each shard ranks its own bootstrap candidates against its own
		// ANN index — a per-shard visit-order change, so the per-shard
		// (and thus merged) matches are byte-identical to AnnOff.
		rank, annSt := sh.annRank(q, ann)
		ms, st, err := sh.searchExactShared(q, kk, rank, shared, kk == k)
		if err != nil {
			return fmt.Errorf("geosir: shard %d: %w", si, err)
		}
		st.addANN(annSt)
		lists[i] = se.toGlobal(si, ms)
		stats[i] = st
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	merged := mergeStats(stats)
	// Mirror the single engine's convergence semantics: asking for more
	// matches than the base holds can never converge there (the k-th
	// best does not exist), so it must not count as converged here
	// either, even though every capped shard proved its own list.
	if k > se.NumShapes() {
		merged.Converged = false
	}
	return mergeTopK(lists, k), merged, nil
}

// approxFanout answers from the shards' geometric hash tables. All
// shards share one deterministic curve family, so the query hashes to
// the same characteristic quadruple everywhere and a single table's
// bucket is exactly the union of the shard buckets. The widening
// decision is therefore global: only if the radius-0 union over every
// shard is empty do all shards widen to the neighbor curves — per-shard
// widening would admit candidates a single engine never sees.
func (se *ShardedEngine) approxFanout(ctx context.Context, q Shape, k, workers int, ann AnnMode) ([]Match, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	live := se.liveShards()
	if len(live) == 0 {
		return []Match{}, Stats{}, nil
	}
	quad := se.shards[live[0]].family.Characteristic(pq.Entry().Poly.Pts)
	perShard := make([][]int, len(live))
	total := 0
	for i, si := range live {
		perShard[i] = se.shards[si].table.Lookup(quad, 0)
		total += len(perShard[i])
	}
	if total == 0 {
		for i, si := range live {
			perShard[i] = se.shards[si].table.Lookup(quad, 1)
		}
	}
	// Shards hold disjoint shape sets, so any shard's running k-th best
	// bounds the merged k-th best from above; sharing it lets shards
	// abandon each other's hopeless candidates mid-score. The skipped
	// shapes are exactly those proven outside the merged top-k, so the
	// merge below is unchanged (DESIGN.md §4.9).
	var shared *core.SharedBound
	if len(live) > 1 {
		shared = core.NewSharedBound()
	}
	lists := make([][]Match, len(live))
	stats := make([]Stats, len(live))
	err = fanout(ctx, len(live), workers, func(i int) error {
		sh := se.shards[live[i]]
		ids := perShard[i]
		if ann != AnnOff {
			// Per-shard best-first ordering against the shard's own ANN
			// index; the admissible cutoffs keep the surviving top-k
			// identical (DESIGN.md §4.9), only the bounds tighten sooner.
			ids, stats[i] = sh.annOrderShapes(q, ids)
		}
		ms := sh.scoreApprox(pq, ids, k, shared)
		sortMatches(ms) // local ids; local order == global order within a shard
		lists[i] = se.toGlobal(live[i], ms)
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var merged Stats
	for _, st := range stats {
		merged.addANN(st)
	}
	return mergeTopK(lists, k), merged, nil
}

// annApproxFanout is the sharded sublinear path: every live shard probes
// its own ANN index for candidates (each shard applies the full
// annMinShapes floor, so the union is at least as wide as a single
// engine's candidate set) and scores them exactly under one shared
// cross-shard bound; the per-shard top-k lists merge exactly. The result
// can differ from a single engine's AnnApprox answer only by having
// *more* candidates verified — recall is monotone in the shard count.
func (se *ShardedEngine) annApproxFanout(ctx context.Context, q Shape, k, workers int) ([]Match, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	live := se.liveShards()
	if len(live) == 0 {
		return []Match{}, Stats{UsedANN: true}, nil
	}
	var shared *core.SharedBound
	if len(live) > 1 {
		shared = core.NewSharedBound()
	}
	lists := make([][]Match, len(live))
	stats := make([]Stats, len(live))
	err = fanout(ctx, len(live), workers, func(i int) error {
		sh := se.shards[live[i]]
		if sh.ann == nil {
			lists[i] = []Match{}
			return nil
		}
		cand := sh.ann.Probe(sh.ann.Signature(pq.Entry().Poly), annMinShapes(k))
		shapes := cand.Shapes
		if max := annCapShapes(annMinShapes(k)); len(shapes) > max {
			shapes = shapes[:max]
		}
		stats[i] = Stats{UsedANN: true, ANNProbes: cand.Probes, ANNCandidates: len(shapes)}
		ms := sh.scoreApprox(pq, shapes, k, shared)
		sortMatches(ms) // local ids; local order == global order within a shard
		lists[i] = se.toGlobal(live[i], ms)
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	merged := Stats{UsedANN: true}
	for _, st := range stats {
		merged.addANN(st)
	}
	return mergeTopK(lists, k), merged, nil
}

// sketchFanout evaluates every (sketch shape, shard) pair concurrently,
// unions each shape's per-shard best-distance tables (shards hold
// disjoint image sets, so union is just map merge), and feeds the
// result through the same scoreSketchTables ranking as the single
// engine.
func (se *ShardedEngine) sketchFanout(ctx context.Context, sketch []Shape, k, workers int, ann AnnMode) ([]SketchMatch, Stats, error) {
	if err := validateSketch(sketch); err != nil {
		return nil, Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	live := se.liveShards()
	nl := len(live)
	parts := make([]map[int]float64, len(sketch)*nl)
	partStats := make([]Stats, len(parts))
	err := fanout(ctx, len(parts), workers, func(t int) error {
		si, li := t/nl, t%nl
		sh := se.shards[live[li]]
		var m map[int]float64
		var err error
		if ann == AnnApprox && sh.ann != nil {
			m, partStats[t], err = sh.sketchShapeTableAnn(sketch[si], k)
		} else {
			m, err = sh.sketchShapeTable(sketch[si])
		}
		if err != nil {
			return fmt.Errorf("geosir: sketch shape %d: %w", si, err)
		}
		parts[t] = m
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	for _, st := range partStats {
		stats.addANN(st)
	}
	perShape := make([]map[int]float64, len(sketch))
	for si := range sketch {
		best := make(map[int]float64)
		for li := 0; li < nl; li++ {
			for img, d := range parts[si*nl+li] {
				best[img] = d
			}
		}
		perShape[si] = best
	}
	return scoreSketchTables(perShape, k), stats, nil
}

// toGlobal rewrites a shard's local shape ids to global ids in place.
// Within one shard local id order is ascending global id order, so a
// list sorted by (Distance, local id) stays sorted by (Distance,
// global id).
func (se *ShardedEngine) toGlobal(shard int, ms []Match) []Match {
	for i := range ms {
		ms[i].ShapeID = se.smap.Global(shard, ms[i].ShapeID)
	}
	return ms
}

// mergeStats aggregates per-shard retrieval stats: work counters sum,
// the iteration/ε high-water marks are maxima, and the merged result
// counts as converged only if every shard converged (only then is the
// merged top-k proven to be the true global top-k).
func mergeStats(ss []Stats) Stats {
	out := Stats{Converged: true}
	for _, s := range ss {
		out.Iterations = max(out.Iterations, s.Iterations)
		out.FinalEpsilon = max(out.FinalEpsilon, s.FinalEpsilon)
		out.VerticesCounted += s.VerticesCounted
		out.Candidates += s.Candidates
		out.Converged = out.Converged && s.Converged
		out.UsedANN = out.UsedANN || s.UsedANN
		out.ANNProbes += s.ANNProbes
		out.ANNCandidates += s.ANNCandidates
	}
	return out
}

// fanout runs n independent work items on up to workers goroutines.
// Items are claimed from one atomic counter, so workers that finish
// cheap items immediately steal the next pending one — unlike a static
// split (or a single dispatcher goroutine feeding an unbuffered
// channel, which adds one rendezvous per item and idles workers while
// the dispatcher is descheduled), uneven item costs never strand work
// behind a slow peer. A context cancelled while items are still
// unclaimed stops the claiming and returns ctx.Err(); otherwise the
// first item error (by index) is returned. Cancellation detection is
// deliberately best-effort: a cancel that lands after every item has
// been claimed (but while some still run) is ignored and the call
// returns full results, and a cancel racing the final claims may
// resolve either way depending on which a worker observes first —
// callers get ctx.Err() only as a guarantee that some items never ran,
// never as a guarantee that the deadline was strictly respected.
func fanout(ctx context.Context, n, workers int, run func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var aborted atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					if next.Load() < int64(n) {
						aborted.Store(true)
					}
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = run(i)
			}
		}()
	}
	wg.Wait()
	if aborted.Load() {
		return ctx.Err()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// mergeHeap is the k-way merge frontier over per-shard match lists,
// each already sorted by (Distance, ShapeID). The heap orders list
// indices by their head element under the same comparator, so popping
// heads yields the globally sorted sequence.
type mergeHeap struct {
	lists [][]Match
	pos   []int // cursor into each list
	order []int // heap of list indices, keyed by lists[i][pos[i]]
}

func (h *mergeHeap) Len() int { return len(h.order) }

func (h *mergeHeap) Less(i, j int) bool {
	a := h.lists[h.order[i]][h.pos[h.order[i]]]
	b := h.lists[h.order[j]][h.pos[h.order[j]]]
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.ShapeID < b.ShapeID
}

func (h *mergeHeap) Swap(i, j int) { h.order[i], h.order[j] = h.order[j], h.order[i] }

func (h *mergeHeap) Push(x any) { h.order = append(h.order, x.(int)) }

func (h *mergeHeap) Pop() any {
	x := h.order[len(h.order)-1]
	h.order = h.order[:len(h.order)-1]
	return x
}

// mergeTopK merges sorted match lists into the k smallest elements
// under the sortMatches order (Distance, then ShapeID). The merge is
// exact and bounded: it inspects at most k + len(lists) heads, never
// materializing the full concatenation.
func mergeTopK(lists [][]Match, k int) []Match {
	h := &mergeHeap{lists: lists, pos: make([]int, len(lists))}
	total := 0
	for li, l := range lists {
		if len(l) > 0 {
			h.order = append(h.order, li)
			total += len(l)
		}
	}
	heap.Init(h)
	out := make([]Match, 0, min(k, total))
	for h.Len() > 0 && len(out) < k {
		li := h.order[0]
		out = append(out, h.lists[li][h.pos[li]])
		h.pos[li]++
		if h.pos[li] == len(h.lists[li]) {
			heap.Pop(h)
		} else {
			heap.Fix(h, 0)
		}
	}
	return out
}
