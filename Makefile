GO ?= go

# Match-driven benchmarks whose throughput we track across PRs.
QUERY_BENCH := BenchmarkFig2_GeoSIRRetrieval|BenchmarkMatch_Scaling_100images|BenchmarkFindBySketch|BenchmarkFindApproximate

.PHONY: ci vet build test race bench-smoke bench-query bench-diff bench-serve bench-shard bench-ann bench-ann-smoke bench-cache bench-cache-smoke serve-smoke fuzz-smoke deprecations cover clean

# The gate every PR must pass. The race run includes the persistence
# fault-injection suite; fuzz-smoke gives each fuzz target a short
# budget; serve-smoke boots geosird against a demo snapshot and probes
# every endpoint through geosir-loadgen; bench-ann-smoke runs the ANN
# recall/speedup benchmarks once on a small base; bench-cache-smoke
# drives a short cached-vs-uncached serving comparison end to end;
# deprecations keeps internal code off the deprecated Find* wrappers.
# Perf-sensitive changes should additionally run `make bench-diff` to
# compare a fresh bench run against the committed BENCH_query.json
# baseline (the diff also gates on any recall metrics present in both
# files).
ci: vet deprecations build race bench-smoke bench-ann-smoke fuzz-smoke serve-smoke bench-cache-smoke

vet:
	$(GO) vet ./...

# The deprecated Find* wrappers exist for external callers migrating to
# Search; nothing inside this repo (outside tests, which pin wrapper
# equivalence on purpose) may call them.
deprecations:
	@hits=$$(grep -rnE '\.Find(Similar|Approximate|BySketch)[A-Za-z]*\(' \
		--include='*.go' --exclude='*_test.go' cmd internal || true); \
	if [ -n "$$hits" ]; then \
		echo "deprecated Find* call sites (use Search):"; echo "$$hits"; exit 1; \
	fi; echo "deprecations: clean"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each figure benchmark — catches benchmarks that no
# longer compile or panic, without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig' -benchtime=1x .

# Short fuzzing budget per target (Go allows one -fuzz pattern per
# package invocation, hence one line each). Catches regressions in the
# snapshot readers and the geometry predicates without a long campaign;
# crashers land in testdata/fuzz/ and re-run as regular tests afterwards.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzConvexHull$$' -fuzztime $(FUZZTIME) ./internal/geom
	$(GO) test -run '^$$' -fuzz '^FuzzPointInPolygon$$' -fuzztime $(FUZZTIME) ./internal/geom
	$(GO) test -run '^$$' -fuzz '^FuzzFingerprint$$' -fuzztime $(FUZZTIME) ./internal/qcache

# Coverage with a per-package summary and the repo-wide total.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Headline query-throughput metrics, written to BENCH_query.json so
# successive PRs can compare trajectories.
bench-query:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=3x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_query.json

# Re-run the tracked query benchmarks into a scratch file and diff them
# against the committed baseline: per-benchmark ns/op, B/op, and allocs
# deltas, nonzero exit when ns/op regresses by more than 10%. Unlike
# bench-query's quick 3x pass, the diff gate needs low-noise numbers, so
# each benchmark runs for a full BENCHDIFF_TIME (override for slower or
# faster machines).
BENCHDIFF_TIME ?= 1s
bench-diff:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=$(BENCHDIFF_TIME) . \
		| $(GO) run ./cmd/benchjson -out /tmp/BENCH_query.new.json
	$(GO) run ./cmd/benchdiff BENCH_query.json /tmp/BENCH_query.new.json

# End-to-end serving check: build the daemon + load generator, freeze a
# tiny demo base into a snapshot, boot geosird on a local port, and hit
# every endpoint once through loadgen -smoke. Runs twice: once over a
# single-engine snapshot file, once over a 4-shard snapshot directory
# (where the smoke also asserts per-shard health via /statz). Fails if
# any probe fails; always tears the daemon down.
SERVE_ADDR ?= 127.0.0.1:18098
SERVE_DIR  ?= /tmp/geosir-serve
serve-smoke:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(SERVE_DIR)/geosir -demo 20 -snapshot-out $(SERVE_DIR)/base.gsir
	$(SERVE_DIR)/geosir -demo 20 -shards 4 -snapshot-out $(SERVE_DIR)/base-sharded
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then rm -rf $(SERVE_DIR); exit $$rc; fi; \
	$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base-sharded -addr $(SERVE_ADDR) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke -expect-shards 4; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(SERVE_DIR); exit $$rc

# Serving latency/throughput benchmark, written to BENCH_serve.json so
# successive PRs can compare serving trajectories. The limiter is sized
# to the closed-loop worker count so the numbers measure query latency,
# not admission shedding.
BENCH_SERVE_CONC ?= 8
BENCH_SERVE_SECS ?= 20s
bench-serve:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(SERVE_DIR)/geosir -demo 60 -snapshot-out $(SERVE_DIR)/base.gsir
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_SERVE_CONC) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_SERVE_SECS) -concurrency $(BENCH_SERVE_CONC) \
		-out BENCH_serve.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(SERVE_DIR); exit $$rc

# Query-result cache benchmark: the same zipfian (s=1.1) search-only
# workload is driven twice over one demo snapshot — once with the cache
# off, once with -cache-bytes set — and the two loadgen summaries merge
# into BENCH_cache.json (baseline QPS, cached QPS, speedup, hit rate).
# Target: >10x served QPS with the cache on. cmd/benchdiff auto-detects
# the report shape and fails on a cached-QPS regression of more than 10%
# or a hit-rate drop of more than 0.02 absolute:
#
#	go run ./cmd/benchdiff BENCH_cache.json /tmp/BENCH_cache.new.json
BENCH_CACHE_SECS  ?= 15s
BENCH_CACHE_CONC  ?= 8
BENCH_CACHE_DEMO  ?= 60
BENCH_CACHE_BYTES ?= 67108864
BENCH_CACHE_OUT   ?= BENCH_cache.json
bench-cache:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(GO) build -o $(SERVE_DIR)/benchjson ./cmd/benchjson
	$(SERVE_DIR)/geosir -demo $(BENCH_CACHE_DEMO) -snapshot-out $(SERVE_DIR)/base.gsir
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_CACHE_CONC) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_CACHE_SECS) -concurrency $(BENCH_CACHE_CONC) \
		-mix search=1 -dist zipf -zipf-s 1.1 -label cache-off \
		-out $(SERVE_DIR)/cache-off.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then rm -rf $(SERVE_DIR); exit $$rc; fi; \
	$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_CACHE_CONC) -cache-bytes $(BENCH_CACHE_BYTES) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_CACHE_SECS) -concurrency $(BENCH_CACHE_CONC) \
		-mix search=1 -dist zipf -zipf-s 1.1 -label cache-on \
		-out $(SERVE_DIR)/cache-on.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -eq 0 ]; then \
		$(SERVE_DIR)/benchjson -cache -baseline $(SERVE_DIR)/cache-off.json \
			-cached $(SERVE_DIR)/cache-on.json -out $(BENCH_CACHE_OUT); rc=$$?; \
	fi; \
	rm -rf $(SERVE_DIR); exit $$rc

# CI variant: a short two-run comparison on a small base, written to a
# scratch file — exercises the full cache path (fingerprint, LRU,
# coalescing, the header loadgen counts) end to end without committing
# noisy short-run numbers.
bench-cache-smoke:
	$(MAKE) bench-cache BENCH_CACHE_SECS=2s BENCH_CACHE_DEMO=20 \
		BENCH_CACHE_OUT=/tmp/BENCH_cache.smoke.json

# Freeze-scaling benchmark across shard counts, written to
# BENCH_shard.json. Freeze parallelizes one goroutine per shard, so the
# speedup column tracks available cores (the report records cores for
# honest single-core runs); the query column checks fan-out + merge
# didn't regress single-query latency.
BENCH_SHARD_DEMO   ?= 400
BENCH_SHARD_COUNTS ?= 1,2,4,8
bench-shard:
	$(GO) run ./cmd/geosir -demo $(BENCH_SHARD_DEMO) \
		-shard-bench $(BENCH_SHARD_COUNTS) -bench-out BENCH_shard.json
	@cat BENCH_shard.json

# ANN candidate-tier recall/speedup benchmark on the demo base, written
# to BENCH_ann.json. Each approximate benchmark reports recall against
# the exact top-k and speedup over the exact mean latency; benchjson
# records the custom metrics, and cmd/benchdiff fails on a recall drop
# of more than 0.02 absolute. Targets: recall >= 0.95 at >= 5x speedup.
BENCH_ANN_IMAGES ?= 400
bench-ann:
	GEOSIR_ANN_BENCH_IMAGES=$(BENCH_ANN_IMAGES) \
		$(GO) test -run '^$$' -bench 'BenchmarkAnn' -benchtime=10x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_ann.json
	@cat BENCH_ann.json

# CI variant: one iteration on a small base — compiles and exercises the
# full approximate path (probe, cap, bounded scoring, recall metric)
# without paying for stable timings.
bench-ann-smoke:
	GEOSIR_ANN_BENCH_IMAGES=60 \
		$(GO) test -run '^$$' -bench 'BenchmarkAnn' -benchtime=1x .

clean:
	$(GO) clean -testcache
