GO ?= go

# Match-driven benchmarks whose throughput we track across PRs.
QUERY_BENCH := BenchmarkFig2_GeoSIRRetrieval|BenchmarkMatch_Scaling_100images|BenchmarkFindBySketch|BenchmarkFindApproximate

.PHONY: ci vet build test race bench-smoke bench-query bench-serve serve-smoke fuzz-smoke cover clean

# The gate every PR must pass. The race run includes the persistence
# fault-injection suite; fuzz-smoke gives each fuzz target a short
# budget; serve-smoke boots geosird against a demo snapshot and probes
# every endpoint through geosir-loadgen.
ci: vet build race bench-smoke fuzz-smoke serve-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each figure benchmark — catches benchmarks that no
# longer compile or panic, without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig' -benchtime=1x .

# Short fuzzing budget per target (Go allows one -fuzz pattern per
# package invocation, hence one line each). Catches regressions in the
# snapshot readers and the geometry predicates without a long campaign;
# crashers land in testdata/fuzz/ and re-run as regular tests afterwards.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzConvexHull$$' -fuzztime $(FUZZTIME) ./internal/geom
	$(GO) test -run '^$$' -fuzz '^FuzzPointInPolygon$$' -fuzztime $(FUZZTIME) ./internal/geom

# Coverage with a per-package summary and the repo-wide total.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Headline query-throughput metrics, written to BENCH_query.json so
# successive PRs can compare trajectories.
bench-query:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=3x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_query.json

# End-to-end serving check: build the daemon + load generator, freeze a
# tiny demo base into a snapshot, boot geosird on a local port, and hit
# every endpoint once through loadgen -smoke. Fails if any probe fails;
# always tears the daemon down.
SERVE_ADDR ?= 127.0.0.1:18098
SERVE_DIR  ?= /tmp/geosir-serve
serve-smoke:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(SERVE_DIR)/geosir -demo 20 -snapshot-out $(SERVE_DIR)/base.gsir
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(SERVE_DIR); exit $$rc

# Serving latency/throughput benchmark, written to BENCH_serve.json so
# successive PRs can compare serving trajectories. The limiter is sized
# to the closed-loop worker count so the numbers measure query latency,
# not admission shedding.
BENCH_SERVE_CONC ?= 8
BENCH_SERVE_SECS ?= 20s
bench-serve:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(SERVE_DIR)/geosir -demo 60 -snapshot-out $(SERVE_DIR)/base.gsir
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_SERVE_CONC) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_SERVE_SECS) -concurrency $(BENCH_SERVE_CONC) \
		-out BENCH_serve.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(SERVE_DIR); exit $$rc

clean:
	$(GO) clean -testcache
