GO ?= go

# Match-driven benchmarks whose throughput we track across PRs.
QUERY_BENCH := BenchmarkFig2_GeoSIRRetrieval|BenchmarkMatch_Scaling_100images|BenchmarkFindBySketch|BenchmarkFindApproximate

.PHONY: ci vet build test race bench-smoke bench-query clean

# The gate every PR must pass.
ci: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each figure benchmark — catches benchmarks that no
# longer compile or panic, without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig' -benchtime=1x .

# Headline query-throughput metrics, written to BENCH_query.json so
# successive PRs can compare trajectories.
bench-query:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=3x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_query.json

clean:
	$(GO) clean -testcache
