GO ?= go

# Match-driven benchmarks whose throughput we track across PRs.
QUERY_BENCH := BenchmarkFig2_GeoSIRRetrieval|BenchmarkMatch_Scaling_100images|BenchmarkFindBySketch|BenchmarkFindApproximate

.PHONY: ci vet build test race bench-smoke bench-query bench-diff bench-serve bench-shard bench-ann bench-ann-smoke bench-cache bench-cache-smoke bench-ingest bench-throughput throughput-smoke bench-load load-smoke serve-smoke ingest-smoke fuzz-smoke deprecations cover clean

# The gate every PR must pass. The race run includes the persistence
# fault-injection suite; fuzz-smoke gives each fuzz target a short
# budget; serve-smoke boots geosird against a demo snapshot and probes
# every endpoint through geosir-loadgen; ingest-smoke drives the live
# write path (insert → query → compact → query → delete) against a
# geosird started with -ingest; bench-ann-smoke runs the ANN
# recall/speedup benchmarks once on a small base; bench-cache-smoke
# drives a short cached-vs-uncached serving comparison end to end;
# throughput-smoke runs a short concurrency sweep through the scheduler;
# load-smoke serves the same GSIR3 snapshot heap-loaded and mmap-served
# and asserts the mode is live via /statz; deprecations keeps internal
# code off the deprecated Find* wrappers and the deprecated
# SearchRequest.Workers knob. Perf-sensitive changes should additionally
# run `make bench-diff` to compare a fresh bench run against the
# committed BENCH_query.json baseline (the diff also gates on any recall
# metrics present in both files).
ci: vet deprecations build race bench-smoke bench-ann-smoke fuzz-smoke serve-smoke ingest-smoke bench-cache-smoke throughput-smoke load-smoke

vet:
	$(GO) vet ./...

# The deprecated Find* wrappers exist for external callers migrating to
# Search; nothing inside this repo (outside tests, which pin wrapper
# equivalence on purpose) may call them. Likewise the deprecated
# SearchRequest.Workers alias (use Exec/MaxWorkers): the word-boundary
# match leaves MaxWorkers and the server's LegacyWorkers wire shim
# alone.
deprecations:
	@hits=$$(grep -rnE '\.Find(Similar|Approximate|BySketch)[A-Za-z]*\(' \
		--include='*.go' --exclude='*_test.go' cmd internal || true); \
	if [ -n "$$hits" ]; then \
		echo "deprecated Find* call sites (use Search):"; echo "$$hits"; exit 1; \
	fi; \
	whits=$$(grep -rnE '\bWorkers\b' \
		--include='*.go' --exclude='*_test.go' cmd internal || true); \
	if [ -n "$$whits" ]; then \
		echo "deprecated Workers field uses (use Exec/MaxWorkers):"; echo "$$whits"; exit 1; \
	fi; echo "deprecations: clean"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The equivalence suites (sharded, ANN, ingest) are the repo's core
# correctness proof and deliberately exhaustive; under -race on a slow
# box the root package alone runs >10m, so the default per-package
# timeout needs raising.
race:
	$(GO) test -race -timeout 30m ./...

# One iteration of each figure benchmark — catches benchmarks that no
# longer compile or panic, without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig' -benchtime=1x .

# Short fuzzing budget per target (Go allows one -fuzz pattern per
# package invocation, hence one line each). Catches regressions in the
# snapshot readers and the geometry predicates without a long campaign;
# crashers land in testdata/fuzz/ and re-run as regular tests afterwards.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzLoadV3$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzConvexHull$$' -fuzztime $(FUZZTIME) ./internal/geom
	$(GO) test -run '^$$' -fuzz '^FuzzPointInPolygon$$' -fuzztime $(FUZZTIME) ./internal/geom
	$(GO) test -run '^$$' -fuzz '^FuzzFingerprint$$' -fuzztime $(FUZZTIME) ./internal/qcache

# Coverage with a per-package summary and the repo-wide total.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Headline query-throughput metrics, written to BENCH_query.json so
# successive PRs can compare trajectories.
bench-query:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=3x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_query.json

# Re-run the tracked query benchmarks into a scratch file and diff them
# against the committed baseline: per-benchmark ns/op, B/op, and allocs
# deltas, nonzero exit when ns/op regresses by more than 10%. Unlike
# bench-query's quick 3x pass, the diff gate needs low-noise numbers, so
# each benchmark runs for a full BENCHDIFF_TIME (override for slower or
# faster machines).
BENCHDIFF_TIME ?= 1s
bench-diff:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=$(BENCHDIFF_TIME) . \
		| $(GO) run ./cmd/benchjson -out /tmp/BENCH_query.new.json
	$(GO) run ./cmd/benchdiff BENCH_query.json /tmp/BENCH_query.new.json

# End-to-end serving check: build the daemon + load generator, freeze a
# tiny demo base into a snapshot, boot geosird on a local port, and hit
# every endpoint once through loadgen -smoke. Runs twice: once over a
# single-engine snapshot file, once over a 4-shard snapshot directory
# (where the smoke also asserts per-shard health via /statz). Fails if
# any probe fails; always tears the daemon down.
SERVE_ADDR ?= 127.0.0.1:18098
SERVE_DIR  ?= /tmp/geosir-serve
serve-smoke:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(SERVE_DIR)/geosir -demo 20 -snapshot-out $(SERVE_DIR)/base.gsir
	$(SERVE_DIR)/geosir -demo 20 -shards 4 -snapshot-out $(SERVE_DIR)/base-sharded
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then rm -rf $(SERVE_DIR); exit $$rc; fi; \
	$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base-sharded -addr $(SERVE_ADDR) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke -expect-shards 4; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(SERVE_DIR); exit $$rc

# End-to-end live-ingestion check: freeze a demo base into a sharded
# snapshot directory, boot geosird with -ingest, and run loadgen's
# -ingest-smoke sequence — insert a probe image, query it out of the
# delta, compact via /admin/compact, query it out of the frozen shard,
# delete it, and verify it stops matching. Manual compaction keeps the
# sequence deterministic; always tears the daemon down.
INGEST_DIR ?= /tmp/geosir-ingest
ingest-smoke:
	@mkdir -p $(INGEST_DIR)
	$(GO) build -o $(INGEST_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(INGEST_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(INGEST_DIR)/loadgen ./cmd/geosir-loadgen
	$(INGEST_DIR)/geosir -demo 20 -shards 2 -snapshot-out $(INGEST_DIR)/base-sharded
	@$(INGEST_DIR)/geosird -snapshot $(INGEST_DIR)/base-sharded -addr $(SERVE_ADDR) \
		-ingest -compact-threshold -1 & \
	pid=$$!; \
	$(INGEST_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -ingest-smoke; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(INGEST_DIR); exit $$rc

# Mixed read/write serving benchmark: one geosird with live ingestion on
# (manual compaction, WAL fsync off so the numbers measure the engine,
# not the disk), one loadgen run where each worker interleaves
# -write-ratio inserts/deletes with the read mix. The summary wraps into
# BENCH_ingest.json (mixed QPS, write ratio, write p95); cmd/benchdiff
# auto-detects the report shape and fails on a mixed-QPS regression of
# more than 10% (a changed write ratio refuses to compare):
#
#	go run ./cmd/benchdiff BENCH_ingest.json /tmp/BENCH_ingest.new.json
BENCH_INGEST_SECS  ?= 15s
BENCH_INGEST_CONC  ?= 8
BENCH_INGEST_DEMO  ?= 60
BENCH_INGEST_RATIO ?= 0.2
BENCH_INGEST_OUT   ?= BENCH_ingest.json
bench-ingest:
	@mkdir -p $(INGEST_DIR)
	$(GO) build -o $(INGEST_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(INGEST_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(INGEST_DIR)/loadgen ./cmd/geosir-loadgen
	$(GO) build -o $(INGEST_DIR)/benchjson ./cmd/benchjson
	$(INGEST_DIR)/geosir -demo $(BENCH_INGEST_DEMO) -shards 2 \
		-snapshot-out $(INGEST_DIR)/base-sharded
	@$(INGEST_DIR)/geosird -snapshot $(INGEST_DIR)/base-sharded -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_INGEST_CONC) -ingest -compact-threshold -1 -wal-nosync & \
	pid=$$!; \
	$(INGEST_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_INGEST_SECS) -concurrency $(BENCH_INGEST_CONC) \
		-mix search=1 -write-ratio $(BENCH_INGEST_RATIO) -label ingest-mixed \
		-out $(INGEST_DIR)/mixed.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -eq 0 ]; then \
		$(INGEST_DIR)/benchjson -ingest -run $(INGEST_DIR)/mixed.json \
			-out $(BENCH_INGEST_OUT); rc=$$?; \
	fi; \
	rm -rf $(INGEST_DIR); exit $$rc

# Serving latency/throughput benchmark, written to BENCH_serve.json so
# successive PRs can compare serving trajectories. The limiter is sized
# to the closed-loop worker count so the numbers measure query latency,
# not admission shedding.
BENCH_SERVE_CONC ?= 8
BENCH_SERVE_SECS ?= 20s
bench-serve:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(SERVE_DIR)/geosir -demo 60 -snapshot-out $(SERVE_DIR)/base.gsir
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_SERVE_CONC) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_SERVE_SECS) -concurrency $(BENCH_SERVE_CONC) \
		-out BENCH_serve.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(SERVE_DIR); exit $$rc

# Query-result cache benchmark: the same zipfian (s=1.1) search-only
# workload is driven twice over one demo snapshot — once with the cache
# off, once with -cache-bytes set — and the two loadgen summaries merge
# into BENCH_cache.json (baseline QPS, cached QPS, speedup, hit rate).
# Target: >10x served QPS with the cache on. cmd/benchdiff auto-detects
# the report shape and fails on a cached-QPS regression of more than 10%
# or a hit-rate drop of more than 0.02 absolute:
#
#	go run ./cmd/benchdiff BENCH_cache.json /tmp/BENCH_cache.new.json
BENCH_CACHE_SECS  ?= 15s
BENCH_CACHE_CONC  ?= 8
BENCH_CACHE_DEMO  ?= 60
BENCH_CACHE_BYTES ?= 67108864
BENCH_CACHE_OUT   ?= BENCH_cache.json
bench-cache:
	@mkdir -p $(SERVE_DIR)
	$(GO) build -o $(SERVE_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(SERVE_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/geosir-loadgen
	$(GO) build -o $(SERVE_DIR)/benchjson ./cmd/benchjson
	$(SERVE_DIR)/geosir -demo $(BENCH_CACHE_DEMO) -snapshot-out $(SERVE_DIR)/base.gsir
	@$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_CACHE_CONC) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_CACHE_SECS) -concurrency $(BENCH_CACHE_CONC) \
		-mix search=1 -dist zipf -zipf-s 1.1 -label cache-off \
		-out $(SERVE_DIR)/cache-off.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then rm -rf $(SERVE_DIR); exit $$rc; fi; \
	$(SERVE_DIR)/geosird -snapshot $(SERVE_DIR)/base.gsir -addr $(SERVE_ADDR) \
		-max-inflight $(BENCH_CACHE_CONC) -cache-bytes $(BENCH_CACHE_BYTES) & \
	pid=$$!; \
	$(SERVE_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration $(BENCH_CACHE_SECS) -concurrency $(BENCH_CACHE_CONC) \
		-mix search=1 -dist zipf -zipf-s 1.1 -label cache-on \
		-out $(SERVE_DIR)/cache-on.json; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -eq 0 ]; then \
		$(SERVE_DIR)/benchjson -cache -baseline $(SERVE_DIR)/cache-off.json \
			-cached $(SERVE_DIR)/cache-on.json -out $(BENCH_CACHE_OUT); rc=$$?; \
	fi; \
	rm -rf $(SERVE_DIR); exit $$rc

# CI variant: a short two-run comparison on a small base, written to a
# scratch file — exercises the full cache path (fingerprint, LRU,
# coalescing, the header loadgen counts) end to end without committing
# noisy short-run numbers.
bench-cache-smoke:
	$(MAKE) bench-cache BENCH_CACHE_SECS=2s BENCH_CACHE_DEMO=20 \
		BENCH_CACHE_OUT=/tmp/BENCH_cache.smoke.json

# Concurrency-sweep throughput benchmark over the execution scheduler:
# one sharded demo snapshot, one geosird sized so admission control
# never sheds at the deepest sweep level, and two loadgen sweeps over
# the same search-only workload — one per execution policy (auto, which
# adapts per-query fan-out to the in-flight load, and fanout, which
# forces full width per query). The two summaries merge into
# BENCH_throughput.json with one row per (exec, concurrency) pair.
# cmd/benchdiff auto-detects the report shape, matches rows by
# (exec, concurrency), and fails on a QPS regression of more than 10%:
#
#	go run ./cmd/benchdiff BENCH_throughput.json /tmp/BENCH_throughput.new.json
# The demo base is sized so one exact query is tens of milliseconds of
# real kernel work — small enough that concurrency 64 stays inside the
# request deadline, large enough that the fan-out-vs-sequential decision
# moves measurable work (on a tiny base the policies tie and the bench
# proves nothing).
BENCH_TPUT_SECS   ?= 20s
BENCH_TPUT_LEVELS ?= 1,8,64
BENCH_TPUT_DEMO   ?= 200
BENCH_TPUT_SHARDS ?= 8
BENCH_TPUT_OUT    ?= BENCH_throughput.json
TPUT_DIR          ?= /tmp/geosir-tput
bench-throughput:
	@mkdir -p $(TPUT_DIR)
	$(GO) build -o $(TPUT_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(TPUT_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(TPUT_DIR)/loadgen ./cmd/geosir-loadgen
	$(GO) build -o $(TPUT_DIR)/benchjson ./cmd/benchjson
	$(TPUT_DIR)/geosir -demo $(BENCH_TPUT_DEMO) -shards $(BENCH_TPUT_SHARDS) \
		-snapshot-out $(TPUT_DIR)/base-sharded
	@$(TPUT_DIR)/geosird -snapshot $(TPUT_DIR)/base-sharded -addr $(SERVE_ADDR) \
		-max-inflight 128 -max-queue 512 -queue-wait 5s -timeout 25s & \
	pid=$$!; \
	$(TPUT_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
		-duration 5s -concurrency 8 -mix search=1 -label warmup \
		>/dev/null; rc=$$?; \
	if [ $$rc -eq 0 ]; then \
		$(TPUT_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
			-duration $(BENCH_TPUT_SECS) -concurrency $(BENCH_TPUT_LEVELS) \
			-exec auto -mix search=1 -label tput-auto \
			-out $(TPUT_DIR)/auto.json; rc=$$?; \
	fi; \
	if [ $$rc -eq 0 ]; then \
		$(TPUT_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s \
			-duration $(BENCH_TPUT_SECS) -concurrency $(BENCH_TPUT_LEVELS) \
			-exec fanout -mix search=1 -label tput-fanout \
			-out $(TPUT_DIR)/fanout.json; rc=$$?; \
	fi; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -eq 0 ]; then \
		$(TPUT_DIR)/benchjson -throughput \
			-runs $(TPUT_DIR)/auto.json,$(TPUT_DIR)/fanout.json \
			-out $(BENCH_TPUT_OUT); rc=$$?; \
	fi; \
	rm -rf $(TPUT_DIR); exit $$rc

# CI variant: a short sweep on a small base, written to a scratch file —
# exercises the sweep loop, the exec wire knob, and the benchjson merge
# end to end without committing noisy short-run numbers.
throughput-smoke:
	$(MAKE) bench-throughput BENCH_TPUT_SECS=2s BENCH_TPUT_DEMO=20 \
		BENCH_TPUT_LEVELS=1,4 BENCH_TPUT_OUT=/tmp/BENCH_throughput.smoke.json

# Freeze-scaling benchmark across shard counts, written to
# BENCH_shard.json. Freeze parallelizes one goroutine per shard, so the
# speedup column tracks available cores (the report records cores for
# honest single-core runs); the query column checks fan-out + merge
# didn't regress single-query latency.
BENCH_SHARD_DEMO   ?= 400
BENCH_SHARD_COUNTS ?= 1,2,4,8
bench-shard:
	$(GO) run ./cmd/geosir -demo $(BENCH_SHARD_DEMO) \
		-shard-bench $(BENCH_SHARD_COUNTS) -bench-out BENCH_shard.json
	@cat BENCH_shard.json

# Snapshot open/load benchmark across base sizes, written to
# BENCH_load.json: for each demo size, geosir freezes a base, saves it
# as GSIR2 and GSIR3, and times the GSIR2 decode vs the GSIR3 heap
# assemble vs the GSIR3 mmap open (plus cold-query latency and memory
# on each side, with every response cross-checked mmap vs heap). The
# mmap open should be roughly flat in base size — O(1) — and orders of
# magnitude under the decode; benchjson -load refuses a run where it is
# not faster at all, and cmd/benchdiff auto-detects the report shape
# and fails on an mmap open-time regression of more than 10%:
#
#	go run ./cmd/benchdiff BENCH_load.json /tmp/BENCH_load.new.json
BENCH_LOAD_SIZES ?= 100,400
BENCH_LOAD_OUT   ?= BENCH_load.json
LOAD_DIR         ?= /tmp/geosir-load
bench-load:
	@mkdir -p $(LOAD_DIR)
	$(GO) run ./cmd/geosir -load-bench $(BENCH_LOAD_SIZES) \
		-bench-out $(LOAD_DIR)/load.json
	$(GO) run ./cmd/benchjson -load -run $(LOAD_DIR)/load.json \
		-out $(BENCH_LOAD_OUT)
	@rm -rf $(LOAD_DIR)
	@cat $(BENCH_LOAD_OUT)

# End-to-end mmap-serving check: freeze one demo base into a GSIR3
# snapshot, serve it twice — heap-decoded and mmap-served — and run the
# same endpoint smoke against both; each run also asserts via /statz
# that the daemon is really in the claimed mode (an mmap run must report
# mapped bytes, so a silent heap fallback fails the smoke).
load-smoke:
	@mkdir -p $(LOAD_DIR)
	$(GO) build -o $(LOAD_DIR)/geosir ./cmd/geosir
	$(GO) build -o $(LOAD_DIR)/geosird ./cmd/geosird
	$(GO) build -o $(LOAD_DIR)/loadgen ./cmd/geosir-loadgen
	$(LOAD_DIR)/geosir -demo 20 -snapshot-out $(LOAD_DIR)/base.gsir3
	@$(LOAD_DIR)/geosird -snapshot $(LOAD_DIR)/base.gsir3 -addr $(SERVE_ADDR) & \
	pid=$$!; \
	$(LOAD_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke \
		-expect-load-mode heap; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	if [ $$rc -ne 0 ]; then rm -rf $(LOAD_DIR); exit $$rc; fi; \
	$(LOAD_DIR)/geosird -snapshot $(LOAD_DIR)/base.gsir3 -addr $(SERVE_ADDR) \
		-load-mode mmap & \
	pid=$$!; \
	$(LOAD_DIR)/loadgen -addr http://$(SERVE_ADDR) -wait 10s -smoke \
		-expect-load-mode mmap; rc=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -rf $(LOAD_DIR); exit $$rc

# ANN candidate-tier recall/speedup benchmark on the demo base, written
# to BENCH_ann.json. Each approximate benchmark reports recall against
# the exact top-k and speedup over the exact mean latency; benchjson
# records the custom metrics, and cmd/benchdiff fails on a recall drop
# of more than 0.02 absolute. Targets: recall >= 0.95 at >= 5x speedup.
BENCH_ANN_IMAGES ?= 400
bench-ann:
	GEOSIR_ANN_BENCH_IMAGES=$(BENCH_ANN_IMAGES) \
		$(GO) test -run '^$$' -bench 'BenchmarkAnn' -benchtime=10x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_ann.json
	@cat BENCH_ann.json

# CI variant: one iteration on a small base — compiles and exercises the
# full approximate path (probe, cap, bounded scoring, recall metric)
# without paying for stable timings.
bench-ann-smoke:
	GEOSIR_ANN_BENCH_IMAGES=60 \
		$(GO) test -run '^$$' -bench 'BenchmarkAnn' -benchtime=1x .

clean:
	$(GO) clean -testcache
