GO ?= go

# Match-driven benchmarks whose throughput we track across PRs.
QUERY_BENCH := BenchmarkFig2_GeoSIRRetrieval|BenchmarkMatch_Scaling_100images|BenchmarkFindBySketch|BenchmarkFindApproximate

.PHONY: ci vet build test race bench-smoke bench-query fuzz-smoke cover clean

# The gate every PR must pass. The race run includes the persistence
# fault-injection suite; fuzz-smoke gives each fuzz target a short budget.
ci: vet build race bench-smoke fuzz-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of each figure benchmark — catches benchmarks that no
# longer compile or panic, without paying for stable timings.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig' -benchtime=1x .

# Short fuzzing budget per target (Go allows one -fuzz pattern per
# package invocation, hence one line each). Catches regressions in the
# snapshot readers and the geometry predicates without a long campaign;
# crashers land in testdata/fuzz/ and re-run as regular tests afterwards.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzConvexHull$$' -fuzztime $(FUZZTIME) ./internal/geom
	$(GO) test -run '^$$' -fuzz '^FuzzPointInPolygon$$' -fuzztime $(FUZZTIME) ./internal/geom

# Coverage with a per-package summary and the repo-wide total.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# Headline query-throughput metrics, written to BENCH_query.json so
# successive PRs can compare trajectories.
bench-query:
	$(GO) test -run '^$$' -bench '$(QUERY_BENCH)' -benchmem -benchtime=3x . \
		| tee /dev/stderr | $(GO) run ./cmd/benchjson -out BENCH_query.json

clean:
	$(GO) clean -testcache
