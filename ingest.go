package geosir

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/ingest"
)

// Live ingestion (DESIGN.md §4.12). A frozen ShardedEngine becomes
// mutable by attaching a write-ahead log and a mutable delta shard:
//
//	InsertImage ──▶ delta (queryable immediately) + DELTA.wal record
//	DeleteImage ──▶ delta tombstone, or manifest tombstone for frozen images
//	Compact     ──▶ freeze the delta into shard-N, rewrite MANIFEST.json
//	                (the commit point), truncate the folded WAL prefix
//
// Every acknowledged mutation is durable before it is acknowledged: the
// WAL append (fsynced unless NoSync) happens inside the mutation call.
// Crash recovery is EnableIngest replaying DELTA.wal against the loaded
// snapshot, skipping operations at or below the manifest's walSeq
// watermark — that watermark is what keeps the replay idempotent when a
// crash lands between compaction's manifest rename and its WAL rewrite.

// Errors of the live-ingestion API.
var (
	// ErrIngestOff is returned by mutation calls before EnableIngest.
	ErrIngestOff = errors.New("geosir: live ingestion not enabled")
	// ErrCompacting is returned for mutations that cannot proceed while
	// a compaction is folding the sealed delta: deletes of frozen or
	// sealed images (inserts are never blocked).
	ErrCompacting = errors.New("geosir: compaction in progress")
	// ErrNoImage is returned by DeleteImage for an unknown or already
	// deleted image id.
	ErrNoImage = errors.New("geosir: image not found")
	// ErrImageExists is returned by InsertImage for an id that is
	// already live (in a frozen shard or the delta).
	ErrImageExists = errors.New("geosir: image already present")
)

// DefaultCompactThreshold is the delta shape count that triggers a
// background compaction when IngestConfig.CompactThreshold is 0.
const DefaultCompactThreshold = 2048

// IngestConfig configures EnableIngest.
type IngestConfig struct {
	// Dir is the snapshot directory that holds (or will hold) the
	// MANIFEST.json, shard files, and DELTA.wal. Required. If the
	// directory has no manifest yet, the engine is saved there first.
	Dir string
	// CompactThreshold is the delta shape count at which a background
	// compaction starts: 0 selects DefaultCompactThreshold, negative
	// disables automatic compaction (Compact must be called manually).
	CompactThreshold int
	// NoSync skips the per-append fsync of the WAL. Faster, but a crash
	// may lose acknowledged writes — for benchmarks and tests only.
	NoSync bool
	// WrapWAL and WrapManifest intercept the WAL's and the manifest's
	// payload writes (fault injection in tests).
	WrapWAL      func(io.Writer) io.Writer
	WrapManifest func(io.Writer) io.Writer
	// CrashStage, when non-nil, is called between compaction stages
	// ("built", "shard-saved", "manifest-written", "wal-rewritten") and
	// aborts the compaction at that point when it returns an error —
	// simulating a crash for recovery tests.
	CrashStage func(stage string) error
}

// IngestStats is the live-ingestion section of /statz.
type IngestStats struct {
	Enabled    bool   `json:"enabled"`
	Compacting bool   `json:"compacting"`
	Generation uint64 `json:"generation"`
	Epoch      uint64 `json:"epoch"`

	DeltaImages  int `json:"delta_images"`
	DeltaShapes  int `json:"delta_shapes"`
	SealedImages int `json:"sealed_images,omitempty"`
	SealedShapes int `json:"sealed_shapes,omitempty"`

	WALOps   int   `json:"wal_ops"`
	WALBytes int64 `json:"wal_bytes"`
	WALTorn  bool  `json:"wal_torn,omitempty"` // a torn tail was cut at startup

	Inserts         uint64 `json:"inserts"`
	Deletes         uint64 `json:"deletes"`
	Compactions     uint64 `json:"compactions"`
	AutoCompactions uint64 `json:"auto_compactions"`
	Replayed        int    `json:"replayed,omitempty"` // WAL ops re-applied at startup

	LastCompactError string `json:"last_compact_error,omitempty"`
}

// ingestor coordinates the mutable side of a live ShardedEngine. One
// mutex serializes every mutation (inserts, deletes, and compaction's
// two short critical sections); queries never take it — they read the
// atomically-published view.
type ingestor struct {
	se  *ShardedEngine
	cfg IngestConfig

	mu      sync.Mutex
	wal     *ingest.WAL
	pending []ingest.Op // WAL ops not yet folded, ascending Seq
	// walFloor is the manifest's fold watermark: every op with
	// Seq ≤ walFloor is reflected in the frozen shards + manifest.
	walFloor uint64
	// sealSeq is the watermark a running (or failed, retryable)
	// compaction is folding up to; meaningful while view.sealed != nil.
	sealSeq uint64
	// frozenIdx maps an image id to its latest manifest-log index;
	// gidStart[i] is order[i]'s first global id (prefix sums).
	frozenIdx map[int]int
	gidStart  []int
	// closed is set (under both compactMu and mu) by CloseIngest;
	// mutations and compactions against a closed ingestor fail with
	// ErrIngestOff instead of touching the detached WAL or manifest.
	closed bool

	// compactMu serializes compactions and is held for a compaction's
	// whole duration; CloseIngest acquires it to wait out an in-flight
	// fold before releasing the WAL, so a stale compaction can never
	// rewrite the manifest a successor engine is serving. compacting
	// mirrors it for lock-free reads (stats, the auto-compact trigger,
	// DeleteImage's frozen-delete fence).
	compactMu  sync.Mutex
	compacting atomic.Bool

	copts   core.Options // delta core options, mirroring the shards'
	walTorn bool
	replay  int
	ins     uint64
	dels    uint64
	comps   uint64
	autos   uint64
	lastErr string
}

// deltaCoreOptions derives the core options the frozen shards run
// with — the delta must match them exactly for result identity.
func (se *ShardedEngine) deltaCoreOptions() core.Options {
	o := core.DefaultOptions()
	if se.opts.Alpha > 0 {
		o.Alpha = se.opts.Alpha
	}
	if se.opts.Beta > 0 {
		o.Beta = se.opts.Beta
	}
	return o
}

// IngestEnabled reports whether EnableIngest has completed.
func (se *ShardedEngine) IngestEnabled() bool { return se.ing.Load() != nil }

// EnableIngest attaches live ingestion to a frozen engine: it opens (or
// creates) the snapshot directory's write-ahead log, replays any
// operations past the manifest's fold watermark, and publishes a view
// with a mutable delta shard. Call once, after Freeze or load, before
// serving mutations; it is not safe concurrently with itself.
func (se *ShardedEngine) EnableIngest(cfg IngestConfig) error {
	if !se.frozen {
		return ErrNotFrozen
	}
	if se.ing.Load() != nil {
		return errors.New("geosir: live ingestion already enabled")
	}
	if cfg.Dir == "" {
		return errors.New("geosir: ingest: snapshot directory required")
	}
	manPath := filepath.Join(cfg.Dir, manifestName)
	if _, err := os.Stat(manPath); err != nil {
		if !os.IsNotExist(err) {
			return fmt.Errorf("geosir: ingest: %w", err)
		}
		if err := se.SaveDir(cfg.Dir); err != nil {
			return err
		}
	}
	man, err := readManifest(manPath)
	if err != nil {
		return err
	}
	v := se.view.Load()
	if man.Shards != len(v.shards) || len(man.Images) != len(v.order) {
		return fmt.Errorf("geosir: ingest: snapshot dir %q does not match engine (%d/%d shards, %d/%d images)",
			cfg.Dir, man.Shards, len(v.shards), len(man.Images), len(v.order))
	}
	if cfg.CompactThreshold == 0 {
		cfg.CompactThreshold = DefaultCompactThreshold
	}
	g := &ingestor{se: se, cfg: cfg, walFloor: man.WALSeq, copts: se.deltaCoreOptions()}
	wal, ops, torn, err := ingest.OpenWAL(filepath.Join(cfg.Dir, walName), ingest.Options{
		NoSync:     cfg.NoSync,
		WrapWriter: cfg.WrapWAL,
	})
	if err != nil {
		return err
	}
	g.wal = wal
	g.walTorn = torn
	active, err := ingest.NewDelta(g.copts, se.opts.HashCurves, v.smap.NumGlobal())
	if err != nil {
		wal.Close()
		return err
	}
	se.ing.Store(g)
	nv := *v
	nv.active = active
	se.view.Store(&nv)
	g.rebuildIndexLocked(&nv)

	// Crash recovery: re-apply every operation past the fold watermark.
	// Application is idempotent (an insert of an image that is already
	// live anywhere is a fold the manifest beat us to; a delete of an
	// image that is nowhere live already happened), which covers every
	// crash window and a SaveDir that reset the watermark to 0.
	for _, op := range ops {
		if op.Seq <= g.walFloor {
			continue
		}
		if err := g.applyReplay(op); err != nil {
			se.ing.Store(nil)
			se.view.Store(v)
			wal.Close()
			return fmt.Errorf("geosir: ingest: replaying wal op %d: %w", op.Seq, err)
		}
		g.pending = append(g.pending, op)
		g.replay++
	}
	return nil
}

// rebuildIndexLocked refreshes the manifest-log lookup structures from
// a view. Caller holds mu (or is still single-threaded in setup).
func (g *ingestor) rebuildIndexLocked(v *shardView) {
	g.frozenIdx = make(map[int]int, len(v.order))
	g.gidStart = make([]int, len(v.order))
	gid := 0
	for i, im := range v.order {
		g.frozenIdx[im.ID] = i
		g.gidStart[i] = gid
		gid += im.Shapes
	}
}

// frozenLive reports whether the image id's latest manifest-log entry
// is a live, physically-present frozen copy.
func (g *ingestor) frozenLive(v *shardView, image int) bool {
	i, ok := g.frozenIdx[image]
	return ok && !v.order[i].Deleted && v.order[i].Shard >= 0
}

// applyReplay re-applies one WAL operation during EnableIngest.
func (g *ingestor) applyReplay(op ingest.Op) error {
	v := g.se.view.Load()
	switch op.Kind {
	case ingest.OpInsert:
		if g.frozenLive(v, op.Image) || v.active.Has(op.Image) {
			return nil // already folded or applied
		}
		return v.active.Insert(op.Image, op.Shapes)
	case ingest.OpDelete:
		if v.active.Has(op.Image) {
			_, _, err := v.active.Delete(op.Image)
			return err
		}
		if g.frozenLive(v, op.Image) {
			g.deleteFrozenLocked(op.Image)
		}
		return nil
	}
	return fmt.Errorf("unknown op kind %q", string(op.Kind))
}

// InsertImage adds an image to the live base: validated and indexed
// into the mutable delta (visible to the next Search), durably logged
// before acknowledgment. The image id must not be live anywhere —
// frozen shards, sealed delta, or active delta; re-using the id of a
// deleted image is allowed and assigns fresh global shape ids.
func (se *ShardedEngine) InsertImage(ctx context.Context, imageID int, shapes []Shape) error {
	g := se.ing.Load()
	if g == nil {
		return ErrIngestOff
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrIngestOff
	}
	v := se.view.Load()
	if g.frozenLive(v, imageID) || (v.sealed != nil && v.sealed.Has(imageID)) || v.active.Has(imageID) {
		g.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrImageExists, imageID)
	}
	// Index first — Insert validates the shapes, and nothing invalid may
	// reach the log — then append; a failed append rolls the delta back
	// (including the global-id reservation: the insert was never
	// acknowledged, so no trace of it may survive).
	if err := v.active.Insert(imageID, shapes); err != nil {
		g.mu.Unlock()
		return err
	}
	op := ingest.Op{Kind: ingest.OpInsert, Image: imageID, Shapes: shapes}
	if err := g.wal.Append(&op); err != nil {
		v.active.RollbackLast(imageID)
		g.mu.Unlock()
		return fmt.Errorf("geosir: logging insert: %w", err)
	}
	g.pending = append(g.pending, op)
	g.ins++
	se.mutEpoch.Add(1)
	trigger := g.cfg.CompactThreshold > 0 &&
		v.active.NumShapes() >= g.cfg.CompactThreshold &&
		!g.compacting.Load()
	if trigger {
		g.autos++
	}
	g.mu.Unlock()
	if trigger {
		go func() {
			if err := se.Compact(); err != nil && !errors.Is(err, ErrCompacting) && !errors.Is(err, ErrIngestOff) {
				g.mu.Lock()
				g.lastErr = err.Error()
				g.mu.Unlock()
			}
		}()
	}
	return nil
}

// DeleteImage removes an image from the live base, durably logged
// before acknowledgment. Delta-resident images are tombstoned in the
// delta; frozen images are tombstoned in the manifest log (their shard
// file is immutable — the tombstone filters them out of every query
// path). Deletes of frozen or sealed images are refused with
// ErrCompacting while a compaction is folding, so the fold's input
// stays exactly the write prefix it sealed.
func (se *ShardedEngine) DeleteImage(ctx context.Context, imageID int) error {
	g := se.ing.Load()
	if g == nil {
		return ErrIngestOff
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return ErrIngestOff
	}
	v := se.view.Load()
	switch {
	case v.active.Has(imageID):
		op := ingest.Op{Kind: ingest.OpDelete, Image: imageID}
		if err := g.wal.Append(&op); err != nil {
			return fmt.Errorf("geosir: logging delete: %w", err)
		}
		g.pending = append(g.pending, op)
		if _, _, err := v.active.Delete(imageID); err != nil {
			return err
		}
	case v.sealed != nil && v.sealed.Has(imageID):
		return ErrCompacting
	case g.frozenLive(v, imageID):
		if g.compacting.Load() {
			return ErrCompacting
		}
		op := ingest.Op{Kind: ingest.OpDelete, Image: imageID}
		if err := g.wal.Append(&op); err != nil {
			return fmt.Errorf("geosir: logging delete: %w", err)
		}
		g.pending = append(g.pending, op)
		g.deleteFrozenLocked(imageID)
	default:
		return fmt.Errorf("%w: id %d", ErrNoImage, imageID)
	}
	g.dels++
	se.mutEpoch.Add(1)
	return nil
}

// deleteFrozenLocked tombstones a frozen image by publishing a
// successor view: the manifest-log entry flips to Deleted, the image's
// global shape ids join deadGIDs, and its id joins its shard's dead
// image set. The shard file itself is untouched. Caller holds mu and
// has verified frozenLive.
func (g *ingestor) deleteFrozenLocked(imageID int) {
	v := g.se.view.Load()
	idx := g.frozenIdx[imageID]
	im := v.order[idx]

	norder := append([]shardImage(nil), v.order...)
	norder[idx].Deleted = true

	ndead := make(map[int]bool, len(v.deadGIDs)+im.Shapes)
	for gid := range v.deadGIDs {
		ndead[gid] = true
	}
	for gid := g.gidStart[idx]; gid < g.gidStart[idx]+im.Shapes; gid++ {
		ndead[gid] = true
	}

	ndeadIn := make([]map[int]bool, len(v.shards))
	copy(ndeadIn, v.deadIn)
	shardDead := make(map[int]bool, len(ndeadIn[im.Shard])+1)
	for id := range v.deadImagesIn(im.Shard) {
		shardDead[id] = true
	}
	shardDead[imageID] = true
	ndeadIn[im.Shard] = shardDead

	nv := *v
	nv.order = norder
	nv.deadGIDs = ndead
	nv.deadIn = ndeadIn
	g.se.view.Store(&nv)
}

// Compact folds the delta into a new immutable shard: it seals the
// current delta (a fresh one takes over new inserts immediately),
// builds and freezes a full Engine over the sealed live images, writes
// it as the next shard file, atomically rewrites the manifest — the
// commit point, recording the placement, the deleted reservations, and
// the WAL fold watermark — hot-swaps the query view, and finally drops
// the folded prefix from the WAL. Queries run uninterrupted throughout:
// they see {shards, sealed, active} until the swap and {shards+1,
// active} after, both answering identically.
//
// A failed compaction leaves the sealed delta in place, still serving
// queries; calling Compact again retries the fold from where it left
// off. A crash at any point recovers via EnableIngest: the manifest
// either still names the old watermark (the fold never happened — the
// WAL replays it into a fresh delta) or the new one (the fold committed
// — the folded prefix is skipped).
func (se *ShardedEngine) Compact() error {
	g := se.ing.Load()
	if g == nil {
		return ErrIngestOff
	}
	if !g.compactMu.TryLock() {
		return ErrCompacting
	}
	defer g.compactMu.Unlock()
	g.compacting.Store(true)
	defer g.compacting.Store(false)

	// Phase 1 (short critical section): seal the delta, install its
	// successor, fix the fold watermark.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrIngestOff
	}
	v := se.view.Load()
	var sealed *ingest.Delta
	if v.sealed != nil {
		sealed = v.sealed // retrying a failed fold
	} else {
		if len(g.pending) == 0 {
			g.mu.Unlock()
			return nil // nothing to fold
		}
		sealed = v.active
		sealed.Seal()
		g.sealSeq = g.pending[len(g.pending)-1].Seq
		active, err := ingest.NewDelta(g.copts, se.opts.HashCurves, sealed.NextGID())
		if err != nil {
			g.mu.Unlock()
			return err
		}
		nv := *v
		nv.sealed = sealed
		nv.active = active
		se.view.Store(&nv)
		v = &nv
	}
	snap := sealed.Snapshot()
	sealSeq := g.sealSeq
	g.mu.Unlock()

	// Phase 2 (no lock): build and persist the new shard. Inserts keep
	// landing in the successor delta; queries keep reading the sealed
	// one.
	var eng *Engine
	liveImages := 0
	for _, st := range snap {
		if !st.Deleted {
			liveImages++
		}
	}
	if liveImages > 0 {
		eng = New(se.opts)
		for _, st := range snap {
			if st.Deleted {
				continue
			}
			if err := eng.AddImage(st.ID, st.Shapes); err != nil {
				return fmt.Errorf("geosir: compaction rebuild: %w", err)
			}
		}
		if err := eng.Freeze(); err != nil {
			return fmt.Errorf("geosir: compaction freeze: %w", err)
		}
	}
	if err := g.stage("built"); err != nil {
		return err
	}
	newShard := len(v.shards)
	if eng != nil {
		// The compacted shard is frozen, so commit it in the GSIR3
		// frozen-shard format: the next reload assembles (or mmaps) it
		// instead of re-deriving the index.
		if err := eng.SaveFileAs(filepath.Join(g.cfg.Dir, shardFileName(newShard)), FormatGSIR3); err != nil {
			return fmt.Errorf("geosir: saving compacted shard: %w", err)
		}
	}
	if err := g.stage("shard-saved"); err != nil {
		return err
	}

	// Phase 3 (short critical section): commit. The manifest rename is
	// the point of no return; everything after it is idempotent cleanup.
	// CloseIngest cannot have run — it blocks on compactMu, held since
	// phase 1 — so the closed re-check only guards future call paths.
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrIngestOff
	}
	cur := se.view.Load()
	extra := 0
	if eng != nil {
		extra = 1
	}
	nshards := cur.shards
	if eng != nil {
		nshards = append(append([]*Engine(nil), cur.shards...), eng)
	}
	nsmap := cur.smap.CloneGrow(extra)
	norder := append([]shardImage(nil), cur.order...)
	for _, st := range snap {
		if st.Deleted {
			nsmap.Skip(st.NumShapes)
			norder = append(norder, shardImage{ID: st.ID, Shapes: st.NumShapes, Shard: -1, Deleted: true})
		} else {
			nsmap.AssignImage(newShard, st.NumShapes)
			norder = append(norder, shardImage{ID: st.ID, Shapes: st.NumShapes, Shard: newShard})
		}
	}
	ndeadIn := make([]map[int]bool, len(nshards))
	copy(ndeadIn, cur.deadIn)
	nv := &shardView{
		shards:   nshards,
		smap:     nsmap,
		order:    norder,
		gen:      cur.gen + 1,
		active:   cur.active,
		deadGIDs: cur.deadGIDs,
		deadIn:   ndeadIn,
	}
	if err := writeManifest(filepath.Join(g.cfg.Dir, manifestName), manifestFromView(nv, sealSeq), g.cfg.WrapManifest); err != nil {
		g.mu.Unlock()
		return fmt.Errorf("geosir: committing compaction: %w", err)
	}
	se.view.Store(nv)
	g.rebuildIndexLocked(nv)
	g.walFloor = sealSeq
	keep := g.pending[:0:0]
	for _, op := range g.pending {
		if op.Seq > sealSeq {
			keep = append(keep, op)
		}
	}
	g.pending = keep
	g.comps++
	se.mutEpoch.Add(1)
	postErr := g.stage("manifest-written")
	var walErr error
	if postErr == nil {
		// Drop the folded prefix. Failure here is benign — the watermark
		// already makes replay skip the stale prefix — so the compaction
		// still counts as committed.
		if walErr = g.wal.Rewrite(g.pending); walErr == nil {
			walErr = g.stage("wal-rewritten")
		}
	}
	g.mu.Unlock()
	if postErr != nil {
		return postErr
	}
	if walErr != nil {
		return fmt.Errorf("geosir: compaction committed; wal truncation failed: %w", walErr)
	}
	return nil
}

// stage invokes the compaction crash-test hook.
func (g *ingestor) stage(name string) error {
	if g.cfg.CrashStage != nil {
		return g.cfg.CrashStage(name)
	}
	return nil
}

// IngestStats reports the live-ingestion state for /statz.
func (se *ShardedEngine) IngestStats() IngestStats {
	g := se.ing.Load()
	if g == nil {
		return IngestStats{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	v := se.view.Load()
	st := IngestStats{
		Enabled:          true,
		Compacting:       g.compacting.Load(),
		Generation:       v.gen,
		Epoch:            se.mutEpoch.Load(),
		WALOps:           g.wal.Len(),
		WALBytes:         g.wal.Size(),
		WALTorn:          g.walTorn,
		Inserts:          g.ins,
		Deletes:          g.dels,
		Compactions:      g.comps,
		AutoCompactions:  g.autos,
		Replayed:         g.replay,
		LastCompactError: g.lastErr,
	}
	if v.active != nil {
		st.DeltaImages = v.active.NumImages()
		st.DeltaShapes = v.active.NumShapes()
	}
	if v.sealed != nil {
		st.SealedImages = v.sealed.NumImages()
		st.SealedShapes = v.sealed.NumShapes()
	}
	return st
}

// CloseIngest quiesces ingestion and releases the WAL file handle: it
// waits out any in-flight compaction (so a stale fold can never rewrite
// the manifest or WAL after a successor engine opens them), then marks
// the ingestor closed. Pending (unfolded) writes stay durable in the
// log; a later EnableIngest replays them. Mutations after CloseIngest
// fail with ErrIngestOff.
func (se *ShardedEngine) CloseIngest() error {
	g := se.ing.Load()
	if g == nil {
		return nil
	}
	g.compactMu.Lock()
	defer g.compactMu.Unlock()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil
	}
	g.closed = true
	se.ing.CompareAndSwap(g, nil)
	return g.wal.Close()
}
