// Package geosir is GeoSIR, a geometric-similarity image retrieval
// engine: the Go reproduction of "Geometric-Similarity Retrieval in Large
// Image Bases" (Fudos, Palios, Pitoura — ICDE 2002).
//
// Shapes are simple polygons or polylines extracted from object
// boundaries. Retrieval uses a similarity criterion based on the average
// minimum point distance, an incremental ε-envelope "fattening" algorithm
// over simplex range-search structures with fractional cascading, and a
// geometric-hashing fallback for approximate matches. A topological query
// processor answers compound queries over pairwise shape relations
// (contain / overlap / disjoint, with diameter angles).
//
// Quick start:
//
//	eng := geosir.New(geosir.DefaultOptions())
//	eng.AddImage(0, []geosir.Shape{geosir.NewPolygon(...)})
//	eng.Freeze()
//	resp, _ := eng.Search(ctx, geosir.SearchRequest{Query: sketch, K: 3})
//
// All retrieval goes through the unified Search method (see Searcher);
// a ShardedEngine partitions the image base across independent shards
// and answers the same Search requests by parallel fan-out with an
// exact top-k merge.
package geosir

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/annindex"
	"repro/internal/core"
	"repro/internal/geohash"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/sched"
)

// Point is a point in the plane.
type Point = geom.Point

// Shape is an object boundary: a simple polygon (Closed) or polyline.
type Shape = geom.Poly

// Transform is a direct similarity transform (rotation, uniform scale,
// translation) — retrieval is invariant under it.
type Transform = geom.Transform

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Similarity builds the transform that scales by s, rotates by theta, and
// then translates by t.
func Similarity(s, theta float64, t Point) Transform {
	return Transform{S: s, Theta: theta, T: t}
}

// NewPolygon constructs a closed Shape from vertices.
func NewPolygon(pts ...Point) Shape { return geom.NewPolygon(pts...) }

// NewPolyline constructs an open Shape from vertices.
func NewPolyline(pts ...Point) Shape { return geom.NewPolyline(pts...) }

// Options configure an Engine.
type Options struct {
	// Alpha is the α-diameter normalization slack (§2.4).
	Alpha float64
	// Beta is the vertex-fraction tolerance of the fattening
	// algorithm (§2.5).
	Beta float64
	// Tau is the similarity threshold of g_similar, in diameter units.
	Tau float64
	// AngleTol is the θ matching tolerance of topological predicates,
	// radians.
	AngleTol float64
	// HashCurves is the number of hash curves per lune quarter (§3).
	HashCurves int
}

// DefaultOptions returns the prototype defaults: α = 0.1, β = 0.25,
// τ = 0.05, 50 curves per quarter (the paper's Figure 4 example).
func DefaultOptions() Options {
	return Options{Alpha: 0.1, Beta: 0.25, Tau: 0.05, AngleTol: 0.1, HashCurves: 50}
}

// Match is one retrieved shape.
type Match struct {
	ShapeID int
	ImageID int
	// Distance is the similarity distance (symmetric vertex-averaged
	// h_avg), in diameter-normalized units; smaller is more similar.
	Distance float64
	// ContinuousDistance is the symmetrized continuous-boundary measure.
	ContinuousDistance float64
	// Approximate marks results found by the geometric-hashing fallback
	// rather than the exact fattening search.
	Approximate bool
}

// Stats reports retrieval work (see §2.5's complexity analysis).
type Stats struct {
	Iterations      int
	FinalEpsilon    float64
	VerticesCounted int
	Candidates      int
	Converged       bool
	UsedHashing     bool
	// UsedANN reports that the MinHash/LSH candidate tier participated
	// (ordering in AnnVerify, candidate generation in AnnApprox);
	// ANNProbes counts LSH buckets probed and ANNCandidates the
	// candidates the tier emitted, summed over stages and shards.
	UsedANN       bool
	ANNProbes     int
	ANNCandidates int
	// BlockReads is the page-granular storage footprint of the entries
	// this search evaluated (the paper's §4 block-access measure, live on
	// the real path instead of the extstore simulation). Under mmap
	// serving it estimates the pages the query could fault in.
	BlockReads int
}

// Engine is a GeoSIR instance: the shape base, the per-image topology
// graphs, and the geometric hash table.
//
// Concurrency: an Engine is not safe for concurrent mutation, but after
// Freeze every index structure is immutable and Search (and the
// deprecated Find* wrappers) may be called from any number of
// goroutines. Query updates the shared selectivity estimator and should
// not race with itself; use one goroutine for topological queries.
type Engine struct {
	opts   Options
	db     *query.DB
	family *geohash.Family
	table  *geohash.Table
	ann    *annindex.Index
	annPre *annPreload
	frozen bool

	// stor records how the engine's snapshot is backed (nil = heap).
	// Set by LoadFileMmap, which also pins the mapping's lifetime to the
	// engine; see persist_v3.go.
	stor *engineStorage

	// sched plans per-request fan-out width (sketch shapes) from the
	// live in-flight load; the zero value is ready to use.
	sched sched.Planner
}

// New creates an empty engine.
func New(opts Options) *Engine {
	if opts.HashCurves <= 0 {
		opts.HashCurves = 50
	}
	qopts := query.DefaultOptions()
	if opts.Alpha > 0 {
		qopts.Core.Alpha = opts.Alpha
	}
	if opts.Beta > 0 {
		qopts.Core.Beta = opts.Beta
	}
	if opts.Tau > 0 {
		qopts.Tau = opts.Tau
	}
	if opts.AngleTol > 0 {
		qopts.AngleTol = opts.AngleTol
	}
	return &Engine{opts: opts, db: query.NewDB(qopts)}
}

// AddImage registers an image with its object-boundary shapes. Shapes
// must be valid (simple, ≥2 distinct vertices; ≥3 for polygons). After
// Freeze it fails with ErrFrozen.
func (e *Engine) AddImage(imageID int, shapes []Shape) error {
	if e.frozen {
		return ErrFrozen
	}
	return e.db.AddImage(imageID, shapes)
}

// Freeze builds the retrieval index and the geometric hash table; the
// engine becomes read-only and queryable.
func (e *Engine) Freeze() error {
	if e.frozen {
		return nil
	}
	if err := e.db.Freeze(); err != nil {
		return err
	}
	family, err := geohash.NewFamily(e.opts.HashCurves)
	if err != nil {
		return err
	}
	e.family = family
	e.table = geohash.NewTable(family)
	base := e.db.Base()
	for _, s := range base.Shapes() {
		ce, err := core.NormalizeCanonical(s.Poly)
		if err != nil {
			continue // degenerate shapes never got this far, but be safe
		}
		quad := family.Characteristic(ce.Poly.Pts)
		if err := e.table.Insert(s.ID, quad); err != nil {
			return fmt.Errorf("geosir: hashing shape %d: %w", s.ID, err)
		}
	}
	e.buildANN()
	e.frozen = true
	return nil
}

// Options returns the configuration the engine was created with (after
// defaulting, so a persisted and reloaded engine reports identical
// options).
func (e *Engine) Options() Options { return e.opts }

// Frozen reports whether Freeze has completed and the engine is queryable.
func (e *Engine) Frozen() bool { return e.frozen }

// NumImages returns the number of images.
func (e *Engine) NumImages() int { return e.db.NumImages() }

// NumShapes returns the number of stored shapes.
func (e *Engine) NumShapes() int { return e.db.Base().NumShapes() }

// NumEntries returns the number of normalized copies in the shape base.
func (e *Engine) NumEntries() int { return e.db.Base().NumEntries() }

// DB exposes the topological query layer for advanced use.
func (e *Engine) DB() *query.DB { return e.db }

// Base exposes the underlying shape base for advanced use.
func (e *Engine) Base() *core.Base { return e.db.Base() }

// HashTable exposes the geometric hash table for advanced use.
func (e *Engine) HashTable() *geohash.Table { return e.table }

// FindSimilar retrieves the k shapes most similar to q. It first runs the
// exact ε-envelope fattening search; if that fails to converge on a
// sufficiently close match, it falls back to geometric hashing for an
// approximate answer (§6: "if it fails to find a close match, geometric
// hashing is used for approximate retrieval").
//
// Deprecated: use Search with ModeAuto (the zero Mode):
//
//	resp, err := e.Search(ctx, SearchRequest{Query: q, K: k})
func (e *Engine) FindSimilar(q Shape, k int) ([]Match, Stats, error) {
	return e.FindSimilarCtx(context.Background(), q, k)
}

// FindSimilarCtx is FindSimilar under a context.
//
// Deprecated: use Search with ModeAuto (the zero Mode):
//
//	resp, err := e.Search(ctx, SearchRequest{Query: q, K: k})
func (e *Engine) FindSimilarCtx(ctx context.Context, q Shape, k int) ([]Match, Stats, error) {
	resp, err := e.Search(ctx, SearchRequest{Query: q, K: k, Mode: ModeAuto})
	if err != nil {
		return nil, Stats{}, err
	}
	return resp.Matches, resp.Stats, nil
}

// FindApproximate retrieves up to k approximate matches through the
// geometric hash table alone (§3).
//
// Deprecated: use Search with ModeApproximate:
//
//	resp, err := e.Search(ctx, SearchRequest{Query: q, K: k, Mode: ModeApproximate})
func (e *Engine) FindApproximate(q Shape, k int) ([]Match, error) {
	resp, err := e.Search(context.Background(), SearchRequest{Query: q, K: k, Mode: ModeApproximate})
	if err != nil {
		return nil, err
	}
	return resp.Matches, nil
}

// Query parses and executes a topological query (§5), e.g.
//
//	similar(a) AND NOT overlap(b, c, any)
//
// with binds supplying the named shapes. It returns the matching image
// ids (sorted) and a rendering of the execution plan.
func (e *Engine) Query(src string, binds map[string]Shape) ([]int, string, error) {
	if !e.frozen {
		return nil, "", ErrNotFrozen
	}
	set, plan, err := e.db.EvalString(src, query.Bindings(binds))
	if err != nil {
		return nil, "", err
	}
	return set.Sorted(), plan.String(), nil
}

func (e *Engine) toMatches(ms []core.Match, approx bool) []Match {
	base := e.db.Base()
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{
			ShapeID:            m.ShapeID,
			ImageID:            base.Shape(m.ShapeID).Image,
			Distance:           m.DistVertex,
			ContinuousDistance: m.DistContinuous,
			Approximate:        approx,
		}
	}
	return out
}

// sortMatches orders by increasing distance, breaking ties on ShapeID so
// results are deterministic regardless of hash-bucket iteration order.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		return ms[i].ShapeID < ms[j].ShapeID
	})
}

// SketchMatch is one image retrieved by a multi-shape sketch.
type SketchMatch struct {
	ImageID int
	// Score is the mean, over the sketch's shapes, of the distance to
	// the best-matching shape in the image; smaller is better.
	Score float64
	// PerShape holds the per-sketch-shape best distances (aligned with
	// the query slice).
	PerShape []float64
}

// FindBySketch implements the §6 user flow: a query sketch is decomposed
// into several polylines, and images are ranked by how well they match
// *all* of them — the mean over sketch shapes of the distance to the
// image's closest shape.
//
// Deprecated: use Search with ModeSketch:
//
//	resp, err := e.Search(ctx, SearchRequest{Sketch: sketch, K: k, Mode: ModeSketch})
func (e *Engine) FindBySketch(sketch []Shape, k int) ([]SketchMatch, error) {
	return e.FindBySketchWorkers(sketch, k, 0)
}
