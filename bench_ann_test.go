package geosir

// ANN candidate-tier benchmarks: recall vs speedup of approximate mode
// against the exact kernel on the demo base (see the Makefile's
// bench-ann target, which records the result in BENCH_ann.json, and
// cmd/benchdiff, which gates on the reported recall metric). Each
// approximate benchmark reports:
//
//	recall   — mean fraction of the exact top-k recovered
//	speedup  — exact mean latency / approximate mean latency
//
// GEOSIR_ANN_BENCH_IMAGES overrides the base size (default 400), so CI
// can run a fast smoke pass (bench-ann-smoke) without paying for the
// full demo base.

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/synth"
)

const annBenchK = 5

type annBenchState struct {
	eng     *Engine
	queries []Shape
	sketch  []Shape
	// Exact ground truth and mean latency, measured once over the
	// workload so every approximate benchmark shares the same baseline.
	truth       []map[int]bool
	exactMean   time.Duration
	sketchTruth map[int]bool
	sketchMean  time.Duration
	err         error
}

var (
	annBenchOnce sync.Once
	annBench     annBenchState
)

func annBenchImages() int {
	if s := os.Getenv("GEOSIR_ANN_BENCH_IMAGES"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 400
}

func annBenchFixture(b *testing.B) *annBenchState {
	b.Helper()
	annBenchOnce.Do(func() {
		images := annBenchImages()
		spec := synth.PaperSpec(float64(images)/10000, 7)
		spec.Images = images
		base := synth.GenerateBase(spec)
		eng := New(DefaultOptions())
		for _, im := range base {
			if err := eng.AddImage(im.ID, im.Shapes); err != nil {
				annBench.err = err
				return
			}
		}
		if err := eng.Freeze(); err != nil {
			annBench.err = err
			return
		}
		rng := rand.New(rand.NewSource(19))
		queries := synth.Queries(rng, base, 32, 0.01)
		// Sketch: two lightly distorted shapes from one image.
		var sketch []Shape
		for _, im := range base {
			if len(im.Shapes) >= 2 {
				sketch = []Shape{
					synth.Distort(rng, im.Shapes[0], 0.01),
					synth.Distort(rng, im.Shapes[1], 0.01),
				}
				break
			}
		}
		if sketch == nil || sketch[0].Validate() != nil || sketch[1].Validate() != nil {
			annBench.err = errNoSketch
			return
		}

		ctx := context.Background()
		truth := make([]map[int]bool, len(queries))
		t0 := time.Now()
		for qi, q := range queries {
			resp, err := eng.Search(ctx, SearchRequest{Query: q, K: annBenchK, Mode: ModeExact})
			if err != nil {
				annBench.err = err
				return
			}
			truth[qi] = make(map[int]bool, len(resp.Matches))
			for _, m := range resp.Matches {
				truth[qi][m.ShapeID] = true
			}
		}
		exactMean := time.Since(t0) / time.Duration(len(queries))

		t0 = time.Now()
		sresp, err := eng.Search(ctx, SearchRequest{Sketch: sketch, K: annBenchK, Mode: ModeSketch})
		if err != nil {
			annBench.err = err
			return
		}
		sketchMean := time.Since(t0)
		sketchTruth := make(map[int]bool, len(sresp.SketchMatches))
		for _, m := range sresp.SketchMatches {
			sketchTruth[m.ImageID] = true
		}

		annBench = annBenchState{
			eng: eng, queries: queries, sketch: sketch,
			truth: truth, exactMean: exactMean,
			sketchTruth: sketchTruth, sketchMean: sketchMean,
		}
	})
	if annBench.err != nil {
		b.Fatal(annBench.err)
	}
	return &annBench
}

var errNoSketch = errors.New("no usable sketch in the generated base")

// BenchmarkAnnFig2Exact is the exact-kernel baseline over the same
// distorted-copy workload the approximate benchmark runs, so BENCH_ann
// diffs show both sides of the tradeoff.
func BenchmarkAnnFig2Exact(b *testing.B) {
	f := annBenchFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := f.queries[i%len(f.queries)]
		if _, err := f.eng.Search(ctx, SearchRequest{Query: q, K: annBenchK, Mode: ModeExact}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnFig2Approx runs the Fig2-style distorted-copy workload
// through the ANN-approximate path and reports recall against the exact
// top-k plus speedup over the exact mean latency.
func BenchmarkAnnFig2Approx(b *testing.B) {
	f := annBenchFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	var hits, wanted int
	for i := 0; i < b.N; i++ {
		qi := i % len(f.queries)
		resp, err := f.eng.Search(ctx, SearchRequest{
			Query: f.queries[qi], K: annBenchK, Mode: ModeAuto, Ann: AnnApprox,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range resp.Matches {
			if f.truth[qi][m.ShapeID] {
				hits++
			}
		}
		wanted += len(f.truth[qi])
	}
	b.StopTimer()
	if wanted > 0 {
		b.ReportMetric(float64(hits)/float64(wanted), "recall")
	}
	if mean := b.Elapsed() / time.Duration(b.N); mean > 0 {
		b.ReportMetric(float64(f.exactMean)/float64(mean), "speedup")
	}
}

// BenchmarkAnnSketchApprox runs the multi-shape sketch workload through
// the ANN candidate tier (per-shape table construction probes the index
// instead of scanning every stored shape) and reports image-level
// recall plus speedup over the exact sketch latency.
func BenchmarkAnnSketchApprox(b *testing.B) {
	f := annBenchFixture(b)
	ctx := context.Background()
	b.ResetTimer()
	var hits, wanted int
	for i := 0; i < b.N; i++ {
		resp, err := f.eng.Search(ctx, SearchRequest{
			Sketch: f.sketch, K: annBenchK, Mode: ModeSketch, Ann: AnnApprox,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range resp.SketchMatches {
			if f.sketchTruth[m.ImageID] {
				hits++
			}
		}
		wanted += len(f.sketchTruth)
	}
	b.StopTimer()
	if wanted > 0 {
		b.ReportMetric(float64(hits)/float64(wanted), "recall")
	}
	if mean := b.Elapsed() / time.Duration(b.N); mean > 0 {
		b.ReportMetric(float64(f.sketchMean)/float64(mean), "speedup")
	}
}
