package geosir

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mmap"
)

func saveV3(t *testing.T, eng *Engine) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := eng.SaveAs(&buf, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkEngineEquivalence asserts two engines answer identically across
// exact, sketch, and approximate searches plus topological queries.
func checkEngineEquivalence(t *testing.T, want, got *Engine) {
	t.Helper()
	if got.NumImages() != want.NumImages() ||
		got.NumShapes() != want.NumShapes() ||
		got.NumEntries() != want.NumEntries() {
		t.Fatalf("counts differ: %d/%d/%d vs %d/%d/%d",
			got.NumImages(), got.NumShapes(), got.NumEntries(),
			want.NumImages(), want.NumShapes(), want.NumEntries())
	}
	if got.Options() != want.Options() {
		t.Fatalf("options differ: %+v vs %+v", got.Options(), want.Options())
	}
	ctx := context.Background()
	queries := []Shape{
		lshape(0, 0, 3).Transform(Similarity(1.4, 0.5, Pt(40, 40))),
		square(0, 0, 5).Transform(Similarity(0.7, -1.1, Pt(-3, 8))),
		triangle(0, 0, 4),
	}
	combos := []struct {
		mode Mode
		ann  AnnMode
	}{
		{ModeAuto, AnnOff}, {ModeExact, AnnOff}, {ModeApproximate, AnnOff},
		{ModeAuto, AnnVerify}, {ModeAuto, AnnApprox},
	}
	for _, c := range combos {
		for _, k := range []int{1, 3} {
			for qi, q := range queries {
				mode := c.mode
				req := SearchRequest{Query: q, K: k, Mode: mode, Ann: c.ann}
				r1, err1 := want.Search(ctx, req)
				r2, err2 := got.Search(ctx, req)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("mode %v k %d q %d: errors differ: %v vs %v", mode, k, qi, err1, err2)
				}
				if err1 != nil {
					continue
				}
				if r1.Stats != r2.Stats {
					t.Fatalf("mode %v k %d q %d: stats differ:\n%+v\n%+v", mode, k, qi, r1.Stats, r2.Stats)
				}
				if len(r1.Matches) != len(r2.Matches) {
					t.Fatalf("mode %v k %d q %d: %d vs %d matches", mode, k, qi, len(r1.Matches), len(r2.Matches))
				}
				for i := range r1.Matches {
					if r1.Matches[i] != r2.Matches[i] {
						t.Fatalf("mode %v k %d q %d: match %d differs: %+v vs %+v",
							mode, k, qi, i, r1.Matches[i], r2.Matches[i])
					}
				}
			}
		}
	}
	binds := map[string]Shape{"sq": square(0, 0, 7), "tri": triangle(0, 0, 5)}
	for _, src := range []string{"contain(sq, tri, any)", "overlap(sq, tri, any)", "similar(sq)"} {
		ids1, _, err1 := want.Query(src, binds)
		ids2, _, err2 := got.Query(src, binds)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %q: errors differ: %v vs %v", src, err1, err2)
		}
		if len(ids1) != len(ids2) {
			t.Fatalf("query %q: %v vs %v", src, ids1, ids2)
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatalf("query %q: %v vs %v", src, ids1, ids2)
			}
		}
	}
}

func TestGSIR3RoundTrip(t *testing.T) {
	orig := buildEngine(t)
	data := saveV3(t, orig)
	loaded, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Frozen() {
		t.Fatal("GSIR3 load should return a frozen engine")
	}
	checkEngineEquivalence(t, orig, loaded)
}

func TestGSIR3SaveLoadSaveByteIdentity(t *testing.T) {
	orig := buildEngine(t)
	first := saveV3(t, orig)
	loaded, err := Load(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second := saveV3(t, loaded)
	if !bytes.Equal(first, second) {
		t.Fatalf("GSIR3 encoding is not canonical: %d vs %d bytes", len(first), len(second))
	}
}

func TestGSIR3RequiresFrozen(t *testing.T) {
	eng := New(DefaultOptions())
	if err := eng.AddImage(0, []Shape{square(0, 0, 5)}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.SaveAs(&buf, FormatGSIR3); err == nil {
		t.Fatal("GSIR3 save of an unfrozen engine should fail")
	}
}

func TestGSIR3Peek(t *testing.T) {
	orig := buildEngine(t)
	data := saveV3(t, orig)
	info, err := Peek(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != FormatGSIR3 || info.FormatName != "GSIR3" {
		t.Fatalf("format = %d %q", info.Format, info.FormatName)
	}
	if info.Images != orig.NumImages() || info.Shapes != orig.NumShapes() {
		t.Fatalf("peek counts %d/%d, want %d/%d", info.Images, info.Shapes, orig.NumImages(), orig.NumShapes())
	}
	if info.Sections == 0 {
		t.Fatal("peek should report the section count")
	}
	if info.Options != orig.Options() {
		t.Fatalf("peek options %+v, want %+v", info.Options, orig.Options())
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "snap.gsir3")
	if err := orig.SaveFileAs(path, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	finfo, err := PeekFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if finfo.Size != int64(len(data)) {
		t.Fatalf("peek size %d, want %d", finfo.Size, len(data))
	}
}

func TestGSIR3MmapEquivalence(t *testing.T) {
	if !mmap.Supported() || !mmap.CanCast() {
		t.Skip("mmap serving unsupported on this platform/build")
	}
	orig := buildEngine(t)
	path := filepath.Join(t.TempDir(), "snap.gsir3")
	if err := orig.SaveFileAs(path, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFileMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if st := m.StorageStats(); st.LoadMode != "mmap" || st.MappedBytes == 0 {
		t.Fatalf("storage stats = %+v", st)
	}
	if st := orig.StorageStats(); st.LoadMode != "heap" || st.MappedBytes != 0 {
		t.Fatalf("heap engine storage stats = %+v", st)
	}
	checkEngineEquivalence(t, orig, m)

	h, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkEngineEquivalence(t, h, m)
}

func TestGSIR3MmapClose(t *testing.T) {
	if !mmap.Supported() || !mmap.CanCast() {
		t.Skip("mmap serving unsupported on this platform/build")
	}
	orig := buildEngine(t)
	path := filepath.Join(t.TempDir(), "snap.gsir3")
	if err := orig.SaveFileAs(path, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	m, err := LoadFileMmap(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if st := m.StorageStats(); st.LoadMode != "heap" {
		t.Fatalf("closed engine should report heap backing, got %+v", st)
	}
	// Heap engines Close as a no-op.
	if err := orig.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestGSIR3CrossFormatEquivalence(t *testing.T) {
	orig := buildEngine(t)
	var v2 bytes.Buffer
	if err := orig.SaveAs(&v2, FormatGSIR2); err != nil {
		t.Fatal(err)
	}
	e2, err := Load(&v2)
	if err != nil {
		t.Fatal(err)
	}
	e3, err := Load(bytes.NewReader(saveV3(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	checkEngineEquivalence(t, e2, e3)
}

// TestGSIR3ByteFlipSweep flips one byte in every section payload in
// turn. Damage to a raw section must refuse recovery; damage to a
// derived section must salvage an engine that answers identically to
// the original (the slow rebuild is deterministic). A strict Load must
// fail on every flip.
func TestGSIR3ByteFlipSweep(t *testing.T) {
	orig := buildEngine(t)
	data := saveV3(t, orig)
	secs, err := parseV3Layout(data)
	if err != nil {
		t.Fatal(err)
	}
	q := lshape(0, 0, 3).Transform(Similarity(1.4, 0.5, Pt(40, 40)))
	wantM, wantS, err := orig.FindSimilar(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range secs {
		if s.len == 0 {
			continue
		}
		name := s.tag
		t.Run(name, func(t *testing.T) {
			mut := bytes.Clone(data)
			mut[s.off+s.len/2] ^= 0x40
			if _, err := Load(bytes.NewReader(mut)); err == nil {
				t.Fatalf("strict load survived a flip in %s", name)
			}
			eng, rec, err := LoadPartial(bytes.NewReader(mut))
			if v3RawTags[name] {
				if err == nil {
					t.Fatalf("salvage from damaged raw section %s should refuse", name)
				}
				return
			}
			if err != nil {
				t.Fatalf("salvage with damaged %s: %v", name, err)
			}
			if rec.Complete() {
				t.Fatalf("recovery from damaged %s claims to be complete", name)
			}
			if rec.AuxDropped == 0 {
				t.Fatalf("recovery from damaged %s reports no dropped sections", name)
			}
			gotM, gotS, err := eng.FindSimilar(q, 3)
			if err != nil {
				t.Fatal(err)
			}
			if gotS != wantS || len(gotM) != len(wantM) {
				t.Fatalf("salvaged engine answers differently: %+v vs %+v", gotS, wantS)
			}
			for i := range wantM {
				if gotM[i] != wantM[i] {
					t.Fatalf("salvaged match %d: %+v vs %+v", i, gotM[i], wantM[i])
				}
			}
		})
	}
}

// TestGSIR3TruncationSweep cuts the file at a range of lengths; every
// prefix must either refuse cleanly or salvage — never panic, never
// load silently wrong data.
func TestGSIR3TruncationSweep(t *testing.T) {
	orig := buildEngine(t)
	data := saveV3(t, orig)
	cuts := []int{0, 3, magicLen, v3HeaderLen, v3HeaderLen + 10,
		len(data) / 4, len(data) / 2, len(data) - 1}
	for _, n := range cuts {
		if n > len(data) {
			continue
		}
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("strict load survived truncation to %d bytes", n)
		}
		eng, _, err := LoadPartial(bytes.NewReader(data[:n]))
		if err == nil && eng == nil {
			t.Fatalf("truncation to %d: nil engine without error", n)
		}
	}
}

func TestGSIR3SaveFileAsAtomicity(t *testing.T) {
	orig := buildEngine(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := orig.SaveFileAs(path, FormatGSIR3); err != nil {
		t.Fatal(err)
	}
	// No temp droppings.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1", len(entries))
	}
	// Explicit GSIR2 via SaveFileAs still round-trips.
	if err := orig.SaveFileAs(path, FormatGSIR2); err != nil {
		t.Fatal(err)
	}
	info, err := PeekFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatName != "GSIR2" {
		t.Fatalf("format = %q", info.FormatName)
	}
}
