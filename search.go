package geosir

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sched"
)

// Mode selects the retrieval strategy of a Search.
type Mode int

const (
	// ModeAuto runs the exact ε-envelope fattening search and falls back
	// to geometric hashing when it fails to converge on a sufficiently
	// close match — the paper's §6 retrieval flow.
	ModeAuto Mode = iota
	// ModeExact runs only the exact fattening search. The response never
	// contains approximate matches; Stats.Converged reports whether the
	// result is proven optimal.
	ModeExact
	// ModeApproximate skips the exact search and answers from the
	// geometric hash table alone (§3).
	ModeApproximate
	// ModeSketch ranks whole images against the multi-shape sketch in
	// SearchRequest.Sketch (§6); results land in SketchMatches.
	ModeSketch
)

// String names the mode for logs and wire formats.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeExact:
		return "exact"
	case ModeApproximate:
		return "approximate"
	case ModeSketch:
		return "sketch"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode maps a mode name back to its Mode value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "exact":
		return ModeExact, nil
	case "approximate":
		return ModeApproximate, nil
	case "sketch":
		return ModeSketch, nil
	}
	return 0, fmt.Errorf("geosir: unknown search mode %q", s)
}

// ExecPolicy selects how a request's internal fan-out width is chosen —
// how many goroutines it spends walking its independent parts (shards
// and delta shards on a ShardedEngine, sketch shapes on an Engine). The
// width never changes results, only how fast they arrive: every plan
// visits the same parts with the same cross-shard pruning bound and
// merges identically (DESIGN.md §4.13).
type ExecPolicy int

const (
	// ExecAuto (the zero value) plans the width from live signals: full
	// fan-out when the engine is idle, narrowing toward sequential as
	// concurrent in-flight requests approach the core count, so cores
	// are spent within a request when alone and across requests under
	// load.
	ExecAuto ExecPolicy = iota
	// ExecFanout forces one worker per part regardless of load
	// (MaxWorkers still caps it).
	ExecFanout
	// ExecSequential forces a single-goroutine walk over the parts.
	ExecSequential
)

// String names the policy for logs and wire formats.
func (p ExecPolicy) String() string {
	switch p {
	case ExecAuto:
		return "auto"
	case ExecFanout:
		return "fanout"
	case ExecSequential:
		return "sequential"
	}
	return fmt.Sprintf("exec(%d)", int(p))
}

// ParseExecPolicy maps a policy name back to its ExecPolicy value.
func ParseExecPolicy(s string) (ExecPolicy, error) {
	switch s {
	case "", "auto":
		return ExecAuto, nil
	case "fanout":
		return ExecFanout, nil
	case "sequential":
		return ExecSequential, nil
	}
	return 0, fmt.Errorf("geosir: unknown exec policy %q", s)
}

// SchedStats is a snapshot of an engine's execution scheduler: the
// in-flight request gauge and how many plans chose fan-out versus
// sequential execution since startup. Served under /statz's "sched"
// section (schema 2).
type SchedStats struct {
	InFlight        int64
	PlansFanout     uint64
	PlansSequential uint64
}

// SearchRequest is one parameterized retrieval. The zero Mode is
// ModeAuto, so the minimal request is {Query: q, K: k}.
type SearchRequest struct {
	// Query is the query shape of the single-shape modes.
	Query Shape
	// Sketch is the multi-shape query of ModeSketch.
	Sketch []Shape
	// K is the maximum number of matches to return; it must be positive
	// (ErrBadK otherwise).
	K int
	// Exec selects how the request's internal fan-out width is planned:
	// per-sketch-shape retrievals on an Engine, per-shard searches on a
	// ShardedEngine. The zero value (ExecAuto) adapts to live load.
	Exec ExecPolicy
	// MaxWorkers caps the planned fan-out width under any policy; ≤ 0
	// means no cap.
	MaxWorkers int
	// Workers is the pre-ExecPolicy fan-out knob.
	//
	// Deprecated: set Exec and MaxWorkers instead. A positive Workers
	// (with Exec and MaxWorkers unset) still behaves as it always did —
	// it maps onto ExecFanout with MaxWorkers = Workers — and ≤ 0, the
	// old "use GOMAXPROCS" default, maps onto ExecAuto.
	Workers int
	// Mode selects the retrieval strategy.
	Mode Mode
	// Ann selects the MinHash/LSH candidate tier's role: AnnOff (the
	// zero value) ignores it, AnnVerify uses it to order work without
	// changing results, AnnApprox answers from its candidate set alone
	// (sublinear, measured recall). See AnnMode.
	Ann AnnMode
}

// SearchResponse is the result of a Search.
type SearchResponse struct {
	// Matches holds the retrieved shapes of the single-shape modes,
	// ordered by increasing Distance with ShapeID tie-break.
	Matches []Match
	// SketchMatches holds the ranked images of ModeSketch.
	SketchMatches []SketchMatch
	// Stats reports the retrieval work. For a ShardedEngine it
	// aggregates over shards: counters sum, Iterations/FinalEpsilon are
	// maxima, and Converged is true only if every shard converged.
	Stats Stats
}

// Searcher is the unified query surface: one parameterized method
// instead of a Find* variant per strategy/knob combination. Engine and
// ShardedEngine both implement it, so callers (and the HTTP layer) are
// agnostic to whether the base is partitioned.
type Searcher interface {
	Search(ctx context.Context, req SearchRequest) (*SearchResponse, error)
}

// execPlan resolves the request's scheduling knobs to a (policy, cap)
// pair for internal/sched, folding the deprecated Workers alias in: a
// positive Workers with Exec and MaxWorkers unset reproduces the old
// explicit-workers behavior exactly — forced fan-out capped at Workers —
// while the old ≤ 0 default falls through to ExecAuto.
func (r SearchRequest) execPlan() (sched.Policy, int) {
	switch r.Exec {
	case ExecFanout:
		return sched.Fanout, r.MaxWorkers
	case ExecSequential:
		return sched.Sequential, r.MaxWorkers
	}
	if r.MaxWorkers <= 0 && r.Workers > 0 {
		return sched.Fanout, r.Workers
	}
	return sched.Auto, r.MaxWorkers
}

// schedStatsFrom converts the internal planner snapshot to the public
// SchedStats shape.
func schedStatsFrom(st sched.Stats) SchedStats {
	return SchedStats{
		InFlight:        st.InFlight,
		PlansFanout:     st.PlansFanout,
		PlansSequential: st.PlansSequential,
	}
}

// SchedStats reports the engine's execution-scheduler counters. Only
// ModeSketch requests plan a fan-out on a single Engine, so the plan
// counters stay zero under the single-shape modes.
func (e *Engine) SchedStats() SchedStats { return schedStatsFrom(e.sched.Stats()) }

// Search answers one retrieval request against the frozen engine. It is
// safe for any number of concurrent callers. The context is checked at
// stage boundaries (before the exact search and again before the
// hashing fallback), so a request whose deadline has passed never pays
// for the next stage.
func (e *Engine) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !e.frozen {
		return nil, ErrNotFrozen
	}
	if req.K <= 0 {
		return nil, ErrBadK
	}
	release := e.sched.Enter()
	defer release()
	switch req.Mode {
	case ModeAuto, ModeExact:
		if len(req.Query.Pts) == 0 {
			return nil, ErrEmptyQuery
		}
		if req.Mode == ModeAuto && req.Ann == AnnApprox && e.ann != nil {
			ms, stats, err := e.searchAnnApprox(req.Query, req.K, nil)
			if err != nil {
				return nil, err
			}
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		rank, annStats := e.annRank(req.Query, req.Ann)
		ms, stats, err := e.searchExact(req.Query, req.K, rank)
		if err != nil {
			return nil, err
		}
		stats.addANN(annStats)
		if req.Mode == ModeExact || (stats.Converged && exactGoodEnough(ms, e.db.Tau())) {
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		approx, astats, err := e.searchApprox(req.Query, req.K, req.Ann)
		if err != nil {
			return nil, err
		}
		stats.UsedHashing = true
		stats.addANN(astats)
		if len(approx) == 0 {
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		return &SearchResponse{Matches: approx, Stats: stats}, nil
	case ModeApproximate:
		if len(req.Query.Pts) == 0 {
			return nil, ErrEmptyQuery
		}
		if req.Ann == AnnApprox && e.ann != nil {
			ms, stats, err := e.searchAnnApprox(req.Query, req.K, nil)
			if err != nil {
				return nil, err
			}
			return &SearchResponse{Matches: ms, Stats: stats}, nil
		}
		ms, stats, err := e.searchApprox(req.Query, req.K, req.Ann)
		if err != nil {
			return nil, err
		}
		stats.UsedHashing = true
		return &SearchResponse{Matches: ms, Stats: stats}, nil
	case ModeSketch:
		pol, maxw := req.execPlan()
		width := e.sched.Width(len(req.Sketch), pol, maxw)
		sms, stats, err := e.searchSketch(ctx, req.Sketch, req.K, width, req.Ann)
		if err != nil {
			return nil, err
		}
		return &SearchResponse{SketchMatches: sms, Stats: stats}, nil
	}
	return nil, fmt.Errorf("geosir: unknown search mode %d", int(req.Mode))
}

// exactGoodEnough reports whether the exact result is close enough to
// skip the hashing fallback: the best match is within the τ similarity
// threshold.
func exactGoodEnough(ms []Match, tau float64) bool {
	return len(ms) > 0 && ms[0].Distance <= tau
}

// searchExact runs the ε-envelope fattening search (§2.5). A non-nil
// rank (from annRank) only reorders the kernel's bootstrap evaluations;
// results are byte-identical either way.
func (e *Engine) searchExact(q Shape, k int, rank map[int32]int32) ([]Match, Stats, error) {
	return e.searchExactShared(q, k, rank, nil, false)
}

// searchExactShared is searchExact pruning against (and, when publish is
// set, tightening) a top-k bound shared with the sibling shards of a
// partitioned base; see core.MatchShared. A nil bound is plain searchExact.
func (e *Engine) searchExactShared(q Shape, k int, rank map[int32]int32, shared *core.SharedBound, publish bool) ([]Match, Stats, error) {
	ms, st, err := e.db.Base().MatchSharedRanked(q, k, rank, shared, publish)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{
		Iterations:      st.Iterations,
		FinalEpsilon:    st.FinalEpsilon,
		VerticesCounted: st.VerticesCounted,
		Candidates:      st.Candidates,
		Converged:       st.Converged,
		BlockReads:      st.BlocksRead,
	}
	return e.toMatches(ms, false), stats, nil
}

// searchApprox answers from the geometric hash table alone (§3): hash
// the query, collect the shapes on the same (widening once to adjacent)
// curves, rank them with the similarity measure. The query is normalized
// and its boundary oracle built exactly once; every candidate is scored
// through the prepared query against the base's frozen per-entry
// oracles. A non-off ann mode reorders the candidates best-first by ANN
// agreement before scoring — a pure visit-order change (the admissible
// cutoffs make the surviving top-k order-invariant), reported in the
// returned Stats' ANN fields.
func (e *Engine) searchApprox(q Shape, k int, ann AnnMode) ([]Match, Stats, error) {
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return nil, Stats{}, err
	}
	var blocks atomic.Int64
	pq.AttachBlockCounter(&blocks)
	quad := e.family.Characteristic(pq.Entry().Poly.Pts)
	ids := e.table.Lookup(quad, 0)
	if len(ids) == 0 {
		ids = e.table.Lookup(quad, 1) // widen once to the neighbor curves
	}
	var st Stats
	if ann != AnnOff {
		ids, st = e.annOrderShapes(q, ids)
	}
	out := e.scoreApprox(pq, ids, k, nil)
	st.BlockReads = int(blocks.Load())
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, st, nil
}

// scoreApprox ranks hash-table candidates against a prepared query,
// skipping shapes proven unable to make the final top-k: every candidate
// is scored under the tightest currently-proven cutoff — the k-th best
// distance scored so far, and (when non-nil) the bound shared with the
// sibling shards of a partitioned base — and the bounded evaluation
// abandons a shape as soon as a partial sum proves its distance strictly
// above that cutoff. Both cutoffs only ever hold values ≥ the final k-th
// best, and the skip is strict, so the surviving list truncates to a
// top-k byte-identical to the exhaustive ranking (DESIGN.md §4.9).
// Shapes that fail to score (stale ids) are also skipped.
func (e *Engine) scoreApprox(pq *core.PreparedQuery, ids []int, k int, shared *core.SharedBound) []Match {
	base := e.db.Base()
	out := make([]Match, 0, len(ids))
	kth := newDistTopK(k)
	for _, sid := range ids {
		cut := kth.Kth()
		if shared != nil {
			if sv := shared.Load(); sv < cut {
				cut = sv
			}
		}
		d, ok, err := base.ShapeDistancePreparedBounded(sid, pq, cut)
		if err != nil || !ok {
			continue
		}
		kth.Add(d)
		if shared != nil {
			if v := kth.Kth(); !math.IsInf(v, 1) {
				shared.Tighten(v)
			}
		}
		out = append(out, Match{
			ShapeID:     sid,
			ImageID:     base.Shape(sid).Image,
			Distance:    d,
			Approximate: true,
		})
	}
	return out
}

// distTopK tracks the k-th smallest of a distance stream with a size-
// bounded max-heap: Kth is +Inf until k distances have been seen, so the
// cutoff it feeds never prunes while the top-k is under-filled.
type distTopK struct {
	k int
	h []float64 // max-heap
}

func newDistTopK(k int) *distTopK { return &distTopK{k: k} }

func (t *distTopK) Kth() float64 {
	if t.k <= 0 || len(t.h) < t.k {
		return math.Inf(1)
	}
	return t.h[0]
}

func (t *distTopK) Add(d float64) {
	if len(t.h) < t.k {
		t.h = append(t.h, d)
		for i := len(t.h) - 1; i > 0; {
			p := (i - 1) / 2
			if t.h[p] >= t.h[i] {
				break
			}
			t.h[p], t.h[i] = t.h[i], t.h[p]
			i = p
		}
		return
	}
	if t.k == 0 || d >= t.h[0] {
		return
	}
	t.h[0] = d
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(t.h) && t.h[l] > t.h[big] {
			big = l
		}
		if r < len(t.h) && t.h[r] > t.h[big] {
			big = r
		}
		if big == i {
			break
		}
		t.h[i], t.h[big] = t.h[big], t.h[i]
		i = big
	}
}

// validateSketch applies the shared sketch preconditions.
func validateSketch(sketch []Shape) error {
	if len(sketch) == 0 {
		return ErrEmptyQuery
	}
	for si, q := range sketch {
		if err := q.Validate(); err != nil {
			return fmt.Errorf("geosir: sketch shape %d: %w", si, err)
		}
	}
	return nil
}

// searchSketch implements the §6 user flow: a query sketch is decomposed
// into several polylines, and images are ranked by how well they match
// *all* of them. The per-sketch-shape retrievals are independent index
// reads and run concurrently on up to width goroutines — the planned
// fan-out width from internal/sched (work-stealing, see fanout); the
// per-image tables are merged after the barrier, so the result is
// identical to the sequential evaluation order.
func (e *Engine) searchSketch(ctx context.Context, sketch []Shape, k, width int, ann AnnMode) ([]SketchMatch, Stats, error) {
	if err := validateSketch(sketch); err != nil {
		return nil, Stats{}, err
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	// For each sketch shape, the best distance per image, filled in by
	// that shape's worker (no shared writes before the barrier).
	useAnn := ann == AnnApprox && e.ann != nil
	perShape := make([]map[int]float64, len(sketch))
	perStats := make([]Stats, len(sketch))
	err := fanout(ctx, len(sketch), width, func(si int) error {
		var t map[int]float64
		var err error
		if useAnn {
			t, perStats[si], err = e.sketchShapeTableAnn(sketch[si], k)
		} else {
			t, perStats[si], err = e.sketchShapeTable(sketch[si])
		}
		if err != nil {
			return fmt.Errorf("geosir: sketch shape %d: %w", si, err)
		}
		perShape[si] = t
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var stats Stats
	for _, st := range perStats {
		stats.addANN(st)
	}
	return scoreSketchTables(perShape, k), stats, nil
}

// sketchShapeTable retrieves one sketch shape generously (enough shapes
// to cover every image once) and reduces the matches to the best
// distance per image.
func (e *Engine) sketchShapeTable(q Shape) (map[int]float64, Stats, error) {
	base := e.db.Base()
	ms, st, err := base.Match(q, base.NumShapes())
	if err != nil {
		return nil, Stats{}, err
	}
	best := make(map[int]float64)
	for _, m := range ms {
		img := base.Shape(m.ShapeID).Image
		if d, ok := best[img]; !ok || m.DistVertex < d {
			best[img] = m.DistVertex
		}
	}
	return best, Stats{BlockReads: st.BlocksRead}, nil
}

// scoreSketchTables merges per-sketch-shape best-distance tables into
// the ranked per-image view: images missing a counterpart for some
// sketch shape are dropped, complete ones are scored by the mean of
// their per-shape distances and ordered by (Score, ImageID). Both the
// single engine and the sharded engine feed their tables through here,
// so the ranking rule exists exactly once.
func scoreSketchTables(perShape []map[int]float64, k int) []SketchMatch {
	perImage := make(map[int][]float64)
	for si, best := range perShape {
		for img, d := range best {
			ds, ok := perImage[img]
			if !ok {
				ds = make([]float64, len(perShape))
				for i := range ds {
					ds[i] = math.Inf(1)
				}
				perImage[img] = ds
			}
			ds[si] = d
		}
	}
	out := make([]SketchMatch, 0, len(perImage))
	for img, ds := range perImage {
		var sum float64
		complete := true
		for _, d := range ds {
			if math.IsInf(d, 1) {
				complete = false
				break
			}
			sum += d
		}
		if !complete {
			continue // the image lacks a counterpart for some sketch shape
		}
		out = append(out, SketchMatch{
			ImageID:  img,
			Score:    sum / float64(len(ds)),
			PerShape: ds,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].ImageID < out[j].ImageID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
