// Package voronoi builds the Voronoi diagram of a set of point sites and
// answers nearest-site queries on it.
//
// The matching algorithm of the paper (§2.5) computes the similarity
// measure with the help of the Voronoi diagram of the query shape, which
// has a small, per-query number of vertices m. This implementation favors
// robustness over asymptotics: each cell is obtained by clipping a
// bounding box against the perpendicular-bisector half-planes of the other
// sites (O(m²) per diagram), which is exact for every degenerate input
// (collinear sites, duplicates) that image-extracted shapes produce.
// Nearest-site queries use the diagram's adjacency graph: a greedy walk
// that always moves to a closer neighboring site, which terminates at the
// true nearest site because the closer-neighbor relation on a Delaunay
// graph has no local minima.
package voronoi

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Cell is the Voronoi region of one site, clipped to the diagram's
// bounding box.
type Cell struct {
	Site      geom.Point
	SiteIndex int
	// Polygon is the clipped cell boundary in counter-clockwise order.
	// It is empty only for exact-duplicate sites dominated by an earlier
	// twin.
	Polygon geom.Poly
	// Neighbors lists the site indices whose bisectors contribute an edge
	// of this cell.
	Neighbors []int
}

// Diagram is the Voronoi diagram of a finite site set.
type Diagram struct {
	sites  []geom.Point
	cells  []Cell
	bounds geom.Rect
}

// Build computes the Voronoi diagram of the given sites, clipped to a box
// that comfortably contains them. At least one site is required.
func Build(sites []geom.Point) (*Diagram, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("voronoi: no sites")
	}
	for i, s := range sites {
		if !s.IsFinite() {
			return nil, fmt.Errorf("voronoi: site %d is not finite", i)
		}
	}
	bounds := geom.RectOf(sites...)
	pad := math.Max(bounds.Width(), bounds.Height())
	if pad == 0 {
		pad = 1
	}
	bounds = bounds.Expand(2 * pad)

	d := &Diagram{
		sites:  append([]geom.Point(nil), sites...),
		cells:  make([]Cell, len(sites)),
		bounds: bounds,
	}
	for i := range sites {
		d.cells[i] = d.buildCell(i)
	}
	return d, nil
}

// buildCell clips the bounding box against the bisector half-planes of
// every other site.
func (d *Diagram) buildCell(i int) Cell {
	si := d.sites[i]
	corners := d.bounds.Corners()
	poly := corners[:]
	contributors := make(map[int]bool)

	for j, sj := range d.sites {
		if j == i || len(poly) == 0 {
			continue
		}
		if sj.Eq(si, geom.Eps) {
			// Duplicate site: the first index keeps the cell, later twins
			// get an empty cell.
			if j < i {
				poly = nil
			}
			continue
		}
		var clipped []geom.Point
		changed := false
		// Keep the side closer to si: points p with (p - mid)·(sj - si) ≤ 0.
		mid := si.Lerp(sj, 0.5)
		nrm := sj.Sub(si)
		n := len(poly)
		for k := 0; k < n; k++ {
			a, b := poly[k], poly[(k+1)%n]
			da := a.Sub(mid).Dot(nrm)
			db := b.Sub(mid).Dot(nrm)
			if da <= geom.Eps {
				clipped = append(clipped, a)
			}
			if (da < -geom.Eps && db > geom.Eps) || (da > geom.Eps && db < -geom.Eps) {
				t := da / (da - db)
				clipped = append(clipped, a.Lerp(b, t))
				changed = true
			}
			if da > geom.Eps {
				changed = true
			}
		}
		poly = clipped
		if changed && len(poly) > 0 {
			contributors[j] = true
		}
	}

	cell := Cell{Site: si, SiteIndex: i}
	if len(poly) >= 3 {
		cell.Polygon = geom.NewPolygon(poly...)
	}
	for j := range contributors {
		// A contributor is a true neighbor only if the shared bisector
		// still borders the final cell; approximate by testing that some
		// cell vertex is (nearly) equidistant from both sites.
		for _, v := range poly {
			if math.Abs(v.Dist(si)-v.Dist(d.sites[j])) <= 1e-6*(1+v.Dist(si)) {
				cell.Neighbors = append(cell.Neighbors, j)
				break
			}
		}
	}
	return cell
}

// NumSites returns the number of sites in the diagram.
func (d *Diagram) NumSites() int { return len(d.sites) }

// Site returns the i-th site.
func (d *Diagram) Site(i int) geom.Point { return d.sites[i] }

// Cell returns the Voronoi cell of the i-th site.
func (d *Diagram) Cell(i int) Cell { return d.cells[i] }

// Bounds returns the clipping box of the diagram.
func (d *Diagram) Bounds() geom.Rect { return d.bounds }

// Nearest returns the index of the site nearest to q and its distance.
// It runs the greedy neighbor walk from the previously returned site
// (locality that the fattening algorithm exploits: consecutive queries are
// close), falling back to a full scan if the walk stalls on a degenerate
// adjacency.
func (d *Diagram) Nearest(q geom.Point) (int, float64) {
	return d.NearestFrom(q, 0)
}

// NearestFrom runs the nearest-site walk starting at the given site hint.
func (d *Diagram) NearestFrom(q geom.Point, hint int) (int, float64) {
	n := len(d.sites)
	if hint < 0 || hint >= n {
		hint = 0
	}
	cur := hint
	curD := q.Dist2(d.sites[cur])
	for steps := 0; steps < n+1; steps++ {
		improved := false
		for _, j := range d.cells[cur].Neighbors {
			if dj := q.Dist2(d.sites[j]); dj < curD-geom.Eps {
				cur, curD = j, dj
				improved = true
			}
		}
		if !improved {
			// Verify against a full scan only when adjacency may be
			// incomplete (duplicate/degenerate sites produce empty cells).
			if len(d.cells[cur].Neighbors) == 0 && n > 1 {
				return d.nearestBrute(q)
			}
			return cur, math.Sqrt(curD)
		}
	}
	return d.nearestBrute(q)
}

func (d *Diagram) nearestBrute(q geom.Point) (int, float64) {
	best, bestD := 0, math.Inf(1)
	for i, s := range d.sites {
		if dd := q.Dist2(s); dd < bestD {
			best, bestD = i, dd
		}
	}
	return best, math.Sqrt(bestD)
}
