package voronoi

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// Degenerate site-set generators. Image-extracted shapes routinely produce
// exactly these configurations (axis-aligned contours, repeated corners),
// and they are where the clipping construction and the greedy walk earn
// their robustness claims.

func collinearSites(rng *rand.Rand, n int) []geom.Point {
	// Random line through a random anchor; sites at sorted, possibly
	// coincident parameters.
	dir := geom.Pt(rng.NormFloat64(), rng.NormFloat64())
	if dir.Norm() < 1e-9 {
		dir = geom.Pt(1, 0)
	}
	dir = dir.Unit()
	anchor := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
	sites := make([]geom.Point, n)
	for i := range sites {
		t := rng.Float64() * 8
		if i > 0 && rng.Intn(4) == 0 {
			sites[i] = sites[i-1] // duplicate on the line
			continue
		}
		sites[i] = anchor.Add(dir.Scale(t))
	}
	return sites
}

func duplicatedSites(rng *rand.Rand, n int) []geom.Point {
	// A handful of distinct positions, each repeated several times.
	k := 1 + rng.Intn(4)
	base := make([]geom.Point, k)
	for i := range base {
		base[i] = geom.Pt(rng.Float64()*6, rng.Float64()*6)
	}
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = base[rng.Intn(k)]
	}
	return sites
}

func gridSites(rng *rand.Rand, n int) []geom.Point {
	// Integer-lattice sites: every bisector is axis-aligned or diagonal,
	// and many queries are exactly equidistant from several sites.
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Pt(float64(rng.Intn(6)), float64(rng.Intn(6)))
	}
	return sites
}

func mixedSites(rng *rand.Rand, n int) []geom.Point {
	sites := make([]geom.Point, n)
	for i := range sites {
		sites[i] = geom.Pt(rng.NormFloat64()*4, rng.NormFloat64()*4)
	}
	return sites
}

// TestNearestPropertyDegenerate checks Nearest and NearestFrom (with
// arbitrary, including out-of-range, hints) against a brute-force scan over
// every degenerate family. Indices may differ on exact ties, so distances
// are compared.
func TestNearestPropertyDegenerate(t *testing.T) {
	families := []struct {
		name string
		gen  func(*rand.Rand, int) []geom.Point
	}{
		{"collinear", collinearSites},
		{"duplicates", duplicatedSites},
		{"grid", gridSites},
		{"mixed", mixedSites},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(fam.name)) * 971))
			for trial := 0; trial < 40; trial++ {
				n := 1 + rng.Intn(24)
				sites := fam.gen(rng, n)
				d, err := Build(sites)
				if err != nil {
					t.Fatalf("trial %d: Build: %v", trial, err)
				}
				for q := 0; q < 25; q++ {
					// Queries both near the sites and well outside them.
					p := geom.Pt(rng.NormFloat64()*8, rng.NormFloat64()*8)
					bi, bd := bruteNearest(sites, p)
					gi, gd := d.Nearest(p)
					if !almostEq(gd, bd, 1e-9*(1+bd)) {
						t.Fatalf("trial %d query %v: Nearest dist %v, brute %v (sites %v)",
							trial, p, gd, bd, sites)
					}
					if !almostEq(p.Dist(sites[gi]), gd, 1e-9*(1+gd)) {
						t.Fatalf("trial %d: returned index %d inconsistent with distance %v", trial, gi, gd)
					}
					// Hints must never change the answer — including hints
					// outside the valid site range.
					for _, hint := range []int{bi, rng.Intn(n), -3, n + 7} {
						hi, hd := d.NearestFrom(p, hint)
						if !almostEq(hd, bd, 1e-9*(1+bd)) {
							t.Fatalf("trial %d hint %d: dist %v, brute %v", trial, hint, hd, bd)
						}
						if !almostEq(p.Dist(sites[hi]), hd, 1e-9*(1+hd)) {
							t.Fatalf("trial %d hint %d: index %d inconsistent", trial, hint, hi)
						}
					}
				}
			}
		})
	}
}

// TestCellDuplicateOwnership pins the documented duplicate-site contract:
// the first of an exact-duplicate group keeps the cell, later twins get an
// empty polygon, and queries still resolve to the duplicated position.
func TestCellDuplicateOwnership(t *testing.T) {
	sites := []geom.Point{geom.Pt(2, 2), geom.Pt(5, 1), geom.Pt(2, 2), geom.Pt(2, 2)}
	d, err := Build(sites)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cell(0).Polygon.NumVertices() < 3 {
		t.Fatal("first duplicate lost its cell")
	}
	for _, i := range []int{2, 3} {
		if d.Cell(i).Polygon.NumVertices() != 0 {
			t.Fatalf("later duplicate %d kept a cell", i)
		}
	}
	i, dist := d.Nearest(geom.Pt(2.1, 2.1))
	if !almostEq(dist, geom.Pt(2.1, 2.1).Dist(geom.Pt(2, 2)), 1e-12) {
		t.Fatalf("nearest to duplicated position: index %d dist %v", i, dist)
	}
}

// TestNearestSiteQueriesOnSites is the exactness edge: querying at a site
// position must return distance zero for every degenerate family.
func TestNearestSiteQueriesOnSites(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 30; trial++ {
		gens := []func(*rand.Rand, int) []geom.Point{collinearSites, duplicatedSites, gridSites}
		sites := gens[trial%len(gens)](rng, 2+rng.Intn(12))
		d, err := Build(sites)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sites {
			if _, dist := d.Nearest(s); !almostEq(dist, 0, 1e-9) {
				t.Fatalf("trial %d: query at site %d returned dist %v", trial, i, dist)
			}
		}
	}
}
