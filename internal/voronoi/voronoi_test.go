package voronoi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("empty site set should fail")
	}
	if _, err := Build([]geom.Point{geom.Pt(math.NaN(), 0)}); err == nil {
		t.Error("NaN site should fail")
	}
}

func TestSingleSite(t *testing.T) {
	d, err := Build([]geom.Point{geom.Pt(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSites() != 1 {
		t.Fatalf("NumSites = %d", d.NumSites())
	}
	c := d.Cell(0)
	if c.Polygon.NumVertices() != 4 {
		t.Errorf("single-site cell should be the whole box, got %d vertices", c.Polygon.NumVertices())
	}
	if len(c.Neighbors) != 0 {
		t.Errorf("single site has no neighbors: %v", c.Neighbors)
	}
	i, dist := d.Nearest(geom.Pt(100, 100))
	if i != 0 || !almostEq(dist, geom.Pt(3, 4).Dist(geom.Pt(100, 100)), 1e-9) {
		t.Errorf("Nearest = %d %v", i, dist)
	}
}

func TestTwoSitesBisector(t *testing.T) {
	d, err := Build([]geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Cell 0 must contain points with x < 1, not points with x > 1.
	if !d.Cell(0).Polygon.ContainsPoint(geom.Pt(0.5, 0.3)) {
		t.Error("cell 0 should contain (0.5,0.3)")
	}
	if d.Cell(0).Polygon.ContainsPoint(geom.Pt(1.5, 0.3)) {
		t.Error("cell 0 should not contain (1.5,0.3)")
	}
	if len(d.Cell(0).Neighbors) != 1 || d.Cell(0).Neighbors[0] != 1 {
		t.Errorf("cell 0 neighbors = %v", d.Cell(0).Neighbors)
	}
}

func TestDuplicateSites(t *testing.T) {
	d, err := Build([]geom.Point{geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(4, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if d.Cell(0).Polygon.NumVertices() == 0 {
		t.Error("first twin keeps its cell")
	}
	if d.Cell(1).Polygon.NumVertices() != 0 {
		t.Error("second twin should have an empty cell")
	}
	i, _ := d.Nearest(geom.Pt(0, 0))
	if i != 0 && i != 1 {
		t.Errorf("nearest to origin should be a twin, got %d", i)
	}
}

func TestCollinearSites(t *testing.T) {
	sites := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	d, err := Build(sites)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sites {
		if d.Cell(i).Polygon.NumVertices() < 3 {
			t.Errorf("collinear cell %d degenerate", i)
		}
	}
	// Middle sites have exactly two neighbors on a line.
	if len(d.Cell(1).Neighbors) != 2 {
		t.Errorf("middle collinear cell neighbors = %v", d.Cell(1).Neighbors)
	}
}

// Property: every point of a cell (sampled on a grid) is at least as close
// to its own site as to any other site.
func TestCellMembershipProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(20)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		d, err := Build(sites)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			cell := d.Cell(i)
			if cell.Polygon.NumVertices() == 0 {
				continue
			}
			// Sample the cell's vertex centroid and boundary points.
			samples := append(cell.Polygon.Resample(10), cell.Polygon.Centroid())
			for _, p := range samples {
				di := p.Dist(sites[i])
				for j, sj := range sites {
					if j == i {
						continue
					}
					if p.Dist(sj) < di-1e-6 {
						t.Fatalf("trial %d: point %v of cell %d closer to site %d", trial, p, i, j)
					}
				}
			}
		}
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(40)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.NormFloat64()*5, rng.NormFloat64()*5)
		}
		d, err := Build(sites)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 50; q++ {
			p := geom.Pt(rng.NormFloat64()*8, rng.NormFloat64()*8)
			gi, gd := d.NearestFrom(p, rng.Intn(n))
			_, bd := bruteNearest(sites, p)
			if !almostEq(gd, bd, 1e-9*(1+bd)) {
				t.Fatalf("trial %d: walk found site %d at %v, brute found %v", trial, gi, gd, bd)
			}
		}
	}
}

func TestNeighborSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sites := make([]geom.Point, 25)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	d, err := Build(sites)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sites {
		for _, j := range d.Cell(i).Neighbors {
			found := false
			for _, k := range d.Cell(j).Neighbors {
				if k == i {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("neighbor asymmetry: %d lists %d but not vice versa", i, j)
			}
		}
	}
}

// Property-based: Nearest always agrees with brute force on small random
// configurations.
func TestQuickNearest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*4, rng.Float64()*4)
		}
		d, err := Build(sites)
		if err != nil {
			return false
		}
		q := geom.Pt(rng.Float64()*6-1, rng.Float64()*6-1)
		_, gd := d.Nearest(q)
		_, bd := bruteNearest(sites, q)
		return almostEq(gd, bd, 1e-9*(1+bd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func bruteNearest(sites []geom.Point, q geom.Point) (int, float64) {
	best, bd := 0, math.Inf(1)
	for i, s := range sites {
		if d := q.Dist(s); d < bd {
			best, bd = i, d
		}
	}
	return best, bd
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// The bounded cells of a diagram partition the clipping box: their areas
// sum to the box area (cells of duplicate sites are empty).
func TestCellsPartitionBox(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(25)
		sites := make([]geom.Point, n)
		for i := range sites {
			sites[i] = geom.Pt(rng.Float64()*8, rng.Float64()*8)
		}
		d, err := Build(sites)
		if err != nil {
			t.Fatal(err)
		}
		var total float64
		for i := 0; i < n; i++ {
			total += d.Cell(i).Polygon.Area()
		}
		want := d.Bounds().Area()
		if math.Abs(total-want) > 1e-6*want {
			t.Fatalf("trial %d: cells cover %v of %v", trial, total, want)
		}
	}
}

// Each site lies inside its own cell.
func TestSiteInOwnCell(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sites := make([]geom.Point, 30)
	for i := range sites {
		sites[i] = geom.Pt(rng.Float64()*5, rng.Float64()*5)
	}
	d, err := Build(sites)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sites {
		if d.Cell(i).Polygon.NumVertices() == 0 {
			continue // duplicate twin
		}
		if !d.Cell(i).Polygon.ContainsPoint(s) {
			t.Errorf("site %d outside its own cell", i)
		}
	}
}
