// Package extract is the image-side substrate of GeoSIR (§6): a binary
// raster, boundary extraction by Moore neighbor tracing, polygonal
// approximation by Douglas–Peucker, detection of polyline clusters that
// share vertices or edges, and decomposition of self-intersecting
// polylines into the simple shapes the matching engine requires.
//
// The paper's prototype used the external ipp package for edge
// extraction; this package implements the equivalent pipeline from
// scratch so that raster → shapes is fully reproducible.
package extract

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Raster is a binary image; (0,0) is the top-left pixel.
type Raster struct {
	W, H int
	bits []bool
}

// NewRaster allocates a w×h raster of background pixels.
func NewRaster(w, h int) (*Raster, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("extract: invalid raster size %dx%d", w, h)
	}
	return &Raster{W: w, H: h, bits: make([]bool, w*h)}, nil
}

// Get reports the pixel at (x, y); out-of-range pixels are background.
func (r *Raster) Get(x, y int) bool {
	if x < 0 || y < 0 || x >= r.W || y >= r.H {
		return false
	}
	return r.bits[y*r.W+x]
}

// Set assigns the pixel at (x, y); out-of-range writes are ignored.
func (r *Raster) Set(x, y int, v bool) {
	if x < 0 || y < 0 || x >= r.W || y >= r.H {
		return
	}
	r.bits[y*r.W+x] = v
}

// Count returns the number of foreground pixels.
func (r *Raster) Count() int {
	n := 0
	for _, b := range r.bits {
		if b {
			n++
		}
	}
	return n
}

// FillPolygon rasterizes the interior (and boundary) of a closed polygon
// using even-odd scanline filling.
func (r *Raster) FillPolygon(p geom.Poly) {
	if !p.Closed || len(p.Pts) < 3 {
		return
	}
	b := p.Bounds()
	y0 := int(math.Max(0, math.Floor(b.Min.Y)))
	y1 := int(math.Min(float64(r.H-1), math.Ceil(b.Max.Y)))
	n := len(p.Pts)
	for y := y0; y <= y1; y++ {
		cy := float64(y) + 0.5
		var xs []float64
		for i := 0; i < n; i++ {
			a, c := p.Pts[i], p.Pts[(i+1)%n]
			if (a.Y > cy) != (c.Y > cy) {
				xs = append(xs, a.X+(cy-a.Y)/(c.Y-a.Y)*(c.X-a.X))
			}
		}
		if len(xs) < 2 {
			continue
		}
		// Insertion sort: crossing lists are tiny.
		for i := 1; i < len(xs); i++ {
			for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
				xs[j], xs[j-1] = xs[j-1], xs[j]
			}
		}
		for i := 0; i+1 < len(xs); i += 2 {
			for x := int(math.Ceil(xs[i] - 0.5)); float64(x)+0.5 <= xs[i+1]; x++ {
				r.Set(x, y, true)
			}
		}
	}
}

// DrawPolyline strokes the chain onto the raster with Bresenham lines.
func (r *Raster) DrawPolyline(p geom.Poly) {
	for i := 0; i < p.NumEdges(); i++ {
		e := p.Edge(i)
		r.line(int(math.Round(e.A.X)), int(math.Round(e.A.Y)),
			int(math.Round(e.B.X)), int(math.Round(e.B.Y)))
	}
}

func (r *Raster) line(x0, y0, x1, y1 int) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		r.Set(x0, y0, true)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
