package extract

import (
	"repro/internal/geom"
)

// TraceBoundaries extracts the outer boundary of every 8-connected
// foreground component by Moore neighbor tracing with Jacob's stopping
// criterion. Each boundary is returned as a closed chain of pixel-center
// coordinates; single-pixel components are skipped (no boundary to
// speak of).
func TraceBoundaries(r *Raster) []geom.Poly {
	visited := make([]bool, r.W*r.H) // component marker (flood filled)
	var out []geom.Poly
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if !r.Get(x, y) || visited[y*r.W+x] {
				continue
			}
			boundary := mooreTrace(r, x, y)
			floodMark(r, visited, x, y)
			if len(boundary) >= 3 {
				pts := make([]geom.Point, len(boundary))
				for i, c := range boundary {
					pts[i] = geom.Pt(float64(c[0]), float64(c[1]))
				}
				out = append(out, geom.Poly{Pts: pts, Closed: true})
			}
		}
	}
	return out
}

// moore neighborhood in clockwise order starting from west.
var mooreDirs = [8][2]int{
	{-1, 0}, {-1, -1}, {0, -1}, {1, -1}, {1, 0}, {1, 1}, {0, 1}, {-1, 1},
}

// mooreTrace walks the outer boundary clockwise starting at the
// topmost-leftmost pixel of the component containing (sx, sy), which is
// (sx, sy) itself given the scan order of TraceBoundaries.
func mooreTrace(r *Raster, sx, sy int) [][2]int {
	var boundary [][2]int
	cx, cy := sx, sy
	// The scan arrived from the west, so begin searching from west.
	dir := 0
	boundary = append(boundary, [2]int{cx, cy})
	firstDir := -1
	for step := 0; step < 4*r.W*r.H; step++ {
		found := false
		for i := 0; i < 8; i++ {
			d := (dir + i) % 8
			nx, ny := cx+mooreDirs[d][0], cy+mooreDirs[d][1]
			if r.Get(nx, ny) {
				if cx == sx && cy == sy {
					if firstDir == -1 {
						firstDir = d
					} else if d == firstDir && len(boundary) > 1 {
						// Jacob's criterion: back at start, re-leaving in
						// the same direction.
						return boundary[:len(boundary)-1]
					}
				}
				cx, cy = nx, ny
				boundary = append(boundary, [2]int{cx, cy})
				// Back up: next search starts from the neighbor before the
				// one we came from.
				dir = (d + 6) % 8
				found = true
				break
			}
		}
		if !found {
			return boundary // isolated pixel
		}
		if cx == sx && cy == sy && len(boundary) > 2 {
			// Returned to start: close the loop here if Jacob's check
			// doesn't fire on the next step.
			if last := boundary[len(boundary)-1]; last == [2]int{sx, sy} {
				return boundary[:len(boundary)-1]
			}
		}
	}
	return boundary
}

// floodMark marks the whole 8-connected component as visited.
func floodMark(r *Raster, visited []bool, sx, sy int) {
	stack := [][2]int{{sx, sy}}
	visited[sy*r.W+sx] = true
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range mooreDirs {
			nx, ny := c[0]+d[0], c[1]+d[1]
			if nx < 0 || ny < 0 || nx >= r.W || ny >= r.H {
				continue
			}
			if r.Get(nx, ny) && !visited[ny*r.W+nx] {
				visited[ny*r.W+nx] = true
				stack = append(stack, [2]int{nx, ny})
			}
		}
	}
}

// DouglasPeucker simplifies a chain to tolerance eps, preserving the
// first and last vertex of open chains. Closed chains are split at the
// two mutually farthest vertices and each half is simplified.
func DouglasPeucker(p geom.Poly, eps float64) geom.Poly {
	n := len(p.Pts)
	if n <= 2 || eps <= 0 {
		return p.Clone()
	}
	if !p.Closed {
		kept := dpRecurse(p.Pts, eps)
		return geom.Poly{Pts: kept, Closed: false}
	}
	// Split a ring at its diameter ends to get two open runs.
	i, j, _ := p.Diameter()
	if i == j {
		return p.Clone()
	}
	if i > j {
		i, j = j, i
	}
	run1 := append([]geom.Point(nil), p.Pts[i:j+1]...)
	run2 := append([]geom.Point(nil), p.Pts[j:]...)
	run2 = append(run2, p.Pts[:i+1]...)
	k1 := dpRecurse(run1, eps)
	k2 := dpRecurse(run2, eps)
	// Stitch: k1 ends where k2 begins and vice versa.
	pts := append([]geom.Point(nil), k1...)
	pts = append(pts, k2[1:len(k2)-1]...)
	return geom.Poly{Pts: pts, Closed: true}
}

func dpRecurse(pts []geom.Point, eps float64) []geom.Point {
	n := len(pts)
	if n <= 2 {
		return append([]geom.Point(nil), pts...)
	}
	seg := geom.Seg(pts[0], pts[n-1])
	worst, worstD := -1, eps
	for i := 1; i < n-1; i++ {
		if d := seg.DistToPoint(pts[i]); d > worstD {
			worst, worstD = i, d
		}
	}
	if worst < 0 {
		return []geom.Point{pts[0], pts[n-1]}
	}
	left := dpRecurse(pts[:worst+1], eps)
	right := dpRecurse(pts[worst:], eps)
	return append(left, right[1:]...)
}

// ExtractShapes runs the full pipeline: trace component boundaries, then
// simplify each with Douglas–Peucker at tolerance eps (in pixels), and
// keep only the results that are valid simple shapes.
func ExtractShapes(r *Raster, eps float64) []geom.Poly {
	var out []geom.Poly
	for _, b := range TraceBoundaries(r) {
		s := DouglasPeucker(b, eps)
		s = dedupeVertices(s)
		if s.Validate() == nil {
			out = append(out, s)
		}
	}
	return out
}

// dedupeVertices removes consecutive (and ring-closing) duplicate
// vertices that tracing can produce.
func dedupeVertices(p geom.Poly) geom.Poly {
	if len(p.Pts) == 0 {
		return p
	}
	pts := p.Pts[:1]
	for _, q := range p.Pts[1:] {
		if !q.Eq(pts[len(pts)-1], 1e-9) {
			pts = append(pts, q)
		}
	}
	if p.Closed && len(pts) > 1 && pts[0].Eq(pts[len(pts)-1], 1e-9) {
		pts = pts[:len(pts)-1]
	}
	return geom.Poly{Pts: pts, Closed: p.Closed}
}
