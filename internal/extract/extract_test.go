package extract

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestRasterBasics(t *testing.T) {
	if _, err := NewRaster(0, 5); err == nil {
		t.Error("zero width should fail")
	}
	r, err := NewRaster(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.Set(3, 4, true)
	if !r.Get(3, 4) || r.Get(4, 3) {
		t.Error("Set/Get broken")
	}
	r.Set(-1, 0, true) // ignored
	if r.Get(-1, 0) || r.Get(100, 100) {
		t.Error("out-of-range should read background")
	}
	if r.Count() != 1 {
		t.Errorf("Count = %d", r.Count())
	}
}

func TestFillPolygonArea(t *testing.T) {
	r, _ := NewRaster(100, 100)
	sq := geom.NewPolygon(geom.Pt(20, 20), geom.Pt(80, 20), geom.Pt(80, 70), geom.Pt(20, 70))
	r.FillPolygon(sq)
	got := float64(r.Count())
	want := sq.Area()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("filled %v pixels for area %v", got, want)
	}
	// Interior pixel set, exterior clear.
	if !r.Get(50, 50) || r.Get(10, 10) {
		t.Error("fill location broken")
	}
}

func TestDrawPolyline(t *testing.T) {
	r, _ := NewRaster(50, 50)
	r.DrawPolyline(geom.NewPolyline(geom.Pt(5, 5), geom.Pt(45, 5), geom.Pt(45, 45)))
	if !r.Get(5, 5) || !r.Get(25, 5) || !r.Get(45, 45) || !r.Get(45, 25) {
		t.Error("stroke missing pixels")
	}
	if r.Get(25, 25) {
		t.Error("stray pixel")
	}
}

func TestTraceBoundariesSquare(t *testing.T) {
	r, _ := NewRaster(60, 60)
	sq := geom.NewPolygon(geom.Pt(10, 10), geom.Pt(40, 10), geom.Pt(40, 40), geom.Pt(10, 40))
	r.FillPolygon(sq)
	bs := TraceBoundaries(r)
	if len(bs) != 1 {
		t.Fatalf("boundaries = %d", len(bs))
	}
	b := bs[0]
	if !b.Closed {
		t.Error("boundary should be closed")
	}
	// Boundary length ≈ perimeter (pixel steps, so up to ~1.5×).
	if per := b.Perimeter(); per < 100 || per > 220 {
		t.Errorf("boundary perimeter = %v, square is 120", per)
	}
	// All boundary points near the square's boundary.
	for _, p := range b.Pts {
		if sq.DistToPoint(p) > 2 {
			t.Errorf("boundary point %v is %v from the square", p, sq.DistToPoint(p))
		}
	}
}

func TestTraceBoundariesMultipleComponents(t *testing.T) {
	r, _ := NewRaster(80, 40)
	r.FillPolygon(geom.NewPolygon(geom.Pt(5, 5), geom.Pt(25, 5), geom.Pt(25, 30), geom.Pt(5, 30)))
	r.FillPolygon(geom.NewPolygon(geom.Pt(45, 5), geom.Pt(70, 5), geom.Pt(70, 30), geom.Pt(45, 30)))
	bs := TraceBoundaries(r)
	if len(bs) != 2 {
		t.Fatalf("boundaries = %d, want 2", len(bs))
	}
}

func TestTraceSinglePixelSkipped(t *testing.T) {
	r, _ := NewRaster(10, 10)
	r.Set(5, 5, true)
	if bs := TraceBoundaries(r); len(bs) != 0 {
		t.Errorf("single pixel produced %d boundaries", len(bs))
	}
}

func TestDouglasPeuckerLine(t *testing.T) {
	// Noisy straight line collapses to its endpoints.
	var pts []geom.Point
	for i := 0; i <= 50; i++ {
		y := 0.0
		if i%2 == 1 {
			y = 0.05
		}
		pts = append(pts, geom.Pt(float64(i), y))
	}
	p := geom.Poly{Pts: pts, Closed: false}
	s := DouglasPeucker(p, 0.2)
	if s.NumVertices() != 2 {
		t.Errorf("simplified to %d vertices, want 2", s.NumVertices())
	}
	if !s.Pts[0].Eq(pts[0], 1e-12) || !s.Pts[1].Eq(pts[len(pts)-1], 1e-12) {
		t.Error("endpoints not preserved")
	}
	// eps=0 keeps everything.
	if got := DouglasPeucker(p, 0); got.NumVertices() != len(pts) {
		t.Error("eps=0 should be identity")
	}
}

func TestDouglasPeuckerPreservesCorners(t *testing.T) {
	// An L with dense sampling: the corner must survive.
	var pts []geom.Point
	for i := 0; i <= 20; i++ {
		pts = append(pts, geom.Pt(float64(i), 0))
	}
	for i := 1; i <= 20; i++ {
		pts = append(pts, geom.Pt(20, float64(i)))
	}
	s := DouglasPeucker(geom.Poly{Pts: pts, Closed: false}, 0.5)
	if s.NumVertices() != 3 {
		t.Fatalf("L simplified to %d vertices, want 3", s.NumVertices())
	}
	if !s.Pts[1].Eq(geom.Pt(20, 0), 1e-9) {
		t.Errorf("corner lost: %v", s.Pts[1])
	}
}

func TestExtractShapesEndToEnd(t *testing.T) {
	// Rasterize a pentagon, extract, and compare shapes with the average
	// measure after normalization: the pipeline loses at most pixel-level
	// detail.
	r, _ := NewRaster(200, 200)
	penta := geom.NewPolygon(
		geom.Pt(100, 30), geom.Pt(160, 75), geom.Pt(140, 150),
		geom.Pt(60, 150), geom.Pt(40, 75))
	r.FillPolygon(penta)
	shapes := ExtractShapes(r, 2)
	if len(shapes) != 1 {
		t.Fatalf("extracted %d shapes", len(shapes))
	}
	got := shapes[0]
	if err := got.Validate(); err != nil {
		t.Fatalf("extracted shape invalid: %v", err)
	}
	ne, _ := core.NormalizeCanonical(penta)
	ng, _ := core.NormalizeCanonical(got)
	if d := core.AvgMinDistSym(ne.Poly, ng.Poly, 512); d > 0.03 {
		t.Errorf("extracted shape differs by %v (normalized units)", d)
	}
	// Vertex count should be near the original's, not the raster's.
	if got.NumVertices() > 30 {
		t.Errorf("simplification left %d vertices", got.NumVertices())
	}
}

func TestDetectClusters(t *testing.T) {
	a := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 0))
	b := geom.NewPolyline(geom.Pt(1, 0), geom.Pt(2, 1))      // shares vertex with a
	c := geom.NewPolyline(geom.Pt(5, 5), geom.Pt(6, 6))      // isolated
	d := geom.NewPolyline(geom.Pt(1.5, -1), geom.Pt(1.5, 2)) // crosses b
	clusters := DetectClusters([]geom.Poly{a, b, c, d}, 1e-6)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	if len(clusters[0]) != 3 || clusters[0][0] != 0 || clusters[0][1] != 1 || clusters[0][2] != 3 {
		t.Errorf("cluster 0 = %v", clusters[0])
	}
	if len(clusters[1]) != 1 || clusters[1][0] != 2 {
		t.Errorf("cluster 1 = %v", clusters[1])
	}
}

func TestDetectClustersTolerance(t *testing.T) {
	a := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 0))
	b := geom.NewPolyline(geom.Pt(1.05, 0), geom.Pt(2, 0))
	if got := DetectClusters([]geom.Poly{a, b}, 0.01); len(got) != 2 {
		t.Errorf("tight tolerance should separate: %v", got)
	}
	if got := DetectClusters([]geom.Poly{a, b}, 0.1); len(got) != 1 {
		t.Errorf("loose tolerance should join: %v", got)
	}
}

func TestDecomposeSimplePassThrough(t *testing.T) {
	p := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 0))
	out := DecomposeSimple(p)
	if len(out) != 1 || out[0].NumVertices() != 3 {
		t.Errorf("simple chain should pass through: %v", out)
	}
}

func TestDecomposeSelfIntersecting(t *testing.T) {
	// A figure-X polyline crossing itself once.
	x := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2))
	out := DecomposeSimple(x)
	if len(out) < 2 {
		t.Fatalf("expected a real decomposition, got %d pieces", len(out))
	}
	for i, piece := range out {
		if !piece.IsSimple() {
			t.Errorf("piece %d is not simple", i)
		}
	}
	// The crossing produces one loop piece (closed) and open tails.
	loops := 0
	for _, piece := range out {
		if piece.Closed {
			loops++
		}
	}
	if loops != 1 {
		t.Errorf("expected exactly 1 loop piece, got %d", loops)
	}
	// Total length is preserved by cutting.
	if got, want := TotalLength(out), x.Perimeter(); math.Abs(got-want) > 1e-6 {
		t.Errorf("length after decomposition %v, original %v", got, want)
	}
}

func TestDecomposeBowtie(t *testing.T) {
	bow := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2))
	out := DecomposeSimple(bow)
	if len(out) < 2 {
		t.Fatalf("bowtie pieces = %d", len(out))
	}
	for i, piece := range out {
		if !piece.IsSimple() {
			t.Errorf("piece %d not simple", i)
		}
	}
	if got, want := TotalLength(out), bow.Perimeter(); math.Abs(got-want) > 1e-6 {
		t.Errorf("length %v vs %v", got, want)
	}
}

func TestQuantize(t *testing.T) {
	if Quantize(1.23, 0.5) != 1.0 {
		t.Errorf("Quantize = %v", Quantize(1.23, 0.5))
	}
	if Quantize(1.26, 0.5) != 1.5 {
		t.Errorf("Quantize = %v", Quantize(1.26, 0.5))
	}
	if Quantize(7.7, 0) != 7.7 {
		t.Error("zero grid should be identity")
	}
}
