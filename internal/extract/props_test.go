package extract

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Property: Douglas–Peucker output never strays farther than eps from the
// original chain (the defining guarantee), and its vertices are a subset
// of the original vertices.
func TestQuickDouglasPeuckerGuarantee(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		pts := make([]geom.Point, n)
		x := 0.0
		for i := range pts {
			x += rng.Float64()
			pts[i] = geom.Pt(x, rng.Float64()*3)
		}
		orig := geom.Poly{Pts: pts, Closed: false}
		eps := 0.1 + rng.Float64()
		simp := DouglasPeucker(orig, eps)
		// Every original vertex within eps of the simplified chain.
		for _, p := range orig.Pts {
			if simp.DistToPoint(p) > eps+1e-9 {
				return false
			}
		}
		// Simplified vertices come from the original set.
		for _, q := range simp.Pts {
			found := false
			for _, p := range orig.Pts {
				if p == q {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: tracing a filled convex polygon recovers a boundary whose
// every vertex lies within 2px of the true boundary, and simplification
// keeps that bound plus its own eps.
func TestQuickTraceWithinPixelBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random convex-ish blob comfortably inside the raster.
		n := 5 + rng.Intn(6)
		pts := make([]geom.Point, n)
		for i := range pts {
			a := 2 * math.Pi * float64(i) / float64(n)
			r := 25 + rng.Float64()*20
			pts[i] = geom.Pt(64+r*math.Cos(a), 64+r*math.Sin(a))
		}
		poly := geom.NewPolygon(pts...)
		if poly.Validate() != nil {
			return true // skip degenerate draws
		}
		r, err := NewRaster(128, 128)
		if err != nil {
			return false
		}
		r.FillPolygon(poly)
		for _, b := range TraceBoundaries(r) {
			for _, p := range b.Pts {
				if poly.DistToPoint(p) > 2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: DecomposeSimple always yields simple pieces and preserves
// total length for polylines cut at proper crossings.
func TestQuickDecomposePieces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
		}
		p := geom.Poly{Pts: pts, Closed: false}
		// Skip chains with degenerate (zero-length) edges.
		for i := 0; i < p.NumEdges(); i++ {
			if p.Edge(i).Length() < 1e-9 {
				return true
			}
		}
		pieces := DecomposeSimple(p)
		if len(pieces) == 0 {
			return false
		}
		for _, piece := range pieces {
			if !piece.IsSimple() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
