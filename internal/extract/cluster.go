package extract

import (
	"math"

	"repro/internal/geom"
)

// DetectClusters groups shapes into the polyline clusters of §6: shapes
// that share a vertex or touch an edge (within tol) belong to the same
// cluster, transitively. The result is a partition of the shape indices,
// each sorted ascending, clusters ordered by their smallest member.
func DetectClusters(shapes []geom.Poly, tol float64) [][]int {
	n := len(shapes)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if find(i) == find(j) {
				continue
			}
			if shapesTouch(shapes[i], shapes[j], tol) {
				union(i, j)
			}
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for i := 0; i < n; i++ {
		if g, ok := groups[i]; ok && g[0] == i {
			out = append(out, g)
		}
	}
	return out
}

// shapesTouch reports whether any vertex of one shape lies within tol of
// the other shape's boundary (covers shared vertices and shared edges).
func shapesTouch(a, b geom.Poly, tol float64) bool {
	// Cheap reject via expanded bounding boxes.
	if !a.Bounds().Expand(tol).Intersects(b.Bounds()) {
		return false
	}
	for _, v := range a.Pts {
		if b.DistToPoint(v) <= tol {
			return true
		}
	}
	for _, v := range b.Pts {
		if a.DistToPoint(v) <= tol {
			return true
		}
	}
	// Crossing edges without close vertices.
	for i := 0; i < a.NumEdges(); i++ {
		ea := a.Edge(i)
		for j := 0; j < b.NumEdges(); j++ {
			if hit, _ := ea.Intersect(b.Edge(j)); hit {
				return true
			}
		}
	}
	return false
}

// DecomposeSimple splits a self-intersecting chain into simple
// (non-self-intersecting) open polylines by cutting it at every
// self-intersection point — one of the valid decompositions §6 allows.
// Chains that are already simple are returned unchanged (as the only
// element). Closed chains that need cutting are returned as open pieces.
func DecomposeSimple(p geom.Poly) []geom.Poly {
	if p.IsSimple() {
		return []geom.Poly{p.Clone()}
	}
	m := p.NumEdges()
	// Collect the intersection parameters per edge.
	splits := make([][]float64, m)
	for i := 0; i < m; i++ {
		ei := p.Edge(i)
		for j := i + 1; j < m; j++ {
			adjacent := j == i+1 || (p.Closed && i == 0 && j == m-1)
			if adjacent {
				continue
			}
			if hit, pt := ei.Intersect(p.Edge(j)); hit {
				ti := ei.ClosestParam(pt)
				tj := p.Edge(j).ClosestParam(pt)
				splits[i] = append(splits[i], ti)
				splits[j] = append(splits[j], tj)
			}
		}
	}
	// Rebuild the vertex sequence with split points inserted, tracking
	// which are cut points.
	var pts []geom.Point
	var isCut []bool
	for i := 0; i < m; i++ {
		e := p.Edge(i)
		pts = append(pts, e.A)
		isCut = append(isCut, false)
		ts := splits[i]
		sortFloats(ts)
		for _, t := range ts {
			if t <= 1e-9 || t >= 1-1e-9 {
				// Intersection at a vertex: the vertex itself is the cut.
				if t <= 1e-9 {
					isCut[len(isCut)-1] = true
				}
				continue
			}
			q := e.At(t)
			if q.Eq(pts[len(pts)-1], 1e-9) {
				isCut[len(isCut)-1] = true
				continue
			}
			pts = append(pts, q)
			isCut = append(isCut, true)
		}
	}
	if !p.Closed {
		pts = append(pts, p.Pts[len(p.Pts)-1])
		isCut = append(isCut, false)
	} else {
		// Re-append the start so the last run closes back.
		pts = append(pts, pts[0])
		isCut = append(isCut, isCut[0])
	}
	// Cut into runs at cut points (cut vertices terminate one run and
	// start the next).
	var out []geom.Poly
	start := 0
	for i := 1; i < len(pts); i++ {
		if isCut[i] || i == len(pts)-1 {
			if i-start >= 1 {
				run := append([]geom.Point(nil), pts[start:i+1]...)
				piece := dedupeVertices(geom.Poly{Pts: run, Closed: false})
				// A run that returns to its own start is a loop: emit it
				// as a closed polygon instead of a degenerate open chain.
				if n := piece.NumVertices(); n >= 4 && piece.Pts[0].Eq(piece.Pts[n-1], 1e-9) {
					piece = geom.Poly{Pts: piece.Pts[:n-1], Closed: true}
				}
				if piece.NumVertices() >= 2 && piece.Validate() == nil {
					out = append(out, piece)
				}
			}
			start = i
		}
	}
	if len(out) == 0 {
		// Fall back: per-edge pieces are trivially simple.
		for i := 0; i < m; i++ {
			e := p.Edge(i)
			out = append(out, geom.NewPolyline(e.A, e.B))
		}
	}
	return out
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TotalLength sums the perimeters of a shape set — used to sanity-check
// that a decomposition preserves the chain's total length.
func TotalLength(shapes []geom.Poly) float64 {
	var s float64
	for _, p := range shapes {
		s += p.Perimeter()
	}
	return s
}

// Quantize rounds a coordinate to the given grid (tolerance bucketing for
// cluster detection on noisy extractions).
func Quantize(v, grid float64) float64 {
	if grid <= 0 {
		return v
	}
	return math.Round(v/grid) * grid
}
