package video

import (
	"testing"

	"repro/internal/geom"
)

// Two similar squares crossing paths: the motion gate must keep the
// assignments consistent (each frame's nearer observation goes to the
// nearer track).
func TestTrackerCrossingObjects(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	const frames = 9
	for f := 0; f < frames; f++ {
		x := float64(f)
		a := sqAt(x, 0, 3)    // moving right along y=0
		b := sqAt(8-x, 10, 3) // moving left along y=10
		if err := tr.Observe([]geom.Poly{a, b}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tracks))
	}
	for _, tk := range tracks {
		if tk.Len() != frames {
			t.Errorf("track %d has %d observations", tk.ID, tk.Len())
		}
		// Monotone motion: x must move in one direction throughout.
		dir := 0.0
		for i := 1; i < tk.Len(); i++ {
			dx := tk.Obs[i].Shape.Centroid().X - tk.Obs[i-1].Shape.Centroid().X
			if dir == 0 {
				dir = dx
			}
			if dx*dir < 0 {
				t.Errorf("track %d switched direction at frame %d (identity swap)", tk.ID, i)
			}
		}
	}
}

// FindTracks must include closed tracks (objects that left the clip).
func TestFindTracksIncludesClosed(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxGap = 0
	tr := NewTracker(opts)
	if err := tr.Observe([]geom.Poly{triAt(0, 0, 3)}); err != nil {
		t.Fatal(err)
	}
	// The triangle disappears; a square appears later.
	if err := tr.Observe(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe([]geom.Poly{sqAt(20, 20, 3)}); err != nil {
		t.Fatal(err)
	}
	if !tr.Tracks()[0].Closed() {
		t.Fatal("first track should be closed")
	}
	ms, err := tr.FindTracks(triAt(5, 5, 4), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].TrackID != 0 {
		t.Errorf("closed triangle track should rank first: %v", ms)
	}
	if ms[0].Frame != 0 {
		t.Errorf("best frame = %d", ms[0].Frame)
	}
}

// Empty tracker: FindTracks returns nothing, Observe of nothing is fine.
func TestTrackerEmpty(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	if err := tr.Observe(nil); err != nil {
		t.Fatal(err)
	}
	ms, err := tr.FindTracks(sqAt(0, 0, 2), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("matches from empty tracker: %v", ms)
	}
	if tr.Frame() != 1 {
		t.Errorf("frame counter = %d", tr.Frame())
	}
}

// Option clamping.
func TestTrackerOptionDefaults(t *testing.T) {
	tr := NewTracker(Options{MaxShapeDist: -1, MaxMove: 0, MaxGap: -3, ShapeWeight: 7})
	if tr.opts.MaxShapeDist <= 0 || tr.opts.MaxMove <= 0 || tr.opts.MaxGap < 0 {
		t.Errorf("options not clamped: %+v", tr.opts)
	}
	if tr.opts.ShapeWeight <= 0 || tr.opts.ShapeWeight > 1 {
		t.Errorf("weight not clamped: %v", tr.opts.ShapeWeight)
	}
}
