package video

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// moveShape translates p by (dx, dy) and optionally deforms one vertex.
func moveShape(p geom.Poly, dx, dy float64) geom.Poly {
	return p.Transform(geom.Translation(geom.Pt(dx, dy)))
}

func sqAt(x, y, side float64) geom.Poly {
	return geom.NewPolygon(
		geom.Pt(x, y), geom.Pt(x+side, y), geom.Pt(x+side, y+side), geom.Pt(x, y+side))
}

func triAt(x, y, s float64) geom.Poly {
	return geom.NewPolygon(geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x, y+2*s))
}

func TestTrackerFollowsMovingShape(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	for f := 0; f < 10; f++ {
		sq := sqAt(float64(f)*0.5, 0, 4)
		if err := tr.Observe([]geom.Poly{sq}); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Tracks()
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d, want 1", len(tracks))
	}
	if tracks[0].Len() != 10 {
		t.Errorf("track length = %d", tracks[0].Len())
	}
	if tracks[0].Closed() {
		t.Error("active track should be open")
	}
	if tracks[0].First().Frame != 0 || tracks[0].Last().Frame != 9 {
		t.Error("frame bookkeeping broken")
	}
}

func TestTrackerSeparatesTwoObjects(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	for f := 0; f < 6; f++ {
		shapes := []geom.Poly{
			sqAt(float64(f)*0.4, 0, 4),
			triAt(30-float64(f)*0.4, 20, 3),
		}
		if err := tr.Observe(shapes); err != nil {
			t.Fatal(err)
		}
	}
	tracks := tr.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tracks))
	}
	for _, tk := range tracks {
		if tk.Len() != 6 {
			t.Errorf("track %d length %d, want 6", tk.ID, tk.Len())
		}
	}
}

func TestTrackerGapAndClose(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxGap = 1
	tr := NewTracker(opts)
	sq := sqAt(0, 0, 4)
	if err := tr.Observe([]geom.Poly{sq}); err != nil {
		t.Fatal(err)
	}
	// One missed frame: survives.
	if err := tr.Observe(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe([]geom.Poly{sq}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tracks()) != 1 || tr.Tracks()[0].Len() != 2 {
		t.Fatalf("gap bridging failed: %d tracks", len(tr.Tracks()))
	}
	// Two missed frames: closes; reappearance starts a new track.
	if err := tr.Observe(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe(nil); err != nil {
		t.Fatal(err)
	}
	if !tr.Tracks()[0].Closed() {
		t.Error("track should have closed after exceeding MaxGap")
	}
	if err := tr.Observe([]geom.Poly{sq}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tracks()) != 2 {
		t.Errorf("reappearance should start a new track: %d", len(tr.Tracks()))
	}
}

func TestTrackerRejectsTeleport(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	if err := tr.Observe([]geom.Poly{sqAt(0, 0, 4)}); err != nil {
		t.Fatal(err)
	}
	// The same shape but displaced by many diameters: must not link.
	if err := tr.Observe([]geom.Poly{sqAt(100, 100, 4)}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tracks()) != 2 {
		t.Errorf("teleporting shape linked: %d tracks", len(tr.Tracks()))
	}
}

func TestTrackerRejectsShapeSwap(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	if err := tr.Observe([]geom.Poly{sqAt(0, 0, 4)}); err != nil {
		t.Fatal(err)
	}
	// A very different shape at the same place: must not link.
	if err := tr.Observe([]geom.Poly{triAt(0, 0, 3)}); err != nil {
		t.Fatal(err)
	}
	if len(tr.Tracks()) != 2 {
		t.Errorf("shape-swapped object linked: %d tracks", len(tr.Tracks()))
	}
}

func TestTrackerToleratesDeformation(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	base := sqAt(0, 0, 4)
	for f := 0; f < 8; f++ {
		p := base.Clone()
		// A breathing deformation well inside MaxShapeDist.
		s := 1 + 0.02*math.Sin(float64(f))
		p = p.Transform(geom.Scaling(s))
		p = moveShape(p, float64(f)*0.3, 0)
		if err := tr.Observe([]geom.Poly{p}); err != nil {
			t.Fatal(err)
		}
	}
	if len(tr.Tracks()) != 1 {
		t.Errorf("deforming object fragmented into %d tracks", len(tr.Tracks()))
	}
}

func TestFindTracks(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	for f := 0; f < 5; f++ {
		shapes := []geom.Poly{
			sqAt(float64(f)*0.3, 0, 4),
			triAt(30, 20+float64(f)*0.3, 3),
		}
		if err := tr.Observe(shapes); err != nil {
			t.Fatal(err)
		}
	}
	ms, err := tr.FindTracks(sqAt(50, 50, 7), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d", len(ms))
	}
	if ms[0].Distance > 1e-6 {
		t.Errorf("square query should match the square track exactly: %v", ms[0].Distance)
	}
	if ms[0].Distance > ms[1].Distance {
		t.Error("matches unsorted")
	}
	if _, err := tr.FindTracks(sqAt(0, 0, 1), 0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestObserveValidation(t *testing.T) {
	tr := NewTracker(DefaultOptions())
	bow := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(2, 2), geom.Pt(2, 0), geom.Pt(0, 2))
	if err := tr.Observe([]geom.Poly{bow}); err == nil {
		t.Error("self-intersecting observation should fail")
	}
}
