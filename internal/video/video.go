// Package video implements the shape-tracking layer of the video
// retrieval system the paper names as work in progress (§7: "We are
// currently incorporating our method in a video retrieval system").
//
// A Tracker consumes frames of extracted object boundaries and links
// shapes across consecutive frames into tracks, using the same
// geometric-similarity measure as still-image retrieval: a shape in
// frame t is matched to the track whose last shape minimizes a blend of
// the normalized shape distance (deformation) and the normalized
// centroid displacement (motion), subject to per-component gates. Tracks
// that miss MaxGap consecutive frames are closed. Queries then retrieve
// whole tracks by shape similarity, so a video base is searched exactly
// like an image base with time-coherent grouping.
package video

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Options tune the tracker.
type Options struct {
	// MaxShapeDist is the largest acceptable normalized shape distance
	// (symmetric vertex-averaged measure) between consecutive
	// observations of one object.
	MaxShapeDist float64
	// MaxMove is the largest acceptable centroid displacement between
	// consecutive frames, as a fraction of the shape's diameter.
	MaxMove float64
	// MaxGap is how many frames a track survives without an observation.
	MaxGap int
	// ShapeWeight blends shape distance vs motion in the assignment cost
	// (0..1; 1 = shape only).
	ShapeWeight float64
}

// DefaultOptions returns a reasonable tracker configuration.
func DefaultOptions() Options {
	return Options{MaxShapeDist: 0.08, MaxMove: 0.75, MaxGap: 2, ShapeWeight: 0.6}
}

// Observation is one shape in one frame.
type Observation struct {
	Frame int
	Shape geom.Poly
}

// Track is a time-coherent sequence of observations of one object.
type Track struct {
	ID     int
	Obs    []Observation
	closed bool
	missed int
}

// First returns the first observation.
func (t *Track) First() Observation { return t.Obs[0] }

// Last returns the most recent observation.
func (t *Track) Last() Observation { return t.Obs[len(t.Obs)-1] }

// Len returns the number of observations.
func (t *Track) Len() int { return len(t.Obs) }

// Closed reports whether the track has ended.
func (t *Track) Closed() bool { return t.closed }

// Tracker links per-frame shapes into tracks.
type Tracker struct {
	opts   Options
	tracks []*Track
	frame  int
	nextID int
}

// NewTracker creates a tracker.
func NewTracker(opts Options) *Tracker {
	if opts.MaxShapeDist <= 0 {
		opts.MaxShapeDist = 0.08
	}
	if opts.MaxMove <= 0 {
		opts.MaxMove = 0.75
	}
	if opts.MaxGap < 0 {
		opts.MaxGap = 0
	}
	if opts.ShapeWeight <= 0 || opts.ShapeWeight > 1 {
		opts.ShapeWeight = 0.6
	}
	return &Tracker{opts: opts}
}

// Tracks returns all tracks (open and closed), ordered by creation.
func (tr *Tracker) Tracks() []*Track { return tr.tracks }

// Frame returns the index of the next frame to be observed.
func (tr *Tracker) Frame() int { return tr.frame }

// Observe ingests the shapes of the next frame and assigns them to
// tracks greedily by ascending cost (each track and each shape used at
// most once per frame). Unassigned shapes start new tracks; open tracks
// that exceed MaxGap missed frames are closed.
func (tr *Tracker) Observe(shapes []geom.Poly) error {
	frame := tr.frame
	tr.frame++
	for si, s := range shapes {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("video: frame %d shape %d: %w", frame, si, err)
		}
	}
	type cand struct {
		cost  float64
		track int
		shape int
	}
	var cands []cand
	for ti, t := range tr.tracks {
		if t.closed {
			continue
		}
		last := t.Last().Shape
		for si, s := range shapes {
			c, ok := tr.cost(last, s)
			if ok {
				cands = append(cands, cand{c, ti, si})
			}
		}
	}
	// Greedy minimum-cost assignment (the candidate lists are tiny).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].cost < cands[j-1].cost; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	usedT := make(map[int]bool)
	usedS := make(map[int]bool)
	for _, c := range cands {
		if usedT[c.track] || usedS[c.shape] {
			continue
		}
		usedT[c.track] = true
		usedS[c.shape] = true
		t := tr.tracks[c.track]
		t.Obs = append(t.Obs, Observation{Frame: frame, Shape: shapes[c.shape].Clone()})
		t.missed = 0
	}
	// Close stale tracks, age the rest.
	for ti, t := range tr.tracks {
		if t.closed || usedT[ti] {
			continue
		}
		t.missed++
		if t.missed > tr.opts.MaxGap {
			t.closed = true
		}
	}
	// New tracks for unmatched shapes.
	for si, s := range shapes {
		if usedS[si] {
			continue
		}
		tr.tracks = append(tr.tracks, &Track{
			ID:  tr.nextID,
			Obs: []Observation{{Frame: frame, Shape: s.Clone()}},
		})
		tr.nextID++
	}
	return nil
}

// cost scores linking shape s to a track whose last shape is `last`.
func (tr *Tracker) cost(last, s geom.Poly) (float64, bool) {
	e1, err1 := core.NormalizeCanonical(last)
	e2, err2 := core.NormalizeCanonical(s)
	if err1 != nil || err2 != nil {
		return 0, false
	}
	shapeDist := core.AvgMinDistVerticesSym(e1.Poly, e2.Poly)
	if shapeDist > tr.opts.MaxShapeDist {
		return 0, false
	}
	_, _, d1 := last.Diameter()
	move := last.Centroid().Dist(s.Centroid())
	if d1 <= 0 || move/d1 > tr.opts.MaxMove {
		return 0, false
	}
	w := tr.opts.ShapeWeight
	return w*shapeDist/tr.opts.MaxShapeDist + (1-w)*(move/d1)/tr.opts.MaxMove, true
}

// TrackMatch is a track retrieved by shape similarity.
type TrackMatch struct {
	TrackID  int
	Distance float64 // best (minimum) shape distance over the track
	Frame    int     // frame of the best-matching observation
}

// FindTracks retrieves the k tracks most similar to the query shape: the
// distance of a track is the minimum, over its observations, of the
// normalized symmetric measure to the query (video retrieval: "find the
// clips where something shaped like this appears").
func (tr *Tracker) FindTracks(q geom.Poly, k int) ([]TrackMatch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("video: k must be positive")
	}
	qe, err := core.NormalizeCanonical(q)
	if err != nil {
		return nil, err
	}
	var out []TrackMatch
	for _, t := range tr.tracks {
		best := math.Inf(1)
		bestFrame := -1
		for _, ob := range t.Obs {
			oe, err := core.NormalizeCanonical(ob.Shape)
			if err != nil {
				continue
			}
			if d := core.AvgMinDistVerticesSym(oe.Poly, qe.Poly); d < best {
				best = d
				bestFrame = ob.Frame
			}
		}
		if bestFrame >= 0 {
			out = append(out, TrackMatch{TrackID: t.ID, Distance: best, Frame: bestFrame})
		}
	}
	// Sort ascending by distance.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Distance < out[j-1].Distance; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
