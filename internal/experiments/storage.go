package experiments

import (
	"fmt"

	"repro/internal/extstore"
)

// Fig7Row is one row of the Figure 7 reproduction: mean I/O operations
// per query when retrieving the k best matches, per storage layout.
type Fig7Row struct {
	K  int
	IO map[extstore.Layout]float64
}

// Fig7 reproduces Figure 7 (§4.1) extended with the local-optimization
// layout (§4.2): the mean number of I/O operations per query over the
// workload, for k = 1..kMax best matches, with a buffer of bufBlocks
// blocks (the paper: 100 blocks, 15 queries, k = 1..10). The entry-access
// trace of a query depends only on the matcher, so it is recorded once
// per k and replayed against every layout.
func Fig7(f *Fixture, kMax, bufBlocks int) ([]Fig7Row, error) {
	if kMax <= 0 {
		kMax = 10
	}
	rows := make([]Fig7Row, 0, kMax)
	for k := 1; k <= kMax; k++ {
		traces, err := collectTraces(f, k)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{K: k, IO: make(map[extstore.Layout]float64)}
		for _, layout := range extstore.Layouts() {
			io, err := replayTraces(f, traces, layout, bufBlocks)
			if err != nil {
				return nil, err
			}
			row.IO[layout] = io
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// collectTraces records the per-query entry-access sequences at the given
// k.
func collectTraces(f *Fixture, k int) ([][]int32, error) {
	traces := make([][]int32, 0, len(f.Queries))
	for _, q := range f.Queries {
		var trace []int32
		_, _, err := f.Base.MatchTrace(q, k, func(entryID int) {
			trace = append(trace, int32(entryID))
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: query failed: %w", err)
		}
		traces = append(traces, trace)
	}
	return traces, nil
}

// replayTraces builds a store under the layout and replays the recorded
// accesses, returning disk reads per query. The buffer persists across
// queries, as in a running system.
func replayTraces(f *Fixture, traces [][]int32, layout extstore.Layout, bufBlocks int) (float64, error) {
	store, err := extstore.NewStore(f.Records, layout, bufBlocks)
	if err != nil {
		return 0, err
	}
	stored := make(map[int32]bool, len(f.Records))
	for i := range f.Records {
		stored[f.Records[i].EntryID] = true
	}
	if len(traces) == 0 {
		return 0, fmt.Errorf("experiments: no traces")
	}
	for _, trace := range traces {
		for _, eid := range trace {
			if !stored[eid] {
				continue // oversized entries live in an overflow area
			}
			if _, err := store.ReadEntry(eid); err != nil {
				return 0, err
			}
		}
	}
	return float64(store.Stats().DiskReads) / float64(len(traces)), nil
}

// Fig8Row is one row of the Figure 8 reproduction: mean I/O per query at
// fixed k for a given buffer capacity.
type Fig8Row struct {
	BufferKB int
	IO       map[extstore.Layout]float64
}

// Fig8 reproduces Figure 8: mean I/O per query at k = 2 for buffer sizes
// from 1 KB to 100 KB (1 to 100 blocks).
func Fig8(f *Fixture, buffersKB []int) ([]Fig8Row, error) {
	if len(buffersKB) == 0 {
		buffersKB = []int{1, 2, 5, 10, 20, 40, 60, 80, 100}
	}
	traces, err := collectTraces(f, 2)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig8Row, 0, len(buffersKB))
	for _, kb := range buffersKB {
		row := Fig8Row{BufferKB: kb, IO: make(map[extstore.Layout]float64)}
		for _, layout := range extstore.Layouts() {
			io, err := replayTraces(f, traces, layout, kb)
			if err != nil {
				return nil, err
			}
			row.IO[layout] = io
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RehashCost reports the §4 rehashing cost model for every layout on the
// fixture's records.
type RehashCost struct {
	Layout      extstore.Layout
	Comparisons int
	BlockReads  int
	BlockWrites int
}

// Rehash measures the rebuild cost from a lexicographic store into each
// target layout.
func Rehash(f *Fixture) ([]RehashCost, error) {
	var out []RehashCost
	for _, layout := range extstore.Layouts() {
		store, err := extstore.NewStore(f.Records, extstore.LayoutLex, 8)
		if err != nil {
			return nil, err
		}
		st, err := store.Rehash(layout)
		if err != nil {
			return nil, err
		}
		out = append(out, RehashCost{
			Layout:      layout,
			Comparisons: st.Comparisons,
			BlockReads:  st.BlockReads,
			BlockWrites: st.BlockWrites,
		})
	}
	return out, nil
}
