package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/chamfer"
	"repro/internal/core"
	"repro/internal/extindex"
	"repro/internal/extstore"
	"repro/internal/geohash"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/rangesearch"
	"repro/internal/synth"
)

// Fig1Result reproduces the Figure 1 discrimination example: the query Q
// against a spiked shape A and a mildly perturbed shape B, under the
// Hausdorff distance and the average measure.
type Fig1Result struct {
	HausdorffA, HausdorffB float64
	AvgA, AvgB             float64
	HausdorffPicksA        bool // the failure mode of §2.1
	AvgPicksB              bool // the paper's fix
}

// Fig1 computes the example.
func Fig1() Fig1Result {
	q := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1))
	b := geom.NewPolygon(geom.Pt(0.02, 0.01), geom.Pt(1.03, -0.02), geom.Pt(0.98, 1.02), geom.Pt(-0.01, 0.97))
	a := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(3.0, 0.5), geom.Pt(1, 1), geom.Pt(0, 1))
	r := Fig1Result{
		HausdorffA: core.Hausdorff(a, q, 512),
		HausdorffB: core.Hausdorff(b, q, 512),
		AvgA:       core.AvgMinDistSym(a, q, 512),
		AvgB:       core.AvgMinDistSym(b, q, 512),
	}
	r.HausdorffPicksA = r.HausdorffA > r.HausdorffB // A penalized by the spike
	r.AvgPicksB = r.AvgB < r.AvgA
	return r
}

// Fig2Result reproduces the Figure 2 robustness comparison: a query whose
// every edge has been split and displaced (no original edge survives) is
// matched by diameter normalization (GeoSIR) and by the edge-normalized
// Mehrotra–Gary index.
type Fig2Result struct {
	Trials    int
	GeoSIRHit int // retrievals that returned the true source shape
	MGHit     int
	MGVectors int // the baseline's storage cost, in feature vectors
	Entries   int // GeoSIR's storage cost, in normalized copies
}

// Fig2 runs the comparison over the fixture's prototype shapes.
func Fig2(f *Fixture, trials int) (Fig2Result, error) {
	if trials <= 0 {
		trials = 20
	}
	res := Fig2Result{Entries: f.Base.NumEntries()}
	mg, err := core.NewMGIndex(f.Base.Shapes())
	if err != nil {
		return res, err
	}
	res.MGVectors = mg.NumVectors()
	rng := rand.New(rand.NewSource(f.Cfg.Seed + 77))
	shapes := f.Base.Shapes()
	for t := 0; t < trials; t++ {
		src := shapes[rng.Intn(len(shapes))]
		dq, ok := edgeSplitDistort(src.Poly, 0.05, rng)
		if !ok {
			continue
		}
		res.Trials++
		if ms, _, err := f.Base.Match(dq, 1); err == nil && len(ms) > 0 && ms[0].ShapeID == src.ID {
			res.GeoSIRHit++
		}
		if ms, err := mg.Match(dq, 1); err == nil && len(ms) > 0 && ms[0].ShapeID == src.ID {
			res.MGHit++
		}
	}
	if res.Trials == 0 {
		return res, fmt.Errorf("experiments: no valid distorted queries")
	}
	return res, nil
}

// edgeSplitDistort splits every edge at its midpoint and displaces the
// midpoint perpendicular to the edge — the local distortion of Figure 2
// under which no original edge survives.
func edgeSplitDistort(p geom.Poly, mag float64, rng *rand.Rand) (geom.Poly, bool) {
	m := p.NumEdges()
	var pts []geom.Point
	for i := 0; i < m; i++ {
		e := p.Edge(i)
		pts = append(pts, e.A)
		off := e.Dir().Unit().Perp().Scale((rng.Float64()*2 - 1) * mag * e.Length())
		pts = append(pts, e.Midpoint().Add(off))
	}
	if !p.Closed {
		pts = append(pts, p.Pts[len(p.Pts)-1])
	}
	q := geom.Poly{Pts: pts, Closed: p.Closed}
	if q.Validate() != nil {
		return geom.Poly{}, false
	}
	return q, true
}

// Fig5Row is one sample of the E(x) area function and its derivative
// (Figure 5).
type Fig5Row struct {
	X, E, DE float64
}

// Fig5 samples E and ∂E/∂x on [0,1].
func Fig5(samples int) []Fig5Row {
	if samples < 2 {
		samples = 101
	}
	out := make([]Fig5Row, samples)
	for i := 0; i < samples; i++ {
		x := float64(i) / float64(samples-1)
		out[i] = Fig5Row{X: x, E: geohash.E(x), DE: geohash.DE(x)}
	}
	return out
}

// Fig10Point is one observation of the Figure 10 selectivity experiment:
// a query's significant-vertex count and its number of similar shapes.
type Fig10Point struct {
	VS      float64
	Matches int
}

// Fig10Result carries the two experiments of Figure 10 (full base and
// half base) and the fitted constants of the hyperbolic law
// matches ≈ c / V_S.
type Fig10Result struct {
	Exp1, Exp2 []Fig10Point
	C1, C2     float64
}

// Fig10 runs the selectivity experiment on a complexity-graded star
// domain (see synth.ZipfStarImages): the paper established the law
// matches ≈ c/V_S(Q) experimentally on an image domain where simple
// boundaries are more frequent than structured ones; the Zipf-graded star
// base reproduces exactly that frequency property, with V_S growing with
// the corner count. Experiment 1 runs the workload against the full base
// and experiment 2 against a half-size base of the same domain (the
// paper's two experiments differ by a factor of two in base size).
func Fig10(cfg Config, tau float64, queries int) (Fig10Result, error) {
	if queries <= 0 {
		queries = 40
	}
	if tau <= 0 {
		tau = 0.03
	}
	var res Fig10Result
	shapes := int(1500 * cfg.Scale / 0.02)
	if shapes < 100 {
		shapes = 100
	}
	const (
		minC  = 3
		maxC  = 12
		noise = 0.015
	)
	buildStarBase := func(n int, seed int64) (*core.Base, error) {
		images := synth.ZipfStarImages(synth.ZipfStarSpec{
			Shapes: n, MinC: minC, MaxC: maxC, Noise: noise, Seed: seed,
		})
		b := core.NewBase(cfg.CoreOpts)
		for _, img := range images {
			for _, s := range img.Shapes {
				if _, err := b.AddShape(img.ID, s); err != nil {
					return nil, err
				}
			}
		}
		if err := b.Freeze(); err != nil {
			return nil, err
		}
		return b, nil
	}
	full, err := buildStarBase(shapes, cfg.Seed)
	if err != nil {
		return res, err
	}
	half, err := buildStarBase(shapes/2, cfg.Seed)
	if err != nil {
		return res, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4242))
	for i := 0; i < queries; i++ {
		// Uniform corner counts cover the V_S axis evenly.
		c := minC + i%(maxC-minC+1)
		q := synth.Star(rng, c, noise)
		vs := query.SignificantVertices(q)
		if vs <= 0 {
			continue
		}
		m1, _, err := full.SimilarShapes(q, tau)
		if err != nil {
			return res, err
		}
		m2, _, err := half.SimilarShapes(q, tau)
		if err != nil {
			return res, err
		}
		res.Exp1 = append(res.Exp1, Fig10Point{VS: vs, Matches: len(m1)})
		res.Exp2 = append(res.Exp2, Fig10Point{VS: vs, Matches: len(m2)})
	}
	res.C1 = fitHyperbolic(res.Exp1)
	res.C2 = fitHyperbolic(res.Exp2)
	return res, nil
}

// fitHyperbolic fits matches = c / V_S by least squares on c (closed
// form: c = Σ(mᵢ/vᵢ) / Σ(1/vᵢ²)).
func fitHyperbolic(pts []Fig10Point) float64 {
	var num, den float64
	for _, p := range pts {
		if p.VS <= 0 {
			continue
		}
		num += float64(p.Matches) / p.VS
		den += 1 / (p.VS * p.VS)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ScalingRow is one point of the retrieval-complexity experiment (§2.5's
// polylogarithmic claim): base size vs. average query cost.
type ScalingRow struct {
	Images          int
	Vertices        int
	AvgMicros       float64
	AvgIterations   float64
	AvgVertsCounted float64
}

// Scaling measures retrieval cost across base scales.
func Scaling(cfg Config, scales []float64) ([]ScalingRow, error) {
	if len(scales) == 0 {
		scales = []float64{0.005, 0.01, 0.02, 0.04, 0.08}
	}
	var out []ScalingRow
	for _, s := range scales {
		c := cfg
		c.Scale = s
		f, err := BuildFixture(c)
		if err != nil {
			return nil, err
		}
		var totalDur time.Duration
		var iters, counted, ran int
		for _, q := range f.Queries {
			start := time.Now()
			_, st, err := f.Base.Match(q, 1)
			if err != nil {
				return nil, err
			}
			totalDur += time.Since(start)
			iters += st.Iterations
			counted += st.VerticesCounted
			ran++
		}
		out = append(out, ScalingRow{
			Images:          len(f.Images),
			Vertices:        f.Base.NumVertices(),
			AvgMicros:       float64(totalDur.Microseconds()) / float64(ran),
			AvgIterations:   float64(iters) / float64(ran),
			AvgVertsCounted: float64(counted) / float64(ran),
		})
	}
	return out, nil
}

// HashRow is one point of the §3 hashing study: family size vs. bucket
// occupancy and candidate-set size.
type HashRow struct {
	Curves        int
	MeanBucket    float64
	MaxBucket     int
	AvgCandidates float64
	HitRate       float64 // queries whose source shape is in the candidates
}

// Hashing sweeps the curve-family size.
func Hashing(f *Fixture, curveCounts []int) ([]HashRow, error) {
	if len(curveCounts) == 0 {
		curveCounts = []int{10, 25, 50, 100, 200}
	}
	// Query workload: mildly distorted copies of known shapes.
	rng := rand.New(rand.NewSource(f.Cfg.Seed + 9))
	type qcase struct {
		q   geom.Poly
		src int
	}
	var cases []qcase
	shapes := f.Base.Shapes()
	for len(cases) < 30 {
		s := shapes[rng.Intn(len(shapes))]
		dq := synth.Distort(rng, s.Poly, 0.01)
		if dq.Validate() == nil {
			cases = append(cases, qcase{q: dq, src: s.ID})
		}
	}
	var out []HashRow
	for _, k := range curveCounts {
		family, err := geohash.NewFamily(k)
		if err != nil {
			return nil, err
		}
		table := geohash.NewTable(family)
		for _, s := range shapes {
			ce, err := core.NormalizeCanonical(s.Poly)
			if err != nil {
				continue
			}
			if err := table.Insert(s.ID, family.Characteristic(ce.Poly.Pts)); err != nil {
				return nil, err
			}
		}
		mean, maxB := table.BucketStats()
		row := HashRow{Curves: k, MeanBucket: mean, MaxBucket: maxB}
		totalCand, hits := 0, 0
		for _, c := range cases {
			ce, err := core.NormalizeCanonical(c.q)
			if err != nil {
				continue
			}
			ids := table.Lookup(family.Characteristic(ce.Poly.Pts), 1)
			totalCand += len(ids)
			for _, id := range ids {
				if id == c.src {
					hits++
					break
				}
			}
		}
		row.AvgCandidates = float64(totalCand) / float64(len(cases))
		row.HitRate = float64(hits) / float64(len(cases))
		out = append(out, row)
	}
	return out, nil
}

// PlanRow compares query-plan orderings (§5.4): the selectivity-driven
// plan against the worst-case ordering, in per-image predicate checks.
type PlanRow struct {
	Query         string
	PlannedChecks int
	NaiveChecks   int
	ResultSize    int
}

// Plans builds a topological DB over the fixture's images and runs a set
// of composite queries with both orderings.
func Plans(f *Fixture) ([]PlanRow, error) {
	db := query.NewDB(query.Options{Core: f.Cfg.CoreOpts, Tau: 0.05, AngleTol: 0.15})
	for _, img := range f.Images {
		valid := make([]geom.Poly, 0, len(img.Shapes))
		for _, s := range img.Shapes {
			if s.Validate() == nil {
				valid = append(valid, s)
			}
		}
		if len(valid) == 0 {
			continue
		}
		if err := db.AddImage(img.ID, valid); err != nil {
			return nil, err
		}
	}
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	// Bind two query shapes: a common one (low V_S) and a rare, highly
	// structured one (high V_S).
	rng := rand.New(rand.NewSource(f.Cfg.Seed + 5))
	qs := synth.Queries(rng, f.Images, 2, 0.01)
	binds := query.Bindings{"qa": qs[0], "qb": qs[1]}
	srcs := []string{
		"similar(qa) AND similar(qb)",
		"similar(qa) AND NOT similar(qb)",
		"overlap(qa, qb, any) OR similar(qb)",
	}
	var out []PlanRow
	for _, src := range srcs {
		set, plan, err := db.EvalString(src, binds)
		if err != nil {
			return nil, err
		}
		planned := 0
		for _, c := range plan.Conjuncts {
			planned += c.FilterChecks
		}
		// Naive ordering: drive every conjunct from the full image set.
		naive := naiveChecks(db, src, binds)
		out = append(out, PlanRow{
			Query:         src,
			PlannedChecks: planned,
			NaiveChecks:   naive,
			ResultSize:    len(set),
		})
	}
	return out, nil
}

// naiveChecks evaluates the query by checking every literal on every
// image (no index, no ordering) and returns the number of checks.
func naiveChecks(db *query.DB, src string, binds query.Bindings) int {
	e, err := query.Parse(src)
	if err != nil {
		return 0
	}
	checks := 0
	for _, c := range query.ToDNF(e) {
		checks += len(c) * db.NumImages()
	}
	return checks
}

// SortedVS returns the Fig10 points sorted by V_S, for plotting.
func SortedVS(pts []Fig10Point) []Fig10Point {
	out := append([]Fig10Point(nil), pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].VS < out[j].VS })
	return out
}

// Spearman computes the Spearman rank correlation between V_S and the
// match count — Figure 10's "hyperbolic behavior" implies a strong
// negative correlation.
func Spearman(pts []Fig10Point) float64 {
	n := len(pts)
	if n < 3 {
		return 0
	}
	rx := ranks(func(i int) float64 { return pts[i].VS }, n)
	ry := ranks(func(i int) float64 { return float64(pts[i].Matches) }, n)
	var d2 float64
	for i := 0; i < n; i++ {
		d := rx[i] - ry[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}

func ranks(val func(int) float64, n int) []float64 {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return val(idx[a]) < val(idx[b]) })
	r := make([]float64, n)
	for pos := 0; pos < n; {
		end := pos
		for end+1 < n && math.Abs(val(idx[end+1])-val(idx[pos])) < 1e-12 {
			end++
		}
		avg := float64(pos+end) / 2
		for k := pos; k <= end; k++ {
			r[idx[k]] = avg
		}
		pos = end + 1
	}
	return r
}

// ChamferResult compares the chamfer-matching baseline (§1 related work)
// with GeoSIR on the same retrieval task: top-1 image whose content
// class matches the query's source class, and mean per-query latency.
// The paper's criticism is cost: chamfer scans a full distance map per
// stored image per query.
type ChamferResult struct {
	Queries       int
	ChamferHits   int
	GeoSIRHits    int
	ChamferMicros float64
	GeoSIRMicros  float64
	// ChamferBytes is the distance-map bytes a query must scan (every
	// image, every rotation step reads the full map's footprint); it
	// grows linearly with the base. GeoSIRBytes is the measured block
	// I/O of the same queries against the mean-curve store — the
	// index-pruned footprint.
	ChamferBytes float64
	GeoSIRBytes  float64
}

// Chamfer runs the comparison on the fixture.
func Chamfer(f *Fixture, trials int) (ChamferResult, error) {
	if trials <= 0 {
		trials = 15
	}
	var res ChamferResult

	imageShapes := make(map[int][]geom.Poly, len(f.Images))
	classOf := make(map[int][]int, len(f.Images))
	for _, img := range f.Images {
		imageShapes[img.ID] = img.Shapes
		classOf[img.ID] = img.Class
	}
	cm, err := chamfer.NewMatcher(imageShapes, 96)
	if err != nil {
		return res, err
	}

	imageHasClass := func(imageID, class int) bool {
		for _, c := range classOf[imageID] {
			if c == class {
				return true
			}
		}
		return false
	}

	rng := rand.New(rand.NewSource(f.Cfg.Seed + 31))
	for t := 0; t < trials; t++ {
		img := f.Images[rng.Intn(len(f.Images))]
		si := rng.Intn(len(img.Shapes))
		q := synth.Distort(rng, img.Shapes[si], 0.01)
		if q.Validate() != nil {
			q = img.Shapes[si]
		}
		class := img.Class[si]
		res.Queries++

		start := time.Now()
		cms, err := cm.Query(q, 1)
		if err != nil {
			return res, err
		}
		res.ChamferMicros += float64(time.Since(start).Microseconds())
		if len(cms) > 0 && imageHasClass(cms[0].ImageID, class) {
			res.ChamferHits++
		}

		start = time.Now()
		gms, _, err := f.Base.Match(q, 1)
		if err != nil {
			return res, err
		}
		res.GeoSIRMicros += float64(time.Since(start).Microseconds())
		if len(gms) > 0 {
			gimg := f.Base.Shape(gms[0].ShapeID).Image
			if imageHasClass(gimg, class) {
				res.GeoSIRHits++
			}
		}
	}
	res.ChamferMicros /= float64(res.Queries)
	res.GeoSIRMicros /= float64(res.Queries)

	// Footprints: chamfer touches every image's full distance map
	// (96×96 float32) once per query; GeoSIR touches the blocks its
	// candidate accesses hit (replay against the mean-curve layout).
	res.ChamferBytes = float64(len(f.Images)) * 96 * 96 * 4
	traces, err := collectTraces(f, 1)
	if err != nil {
		return res, err
	}
	io, err := replayTraces(f, traces, extstore.LayoutMean, 100)
	if err != nil {
		return res, err
	}
	res.GeoSIRBytes = io * extstore.BlockSize
	return res, nil
}

// ExtIndexRow reports the external-memory cost of the *auxiliary*
// structures during retrieval (§4: "for accommodating the auxiliary data
// structures in external memory we use optimal range search indexing
// structures"): the matching engine runs against a block-packed external
// kd-tree and the block reads are counted per query.
type ExtIndexRow struct {
	BufferBlocks int
	IndexBlocks  int
	ReadsPerQry  float64
	HitRate      float64
}

// ExtIndexIO rebuilds the fixture's base over the external tree and
// replays the query workload for each buffer capacity.
func ExtIndexIO(f *Fixture, bufferBlocks []int) ([]ExtIndexRow, error) {
	if len(bufferBlocks) == 0 {
		bufferBlocks = []int{4, 16, 64, 256}
	}
	var out []ExtIndexRow
	for _, buf := range bufferBlocks {
		var tree *extindex.Tree
		opts := f.Cfg.CoreOpts
		bufCopy := buf
		opts.BackendFactory = func(pts []geom.Point) rangesearch.Backend {
			t, err := extindex.Build(pts, bufCopy)
			if err != nil {
				panic(err) // simulated disk; cannot fail on valid input
			}
			tree = t
			return extindex.Backend{T: t}
		}
		b := core.NewBase(opts)
		for _, img := range f.Images {
			for _, s := range img.Shapes {
				if _, err := b.AddShape(img.ID, s); err != nil {
					return nil, err
				}
			}
		}
		if err := b.Freeze(); err != nil {
			return nil, err
		}
		tree.ResetStats()
		for _, q := range f.Queries {
			if _, _, err := b.Match(q, 1); err != nil {
				return nil, err
			}
		}
		st := tree.Stats()
		total := st.PoolHits + st.PoolMisses
		row := ExtIndexRow{
			BufferBlocks: buf,
			IndexBlocks:  tree.NumBlocks(),
			ReadsPerQry:  float64(st.DiskReads) / float64(len(f.Queries)),
		}
		if total > 0 {
			row.HitRate = float64(st.PoolHits) / float64(total)
		}
		out = append(out, row)
	}
	return out, nil
}

// FamilyRow compares hash-curve families (§3: "we have considered
// different families of conic curves, trying to increase the retrieval
// accuracy, while minimizing the computational complexity").
type FamilyRow struct {
	Name          string
	BuildMicros   float64
	MeanBucket    float64
	MaxBucket     int
	AvgCandidates float64
	HitRate       float64
}

// FamilyAblation evaluates the unit-arc family against the radial family
// at the same per-quarter curve count.
func FamilyAblation(f *Fixture, curves int) ([]FamilyRow, error) {
	if curves <= 0 {
		curves = 50
	}
	rng := rand.New(rand.NewSource(f.Cfg.Seed + 9))
	type qcase struct {
		q   geom.Poly
		src int
	}
	var cases []qcase
	shapes := f.Base.Shapes()
	for len(cases) < 30 {
		s := shapes[rng.Intn(len(shapes))]
		dq := synth.Distort(rng, s.Poly, 0.01)
		if dq.Validate() == nil {
			cases = append(cases, qcase{q: dq, src: s.ID})
		}
	}

	study := func(name string, build func() (geohash.CurveFamily, error)) (FamilyRow, error) {
		start := time.Now()
		fam, err := build()
		if err != nil {
			return FamilyRow{}, err
		}
		row := FamilyRow{Name: name, BuildMicros: float64(time.Since(start).Microseconds())}
		table := geohash.NewTableWith(fam)
		for _, s := range shapes {
			ce, err := core.NormalizeCanonical(s.Poly)
			if err != nil {
				continue
			}
			if err := table.Insert(s.ID, fam.Characteristic(ce.Poly.Pts)); err != nil {
				return FamilyRow{}, err
			}
		}
		row.MeanBucket, row.MaxBucket = table.BucketStats()
		totalCand, hits := 0, 0
		for _, c := range cases {
			ce, err := core.NormalizeCanonical(c.q)
			if err != nil {
				continue
			}
			ids := table.Lookup(fam.Characteristic(ce.Poly.Pts), 1)
			totalCand += len(ids)
			for _, id := range ids {
				if id == c.src {
					hits++
					break
				}
			}
		}
		row.AvgCandidates = float64(totalCand) / float64(len(cases))
		row.HitRate = float64(hits) / float64(len(cases))
		return row, nil
	}

	unit, err := study("unit-arcs", func() (geohash.CurveFamily, error) {
		return geohash.NewFamily(curves)
	})
	if err != nil {
		return nil, err
	}
	radial, err := study("radial", func() (geohash.CurveFamily, error) {
		return geohash.NewRadialFamily(curves)
	})
	if err != nil {
		return nil, err
	}
	return []FamilyRow{unit, radial}, nil
}

// QualityRow quantifies the noise-tolerance claim (§1, §2: the criterion
// "is tolerant to distortion"; "our similarity criterion has been
// designed to be tolerant to such noise situations"): precision of
// retrieval as the query's distortion grows.
type QualityRow struct {
	Distortion float64
	P1         float64 // top-1 is an instance of the query's class
	P5         float64 // some top-5 hit is an instance of the class
	MRR        float64 // mean reciprocal rank of the first class hit
}

// Quality sweeps query distortion levels over the fixture base.
func Quality(f *Fixture, distortions []float64, queriesPer int) ([]QualityRow, error) {
	if len(distortions) == 0 {
		distortions = []float64{0.005, 0.02, 0.05, 0.1}
	}
	if queriesPer <= 0 {
		queriesPer = 20
	}
	classOf := make(map[int]int) // shape id -> class
	{
		sid := 0
		for _, img := range f.Images {
			for i := range img.Shapes {
				// Shape ids are assigned in AddShape order, which follows
				// the image iteration order of BuildFixture.
				classOf[sid] = img.Class[i]
				sid++
			}
		}
	}
	shapes := f.Base.Shapes()
	var out []QualityRow
	for _, dist := range distortions {
		rng := rand.New(rand.NewSource(f.Cfg.Seed + int64(dist*1e4)))
		row := QualityRow{Distortion: dist}
		ran := 0
		for t := 0; t < queriesPer; t++ {
			src := shapes[rng.Intn(len(shapes))]
			q := synth.Distort(rng, src.Poly, dist)
			if q.Validate() != nil {
				continue
			}
			ms, _, err := f.Base.Match(q, 5)
			if err != nil {
				return nil, err
			}
			ran++
			class := classOf[src.ID]
			for rank, m := range ms {
				if classOf[m.ShapeID] == class {
					if rank == 0 {
						row.P1++
					}
					row.P5++
					row.MRR += 1 / float64(rank+1)
					break
				}
			}
		}
		if ran == 0 {
			return nil, fmt.Errorf("experiments: no valid queries at distortion %v", dist)
		}
		row.P1 /= float64(ran)
		row.P5 /= float64(ran)
		row.MRR /= float64(ran)
		out = append(out, row)
	}
	return out, nil
}
