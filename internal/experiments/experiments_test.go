package experiments

import (
	"testing"

	"repro/internal/extstore"
)

// tinyConfig keeps experiment tests fast.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.Scale = 0.004 // 40 images
	cfg.Queries = 5
	return cfg
}

func TestBuildFixture(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Images) != 40 {
		t.Errorf("images = %d", len(f.Images))
	}
	if f.Base.NumShapes() == 0 || f.Base.NumEntries() == 0 {
		t.Error("empty base")
	}
	if len(f.Records) == 0 {
		t.Error("no records")
	}
	if len(f.Queries) != 5 {
		t.Errorf("queries = %d", len(f.Queries))
	}
	if s := f.Summary(); s == "" {
		t.Error("empty summary")
	}
	// Every record's quad must be well-formed (indices within family).
	for _, r := range f.Records {
		for q := 0; q < 4; q++ {
			if r.Quad[q] < 0 || r.Quad[q] > f.Cfg.HashCurves {
				t.Fatalf("record %d quad %v out of range", r.EntryID, r.Quad)
			}
		}
	}
}

func TestFig1(t *testing.T) {
	r := Fig1()
	if !r.HausdorffPicksA {
		t.Errorf("Hausdorff should be dominated by the spike: A=%v B=%v", r.HausdorffA, r.HausdorffB)
	}
	if !r.AvgPicksB {
		t.Errorf("average measure should prefer B: A=%v B=%v", r.AvgA, r.AvgB)
	}
}

func TestFig2(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Fig2(f, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials == 0 {
		t.Fatal("no trials ran")
	}
	// Diameter normalization must be at least as robust as the
	// edge-normalized baseline under edge-split distortion (the paper's
	// claim), and it should succeed on a clear majority of trials.
	if r.GeoSIRHit < r.MGHit {
		t.Errorf("GeoSIR %d/%d vs MG %d/%d", r.GeoSIRHit, r.Trials, r.MGHit, r.Trials)
	}
	if float64(r.GeoSIRHit) < 0.6*float64(r.Trials) {
		t.Errorf("GeoSIR hit rate too low: %d/%d", r.GeoSIRHit, r.Trials)
	}
}

func TestFig5(t *testing.T) {
	rows := Fig5(51)
	if len(rows) != 51 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].E != 0 {
		t.Errorf("E(0) = %v", rows[0].E)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].E < rows[i-1].E {
			t.Errorf("E not monotone at %v", rows[i].X)
		}
		if rows[i].DE < 0 {
			t.Errorf("DE negative at %v", rows[i].X)
		}
	}
}

func TestFig7And8(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Fig7(f, 3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig7 rows = %d", len(rows))
	}
	for _, row := range rows {
		for _, layout := range extstore.Layouts() {
			if _, ok := row.IO[layout]; !ok {
				t.Fatalf("k=%d missing layout %s", row.K, layout)
			}
			if row.IO[layout] < 0 {
				t.Fatalf("negative IO")
			}
		}
	}
	rows8, err := Fig8(f, []int{1, 10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows8) != 3 {
		t.Fatalf("fig8 rows = %d", len(rows8))
	}
	// Bigger buffers can only help (weak monotonicity up to noise):
	// compare the extremes per layout.
	for _, layout := range extstore.Layouts() {
		if rows8[2].IO[layout] > rows8[0].IO[layout]+1e-9 {
			t.Errorf("%s: 50KB buffer (%v IO) worse than 1KB (%v IO)",
				layout, rows8[2].IO[layout], rows8[0].IO[layout])
		}
	}
}

func TestRehashCosts(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	costs, err := Rehash(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 4 {
		t.Fatalf("costs = %d", len(costs))
	}
	for _, c := range costs {
		if c.BlockReads == 0 || c.BlockWrites == 0 || c.Comparisons == 0 {
			t.Errorf("%s: degenerate cost %+v", c.Layout, c)
		}
	}
}

func TestFig10(t *testing.T) {
	cfg := tinyConfig()
	res, err := Fig10(cfg, 0.03, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Exp1) < 15 || len(res.Exp2) < 15 {
		t.Fatalf("points: %d / %d", len(res.Exp1), len(res.Exp2))
	}
	if res.C1 <= 0 {
		t.Errorf("C1 = %v", res.C1)
	}
	// Experiment 1's base is twice experiment 2's: its constant (and its
	// match counts) must be larger — roughly 2×.
	if res.C1 <= res.C2 {
		t.Errorf("C1 %v should exceed C2 %v (double base)", res.C1, res.C2)
	}
	if ratio := res.C1 / res.C2; ratio < 1.4 || ratio > 2.8 {
		t.Errorf("C1/C2 = %v, want ≈2", ratio)
	}
	// The hyperbolic law: match counts strongly anti-correlated with V_S.
	if rho := Spearman(res.Exp1); rho > -0.6 {
		t.Errorf("experiment 1 spearman = %v, want strongly negative", rho)
	}
	if rho := Spearman(res.Exp2); rho > -0.6 {
		t.Errorf("experiment 2 spearman = %v, want strongly negative", rho)
	}
}

func TestScaling(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 3
	rows, err := Scaling(cfg, []float64{0.002, 0.004})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Vertices <= rows[0].Vertices {
		t.Error("vertex counts not increasing")
	}
	for _, r := range rows {
		if r.AvgIterations < 1 {
			t.Errorf("iterations = %v", r.AvgIterations)
		}
	}
}

func TestHashing(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Hashing(f, []int{10, 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// More curves → thinner buckets (the §3 claim).
	if rows[1].MeanBucket > rows[0].MeanBucket+1e-9 {
		t.Errorf("mean bucket should shrink: k=10 %v, k=50 %v",
			rows[0].MeanBucket, rows[1].MeanBucket)
	}
	for _, r := range rows {
		if r.HitRate < 0.5 {
			t.Errorf("k=%d hit rate %v too low", r.Curves, r.HitRate)
		}
	}
}

func TestPlans(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Plans(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PlannedChecks > r.NaiveChecks {
			t.Errorf("%s: planned %d checks > naive %d", r.Query, r.PlannedChecks, r.NaiveChecks)
		}
	}
}

func TestSpearman(t *testing.T) {
	// Perfect inverse relationship.
	pts := []Fig10Point{{1, 100}, {2, 50}, {4, 25}, {8, 12}, {16, 6}}
	if rho := Spearman(pts); rho > -0.99 {
		t.Errorf("rho = %v, want ≈ -1", rho)
	}
	if Spearman(pts[:2]) != 0 {
		t.Error("too few points should yield 0")
	}
	sorted := SortedVS([]Fig10Point{{3, 1}, {1, 2}, {2, 3}})
	if sorted[0].VS != 1 || sorted[2].VS != 3 {
		t.Errorf("SortedVS = %v", sorted)
	}
}

func TestChamferComparison(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Chamfer(f, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Queries != 8 {
		t.Fatalf("queries = %d", r.Queries)
	}
	// Both methods should retrieve the right class most of the time on
	// lightly distorted queries...
	if r.GeoSIRHits < 6 {
		t.Errorf("GeoSIR hits = %d/8", r.GeoSIRHits)
	}
	// ...but chamfer matching pays its full per-image scan (the paper's
	// "lengthy computations on every extracted contour per query").
	if r.ChamferMicros <= 0 || r.GeoSIRMicros <= 0 {
		t.Errorf("timings: chamfer %v µs, geosir %v µs", r.ChamferMicros, r.GeoSIRMicros)
	}
}

func TestExtIndexIO(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ExtIndexIO(f, []int{4, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.IndexBlocks == 0 {
			t.Errorf("buffer %d: no index blocks", r.BufferBlocks)
		}
		if r.ReadsPerQry <= 0 {
			t.Errorf("buffer %d: no reads recorded", r.BufferBlocks)
		}
	}
	// A larger buffer must not read more.
	if rows[1].ReadsPerQry > rows[0].ReadsPerQry+1e-9 {
		t.Errorf("64-block buffer (%v) reads more than 4-block (%v)",
			rows[1].ReadsPerQry, rows[0].ReadsPerQry)
	}
	if rows[1].HitRate < rows[0].HitRate {
		t.Errorf("hit rate should grow with buffer: %v vs %v", rows[0].HitRate, rows[1].HitRate)
	}
}

func TestFamilyAblation(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := FamilyAblation(f, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.HitRate < 0.4 {
			t.Errorf("%s: hit rate %v too low", r.Name, r.HitRate)
		}
		if r.MeanBucket <= 0 {
			t.Errorf("%s: empty buckets", r.Name)
		}
	}
}

func TestQuality(t *testing.T) {
	f, err := BuildFixture(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Quality(f, []float64{0.01, 0.08}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Light distortion retrieves the right class almost always.
	if rows[0].P1 < 0.8 {
		t.Errorf("P@1 at 1%% distortion = %v", rows[0].P1)
	}
	// Precision can only degrade (weakly) with noise.
	if rows[1].P1 > rows[0].P1+0.11 {
		t.Errorf("P@1 grew with distortion: %v -> %v", rows[0].P1, rows[1].P1)
	}
	for _, r := range rows {
		if r.P5 < r.P1 || r.MRR < r.P1-1e-9 || r.MRR > 1 {
			t.Errorf("inconsistent row %+v", r)
		}
	}
}
