// Package experiments regenerates every figure of the paper's evaluation:
// the discrimination example of Figure 1, the distortion robustness of
// Figure 2, the hash-curve area function of Figure 5, the I/O studies of
// Figures 7 and 8 (plus the §4.2 local-optimization claim), the
// selectivity law of Figure 10, and the text's complexity claims
// (polylogarithmic retrieval, logarithmic hashing). The drivers are
// shared by cmd/experiments and by the repository's benchmarks.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/extstore"
	"repro/internal/geohash"
	"repro/internal/geom"
	"repro/internal/synth"
)

// Config scales an experiment fixture.
type Config struct {
	// Scale is the fraction of the paper's 10,000-image base to generate.
	Scale float64
	// Seed drives all synthetic generation.
	Seed int64
	// Queries is the size of the query workload (the paper uses 15).
	Queries int
	// QueryDistortion jitters query shapes (sketch imprecision).
	QueryDistortion float64
	// HashCurves is the curve-family size for characteristic quadruples.
	HashCurves int
	// CoreOpts tunes the matching engine; zero value uses defaults.
	CoreOpts core.Options
}

// DefaultConfig returns the configuration used by cmd/experiments: 2% of
// the paper's base (200 images) — large enough to show every trend, small
// enough to run in seconds. Pass a larger Scale to approach the paper's
// absolute numbers.
func DefaultConfig() Config {
	opts := core.DefaultOptions()
	// α = 0.065 yields the paper's ≈10 normalized copies per shape on
	// this synthetic domain (§4.1: "each shape is stored in average 10
	// times in our shape base").
	opts.Alpha = 0.065
	return Config{
		Scale:           0.02,
		Seed:            1,
		Queries:         15,
		QueryDistortion: 0.02,
		HashCurves:      50,
		CoreOpts:        opts,
	}
}

// Fixture is a generated image base with its retrieval index, external
// records, and query workload.
type Fixture struct {
	Cfg     Config
	Images  []synth.Image
	Base    *core.Base
	Family  *geohash.Family
	Records []extstore.Record
	Queries []geom.Poly
}

// BuildFixture generates the synthetic base per the paper's statistics
// (§4.1), freezes the matching index, computes the per-entry
// characteristic quadruples, and assembles the external-storage records.
func BuildFixture(cfg Config) (*Fixture, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.02
	}
	if cfg.Queries <= 0 {
		cfg.Queries = 15
	}
	if cfg.HashCurves <= 0 {
		cfg.HashCurves = 50
	}
	spec := synth.PaperSpec(cfg.Scale, cfg.Seed)
	images := synth.GenerateBase(spec)

	base := core.NewBase(cfg.CoreOpts)
	for _, img := range images {
		for _, s := range img.Shapes {
			if _, err := base.AddShape(img.ID, s); err != nil {
				return nil, fmt.Errorf("experiments: adding shape of image %d: %w", img.ID, err)
			}
		}
	}
	if err := base.Freeze(); err != nil {
		return nil, err
	}

	family, err := geohash.NewFamily(cfg.HashCurves)
	if err != nil {
		return nil, err
	}

	entries := base.Entries()
	records := make([]extstore.Record, 0, len(entries))
	for ei := range entries {
		e := &entries[ei]
		if len(e.Poly.Pts) > extstore.MaxVertices {
			continue // oversized outliers are not stored externally
		}
		records = append(records, extstore.Record{
			EntryID: int32(ei),
			ShapeID: int32(e.ShapeID),
			Image:   int32(base.Shape(e.ShapeID).Image),
			Quad:    family.Characteristic(e.Poly.Pts),
			Closed:  e.Poly.Closed,
			Pts:     e.Poly.Pts,
			Inv:     e.Inv,
		})
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1000))
	queries := synth.Queries(rng, images, cfg.Queries, cfg.QueryDistortion)

	return &Fixture{
		Cfg:     cfg,
		Images:  images,
		Base:    base,
		Family:  family,
		Records: records,
		Queries: queries,
	}, nil
}

// Summary describes the fixture in the units the paper reports (§4.1).
func (f *Fixture) Summary() string {
	blocks := 0
	bytes := 0
	for i := range f.Records {
		bytes += f.Records[i].EncodedSize()
	}
	if len(f.Records) > 0 {
		blocks = (bytes + extstore.BlockSize - 1) / extstore.BlockSize
	}
	shapes := f.Base.NumShapes()
	copies := float64(f.Base.NumEntries()) / float64(max(1, shapes))
	return fmt.Sprintf(
		"images=%d shapes=%d stored-copies=%d (%.1f per shape) vertices=%d ~%d blocks (%.1f MB at 1KB blocks)",
		len(f.Images), shapes, f.Base.NumEntries(), copies,
		f.Base.NumVertices(), blocks, float64(bytes)/1e6)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
