package extstore

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/iofault"
)

// TestDiskReadReturnsCopy is the regression test for the aliasing bug:
// Disk.Read used to return its internal block slice by reference, so a
// caller mutating the result silently corrupted the "disk". The returned
// slice must now be the caller's to scribble on.
func TestDiskReadReturnsCopy(t *testing.T) {
	d := NewDisk()
	orig := []byte{1, 2, 3, 4, 5}
	if err := d.Write(0, orig); err != nil {
		t.Fatal(err)
	}
	got, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		got[i] = 0xEE
	}
	again, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range orig {
		if again[i] != b {
			t.Fatalf("byte %d: disk block mutated through Read's result (%d != %d)", i, again[i], b)
		}
	}
	// Writes must not retain the caller's buffer either.
	src := []byte{9, 9, 9}
	if err := d.Write(1, src); err != nil {
		t.Fatal(err)
	}
	src[0] = 0
	blk, err := d.Read(1)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 9 {
		t.Fatal("disk block aliases the caller's write buffer")
	}
}

// TestStoreReadEntryUnaffectedByCallerMutation drives the aliasing
// guarantee through the full read path: mutating a decoded record's point
// slice must not change what a later read of the same entry returns —
// including when the block is served from the buffer-pool cache.
func TestStoreReadEntryUnaffectedByCallerMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	st, err := NewStore(randomRecords(rng, 40), LayoutMean, 4)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := st.ReadEntry(5)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), r1.Pts[0].X, r1.Pts[0].Y)
	r1.Pts[0].X, r1.Pts[0].Y = -777, -777
	st.FlushPool() // force the next read to go back to the disk
	r2, err := st.ReadEntry(5)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Pts[0].X != want[0] || r2.Pts[0].Y != want[1] {
		t.Fatalf("record mutated through a previous read: got %v, want (%v, %v)",
			r2.Pts[0], want[0], want[1])
	}
}

// TestDiskInjectedWriteFailure checks that an injected write error
// surfaces, leaves the target block untouched, and does not count as a
// write I/O.
func TestDiskInjectedWriteFailure(t *testing.T) {
	d := NewDisk()
	if err := d.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	w0 := d.Writes()
	d.InjectFaults(new(iofault.BlockPlan).FailWrite(0))
	err := d.Write(0, []byte{7, 7, 7})
	if !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if d.Writes() != w0 {
		t.Fatalf("failed write counted as I/O: %d vs %d", d.Writes(), w0)
	}
	d.InjectFaults(nil)
	blk, err := d.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if blk[0] != 1 || blk[1] != 2 || blk[2] != 3 {
		t.Fatalf("failed write modified the block: %v", blk)
	}
}

// TestDiskInjectedReadFailurePropagates drives an injected read error
// through the buffer pool and Store.ReadEntry, then checks the store
// recovers once the fault plan is removed.
func TestDiskInjectedReadFailurePropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	st, err := NewStore(randomRecords(rng, 60), LayoutLex, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the very next disk read; the pool is cold so ReadEntry must hit it.
	st.FlushPool()
	st.Disk().InjectFaults(new(iofault.BlockPlan).FailRead(0))
	if _, err := st.ReadEntry(3); !errors.Is(err, iofault.ErrInjected) {
		t.Fatalf("want injected read error through ReadEntry, got %v", err)
	}
	st.Disk().InjectFaults(nil)
	if _, err := st.ReadEntry(3); err != nil {
		t.Fatalf("store did not recover after fault removal: %v", err)
	}
}

// TestTornBlockWriteDetected models a crash mid-block-write: the disk
// persists only a prefix while reporting success. The damage must be
// caught by Verify and by ReadEntry's record decoding — never a silently
// shortened record set.
func TestTornBlockWriteDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	records := randomRecords(rng, 60)
	st, err := NewStore(records, LayoutMean, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("pristine store fails verification: %v", err)
	}
	// Re-write block 0 torn at a few prefix lengths that cannot align with
	// a record boundary (decode needs at least a header).
	orig, err := st.Disk().Read(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{1, 7, len(orig) / 2} {
		if keep >= len(orig) {
			continue
		}
		st.Disk().InjectFaults(new(iofault.BlockPlan).TornWrite(0, keep))
		if err := st.Disk().Write(0, orig); err != nil {
			t.Fatalf("keep=%d: torn write surfaced an error: %v", keep, err)
		}
		st.Disk().InjectFaults(nil)
		if err := st.Verify(); err == nil {
			t.Fatalf("keep=%d: torn block passed verification", keep)
		} else if !strings.Contains(err.Error(), "block 0") {
			t.Fatalf("keep=%d: verification error does not name the block: %v", keep, err)
		}
		// Restore for the next iteration.
		if err := st.Disk().Write(0, orig); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Verify(); err != nil {
		t.Fatalf("restored store fails verification: %v", err)
	}
}

// TestVerifyCatchesIndexSkew corrupts the location index and checks Verify
// reports the inconsistency in both directions.
func TestVerifyCatchesIndexSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	st, err := NewStore(randomRecords(rng, 40), LayoutMedian, 4)
	if err != nil {
		t.Fatal(err)
	}
	var id int32
	var bi int32
	for k, v := range st.loc {
		id, bi = k, v
		break
	}
	st.loc[id] = bi + 1 // point the entry at the wrong block
	if err := st.Verify(); err == nil {
		t.Fatal("skewed index passed verification")
	}
	st.loc[id] = bi
	delete(st.loc, id) // drop an entry from the index
	if err := st.Verify(); err == nil {
		t.Fatal("missing index entry passed verification")
	}
	st.loc[id] = bi
	if err := st.Verify(); err != nil {
		t.Fatalf("restored index fails verification: %v", err)
	}
}

// TestNewStoreRejectsUnknownLayout pins the constructor validation added
// alongside the fault plumbing.
func TestNewStoreRejectsUnknownLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := NewStore(randomRecords(rng, 4), Layout("no-such-layout"), 2); err == nil {
		t.Fatal("unknown layout accepted")
	}
}
