package extstore

import (
	"math/rand"
	"testing"

	"repro/internal/geohash"
	"repro/internal/geom"
)

func TestRecordMinimalAndMaximal(t *testing.T) {
	// Zero-vertex record (legal at the serialization layer).
	r := Record{EntryID: 1}
	buf, err := r.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, n, err := DecodeRecord(buf)
	if err != nil || n != recordHeaderSize || len(got.Pts) != 0 {
		t.Errorf("zero-vertex round trip: %v %d %v", got, n, err)
	}
	// Exactly MaxVertices fits a block.
	big := Record{EntryID: 2, Pts: make([]geom.Point, MaxVertices)}
	if big.EncodedSize() > BlockSize {
		t.Fatalf("MaxVertices record (%d bytes) exceeds a block", big.EncodedSize())
	}
	if _, err := big.Encode(nil); err != nil {
		t.Errorf("MaxVertices record should encode: %v", err)
	}
}

func TestDecodeMultipleRecordsFromBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []byte
	var want []Record
	for i := 0; i < 4; i++ {
		r := randomRecord(rng, int32(i))
		r.Pts = r.Pts[:8]
		want = append(want, r)
		var err error
		buf, err = r.Encode(buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; len(buf) > 0; i++ {
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.EntryID != want[i].EntryID {
			t.Errorf("record %d: id %d", i, got.EntryID)
		}
		buf = buf[n:]
	}
}

func TestBufferPoolCapacityFloor(t *testing.T) {
	d := NewDisk()
	if err := d.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	p := NewBufferPool(d, 0) // clamps to 1
	if p.Cap() != 1 {
		t.Errorf("Cap = %d", p.Cap())
	}
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(0); err != nil {
		t.Fatal(err)
	}
	if p.Hits() != 1 {
		t.Errorf("hits = %d", p.Hits())
	}
	if _, err := p.Get(99); err == nil {
		t.Error("missing block should error through the pool")
	}
}

func TestStoreSingleRecordEveryLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rec := []Record{randomRecord(rng, 0)}
	for _, layout := range Layouts() {
		st, err := NewStore(rec, layout, 2)
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		if st.NumBlocks() != 1 || st.NumRecords() != 1 {
			t.Errorf("%s: blocks=%d records=%d", layout, st.NumBlocks(), st.NumRecords())
		}
		if _, err := st.ReadEntry(0); err != nil {
			t.Errorf("%s: %v", layout, err)
		}
	}
}

func TestStoreDuplicateEntryIDRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	recs := []Record{randomRecord(rng, 5), randomRecord(rng, 5)}
	if _, err := NewStore(recs, LayoutLex, 2); err == nil {
		t.Error("duplicate entry ids should fail")
	}
}

func TestIdenticalQuadsStable(t *testing.T) {
	// All records share one quadruple: every sort layout must fall back
	// to the entry-id tiebreak and still place everything.
	rng := rand.New(rand.NewSource(4))
	recs := make([]Record, 40)
	for i := range recs {
		recs[i] = randomRecord(rng, int32(i))
		recs[i].Quad = geohash.Quadruple{7, 7, 7, 7}
	}
	for _, layout := range Layouts() {
		blocks, _, err := packRecords(recs, layout, BlockSize)
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		seen := 0
		for _, blk := range blocks {
			seen += len(blk)
		}
		if seen != len(recs) {
			t.Errorf("%s: placed %d of %d", layout, seen, len(recs))
		}
	}
	// Sorted layouts must order ties by entry id.
	blocks, _, err := packRecords(recs, LayoutMean, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	last := int32(-1)
	for _, blk := range blocks {
		for _, ri := range blk {
			if recs[ri].EntryID < last {
				t.Fatal("tie order not by entry id")
			}
			last = recs[ri].EntryID
		}
	}
}

func TestFlushPoolForcesColdReads(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	recs := randomRecords(rng, 30)
	st, err := NewStore(recs, LayoutMean, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := st.ReadEntry(r.EntryID); err != nil {
			t.Fatal(err)
		}
	}
	warm := st.Stats().DiskReads
	st.ResetStats()
	for _, r := range recs {
		if _, err := st.ReadEntry(r.EntryID); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().DiskReads != 0 {
		t.Errorf("warm pass read %d blocks", st.Stats().DiskReads)
	}
	st.ResetStats()
	st.FlushPool()
	for _, r := range recs {
		if _, err := st.ReadEntry(r.EntryID); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().DiskReads != warm {
		t.Errorf("cold pass read %d blocks, want %d", st.Stats().DiskReads, warm)
	}
}
