// Package extstore simulates the external storage of the shape base (§4):
// fixed-size disk blocks, an LRU buffer pool with I/O accounting, a
// compact binary record format for normalized shape copies, and the four
// layout strategies the paper evaluates — sorting by the characteristic
// hashing curves (mean / lexicographic / median, §4.1) and the local
// optimization of the average similarity measure (§4.2).
//
// Figures 7 and 8 report *numbers of I/O operations*, so a faithful
// block/buffer model reproduces them in their native unit without
// needing a physical disk.
package extstore

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geohash"
	"repro/internal/geom"
)

// BlockSize is the disk block size in bytes. The paper uses 1 Kbyte
// blocks holding around 5 records of ~200 bytes each.
const BlockSize = 1024

// Record is the per-normalized-copy information stored externally:
// identity, the characteristic hash quadruple, the normalized vertices
// (float32, which is what makes a ~20-vertex record ≈ 200 bytes), and the
// inverse normalization transform needed by the θ angle computation of
// the query processor (§5.3).
type Record struct {
	EntryID int32
	ShapeID int32
	Image   int32
	Quad    geohash.Quadruple
	Closed  bool
	Pts     []geom.Point
	Inv     geom.Transform
}

// recordHeaderSize is the fixed part: 3×int32 ids + 4×uint16 quad +
// 1 byte flags + 2 bytes vertex count + 4×float32 transform.
const recordHeaderSize = 12 + 8 + 1 + 2 + 16

// EncodedSize returns the on-disk size of r in bytes.
func (r *Record) EncodedSize() int { return recordHeaderSize + 8*len(r.Pts) }

// MaxVertices is the largest vertex count a record may carry and still
// fit a block.
const MaxVertices = (BlockSize - recordHeaderSize) / 8

// Encode appends the binary representation of r to dst and returns the
// extended slice.
func (r *Record) Encode(dst []byte) ([]byte, error) {
	if len(r.Pts) > MaxVertices {
		return nil, fmt.Errorf("extstore: record %d has %d vertices, max %d per block",
			r.EntryID, len(r.Pts), MaxVertices)
	}
	var buf [recordHeaderSize]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(r.EntryID))
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.ShapeID))
	binary.LittleEndian.PutUint32(buf[8:], uint32(r.Image))
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint16(buf[12+2*i:], uint16(r.Quad[i]))
	}
	if r.Closed {
		buf[20] = 1
	}
	binary.LittleEndian.PutUint16(buf[21:], uint16(len(r.Pts)))
	binary.LittleEndian.PutUint32(buf[23:], math.Float32bits(float32(r.Inv.S)))
	binary.LittleEndian.PutUint32(buf[27:], math.Float32bits(float32(r.Inv.Theta)))
	binary.LittleEndian.PutUint32(buf[31:], math.Float32bits(float32(r.Inv.T.X)))
	binary.LittleEndian.PutUint32(buf[35:], math.Float32bits(float32(r.Inv.T.Y)))
	dst = append(dst, buf[:]...)
	var pb [8]byte
	for _, p := range r.Pts {
		binary.LittleEndian.PutUint32(pb[0:], math.Float32bits(float32(p.X)))
		binary.LittleEndian.PutUint32(pb[4:], math.Float32bits(float32(p.Y)))
		dst = append(dst, pb[:]...)
	}
	return dst, nil
}

// DecodeRecord parses one record from the front of src, returning the
// record and the number of bytes consumed.
func DecodeRecord(src []byte) (Record, int, error) {
	if len(src) < recordHeaderSize {
		return Record{}, 0, fmt.Errorf("extstore: truncated record header (%d bytes)", len(src))
	}
	var r Record
	r.EntryID = int32(binary.LittleEndian.Uint32(src[0:]))
	r.ShapeID = int32(binary.LittleEndian.Uint32(src[4:]))
	r.Image = int32(binary.LittleEndian.Uint32(src[8:]))
	for i := 0; i < 4; i++ {
		r.Quad[i] = int(binary.LittleEndian.Uint16(src[12+2*i:]))
	}
	r.Closed = src[20] == 1
	n := int(binary.LittleEndian.Uint16(src[21:]))
	r.Inv.S = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[23:])))
	r.Inv.Theta = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[27:])))
	r.Inv.T.X = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[31:])))
	r.Inv.T.Y = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[35:])))
	total := recordHeaderSize + 8*n
	if len(src) < total {
		return Record{}, 0, fmt.Errorf("extstore: truncated record body: want %d bytes, have %d", total, len(src))
	}
	r.Pts = make([]geom.Point, n)
	for i := 0; i < n; i++ {
		off := recordHeaderSize + 8*i
		r.Pts[i] = geom.Pt(
			float64(math.Float32frombits(binary.LittleEndian.Uint32(src[off:]))),
			float64(math.Float32frombits(binary.LittleEndian.Uint32(src[off+4:]))),
		)
	}
	return r, total, nil
}
