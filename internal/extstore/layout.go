package extstore

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Layout selects how records are arranged into disk blocks.
type Layout string

// The four layouts of §4.
const (
	// LayoutMean sorts by the curve closest to the mean of the
	// characteristic quadruple — method (i) of §4.1.
	LayoutMean Layout = "mean-curve"
	// LayoutLex sorts by lexicographic order of the quadruple —
	// method (ii).
	LayoutLex Layout = "lexicographic"
	// LayoutMedian sorts by the median-near-mean element — method (iii).
	LayoutMedian Layout = "median-curve"
	// LayoutLocalOpt greedily packs each block with the remaining record
	// minimizing the average similarity measure to the block's current
	// contents (§4.2).
	LayoutLocalOpt Layout = "local-opt"
)

// Layouts lists all layout strategies in presentation order.
func Layouts() []Layout {
	return []Layout{LayoutMean, LayoutLex, LayoutMedian, LayoutLocalOpt}
}

// Valid reports whether l names one of the defined layout strategies.
func (l Layout) Valid() bool {
	switch l {
	case LayoutMean, LayoutLex, LayoutMedian, LayoutLocalOpt:
		return true
	}
	return false
}

// packRecords partitions record indices into blocks per the layout. The
// returned comparisons counter feeds the rehash-cost model.
func packRecords(records []Record, layout Layout, blockSize int) (blocks [][]int, comparisons int, err error) {
	switch layout {
	case LayoutMean, LayoutLex, LayoutMedian:
		order := make([]int, len(records))
		for i := range order {
			order[i] = i
		}
		cmp := 0
		sort.SliceStable(order, func(a, b int) bool {
			cmp++
			ra, rb := &records[order[a]], &records[order[b]]
			switch layout {
			case LayoutMean:
				ma, mb := ra.Quad.Mean(), rb.Quad.Mean()
				if ma != mb {
					return ma < mb
				}
			case LayoutMedian:
				ma, mb := ra.Quad.MedianNearMean(), rb.Quad.MedianNearMean()
				if ma != mb {
					return ma < mb
				}
			}
			// All methods refine ties by the full quadruple so that a
			// coarse primary key (mean/median) still clusters
			// fine-grained neighbors; entry id is the final tiebreak.
			if ra.Quad != rb.Quad {
				return ra.Quad.Less(rb.Quad)
			}
			return ra.EntryID < rb.EntryID
		})
		return packSequential(records, order, blockSize), cmp, nil
	case LayoutLocalOpt:
		b, cmp := packLocalOpt(records, blockSize)
		return b, cmp, nil
	default:
		return nil, 0, fmt.Errorf("extstore: unknown layout %q", layout)
	}
}

// packSequential fills blocks in the given order, starting a new block
// whenever the next record does not fit.
func packSequential(records []Record, order []int, blockSize int) [][]int {
	var blocks [][]int
	var cur []int
	size := 0
	for _, idx := range order {
		sz := records[idx].EncodedSize()
		if size+sz > blockSize && len(cur) > 0 {
			blocks = append(blocks, cur)
			cur, size = nil, 0
		}
		cur = append(cur, idx)
		size += sz
	}
	if len(cur) > 0 {
		blocks = append(blocks, cur)
	}
	return blocks
}

// featureVec is the fast stand-in for the similarity measure used during
// layout: the normalized copy resampled to featurePts boundary points.
// Two normalized copies with small average point distance have nearby
// feature vectors, which is all the greedy packing needs.
const featurePts = 16

func recordFeature(r *Record) [2 * featurePts]float64 {
	var v [2 * featurePts]float64
	p := geom.Poly{Pts: r.Pts, Closed: r.Closed}
	for i, s := range p.Resample(featurePts) {
		v[2*i] = s.X
		v[2*i+1] = s.Y
	}
	return v
}

func featDist(a, b *[2 * featurePts]float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s // squared; monotone in the true distance, enough for argmin
}

// packLocalOpt implements §4.2: the first record of the first block is
// chosen by a heuristic rule (smallest lexicographic quadruple); each
// subsequent record of a block minimizes the average measure to the
// records already in the block; the first record of each next block
// minimizes the average distance to the first records of the previous
// five blocks. Candidate scans are pruned to a window around the anchor
// in the lexicographically sorted quadruple order, which preserves the
// greedy's behavior (geometric neighbors have neighboring quadruples) at
// tractable cost.
func packLocalOpt(records []Record, blockSize int) ([][]int, int) {
	n := len(records)
	if n == 0 {
		return nil, 0
	}
	feats := make([][2 * featurePts]float64, n)
	for i := range records {
		feats[i] = recordFeature(&records[i])
	}
	// Lexicographic rank: a doubly linked list over the sorted order lets
	// us remove placed records in O(1) and walk outward from any anchor.
	order := make([]int, n) // rank → record index
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := &records[order[a]], &records[order[b]]
		if ra.Quad != rb.Quad {
			return ra.Quad.Less(rb.Quad)
		}
		return ra.EntryID < rb.EntryID
	})
	rank := make([]int, n) // record index → rank
	for r, idx := range order {
		rank[idx] = r
	}
	// Live-rank finders with path compression: findR(r) is the smallest
	// live rank ≥ r, findL(r) the largest live rank ≤ r. Anchors may have
	// been placed long ago, so a linked list with stale entry pointers
	// would be wrong; the DSU-style finders stay correct from any rank.
	live := make([]bool, n)
	parR := make([]int, n+1)
	parL := make([]int, n+1) // shifted by one so -1 maps to 0
	for r := range live {
		live[r] = true
		parR[r] = r
		parL[r+1] = r + 1
	}
	parR[n] = n
	parL[0] = 0
	findR := func(r int) int {
		root := r
		for root < n && !live[root] {
			nxt := parR[root]
			if nxt <= root {
				nxt = root + 1
			}
			root = nxt
		}
		if root > n {
			root = n
		}
		for r < root {
			nxt := parR[r]
			if nxt <= r {
				nxt = r + 1
			}
			parR[r] = root
			r = nxt
		}
		return root
	}
	findL := func(r int) int { // returns -1 when none
		p := r + 1
		root := p
		for root > 0 && !live[root-1] {
			nxt := parL[root]
			if nxt >= root {
				nxt = root - 1
			}
			root = nxt
		}
		for p > root {
			nxt := parL[p]
			if nxt >= p {
				nxt = p - 1
			}
			parL[p] = root
			p = nxt
		}
		return root - 1
	}
	remove := func(idx int) { live[rank[idx]] = false }
	comparisons := 0

	const window = 64

	// candidates walks outward from the anchor's rank collecting up to
	// `window` unplaced records on each side.
	candidates := func(anchor int) []int {
		var out []int
		for r, cnt := findR(rank[anchor]), 0; cnt < window && r < n; cnt++ {
			out = append(out, order[r])
			r = findR(r + 1)
		}
		for l, cnt := findL(rank[anchor]), 0; cnt < window && l >= 0; cnt++ {
			out = append(out, order[l])
			l = findL(l - 1)
		}
		return out
	}

	pickMin := func(refs [][2 * featurePts]float64, anchor int) int {
		best, bestD := -1, math.Inf(1)
		for _, c := range candidates(anchor) {
			var s float64
			for r := range refs {
				s += featDist(&feats[c], &refs[r])
				comparisons++
			}
			if len(refs) > 0 {
				s /= float64(len(refs))
			}
			if s < bestD {
				best, bestD = c, s
			}
		}
		return best
	}

	// Heuristic first record: smallest quadruple.
	first := order[0]
	remove(first)

	var blocks [][]int
	var blockFirsts []int
	cur := []int{first}
	size := records[first].EncodedSize()
	blockFirsts = append(blockFirsts, first)
	placed := 1

	for placed < n {
		// Fill the current block.
		refs := make([][2 * featurePts]float64, len(cur))
		for i, idx := range cur {
			refs[i] = feats[idx]
		}
		nextRec := pickMin(refs, cur[0])
		if nextRec >= 0 && size+records[nextRec].EncodedSize() <= blockSize {
			remove(nextRec)
			cur = append(cur, nextRec)
			size += records[nextRec].EncodedSize()
			placed++
			continue
		}
		// Block full (or no candidate fits): start the next block with the
		// record closest on average to the first records of the previous
		// five blocks.
		blocks = append(blocks, cur)
		lo := len(blockFirsts) - 5
		if lo < 0 {
			lo = 0
		}
		var refFirsts [][2 * featurePts]float64
		for _, fi := range blockFirsts[lo:] {
			refFirsts = append(refFirsts, feats[fi])
		}
		nf := pickMin(refFirsts, blockFirsts[len(blockFirsts)-1])
		if nf < 0 {
			// Window exhausted around the anchor: take the first unplaced
			// record in lexicographic order.
			if r := findR(0); r < n {
				nf = order[r]
			}
		}
		remove(nf)
		cur = []int{nf}
		size = records[nf].EncodedSize()
		blockFirsts = append(blockFirsts, nf)
		placed++
	}
	blocks = append(blocks, cur)
	return blocks, comparisons
}
