package extstore

import (
	"fmt"
	"time"
)

// Store is the external shape base: records packed into disk blocks under
// a layout strategy, read through an LRU buffer pool.
type Store struct {
	disk   *Disk
	pool   *BufferPool
	layout Layout
	loc    map[int32]int32 // entry id → block index
	nrec   int
}

// NewStore lays out the records, writes the blocks, and attaches a buffer
// pool of bufBlocks blocks. The block size is the paper's §4 1 Kbyte
// (BlockSize), so the figure-7/8 I/O counts keep their native unit; use
// NewStoreSize to model a different device.
func NewStore(records []Record, layout Layout, bufBlocks int) (*Store, error) {
	return NewStoreSize(records, layout, bufBlocks, BlockSize)
}

// NewStoreSize is NewStore with an explicit block size (a positive
// power of two, per NewDiskSize).
func NewStoreSize(records []Record, layout Layout, bufBlocks, blockSize int) (*Store, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("extstore: no records")
	}
	if !layout.Valid() {
		return nil, fmt.Errorf("extstore: unknown layout %q", layout)
	}
	blocks, _, err := packRecords(records, layout, blockSize)
	if err != nil {
		return nil, err
	}
	disk := NewDiskSize(blockSize)
	loc := make(map[int32]int32, len(records))
	for bi, blk := range blocks {
		var buf []byte
		for _, ri := range blk {
			r := &records[ri]
			if _, dup := loc[r.EntryID]; dup {
				return nil, fmt.Errorf("extstore: duplicate entry id %d", r.EntryID)
			}
			buf, err = r.Encode(buf)
			if err != nil {
				return nil, err
			}
			loc[r.EntryID] = int32(bi)
		}
		if err := disk.Write(bi, buf); err != nil {
			return nil, err
		}
	}
	disk.ResetStats() // building is not query I/O
	return &Store{
		disk:   disk,
		pool:   NewBufferPool(disk, bufBlocks),
		layout: layout,
		loc:    loc,
		nrec:   len(records),
	}, nil
}

// Layout returns the layout the store was built with.
func (s *Store) Layout() Layout { return s.layout }

// Disk exposes the underlying block device, primarily so tests can
// attach a fault plan or inspect the raw blocks.
func (s *Store) Disk() *Disk { return s.disk }

// Verify decodes every block and cross-checks the location index both
// ways: every stored record must be findable through loc, and every loc
// entry must point at a block that actually holds its record. It reads
// the raw blocks directly (no I/O accounting), so it is safe to run
// mid-experiment. A torn or corrupted block surfaces here as a decode
// error naming the block.
func (s *Store) Verify() error {
	found := make(map[int32]int32, s.nrec)
	for bi := 0; bi < len(s.disk.blocks); bi++ {
		data := s.disk.blocks[bi]
		for len(data) > 0 {
			r, n, err := DecodeRecord(data)
			if err != nil {
				return fmt.Errorf("extstore: verify: block %d: %w", bi, err)
			}
			if prev, dup := found[r.EntryID]; dup {
				return fmt.Errorf("extstore: verify: entry %d in blocks %d and %d", r.EntryID, prev, bi)
			}
			found[r.EntryID] = int32(bi)
			data = data[n:]
		}
	}
	if len(found) != len(s.loc) {
		return fmt.Errorf("extstore: verify: %d records on disk, %d indexed", len(found), len(s.loc))
	}
	for id, bi := range s.loc {
		if got, ok := found[id]; !ok || got != bi {
			return fmt.Errorf("extstore: verify: entry %d indexed at block %d but found at %d", id, bi, got)
		}
	}
	return nil
}

// NumBlocks returns the number of disk blocks in use.
func (s *Store) NumBlocks() int { return s.disk.NumBlocks() }

// NumRecords returns the number of stored records.
func (s *Store) NumRecords() int { return s.nrec }

// BytesUsed returns the total payload bytes across blocks.
func (s *Store) BytesUsed() int {
	total := 0
	for i := 0; i < s.disk.NumBlocks(); i++ {
		total += len(s.disk.blocks[i])
	}
	return total
}

// ReadEntry fetches the record with the given entry id through the buffer
// pool (one I/O operation if the block is not resident).
func (s *Store) ReadEntry(entryID int32) (Record, error) {
	bi, ok := s.loc[entryID]
	if !ok {
		return Record{}, fmt.Errorf("extstore: unknown entry id %d", entryID)
	}
	data, err := s.pool.Get(int(bi))
	if err != nil {
		return Record{}, err
	}
	for len(data) > 0 {
		r, n, err := DecodeRecord(data)
		if err != nil {
			return Record{}, fmt.Errorf("extstore: block %d corrupt: %w", bi, err)
		}
		if r.EntryID == entryID {
			return r, nil
		}
		data = data[n:]
	}
	return Record{}, fmt.Errorf("extstore: entry %d missing from its block %d", entryID, bi)
}

// IOStats is a snapshot of the store's I/O counters.
type IOStats struct {
	DiskReads  int // blocks fetched from disk (buffer-pool misses)
	DiskWrites int
	PoolHits   int
	PoolMisses int
}

// Stats returns the current I/O counters.
func (s *Store) Stats() IOStats {
	return IOStats{
		DiskReads:  s.disk.Reads(),
		DiskWrites: s.disk.Writes(),
		PoolHits:   s.pool.Hits(),
		PoolMisses: s.pool.Misses(),
	}
}

// ResetStats zeroes the counters; the buffer-pool contents survive (use
// FlushPool for a cold cache).
func (s *Store) ResetStats() {
	s.disk.ResetStats()
	s.pool.ResetStats()
}

// FlushPool empties the buffer pool (cold-cache experiments).
func (s *Store) FlushPool() { s.pool.Flush() }

// RehashStats reports the cost of rebuilding the store under a new
// layout (§4.1: O(N log N) and I/O-bound for the sort layouts;
// §4.2: O(N^1.5 log N) comparison-bound but less I/O-intensive for the
// local optimization).
type RehashStats struct {
	Comparisons int           // key comparisons / measure evaluations
	BlockReads  int           // blocks read to extract records
	BlockWrites int           // blocks written for the new arrangement
	Elapsed     time.Duration // wall time of the in-memory rebuild
}

// Rehash rebuilds the store in place under the new layout and reports
// the cost. All records are read (sequential block scan), re-ordered,
// and rewritten.
func (s *Store) Rehash(layout Layout) (RehashStats, error) {
	start := time.Now()
	var stats RehashStats

	// Sequential scan of every block.
	var records []Record
	for bi := 0; bi < s.disk.NumBlocks(); bi++ {
		data, err := s.disk.Read(bi)
		if err != nil {
			return stats, err
		}
		stats.BlockReads++
		for len(data) > 0 {
			r, n, err := DecodeRecord(data)
			if err != nil {
				return stats, err
			}
			records = append(records, r)
			data = data[n:]
		}
	}

	blocks, cmp, err := packRecords(records, layout, s.disk.blockSize)
	if err != nil {
		return stats, err
	}
	stats.Comparisons = cmp

	disk := NewDiskSize(s.disk.blockSize)
	loc := make(map[int32]int32, len(records))
	for bi, blk := range blocks {
		var buf []byte
		for _, ri := range blk {
			buf, err = records[ri].Encode(buf)
			if err != nil {
				return stats, err
			}
			loc[records[ri].EntryID] = int32(bi)
		}
		if err := disk.Write(bi, buf); err != nil {
			return stats, err
		}
	}
	stats.BlockWrites = disk.Writes()

	s.disk = disk
	s.disk.ResetStats()
	s.pool = NewBufferPool(s.disk, s.pool.Cap())
	s.layout = layout
	s.loc = loc
	stats.Elapsed = time.Since(start)
	return stats, nil
}
