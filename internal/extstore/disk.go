package extstore

import (
	"container/list"
	"fmt"
	"os"

	"repro/internal/iofault"
)

// Disk is a simulated block device: an array of fixed-size blocks with
// read/write accounting and optional fault injection (failed reads and
// writes, torn block writes) for crash-safety tests.
type Disk struct {
	blockSize int
	blocks    [][]byte
	reads     int
	writes    int
	faults    *iofault.BlockPlan
}

// NewDisk creates an empty disk whose block size is the operating
// system's page size, so one simulated block read corresponds to one
// page touched on the real mmap-served path (GSIR3 block accounting).
// Use NewDiskSize(BlockSize) for the paper's §4 1 Kbyte experiments.
func NewDisk() *Disk { return NewDiskSize(os.Getpagesize()) }

// NewDiskSize creates an empty disk with the given block size, which
// must be a positive power of two and a multiple of the 8-byte section
// alignment the GSIR3 writer guarantees — the same invariant that makes
// mapped sections castable lets simulated blocks tile them exactly.
// An invalid size is a programming error and panics.
func NewDiskSize(blockSize int) *Disk {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 || blockSize%8 != 0 {
		panic(fmt.Sprintf("extstore: block size %d must be a positive power of two ≥ 8", blockSize))
	}
	return &Disk{blockSize: blockSize}
}

// BlockSize returns this disk's block size in bytes.
func (d *Disk) BlockSize() int { return d.blockSize }

// NumBlocks returns the number of allocated blocks.
func (d *Disk) NumBlocks() int { return len(d.blocks) }

// Reads returns the number of block reads served.
func (d *Disk) Reads() int { return d.reads }

// Writes returns the number of block writes performed.
func (d *Disk) Writes() int { return d.writes }

// ResetStats zeroes the I/O counters.
func (d *Disk) ResetStats() { d.reads, d.writes = 0, 0 }

// InjectFaults attaches a fault plan consulted on every subsequent read
// and write; nil removes injection. Intended for tests only.
func (d *Disk) InjectFaults(p *iofault.BlockPlan) { d.faults = p }

// Write stores data as block idx (allocating as needed) and counts one
// write I/O. data must not exceed the disk's block size. An injected
// failure leaves the block untouched and does not count as a write; an
// injected torn write persists only a prefix of data while still
// reporting success (the crash-mid-write model — callers discover the
// damage on read).
func (d *Disk) Write(idx int, data []byte) error {
	if len(data) > d.blockSize {
		return fmt.Errorf("extstore: block %d overflows: %d bytes > block size %d", idx, len(data), d.blockSize)
	}
	keep, err := d.faults.NextWrite(len(data))
	if err != nil {
		return fmt.Errorf("extstore: writing block %d: %w", idx, err)
	}
	for len(d.blocks) <= idx {
		d.blocks = append(d.blocks, nil)
	}
	buf := make([]byte, keep)
	copy(buf, data[:keep])
	d.blocks[idx] = buf
	d.writes++
	return nil
}

// Read fetches a copy of block idx and counts one read I/O. The returned
// slice is the caller's to mutate: it never aliases the disk's internal
// storage (a previous version returned the internal slice by reference,
// so a caller scribbling on the result silently corrupted the "disk").
func (d *Disk) Read(idx int) ([]byte, error) {
	if idx < 0 || idx >= len(d.blocks) {
		return nil, fmt.Errorf("extstore: block %d out of range [0,%d)", idx, len(d.blocks))
	}
	if err := d.faults.NextRead(); err != nil {
		return nil, fmt.Errorf("extstore: reading block %d: %w", idx, err)
	}
	d.reads++
	out := make([]byte, len(d.blocks[idx]))
	copy(out, d.blocks[idx])
	return out, nil
}

// BufferPool is an LRU cache of disk blocks. Capacity is expressed in
// blocks (the paper's "internal memory buffer of size 100k" is 100
// blocks).
type BufferPool struct {
	disk   *Disk
	cap    int
	lru    *list.List // front = most recent; values are *poolEntry
	index  map[int]*list.Element
	hits   int
	misses int
}

type poolEntry struct {
	idx  int
	data []byte
}

// NewBufferPool wraps a disk with an LRU cache of the given capacity
// (≥ 1).
func NewBufferPool(d *Disk, capBlocks int) *BufferPool {
	if capBlocks < 1 {
		capBlocks = 1
	}
	return &BufferPool{
		disk:  d,
		cap:   capBlocks,
		lru:   list.New(),
		index: make(map[int]*list.Element),
	}
}

// Get returns block idx, reading through to the disk on a miss.
func (p *BufferPool) Get(idx int) ([]byte, error) {
	if el, ok := p.index[idx]; ok {
		p.hits++
		p.lru.MoveToFront(el)
		return el.Value.(*poolEntry).data, nil
	}
	p.misses++
	data, err := p.disk.Read(idx)
	if err != nil {
		return nil, err
	}
	el := p.lru.PushFront(&poolEntry{idx: idx, data: data})
	p.index[idx] = el
	if p.lru.Len() > p.cap {
		victim := p.lru.Back()
		p.lru.Remove(victim)
		delete(p.index, victim.Value.(*poolEntry).idx)
	}
	return data, nil
}

// Hits returns the number of cache hits.
func (p *BufferPool) Hits() int { return p.hits }

// Misses returns the number of cache misses (equals disk reads through
// this pool).
func (p *BufferPool) Misses() int { return p.misses }

// ResetStats zeroes the hit/miss counters (cache contents are kept).
func (p *BufferPool) ResetStats() { p.hits, p.misses = 0, 0 }

// Flush empties the cache.
func (p *BufferPool) Flush() {
	p.lru.Init()
	p.index = make(map[int]*list.Element)
}

// Cap returns the capacity in blocks.
func (p *BufferPool) Cap() int { return p.cap }
