package extstore

import (
	"math"
	"math/rand"
	"os"
	"testing"
	"testing/quick"

	"repro/internal/geohash"
	"repro/internal/geom"
)

func randomRecord(rng *rand.Rand, id int32) Record {
	n := 8 + rng.Intn(24)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64()*1.6-0.8)
	}
	return Record{
		EntryID: id,
		ShapeID: id / 4,
		Image:   id / 16,
		Quad: geohash.Quadruple{
			1 + rng.Intn(50), 1 + rng.Intn(50), 1 + rng.Intn(50), 1 + rng.Intn(50),
		},
		Closed: rng.Intn(2) == 0,
		Pts:    pts,
		Inv:    geom.Transform{S: 1 + rng.Float64(), Theta: rng.Float64(), T: geom.Pt(rng.Float64()*10, rng.Float64()*10)},
	}
}

func randomRecords(rng *rand.Rand, n int) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = randomRecord(rng, int32(i))
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		r := randomRecord(rng, int32(i))
		buf, err := r.Encode(nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != r.EncodedSize() {
			t.Fatalf("EncodedSize %d != actual %d", r.EncodedSize(), len(buf))
		}
		got, n, err := DecodeRecord(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if got.EntryID != r.EntryID || got.ShapeID != r.ShapeID || got.Image != r.Image ||
			got.Quad != r.Quad || got.Closed != r.Closed || len(got.Pts) != len(r.Pts) {
			t.Fatalf("metadata mismatch: %+v vs %+v", got, r)
		}
		for k := range r.Pts {
			if !got.Pts[k].Eq(r.Pts[k], 1e-6) { // float32 precision
				t.Fatalf("vertex %d: %v vs %v", k, got.Pts[k], r.Pts[k])
			}
		}
		if math.Abs(got.Inv.S-r.Inv.S) > 1e-6 || math.Abs(got.Inv.Theta-r.Inv.Theta) > 1e-6 {
			t.Fatalf("transform mismatch")
		}
	}
}

func TestRecordSizeStatistics(t *testing.T) {
	// The paper: ~20 vertices → ~200 bytes per record, ~5 per 1K block.
	r := Record{EntryID: 1, Pts: make([]geom.Point, 20)}
	if sz := r.EncodedSize(); sz < 150 || sz > 250 {
		t.Errorf("20-vertex record = %d bytes, want ≈200", sz)
	}
}

func TestRecordErrors(t *testing.T) {
	big := Record{Pts: make([]geom.Point, MaxVertices+1)}
	if _, err := big.Encode(nil); err == nil {
		t.Error("oversized record should fail")
	}
	if _, _, err := DecodeRecord([]byte{1, 2, 3}); err == nil {
		t.Error("truncated header should fail")
	}
	r := Record{EntryID: 5, Pts: make([]geom.Point, 4)}
	buf, _ := r.Encode(nil)
	if _, _, err := DecodeRecord(buf[:len(buf)-3]); err == nil {
		t.Error("truncated body should fail")
	}
}

func TestDiskReadWrite(t *testing.T) {
	d := NewDiskSize(BlockSize)
	if err := d.Write(0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := d.Write(3, []byte("sparse")); err != nil {
		t.Fatal(err)
	}
	if d.NumBlocks() != 4 {
		t.Errorf("NumBlocks = %d", d.NumBlocks())
	}
	got, err := d.Read(0)
	if err != nil || string(got) != "hello" {
		t.Errorf("Read = %q %v", got, err)
	}
	if _, err := d.Read(99); err == nil {
		t.Error("out-of-range read should fail")
	}
	if err := d.Write(0, make([]byte, BlockSize+1)); err == nil {
		t.Error("oversized block should fail")
	}
	if d.Reads() != 1 || d.Writes() != 2 {
		t.Errorf("counters: %d reads %d writes", d.Reads(), d.Writes())
	}
	d.ResetStats()
	if d.Reads() != 0 || d.Writes() != 0 {
		t.Error("ResetStats failed")
	}
}

func TestDiskBlockSizes(t *testing.T) {
	// The default disk models the real storage hierarchy: one block is
	// one OS page, matching the GSIR3 mmap-path accounting.
	if got := NewDisk().BlockSize(); got != os.Getpagesize() {
		t.Errorf("NewDisk block size = %d, want page size %d", got, os.Getpagesize())
	}
	if got := NewDiskSize(BlockSize).BlockSize(); got != BlockSize {
		t.Errorf("NewDiskSize(%d) block size = %d", BlockSize, got)
	}
	// Non-power-of-two and misaligned sizes violate the section
	// alignment contract and must be rejected at construction.
	for _, bad := range []int{0, -8, 1000, 12, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDiskSize(%d) should panic", bad)
				}
			}()
			NewDiskSize(bad)
		}()
	}
}

func TestBufferPoolLRU(t *testing.T) {
	d := NewDisk()
	for i := 0; i < 5; i++ {
		if err := d.Write(i, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	p := NewBufferPool(d, 2)
	mustGet := func(i int) {
		t.Helper()
		data, err := p.Get(i)
		if err != nil || data[0] != byte(i) {
			t.Fatalf("Get(%d) = %v %v", i, data, err)
		}
	}
	mustGet(0) // miss
	mustGet(1) // miss
	mustGet(0) // hit
	mustGet(2) // miss, evicts 1 (LRU)
	mustGet(0) // hit (still resident)
	mustGet(1) // miss (was evicted)
	if p.Hits() != 2 || p.Misses() != 4 {
		t.Errorf("hits=%d misses=%d", p.Hits(), p.Misses())
	}
	if d.Reads() != 4 {
		t.Errorf("disk reads = %d", d.Reads())
	}
	p.Flush()
	mustGet(0)
	if p.Misses() != 5 {
		t.Error("flush should empty the cache")
	}
}

func TestStoreBuildAndRead(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	records := randomRecords(rng, 200)
	for _, layout := range Layouts() {
		st, err := NewStore(records, layout, 10)
		if err != nil {
			t.Fatalf("%s: %v", layout, err)
		}
		if st.NumRecords() != 200 {
			t.Fatalf("%s: NumRecords = %d", layout, st.NumRecords())
		}
		// ~200 records × ~200B into 1K blocks: tens of blocks.
		if st.NumBlocks() < 20 || st.NumBlocks() > 200 {
			t.Errorf("%s: NumBlocks = %d", layout, st.NumBlocks())
		}
		// Every record must be retrievable and identical.
		for _, r := range records {
			got, err := st.ReadEntry(r.EntryID)
			if err != nil {
				t.Fatalf("%s: ReadEntry(%d): %v", layout, r.EntryID, err)
			}
			if got.ShapeID != r.ShapeID || len(got.Pts) != len(r.Pts) {
				t.Fatalf("%s: record %d corrupted", layout, r.EntryID)
			}
		}
		if _, err := st.ReadEntry(9999); err == nil {
			t.Errorf("%s: unknown entry should fail", layout)
		}
	}
	if _, err := NewStore(nil, LayoutMean, 4); err == nil {
		t.Error("empty store should fail")
	}
	if _, err := NewStore(records, Layout("bogus"), 4); err == nil {
		t.Error("unknown layout should fail")
	}
}

func TestStoreBlockUtilization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	records := randomRecords(rng, 500)
	st, err := NewStore(records, LayoutMean, 10)
	if err != nil {
		t.Fatal(err)
	}
	util := float64(st.BytesUsed()) / float64(st.NumBlocks()*BlockSize)
	if util < 0.6 {
		t.Errorf("block utilization = %.2f, want ≥ 0.6", util)
	}
}

func TestStoreIOAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	records := randomRecords(rng, 100)
	st, err := NewStore(records, LayoutMean, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stats() != (IOStats{}) {
		t.Errorf("fresh store stats: %+v", st.Stats())
	}
	if _, err := st.ReadEntry(0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.ReadEntry(0); err != nil {
		t.Fatal(err)
	}
	got := st.Stats()
	if got.DiskReads != 1 || got.PoolMisses != 1 || got.PoolHits != 1 {
		t.Errorf("stats after repeat read: %+v", got)
	}
}

// Sorted layouts must put records with equal keys adjacently; spot-check
// that mean-curve layout clusters identical quadruples in one block run.
func TestLayoutClustersSimilarQuads(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var records []Record
	// Three tight quad clusters.
	for c := 0; c < 3; c++ {
		base := 10 + c*15
		for i := 0; i < 30; i++ {
			r := randomRecord(rng, int32(len(records)))
			r.Quad = geohash.Quadruple{base, base + 1, base, base + 1}
			records = append(records, r)
		}
	}
	st, err := NewStore(records, LayoutMean, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Records of the same cluster must span a small contiguous block range.
	for c := 0; c < 3; c++ {
		minB, maxB := int32(1<<30), int32(-1)
		for i := 0; i < 30; i++ {
			bi := st.loc[int32(c*30+i)]
			if bi < minB {
				minB = bi
			}
			if bi > maxB {
				maxB = bi
			}
		}
		if span := maxB - minB; span > 10 {
			t.Errorf("cluster %d spans %d blocks", c, span+1)
		}
	}
}

func TestLocalOptPacksSimilarTogether(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Two families of geometrically distinct records.
	var records []Record
	for i := 0; i < 40; i++ {
		r := randomRecord(rng, int32(i))
		for k := range r.Pts {
			r.Pts[k] = geom.Pt(float64(k)*0.01, 0) // flat family
		}
		r.Quad = geohash.Quadruple{5, 5, 5, 5}
		records = append(records, r)
	}
	for i := 40; i < 80; i++ {
		r := randomRecord(rng, int32(i))
		for k := range r.Pts {
			r.Pts[k] = geom.Pt(0.5, float64(k)*0.01) // vertical family
		}
		r.Quad = geohash.Quadruple{40, 40, 40, 40}
		records = append(records, r)
	}
	blocks, _, err := packRecords(records, LayoutLocalOpt, BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks are filled completely, so the single block where the first
	// family runs out may mix; every other block must be pure.
	mixed := 0
	for _, blk := range blocks {
		hasA, hasB := false, false
		for _, ri := range blk {
			if ri < 40 {
				hasA = true
			} else {
				hasB = true
			}
		}
		if hasA && hasB {
			mixed++
		}
	}
	if mixed > 1 {
		t.Errorf("%d blocks mix families, at most the boundary block may", mixed)
	}
	// All records placed exactly once.
	seen := make(map[int]bool)
	for _, blk := range blocks {
		for _, ri := range blk {
			if seen[ri] {
				t.Fatalf("record %d placed twice", ri)
			}
			seen[ri] = true
		}
	}
	if len(seen) != 80 {
		t.Errorf("placed %d of 80", len(seen))
	}
}

func TestRehash(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	records := randomRecords(rng, 150)
	st, err := NewStore(records, LayoutLex, 8)
	if err != nil {
		t.Fatal(err)
	}
	nb := st.NumBlocks()
	stats, err := st.Rehash(LayoutMean)
	if err != nil {
		t.Fatal(err)
	}
	if st.Layout() != LayoutMean {
		t.Errorf("layout after rehash = %s", st.Layout())
	}
	if stats.BlockReads != nb {
		t.Errorf("rehash reads = %d, want %d", stats.BlockReads, nb)
	}
	if stats.BlockWrites < nb-5 || stats.BlockWrites > nb+5 {
		t.Errorf("rehash writes = %d, blocks %d", stats.BlockWrites, nb)
	}
	if stats.Comparisons == 0 {
		t.Error("no comparisons counted")
	}
	// All records still retrievable.
	for _, r := range records {
		if _, err := st.ReadEntry(r.EntryID); err != nil {
			t.Fatalf("post-rehash ReadEntry(%d): %v", r.EntryID, err)
		}
	}
}

// Property: every layout is a permutation — each record appears in
// exactly one block, and blocks respect the size limit.
func TestQuickPackingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		records := randomRecords(rng, 1+rng.Intn(120))
		for _, layout := range Layouts() {
			blocks, _, err := packRecords(records, layout, BlockSize)
			if err != nil {
				return false
			}
			seen := make(map[int]bool)
			for _, blk := range blocks {
				size := 0
				for _, ri := range blk {
					if seen[ri] {
						return false
					}
					seen[ri] = true
					size += records[ri].EncodedSize()
				}
				if size > BlockSize {
					return false
				}
			}
			if len(seen) != len(records) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
