package query

import (
	"testing"

	"repro/internal/geom"
)

// Open polylines participate in topology: they cannot contain, but they
// can overlap (cross) closed shapes and each other.
func TestTopologyWithOpenShapes(t *testing.T) {
	box := sq(0, 0, 10)
	crossing := geom.NewPolyline(geom.Pt(-2, 5), geom.Pt(12, 5)) // crosses the box
	apart := geom.NewPolyline(geom.Pt(20, 0), geom.Pt(25, 5))

	if Contains(crossing, box) {
		t.Error("open chain cannot contain")
	}
	if !Overlaps(box, crossing) || !Overlaps(crossing, box) {
		t.Error("chain crossing the box boundary overlaps it")
	}
	if !Disjoint(box, apart) {
		t.Error("far chain is disjoint")
	}
	// Chain fully inside the box: all its vertices are inside and no
	// boundary crossing — that is containment, not overlap.
	inside := geom.NewPolyline(geom.Pt(2, 2), geom.Pt(8, 8))
	if !Contains(box, inside) {
		t.Error("box should contain the interior chain")
	}
	if Overlaps(box, inside) {
		t.Error("containment is not overlap")
	}
}

func TestImageGraphWithOpenShapes(t *testing.T) {
	box := sq(0, 0, 10)
	chain := geom.NewPolyline(geom.Pt(-2, 5), geom.Pt(12, 5))
	g := BuildImageGraph(0, []int{0, 1}, []geom.Poly{box, chain})
	if got := g.Related(0, RelOverlap); len(got) != 1 || got[0] != 1 {
		t.Errorf("box overlap partners = %v", got)
	}
	if got := g.Related(1, RelContain); len(got) != 0 {
		t.Errorf("open chain contains %v", got)
	}
}

func TestDBWithOpenShapeQueries(t *testing.T) {
	db := NewDB(DefaultOptions())
	if err := db.AddImage(0, []geom.Poly{
		sq(0, 0, 10),
		geom.NewPolyline(geom.Pt(-2, 5), geom.Pt(12, 5)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(1, []geom.Poly{
		geom.NewPolyline(geom.Pt(0, 0), geom.Pt(10, 0)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	binds := Bindings{
		"line": geom.NewPolyline(geom.Pt(0, 0), geom.Pt(7, 0)),
		"box":  sq(0, 0, 4),
	}
	// Lines appear in both images.
	set, _, err := db.EvalString("similar(line)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 2 {
		t.Fatalf("similar(line) = %v", got)
	}
	// A box overlapping a line: only image 0.
	set, _, err = db.EvalString("overlap(box, line, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("overlap(box,line) = %v", got)
	}
}

func TestEstimatorAccessors(t *testing.T) {
	e := NewEstimator(500)
	if e.C() <= 0 {
		t.Errorf("C = %v", e.C())
	}
	if e.Observations() != 1 {
		t.Errorf("seed observations = %d", e.Observations())
	}
	e.Observe(sq(0, 0, 1), 10)
	if e.Observations() != 2 {
		t.Errorf("after observe = %d", e.Observations())
	}
	// Degenerate queries don't poison the estimator.
	e.Observe(geom.Poly{}, 3)
	if e.Observations() != 2 {
		t.Error("degenerate observation should be ignored")
	}
}
