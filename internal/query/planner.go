package query

import (
	"fmt"

	"repro/internal/geom"
)

// Bindings maps the shape names of a parsed query to concrete shapes.
type Bindings map[string]geom.Poly

// Plan records how a query was executed, per DNF conjunct: the driver
// literal (evaluated through the index) and the literals checked per
// image.
type Plan struct {
	Conjuncts []ConjunctPlan
}

// ConjunctPlan is the plan for one DNF term.
type ConjunctPlan struct {
	Term         string
	Driver       string  // the literal evaluated via the index ("" if none)
	DriverEst    float64 // estimated result size of the driver
	DriverActual int     // images the driver produced
	FilterChecks int     // per-image predicate checks performed
	ResultSize   int
}

// String renders a plan compactly.
func (p *Plan) String() string {
	s := ""
	for i, c := range p.Conjuncts {
		if i > 0 {
			s += " UNION "
		}
		s += fmt.Sprintf("[%s; driver=%s est=%.1f got=%d checks=%d -> %d]",
			c.Term, c.Driver, c.DriverEst, c.DriverActual, c.FilterChecks, c.ResultSize)
	}
	return s
}

// Eval executes a query expression against the database (§5.4): the
// expression is rewritten to DNF; within each conjunct the positive
// literal with the smallest estimated selectivity is evaluated through
// the index, and the remaining literals are checked image-by-image on the
// driver's result; conjuncts with only negated literals start from the
// full image set. The conjunct results are united.
func (db *DB) Eval(e Expr, binds Bindings) (ImageSet, *Plan, error) {
	if !db.frozen {
		return nil, nil, fmt.Errorf("query: database must be frozen")
	}
	conjuncts := ToDNF(e)
	if len(conjuncts) == 0 {
		return nil, nil, fmt.Errorf("query: empty expression")
	}
	result := make(ImageSet)
	plan := &Plan{}
	// The DNF rewrite duplicates literals across conjuncts; a per-query
	// memo ensures each distinct operator hits the index at most once.
	memo := make(map[string]ImageSet)
	for _, c := range conjuncts {
		set, cp, err := db.evalConjunct(c, binds, memo)
		if err != nil {
			return nil, nil, err
		}
		plan.Conjuncts = append(plan.Conjuncts, cp)
		result = result.Union(set)
	}
	return result, plan, nil
}

// EvalString parses and evaluates a textual query.
func (db *DB) EvalString(src string, binds Bindings) (ImageSet, *Plan, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return db.Eval(e, binds)
}

// literalEstimate returns the §5.4 selectivity estimate of a literal.
func (db *DB) literalEstimate(l Literal, binds Bindings) (float64, error) {
	var est float64
	switch op := l.Op.(type) {
	case SimilarOp:
		q, err := bind(binds, op.Name)
		if err != nil {
			return 0, err
		}
		est = db.est.Estimate(q)
	case TopoOp:
		q1, err := bind(binds, op.Name1)
		if err != nil {
			return 0, err
		}
		q2, err := bind(binds, op.Name2)
		if err != nil {
			return 0, err
		}
		// min of the two sides (§5.4).
		est = minF(db.est.Estimate(q1), db.est.Estimate(q2))
	default:
		return 0, fmt.Errorf("query: bad literal %T", l.Op)
	}
	if l.Neg {
		est = float64(db.NumImages()) - est
		if est < 0 {
			est = 0
		}
	}
	return est, nil
}

// evalLiteralFull evaluates a positive literal through the index,
// memoizing by the operator's rendered form.
func (db *DB) evalLiteralFull(op Expr, binds Bindings, memo map[string]ImageSet) (ImageSet, error) {
	key := op.String()
	if memo != nil {
		if set, ok := memo[key]; ok {
			return set, nil
		}
	}
	set, err := db.evalLiteralFullUncached(op, binds)
	if err != nil {
		return nil, err
	}
	if memo != nil {
		memo[key] = set
	}
	return set, nil
}

func (db *DB) evalLiteralFullUncached(op Expr, binds Bindings) (ImageSet, error) {
	switch v := op.(type) {
	case SimilarOp:
		q, err := bind(binds, v.Name)
		if err != nil {
			return nil, err
		}
		return db.Similar(q)
	case TopoOp:
		q1, err := bind(binds, v.Name1)
		if err != nil {
			return nil, err
		}
		q2, err := bind(binds, v.Name2)
		if err != nil {
			return nil, err
		}
		set, _, err := db.Topological(v.Rel, q1, q2, v.Theta)
		return set, err
	default:
		return nil, fmt.Errorf("query: bad operator %T", op)
	}
}

// checkLiteral tests a literal on one image.
func (db *DB) checkLiteral(l Literal, binds Bindings, imageID int) (bool, error) {
	var ok bool
	switch v := l.Op.(type) {
	case SimilarOp:
		q, err := bind(binds, v.Name)
		if err != nil {
			return false, err
		}
		ok = db.CheckSimilarOnImage(imageID, q)
	case TopoOp:
		q1, err := bind(binds, v.Name1)
		if err != nil {
			return false, err
		}
		q2, err := bind(binds, v.Name2)
		if err != nil {
			return false, err
		}
		ok = db.CheckTopologicalOnImage(imageID, v.Rel, q1, q2, v.Theta)
	default:
		return false, fmt.Errorf("query: bad literal %T", l.Op)
	}
	if l.Neg {
		ok = !ok
	}
	return ok, nil
}

func (db *DB) evalConjunct(c Conjunct, binds Bindings, memo map[string]ImageSet) (ImageSet, ConjunctPlan, error) {
	cp := ConjunctPlan{Term: c.String()}
	// Choose the positive literal with the smallest estimate as driver.
	driver := -1
	var bestEst float64
	for i, l := range c {
		if l.Neg {
			continue
		}
		est, err := db.literalEstimate(l, binds)
		if err != nil {
			return nil, cp, err
		}
		if driver < 0 || est < bestEst {
			driver, bestEst = i, est
		}
	}
	var current ImageSet
	if driver >= 0 {
		set, err := db.evalLiteralFull(c[driver].Op, binds, memo)
		if err != nil {
			return nil, cp, err
		}
		current = set
		cp.Driver = c[driver].String()
		cp.DriverEst = bestEst
		cp.DriverActual = len(set)
	} else {
		// Only negated literals: start from the universe.
		current = db.AllImages()
		cp.Driver = "(all images)"
		cp.DriverEst = float64(db.NumImages())
		cp.DriverActual = len(current)
	}
	// Filter by the remaining literals, image by image.
	for i, l := range c {
		if i == driver {
			continue
		}
		filtered := make(ImageSet)
		for img := range current {
			ok, err := db.checkLiteral(l, binds, img)
			if err != nil {
				return nil, cp, err
			}
			cp.FilterChecks++
			if ok {
				filtered.Add(img)
			}
		}
		current = filtered
	}
	cp.ResultSize = len(current)
	return current, cp, nil
}

func bind(binds Bindings, name string) (geom.Poly, error) {
	q, ok := binds[name]
	if !ok {
		return geom.Poly{}, fmt.Errorf("query: unbound shape name %q", name)
	}
	return q, nil
}
