package query

import (
	"math"
	"testing"
)

func TestParsePrecedenceAndBindsTighter(t *testing.T) {
	// a OR b AND c must parse as a OR (b AND c).
	e, err := Parse("similar(a) OR similar(b) AND similar(c)")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := e.(OrExpr)
	if !ok {
		t.Fatalf("top is %T, want OrExpr", e)
	}
	if _, ok := or.L.(SimilarOp); !ok {
		t.Errorf("left of OR is %T", or.L)
	}
	if _, ok := or.R.(AndExpr); !ok {
		t.Errorf("right of OR is %T", or.R)
	}
}

func TestParseParensOverridePrecedence(t *testing.T) {
	e, err := Parse("(similar(a) OR similar(b)) AND similar(c)")
	if err != nil {
		t.Fatal(err)
	}
	and, ok := e.(AndExpr)
	if !ok {
		t.Fatalf("top is %T, want AndExpr", e)
	}
	if _, ok := and.L.(OrExpr); !ok {
		t.Errorf("left of AND is %T, want OrExpr", and.L)
	}
}

func TestParseNotChain(t *testing.T) {
	e, err := Parse("NOT NOT NOT similar(a)")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		ne, ok := e.(NotExpr)
		if !ok {
			break
		}
		n++
		e = ne.X
	}
	if n != 3 {
		t.Errorf("NOT depth = %d", n)
	}
	if _, ok := e.(SimilarOp); !ok {
		t.Errorf("innermost is %T", e)
	}
}

func TestParseUnicodeOperators(t *testing.T) {
	e, err := Parse("similar(a) ∩ similar(b) ∪ similar(c)")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(OrExpr); !ok {
		t.Fatalf("∪ should act as OR: %T", e)
	}
	// COMPLEMENT keyword parses like NOT.
	e, err = Parse("COMPLEMENT(similar(a))")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.(NotExpr); !ok {
		t.Fatalf("COMPLEMENT should act as NOT: %T", e)
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	for _, src := range []string{
		"Similar(a) And Not Overlap(b, c, ANY)",
		"SIMILAR(a) AND NOT OVERLAP(b, c, any)",
	} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		and, ok := e.(AndExpr)
		if !ok {
			t.Fatalf("%q: top %T", src, e)
		}
		if _, ok := and.R.(NotExpr); !ok {
			t.Fatalf("%q: right %T", src, and.R)
		}
	}
}

func TestParseNegativeAngle(t *testing.T) {
	e, err := Parse("contain(a, b, -1.5708)")
	if err != nil {
		t.Fatal(err)
	}
	op := e.(TopoOp)
	if op.Theta.Any || math.Abs(op.Theta.Rad+1.5708) > 1e-9 {
		t.Errorf("theta = %+v", op.Theta)
	}
}

func TestExprStrings(t *testing.T) {
	e, err := Parse("NOT (similar(a) AND overlap(b, c, 0.5))")
	if err != nil {
		t.Fatal(err)
	}
	s := e.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	// The rendering must itself re-parse to an equivalent DNF.
	e2, err := Parse(s)
	if err != nil {
		t.Fatalf("re-parse of %q: %v", s, err)
	}
	d1 := ToDNF(e)
	d2 := ToDNF(e2)
	if len(d1) != len(d2) {
		t.Fatalf("round-trip DNF sizes: %d vs %d", len(d1), len(d2))
	}
	for i := range d1 {
		if d1[i].String() != d2[i].String() {
			t.Errorf("conjunct %d: %q vs %q", i, d1[i].String(), d2[i].String())
		}
	}
}

func TestDNFComplexExpression(t *testing.T) {
	// ¬((a ∨ b) ∧ c) = ¬a∧¬c? No: = (¬a ∧ ¬b) ∨ ¬c.
	e, err := Parse("NOT ((similar(a) OR similar(b)) AND similar(c))")
	if err != nil {
		t.Fatal(err)
	}
	dnf := ToDNF(e)
	// negDNF(AndExpr) = negDNF(L) ∪ negDNF(R):
	// negDNF(a∨b) = [¬a ∧ ¬b]; negDNF(c) = [¬c]  → 2 conjuncts.
	if len(dnf) != 2 {
		t.Fatalf("DNF = %v", dnf)
	}
	if len(dnf[0]) != 2 || !dnf[0][0].Neg || !dnf[0][1].Neg {
		t.Errorf("first conjunct = %v", dnf[0])
	}
	if len(dnf[1]) != 1 || !dnf[1][0].Neg {
		t.Errorf("second conjunct = %v", dnf[1])
	}
}

func TestLexerTokens(t *testing.T) {
	toks := lex("similar(a)∩overlap(b,c)")
	want := []string{"similar", "(", "a", ")", "∩", "overlap", "(", "b", ",", "c", ")"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
	if got := lex("   "); len(got) != 0 {
		t.Errorf("whitespace lexes to %v", got)
	}
}
