package query

import (
	"repro/internal/geom"
)

// GraphEdge is a labeled edge (v1, v2, label) of an image graph G_I:
// v1 →contain v2 means shape v1 contains shape v2; v1 →overlap v2 means
// they overlap (stored once with From < To, semantically symmetric).
type GraphEdge struct {
	From, To int // shape ids (base-wide)
	Label    Rel
}

// ImageGraph is the directed labeled graph G_I = (V_I, E_I) maintained
// per image (§5): vertices are the image's shapes, edges record contain
// and overlap; disjoint pairs have no edge.
type ImageGraph struct {
	Image  int
	Shapes []int // shape ids in this image
	Edges  []GraphEdge

	// adjacency: per shape id, the edges touching it.
	adj map[int][]GraphEdge
}

// BuildImageGraph computes G_I from the image's shapes. shapeIDs[i] is
// the base-wide id of polys[i].
func BuildImageGraph(image int, shapeIDs []int, polys []geom.Poly) *ImageGraph {
	g := &ImageGraph{
		Image:  image,
		Shapes: append([]int(nil), shapeIDs...),
		adj:    make(map[int][]GraphEdge),
	}
	for i := 0; i < len(polys); i++ {
		for j := 0; j < len(polys); j++ {
			if i == j {
				continue
			}
			if Contains(polys[i], polys[j]) {
				g.addEdge(GraphEdge{From: shapeIDs[i], To: shapeIDs[j], Label: RelContain})
			}
		}
	}
	for i := 0; i < len(polys); i++ {
		for j := i + 1; j < len(polys); j++ {
			if Overlaps(polys[i], polys[j]) {
				g.addEdge(GraphEdge{From: shapeIDs[i], To: shapeIDs[j], Label: RelOverlap})
			}
		}
	}
	return g
}

func (g *ImageGraph) addEdge(e GraphEdge) {
	g.Edges = append(g.Edges, e)
	g.adj[e.From] = append(g.adj[e.From], e)
	if e.Label == RelOverlap {
		// Overlap is symmetric: index it from both endpoints.
		g.adj[e.To] = append(g.adj[e.To], e)
	} else {
		g.adj[e.To] = append(g.adj[e.To], e)
	}
}

// Related returns the shape ids related to shape s by rel, honoring
// direction for contain: RelContain yields the shapes s contains;
// the reverse direction is exposed by RelatedBy.
func (g *ImageGraph) Related(s int, rel Rel) []int {
	var out []int
	for _, e := range g.adj[s] {
		if e.Label != rel {
			continue
		}
		switch rel {
		case RelContain:
			if e.From == s {
				out = append(out, e.To)
			}
		default: // overlap: symmetric
			if e.From == s {
				out = append(out, e.To)
			} else if e.To == s {
				out = append(out, e.From)
			}
		}
	}
	return out
}

// RelatedBy returns, for RelContain, the shapes that contain s (the
// reverse edges); for symmetric relations it equals Related.
func (g *ImageGraph) RelatedBy(s int, rel Rel) []int {
	if rel != RelContain {
		return g.Related(s, rel)
	}
	var out []int
	for _, e := range g.adj[s] {
		if e.Label == RelContain && e.To == s {
			out = append(out, e.From)
		}
	}
	return out
}

// DisjointPairs enumerates the unordered shape pairs of the image with no
// edge between them (the implicit disjoint relation).
func (g *ImageGraph) DisjointPairs() [][2]int {
	related := make(map[[2]int]bool)
	for _, e := range g.Edges {
		a, b := e.From, e.To
		if a > b {
			a, b = b, a
		}
		related[[2]int{a, b}] = true
	}
	var out [][2]int
	for i := 0; i < len(g.Shapes); i++ {
		for j := i + 1; j < len(g.Shapes); j++ {
			a, b := g.Shapes[i], g.Shapes[j]
			if a > b {
				a, b = b, a
			}
			if !related[[2]int{a, b}] {
				out = append(out, [2]int{a, b})
			}
		}
	}
	return out
}
