package query

import (
	"math"
	"testing"

	"repro/internal/geom"
)

// Test fixtures: simple geometric configurations with known topology.

func sq(x, y, side float64) geom.Poly {
	return geom.NewPolygon(
		geom.Pt(x, y), geom.Pt(x+side, y), geom.Pt(x+side, y+side), geom.Pt(x, y+side))
}

func tri(x, y, s float64) geom.Poly {
	return geom.NewPolygon(geom.Pt(x, y), geom.Pt(x+s, y), geom.Pt(x, y+2*s))
}

func TestContainsPredicate(t *testing.T) {
	outer := sq(0, 0, 10)
	inner := sq(2, 2, 3)
	if !Contains(outer, inner) {
		t.Error("outer should contain inner")
	}
	if Contains(inner, outer) {
		t.Error("inner cannot contain outer")
	}
	// Partially overlapping squares: neither contains the other.
	half := sq(8, 8, 5)
	if Contains(outer, half) || Contains(half, outer) {
		t.Error("overlapping squares should not contain")
	}
	// Open chains contain nothing.
	open := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10))
	if Contains(open, inner) {
		t.Error("open chain cannot contain")
	}
}

func TestOverlapsDisjoint(t *testing.T) {
	a := sq(0, 0, 10)
	b := sq(8, 8, 5)   // crosses a's corner
	c := sq(20, 20, 3) // far away
	d := sq(2, 2, 3)   // inside a
	if !Overlaps(a, b) || !Overlaps(b, a) {
		t.Error("a and b overlap")
	}
	if Overlaps(a, c) {
		t.Error("a and c do not overlap")
	}
	if Overlaps(a, d) {
		t.Error("containment is not overlap")
	}
	if !Disjoint(a, c) {
		t.Error("a and c are disjoint")
	}
	if Disjoint(a, b) || Disjoint(a, d) {
		t.Error("overlap/containment are not disjoint")
	}
}

func TestAngleMatching(t *testing.T) {
	if !AnyAngle().Matches(1.234, 0.01) {
		t.Error("any matches everything")
	}
	if !AngleOf(math.Pi/4).Matches(math.Pi/4+0.05, 0.1) {
		t.Error("within tolerance")
	}
	if AngleOf(math.Pi/4).Matches(math.Pi/4+0.5, 0.1) {
		t.Error("outside tolerance")
	}
	// Wraparound: -π and π are the same direction.
	if !AngleOf(math.Pi).Matches(-math.Pi+0.01, 0.1) {
		t.Error("wraparound should match")
	}
	// θ given in [-2π, 2π] is normalized.
	if !AngleOf(2*math.Pi-0.02).Matches(0, 0.1) {
		t.Error("2π-0.02 ≈ 0")
	}
}

func TestImageGraph(t *testing.T) {
	outer := sq(0, 0, 10)
	inner := sq(2, 2, 3)
	cross := sq(8, 8, 5)
	far := sq(30, 30, 2)
	g := BuildImageGraph(1, []int{10, 11, 12, 13}, []geom.Poly{outer, inner, cross, far})
	if len(g.Shapes) != 4 {
		t.Fatalf("shapes = %d", len(g.Shapes))
	}
	if got := g.Related(10, RelContain); len(got) != 1 || got[0] != 11 {
		t.Errorf("outer contains: %v", got)
	}
	if got := g.RelatedBy(11, RelContain); len(got) != 1 || got[0] != 10 {
		t.Errorf("inner containedBy: %v", got)
	}
	if got := g.Related(10, RelOverlap); len(got) != 1 || got[0] != 12 {
		t.Errorf("outer overlaps: %v", got)
	}
	if got := g.Related(12, RelOverlap); len(got) != 1 || got[0] != 10 {
		t.Errorf("overlap symmetric: %v", got)
	}
	// far is disjoint from everything.
	pairs := g.DisjointPairs()
	wantDisjoint := map[[2]int]bool{
		{10, 13}: true, {11, 13}: true, {12, 13}: true, {11, 12}: true,
	}
	if len(pairs) != len(wantDisjoint) {
		t.Fatalf("disjoint pairs = %v", pairs)
	}
	for _, pr := range pairs {
		if !wantDisjoint[pr] {
			t.Errorf("unexpected disjoint pair %v", pr)
		}
	}
}

func TestSignificantVertices(t *testing.T) {
	// The paper's example (Figure 9): normalized shape with 5 vertices,
	// right angles and 3π/4 angles. Verify V_S ∈ (0, V(Q)] and the
	// specific contributions quoted: vertices V0, V4 contribute
	// 1/2 + √10/10 each.
	q := geom.NewPolygon(
		geom.Pt(0, 0), geom.Pt(3, 1), geom.Pt(2, 2), geom.Pt(1, 2), geom.Pt(0, 1))
	vs := SignificantVertices(q)
	if vs <= 0 || vs > 5 {
		t.Errorf("V_S = %v out of (0, 5]", vs)
	}
	// Property from the paper: adding degenerate vertices (collinear
	// splits) leaves V_S almost unchanged (Figure 9 right).
	q2 := geom.NewPolygon(
		geom.Pt(0, 0), geom.Pt(1.5, 0.5), geom.Pt(3, 1), geom.Pt(2, 2),
		geom.Pt(1.5, 2), geom.Pt(1, 2), geom.Pt(0, 1))
	vs2 := SignificantVertices(q2)
	if math.Abs(vs-vs2) > 0.3 {
		t.Errorf("V_S changed too much with degenerate vertices: %v vs %v", vs, vs2)
	}
	// More structure (a square) beats a degenerate sliver.
	square := sq(0, 0, 1)
	sliver := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 0.01))
	if SignificantVertices(square) <= SignificantVertices(sliver) {
		t.Errorf("square V_S %v should exceed sliver %v",
			SignificantVertices(square), SignificantVertices(sliver))
	}
}

func TestEstimatorAdapts(t *testing.T) {
	e := NewEstimator(1000)
	q := sq(0, 0, 1)
	before := e.Estimate(q)
	if before <= 0 {
		t.Fatalf("estimate = %v", before)
	}
	// Observing consistently larger results should raise the estimate.
	for i := 0; i < 10; i++ {
		e.Observe(q, int(before*10))
	}
	if after := e.Estimate(q); after <= before {
		t.Errorf("estimate should grow: %v -> %v", before, after)
	}
}

// buildTestDB constructs a small database with known topology:
//
//	image 0: big square containing a triangle
//	image 1: big square overlapping another square
//	image 2: lone triangle
//	image 3: square and triangle, disjoint
//	image 4: big square containing a small square
func buildTestDB(t *testing.T) (*DB, Bindings) {
	t.Helper()
	db := NewDB(DefaultOptions())
	add := func(id int, shapes ...geom.Poly) {
		t.Helper()
		if err := db.AddImage(id, shapes); err != nil {
			t.Fatalf("AddImage(%d): %v", id, err)
		}
	}
	add(0, sq(0, 0, 20), tri(5, 5, 3))
	add(1, sq(0, 0, 10), sq(8, 8, 6))
	add(2, tri(0, 0, 4))
	add(3, sq(0, 0, 5), tri(20, 20, 3))
	add(4, sq(0, 0, 20), sq(5, 5, 4))
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	binds := Bindings{
		"qsq":  sq(0, 0, 7),  // matches all squares (same shape class)
		"qtri": tri(0, 0, 5), // matches all triangles
	}
	return db, binds
}

func TestSimilarOperator(t *testing.T) {
	db, binds := buildTestDB(t)
	set, err := db.Similar(binds["qtri"])
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 3}
	got := set.Sorted()
	if len(got) != len(want) {
		t.Fatalf("similar(tri) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("similar(tri) = %v, want %v", got, want)
		}
	}
	// Squares appear in images 0,1,3,4.
	set, err = db.Similar(binds["qsq"])
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 4 {
		t.Fatalf("similar(sq) = %v", got)
	}
}

func TestTopologicalContain(t *testing.T) {
	db, binds := buildTestDB(t)
	// contain(sq, tri): image 0 only.
	for _, strat := range []TopoStrategy{StrategyDrive, StrategyBoth} {
		set, err := db.TopologicalWith(RelContain, binds["qsq"], binds["qtri"], AnyAngle(), strat)
		if err != nil {
			t.Fatal(err)
		}
		if got := set.Sorted(); len(got) != 1 || got[0] != 0 {
			t.Errorf("strategy %d: contain(sq,tri) = %v, want [0]", strat, got)
		}
	}
	// contain(sq, sq): image 4 only.
	set, strat, err := db.Topological(RelContain, binds["qsq"], binds["qsq"], AnyAngle())
	if err != nil {
		t.Fatal(err)
	}
	if strat != StrategyDrive && strat != StrategyBoth {
		t.Errorf("no strategy recorded")
	}
	if got := set.Sorted(); len(got) != 1 || got[0] != 4 {
		t.Errorf("contain(sq,sq) = %v, want [4]", got)
	}
}

func TestTopologicalOverlapDisjoint(t *testing.T) {
	db, binds := buildTestDB(t)
	for _, strat := range []TopoStrategy{StrategyDrive, StrategyBoth} {
		set, err := db.TopologicalWith(RelOverlap, binds["qsq"], binds["qsq"], AnyAngle(), strat)
		if err != nil {
			t.Fatal(err)
		}
		if got := set.Sorted(); len(got) != 1 || got[0] != 1 {
			t.Errorf("strategy %d: overlap(sq,sq) = %v, want [1]", strat, got)
		}
		// disjoint(sq, tri): image 3 (side by side). Image 0 has the
		// triangle inside the square (contain, not disjoint).
		set, err = db.TopologicalWith(RelDisjoint, binds["qsq"], binds["qtri"], AnyAngle(), strat)
		if err != nil {
			t.Fatal(err)
		}
		if got := set.Sorted(); len(got) != 1 || got[0] != 3 {
			t.Errorf("strategy %d: disjoint(sq,tri) = %v, want [3]", strat, got)
		}
	}
}

func TestParseAndEval(t *testing.T) {
	db, binds := buildTestDB(t)
	// Images with a triangle but no square-containing-triangle: 2 and 3.
	set, plan, err := db.EvalString(
		"similar(qtri) AND NOT contain(qsq, qtri, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("result = %v, want [2 3]", got)
	}
	if len(plan.Conjuncts) != 1 {
		t.Fatalf("plan = %s", plan)
	}
	if plan.Conjuncts[0].Driver == "" || plan.Conjuncts[0].FilterChecks == 0 {
		t.Errorf("plan missing driver/checks: %s", plan)
	}
}

func TestEvalUnion(t *testing.T) {
	db, binds := buildTestDB(t)
	set, plan, err := db.EvalString("overlap(qsq, qsq, any) OR contain(qsq, qsq, any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("union = %v, want [1 4]", got)
	}
	if len(plan.Conjuncts) != 2 {
		t.Errorf("expected 2 conjuncts, plan = %s", plan)
	}
}

func TestEvalComplementOnly(t *testing.T) {
	db, binds := buildTestDB(t)
	set, _, err := db.EvalString("NOT similar(qtri)", binds)
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("complement = %v, want [1 4]", got)
	}
}

func TestEvalDeMorgan(t *testing.T) {
	db, binds := buildTestDB(t)
	// NOT (A OR B) == NOT A AND NOT B.
	s1, _, err := db.EvalString("NOT (similar(qtri) OR overlap(qsq,qsq,any))", binds)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := db.EvalString("NOT similar(qtri) AND NOT overlap(qsq,qsq,any)", binds)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s1.Sorted(), s2.Sorted()
	if len(a) != len(b) {
		t.Fatalf("De Morgan violated: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("De Morgan violated: %v vs %v", a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"similar()",
		"similar(q",
		"bogus(q)",
		"similar(q) AND",
		"contain(a)",
		"contain(a, b, xyz)",
		"similar(q) extra",
		"(similar(q)",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseAngles(t *testing.T) {
	e, err := Parse("contain(a, b, 0.785)")
	if err != nil {
		t.Fatal(err)
	}
	op := e.(TopoOp)
	if op.Theta.Any || math.Abs(op.Theta.Rad-0.785) > 1e-12 {
		t.Errorf("theta = %+v", op.Theta)
	}
	e, err = Parse("overlap(a, b)")
	if err != nil {
		t.Fatal(err)
	}
	if !e.(TopoOp).Theta.Any {
		t.Error("missing angle should mean any")
	}
}

func TestEvalUnboundName(t *testing.T) {
	db, _ := buildTestDB(t)
	if _, _, err := db.EvalString("similar(nope)", Bindings{}); err == nil {
		t.Error("unbound name should fail")
	}
}

func TestDNFShape(t *testing.T) {
	e, err := Parse("(similar(a) OR similar(b)) AND similar(c)")
	if err != nil {
		t.Fatal(err)
	}
	dnf := ToDNF(e)
	if len(dnf) != 2 {
		t.Fatalf("DNF terms = %d, want 2", len(dnf))
	}
	for _, c := range dnf {
		if len(c) != 2 {
			t.Errorf("conjunct size = %d, want 2", len(c))
		}
	}
	// Double negation cancels.
	e2, _ := Parse("NOT NOT similar(a)")
	dnf2 := ToDNF(e2)
	if len(dnf2) != 1 || len(dnf2[0]) != 1 || dnf2[0][0].Neg {
		t.Errorf("double negation: %v", dnf2)
	}
}

func TestTopologicalWithAngle(t *testing.T) {
	// Two images: in one the contained square is axis-aligned with its
	// container; in the other it is rotated 45°.
	db := NewDB(DefaultOptions())
	inner := sq(5, 5, 4)
	rot := inner.Transform(geom.Rotation(math.Pi / 4)).Transform(geom.Translation(geom.Pt(12, -4)))
	if err := db.AddImage(0, []geom.Poly{sq(0, 0, 20), inner}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(1, []geom.Poly{sq(0, 0, 20), rot}); err != nil {
		t.Fatal(err)
	}
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	q := sq(0, 0, 6)
	// Angle 0: only the aligned image.
	set, _, err := db.Topological(RelContain, q, q, AngleOf(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 1 || got[0] != 0 {
		t.Errorf("aligned contain = %v, want [0]", got)
	}
	// any: both.
	set, _, err = db.Topological(RelContain, q, q, AnyAngle())
	if err != nil {
		t.Fatal(err)
	}
	if got := set.Sorted(); len(got) != 2 {
		t.Errorf("any-angle contain = %v, want both", got)
	}
}

func TestDBLifecycleErrors(t *testing.T) {
	db := NewDB(DefaultOptions())
	if _, err := db.Similar(sq(0, 0, 1)); err == nil {
		t.Error("unfrozen Similar should fail")
	}
	if err := db.AddImage(0, nil); err == nil {
		t.Error("empty image should fail")
	}
	if err := db.AddImage(1, []geom.Poly{sq(0, 0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(1, []geom.Poly{sq(0, 0, 1)}); err == nil {
		t.Error("duplicate image id should fail")
	}
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := db.AddImage(2, []geom.Poly{sq(0, 0, 1)}); err == nil {
		t.Error("AddImage after Freeze should fail")
	}
}

func TestEvalMemoizesRepeatedLiterals(t *testing.T) {
	db, binds := buildTestDB(t)
	before := db.Estimator().Observations()
	// The same similar(qtri) literal appears in both DNF conjuncts after
	// distribution; the memo must run it through the index exactly once.
	_, _, err := db.EvalString(
		"similar(qtri) AND (similar(qsq) OR overlap(qsq, qsq, any))", binds)
	if err != nil {
		t.Fatal(err)
	}
	grew := db.Estimator().Observations() - before
	// Index retrievals that observe: similar(qtri) once (memoized across
	// conjuncts) + at most the other drivers once each.
	if grew > 3 {
		t.Errorf("estimator observed %d times — memoization not effective", grew)
	}
}
