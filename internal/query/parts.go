package query

import (
	"fmt"

	"repro/internal/core"
)

// This file is the persistence seam of the frozen database: accessors
// for the state a snapshot writer needs beyond the core base (image
// order, per-shape diameter angles, graph edge lists), and DBFromParts
// to reassemble a frozen DB around an already-reassembled base without
// re-running the O(shapes²) graph geometry.

// Images returns the image ids in insertion order (the live slice —
// callers must not mutate).
func (db *DB) Images() []int { return db.images }

// DiamAng returns a shape's diameter orientation in the image frame.
func (db *DB) DiamAng(shapeID int) (float64, bool) {
	a, ok := db.diamAng[shapeID]
	return a, ok
}

// GraphFromParts reassembles an image graph from its persisted vertex
// and edge lists, rebuilding the adjacency index.
func GraphFromParts(image int, shapeIDs []int, edges []GraphEdge) *ImageGraph {
	g := &ImageGraph{
		Image:  image,
		Shapes: shapeIDs,
		adj:    make(map[int][]GraphEdge, len(shapeIDs)),
	}
	for _, e := range edges {
		g.addEdge(e)
	}
	return g
}

// DBParts carries everything DBFromParts needs to reassemble a frozen
// database.
type DBParts struct {
	Opts    Options
	Base    *core.Base // already reassembled and frozen
	Images  []int      // image ids in insertion order
	Graphs  map[int]*ImageGraph
	DiamAng map[int]float64 // shape id → diameter orientation
}

// DBFromParts reassembles a frozen DB. The estimator is rebuilt fresh
// (it is query-time-only state); everything else is adopted as-is.
func DBFromParts(p DBParts) (*DB, error) {
	if p.Base == nil {
		return nil, fmt.Errorf("query: db parts without a base")
	}
	if len(p.Images) != len(p.Graphs) {
		return nil, fmt.Errorf("query: db parts with %d images but %d graphs", len(p.Images), len(p.Graphs))
	}
	for _, id := range p.Images {
		if p.Graphs[id] == nil {
			return nil, fmt.Errorf("query: db parts image %d has no graph", id)
		}
	}
	if len(p.DiamAng) != p.Base.NumShapes() {
		return nil, fmt.Errorf("query: db parts with %d diameter angles for %d shapes",
			len(p.DiamAng), p.Base.NumShapes())
	}
	opts := p.Opts
	if opts.Tau <= 0 {
		opts.Tau = 0.05
	}
	if opts.AngleTol <= 0 {
		opts.AngleTol = 0.1
	}
	return &DB{
		opts:    opts,
		base:    p.Base,
		graphs:  p.Graphs,
		images:  p.Images,
		diamAng: p.DiamAng,
		est:     NewEstimator(p.Base.NumShapes()),
		frozen:  true,
	}, nil
}
