package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse builds an Expr from a textual query. Grammar (case-insensitive
// keywords):
//
//	expr    := term ( ("OR" | "∪") term )*
//	term    := factor ( ("AND" | "∩") factor )*
//	factor  := ("NOT" | "COMPLEMENT") factor | "(" expr ")" | op
//	op      := "similar" "(" name ")"
//	        |  rel "(" name "," name ["," angle] ")"
//	rel     := "contain" | "overlap" | "disjoint"
//	angle   := "any" | float-radians
//
// Names refer to query shapes the caller binds at evaluation time; Parse
// only records them.
func Parse(src string) (Expr, error) {
	p := &parser{toks: lex(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("query: unexpected %q after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.eof() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("query: expected %q, got %q", t, got)
	}
	return nil
}

func keyword(t string) string { return strings.ToLower(t) }

func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		k := keyword(p.peek())
		if k != "or" && p.peek() != "∪" {
			break
		}
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for !p.eof() {
		k := keyword(p.peek())
		if k != "and" && p.peek() != "∩" {
			break
		}
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseFactor() (Expr, error) {
	if p.eof() {
		return nil, fmt.Errorf("query: unexpected end of input")
	}
	switch keyword(p.peek()) {
	case "not", "complement":
		p.next()
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	}
	if p.peek() == "(" {
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseOp()
}

func (p *parser) parseOp() (Expr, error) {
	name := keyword(p.next())
	switch name {
	case "similar":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		arg := p.next()
		if arg == "" || arg == ")" {
			return nil, fmt.Errorf("query: similar() needs a shape name")
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return SimilarOp{Name: arg}, nil
	case "contain", "overlap", "disjoint":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		n1 := p.next()
		if err := p.expect(","); err != nil {
			return nil, err
		}
		n2 := p.next()
		theta := AnyAngle()
		if p.peek() == "," {
			p.next()
			av := p.next()
			if keyword(av) != "any" {
				rad, err := strconv.ParseFloat(av, 64)
				if err != nil {
					return nil, fmt.Errorf("query: bad angle %q: %w", av, err)
				}
				theta = AngleOf(rad)
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return TopoOp{Rel: Rel(name), Name1: n1, Name2: n2, Theta: theta}, nil
	default:
		return nil, fmt.Errorf("query: unknown operator %q", name)
	}
}

// lex splits the source into identifier/number/punct tokens.
func lex(src string) []string {
	var toks []string
	i := 0
	rs := []rune(src)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '(' || r == ')' || r == ',' || r == '∩' || r == '∪':
			toks = append(toks, string(r))
			i++
		default:
			j := i
			for j < len(rs) {
				c := rs[j]
				if unicode.IsSpace(c) || c == '(' || c == ')' || c == ',' || c == '∩' || c == '∪' {
					break
				}
				j++
			}
			toks = append(toks, string(rs[i:j]))
			i = j
		}
	}
	return toks
}
