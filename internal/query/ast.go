package query

import (
	"fmt"
	"strings"
)

// Expr is a topological query expression (§5.1): similarity and
// topological operators combined with intersection, union, and
// complement.
type Expr interface {
	exprNode()
	String() string
}

// SimilarOp is similar(Q).
type SimilarOp struct {
	Name string // shape binding name (for display)
}

// TopoOp is r(Q1, Q2, θ).
type TopoOp struct {
	Rel   Rel
	Name1 string
	Name2 string
	Theta Angle
}

// AndExpr is P1 ∩ P2.
type AndExpr struct{ L, R Expr }

// OrExpr is P1 ∪ P2.
type OrExpr struct{ L, R Expr }

// NotExpr is COMPLEMENT(P).
type NotExpr struct{ X Expr }

func (SimilarOp) exprNode() {}
func (TopoOp) exprNode()    {}
func (AndExpr) exprNode()   {}
func (OrExpr) exprNode()    {}
func (NotExpr) exprNode()   {}

func (e SimilarOp) String() string { return fmt.Sprintf("similar(%s)", e.Name) }

func (e TopoOp) String() string {
	th := "any"
	if !e.Theta.Any {
		th = fmt.Sprintf("%.4g", e.Theta.Rad)
	}
	return fmt.Sprintf("%s(%s, %s, %s)", e.Rel, e.Name1, e.Name2, th)
}

func (e AndExpr) String() string { return fmt.Sprintf("(%s AND %s)", e.L, e.R) }
func (e OrExpr) String() string  { return fmt.Sprintf("(%s OR %s)", e.L, e.R) }
func (e NotExpr) String() string { return fmt.Sprintf("NOT %s", e.X) }

// Literal is an operator or its complement, the atom of a DNF conjunct.
type Literal struct {
	Op  Expr // SimilarOp or TopoOp
	Neg bool
}

func (l Literal) String() string {
	if l.Neg {
		return "NOT " + l.Op.String()
	}
	return l.Op.String()
}

// Conjunct is an intersection of literals.
type Conjunct []Literal

func (c Conjunct) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return strings.Join(parts, " AND ")
}

// ToDNF rewrites an expression into disjunctive normal form
// t₁ ∪ t₂ ∪ … ∪ tₙ where each tᵢ intersects operators and complements of
// operators (§5.4).
func ToDNF(e Expr) []Conjunct {
	switch v := e.(type) {
	case SimilarOp, TopoOp:
		return []Conjunct{{Literal{Op: v}}}
	case NotExpr:
		return negDNF(v.X)
	case AndExpr:
		l := ToDNF(v.L)
		r := ToDNF(v.R)
		var out []Conjunct
		for _, a := range l {
			for _, b := range r {
				c := make(Conjunct, 0, len(a)+len(b))
				c = append(c, a...)
				c = append(c, b...)
				out = append(out, c)
			}
		}
		return out
	case OrExpr:
		return append(ToDNF(v.L), ToDNF(v.R)...)
	default:
		return nil
	}
}

// negDNF returns the DNF of NOT e, pushing the complement inward with De
// Morgan's laws.
func negDNF(e Expr) []Conjunct {
	switch v := e.(type) {
	case SimilarOp, TopoOp:
		return []Conjunct{{Literal{Op: v, Neg: true}}}
	case NotExpr:
		return ToDNF(v.X)
	case AndExpr:
		// ¬(L ∧ R) = ¬L ∨ ¬R
		return append(negDNF(v.L), negDNF(v.R)...)
	case OrExpr:
		// ¬(L ∨ R) = ¬L ∧ ¬R
		l := negDNF(v.L)
		r := negDNF(v.R)
		var out []Conjunct
		for _, a := range l {
			for _, b := range r {
				c := make(Conjunct, 0, len(a)+len(b))
				c = append(c, a...)
				c = append(c, b...)
				out = append(out, c)
			}
		}
		return out
	default:
		return nil
	}
}
