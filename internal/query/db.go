package query

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/geom"
)

// ImageSet is a set of image ids.
type ImageSet map[int]struct{}

// NewImageSet builds a set from ids.
func NewImageSet(ids ...int) ImageSet {
	s := make(ImageSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Has reports membership.
func (s ImageSet) Has(id int) bool { _, ok := s[id]; return ok }

// Add inserts an id.
func (s ImageSet) Add(id int) { s[id] = struct{}{} }

// Sorted returns the ids in ascending order.
func (s ImageSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Intersect returns s ∩ t.
func (s ImageSet) Intersect(t ImageSet) ImageSet {
	small, big := s, t
	if len(big) < len(small) {
		small, big = big, small
	}
	out := make(ImageSet)
	for id := range small {
		if big.Has(id) {
			out.Add(id)
		}
	}
	return out
}

// Union returns s ∪ t.
func (s ImageSet) Union(t ImageSet) ImageSet {
	out := make(ImageSet, len(s)+len(t))
	for id := range s {
		out.Add(id)
	}
	for id := range t {
		out.Add(id)
	}
	return out
}

// Options configure the query database.
type Options struct {
	Core core.Options
	// Tau is the similarity threshold of g_similar: two shapes are
	// similar when their (symmetric vertex-averaged) distance is ≤ Tau,
	// in diameter-normalized units.
	Tau float64
	// AngleTol is the tolerance for θ matching, radians.
	AngleTol float64
}

// DefaultOptions returns a reasonable configuration: τ = 0.05 (5% of the
// diameter), θ tolerance 0.1 rad.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions(), Tau: 0.05, AngleTol: 0.1}
}

// DB is the queryable image database: the shape base plus per-image
// graphs and the selectivity estimator.
type DB struct {
	opts    Options
	base    *core.Base
	graphs  map[int]*ImageGraph
	images  []int           // image ids in insertion order
	diamAng map[int]float64 // shape id → diameter orientation in image frame
	est     *Estimator
	frozen  bool
}

// NewDB creates an empty database.
func NewDB(opts Options) *DB {
	if opts.Tau <= 0 {
		opts.Tau = 0.05
	}
	if opts.AngleTol <= 0 {
		opts.AngleTol = 0.1
	}
	return &DB{
		opts:    opts,
		base:    core.NewBase(opts.Core),
		graphs:  make(map[int]*ImageGraph),
		diamAng: make(map[int]float64),
	}
}

// AddImage registers an image and its shapes, building the image graph.
// Invalid shapes are rejected; an image must contain at least one valid
// shape.
func (db *DB) AddImage(imageID int, shapes []geom.Poly) error {
	if db.frozen {
		return fmt.Errorf("query: database is frozen")
	}
	if _, dup := db.graphs[imageID]; dup {
		return fmt.Errorf("query: image %d already added", imageID)
	}
	var ids []int
	var polys []geom.Poly
	for si, p := range shapes {
		id, err := db.base.AddShape(imageID, p)
		if err != nil {
			return fmt.Errorf("query: image %d shape %d: %w", imageID, si, err)
		}
		e, err := core.NormalizeCanonical(p)
		if err != nil {
			return err
		}
		db.diamAng[id] = e.DiameterAngle()
		ids = append(ids, id)
		polys = append(polys, p)
	}
	if len(ids) == 0 {
		return fmt.Errorf("query: image %d has no shapes", imageID)
	}
	db.graphs[imageID] = BuildImageGraph(imageID, ids, polys)
	db.images = append(db.images, imageID)
	return nil
}

// Freeze builds the retrieval index; the database becomes read-only.
func (db *DB) Freeze() error {
	if err := db.base.Freeze(); err != nil {
		return err
	}
	if db.est == nil {
		db.est = NewEstimator(db.base.NumShapes())
	}
	db.frozen = true
	return nil
}

// Base exposes the underlying shape base.
func (db *DB) Base() *core.Base { return db.base }

// Graph returns the graph of an image.
func (db *DB) Graph(imageID int) (*ImageGraph, bool) {
	g, ok := db.graphs[imageID]
	return g, ok
}

// NumImages returns the number of images.
func (db *DB) NumImages() int { return len(db.images) }

// AllImages returns the set of all image ids (the DB of §5.1, the
// universe of COMPLEMENT).
func (db *DB) AllImages() ImageSet {
	s := make(ImageSet, len(db.images))
	for _, id := range db.images {
		s.Add(id)
	}
	return s
}

// Estimator returns the selectivity estimator.
func (db *DB) Estimator() *Estimator { return db.est }

// Tau returns the similarity threshold.
func (db *DB) Tau() float64 { return db.opts.Tau }

// shapeSimilar computes shape_similar(Q): all shape ids within τ of Q.
// The estimator is updated with the observed result size (§5.2).
func (db *DB) shapeSimilar(q geom.Poly) ([]core.Match, error) {
	ms, _, err := db.base.SimilarShapes(q, db.opts.Tau)
	if err != nil {
		return nil, err
	}
	db.est.Observe(q, len(ms))
	return ms, nil
}

// Similar evaluates the similarity operator similar(Q): all images
// containing a shape similar to Q (§5.1).
func (db *DB) Similar(q geom.Poly) (ImageSet, error) {
	if !db.frozen {
		return nil, fmt.Errorf("query: database must be frozen")
	}
	ms, err := db.shapeSimilar(q)
	if err != nil {
		return nil, err
	}
	out := make(ImageSet)
	for _, m := range ms {
		out.Add(db.base.Shape(m.ShapeID).Image)
	}
	return out, nil
}

// shapeIsSimilar checks g_similar(S, Q) directly for one stored shape.
func (db *DB) shapeIsSimilar(shapeID int, q geom.Poly) bool {
	d, err := db.base.ShapeDistance(shapeID, q)
	return err == nil && d <= db.opts.Tau
}

// shapeIsSimilarPrepared is shapeIsSimilar against a prepared query, for
// the planner loops that probe many stored shapes with the same Q.
func (db *DB) shapeIsSimilarPrepared(shapeID int, pq *core.PreparedQuery) bool {
	d, err := db.base.ShapeDistancePrepared(shapeID, pq)
	return err == nil && d <= db.opts.Tau
}

// angleBetween returns the ordered signed diameter angle between two
// stored shapes.
func (db *DB) angleBetween(s1, s2 int) float64 {
	return DiameterAngleBetween(db.diamAng[s1], db.diamAng[s2])
}

// TopoStrategy names the execution strategy used for a topological
// operator (§5.3).
type TopoStrategy int

// The two strategies of §5.3.
const (
	// StrategyDrive computes only the smaller shape_similar set and
	// drives through the image graphs, checking the partner predicate
	// per edge (method 1).
	StrategyDrive TopoStrategy = 1
	// StrategyBoth computes both shape_similar sets, intersects the image
	// sets, and verifies edges inside the intersection (method 2).
	StrategyBoth TopoStrategy = 2
)

// Topological evaluates r(Q1, Q2, θ): all images with shapes S1 ~ Q1 and
// S2 ~ Q2 such that g_r(S1, S2, θ). The strategy is chosen by the
// selectivity estimates; the chosen strategy is returned for plan
// inspection.
func (db *DB) Topological(rel Rel, q1, q2 geom.Poly, theta Angle) (ImageSet, TopoStrategy, error) {
	if !db.frozen {
		return nil, 0, fmt.Errorf("query: database must be frozen")
	}
	sel1 := db.est.Estimate(q1)
	sel2 := db.est.Estimate(q2)
	// Method 2 pays for two index retrievals but prunes with the image
	// intersection; it wins when both sides are selective. Method 1 wins
	// when one side is clearly smaller. The crossover used here: drive
	// when the smaller side is under half of the larger.
	var strat TopoStrategy
	if minF(sel1, sel2) < 0.5*maxF(sel1, sel2) {
		strat = StrategyDrive
	} else {
		strat = StrategyBoth
	}
	set, err := db.topological(rel, q1, q2, theta, strat)
	return set, strat, err
}

// TopologicalWith forces a specific strategy (for the planner ablation).
func (db *DB) TopologicalWith(rel Rel, q1, q2 geom.Poly, theta Angle, strat TopoStrategy) (ImageSet, error) {
	if !db.frozen {
		return nil, fmt.Errorf("query: database must be frozen")
	}
	return db.topological(rel, q1, q2, theta, strat)
}

func (db *DB) topological(rel Rel, q1, q2 geom.Poly, theta Angle, strat TopoStrategy) (ImageSet, error) {
	out := make(ImageSet)
	switch strat {
	case StrategyDrive:
		// Drive from the more selective (smaller estimated) side.
		driveQ, otherQ := q2, q1
		swapped := false
		if db.est.Estimate(q1) < db.est.Estimate(q2) {
			driveQ, otherQ = q1, q2
			swapped = true
		}
		ms, err := db.shapeSimilar(driveQ)
		if err != nil {
			return nil, err
		}
		// The partner side is probed once per graph edge with the same
		// query: normalize it and build its oracle exactly once.
		otherPQ, err := core.PrepareQuery(otherQ)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			img := db.base.Shape(m.ShapeID).Image
			if out.Has(img) {
				continue
			}
			g := db.graphs[img]
			if db.driveCheck(g, m.ShapeID, rel, otherPQ, theta, swapped) {
				out.Add(img)
			}
		}
		return out, nil

	case StrategyBoth:
		ms1, err := db.shapeSimilar(q1)
		if err != nil {
			return nil, err
		}
		ms2, err := db.shapeSimilar(q2)
		if err != nil {
			return nil, err
		}
		sim2 := make(map[int]bool, len(ms2))
		img1 := make(ImageSet)
		img2 := make(ImageSet)
		for _, m := range ms1 {
			img1.Add(db.base.Shape(m.ShapeID).Image)
		}
		for _, m := range ms2 {
			sim2[m.ShapeID] = true
			img2.Add(db.base.Shape(m.ShapeID).Image)
		}
		si := img1.Intersect(img2)
		for _, m := range ms1 {
			img := db.base.Shape(m.ShapeID).Image
			if !si.Has(img) || out.Has(img) {
				continue
			}
			g := db.graphs[img]
			for _, s2 := range db.partners(g, m.ShapeID, rel, false) {
				if sim2[s2] && theta.Matches(db.angleBetween(m.ShapeID, s2), db.opts.AngleTol) {
					out.Add(img)
					break
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("query: unknown strategy %d", strat)
	}
}

// partners enumerates the shapes related to s under rel, in the proper
// role: with reversed=false, s plays S1 of g_r(S1, S2, θ); with
// reversed=true it plays S2.
func (db *DB) partners(g *ImageGraph, s int, rel Rel, reversed bool) []int {
	switch rel {
	case RelContain:
		if reversed {
			return g.RelatedBy(s, RelContain)
		}
		return g.Related(s, RelContain)
	case RelOverlap:
		return g.Related(s, RelOverlap)
	case RelDisjoint:
		// Disjoint pairs are the graph's non-edges.
		var out []int
		related := make(map[int]bool)
		for _, t := range g.Related(s, RelOverlap) {
			related[t] = true
		}
		for _, t := range g.Related(s, RelContain) {
			related[t] = true
		}
		for _, t := range g.RelatedBy(s, RelContain) {
			related[t] = true
		}
		for _, t := range g.Shapes {
			if t != s && !related[t] {
				out = append(out, t)
			}
		}
		return out
	}
	return nil
}

// driveCheck implements the inner loop of method 1: given a driving shape
// (similar to the driving query), test whether some graph partner is
// similar to the other (prepared) query with the right angle.
// swapped=true means the driving shape plays the S1 role.
func (db *DB) driveCheck(g *ImageGraph, drive int, rel Rel, otherPQ *core.PreparedQuery, theta Angle, swapped bool) bool {
	for _, p := range db.partners(g, drive, rel, !swapped) {
		if !db.shapeIsSimilarPrepared(p, otherPQ) {
			continue
		}
		var ang float64
		if swapped {
			ang = db.angleBetween(drive, p)
		} else {
			ang = db.angleBetween(p, drive)
		}
		if theta.Matches(ang, db.opts.AngleTol) {
			return true
		}
	}
	return false
}

// CheckSimilarOnImage tests similar(Q) restricted to one image, scanning
// only that image's shapes (used by the planner to filter a small driver
// set without a second index retrieval).
func (db *DB) CheckSimilarOnImage(imageID int, q geom.Poly) bool {
	g, ok := db.graphs[imageID]
	if !ok {
		return false
	}
	pq, err := core.PrepareQuery(q)
	if err != nil {
		return false
	}
	for _, s := range g.Shapes {
		if db.shapeIsSimilarPrepared(s, pq) {
			return true
		}
	}
	return false
}

// CheckTopologicalOnImage tests r(Q1,Q2,θ) restricted to one image.
func (db *DB) CheckTopologicalOnImage(imageID int, rel Rel, q1, q2 geom.Poly, theta Angle) bool {
	g, ok := db.graphs[imageID]
	if !ok {
		return false
	}
	pq1, err := core.PrepareQuery(q1)
	if err != nil {
		return false
	}
	pq2, err := core.PrepareQuery(q2)
	if err != nil {
		return false
	}
	for _, s1 := range g.Shapes {
		if !db.shapeIsSimilarPrepared(s1, pq1) {
			continue
		}
		for _, s2 := range db.partners(g, s1, rel, false) {
			if db.shapeIsSimilarPrepared(s2, pq2) &&
				theta.Matches(db.angleBetween(s1, s2), db.opts.AngleTol) {
				return true
			}
		}
	}
	return false
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
