package query

import (
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// SignificantVertices computes V_S(Q) of §5.2 on the diameter-normalized
// query shape:
//
//	V_S(Q) = ½ Σᵢ [ (π−αᵢ)·αᵢ·4/π² + (l₍ᵢ₋₁₎ + lᵢ)/2 ]
//
// where αᵢ is the interior angle at vertex i (0 for chain endpoints,
// whose "angle" is degenerate) and lᵢ the length of the i-th edge in
// normalized units (diameter = 1). Each vertex contributes a term in
// [0, 1]: 1 is attained by a right angle whose adjacent edges both have
// diameter length. Degenerate vertices (angle near 0 or π, short edges)
// contribute little — V_S counts the structurally dominating vertices.
func SignificantVertices(q geom.Poly) float64 {
	e, err := core.NormalizeCanonical(q)
	if err != nil {
		return 0
	}
	p := e.Poly
	n := len(p.Pts)
	if n < 2 {
		return 0
	}
	edgeLen := func(i int) float64 {
		if p.Closed {
			return p.Edge(((i % n) + n) % n).Length()
		}
		if i < 0 || i >= n-1 {
			return 0 // beyond an open chain's ends
		}
		return p.Edge(i).Length()
	}
	var sum float64
	for i := 0; i < n; i++ {
		var alpha float64
		if p.Closed {
			alpha = geom.InteriorAngle(p.Pts[(i+n-1)%n], p.Pts[i], p.Pts[(i+1)%n])
		} else if i > 0 && i < n-1 {
			alpha = geom.InteriorAngle(p.Pts[i-1], p.Pts[i], p.Pts[i+1])
		} else {
			alpha = 0 // endpoint of an open chain
		}
		angleTerm := (math.Pi - alpha) * alpha * 4 / (math.Pi * math.Pi)
		lenTerm := (edgeLen(i-1) + edgeLen(i)) / 2
		sum += 0.5 * (angleTerm + lenTerm)
	}
	return sum
}

// Estimator predicts the size of shape_similar(Q) as c / V_S(Q) (§5.2:
// the result size is experimentally inversely proportional to the number
// of significant vertices). The constant c depends on the shape base and
// domain and is "adapted statistically every time a query is performed":
// Observe folds each measured (V_S, result size) pair into a running
// average of c = size·V_S.
type Estimator struct {
	c float64
	n int
}

// NewEstimator seeds the constant from the base size: a fresh estimator
// guesses that an average query (V_S ≈ 5) matches about 1% of the base.
func NewEstimator(baseShapes int) *Estimator {
	c := 0.01 * float64(baseShapes) * 5
	if c <= 0 {
		c = 1
	}
	return &Estimator{c: c, n: 1}
}

// C returns the current constant.
func (e *Estimator) C() float64 { return e.c }

// Estimate returns the predicted size of shape_similar(Q).
func (e *Estimator) Estimate(q geom.Poly) float64 {
	vs := SignificantVertices(q)
	if vs <= 0 {
		return e.c
	}
	return e.c / vs
}

// Observe adapts the constant with the measured result size of a
// completed query.
func (e *Estimator) Observe(q geom.Poly, resultSize int) {
	vs := SignificantVertices(q)
	if vs <= 0 {
		return
	}
	obs := float64(resultSize) * vs
	// Running mean over all observations (the seed counts as one).
	e.c = (e.c*float64(e.n) + obs) / float64(e.n+1)
	e.n++
}

// Observations returns how many (seed-inclusive) observations the
// estimator has folded in — exposed so the planner's memoization can be
// verified (each index retrieval observes exactly once).
func (e *Estimator) Observations() int { return e.n }
