// Package query implements the topological query processor of §5:
// per-image shape graphs with contain/overlap edges, the similarity and
// topological operators, the significant-vertex selectivity estimator,
// a small query language with union / intersection / COMPLEMENT, DNF
// rewriting, and a selectivity-driven execution planner.
package query

import (
	"math"

	"repro/internal/geom"
)

// Rel names a topological relation between two shapes.
type Rel string

// The topological relations of §5.1.
const (
	RelContain  Rel = "contain"
	RelOverlap  Rel = "overlap"
	RelDisjoint Rel = "disjoint"
)

// Contains reports g_contain(a, b): a is a closed shape whose interior
// contains every point of b, with no boundary crossing.
func Contains(a, b geom.Poly) bool {
	if !a.Closed {
		return false
	}
	for _, v := range b.Pts {
		if !a.ContainsPoint(v) {
			return false
		}
	}
	// A vertex-inclusion test is not enough if boundaries cross.
	return !boundariesCross(a, b)
}

// Overlaps reports g_overlap(a, b): the boundaries intersect, and neither
// shape contains the other (that would be contain, not overlap).
func Overlaps(a, b geom.Poly) bool {
	if !boundariesCross(a, b) {
		return false
	}
	return !Contains(a, b) && !Contains(b, a)
}

// Disjoint reports g_disjoint(a, b): no boundary intersection and no
// containment either way (§5.1: "there is no edge between shapes that
// are disjoint").
func Disjoint(a, b geom.Poly) bool {
	return !boundariesCross(a, b) && !Contains(a, b) && !Contains(b, a)
}

func boundariesCross(a, b geom.Poly) bool {
	if !a.Bounds().Intersects(b.Bounds()) {
		return false
	}
	for i := 0; i < a.NumEdges(); i++ {
		ea := a.Edge(i)
		for j := 0; j < b.NumEdges(); j++ {
			if hit, _ := ea.Intersect(b.Edge(j)); hit {
				return true
			}
		}
	}
	return false
}

// Angle is the θ argument of a topological predicate: either a specific
// signed angle between the two shapes' diameters, or "any".
type Angle struct {
	Any bool
	Rad float64 // in [-2π, 2π] per §5.1; normalized internally
}

// AnyAngle matches any diameter angle.
func AnyAngle() Angle { return Angle{Any: true} }

// AngleOf builds a specific-angle constraint.
func AngleOf(rad float64) Angle { return Angle{Rad: rad} }

// normRad maps an angle to (-π, π].
func normRad(a float64) float64 {
	for a > math.Pi {
		a -= 2 * math.Pi
	}
	for a <= -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// Matches reports whether the signed angle between two diameters
// satisfies the constraint within tol radians.
func (a Angle) Matches(angle, tol float64) bool {
	if a.Any {
		return true
	}
	d := math.Abs(normRad(angle - normRad(a.Rad)))
	return d <= tol
}

// DiameterAngleBetween returns the ordered signed angle between the
// diameters of two shapes given their diameter orientations in image
// coordinates (§5.3: apply the inverse normalization transforms to the
// vector ((0,0),(1,0)) and take the ordered signed angle).
func DiameterAngleBetween(ang1, ang2 float64) float64 {
	return normRad(ang2 - ang1)
}
