//go:build geosir_purego

package mmap

// CanCast reports whether Cast can alias byte ranges in place. The
// geosir_purego build links no unsafe code, so it never can; every
// caller takes its explicit little-endian decode path instead.
func CanCast() bool { return false }

// Cast always declines under geosir_purego.
func Cast[T any](b []byte) ([]T, bool) { return nil, false }
