// Package mmap provides read-only memory-mapped file access plus the
// zero-copy slice reinterpretation that lets a GSIR3 snapshot's aligned
// little-endian sections be used in place as Go slices.
//
// Portability is expressed as a capability matrix rather than build
// failures:
//
//   - Map/Close are implemented on unix (mmap_unix.go) and stubbed
//     elsewhere (mmap_stub.go); Supported() reports which.
//   - Cast (cast_unsafe.go) reinterprets aligned byte ranges as typed
//     slices on little-endian hosts; under the geosir_purego build tag
//     (cast_purego.go) it always declines, so every caller falls back to
//     its explicit decode path and no unsafe code is linked in.
//
// Callers must treat both capabilities as advisory: when either is
// absent the portable copy-decode loader produces identical results,
// just without the O(1) open.
package mmap

import "errors"

// ErrUnsupported is returned by Map on platforms without mmap support.
var ErrUnsupported = errors.New("mmap: not supported on this platform")

// Mapping is a read-only memory mapping of an entire file. The byte
// slice returned by Data aliases the mapping directly: it is valid only
// until Close, and writes to it fault. Anything that retains a
// sub-slice (an engine serving from the mapping) must also retain the
// Mapping and must not Close it while readers are live.
type Mapping struct {
	data   []byte
	closed bool
}

// Data returns the mapped bytes (nil after Close).
func (m *Mapping) Data() []byte {
	if m == nil || m.closed {
		return nil
	}
	return m.data
}

// Len returns the mapped size in bytes (0 after Close).
func (m *Mapping) Len() int { return len(m.Data()) }

// Resident estimates how many of the mapped bytes are currently
// resident in memory (linux: mincore(2)). It returns -1 when no
// estimate is available on this platform.
func (m *Mapping) Resident() int64 {
	if m == nil || m.closed || len(m.data) == 0 {
		return 0
	}
	return resident(m.data)
}
