//go:build !geosir_purego

package mmap

import "unsafe"

// hostLittleEndian is probed once: slice reinterpretation of a
// little-endian on-disk section is only an identity on little-endian
// hosts.
var hostLittleEndian = func() bool {
	var x uint32 = 0x01020304
	return *(*byte)(unsafe.Pointer(&x)) == 0x04
}()

// CanCast reports whether Cast can alias byte ranges in place on this
// build/host. When false, callers must decode explicitly.
func CanCast() bool { return hostLittleEndian }

// Cast reinterprets b as a []T without copying. T must be a fixed-size
// type whose in-memory layout matches the on-disk little-endian section
// layout exactly (plain float64/int32/uint64 scalars or padding-free
// structs of them). It declines (ok=false) — rather than corrupting —
// when the host is big-endian, b's length is not a multiple of
// sizeof(T), or b is not aligned for T.
func Cast[T any](b []byte) ([]T, bool) {
	if !hostLittleEndian {
		return nil, false
	}
	var zero T
	size := int(unsafe.Sizeof(zero))
	if size == 0 || len(b)%size != 0 {
		return nil, false
	}
	if len(b) == 0 {
		return []T{}, true
	}
	p := unsafe.Pointer(unsafe.SliceData(b))
	if uintptr(p)%unsafe.Alignof(zero) != 0 {
		return nil, false
	}
	return unsafe.Slice((*T)(p), len(b)/size), true
}
