//go:build !unix

package mmap

// Supported reports whether Map works on this platform.
func Supported() bool { return false }

// Map always fails on non-unix platforms; callers fall back to the
// portable copy-decode loader.
func Map(path string) (*Mapping, error) { return nil, ErrUnsupported }

// Close is a no-op on platforms without mappings.
func (m *Mapping) Close() error {
	if m != nil {
		m.closed = true
	}
	return nil
}
