//go:build linux && !geosir_purego

package mmap

import (
	"os"
	"syscall"
	"unsafe"
)

// resident counts how many pages of data are currently resident in the
// page cache via mincore(2). Returns the resident byte estimate, or -1
// if the syscall fails.
func resident(data []byte) int64 {
	page := os.Getpagesize()
	npages := (len(data) + page - 1) / page
	if npages == 0 {
		return 0
	}
	vec := make([]byte, npages)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(unsafe.SliceData(data))),
		uintptr(len(data)),
		uintptr(unsafe.Pointer(unsafe.SliceData(vec))))
	if errno != 0 {
		return -1
	}
	var n int64
	for _, v := range vec {
		if v&1 == 1 {
			n++
		}
	}
	return n * int64(page)
}
