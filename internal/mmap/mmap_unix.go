//go:build unix

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

// Supported reports whether Map works on this platform.
func Supported() bool { return true }

// Map maps the whole file at path read-only. An empty file maps to an
// empty (but valid) Mapping so callers need no special case.
func Map(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s: file too large (%d bytes)", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmap: %s: %w", path, err)
	}
	return &Mapping{data: data}, nil
}

// Close unmaps the file. It is idempotent. After Close every slice that
// aliased the mapping is invalid; touching one faults.
func (m *Mapping) Close() error {
	if m == nil || m.closed || m.data == nil {
		if m != nil {
			m.closed = true
		}
		return nil
	}
	data := m.data
	m.data = nil
	m.closed = true
	return syscall.Munmap(data)
}
