//go:build !linux || geosir_purego

package mmap

// resident is unavailable off linux; -1 means "no estimate".
func resident(data []byte) int64 { return -1 }
