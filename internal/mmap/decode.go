package mmap

import (
	"encoding/binary"
	"math"
)

// Explicit little-endian decode helpers: the portable counterpart of
// Cast, used whenever Cast declines (and always under geosir_purego).
// They copy into fresh heap slices, so the result outlives the source
// bytes.

// F64s decodes b as little-endian float64s into a fresh slice.
func F64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// I32s decodes b as little-endian int32s into a fresh slice.
func I32s(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// U64s decodes b as little-endian uint64s into a fresh slice.
func U64s(b []byte) []uint64 {
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}
