// Package core implements the paper's primary contribution: the
// average-minimum-point-distance similarity criterion (§2.2), shape
// normalization about α-diameters (§2.4), the shape base, and the
// incremental ε-envelope fattening retrieval algorithm (§2.5), together
// with the Hausdorff-family baselines it is compared against (§2.1) and
// the Mehrotra–Gary edge-normalized feature index (§1).
package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/shapeindex"
	"repro/internal/voronoi"
)

// DefaultSamples returns the boundary sampling density used for the
// continuous similarity measure on a shape with n vertices: enough samples
// that every edge contributes, with a floor for very coarse shapes.
func DefaultSamples(n int) int {
	s := 4 * n
	if s < 64 {
		return 64
	}
	return s
}

// BoundaryDist is a nearest-boundary distance oracle for a fixed shape.
// It wraps a segment grid so that repeated evaluations against the same
// shape (the query, during matching) reuse the index.
type BoundaryDist struct {
	shape geom.Poly
	grid  *shapeindex.SegmentGrid
}

// NewBoundaryDist builds the oracle. The shape must have at least one
// edge.
func NewBoundaryDist(shape geom.Poly) *BoundaryDist {
	return &BoundaryDist{shape: shape, grid: shapeindex.NewSegmentGrid(shape.Edges())}
}

// Dist returns the distance from p to the shape's boundary.
func (b *BoundaryDist) Dist(p geom.Point) float64 { return b.grid.Dist(p) }

// AvgMinDist computes the directed continuous measure
// h_avg(A, B) = average over points a of A's boundary of min_{b∈B} d(a,b),
// approximating the boundary integral with `samples` uniformly spaced
// arc-length samples of A (§2.2: the average is over all points of the
// continuous shape A, not just its vertices).
func AvgMinDist(a, b geom.Poly, samples int) float64 {
	if samples <= 0 {
		samples = DefaultSamples(a.NumVertices())
	}
	return AvgMinDistTo(a, NewBoundaryDist(b), samples)
}

// AvgMinDistTo is AvgMinDist against a prebuilt distance oracle.
func AvgMinDistTo(a geom.Poly, b *BoundaryDist, samples int) float64 {
	if samples <= 0 {
		samples = DefaultSamples(a.NumVertices())
	}
	pts := a.Resample(samples)
	if len(pts) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range pts {
		sum += b.Dist(p)
	}
	return sum / float64(len(pts))
}

// AvgMinDistSym is the symmetrized continuous measure
// (h_avg(A,B) + h_avg(B,A)) / 2, used for ranking matches and for the
// similarity-driven external-storage layout (§4.2).
func AvgMinDistSym(a, b geom.Poly, samples int) float64 {
	return (AvgMinDist(a, b, samples) + AvgMinDist(b, a, samples)) / 2
}

// AvgMinDistVertices computes the discrete variant of the measure on A's
// vertex set: average over A's vertices of the distance to B's boundary.
// This is the quantity the fattening algorithm's candidate counters bound
// (a shape with more than a β fraction of vertices outside the
// ε-envelope has AvgMinDistVertices > β·ε).
func AvgMinDistVertices(a geom.Poly, b *BoundaryDist) float64 {
	if len(a.Pts) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range a.Pts {
		sum += b.Dist(p)
	}
	return sum / float64(len(a.Pts))
}

// AvgMinDistVerticesSym is the symmetrized vertex-averaged measure
// (AvgMinDistVertices(A,B) + AvgMinDistVertices(B,A)) / 2. This is the
// matching engine's ranking key: the directed variant alone can be zero
// for dissimilar shapes whose vertices happen to lie on the other
// boundary, while the symmetric variant is zero only when each shape's
// vertices lie on the other's boundary — and it still obeys the envelope
// bound (an entry with more than a β fraction of vertices outside the
// ε-envelope has AvgMinDistVerticesSym > β·ε/2).
func AvgMinDistVerticesSym(a, b geom.Poly) float64 {
	return (AvgMinDistVertices(a, NewBoundaryDist(b)) +
		AvgMinDistVertices(b, NewBoundaryDist(a))) / 2
}

// AvgMinDistVerticesVoronoi computes the same vertex-averaged measure
// using the Voronoi diagram of B's vertices for nearest-vertex location
// (the structure §2.5 prescribes, built in O(m log m)): each vertex of A
// is located with a neighbor walk seeded by the previous answer, and the
// exact boundary distance is then refined over B's edges incident to the
// located vertex and its Voronoi neighbors.
func AvgMinDistVerticesVoronoi(a, b geom.Poly) float64 {
	if len(a.Pts) == 0 || len(b.Pts) == 0 {
		return math.Inf(1)
	}
	vd, err := voronoi.Build(b.Pts)
	if err != nil {
		return math.Inf(1)
	}
	incident := incidentEdges(b)
	var sum float64
	hint := 0
	for _, p := range a.Pts {
		site, vertDist := vd.NearestFrom(p, hint)
		hint = site
		best := vertDist
		refine := func(v int) {
			for _, ei := range incident[v] {
				if d := b.Edge(ei).DistToPoint(p); d < best {
					best = d
				}
			}
		}
		refine(site)
		for _, nb := range vd.Cell(site).Neighbors {
			refine(nb)
		}
		sum += best
	}
	return sum / float64(len(a.Pts))
}

// incidentEdges maps each vertex index of p to the edge indices that touch
// it.
func incidentEdges(p geom.Poly) [][]int {
	out := make([][]int, len(p.Pts))
	for e := 0; e < p.NumEdges(); e++ {
		i := e
		j := (e + 1) % len(p.Pts)
		out[i] = append(out[i], e)
		out[j] = append(out[j], e)
	}
	return out
}

// DirectedHausdorff computes h(A,B) = max over A's sampled boundary of the
// distance to B (§2.1). samples ≤ 0 selects the default density.
func DirectedHausdorff(a, b geom.Poly, samples int) float64 {
	if samples <= 0 {
		samples = DefaultSamples(a.NumVertices())
	}
	oracle := NewBoundaryDist(b)
	var worst float64
	for _, p := range a.Resample(samples) {
		if d := oracle.Dist(p); d > worst {
			worst = d
		}
	}
	return worst
}

// Hausdorff computes H(A,B) = max(h(A,B), h(B,A)).
func Hausdorff(a, b geom.Poly, samples int) float64 {
	return math.Max(DirectedHausdorff(a, b, samples), DirectedHausdorff(b, a, samples))
}

// GeneralizedHausdorff computes the Huttenlocher–Rucklidge partial
// variant h_k: the k-th largest of the vertex-to-shape distances, in both
// directions, taking the max (§2.1). k = 1 is the ordinary (vertex)
// Hausdorff distance; the common choice is k = m/2. k is clamped to each
// direction's vertex count.
func GeneralizedHausdorff(a, b geom.Poly, k int) float64 {
	return math.Max(directedKth(a, b, k), directedKth(b, a, k))
}

func directedKth(a, b geom.Poly, k int) float64 {
	ds := a.VertexDistancesTo(b)
	if len(ds) == 0 {
		return math.Inf(1)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ds)))
	if k < 1 {
		k = 1
	}
	if k > len(ds) {
		k = len(ds)
	}
	return ds[k-1]
}

// PreparedQuery caches the per-query work of the direct similarity
// checks: the canonical normalization and its boundary-distance oracle.
// Preparing once and reusing across many ShapeDistancePrepared calls
// hoists the normalization and grid build out of candidate loops. A
// PreparedQuery is immutable and safe for concurrent use.
type PreparedQuery struct {
	entry  Entry
	oracle *BoundaryDist
	bound  GeomBound

	// blocks, when attached, accumulates the page-granular cost of every
	// entry this query evaluates through the bounded distance checks (§4
	// block accounting). Atomic because one prepared query fans out
	// across shard goroutines.
	blocks *atomic.Int64
}

// PrepareQuery normalizes q canonically and builds its boundary oracle.
func PrepareQuery(q geom.Poly) (*PreparedQuery, error) {
	qe, err := NormalizeCanonical(q)
	if err != nil {
		return nil, err
	}
	return &PreparedQuery{
		entry:  qe,
		oracle: NewBoundaryDist(qe.Poly),
		bound:  GeomBoundOf(qe.Poly.Pts),
	}, nil
}

// Entry returns the query's canonical normalization.
func (pq *PreparedQuery) Entry() Entry { return pq.entry }

// AttachBlockCounter makes the query charge per-entry block costs into
// c. Attach before sharing the query across goroutines.
func (pq *PreparedQuery) AttachBlockCounter(c *atomic.Int64) { pq.blocks = c }

// Oracle returns the query's boundary-distance oracle.
func (pq *PreparedQuery) Oracle() *BoundaryDist { return pq.oracle }

// ShapeDistance returns the similarity distance between a stored shape
// and an arbitrary query shape: the minimum, over the shape's normalized
// copies, of the symmetric vertex-averaged measure against the query's
// canonical normalization. It is the direct (index-free) evaluation of
// g_similar used when the query processor checks a single image (§5.3).
// Callers probing many shapes against one query should PrepareQuery once
// and use ShapeDistancePrepared.
func (b *Base) ShapeDistance(shapeID int, q geom.Poly) (float64, error) {
	if shapeID < 0 || shapeID >= len(b.shapes) {
		return 0, fmt.Errorf("core: shape id %d out of range", shapeID)
	}
	pq, err := PrepareQuery(q)
	if err != nil {
		return 0, err
	}
	return b.ShapeDistancePrepared(shapeID, pq)
}

// ShapeDistancePrepared is ShapeDistance against a prepared query. The
// shape's normalized copies are located through the shape→entries index
// and their frozen oracles serve the back direction, so the per-call
// cost is the distance evaluations alone.
func (b *Base) ShapeDistancePrepared(shapeID int, pq *PreparedQuery) (float64, error) {
	if shapeID < 0 || shapeID >= len(b.shapes) {
		return 0, fmt.Errorf("core: shape id %d out of range", shapeID)
	}
	best := math.Inf(1)
	for _, ei := range b.shapeEntries[shapeID] {
		d := (AvgMinDistVertices(b.entries[ei].Poly, pq.oracle) +
			AvgMinDistVertices(pq.entry.Poly, b.entryOracle(ei))) / 2
		if d < best {
			best = d
		}
	}
	return best, nil
}
