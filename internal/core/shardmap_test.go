package core

import "testing"

func TestShardForStableAndBounded(t *testing.T) {
	ids := []int{0, 1, 2, 17, -3, 1 << 40, -(1 << 40), 999999}
	for _, shards := range []int{1, 2, 3, 7, 16} {
		for _, id := range ids {
			s := ShardFor(id, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardFor(%d, %d) = %d out of range", id, shards, s)
			}
			if s2 := ShardFor(id, shards); s2 != s {
				t.Fatalf("ShardFor(%d, %d) not stable: %d then %d", id, shards, s, s2)
			}
		}
	}
	for _, id := range ids {
		if s := ShardFor(id, 1); s != 0 {
			t.Fatalf("ShardFor(%d, 1) = %d, want 0", id, s)
		}
	}
}

func TestShardForSpreads(t *testing.T) {
	const shards = 4
	counts := make([]int, shards)
	for id := 0; id < 1000; id++ {
		counts[ShardFor(id, shards)]++
	}
	for s, c := range counts {
		if c < 150 || c > 350 {
			t.Fatalf("shard %d got %d of 1000 sequential ids; want a roughly even spread", s, c)
		}
	}
}

func TestShardMapRoundTrip(t *testing.T) {
	m := NewShardMap(3)
	// Image A: 2 shapes on shard 1; image B: dropped, 3 shapes; image C:
	// 1 shape on shard 0.
	m.AssignImage(1, 2)
	m.Skip(3)
	m.AssignImage(0, 1)

	if got := m.NumGlobal(); got != 6 {
		t.Fatalf("NumGlobal = %d, want 6", got)
	}
	if got := m.Shards(); got != 3 {
		t.Fatalf("Shards = %d, want 3", got)
	}
	if got := m.ShardSize(1); got != 2 {
		t.Fatalf("ShardSize(1) = %d, want 2", got)
	}
	if got := m.ShardSize(0); got != 1 {
		t.Fatalf("ShardSize(0) = %d, want 1", got)
	}
	if got := m.ShardSize(2); got != 0 {
		t.Fatalf("ShardSize(2) = %d, want 0", got)
	}

	if g := m.Global(1, 0); g != 0 {
		t.Fatalf("Global(1, 0) = %d, want 0", g)
	}
	if g := m.Global(1, 1); g != 1 {
		t.Fatalf("Global(1, 1) = %d, want 1", g)
	}
	if g := m.Global(0, 0); g != 5 {
		t.Fatalf("Global(0, 0) = %d, want 5", g)
	}

	for global, want := range map[int]ShardLoc{0: {1, 0}, 1: {1, 1}, 5: {0, 0}} {
		shard, local, ok := m.Locate(global)
		if !ok || int32(shard) != want.Shard || int32(local) != want.Local {
			t.Fatalf("Locate(%d) = (%d, %d, %v), want (%d, %d, true)",
				global, shard, local, ok, want.Shard, want.Local)
		}
	}
	for _, global := range []int{2, 3, 4} { // dropped image B
		if _, _, ok := m.Locate(global); ok {
			t.Fatalf("Locate(%d) mapped a dropped shape", global)
		}
	}
	for _, global := range []int{-1, 6, 100} {
		if _, _, ok := m.Locate(global); ok {
			t.Fatalf("Locate(%d) mapped an unassigned id", global)
		}
	}
}
