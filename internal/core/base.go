package core

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/rangesearch"
)

// Options configure a shape base.
type Options struct {
	// Alpha is the α-diameter slack of §2.4: every vertex pair at distance
	// ≥ (1-α)·diameter produces two normalized copies. 0 stores only the
	// true diameter. Larger α improves distortion tolerance at the cost of
	// space.
	Alpha float64
	// Beta is the vertex-fraction tolerance of §2.5: a shape becomes a
	// candidate once at least a (1-β) fraction of its vertices lies inside
	// the current ε-envelope.
	Beta float64
	// Backend selects the simplex range-search structure.
	Backend rangesearch.Kind
	// BackendFactory, when non-nil, overrides Backend with a custom
	// range-search structure built over the flattened vertex set — e.g.
	// the external-memory tree of internal/extindex, so the fattening
	// algorithm runs against external auxiliary structures (§4).
	BackendFactory func(pts []geom.Point) rangesearch.Backend
	// Samples is the boundary sampling density for the continuous
	// measure; ≤ 0 selects DefaultSamples per shape.
	Samples int
	// GrowthFactor is the multiplicative envelope growth per iteration
	// (> 1). The default is 2.
	GrowthFactor float64
}

// DefaultOptions returns the configuration used by the paper's prototype
// experiments: α = 0.1, β = 0.25, kd-tree backend, doubling envelopes.
func DefaultOptions() Options {
	return Options{
		Alpha:        0.1,
		Beta:         0.25,
		Backend:      rangesearch.KindKDTree,
		GrowthFactor: 2,
	}
}

func (o Options) withDefaults() Options {
	if o.GrowthFactor <= 1 {
		o.GrowthFactor = 2
	}
	if o.Backend == "" {
		o.Backend = rangesearch.KindKDTree
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = 0.25
	}
	if o.Alpha < 0 || o.Alpha >= 1 {
		o.Alpha = 0.1
	}
	return o
}

// Base is the shape base: all shapes, their normalized copies, and the
// vertex-level range-search index over the normalized copies.
type Base struct {
	opts    Options
	shapes  []Shape
	entries []Entry

	// shapeEntries maps a shape id to the indices of its normalized
	// copies, maintained incrementally by AddShape.
	shapeEntries [][]int32

	// Flattened index of every vertex of every entry.
	verts     []geom.Point
	vertEntry []int32 // vertex id → entry index
	entryOff  []int32 // entry index → first vertex id (len = len(entries)+1)

	// oracles holds one boundary-distance oracle per entry, built at
	// Freeze. The base is immutable afterward, so the oracles are shared
	// by every query instead of being rebuilt per candidate evaluation.
	oracles []*BoundaryDist

	// geomBounds holds one O(1) geometric summary per entry (centroid +
	// enclosing radius, bounding box), built at Freeze. The match kernel
	// uses them for constant-time admissible lower bounds on the
	// symmetric vertex-averaged distance (DESIGN.md §4.9).
	geomBounds []GeomBound

	// scratch recycles per-query working state across Match calls (see
	// scratch.go). Populated lazily after Freeze.
	scratch sync.Pool

	// entryCost holds the page-granular storage footprint of each entry
	// (vertices + transforms + bound + oracle grid), computed at Freeze
	// or reassembly. The match kernel charges it into Stats.BlocksRead
	// whenever an entry is evaluated (§4 block accounting; see parts.go).
	entryCost []int32

	backend rangesearch.Backend
	frozen  bool
}

// NewBase creates an empty shape base with the given options.
func NewBase(opts Options) *Base {
	return &Base{opts: opts.withDefaults()}
}

// Opts returns the base's effective options.
func (b *Base) Opts() Options { return b.opts }

// AddShape validates, normalizes, and stores a shape, returning its id.
// It must be called before Freeze.
func (b *Base) AddShape(image int, p geom.Poly) (int, error) {
	if b.frozen {
		return 0, fmt.Errorf("core: base is frozen")
	}
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("core: invalid shape: %w", err)
	}
	entries, err := Normalize(p, b.opts.Alpha)
	if err != nil {
		return 0, err
	}
	id := len(b.shapes)
	b.shapes = append(b.shapes, Shape{ID: id, Image: image, Poly: p.Clone()})
	eis := make([]int32, 0, len(entries))
	for _, e := range entries {
		e.ShapeID = id
		eis = append(eis, int32(len(b.entries)))
		b.entries = append(b.entries, e)
	}
	b.shapeEntries = append(b.shapeEntries, eis)
	return id, nil
}

// Freeze builds the vertex-level range-search index. After Freeze the
// base is immutable and ready for matching.
func (b *Base) Freeze() error {
	if b.frozen {
		return nil
	}
	if len(b.entries) == 0 {
		return fmt.Errorf("core: cannot freeze an empty base")
	}
	total := 0
	for _, e := range b.entries {
		total += len(e.Poly.Pts)
	}
	b.verts = make([]geom.Point, 0, total)
	b.vertEntry = make([]int32, 0, total)
	b.entryOff = make([]int32, len(b.entries)+1)
	for ei, e := range b.entries {
		b.entryOff[ei] = int32(len(b.verts))
		for _, p := range e.Poly.Pts {
			b.verts = append(b.verts, p)
			b.vertEntry = append(b.vertEntry, int32(ei))
		}
	}
	b.entryOff[len(b.entries)] = int32(len(b.verts))
	b.geomBounds = make([]GeomBound, len(b.entries))
	for ei := range b.entries {
		b.geomBounds[ei] = GeomBoundOf(b.entries[ei].Poly.Pts)
	}
	if b.opts.BackendFactory != nil {
		b.backend = b.opts.BackendFactory(b.verts)
	} else {
		b.backend = rangesearch.New(b.opts.Backend, b.verts)
	}
	b.buildOracles()
	b.computeEntryCosts()
	b.frozen = true
	return nil
}

// buildOracles precomputes one boundary-distance oracle per entry, in
// parallel: the grids are independent and freeze time is the one moment
// the base may burn all cores without contending with queries.
func (b *Base) buildOracles() {
	b.oracles = make([]*BoundaryDist, len(b.entries))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(b.entries) {
		workers = len(b.entries)
	}
	if workers <= 1 {
		for ei := range b.entries {
			b.oracles[ei] = NewBoundaryDist(b.entries[ei].Poly)
		}
		return
	}
	const stride = 64
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start := int(next.Add(stride)) - stride
				if start >= len(b.entries) {
					return
				}
				end := start + stride
				if end > len(b.entries) {
					end = len(b.entries)
				}
				for ei := start; ei < end; ei++ {
					b.oracles[ei] = NewBoundaryDist(b.entries[ei].Poly)
				}
			}
		}()
	}
	wg.Wait()
}

// EntryOracle returns the frozen boundary-distance oracle of entry i —
// the nearest-boundary structure for the entry's normalized polygon,
// built once at Freeze and safe for concurrent use. It returns nil
// before Freeze.
func (b *Base) EntryOracle(i int) *BoundaryDist {
	if b.oracles == nil {
		return nil
	}
	return b.oracles[i]
}

// entryOracle returns the cached oracle of entry ei, building one on the
// fly only when the base is not frozen yet.
func (b *Base) entryOracle(ei int32) *BoundaryDist {
	if b.oracles != nil {
		return b.oracles[ei]
	}
	return NewBoundaryDist(b.entries[ei].Poly)
}

// NumShapes returns the number of stored shapes.
func (b *Base) NumShapes() int { return len(b.shapes) }

// NumEntries returns the number of normalized copies.
func (b *Base) NumEntries() int { return len(b.entries) }

// NumVertices returns the total vertex count over all normalized copies
// (the n of the paper's complexity analysis).
func (b *Base) NumVertices() int { return len(b.verts) }

// Shape returns the shape with the given id.
func (b *Base) Shape(id int) Shape { return b.shapes[id] }

// Entry returns the i-th normalized copy.
func (b *Base) Entry(i int) Entry { return b.entries[i] }

// Entries returns all normalized copies (shared slice; do not modify).
func (b *Base) Entries() []Entry { return b.entries }

// Shapes returns all shapes (shared slice; do not modify).
func (b *Base) Shapes() []Shape { return b.shapes }

// entryVertexCount returns the number of vertices of entry ei.
func (b *Base) entryVertexCount(ei int32) int32 {
	return b.entryOff[ei+1] - b.entryOff[ei]
}

// EpsilonMax returns the stopping threshold of step 5 (§2.5):
// (A / (2 p l_Q)) · log³ n, where A is the area of the locus of
// normalized shapes (the lune), p the number of shapes, n the total
// number of vertices, and l_Q the perimeter of the normalized query.
func (b *Base) EpsilonMax(queryPerimeter float64) float64 {
	p := float64(len(b.shapes))
	n := float64(len(b.verts))
	if p == 0 || n < 2 || queryPerimeter <= 0 {
		return math.Inf(1)
	}
	lg := math.Log2(n)
	return LuneArea / (2 * p * queryPerimeter) * lg * lg * lg
}

// InitialEpsilon returns the ε₁ of step 1: an envelope width at which the
// expected number of uniformly distributed base vertices inside the
// envelope is about one query shape's worth, so the first iteration is
// likely to see at least one shape.
func (b *Base) InitialEpsilon(queryPerimeter float64) float64 {
	n := float64(len(b.verts))
	if n == 0 || queryPerimeter <= 0 {
		return 1e-3
	}
	// Envelope area ≈ 2·ε·l_Q; vertex density ≈ n / LuneArea. Choose ε so
	// that the envelope holds about the vertex count of an average entry.
	avgEntry := n / float64(len(b.entries))
	eps := avgEntry * LuneArea / (2 * queryPerimeter * n)
	if eps <= 0 || math.IsNaN(eps) {
		return 1e-3
	}
	return eps
}

// EntriesOfShape returns the indices of the normalized copies belonging
// to the given shape id.
func (b *Base) EntriesOfShape(shapeID int) []int {
	if shapeID < 0 || shapeID >= len(b.shapeEntries) {
		return nil
	}
	eis := b.shapeEntries[shapeID]
	out := make([]int, len(eis))
	for i, ei := range eis {
		out[i] = int(ei)
	}
	return out
}
