package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/synth"
)

// unitSquare is the shared oracle target of the measure edge-case tests:
// any valid shape works, the degenerate inputs are always on the
// measured side.
func unitSquare() geom.Poly {
	return geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1))
}

// TestBoundedMeasuresMatchUnbounded pins the contract the whole pruning
// kernel rests on: with cutoff +Inf the bounded evaluators return the
// exact unbounded value bit for bit, with the cutoff exactly at the
// value they still complete (ties survive the strict test), and with a
// cutoff strictly below they abort.
func TestBoundedMeasuresMatchUnbounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	square := unitSquare()
	oracle := NewBoundaryDist(square)
	for trial := 0; trial < 50; trial++ {
		pts := make([]geom.Point, 3+rng.Intn(8))
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		}
		a := geom.Poly{Pts: pts, Closed: false}

		want := AvgMinDistVertices(a, oracle)
		got, ok := AvgMinDistVerticesBounded(a, oracle, math.Inf(1))
		if !ok || got != want {
			t.Fatalf("trial %d: unbounded cutoff: got (%v, %v), want (%v, true)", trial, got, ok, want)
		}
		if got, ok := AvgMinDistVerticesBounded(a, oracle, want); !ok || got != want {
			t.Fatalf("trial %d: cutoff==value must not abort: got (%v, %v)", trial, got, ok)
		}
		if want > 0 {
			if _, ok := AvgMinDistVerticesBounded(a, oracle, want*(1-1e-9)); ok {
				t.Fatalf("trial %d: cutoff below value %v did not abort", trial, want)
			}
		}

		samples := 16 + rng.Intn(64)
		wantC := AvgMinDistTo(a, oracle, samples)
		gotC, ok := AvgMinDistToBounded(a, oracle, samples, math.Inf(1))
		if !ok || gotC != wantC {
			t.Fatalf("trial %d: continuous unbounded: got (%v, %v), want (%v, true)", trial, gotC, ok, wantC)
		}
		if gotC, ok := AvgMinDistToBounded(a, oracle, samples, wantC); !ok || gotC != wantC {
			t.Fatalf("trial %d: continuous cutoff==value aborted", trial)
		}
	}
}

// TestBoundedMeasureEdgeCases drives the evaluators through the
// degenerate inputs the validation layer normally filters out: empty
// vertex sets, single-vertex shapes, zero-length chains, and
// non-positive sample counts.
func TestBoundedMeasureEdgeCases(t *testing.T) {
	oracle := NewBoundaryDist(unitSquare())

	empty := geom.Poly{}
	if d, ok := AvgMinDistVerticesBounded(empty, oracle, 0.5); !ok || !math.IsInf(d, 1) {
		t.Fatalf("empty poly: got (%v, %v), want (+Inf, true)", d, ok)
	}
	if d := AvgMinDistVertices(empty, oracle); !math.IsInf(d, 1) {
		t.Fatalf("empty poly unbounded: got %v, want +Inf", d)
	}
	if d, ok := AvgMinDistToBounded(empty, oracle, 32, 0.5); !ok || !math.IsInf(d, 1) {
		t.Fatalf("empty poly continuous: got (%v, %v), want (+Inf, true)", d, ok)
	}

	// A single-vertex "shape": every resample point is the vertex itself,
	// so the continuous and vertex averages coincide at its distance.
	single := geom.Poly{Pts: []geom.Point{geom.Pt(3, 0.5)}}
	wantD := oracle.Dist(geom.Pt(3, 0.5))
	if d := AvgMinDistVertices(single, oracle); d != wantD {
		t.Fatalf("single vertex: got %v, want %v", d, wantD)
	}
	wantD7 := AvgMinDistTo(single, oracle, 7)
	if d, ok := AvgMinDistToBounded(single, oracle, 7, math.Inf(1)); !ok || d != wantD7 {
		t.Fatalf("single vertex continuous: got (%v, %v), want (%v, true)", d, ok, wantD7)
	}
	if _, ok := AvgMinDistToBounded(single, oracle, 7, wantD/2); ok {
		t.Fatal("single vertex: cutoff below distance did not abort")
	}

	// A zero-length chain (two identical vertices) has zero perimeter:
	// resampling collapses to the first vertex.
	zero := geom.Poly{Pts: []geom.Point{geom.Pt(2, 2), geom.Pt(2, 2)}}
	wantZ := oracle.Dist(geom.Pt(2, 2))
	if d := AvgMinDistVertices(zero, oracle); d != wantZ {
		t.Fatalf("zero-length chain: got %v, want %v", d, wantZ)
	}
	wantZ16 := AvgMinDistTo(zero, oracle, 16)
	if d, ok := AvgMinDistToBounded(zero, oracle, 16, math.Inf(1)); !ok || d != wantZ16 {
		t.Fatalf("zero-length chain continuous: got (%v, %v), want (%v, true)", d, ok, wantZ16)
	}

	// samples <= 0 selects the same default density as the unbounded path.
	tri := geom.NewPolygon(geom.Pt(4, 4), geom.Pt(5, 4), geom.Pt(4.5, 5))
	want := AvgMinDistTo(tri, oracle, 0)
	if got, ok := AvgMinDistToBounded(tri, oracle, 0, math.Inf(1)); !ok || got != want {
		t.Fatalf("default samples: got (%v, %v), want (%v, true)", got, ok, want)
	}
	if got, ok := AvgMinDistToBounded(tri, oracle, -5, math.Inf(1)); !ok || got != want {
		t.Fatalf("negative samples: got (%v, %v), want (%v, true)", got, ok, want)
	}
}

// TestGeomBoundAdmissible checks the O(1) lower bound against the exact
// symmetric vertex-averaged measure on random shape pairs: it must never
// exceed the true distance (that would prune true matches), and it must
// be strictly positive for well-separated shapes (otherwise it prunes
// nothing).
func TestGeomBoundAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		a := randBlob(rng, rng.Float64()*4-2, rng.Float64()*4-2)
		b := randBlob(rng, rng.Float64()*8-4, rng.Float64()*8-4)
		ga := GeomBoundOf(a.Pts)
		gb := GeomBoundOf(b.Pts)
		lb := ga.LowerBound(&gb)
		true1 := AvgMinDistVerticesSym(a, b)
		if lb > true1 {
			t.Fatalf("trial %d: lower bound %v exceeds true distance %v", trial, lb, true1)
		}
	}
	// Far-apart shapes must produce a useful (positive) bound.
	a := randBlob(rng, 0, 0)
	b := randBlob(rng, 50, 0)
	ga, gb := GeomBoundOf(a.Pts), GeomBoundOf(b.Pts)
	if lb := ga.LowerBound(&gb); lb < 40 {
		t.Fatalf("distant shapes: bound %v too weak", lb)
	}
	// The empty summary never prunes.
	e := GeomBoundOf(nil)
	if lb := e.LowerBound(&ga); lb != 0 {
		t.Fatalf("empty bound: got %v, want 0", lb)
	}
	if lb := ga.LowerBound(&e); lb != 0 {
		t.Fatalf("vs empty bound: got %v, want 0", lb)
	}
}

// randBlob returns a small random closed polygon around (cx, cy).
func randBlob(rng *rand.Rand, cx, cy float64) geom.Poly {
	n := 4 + rng.Intn(6)
	pts := make([]geom.Point, n)
	for i := range pts {
		ang := (float64(i) + rng.Float64()*0.5) / float64(n) * 2 * math.Pi
		r := 0.5 + rng.Float64()
		pts[i] = geom.Pt(cx+r*math.Cos(ang), cy+r*math.Sin(ang))
	}
	return geom.Poly{Pts: pts, Closed: true}
}

// TestSharedBound exercises the atomic min: monotone tightening,
// rejection of NaN and negatives, and a concurrent hammering that -race
// watches for unsynchronized access.
func TestSharedBound(t *testing.T) {
	s := NewSharedBound()
	if !math.IsInf(s.Load(), 1) {
		t.Fatalf("fresh bound: got %v, want +Inf", s.Load())
	}
	s.Tighten(2)
	s.Tighten(3) // looser: ignored
	if got := s.Load(); got != 2 {
		t.Fatalf("after Tighten(2), Tighten(3): got %v, want 2", got)
	}
	s.Tighten(math.NaN())
	s.Tighten(-1)
	if got := s.Load(); got != 2 {
		t.Fatalf("NaN/negative must be ignored: got %v", got)
	}

	c := NewSharedBound()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 100; i >= 0; i-- {
				c.Tighten(float64(g*100+i) / 1000)
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != 0 {
		t.Fatalf("concurrent min: got %v, want 0", got)
	}
}

// TestShapeDistancePreparedBounded checks the bounded shape-level
// evaluation against the exhaustive one: same value whenever the true
// distance is within the cutoff (including exactly at it), a definite
// rejection otherwise, and the same range-error contract.
func TestShapeDistancePreparedBounded(t *testing.T) {
	b := NewBase(DefaultOptions())
	images := synth.GenerateBase(synth.BaseSpec{
		Images: 12, MeanShapes: 2, MeanVertices: 12, Prototypes: 5,
		Distortion: 0.03, OpenFraction: 0.25, Seed: 3,
	})
	rng := rand.New(rand.NewSource(5))
	for _, img := range images {
		for _, s := range img.Shapes {
			if _, err := b.AddShape(img.ID, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	q := synth.Distort(rng, b.Shape(0).Poly, 0.02)
	pq, err := PrepareQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ShapeDistancePreparedBounded(-1, pq, 1); err == nil {
		t.Fatal("negative shape id must error")
	}
	if _, _, err := b.ShapeDistancePreparedBounded(b.NumShapes(), pq, 1); err == nil {
		t.Fatal("out-of-range shape id must error")
	}
	for sid := 0; sid < b.NumShapes(); sid++ {
		want, err := b.ShapeDistancePrepared(sid, pq)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := b.ShapeDistancePreparedBounded(sid, pq, math.Inf(1))
		if err != nil || !ok || got != want {
			t.Fatalf("shape %d: unbounded: got (%v, %v, %v), want (%v, true, nil)", sid, got, ok, err, want)
		}
		if got, ok, _ := b.ShapeDistancePreparedBounded(sid, pq, want); !ok || got != want {
			t.Fatalf("shape %d: cutoff==value: got (%v, %v), want (%v, true)", sid, got, ok, want)
		}
		if want > 0 {
			if _, ok, _ := b.ShapeDistancePreparedBounded(sid, pq, want/2); ok {
				t.Fatalf("shape %d: cutoff %v below value %v not rejected", sid, want/2, want)
			}
		}
	}
}

// TestPrunedTopKAgainstScan is the byte-identity property test of the
// prune-first kernel (DESIGN.md §4.9): over a seeded random base, every
// converged Match result — distances, shape ids, entry ids, continuous
// measures — must equal the exhaustive linear scan's exactly, not just
// within tolerance. The pruning is only admissible if no float in the
// output moves.
func TestPrunedTopKAgainstScan(t *testing.T) {
	b := NewBase(DefaultOptions())
	images := synth.GenerateBase(synth.BaseSpec{
		Images: 30, MeanShapes: 3, MeanVertices: 13, Prototypes: 8,
		Distortion: 0.02, OpenFraction: 0.3, Seed: 17,
	})
	for _, img := range images {
		for _, s := range img.Shapes {
			if _, err := b.AddShape(img.ID, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	scan, err := NewScanMatcher(b)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	converged := 0
	for trial := 0; trial < 30; trial++ {
		q := synth.Distort(rng, b.Shape(rng.Intn(b.NumShapes())).Poly, 0.025)
		if q.Validate() != nil {
			continue
		}
		k := 1 + rng.Intn(5)
		fast, st, err := b.Match(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged {
			continue
		}
		converged++
		ref, err := scan.Match(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fast, ref) {
			t.Fatalf("trial %d (k=%d): pruned result diverges from scan:\nfast: %+v\nscan: %+v",
				trial, k, fast, ref)
		}

		// MatchShared over the whole base with a fresh bound must agree
		// byte for byte with Match: publishing its own k-th best back to
		// itself never prunes anything the local bound would not.
		shared, sst, err := b.MatchShared(q, k, NewSharedBound(), true)
		if err != nil {
			t.Fatal(err)
		}
		if !sst.Converged || !reflect.DeepEqual(shared, fast) {
			t.Fatalf("trial %d: MatchShared diverges from Match (converged=%v)", trial, sst.Converged)
		}
	}
	if converged < 20 {
		t.Errorf("only %d/30 queries converged", converged)
	}
}

// TestSharedBoundPretightenedExact is the regression test for the
// shared-bound early exit firing while the local top-k is under-filled.
// A sibling shard may legally publish any value ≥ the merged k-th best —
// including one below this shard's current ε/2 while touched entries
// under the β-candidacy threshold are still unresolved (they are only
// guaranteed DistVertex > β·ε/2 until the bounds pass has run, which
// requires a full top-k). Pre-tightening the bound to exactly the true
// k-th distance — the tightest legal value, injected before the search
// starts so no goroutine timing is involved — must not change one byte
// of the result.
func TestSharedBoundPretightenedExact(t *testing.T) {
	b := NewBase(DefaultOptions())
	images := synth.GenerateBase(synth.BaseSpec{
		Images: 40, MeanShapes: 3, MeanVertices: 14, Prototypes: 6,
		Distortion: 0.05, OpenFraction: 0.3, Seed: 41,
	})
	for _, img := range images {
		for _, s := range img.Shapes {
			if _, err := b.AddShape(img.ID, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	tested := 0
	for trial := 0; trial < 40; trial++ {
		q := synth.Distort(rng, b.Shape(rng.Intn(b.NumShapes())).Poly, 0.03)
		if q.Validate() != nil {
			continue
		}
		k := 1 + rng.Intn(10)
		exact, st, err := b.Match(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Converged || len(exact) < k {
			continue
		}
		tested++
		sb := NewSharedBound()
		sb.Tighten(exact[k-1].DistVertex)
		got, gst, err := b.MatchShared(q, k, sb, false)
		if err != nil {
			t.Fatal(err)
		}
		if !gst.Converged {
			t.Fatalf("trial %d (k=%d): pre-tightened MatchShared did not converge", trial, k)
		}
		if !reflect.DeepEqual(got, exact) {
			t.Fatalf("trial %d (k=%d): pre-tightened shared bound changed the result:\ngot:   %+v\nexact: %+v",
				trial, k, got, exact)
		}
	}
	if tested < 20 {
		t.Errorf("only %d/40 queries exercised the pre-tightened bound", tested)
	}
}
