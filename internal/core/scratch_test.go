package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

// referenceKth computes the k-th smallest of the per-shape bests by the
// method the heap replaced: rebuild and sort.
func referenceKth(best map[int]float64, k int) float64 {
	ds := make([]float64, 0, len(best))
	for _, d := range best {
		ds = append(ds, d)
	}
	sort.Float64s(ds)
	if len(ds) < k {
		return math.Inf(1)
	}
	return ds[k-1]
}

func TestBoundedTopKAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []int{1, 2, 3, 7, 50} {
		topk := newBoundedTopK(k)
		best := make(map[int]float64)
		for op := 0; op < 5000; op++ {
			shape := rng.Intn(120)
			var d float64
			if cur, ok := best[shape]; ok {
				// Strict improvement, as in the match loop (including
				// improvements of shapes far outside the current top k).
				d = cur * (0.1 + 0.9*rng.Float64())
				if d >= cur {
					continue
				}
			} else {
				d = rng.Float64()
			}
			best[shape] = d
			topk.Update(shape, d)
			if got, want := topk.Kth(), referenceKth(best, k); got != want {
				t.Fatalf("k=%d after op %d: Kth() = %v, reference = %v", k, op, got, want)
			}
		}
	}
}

func TestBoundedTopKZeroDistances(t *testing.T) {
	// Distance 0 (identical shapes) must not be confused with "absent".
	topk := newBoundedTopK(2)
	topk.Update(4, 0)
	topk.Update(9, 0)
	if got := topk.Kth(); got != 0 {
		t.Fatalf("Kth with two zero distances = %v, want 0", got)
	}
	topk.Update(1, 0.5)
	if got := topk.Kth(); got != 0 {
		t.Fatalf("Kth after worse shape = %v, want 0", got)
	}
}

func TestMatchScratchEpochReuse(t *testing.T) {
	s := newMatchScratch(4, 8)
	s.reset()
	s.addVertex(2, 0.5)
	s.addVertex(2, 0.25)
	s.setCounted(3)
	s.setDir(1, 0.125)
	s.setEvaluated(0)
	if s.count(2) != 2 || s.sum(2) != 0.75 {
		t.Fatalf("counters: %d / %v", s.count(2), s.sum(2))
	}
	if !s.counted(3) || s.dir(1) != 0.125 || !s.evaluated(0) {
		t.Fatal("scratch state lost within an epoch")
	}
	if len(s.touched) != 1 || s.touched[0] != 2 {
		t.Fatalf("touched = %v", s.touched)
	}

	// A reset must invalidate everything without clearing the arrays.
	s.reset()
	if s.count(2) != 0 || s.sum(2) != 0 || s.counted(3) || s.dir(1) >= 0 || s.evaluated(0) {
		t.Fatal("stale state visible after reset")
	}
	if len(s.touched) != 0 {
		t.Fatalf("touched not cleared: %v", s.touched)
	}
}

func TestMatchScratchEpochWraparound(t *testing.T) {
	s := newMatchScratch(2, 2)
	s.epoch = math.MaxUint32 - 1
	s.reset() // → MaxUint32
	s.setCounted(0)
	s.setDir(1, 0.5)
	s.reset() // wraps: stamps cleared, epoch restarts at 1
	if s.epoch != 1 {
		t.Fatalf("epoch after wraparound = %d", s.epoch)
	}
	if s.counted(0) || s.dir(1) >= 0 {
		t.Fatal("stale stamps survived the wraparound")
	}
}

// TestEntryOracleEquivalence asserts the freeze-time cached oracles are
// bit-for-bit interchangeable with freshly built ones: the same grid over
// the same normalized polygon, so every distance the matcher computes
// through the cache equals the rebuild-per-candidate result exactly.
func TestEntryOracleEquivalence(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	rng := rand.New(rand.NewSource(11))
	queries := make([]geom.Poly, 0, len(testShapes()))
	for _, p := range testShapes() {
		queries = append(queries, distort(p, 0.02, rng))
	}
	for qi, q := range queries {
		qe, err := NormalizeCanonical(q)
		if err != nil {
			t.Fatal(err)
		}
		for ei := 0; ei < b.NumEntries(); ei++ {
			cached := b.EntryOracle(ei)
			if cached == nil {
				t.Fatalf("entry %d: nil oracle after Freeze", ei)
			}
			fresh := NewBoundaryDist(b.Entry(ei).Poly)
			got := AvgMinDistVertices(qe.Poly, cached)
			want := AvgMinDistVertices(qe.Poly, fresh)
			if got != want {
				t.Fatalf("query %d entry %d: cached %v != fresh %v", qi, ei, got, want)
			}
		}
	}
}

// TestShapeDistancePreparedEquivalence asserts the prepared-query fast
// path returns exactly the distances of the one-shot ShapeDistance, and
// that both agree with a direct evaluation that builds every oracle from
// scratch.
func TestShapeDistancePreparedEquivalence(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	rng := rand.New(rand.NewSource(13))
	q := distort(testShapes()[3], 0.02, rng)
	pq, err := PrepareQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	qe, err := NormalizeCanonical(q)
	if err != nil {
		t.Fatal(err)
	}
	qOracle := NewBoundaryDist(qe.Poly)
	for sid := 0; sid < b.NumShapes(); sid++ {
		oneShot, err := b.ShapeDistance(sid, q)
		if err != nil {
			t.Fatal(err)
		}
		prepared, err := b.ShapeDistancePrepared(sid, pq)
		if err != nil {
			t.Fatal(err)
		}
		direct := math.Inf(1)
		for _, ei := range b.EntriesOfShape(sid) {
			e := b.Entry(ei)
			d := (AvgMinDistVertices(e.Poly, qOracle) +
				AvgMinDistVertices(qe.Poly, NewBoundaryDist(e.Poly))) / 2
			if d < direct {
				direct = d
			}
		}
		if oneShot != prepared || oneShot != direct {
			t.Fatalf("shape %d: one-shot %v, prepared %v, direct %v",
				sid, oneShot, prepared, direct)
		}
	}
	if _, err := b.ShapeDistancePrepared(-1, pq); err == nil {
		t.Error("negative shape id should fail")
	}
	if _, err := b.ShapeDistancePrepared(b.NumShapes(), pq); err == nil {
		t.Error("out-of-range shape id should fail")
	}
}

// TestEntriesOfShapeIndex asserts the shape→entries index matches the
// entries' own ShapeID tags, pre- and post-freeze.
func TestEntriesOfShapeIndex(t *testing.T) {
	b := NewBase(DefaultOptions())
	for i, p := range testShapes() {
		if _, err := b.AddShape(i, p); err != nil {
			t.Fatal(err)
		}
	}
	check := func(stage string) {
		for sid := 0; sid < b.NumShapes(); sid++ {
			var want []int
			for ei := 0; ei < b.NumEntries(); ei++ {
				if b.Entry(ei).ShapeID == sid {
					want = append(want, ei)
				}
			}
			got := b.EntriesOfShape(sid)
			if len(got) != len(want) {
				t.Fatalf("%s shape %d: index %v, scan %v", stage, sid, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s shape %d: index %v, scan %v", stage, sid, got, want)
				}
			}
		}
		if out := b.EntriesOfShape(-1); out != nil {
			t.Errorf("%s: EntriesOfShape(-1) = %v", stage, out)
		}
		if out := b.EntriesOfShape(b.NumShapes()); out != nil {
			t.Errorf("%s: EntriesOfShape(out of range) = %v", stage, out)
		}
	}
	check("pre-freeze")
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	check("post-freeze")
}
