package core

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestNormalizeCanonical(t *testing.T) {
	p := geom.NewPolygon(geom.Pt(2, 2), geom.Pt(6, 2), geom.Pt(6, 4), geom.Pt(2, 4))
	e, err := NormalizeCanonical(p)
	if err != nil {
		t.Fatal(err)
	}
	// Diameter endpoints must land on (0,0) and (1,0).
	a := e.Poly.Pts[e.DiamI]
	b := e.Poly.Pts[e.DiamJ]
	if !a.Eq(geom.Pt(0, 0), 1e-9) || !b.Eq(geom.Pt(1, 0), 1e-9) {
		t.Errorf("diameter endpoints at %v, %v", a, b)
	}
	// Inverse maps back to the original.
	back := e.Poly.Transform(e.Inv)
	for i := range p.Pts {
		if !back.Pts[i].Eq(p.Pts[i], 1e-9) {
			t.Errorf("vertex %d: %v != %v", i, back.Pts[i], p.Pts[i])
		}
	}
}

func TestNormalizeCanonicalDegenerate(t *testing.T) {
	if _, err := NormalizeCanonical(geom.Poly{Pts: []geom.Point{geom.Pt(1, 1)}}); err == nil {
		t.Error("single point should fail")
	}
}

func TestNormalizeAlphaZero(t *testing.T) {
	// A 4:1 rectangle has a unique diameter pair (the two diagonals tie).
	p := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 1), geom.Pt(0, 1))
	entries, err := Normalize(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two diagonals × two orientations = 4 copies.
	if len(entries) != 4 {
		t.Fatalf("copies = %d, want 4", len(entries))
	}
	for i, e := range entries {
		if e.Copy != i {
			t.Errorf("copy ordinal %d = %d", i, e.Copy)
		}
		a := e.Poly.Pts[e.DiamI]
		b := e.Poly.Pts[e.DiamJ]
		if !a.Eq(geom.Pt(0, 0), 1e-9) || !b.Eq(geom.Pt(1, 0), 1e-9) {
			t.Errorf("copy %d endpoints %v %v", i, a, b)
		}
	}
}

func TestNormalizeAlphaGrowsCopies(t *testing.T) {
	p := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 1), geom.Pt(0, 1))
	few, _ := Normalize(p, 0)
	many, _ := Normalize(p, 0.3)
	if len(many) <= len(few) {
		t.Errorf("alpha=0.3 copies (%d) should exceed alpha=0 (%d)", len(many), len(few))
	}
	if _, err := Normalize(p, -0.1); err == nil {
		t.Error("negative alpha should fail")
	}
	if _, err := Normalize(p, 1); err == nil {
		t.Error("alpha=1 should fail")
	}
}

func TestDiameterAngle(t *testing.T) {
	// Shape whose diameter is along +y: after normalization the angle of
	// the original diameter must be recovered.
	p := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(0.1, 1), geom.Pt(0, 2))
	e, err := NormalizeCanonical(p)
	if err != nil {
		t.Fatal(err)
	}
	got := e.DiameterAngle()
	if !almostEq(got, math.Pi/2, 1e-9) {
		t.Errorf("DiameterAngle = %v, want π/2", got)
	}
}

func TestLune(t *testing.T) {
	// Area: 2π/3 − √3/2 ≈ 1.22837.
	if !almostEq(LuneArea, 1.2283696986087567, 1e-12) {
		t.Errorf("LuneArea = %v", LuneArea)
	}
	inside := []geom.Point{geom.Pt(0.5, 0), geom.Pt(0.5, 0.8), geom.Pt(0.5, -0.8), geom.Pt(0.1, 0.1)}
	for _, p := range inside {
		if !InLune(p) {
			t.Errorf("%v should be in the lune", p)
		}
	}
	outside := []geom.Point{geom.Pt(-0.1, 0), geom.Pt(1.1, 0), geom.Pt(0.5, 0.9), geom.Pt(2, 2)}
	for _, p := range outside {
		if InLune(p) {
			t.Errorf("%v should be outside the lune", p)
		}
	}
}

func TestClampToLune(t *testing.T) {
	cases := []geom.Point{geom.Pt(2, 2), geom.Pt(-1, 0.5), geom.Pt(0.5, -3), geom.Pt(10, 0)}
	for _, p := range cases {
		q := ClampToLune(p)
		if !InLune(q) {
			t.Errorf("ClampToLune(%v) = %v not in lune", p, q)
		}
	}
	// Points already inside are unchanged.
	in := geom.Pt(0.5, 0.3)
	if got := ClampToLune(in); got != in {
		t.Errorf("interior point moved: %v", got)
	}
}

// Normalized-about-true-diameter shapes must have all vertices inside the
// lune (§3): the diameter is the longest pairwise distance, so every
// vertex is within distance 1 of both endpoints.
func TestCanonicalVerticesInLune(t *testing.T) {
	shapes := []geom.Poly{
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 1), geom.Pt(0, 1)),
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(2, 1), geom.Pt(1, 3), geom.Pt(-1, 2)),
		geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 2), geom.Pt(3, 1), geom.Pt(2, -1)),
	}
	for si, p := range shapes {
		e, err := NormalizeCanonical(p)
		if err != nil {
			t.Fatal(err)
		}
		for vi, v := range e.Poly.Pts {
			if !InLune(v) {
				t.Errorf("shape %d vertex %d = %v outside lune", si, vi, v)
			}
		}
	}
}
