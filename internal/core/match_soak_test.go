package core

import (
	"math/rand"
	"testing"

	"repro/internal/rangesearch"
	"repro/internal/synth"
)

// TestMatchSoakAgainstScan cross-validates the fattening algorithm with
// its per-entry bounds against the exhaustive scan on a randomized base:
// whenever Match converges, its top-k must equal the oracle's (by
// distance; ties may permute ids).
func TestMatchSoakAgainstScan(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, backend := range []rangesearch.Kind{rangesearch.KindKDTree, rangesearch.KindLayered} {
		rng := rand.New(rand.NewSource(99))
		opts := DefaultOptions()
		opts.Backend = backend
		opts.Alpha = 0.065
		b := NewBase(opts)
		images := synth.GenerateBase(synth.BaseSpec{
			Images: 40, MeanShapes: 3, MeanVertices: 14, Prototypes: 9,
			Distortion: 0.02, OpenFraction: 0.3, Seed: 7,
		})
		for _, img := range images {
			for _, s := range img.Shapes {
				if _, err := b.AddShape(img.ID, s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := b.Freeze(); err != nil {
			t.Fatal(err)
		}
		scan, err := NewScanMatcher(b)
		if err != nil {
			t.Fatal(err)
		}
		converged := 0
		for trial := 0; trial < 25; trial++ {
			src := b.Shape(rng.Intn(b.NumShapes())).Poly
			q := synth.Distort(rng, src, 0.03)
			if q.Validate() != nil {
				continue
			}
			k := 1 + rng.Intn(4)
			fast, st, err := b.Match(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Converged {
				continue
			}
			converged++
			ref, err := scan.Match(q, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(ref) {
				t.Fatalf("%s trial %d: %d vs %d results", backend, trial, len(fast), len(ref))
			}
			for i := range ref {
				if !almostEq(fast[i].DistVertex, ref[i].DistVertex, 1e-9) {
					t.Fatalf("%s trial %d rank %d: %v vs %v",
						backend, trial, i, fast[i].DistVertex, ref[i].DistVertex)
				}
			}
		}
		if converged < 15 {
			t.Errorf("%s: only %d/25 queries converged", backend, converged)
		}
	}
}
