package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/envelope"
	"repro/internal/geom"
)

// Match is one retrieved shape with its similarity to the query.
type Match struct {
	ShapeID int
	EntryID int // the normalized copy that realized the distance
	// DistVertex is the symmetric vertex-averaged measure
	// (h_avg over S's vertices to Q + h_avg over Q's vertices to S)/2 —
	// the quantity the envelope counters and distance sums bound
	// (an entry untouched by the ε-envelope has DistVertex ≥ ε/2),
	// and therefore the ranking key.
	DistVertex float64
	// DistContinuous is the symmetrized continuous measure
	// (h_avg(S,Q)+h_avg(Q,S))/2, reported alongside.
	DistContinuous float64
}

// Stats records the work a retrieval performed (the quantities of the
// paper's complexity analysis in §2.5).
type Stats struct {
	Iterations       int     // r: number of envelope fattenings
	FinalEpsilon     float64 // ε at termination
	EpsilonMax       float64 // the stopping threshold (A/2p·l_Q)·log³n
	TrianglesQueried int     // simplex range queries issued
	VerticesReported int     // K plus filtered duplicates from the cover
	VerticesCounted  int     // K: vertices that entered counters
	Candidates       int     // entries that crossed the (1-β) threshold
	Converged        bool    // true: stopped via the similarity bound
}

// Match retrieves the k most similar shapes to q via the incremental
// ε-envelope fattening algorithm (§2.5). The returned matches are sorted
// by increasing DistVertex. Stats.Converged reports whether the algorithm
// proved optimality of the result (true) or gave up at ε_max (false) —
// in the latter case the caller is expected to fall back to geometric
// hashing (§3).
func (b *Base) Match(q geom.Poly, k int) ([]Match, Stats, error) {
	return b.match(q, k, math.Inf(1), nil)
}

// MatchTrace is Match with an access hook: onAccess is invoked with the
// entry id of every normalized copy the algorithm touches (candidate
// evaluations, in discovery order, then the final re-reads for the
// continuous measure). The external-storage experiments (§4) replay this
// trace against a disk layout to count I/O operations.
func (b *Base) MatchTrace(q geom.Poly, k int, onAccess func(entryID int)) ([]Match, Stats, error) {
	return b.match(q, k, math.Inf(1), onAccess)
}

// SimilarShapes returns every shape whose vertex-averaged distance to q
// is at most tau, by fattening envelopes until the ε/2 bound on untouched
// entries exceeds tau (and bound-forcing every touched entry that might
// qualify). This is the shape_similar(Q) primitive of the query
// processor (§5).
func (b *Base) SimilarShapes(q geom.Poly, tau float64) ([]Match, Stats, error) {
	matches, stats, err := b.match(q, len(b.shapes), tau, nil)
	if err != nil {
		return nil, stats, err
	}
	out := matches[:0]
	for _, m := range matches {
		if m.DistVertex <= tau {
			out = append(out, m)
		}
	}
	return out, stats, nil
}

// match is the shared driver. With tau = +Inf it is a pure top-k search
// honoring the ε_max stopping rule; with finite tau it keeps fattening
// until ε/2 > tau so that the threshold answer is complete.
func (b *Base) match(q geom.Poly, k int, tau float64, onAccess func(entryID int)) ([]Match, Stats, error) {
	var stats Stats
	if !b.frozen {
		return nil, stats, fmt.Errorf("core: base must be frozen before matching")
	}
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if err := q.Validate(); err != nil {
		return nil, stats, fmt.Errorf("core: invalid query: %w", err)
	}
	qe, err := NormalizeCanonical(q)
	if err != nil {
		return nil, stats, err
	}
	env, err := envelope.New(qe.Poly)
	if err != nil {
		return nil, stats, err
	}
	oracle := NewBoundaryDist(qe.Poly)
	lQ := qe.Poly.Perimeter()
	epsMax := b.EpsilonMax(lQ)
	stats.EpsilonMax = epsMax
	thresholdEps := epsMax
	if !math.IsInf(tau, 1) {
		// Completeness for the threshold query requires the ε/2 bound on
		// untouched entries to pass tau.
		thresholdEps = math.Max(thresholdEps, 2*tau*1.0001)
	}

	counters := make([]int32, len(b.entries))
	// distSum accumulates the exact boundary distances of the counted
	// vertices per entry: with c of v vertices counted at total distance
	// S, every unevaluated entry obeys
	//   DistVertex ≥ (S + (v-c)·ε) / v / 2
	// since each uncounted vertex is farther than the current ε. These
	// are the "bounds on the similarity measure" of the paper's step 4:
	// they let the algorithm defer (and usually never pay for) entries
	// that provably cannot enter the top k.
	distSum := make([]float64, len(b.entries))
	touched := make([]int32, 0, 256) // entries with ≥1 counted vertex
	counted := newBitset(len(b.verts))
	evaluated := newBitset(len(b.entries))
	bestByShape := make(map[int]Match)

	beta := b.opts.Beta
	grow := b.opts.GrowthFactor

	// Step 1: initial ε, adjusted upward until the envelope is plausibly
	// populated (the O(log n) presence probes of the paper).
	epsPrev := 0.0
	eps := b.InitialEpsilon(lQ)
	for probe := 0; probe < 64 && eps < thresholdEps; probe++ {
		if b.probeEnvelope(env, eps) {
			break
		}
		eps *= grow
	}

	kthBound := func() (float64, int) {
		if len(bestByShape) == 0 {
			return math.Inf(1), 0
		}
		ds := make([]float64, 0, len(bestByShape))
		for _, m := range bestByShape {
			ds = append(ds, m.DistVertex)
		}
		sort.Float64s(ds)
		if len(ds) < k {
			return math.Inf(1), len(ds)
		}
		return ds[k-1], len(ds)
	}

	// dirDist caches the exact directed vertex-average distance of an
	// entry to the query boundary (computed against the query's prebuilt
	// grid — cheap, and independent of ε). -1 = not yet computed. Since
	// DistVertex ≥ dirDist/2, a cached value permanently bounds the entry.
	dirDist := make([]float64, len(b.entries))
	for i := range dirDist {
		dirDist[i] = -1
	}
	ensureDir := func(ei int32) float64 {
		if dirDist[ei] < 0 {
			dirDist[ei] = AvgMinDistVertices(b.entries[ei].Poly, oracle)
		}
		return dirDist[ei]
	}

	// entryBound returns the proven lower bound on DistVertex for an
	// unevaluated entry with the current counters at envelope width eps.
	entryBound := func(ei int32, eps float64) float64 {
		v := float64(b.entryVertexCount(ei))
		c := float64(counters[ei])
		lb := (distSum[ei] + (v-c)*eps) / v / 2
		if d := dirDist[ei]; d >= 0 && d/2 > lb {
			lb = d / 2
		}
		return lb
	}

	// evaluateFull computes the symmetric measure (reusing the cached
	// directed half) and folds the entry into the per-shape best.
	evaluateFull := func(ei int32) {
		evaluated.set(int(ei))
		stats.Candidates++
		if onAccess != nil {
			onAccess(int(ei))
		}
		e := &b.entries[ei]
		dir := ensureDir(ei)
		back := AvgMinDistVertices(qe.Poly, NewBoundaryDist(e.Poly))
		dv := (dir + back) / 2
		cur, ok := bestByShape[e.ShapeID]
		if !ok || dv < cur.DistVertex {
			bestByShape[e.ShapeID] = Match{
				ShapeID:    e.ShapeID,
				EntryID:    int(ei),
				DistVertex: dv,
			}
		}
	}

	for {
		stats.Iterations++
		stats.FinalEpsilon = eps

		// Step 2: collect vertices in the envelope difference via simplex
		// range reporting over the O(m) triangle cover.
		tris := env.AnnulusTriangles(epsPrev, eps)
		var newCandidates []int32
		for _, tr := range tris {
			if tr.IsDegenerate() {
				continue
			}
			stats.TrianglesQueried++
			b.backend.ReportTriangle(tr, func(vid int) {
				stats.VerticesReported++
				if counted.get(vid) {
					return
				}
				// Exact filter: the triangle cover may overreach the
				// annulus; only vertices truly inside the ε-envelope are
				// counted (each exactly once, in its home iteration).
				d := env.Dist(b.verts[vid])
				if d > eps {
					return
				}
				counted.set(vid)
				stats.VerticesCounted++
				ei := b.vertEntry[vid]
				if counters[ei] == 0 {
					touched = append(touched, ei)
				}
				counters[ei]++
				distSum[ei] += d
				need := candidateThreshold(b.entryVertexCount(ei), beta)
				if counters[ei] == need && !evaluated.get(int(ei)) {
					newCandidates = append(newCandidates, ei)
				}
			})
		}

		// Step 4: evaluate candidates, cheapest bound first. An entry is
		// fully evaluated only if neither the counting bound nor the
		// (lazily computed, cached) directed distance rules it out.
		kth, have := kthBound()
		tryEvaluate := func(ei int32) {
			if evaluated.get(int(ei)) {
				return
			}
			ruledOut := func() bool {
				lb := entryBound(ei, eps)
				if math.IsInf(tau, 1) {
					return have >= k && lb >= kth
				}
				return lb > tau
			}
			if ruledOut() {
				return
			}
			// Phase 2: the cheap directed distance, cached forever.
			ensureDir(ei)
			if ruledOut() {
				return
			}
			evaluateFull(ei)
			kth, have = kthBound()
		}
		for _, ei := range newCandidates {
			// β-candidacy (the paper's step 3/4 rule) bootstraps the
			// top-k before any bound is meaningful.
			if math.IsInf(tau, 1) && have < k {
				if !evaluated.get(int(ei)) {
					evaluateFull(ei)
					kth, have = kthBound()
				}
				continue
			}
			tryEvaluate(ei)
		}
		// Bounds pass: any touched entry whose bound undercuts the k-th
		// best (or the threshold) must be resolved before terminating.
		// Before the top-k is populated there is no bound to undercut
		// (ruledOut would be vacuously false for every touched entry), so
		// only the β-candidates above bootstrap it.
		for _, ei := range touched {
			if math.IsInf(tau, 1) && have < k {
				break
			}
			tryEvaluate(ei)
		}

		// Termination: untouched entries have every vertex farther than ε
		// (DistVertex ≥ ε/2), and every touched entry is either evaluated
		// or bounded out; so once the k-th best is ≤ ε/2 the result is
		// provably final.
		if math.IsInf(tau, 1) {
			if have >= k && kth <= eps/2 {
				stats.Converged = true
				break
			}
		} else if eps/2 > tau {
			stats.Converged = true
			break
		}
		// Step 5: grow the envelope or give up at the threshold.
		if eps >= thresholdEps {
			if math.IsInf(tau, 1) {
				stats.Converged = have >= k && kth <= eps/2
			} else {
				stats.Converged = eps/2 >= tau
			}
			break
		}
		epsPrev = eps
		eps = math.Min(eps*grow, thresholdEps)
	}

	// Fill in the continuous measure for the reported matches and sort.
	out := make([]Match, 0, len(bestByShape))
	for _, m := range bestByShape {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DistVertex != out[j].DistVertex {
			return out[i].DistVertex < out[j].DistVertex
		}
		return out[i].ShapeID < out[j].ShapeID
	})
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		if onAccess != nil {
			onAccess(out[i].EntryID)
		}
		e := &b.entries[out[i].EntryID]
		samples := b.opts.Samples
		out[i].DistContinuous = (AvgMinDistTo(e.Poly, oracle, samples) +
			AvgMinDist(qe.Poly, e.Poly, samples)) / 2
	}
	return out, stats, nil
}

// probeEnvelope cheaply checks whether any base vertex lies within eps of
// the query boundary, using counting queries on the triangle cover.
func (b *Base) probeEnvelope(env *envelope.Envelope, eps float64) bool {
	for _, tr := range env.BandTriangles(eps) {
		if tr.IsDegenerate() {
			continue
		}
		found := false
		b.backend.ReportTriangle(tr, func(vid int) {
			if !found && env.Dist(b.verts[vid]) <= eps {
				found = true
			}
		})
		if found {
			return true
		}
	}
	return false
}

// candidateThreshold returns the counter value at which an entry with n
// vertices becomes a candidate: ⌈(1-β)·n⌉, at least 1.
func candidateThreshold(n int32, beta float64) int32 {
	t := int32(math.Ceil((1 - beta) * float64(n)))
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	return t
}

// bitset is a fixed-size bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
