package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/envelope"
	"repro/internal/geom"
)

// Match is one retrieved shape with its similarity to the query.
type Match struct {
	ShapeID int
	EntryID int // the normalized copy that realized the distance
	// DistVertex is the symmetric vertex-averaged measure
	// (h_avg over S's vertices to Q + h_avg over Q's vertices to S)/2 —
	// the quantity the envelope counters and distance sums bound
	// (an entry untouched by the ε-envelope has DistVertex ≥ ε/2),
	// and therefore the ranking key.
	DistVertex float64
	// DistContinuous is the symmetrized continuous measure
	// (h_avg(S,Q)+h_avg(Q,S))/2, reported alongside.
	DistContinuous float64
}

// Stats records the work a retrieval performed (the quantities of the
// paper's complexity analysis in §2.5).
type Stats struct {
	Iterations       int     // r: number of envelope fattenings
	FinalEpsilon     float64 // ε at termination
	EpsilonMax       float64 // the stopping threshold (A/2p·l_Q)·log³n
	TrianglesQueried int     // simplex range queries issued
	VerticesReported int     // K plus filtered duplicates from the cover
	VerticesCounted  int     // K: vertices that entered counters
	Candidates       int     // entries that crossed the (1-β) threshold
	BlocksRead       int     // page-granular storage touched (§4 block accounting)
	Converged        bool    // true: stopped via the similarity bound
}

// Match retrieves the k most similar shapes to q via the incremental
// ε-envelope fattening algorithm (§2.5). The returned matches are sorted
// by increasing DistVertex. Stats.Converged reports whether the algorithm
// proved optimality of the result (true) or gave up at ε_max (false) —
// in the latter case the caller is expected to fall back to geometric
// hashing (§3).
func (b *Base) Match(q geom.Poly, k int) ([]Match, Stats, error) {
	return b.match(q, k, math.Inf(1), nil, nil, nil, false)
}

// MatchTrace is Match with an access hook: onAccess is invoked with the
// entry id of every normalized copy the algorithm touches (candidate
// evaluations, in evaluation order, then the final re-reads for the
// continuous measure). The external-storage experiments (§4) replay this
// trace against a disk layout to count I/O operations.
func (b *Base) MatchTrace(q geom.Poly, k int, onAccess func(entryID int)) ([]Match, Stats, error) {
	return b.match(q, k, math.Inf(1), onAccess, nil, nil, false)
}

// MatchShared is Match pruning against (and, when publish is set,
// tightening) a bound shared with concurrent searches over disjoint
// partitions of one logical base. Candidates proven strictly worse than
// the shared bound are discarded — admissible because the bound only
// ever holds values ≥ the merged k-th best distance — and once every
// unresolved entry is proven outside the shared bound the search stops
// early with Converged set: its contribution to the merged result is
// final. publish must be set only when the caller's k equals the global
// k (a capped search's k-th best does not bound the merged k-th best).
// See DESIGN.md §4.9.
func (b *Base) MatchShared(q geom.Poly, k int, shared *SharedBound, publish bool) ([]Match, Stats, error) {
	return b.match(q, k, math.Inf(1), nil, nil, shared, publish)
}

// MatchSharedRanked is MatchShared with an a-priori candidate ranking:
// rank maps entry ids to a promisingness score (higher is more
// promising; missing means 0), and the bootstrap evaluations that seed
// the top-k visit higher-ranked candidates first. The ranking changes
// only the order in which the envelope's own candidates are evaluated —
// never which entries are discovered, and every pruning decision stays
// admissible — so the returned matches are byte-identical to
// MatchShared's for any rank; a good ranking (e.g. the ANN tier's
// signature agreement, DESIGN.md §4.10) merely tightens the k-th-best
// cutoff sooner, which prunes more and publishes a tighter shared bound
// earlier. Stats may differ (fewer candidates paid for).
func (b *Base) MatchSharedRanked(q geom.Poly, k int, rank map[int32]int32, shared *SharedBound, publish bool) ([]Match, Stats, error) {
	return b.match(q, k, math.Inf(1), nil, rank, shared, publish)
}

// SimilarShapes returns every shape whose vertex-averaged distance to q
// is at most tau, by fattening envelopes until the ε/2 bound on untouched
// entries exceeds tau (and bound-forcing every touched entry that might
// qualify). This is the shape_similar(Q) primitive of the query
// processor (§5).
func (b *Base) SimilarShapes(q geom.Poly, tau float64) ([]Match, Stats, error) {
	matches, stats, err := b.match(q, len(b.shapes), tau, nil, nil, nil, false)
	if err != nil {
		return nil, stats, err
	}
	out := matches[:0]
	for _, m := range matches {
		if m.DistVertex <= tau {
			out = append(out, m)
		}
	}
	return out, stats, nil
}

// match is the shared driver. With tau = +Inf it is a pure top-k search
// honoring the ε_max stopping rule; with finite tau it keeps fattening
// until ε/2 > tau so that the threshold answer is complete.
//
// The kernel is prune-first (DESIGN.md §4.9): every candidate evaluation
// runs under the tightest currently-proven cutoff — min of the live k-th
// distance, its shape's best so far, tau, and the shared cross-shard
// bound — with an admissible partial-sum early exit; candidates are
// visited in ascending lower-bound order so the cutoff tightens as fast
// as possible; and entries proven outside every cutoff are stamped dead
// exactly once (all cutoffs are monotone non-increasing, so a ruling
// never has to be revisited).
func (b *Base) match(q geom.Poly, k int, tau float64, onAccess func(entryID int), rank map[int32]int32, shared *SharedBound, publish bool) ([]Match, Stats, error) {
	var stats Stats
	if !b.frozen {
		return nil, stats, fmt.Errorf("core: base must be frozen before matching")
	}
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive, got %d", k)
	}
	if err := q.Validate(); err != nil {
		return nil, stats, fmt.Errorf("core: invalid query: %w", err)
	}
	qe, err := NormalizeCanonical(q)
	if err != nil {
		return nil, stats, err
	}
	env, err := envelope.New(qe.Poly)
	if err != nil {
		return nil, stats, err
	}
	oracle := NewBoundaryDist(qe.Poly)
	qBound := GeomBoundOf(qe.Poly.Pts)
	lQ := qe.Poly.Perimeter()
	epsMax := b.EpsilonMax(lQ)
	stats.EpsilonMax = epsMax
	thresholdEps := epsMax
	topkMode := math.IsInf(tau, 1)
	if !topkMode {
		// Completeness for the threshold query requires the ε/2 bound on
		// untouched entries to pass tau.
		thresholdEps = math.Max(thresholdEps, 2*tau*1.0001)
	}

	// The per-entry counters and distance sums implement the "bounds on
	// the similarity measure" of the paper's step 4: with c of v vertices
	// counted at total distance S, every unevaluated entry obeys
	//   DistVertex ≥ (S + (v-c)·ε) / v / 2
	// since each uncounted vertex is farther than the current ε. They let
	// the algorithm defer (and usually never pay for) entries that
	// provably cannot enter the top k. The arrays live in a pooled,
	// epoch-stamped scratch recycled across queries (scratch.go).
	scratch := b.getScratch()
	defer b.putScratch(scratch)
	bestByShape := make(map[int]Match)
	topk := newBoundedTopK(k)

	beta := b.opts.Beta
	grow := b.opts.GrowthFactor

	// Step 1: initial ε, adjusted upward until the envelope is plausibly
	// populated (the O(log n) presence probes of the paper).
	epsPrev := 0.0
	eps := b.InitialEpsilon(lQ)
	for probe := 0; probe < 64 && eps < thresholdEps; probe++ {
		if b.probeEnvelope(env, eps) {
			break
		}
		eps *= grow
	}

	// kthBound reads the incremental bound: the k-th smallest per-shape
	// best so far (maintained by the bounded heap) and the number of
	// shapes with an evaluated copy.
	kthBound := func() (float64, int) {
		return topk.Kth(), len(bestByShape)
	}

	// entryBound returns the proven lower bound on DistVertex for an
	// unevaluated entry: the counting bound with the current counters at
	// envelope width eps, the cached directed distance (DistVertex ≥
	// dir/2), and the O(1) geometric bound against the query's summary.
	entryBound := func(ei int32, eps float64) float64 {
		v := float64(b.entryVertexCount(ei))
		c := float64(scratch.count(ei))
		lb := (scratch.sum(ei) + (v-c)*eps) / v / 2
		if d := scratch.dir(ei); d >= 0 && d/2 > lb {
			lb = d / 2
		}
		if g := qBound.LowerBound(&b.geomBounds[ei]); g > lb {
			lb = g
		}
		return lb
	}

	// evaluate resolves one entry under the tightest proven cutoff: the
	// exact symmetric measure is computed with an admissible partial-sum
	// early exit, and an aborted entry — proven strictly worse than
	// everything that could make it matter — is stamped dead instead of
	// cached. The directed half is cached only when computed in full (a
	// partial sum is not the directed distance).
	evaluate := func(ei int32) {
		stats.Candidates++
		stats.BlocksRead += b.blockCost(ei)
		if onAccess != nil {
			onAccess(int(ei))
		}
		e := &b.entries[ei]
		curBest := math.Inf(1)
		cur, haveCur := bestByShape[e.ShapeID]
		if haveCur {
			curBest = cur.DistVertex
		}
		cut := curBest
		if topkMode {
			if kv := topk.Kth(); kv < cut {
				cut = kv
			}
		} else if tau < cut {
			cut = tau
		}
		if shared != nil {
			if sv := shared.Load(); sv < cut {
				cut = sv
			}
		}
		dir := scratch.dir(ei)
		if dir < 0 {
			var full bool
			dir, full = avgMinDistVerticesBoundedAffine(e.Poly, oracle, 0, cut)
			if !full {
				scratch.setDead(ei)
				return
			}
			scratch.setDir(ei, dir)
		}
		back, full := avgMinDistVerticesBoundedAffine(qe.Poly, b.entryOracle(ei), dir, cut)
		if !full {
			scratch.setDead(ei)
			return
		}
		scratch.setEvaluated(ei)
		dv := (dir + back) / 2
		if dv < curBest {
			bestByShape[e.ShapeID] = Match{
				ShapeID:    e.ShapeID,
				EntryID:    int(ei),
				DistVertex: dv,
			}
			topk.Update(e.ShapeID, dv)
			if publish && shared != nil {
				if kv := topk.Kth(); !math.IsInf(kv, 1) {
					shared.Tighten(kv)
				}
			}
		} else if haveCur && dv == curBest && int(ei) < cur.EntryID {
			// Deterministic tie-break: among copies realizing the same
			// distance, report the lowest entry id regardless of the
			// order pruning happened to evaluate them in.
			cur.EntryID = int(ei)
			bestByShape[e.ShapeID] = cur
		}
	}

	// ruledOut reports whether lower bound lb proves an entry irrelevant.
	// Each cutoff is monotone non-increasing over the query, so a true
	// result is permanent and the caller stamps the entry dead.
	kth, have := kthBound()
	ruledOut := func(lb float64) bool {
		if topkMode {
			if have >= k && lb >= kth {
				return true
			}
		} else if lb > tau {
			return true
		}
		if shared != nil && lb > shared.Load() {
			return true
		}
		return false
	}

	// The report callback is allocated once and shared by every triangle
	// query of every fattening iteration (it reads eps and appends to
	// newCandidates through the enclosing variables).
	var newCandidates []int32
	reportVertex := func(vid int) {
		stats.VerticesReported++
		if scratch.counted(vid) {
			return
		}
		// Exact filter: the triangle cover may overreach the annulus;
		// only vertices truly inside the ε-envelope are counted (each
		// exactly once, in its home iteration).
		d := env.Dist(b.verts[vid])
		if d > eps {
			return
		}
		scratch.setCounted(vid)
		stats.VerticesCounted++
		ei := b.vertEntry[vid]
		c := scratch.addVertex(ei, d)
		need := candidateThreshold(b.entryVertexCount(ei), beta)
		if c == need && !scratch.resolved(ei) {
			newCandidates = append(newCandidates, ei)
		}
	}

	for {
		stats.Iterations++
		stats.FinalEpsilon = eps

		// Step 2: collect vertices in the envelope difference via simplex
		// range reporting over the O(m) triangle cover.
		tris := env.AnnulusTriangles(epsPrev, eps)
		newCandidates = newCandidates[:0]
		for _, tr := range tris {
			if tr.IsDegenerate() {
				continue
			}
			stats.TrianglesQueried++
			b.backend.ReportTriangle(tr, reportVertex)
		}

		// Step 4, bootstrap: β-candidacy (the paper's step 3/4 rule)
		// seeds the top-k before any bound is meaningful. An a-priori
		// ranking (the ANN tier) reorders this seeding best-first: the
		// bootstrap stops once the top-k is filled, so starting from the
		// likeliest matches fills it with tighter distances and every
		// later cutoff starts sharper. Candidates not evaluated here are
		// still evaluated or admissibly ruled out in the bounds pass
		// below, so the reordering cannot change the result.
		if topkMode {
			if rank != nil && len(newCandidates) > 1 {
				sort.SliceStable(newCandidates, func(i, j int) bool {
					return rank[newCandidates[i]] > rank[newCandidates[j]]
				})
			}
			for _, ei := range newCandidates {
				if have >= k {
					break
				}
				if !scratch.resolved(ei) {
					evaluate(ei)
					kth, have = kthBound()
				}
			}
		}

		// Step 4, bounds pass: every touched, unresolved entry is either
		// ruled out by its proven lower bound (permanently — the cutoffs
		// only tighten) or evaluated, in ascending lower-bound order so
		// the k-th best tightens as fast as possible and later entries
		// face the sharpest cutoff. Before the top-k is populated there
		// is no bound to undercut, so only the β-candidates above run.
		if !topkMode || have >= k {
			scratch.orderEnt = scratch.orderEnt[:0]
			scratch.orderLB = scratch.orderLB[:0]
			for _, ei := range scratch.touched {
				if scratch.resolved(ei) {
					continue
				}
				lb := entryBound(ei, eps)
				if ruledOut(lb) {
					scratch.setDead(ei)
					continue
				}
				scratch.orderEnt = append(scratch.orderEnt, ei)
				scratch.orderLB = append(scratch.orderLB, lb)
			}
			sort.Sort(boundOrder{scratch})
			for i, ei := range scratch.orderEnt {
				if scratch.resolved(ei) {
					continue
				}
				// The cutoffs may have tightened since the list was
				// built; re-test the stored bound before paying for the
				// evaluation.
				if ruledOut(scratch.orderLB[i]) {
					scratch.setDead(ei)
					continue
				}
				evaluate(ei)
				kth, have = kthBound()
			}
		}

		// Termination: untouched entries have every vertex farther than ε
		// (DistVertex ≥ ε/2), and every touched entry is either evaluated
		// or bounded out; so once the k-th best is ≤ ε/2 the result is
		// provably final.
		if topkMode {
			if have >= k && kth <= eps/2 {
				stats.Converged = true
				break
			}
			// Shared-bound early exit: once the local top-k is full
			// (have >= k) the bounds pass above has run, so every
			// touched entry is evaluated or ruled out and every
			// unresolved entry has DistVertex ≥ ε/2 > shared ≥ the
			// merged k-th best — nothing this search could still
			// evaluate can enter the merged result, so its
			// contribution is final. Before the top-k fills, touched
			// entries below the β-candidacy threshold are only
			// guaranteed DistVertex > β·ε/2, which a shared bound in
			// (β·ε/2, ε/2) would not dominate, so the exit must wait.
			if shared != nil && have >= k && shared.Load() < eps/2 {
				stats.Converged = true
				break
			}
		} else if eps/2 > tau {
			stats.Converged = true
			break
		}
		// Step 5: grow the envelope or give up at the threshold.
		if eps >= thresholdEps {
			if topkMode {
				stats.Converged = have >= k && kth <= eps/2
			} else {
				stats.Converged = eps/2 >= tau
			}
			break
		}
		epsPrev = eps
		eps = math.Min(eps*grow, thresholdEps)
	}

	// Fill in the continuous measure for the reported matches and sort.
	out := make([]Match, 0, len(bestByShape))
	for _, m := range bestByShape {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DistVertex != out[j].DistVertex {
			return out[i].DistVertex < out[j].DistVertex
		}
		return out[i].ShapeID < out[j].ShapeID
	})
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		if onAccess != nil {
			onAccess(out[i].EntryID)
		}
		ei := out[i].EntryID
		e := &b.entries[ei]
		stats.BlocksRead += b.blockCost(int32(ei))
		out[i].DistContinuous = (b.avgMinDistToScratch(e.Poly, oracle, scratch) +
			b.avgMinDistToScratch(qe.Poly, b.entryOracle(int32(ei)), scratch)) / 2
	}
	return out, stats, nil
}

// avgMinDistToScratch is AvgMinDistTo at the base's configured sampling
// density, resampling into the pooled scratch buffer so the final
// continuous-measure fill allocates nothing. The produced values are
// identical to AvgMinDistTo's (same sample points, same accumulation).
func (b *Base) avgMinDistToScratch(a geom.Poly, o *BoundaryDist, scratch *matchScratch) float64 {
	samples := b.opts.Samples
	if samples <= 0 {
		samples = DefaultSamples(a.NumVertices())
	}
	scratch.resample = a.ResampleInto(scratch.resample, samples)
	if len(scratch.resample) == 0 {
		return math.Inf(1)
	}
	var sum float64
	for _, p := range scratch.resample {
		sum += o.Dist(p)
	}
	return sum / float64(len(scratch.resample))
}

// probeEnvelope cheaply checks whether any base vertex lies within eps of
// the query boundary, using counting queries on the triangle cover.
func (b *Base) probeEnvelope(env *envelope.Envelope, eps float64) bool {
	found := false
	probe := func(vid int) {
		if !found && env.Dist(b.verts[vid]) <= eps {
			found = true
		}
	}
	for _, tr := range env.BandTriangles(eps) {
		if tr.IsDegenerate() {
			continue
		}
		b.backend.ReportTriangle(tr, probe)
		if found {
			return true
		}
	}
	return false
}

// candidateThreshold returns the counter value at which an entry with n
// vertices becomes a candidate: ⌈(1-β)·n⌉, at least 1.
func candidateThreshold(n int32, beta float64) int32 {
	t := int32(math.Ceil((1 - beta) * float64(n)))
	if t < 1 {
		t = 1
	}
	if t > n {
		t = n
	}
	return t
}
