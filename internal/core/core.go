package core
