package core

import (
	"math"

	"repro/internal/geom"
)

// This file holds the per-query working state of the fattening search
// (§2.5) in a form that can be recycled across queries. A frozen base
// serves every query with the same entry/vertex population, so the
// O(#entries + #vertices) arrays the algorithm needs are allocated once
// per worker goroutine and handed out through a sync.Pool; validity is
// tracked with epoch stamps so a reset costs O(1) instead of a clear.

// matchScratch is the recyclable working state of one match() call.
// Every per-entry and per-vertex array is paired with a stamp array: a
// slot is live only when its stamp equals the current epoch, so bumping
// the epoch invalidates the whole scratch at once. Steady-state matching
// therefore allocates O(touched entries), not O(base size).
type matchScratch struct {
	epoch uint32

	// Per-entry state of the envelope counters (step 3).
	counters   []int32   // vertices counted inside the envelope
	distSum    []float64 // exact boundary distances of counted vertices
	entryStamp []uint32  // counters/distSum validity

	// Per-entry cache of the directed vertex-average distance to the
	// query boundary (the cheap half of the symmetric measure).
	dirDist  []float64
	dirStamp []uint32

	// Per-entry "fully evaluated" flag.
	evalStamp []uint32

	// Per-entry "proven irrelevant" flag: the entry's distance is proven
	// strictly above every cutoff that could make it matter (current kth,
	// its shape's best, tau, the shared cross-shard bound). All cutoffs
	// are monotonically non-increasing over a query, so the ruling is
	// permanent and the entry is skipped by every later pass.
	deadStamp []uint32

	// Per-vertex "already counted" flag (each vertex enters the counters
	// exactly once, in its home iteration).
	vertStamp []uint32

	// Entries with at least one counted vertex, in discovery order.
	touched []int32

	// Best-first ordering buffers of the per-iteration bounds pass
	// (entries paired with their lower bounds, sorted ascending).
	orderEnt []int32
	orderLB  []float64

	// Resample buffer for the final continuous-measure fill.
	resample []geom.Point
}

func newMatchScratch(entries, verts int) *matchScratch {
	return &matchScratch{
		counters:   make([]int32, entries),
		distSum:    make([]float64, entries),
		entryStamp: make([]uint32, entries),
		dirDist:    make([]float64, entries),
		dirStamp:   make([]uint32, entries),
		evalStamp:  make([]uint32, entries),
		deadStamp:  make([]uint32, entries),
		vertStamp:  make([]uint32, verts),
		touched:    make([]int32, 0, 256),
	}
}

// reset invalidates all state in O(1) by advancing the epoch. On the
// (rare) wraparound it clears the stamp arrays so stale stamps from
// 2^32 queries ago cannot alias the new epoch.
func (s *matchScratch) reset() {
	s.epoch++
	if s.epoch == 0 {
		clearU32(s.entryStamp)
		clearU32(s.dirStamp)
		clearU32(s.evalStamp)
		clearU32(s.deadStamp)
		clearU32(s.vertStamp)
		s.epoch = 1
	}
	s.touched = s.touched[:0]
}

func clearU32(a []uint32) {
	for i := range a {
		a[i] = 0
	}
}

// count returns the live counter of entry ei (0 when untouched this
// query).
func (s *matchScratch) count(ei int32) int32 {
	if s.entryStamp[ei] != s.epoch {
		return 0
	}
	return s.counters[ei]
}

// sum returns the live distance sum of entry ei.
func (s *matchScratch) sum(ei int32) float64 {
	if s.entryStamp[ei] != s.epoch {
		return 0
	}
	return s.distSum[ei]
}

// addVertex folds one counted vertex at boundary distance d into entry
// ei's counters and returns the new counter value. The first vertex of
// an entry records it in touched.
func (s *matchScratch) addVertex(ei int32, d float64) int32 {
	if s.entryStamp[ei] != s.epoch {
		s.entryStamp[ei] = s.epoch
		s.counters[ei] = 0
		s.distSum[ei] = 0
		s.touched = append(s.touched, ei)
	}
	s.counters[ei]++
	s.distSum[ei] += d
	return s.counters[ei]
}

// dir returns the cached directed distance of entry ei, or -1 when not
// yet computed this query.
func (s *matchScratch) dir(ei int32) float64 {
	if s.dirStamp[ei] != s.epoch {
		return -1
	}
	return s.dirDist[ei]
}

func (s *matchScratch) setDir(ei int32, d float64) {
	s.dirStamp[ei] = s.epoch
	s.dirDist[ei] = d
}

func (s *matchScratch) evaluated(ei int32) bool { return s.evalStamp[ei] == s.epoch }
func (s *matchScratch) setEvaluated(ei int32)   { s.evalStamp[ei] = s.epoch }

func (s *matchScratch) dead(ei int32) bool { return s.deadStamp[ei] == s.epoch }
func (s *matchScratch) setDead(ei int32)   { s.deadStamp[ei] = s.epoch }

// resolved reports that the entry needs no further work this query:
// its exact distance is known, or it is proven irrelevant.
func (s *matchScratch) resolved(ei int32) bool {
	return s.evalStamp[ei] == s.epoch || s.deadStamp[ei] == s.epoch
}

func (s *matchScratch) counted(vid int) bool { return s.vertStamp[vid] == s.epoch }
func (s *matchScratch) setCounted(vid int)   { s.vertStamp[vid] = s.epoch }

// getScratch hands out a scratch sized for the frozen base, resetting it
// for a fresh query. Concurrent Match calls each get their own scratch;
// steady state holds about one per active worker goroutine.
func (b *Base) getScratch() *matchScratch {
	s, _ := b.scratch.Get().(*matchScratch)
	if s == nil {
		s = newMatchScratch(len(b.entries), len(b.verts))
	}
	s.reset()
	return s
}

func (b *Base) putScratch(s *matchScratch) { b.scratch.Put(s) }

// boundOrder sorts the bounds-pass work list ascending by lower bound,
// breaking ties on entry index so the evaluation order — and with it the
// Stats counters — is deterministic.
type boundOrder struct{ s *matchScratch }

func (o boundOrder) Len() int { return len(o.s.orderEnt) }
func (o boundOrder) Less(i, j int) bool {
	if o.s.orderLB[i] != o.s.orderLB[j] {
		return o.s.orderLB[i] < o.s.orderLB[j]
	}
	return o.s.orderEnt[i] < o.s.orderEnt[j]
}
func (o boundOrder) Swap(i, j int) {
	o.s.orderEnt[i], o.s.orderEnt[j] = o.s.orderEnt[j], o.s.orderEnt[i]
	o.s.orderLB[i], o.s.orderLB[j] = o.s.orderLB[j], o.s.orderLB[i]
}

// boundedTopK maintains the k-th smallest of the per-shape best
// distances incrementally. The old implementation rebuilt and sorted the
// full best-set on every bound check — O(n log n) per candidate; this is
// a size-bounded max-heap with lazy deletion, O(log k) amortized per
// update and O(1) per bound read.
//
// Invariants: heapVal maps a shape to the distance of its single live
// heap item (per-shape values strictly decrease, so any older item for
// the same shape is stale and skipped when it surfaces). live counts the
// live items, pruned down to k by evicting the current maximum — safe
// because an evicted value is ≥ every retained value and per-shape
// values at eviction time, and can only re-enter through a strictly
// smaller update.
type boundedTopK struct {
	k       int
	heapVal map[int]float64 // shape id → value of its live heap item
	items   []topkItem      // max-heap by dist
	live    int
}

type topkItem struct {
	shape int
	dist  float64
}

func newBoundedTopK(k int) *boundedTopK {
	return &boundedTopK{k: k, heapVal: make(map[int]float64)}
}

// Update records a strictly improved best distance for shape.
func (t *boundedTopK) Update(shape int, dist float64) {
	if hv, ok := t.heapVal[shape]; ok {
		if dist >= hv {
			return // not an improvement; callers never do this
		}
		t.heapVal[shape] = dist
		t.push(topkItem{shape, dist}) // the old item is now stale
		return
	}
	t.heapVal[shape] = dist
	t.push(topkItem{shape, dist})
	t.live++
	for t.live > t.k {
		top := t.pop()
		if hv, ok := t.heapVal[top.shape]; ok && hv == top.dist {
			delete(t.heapVal, top.shape)
			t.live--
		}
	}
}

// Kth returns the k-th smallest tracked distance, or +Inf while fewer
// than k shapes are tracked.
func (t *boundedTopK) Kth() float64 {
	for len(t.items) > 0 {
		top := t.items[0]
		if hv, ok := t.heapVal[top.shape]; ok && hv == top.dist {
			break
		}
		t.pop() // stale leftover of a since-improved or evicted shape
	}
	if t.live < t.k {
		return math.Inf(1)
	}
	return t.items[0].dist
}

func (t *boundedTopK) push(it topkItem) {
	t.items = append(t.items, it)
	i := len(t.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if t.items[p].dist >= t.items[i].dist {
			break
		}
		t.items[p], t.items[i] = t.items[i], t.items[p]
		i = p
	}
}

func (t *boundedTopK) pop() topkItem {
	top := t.items[0]
	last := len(t.items) - 1
	t.items[0] = t.items[last]
	t.items = t.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(t.items) && t.items[l].dist > t.items[big].dist {
			big = l
		}
		if r < len(t.items) && t.items[r].dist > t.items[big].dist {
			big = r
		}
		if big == i {
			break
		}
		t.items[i], t.items[big] = t.items[big], t.items[i]
		i = big
	}
	return top
}
