package core

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Dynamic wraps the (static, frozen) shape base with insert and delete
// support — the dynamic-environment capability the paper's related work
// ([5, 7]) highlights for similarity search. The design is the classic
// main+overflow scheme: a frozen Base serves index queries; newly
// inserted shapes accumulate in an overflow area searched exactly
// (linear scan over their normalized copies); deletions are tombstones
// filtered out of results. When the overflow or tombstone population
// crosses a threshold, the structure rebuilds the frozen base from the
// live shapes (the §4 "rehashing" moment, at the index level).
type Dynamic struct {
	opts Options

	// shapes is the global shape registry: ids are stable across
	// rebuilds; tombstoned entries keep their slot.
	shapes  []Shape
	deleted []bool
	live    int

	frozen    *Base // may be nil before the first rebuild
	frozenIDs []int // frozen-base shape id → global id
	frozenDel int   // tombstones that still shadow the frozen base

	overflow        []int             // global ids not yet in the frozen base
	overflowEntries [][]Entry         // normalized copies per overflow shape
	overflowOracles [][]*BoundaryDist // boundary oracles per overflow copy

	// RebuildFraction triggers a rebuild once overflow+tombstones exceed
	// this fraction of the live population (default 0.25).
	RebuildFraction float64
	// MinRebuild is the absolute overflow size below which no rebuild
	// happens (default 64).
	MinRebuild int
}

// NewDynamic creates an empty dynamic base.
func NewDynamic(opts Options) *Dynamic {
	return &Dynamic{opts: opts.withDefaults(), RebuildFraction: 0.25, MinRebuild: 64}
}

// Len returns the number of live shapes.
func (d *Dynamic) Len() int { return d.live }

// OverflowLen returns the number of shapes pending in the overflow area.
func (d *Dynamic) OverflowLen() int { return len(d.overflow) }

// Insert adds a shape and returns its stable id.
func (d *Dynamic) Insert(image int, p geom.Poly) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("core: invalid shape: %w", err)
	}
	entries, err := Normalize(p, d.opts.Alpha)
	if err != nil {
		return 0, err
	}
	id := len(d.shapes)
	d.shapes = append(d.shapes, Shape{ID: id, Image: image, Poly: p.Clone()})
	d.deleted = append(d.deleted, false)
	d.live++
	d.overflow = append(d.overflow, id)
	d.overflowEntries = append(d.overflowEntries, entries)
	// Build the copies' oracles once at insert: the overflow area is
	// scanned exactly on every query until the next rebuild.
	oracles := make([]*BoundaryDist, len(entries))
	for i := range entries {
		oracles[i] = NewBoundaryDist(entries[i].Poly)
	}
	d.overflowOracles = append(d.overflowOracles, oracles)
	d.maybeRebuild()
	return id, nil
}

// Delete tombstones a shape.
func (d *Dynamic) Delete(id int) error {
	if id < 0 || id >= len(d.shapes) {
		return fmt.Errorf("core: shape id %d out of range", id)
	}
	if d.deleted[id] {
		return fmt.Errorf("core: shape %d already deleted", id)
	}
	d.deleted[id] = true
	d.live--
	// If the shape is still in overflow, remove it there directly.
	for i, gid := range d.overflow {
		if gid == id {
			d.overflow = append(d.overflow[:i], d.overflow[i+1:]...)
			d.overflowEntries = append(d.overflowEntries[:i], d.overflowEntries[i+1:]...)
			d.overflowOracles = append(d.overflowOracles[:i], d.overflowOracles[i+1:]...)
			return nil
		}
	}
	d.frozenDel++
	d.maybeRebuild()
	return nil
}

// Shape returns a live shape by id.
func (d *Dynamic) Shape(id int) (Shape, error) {
	if id < 0 || id >= len(d.shapes) || d.deleted[id] {
		return Shape{}, fmt.Errorf("core: shape %d not found", id)
	}
	return d.shapes[id], nil
}

// maybeRebuild rebuilds when the pending work crosses the threshold.
func (d *Dynamic) maybeRebuild() {
	pending := len(d.overflow) + d.frozenDel
	if pending < d.MinRebuild {
		return
	}
	if float64(pending) < d.RebuildFraction*float64(max(d.live, 1)) {
		return
	}
	_ = d.Rebuild()
}

// Rebuild folds the overflow and tombstones into a fresh frozen base.
// It is a no-op on an empty live set.
func (d *Dynamic) Rebuild() error {
	if d.live == 0 {
		d.frozen = nil
		d.frozenIDs = nil
		d.frozenDel = 0
		d.overflow = nil
		d.overflowEntries = nil
		d.overflowOracles = nil
		return nil
	}
	b := NewBase(d.opts)
	var ids []int
	for gid := range d.shapes {
		if d.deleted[gid] {
			continue
		}
		if _, err := b.AddShape(d.shapes[gid].Image, d.shapes[gid].Poly); err != nil {
			return fmt.Errorf("core: rebuild: shape %d: %w", gid, err)
		}
		ids = append(ids, gid)
	}
	if err := b.Freeze(); err != nil {
		return err
	}
	d.frozen = b
	d.frozenIDs = ids
	d.frozenDel = 0
	d.overflow = nil
	d.overflowEntries = nil
	d.overflowOracles = nil
	return nil
}

// Match retrieves the k most similar live shapes, merging the frozen
// index's answer with an exact scan of the overflow area. Returned
// ShapeIDs are the Dynamic's stable global ids (EntryID is meaningful
// only for frozen results and is -1 for overflow hits).
func (d *Dynamic) Match(q geom.Poly, k int) ([]Match, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive")
	}
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}
	qe, err := NormalizeCanonical(q)
	if err != nil {
		return nil, stats, err
	}
	oracle := NewBoundaryDist(qe.Poly)

	var merged []Match
	if d.frozen != nil {
		// Ask for enough extra results to absorb tombstoned shadows.
		want := k + d.frozenDel
		if want > d.frozen.NumShapes() {
			want = d.frozen.NumShapes()
		}
		ms, st, err := d.frozen.Match(q, want)
		if err != nil {
			return nil, stats, err
		}
		stats = st
		for _, m := range ms {
			gid := d.frozenIDs[m.ShapeID]
			if d.deleted[gid] {
				continue
			}
			m.ShapeID = gid
			merged = append(merged, m)
		}
	}
	// Exact scan of the overflow area, against the oracles cached at
	// insert time.
	for i, gid := range d.overflow {
		best := math.Inf(1)
		for ei := range d.overflowEntries[i] {
			e := &d.overflowEntries[i][ei]
			dv := (AvgMinDistVertices(e.Poly, oracle) +
				AvgMinDistVertices(qe.Poly, d.overflowOracles[i][ei])) / 2
			if dv < best {
				best = dv
			}
		}
		if !math.IsInf(best, 1) {
			merged = append(merged, Match{ShapeID: gid, EntryID: -1, DistVertex: best})
		}
	}
	sortMatches(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, stats, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
