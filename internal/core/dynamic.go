package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Dynamic wraps the (static, frozen) shape base with insert and delete
// support — the dynamic-environment capability the paper's related work
// ([5, 7]) highlights for similarity search. The design is the classic
// main+overflow scheme: a frozen Base serves index queries; newly
// inserted shapes accumulate in an overflow area searched exactly
// (linear scan over their normalized copies); deletions are tombstones
// filtered out of results. When the overflow or tombstone population
// crosses a threshold, the structure rebuilds the frozen base from the
// live shapes (the §4 "rehashing" moment, at the index level).
type Dynamic struct {
	opts Options

	// shapes is the global shape registry: ids are stable across
	// rebuilds; tombstoned entries keep their slot.
	shapes  []Shape
	deleted []bool
	live    int

	frozen    *Base // may be nil before the first rebuild
	frozenIDs []int // frozen-base shape id → global id
	frozenDel int   // tombstones that still shadow the frozen base

	overflow        []int             // global ids not yet in the frozen base
	overflowEntries [][]Entry         // normalized copies per overflow shape
	overflowOracles [][]*BoundaryDist // boundary oracles per overflow copy
	overflowIdx     map[int]int       // global id → index into overflow
	frozenIdx       map[int]int       // global id → frozen-base shape id

	// RebuildFraction triggers a rebuild once overflow+tombstones exceed
	// this fraction of the live population (default 0.25).
	RebuildFraction float64
	// MinRebuild is the absolute overflow size below which no rebuild
	// happens (default 64).
	MinRebuild int
}

// NewDynamic creates an empty dynamic base.
func NewDynamic(opts Options) *Dynamic {
	return &Dynamic{opts: opts.withDefaults(), RebuildFraction: 0.25, MinRebuild: 64}
}

// Len returns the number of live shapes.
func (d *Dynamic) Len() int { return d.live }

// OverflowLen returns the number of shapes pending in the overflow area.
func (d *Dynamic) OverflowLen() int { return len(d.overflow) }

// Insert adds a shape and returns its stable id.
func (d *Dynamic) Insert(image int, p geom.Poly) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, fmt.Errorf("core: invalid shape: %w", err)
	}
	entries, err := Normalize(p, d.opts.Alpha)
	if err != nil {
		return 0, err
	}
	id := len(d.shapes)
	d.shapes = append(d.shapes, Shape{ID: id, Image: image, Poly: p.Clone()})
	d.deleted = append(d.deleted, false)
	d.live++
	if d.overflowIdx == nil {
		d.overflowIdx = make(map[int]int)
	}
	d.overflowIdx[id] = len(d.overflow)
	d.overflow = append(d.overflow, id)
	d.overflowEntries = append(d.overflowEntries, entries)
	// Build the copies' oracles once at insert: the overflow area is
	// scanned exactly on every query until the next rebuild.
	oracles := make([]*BoundaryDist, len(entries))
	for i := range entries {
		oracles[i] = NewBoundaryDist(entries[i].Poly)
	}
	d.overflowOracles = append(d.overflowOracles, oracles)
	d.maybeRebuild()
	return id, nil
}

// Delete tombstones a shape.
func (d *Dynamic) Delete(id int) error {
	if id < 0 || id >= len(d.shapes) {
		return fmt.Errorf("core: shape id %d out of range", id)
	}
	if d.deleted[id] {
		return fmt.Errorf("core: shape %d already deleted", id)
	}
	d.deleted[id] = true
	d.live--
	// If the shape is still in overflow, remove it there directly.
	if i, ok := d.overflowIdx[id]; ok {
		d.overflow = append(d.overflow[:i], d.overflow[i+1:]...)
		d.overflowEntries = append(d.overflowEntries[:i], d.overflowEntries[i+1:]...)
		d.overflowOracles = append(d.overflowOracles[:i], d.overflowOracles[i+1:]...)
		delete(d.overflowIdx, id)
		for gid, j := range d.overflowIdx {
			if j > i {
				d.overflowIdx[gid] = j - 1
			}
		}
		return nil
	}
	d.frozenDel++
	d.maybeRebuild()
	return nil
}

// Shape returns a live shape by id.
func (d *Dynamic) Shape(id int) (Shape, error) {
	if id < 0 || id >= len(d.shapes) || d.deleted[id] {
		return Shape{}, fmt.Errorf("core: shape %d not found", id)
	}
	return d.shapes[id], nil
}

// maybeRebuild rebuilds when the pending work crosses the threshold.
func (d *Dynamic) maybeRebuild() {
	pending := len(d.overflow) + d.frozenDel
	if pending < d.MinRebuild {
		return
	}
	if float64(pending) < d.RebuildFraction*float64(max(d.live, 1)) {
		return
	}
	_ = d.Rebuild()
}

// Rebuild folds the overflow and tombstones into a fresh frozen base.
// It is a no-op on an empty live set.
func (d *Dynamic) Rebuild() error {
	if d.live == 0 {
		d.frozen = nil
		d.frozenIDs = nil
		d.frozenIdx = nil
		d.frozenDel = 0
		d.overflow = nil
		d.overflowEntries = nil
		d.overflowOracles = nil
		d.overflowIdx = nil
		return nil
	}
	b := NewBase(d.opts)
	var ids []int
	for gid := range d.shapes {
		if d.deleted[gid] {
			continue
		}
		if _, err := b.AddShape(d.shapes[gid].Image, d.shapes[gid].Poly); err != nil {
			return fmt.Errorf("core: rebuild: shape %d: %w", gid, err)
		}
		ids = append(ids, gid)
	}
	if err := b.Freeze(); err != nil {
		return err
	}
	d.frozen = b
	d.frozenIDs = ids
	d.frozenIdx = make(map[int]int, len(ids))
	for local, gid := range ids {
		d.frozenIdx[gid] = local
	}
	d.frozenDel = 0
	d.overflow = nil
	d.overflowEntries = nil
	d.overflowOracles = nil
	d.overflowIdx = nil
	return nil
}

// Match retrieves the k most similar live shapes, merging the frozen
// index's answer with an exact scan of the overflow area. Returned
// ShapeIDs are the Dynamic's stable global ids. EntryID is a frozen-base
// entry id for frozen results; overflow hits carry -(copy+1), the
// negated ordinal of the normalized copy that realized the distance
// (always negative, so the two spaces cannot collide), which
// ContinuousDistance accepts to finish scoring a result.
func (d *Dynamic) Match(q geom.Poly, k int) ([]Match, Stats, error) {
	return d.MatchCtx(context.Background(), q, k)
}

// MatchCtx is Match with cooperative cancellation: it checks ctx before
// the frozen-index probe and periodically during the overflow scan, so a
// delta-shard scan inside a serving request respects the request's
// deadline instead of running the full linear pass after the client has
// gone away. A cancelled scan returns ctx's error and no matches.
func (d *Dynamic) MatchCtx(ctx context.Context, q geom.Poly, k int) ([]Match, Stats, error) {
	var stats Stats
	if k <= 0 {
		return nil, stats, fmt.Errorf("core: k must be positive")
	}
	if err := q.Validate(); err != nil {
		return nil, stats, err
	}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	qe, err := NormalizeCanonical(q)
	if err != nil {
		return nil, stats, err
	}
	oracle := NewBoundaryDist(qe.Poly)

	var merged []Match
	if d.frozen != nil {
		// Ask for enough extra results to absorb tombstoned shadows.
		want := k + d.frozenDel
		if want > d.frozen.NumShapes() {
			want = d.frozen.NumShapes()
		}
		ms, st, err := d.frozen.Match(q, want)
		if err != nil {
			return nil, stats, err
		}
		stats = st
		for _, m := range ms {
			gid := d.frozenIDs[m.ShapeID]
			if d.deleted[gid] {
				continue
			}
			m.ShapeID = gid
			merged = append(merged, m)
		}
	}
	// Exact scan of the overflow area, against the oracles cached at
	// insert time. The ctx check is amortized over a small batch of
	// shapes — each shape costs a few oracle-grid probes, so 32 shapes
	// keep the cancellation latency well under a millisecond.
	for i, gid := range d.overflow {
		if i&31 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, stats, err
			}
		}
		best := math.Inf(1)
		bestEi := 0
		for ei := range d.overflowEntries[i] {
			e := &d.overflowEntries[i][ei]
			dv := (AvgMinDistVertices(e.Poly, oracle) +
				AvgMinDistVertices(qe.Poly, d.overflowOracles[i][ei])) / 2
			if dv < best {
				best = dv
				bestEi = ei
			}
		}
		if !math.IsInf(best, 1) {
			merged = append(merged, Match{ShapeID: gid, EntryID: -(bestEi + 1), DistVertex: best})
		}
	}
	sortMatches(merged)
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, stats, nil
}

// OverflowCopies returns an overflow-resident shape's normalized copies
// and their cached boundary oracles (shared slices — callers must not
// mutate). ok is false for deleted shapes and shapes already folded into
// the frozen part.
func (d *Dynamic) OverflowCopies(id int) ([]Entry, []*BoundaryDist, bool) {
	i, ok := d.overflowIdx[id]
	if !ok {
		return nil, nil, false
	}
	return d.overflowEntries[i], d.overflowOracles[i], true
}

// ContinuousDistance computes the symmetrized continuous-boundary
// measure for a match produced by Match/MatchCtx, using the copy that
// realized the vertex distance (entryID as returned in Match.EntryID:
// -(copy+1) for overflow hits). The float operations mirror what a
// frozen Base computes for its final top-k, so a delta shard's reported
// ContinuousDistance is bit-identical to a freshly frozen engine's.
func (d *Dynamic) ContinuousDistance(id, entryID int, pq *PreparedQuery) (float64, error) {
	if id < 0 || id >= len(d.shapes) || d.deleted[id] {
		return 0, fmt.Errorf("core: shape %d not found", id)
	}
	if entryID >= 0 {
		return 0, fmt.Errorf("core: entry id %d is not an overflow copy", entryID)
	}
	copy := -entryID - 1
	i, ok := d.overflowIdx[id]
	if !ok {
		return 0, fmt.Errorf("core: shape %d not in overflow", id)
	}
	if copy >= len(d.overflowEntries[i]) {
		return 0, fmt.Errorf("core: shape %d has no copy %d", id, copy)
	}
	e := &d.overflowEntries[i][copy]
	return (AvgMinDistTo(e.Poly, pq.oracle, d.opts.Samples) +
		AvgMinDistTo(pq.entry.Poly, d.overflowOracles[i][copy], d.opts.Samples)) / 2, nil
}

// ShapeDistancePreparedBounded scores one live shape against a prepared
// query with an admissible cutoff, mirroring Base's method of the same
// name: the returned value is bit-identical to the one a frozen Base
// holding the same shape would produce (the cutoff only skips copies
// that provably cannot improve the minimum). Overflow shapes are scored
// against the oracles cached at insert; shapes already folded into the
// frozen part delegate to it. This is what lets a mutable delta shard
// participate in the approximate (hash-candidate) path with the same
// distance bytes as a freshly frozen engine.
func (d *Dynamic) ShapeDistancePreparedBounded(id int, pq *PreparedQuery, cutoff float64) (float64, bool, error) {
	if id < 0 || id >= len(d.shapes) || d.deleted[id] {
		return 0, false, fmt.Errorf("core: shape %d not found", id)
	}
	if i, ok := d.overflowIdx[id]; ok {
		best := math.Inf(1)
		for ei := range d.overflowEntries[i] {
			cut := math.Min(cutoff, best)
			dir, ok := avgMinDistVerticesBoundedAffine(d.overflowEntries[i][ei].Poly, pq.oracle, 0, cut)
			if !ok {
				continue
			}
			back, ok := avgMinDistVerticesBoundedAffine(pq.entry.Poly, d.overflowOracles[i][ei], dir, cut)
			if !ok {
				continue
			}
			if dv := (dir + back) / 2; dv < best {
				best = dv
			}
		}
		return best, best <= cutoff, nil
	}
	local, ok := d.frozenIdx[id]
	if !ok {
		return 0, false, fmt.Errorf("core: shape %d not indexed", id)
	}
	return d.frozen.ShapeDistancePreparedBounded(local, pq, cutoff)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
