package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
)

// This file holds the admissible pruning primitives of the prune-first
// match kernel (DESIGN.md §4.9): per-entry O(1) geometric lower bounds
// precomputed at Freeze, and the atomic shared top-k bound that lets the
// shards of a ShardedEngine prune against each other mid-flight.

// geomBoundSlack absorbs the floating-point error of the geometric
// lower-bound construction. The bound is derived in real arithmetic;
// evaluated in floats it can overshoot the true separation by a few ulps,
// so it is slackened before use. Shapes are diameter-normalized (every
// coordinate is O(1), inside the lune), so an absolute margin of 1e-9 is
// ~6 orders of magnitude above the accumulated rounding error while
// costing nothing against the distances the engine ranks (~1e-2 scale).
const geomBoundSlack = 1e-9

// GeomBound is the O(1) summary of a vertex set used for constant-time
// lower bounds on the symmetric vertex-averaged distance between two
// shapes: the vertex centroid with an enclosing radius, and the bounding
// box. Both regions contain every vertex — and, being convex, the whole
// boundary (each boundary point is a convex combination of two vertices).
type GeomBound struct {
	CX, CY float64 // vertex centroid
	R      float64 // enclosing radius about the centroid
	MinX, MinY, MaxX, MaxY float64
}

// GeomBoundOf summarizes a vertex set. An empty set yields a bound that
// never prunes (LowerBound returns 0).
func GeomBoundOf(pts []geom.Point) GeomBound {
	if len(pts) == 0 {
		return GeomBound{R: math.Inf(1), MinX: math.Inf(-1), MinY: math.Inf(-1),
			MaxX: math.Inf(1), MaxY: math.Inf(1)}
	}
	g := GeomBound{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
	for _, p := range pts {
		g.CX += p.X
		g.CY += p.Y
		g.MinX = math.Min(g.MinX, p.X)
		g.MinY = math.Min(g.MinY, p.Y)
		g.MaxX = math.Max(g.MaxX, p.X)
		g.MaxY = math.Max(g.MaxY, p.Y)
	}
	g.CX /= float64(len(pts))
	g.CY /= float64(len(pts))
	for _, p := range pts {
		dx, dy := p.X-g.CX, p.Y-g.CY
		if r := math.Hypot(dx, dy); r > g.R {
			g.R = r
		}
	}
	return g
}

// LowerBound returns a proven lower bound on the symmetric vertex-
// averaged distance between the two summarized shapes. Every vertex of
// one shape is at least D away from every boundary point of the other,
// where D is the larger of the ball separation |c₁c₂| − r₁ − r₂ and the
// bounding-box gap; hence both directed averages — and their mean — are
// at least D. The result is slackened by geomBoundSlack and clamped at 0.
func (g *GeomBound) LowerBound(o *GeomBound) float64 {
	d := math.Hypot(o.CX-g.CX, o.CY-g.CY) - g.R - o.R
	gx := math.Max(math.Max(g.MinX-o.MaxX, o.MinX-g.MaxX), 0)
	gy := math.Max(math.Max(g.MinY-o.MaxY, o.MinY-g.MaxY), 0)
	if rd := math.Hypot(gx, gy); rd > d {
		d = rd
	}
	d -= geomBoundSlack
	if d < 0 || math.IsNaN(d) {
		return 0
	}
	return d
}

// SharedBound is an atomic, monotonically non-increasing distance bound
// shared by concurrent searches: any value ever stored is a proven upper
// bound on the k-th best distance of the merged result, so every reader
// may discard work strictly above the current value. The zero value is
// not usable; construct with NewSharedBound (which starts at +Inf).
//
// Values are non-negative, so their IEEE-754 bit patterns order like the
// floats themselves and a CAS loop over the raw bits implements an
// atomic min.
type SharedBound struct {
	bits atomic.Uint64
}

// NewSharedBound returns a bound starting at +Inf (nothing pruned).
func NewSharedBound() *SharedBound {
	s := &SharedBound{}
	s.bits.Store(math.Float64bits(math.Inf(1)))
	return s
}

// Load returns the current bound.
func (s *SharedBound) Load() float64 {
	return math.Float64frombits(s.bits.Load())
}

// Tighten lowers the bound to v if v improves it. NaN and negative
// values are ignored.
func (s *SharedBound) Tighten(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	nb := math.Float64bits(v)
	for {
		ob := s.bits.Load()
		if math.Float64frombits(ob) <= v {
			return
		}
		if s.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// avgMinDistVerticesBoundedAffine iterates AvgMinDistVertices(a, b) with
// an admissible early exit: it aborts as soon as the partial sum proves
//
//	(base + full/n) / 2 > cut
//
// under the exact float operations the caller uses to combine the two
// directed halves into the symmetric measure. The proof needs only
// monotonicity: the running sum is non-decreasing (non-negative terms),
// float division by n and float addition are monotone, so the partial
// value (base + sum/n)/2 — computed with the same operation sequence —
// never exceeds the final one. When it completes, the returned value is
// bit-identical to AvgMinDistVertices (same loop, same accumulator).
//
// The abort test costs a division, so a cheap product gate (sum >
// (2·cut − base)·n, exact in the cases that matter and conservative
// otherwise) guards it.
func avgMinDistVerticesBoundedAffine(a geom.Poly, b *BoundaryDist, base, cut float64) (float64, bool) {
	n := len(a.Pts)
	if n == 0 {
		return math.Inf(1), true
	}
	nf := float64(n)
	// NaN when both base and cut are +Inf — then the gate never fires and
	// the loop runs to completion, which is the correct "no cutoff" mode.
	trigger := (2*cut - base) * nf
	var sum float64
	for _, p := range a.Pts {
		sum += b.Dist(p)
		if sum > trigger && (base+sum/nf)/2 > cut {
			return 0, false
		}
	}
	return sum / nf, true
}

// AvgMinDistVerticesBounded is AvgMinDistVertices with an admissible
// early exit: it returns (value, true) with the exact directed measure
// when it is ≤ cutoff (or when cutoff is +Inf), and (0, false) as soon
// as the partial sum proves the final value exceeds cutoff — every
// remaining min-term is ≥ 0, so the partial average only grows. Values
// exactly equal to cutoff are never aborted (the test is strict), so
// ties survive pruning.
func AvgMinDistVerticesBounded(a geom.Poly, b *BoundaryDist, cutoff float64) (float64, bool) {
	n := len(a.Pts)
	if n == 0 {
		return math.Inf(1), true
	}
	nf := float64(n)
	trigger := cutoff * nf
	var sum float64
	for _, p := range a.Pts {
		sum += b.Dist(p)
		if sum > trigger && sum/nf > cutoff {
			return 0, false
		}
	}
	return sum / nf, true
}

// AvgMinDistToBounded is AvgMinDistTo with the same admissible early
// exit over the resampled boundary: it aborts the moment
// sum > cutoff·samples, returning (0, false); otherwise the exact
// continuous measure and true. samples ≤ 0 selects DefaultSamples.
func AvgMinDistToBounded(a geom.Poly, b *BoundaryDist, samples int, cutoff float64) (float64, bool) {
	if samples <= 0 {
		samples = DefaultSamples(a.NumVertices())
	}
	pts := a.Resample(samples)
	if len(pts) == 0 {
		return math.Inf(1), true
	}
	nf := float64(len(pts))
	trigger := cutoff * nf
	var sum float64
	for _, p := range pts {
		sum += b.Dist(p)
		if sum > trigger && sum/nf > cutoff {
			return 0, false
		}
	}
	return sum / nf, true
}

// ShapeDistancePreparedBounded is ShapeDistancePrepared with an
// admissible cutoff: it returns the exact shape distance and true when
// the distance is ≤ cutoff, and (+Inf, false) once every normalized copy
// is proven to exceed cutoff — via the O(1) geometric lower bound first,
// then the partial-sum early exit. The pruning is exact: a copy is
// discarded only when the value the unpruned evaluation would have
// produced is strictly above both cutoff and the running best, so the
// minimum over surviving copies equals the unpruned minimum whenever
// that minimum is ≤ cutoff.
func (b *Base) ShapeDistancePreparedBounded(shapeID int, pq *PreparedQuery, cutoff float64) (float64, bool, error) {
	if shapeID < 0 || shapeID >= len(b.shapes) {
		return 0, false, fmt.Errorf("core: shape id %d out of range", shapeID)
	}
	best := math.Inf(1)
	for _, ei := range b.shapeEntries[shapeID] {
		cut := math.Min(cutoff, best)
		if b.geomBounds != nil && pq.bound.LowerBound(&b.geomBounds[ei]) > cut {
			continue
		}
		if pq.blocks != nil {
			pq.blocks.Add(int64(b.blockCost(ei)))
		}
		dir, ok := avgMinDistVerticesBoundedAffine(b.entries[ei].Poly, pq.oracle, 0, cut)
		if !ok {
			continue
		}
		back, ok := avgMinDistVerticesBoundedAffine(pq.entry.Poly, b.entryOracle(ei), dir, cut)
		if !ok {
			continue
		}
		if d := (dir + back) / 2; d < best {
			best = d
		}
	}
	return best, best <= cutoff, nil
}
