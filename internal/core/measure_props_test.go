package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Property: the symmetric vertex measure is symmetric, non-negative, and
// zero on identical shapes.
func TestQuickSymVertexMeasure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomStar(rng, 4+rng.Intn(8))
		b := randomStar(rng, 4+rng.Intn(8))
		dab := AvgMinDistVerticesSym(a, b)
		dba := AvgMinDistVerticesSym(b, a)
		if dab < 0 || math.Abs(dab-dba) > 1e-9*(1+dab) {
			return false
		}
		return AvgMinDistVerticesSym(a, a) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the directed continuous measure is bounded by the vertex
// measure plus the sampling granularity — concretely, measures computed
// at two sampling densities agree within the coarser step.
func TestQuickSamplingStability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomStar(rng, 5+rng.Intn(6))
		b := randomStar(rng, 5+rng.Intn(6))
		coarse := AvgMinDist(a, b, 128)
		fine := AvgMinDist(a, b, 1024)
		step := a.Perimeter() / 128
		return math.Abs(coarse-fine) <= step
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeCanonical anchors the diameter at ((0,0),(1,0)) and
// every normalized vertex is inside the closed lune.
func TestQuickCanonicalAnchors(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomStar(rng, 4+rng.Intn(10))
		e, err := NormalizeCanonical(p)
		if err != nil {
			return false
		}
		if !e.Poly.Pts[e.DiamI].Eq(geom.Pt(0, 0), 1e-9) {
			return false
		}
		if !e.Poly.Pts[e.DiamJ].Eq(geom.Pt(1, 0), 1e-9) {
			return false
		}
		for _, v := range e.Poly.Pts {
			// InLune has an epsilon; allow the same slack here.
			if !InLune(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Hausdorff dominates the average measure, and both are
// invariant when both shapes undergo the same similarity transform
// (up to sampling noise).
func TestQuickMeasureTransformInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomStar(rng, 4+rng.Intn(6))
		b := randomStar(rng, 4+rng.Intn(6))
		h := Hausdorff(a, b, 256)
		avg := AvgMinDistSym(a, b, 256)
		if avg > h+1e-9 {
			return false
		}
		tr := geom.Transform{
			S:     0.5 + rng.Float64()*3,
			Theta: rng.Float64() * 6,
			T:     geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10),
		}
		avg2 := AvgMinDistSym(a.Transform(tr), b.Transform(tr), 256)
		// The measure scales with S under a joint transform.
		return math.Abs(avg2-tr.S*avg) <= 1e-6*(1+avg2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The generalized Hausdorff is monotone non-increasing in k.
func TestGeneralizedHausdorffMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		a := randomStar(rng, 6+rng.Intn(8))
		b := randomStar(rng, 6+rng.Intn(8))
		prev := math.Inf(1)
		for k := 1; k <= a.NumVertices(); k++ {
			cur := GeneralizedHausdorff(a, b, k)
			if cur > prev+1e-12 {
				t.Fatalf("trial %d: h_%d=%v > h_%d=%v", trial, k, cur, k-1, prev)
			}
			prev = cur
		}
	}
}

// Voronoi-accelerated vertex distances must agree with the direct grid
// evaluation on degenerate inputs too.
func TestVoronoiMeasureDegenerate(t *testing.T) {
	// Collinear target shape.
	line := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0))
	probe := geom.NewPolyline(geom.Pt(0, 1), geom.Pt(3, 1))
	direct := AvgMinDistVertices(probe, NewBoundaryDist(line))
	vor := AvgMinDistVerticesVoronoi(probe, line)
	if math.Abs(direct-vor) > 1e-9 {
		t.Errorf("collinear: direct %v != voronoi %v", direct, vor)
	}
	// Two-vertex target.
	seg := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(2, 2))
	direct = AvgMinDistVertices(probe, NewBoundaryDist(seg))
	vor = AvgMinDistVerticesVoronoi(probe, seg)
	if math.Abs(direct-vor) > 1e-9 {
		t.Errorf("segment: direct %v != voronoi %v", direct, vor)
	}
}
