package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func square(side float64) geom.Poly {
	return geom.NewPolygon(geom.Pt(0, 0), geom.Pt(side, 0), geom.Pt(side, side), geom.Pt(0, side))
}

func TestAvgMinDistIdentical(t *testing.T) {
	sq := square(1)
	if d := AvgMinDist(sq, sq, 0); d > 1e-9 {
		t.Errorf("self distance = %v", d)
	}
	if d := AvgMinDistSym(sq, sq, 128); d > 1e-9 {
		t.Errorf("symmetric self distance = %v", d)
	}
}

func TestAvgMinDistParallelSegments(t *testing.T) {
	// Two parallel unit segments at distance 1: every point of A is at
	// distance exactly 1 from B.
	a := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 0))
	b := geom.NewPolyline(geom.Pt(0, 1), geom.Pt(1, 1))
	if d := AvgMinDist(a, b, 256); !almostEq(d, 1, 1e-9) {
		t.Errorf("parallel segments AvgMinDist = %v", d)
	}
	if d := AvgMinDistVertices(a, NewBoundaryDist(b)); !almostEq(d, 1, 1e-9) {
		t.Errorf("vertex variant = %v", d)
	}
}

func TestAvgMinDistConcentricSquares(t *testing.T) {
	// Unit square vs square inflated by 0.2 per side: boundary distance
	// from outer to inner varies between 0.2 (mid-edge) and 0.2√2 (corner).
	inner := square(1)
	outer := geom.NewPolygon(geom.Pt(-0.2, -0.2), geom.Pt(1.2, -0.2), geom.Pt(1.2, 1.2), geom.Pt(-0.2, 1.2))
	d := AvgMinDist(outer, inner, 2048)
	if d < 0.2 || d > 0.2*math.Sqrt2 {
		t.Errorf("concentric squares AvgMinDist = %v, want in [0.2, %v]", d, 0.2*math.Sqrt2)
	}
}

// The headline property from Figure 1: a shape with a single far-away
// spike dominates the Hausdorff distance but barely moves the average
// measure.
func TestFigure1Discrimination(t *testing.T) {
	// Q: a unit square. B: the same square slightly perturbed everywhere.
	// A: the same square with one vertex pulled far away (a spike).
	q := square(1)
	b := geom.NewPolygon(geom.Pt(0.02, 0.01), geom.Pt(1.03, -0.02), geom.Pt(0.98, 1.02), geom.Pt(-0.01, 0.97))
	a := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(3.0, 0.5), geom.Pt(1, 1), geom.Pt(0, 1))

	// Under Hausdorff, A is much farther than B from Q because of the spike.
	hA := Hausdorff(a, q, 512)
	hB := Hausdorff(b, q, 512)
	if hA <= hB {
		t.Fatalf("Hausdorff should be dominated by the spike: h(A,Q)=%v h(B,Q)=%v", hA, hB)
	}
	// Under the average measure, B is the intuitively closer match and A's
	// spike is averaged out: the gap must shrink dramatically.
	gA := AvgMinDistSym(a, q, 512)
	gB := AvgMinDistSym(b, q, 512)
	if gB >= gA {
		t.Fatalf("average measure should prefer B: g(A,Q)=%v g(B,Q)=%v", gA, gB)
	}
	if (hA-hB)/(gA-gB) < 2 {
		t.Errorf("spike domination not attenuated: Hausdorff gap %v, avg gap %v", hA-hB, gA-gB)
	}
}

func TestGeneralizedHausdorff(t *testing.T) {
	q := square(1)
	a := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(5, 0.5), geom.Pt(1, 1), geom.Pt(0, 1))
	// k=1 is the vertex Hausdorff: dominated by the spike at (5, 0.5).
	h1 := GeneralizedHausdorff(a, q, 1)
	if h1 < 3.9 {
		t.Errorf("k=1 should see the spike: %v", h1)
	}
	// k=2 discards the single worst vertex.
	h2 := GeneralizedHausdorff(a, q, 2)
	if h2 >= h1 {
		t.Errorf("k=2 (%v) should be below k=1 (%v)", h2, h1)
	}
	// k beyond the vertex count clamps.
	hBig := GeneralizedHausdorff(a, q, 100)
	if hBig > h2 {
		t.Errorf("clamped k should be the min vertex distance tier: %v", hBig)
	}
	// k<1 clamps to 1.
	if got := GeneralizedHausdorff(a, q, 0); got != h1 {
		t.Errorf("k=0 should clamp to k=1: %v vs %v", got, h1)
	}
}

func TestScaleInvarianceAfterNormalization(t *testing.T) {
	// §2.2: the measure is scale/translation/rotation invariant *after
	// diameter normalization*. Normalize two similar copies and compare.
	// The shape must have a unique diameter pair (a rectangle's diagonals
	// tie, which legitimately yields two different canonical frames — the
	// α-diameter copies in the base absorb that ambiguity).
	p := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(2.2, 1.3), geom.Pt(0, 1))
	tr := geom.Transform{S: 3.7, Theta: 1.1, T: geom.Pt(-4, 9)}
	pc := p.Transform(tr)
	e1, err := NormalizeCanonical(p)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NormalizeCanonical(pc)
	if err != nil {
		t.Fatal(err)
	}
	if d := AvgMinDistSym(e1.Poly, e2.Poly, 256); d > 1e-6 {
		t.Errorf("normalized similar copies should coincide, d = %v", d)
	}
}

func TestVoronoiMeasureMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		a := randomStar(rng, 5+rng.Intn(15))
		b := randomStar(rng, 5+rng.Intn(15))
		direct := AvgMinDistVertices(a, NewBoundaryDist(b))
		vor := AvgMinDistVerticesVoronoi(a, b)
		if !almostEq(direct, vor, 1e-6*(1+direct)) {
			t.Fatalf("trial %d: direct %v != voronoi %v", trial, direct, vor)
		}
	}
}

func TestDirectedHausdorffAsymmetry(t *testing.T) {
	// A long segment vs a short one: h(long, short) > h(short, long).
	long := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(10, 0))
	short := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 0))
	hls := DirectedHausdorff(long, short, 256)
	hsl := DirectedHausdorff(short, long, 256)
	if hls <= hsl {
		t.Errorf("expected asymmetry: h(long,short)=%v h(short,long)=%v", hls, hsl)
	}
	if !almostEq(hsl, 0, 1e-9) {
		t.Errorf("short ⊂ long: directed distance should be 0, got %v", hsl)
	}
}

func TestDefaultSamples(t *testing.T) {
	if DefaultSamples(4) != 64 {
		t.Errorf("floor: %d", DefaultSamples(4))
	}
	if DefaultSamples(100) != 400 {
		t.Errorf("4n: %d", DefaultSamples(100))
	}
}

// Property: AvgMinDist(A,B) is between 0 and Hausdorff(A,B); translating
// both shapes together leaves the measure unchanged.
func TestQuickMeasureBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomStar(rng, 4+rng.Intn(8))
		b := randomStar(rng, 4+rng.Intn(8))
		avg := AvgMinDist(a, b, 128)
		h := DirectedHausdorff(a, b, 128)
		if avg < -1e-12 || avg > h+1e-9 {
			return false
		}
		off := geom.Translation(geom.Pt(rng.Float64()*10, rng.Float64()*10))
		avg2 := AvgMinDist(a.Transform(off), b.Transform(off), 128)
		return almostEq(avg, avg2, 1e-6*(1+avg))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// randomStar builds a simple star-shaped polygon around the origin.
func randomStar(rng *rand.Rand, n int) geom.Poly {
	pts := make([]geom.Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := 1 + 2*rng.Float64()
		pts[i] = geom.Pt(r*math.Cos(a), r*math.Sin(a))
	}
	return geom.NewPolygon(pts...)
}
