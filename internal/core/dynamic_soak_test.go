package core

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

// TestDynamicInterleavedWorkload soaks the dynamic base with a mixed
// insert/delete/match stream and cross-checks every converged match
// against a freshly built static oracle over the current live set.
func TestDynamicInterleavedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	rng := rand.New(rand.NewSource(123))
	opts := DefaultOptions()
	opts.Alpha = 0.065
	d := NewDynamic(opts)
	d.MinRebuild = 10

	type liveShape struct {
		id   int
		img  int
		poly int // prototype index
	}
	var live []liveShape
	nextImg := 0

	makeShape := func() (int, error) {
		c := 3 + rng.Intn(7)
		s := synth.Star(rng, c, 0.02)
		id, err := d.Insert(nextImg, s)
		if err != nil {
			return 0, err
		}
		live = append(live, liveShape{id: id, img: nextImg, poly: c})
		nextImg++
		return id, nil
	}

	// Warm up.
	for i := 0; i < 30; i++ {
		if _, err := makeShape(); err != nil {
			t.Fatal(err)
		}
	}

	checkOracle := func() {
		t.Helper()
		// Build the oracle over the current live set.
		ob := NewBase(opts)
		idOf := make([]int, 0, len(live))
		for _, ls := range live {
			s, err := d.Shape(ls.id)
			if err != nil {
				t.Fatalf("live shape %d missing: %v", ls.id, err)
			}
			if _, err := ob.AddShape(s.Image, s.Poly); err != nil {
				t.Fatal(err)
			}
			idOf = append(idOf, ls.id)
		}
		if err := ob.Freeze(); err != nil {
			t.Fatal(err)
		}
		scan, err := NewScanMatcher(ob)
		if err != nil {
			t.Fatal(err)
		}
		src := live[rng.Intn(len(live))]
		s, _ := d.Shape(src.id)
		q := synth.Distort(rng, s.Poly, 0.01)
		if q.Validate() != nil {
			return
		}
		dm, _, err := d.Match(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		om, err := scan.Match(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(dm) != len(om) {
			t.Fatalf("dynamic %d vs oracle %d results", len(dm), len(om))
		}
		for i := range dm {
			if !almostEq(dm[i].DistVertex, om[i].DistVertex, 1e-9) {
				t.Fatalf("rank %d: dynamic %v vs oracle %v (ids %d vs %d)",
					i, dm[i].DistVertex, om[i].DistVertex, dm[i].ShapeID, idOf[om[i].ShapeID])
			}
		}
	}

	for step := 0; step < 60; step++ {
		switch {
		case rng.Float64() < 0.5 || len(live) < 10:
			if _, err := makeShape(); err != nil {
				t.Fatal(err)
			}
		case rng.Float64() < 0.6:
			victim := rng.Intn(len(live))
			if err := d.Delete(live[victim].id); err != nil {
				t.Fatal(err)
			}
			live = append(live[:victim], live[victim+1:]...)
		default:
			checkOracle()
		}
	}
	checkOracle()
	if d.Len() != len(live) {
		t.Errorf("Len = %d, tracked %d", d.Len(), len(live))
	}
}
