package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// This file implements the comparison baselines:
//
//   - ScanMatcher: a linear scan of all normalized copies with the exact
//     similarity measure — the correctness oracle for the fattening
//     algorithm and the "no index" ablation.
//   - MGIndex: the Mehrotra–Gary feature index (§1, [16, 15, 21]): each
//     shape is normalized about each of its edges (twice, one per
//     orientation), represented as a fixed-dimensional vector of resampled
//     boundary points, and retrieved by Euclidean nearest neighbor among
//     the vectors. It is the method the paper criticizes for its space
//     overhead and sensitivity to local distortion (Figure 2).

// ScanMatcher retrieves by brute force over a base's entries.
type ScanMatcher struct {
	base *Base
}

// NewScanMatcher wraps a frozen base.
func NewScanMatcher(b *Base) (*ScanMatcher, error) {
	if !b.frozen {
		return nil, fmt.Errorf("core: base must be frozen")
	}
	return &ScanMatcher{base: b}, nil
}

// Match returns the k best shapes by the symmetric vertex-averaged
// measure, evaluating every entry (O(n) work).
func (s *ScanMatcher) Match(q geom.Poly, k int) ([]Match, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	qe, err := NormalizeCanonical(q)
	if err != nil {
		return nil, err
	}
	oracle := NewBoundaryDist(qe.Poly)
	bestByShape := make(map[int]Match)
	for ei := range s.base.entries {
		e := &s.base.entries[ei]
		dv := (AvgMinDistVertices(e.Poly, oracle) +
			AvgMinDistVertices(qe.Poly, s.base.entryOracle(int32(ei)))) / 2
		cur, ok := bestByShape[e.ShapeID]
		if !ok || dv < cur.DistVertex {
			bestByShape[e.ShapeID] = Match{ShapeID: e.ShapeID, EntryID: ei, DistVertex: dv}
		}
	}
	out := make([]Match, 0, len(bestByShape))
	for _, m := range bestByShape {
		out = append(out, m)
	}
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	for i := range out {
		e := &s.base.entries[out[i].EntryID]
		out[i].DistContinuous = (AvgMinDistTo(e.Poly, oracle, s.base.opts.Samples) +
			AvgMinDist(qe.Poly, e.Poly, s.base.opts.Samples)) / 2
	}
	return out, nil
}

// MGFeatureDim is the number of resampled boundary points in a
// Mehrotra–Gary feature vector (2·MGFeatureDim float64 components).
const MGFeatureDim = 16

// MGIndex is the edge-normalized feature index baseline.
type MGIndex struct {
	vectors [][2 * MGFeatureDim]float64
	shape   []int32 // vector → shape id
	shapes  int
}

// NewMGIndex builds the baseline index over the given shapes. Every shape
// is stored once per edge per orientation — the space overhead the paper
// calls out.
func NewMGIndex(shapes []Shape) (*MGIndex, error) {
	idx := &MGIndex{shapes: len(shapes)}
	for _, s := range shapes {
		vecs, err := mgVectors(s.Poly)
		if err != nil {
			return nil, fmt.Errorf("core: shape %d: %w", s.ID, err)
		}
		for _, v := range vecs {
			idx.vectors = append(idx.vectors, v)
			idx.shape = append(idx.shape, int32(s.ID))
		}
	}
	if len(idx.vectors) == 0 {
		return nil, fmt.Errorf("core: no feature vectors")
	}
	return idx, nil
}

// NumVectors returns the number of stored feature vectors (the space
// cost: Σ 2·edges per shape).
func (idx *MGIndex) NumVectors() int { return len(idx.vectors) }

// MGMatch is a baseline retrieval result.
type MGMatch struct {
	ShapeID int
	Dist    float64 // Euclidean feature-vector distance
}

// Match returns the k best shapes by minimum feature distance over all of
// the query's edge normalizations.
func (idx *MGIndex) Match(q geom.Poly, k int) ([]MGMatch, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive")
	}
	qv, err := mgVectors(q)
	if err != nil {
		return nil, err
	}
	best := make(map[int32]float64)
	for vi, v := range idx.vectors {
		sid := idx.shape[vi]
		d := math.Inf(1)
		for _, qvec := range qv {
			if dd := mgDist(v, qvec); dd < d {
				d = dd
			}
		}
		if cur, ok := best[sid]; !ok || d < cur {
			best[sid] = d
		}
	}
	out := make([]MGMatch, 0, len(best))
	for sid, d := range best {
		out = append(out, MGMatch{ShapeID: int(sid), Dist: d})
	}
	sortMGMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// mgVectors produces the per-edge normalized feature vectors of a shape:
// for each edge and each orientation, normalize the shape so the edge is
// at ((0,0),(1,0)) and resample the boundary to MGFeatureDim points.
func mgVectors(p geom.Poly) ([][2 * MGFeatureDim]float64, error) {
	m := p.NumEdges()
	if m == 0 {
		return nil, fmt.Errorf("shape has no edges")
	}
	out := make([][2 * MGFeatureDim]float64, 0, 2*m)
	for i := 0; i < m; i++ {
		e := p.Edge(i)
		for _, pair := range [2][2]geom.Point{{e.A, e.B}, {e.B, e.A}} {
			tr, err := geom.NormalizeOnto(pair[0], pair[1])
			if err != nil {
				continue // zero-length edge: skip this normalization
			}
			norm := p.Transform(tr)
			samples := norm.Resample(MGFeatureDim)
			var vec [2 * MGFeatureDim]float64
			for si, sp := range samples {
				vec[2*si] = sp.X
				vec[2*si+1] = sp.Y
			}
			out = append(out, vec)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("all edges degenerate")
	}
	return out, nil
}

func mgDist(a, b [2 * MGFeatureDim]float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].DistVertex != ms[j].DistVertex {
			return ms[i].DistVertex < ms[j].DistVertex
		}
		return ms[i].ShapeID < ms[j].ShapeID
	})
}

func sortMGMatches(ms []MGMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Dist != ms[j].Dist {
			return ms[i].Dist < ms[j].Dist
		}
		return ms[i].ShapeID < ms[j].ShapeID
	})
}
