package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rangesearch"
)

// testShapes returns a family of clearly distinct shapes.
func testShapes() []geom.Poly {
	return []geom.Poly{
		// 0: square
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)),
		// 1: long thin rectangle
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 0.5), geom.Pt(0, 0.5)),
		// 2: right triangle
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(2, 0), geom.Pt(0, 2)),
		// 3: plus-like concave polygon
		geom.NewPolygon(geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(2, 1), geom.Pt(3, 1),
			geom.Pt(3, 2), geom.Pt(2, 2), geom.Pt(2, 3), geom.Pt(1, 3),
			geom.Pt(1, 2), geom.Pt(0, 2), geom.Pt(0, 1), geom.Pt(1, 1)),
		// 4: open zigzag polyline
		geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2, 0), geom.Pt(3, 1), geom.Pt(4, 0)),
		// 5: pentagon
		geom.NewPolygon(geom.Pt(1, 0), geom.Pt(2, 0.8), geom.Pt(1.6, 2), geom.Pt(0.4, 2), geom.Pt(0, 0.8)),
	}
}

func buildTestBase(t *testing.T, opts Options) *Base {
	t.Helper()
	b := NewBase(opts)
	for i, p := range testShapes() {
		if _, err := b.AddShape(i/2, p); err != nil {
			t.Fatalf("AddShape %d: %v", i, err)
		}
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	return b
}

// distort jitters every vertex by at most mag (in units of the shape's
// diameter) without changing the topology.
func distort(p geom.Poly, mag float64, rng *rand.Rand) geom.Poly {
	_, _, d := p.Diameter()
	q := p.Clone()
	for i := range q.Pts {
		q.Pts[i] = q.Pts[i].Add(geom.Pt(
			(rng.Float64()*2-1)*mag*d,
			(rng.Float64()*2-1)*mag*d,
		))
	}
	return q
}

func TestBaseLifecycle(t *testing.T) {
	b := NewBase(DefaultOptions())
	if _, err := b.AddShape(0, geom.NewPolyline(geom.Pt(0, 0))); err == nil {
		t.Error("invalid shape should be rejected")
	}
	if err := b.Freeze(); err == nil {
		t.Error("freezing an empty base should fail")
	}
	id, err := b.AddShape(7, testShapes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 || b.Shape(0).Image != 7 {
		t.Errorf("shape bookkeeping: id=%d image=%d", id, b.Shape(0).Image)
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := b.Freeze(); err != nil {
		t.Errorf("double freeze should be a no-op: %v", err)
	}
	if _, err := b.AddShape(0, testShapes()[1]); err == nil {
		t.Error("AddShape after Freeze should fail")
	}
	if b.NumShapes() != 1 || b.NumEntries() < 2 || b.NumVertices() < 8 {
		t.Errorf("counts: shapes=%d entries=%d verts=%d", b.NumShapes(), b.NumEntries(), b.NumVertices())
	}
	// Every entry must reference its shape and have the diameter anchored.
	for i := 0; i < b.NumEntries(); i++ {
		e := b.Entry(i)
		if e.ShapeID != 0 {
			t.Errorf("entry %d shape id %d", i, e.ShapeID)
		}
		if !e.Poly.Pts[e.DiamI].Eq(geom.Pt(0, 0), 1e-9) {
			t.Errorf("entry %d anchor broken", i)
		}
	}
}

func TestMatchExactCopy(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	for want, q := range testShapes() {
		// Query with a rotated+scaled+translated copy: normalization must
		// make retrieval invariant.
		tr := geom.Transform{S: 2.1, Theta: 0.9, T: geom.Pt(5, -3)}
		ms, stats, err := b.Match(q.Transform(tr), 1)
		if err != nil {
			t.Fatalf("shape %d: %v", want, err)
		}
		if len(ms) != 1 {
			t.Fatalf("shape %d: %d matches", want, len(ms))
		}
		if ms[0].ShapeID != want {
			t.Errorf("query %d matched shape %d (d=%v)", want, ms[0].ShapeID, ms[0].DistVertex)
		}
		if ms[0].DistVertex > 1e-6 {
			t.Errorf("query %d: exact copy distance %v", want, ms[0].DistVertex)
		}
		if stats.Iterations < 1 {
			t.Errorf("query %d: no iterations recorded", want)
		}
		if !stats.Converged {
			t.Errorf("query %d: exact match should converge", want)
		}
	}
}

func TestMatchDistortedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := buildTestBase(t, DefaultOptions())
	for want, q := range testShapes() {
		dq := distort(q, 0.02, rng)
		if dq.Validate() != nil {
			continue // distortion occasionally self-intersects; skip
		}
		ms, _, err := b.Match(dq, 1)
		if err != nil {
			t.Fatalf("shape %d: %v", want, err)
		}
		if ms[0].ShapeID != want {
			t.Errorf("distorted query %d matched shape %d", want, ms[0].ShapeID)
		}
	}
}

func TestMatchAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := buildTestBase(t, DefaultOptions())
	scan, err := NewScanMatcher(b)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		src := testShapes()[trial%len(testShapes())]
		q := distort(src, 0.05, rng)
		if q.Validate() != nil {
			continue
		}
		fast, stats, err := b.Match(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := scan.Match(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Converged {
			continue // unconverged runs only promise best-so-far
		}
		if len(fast) != len(ref) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(fast), len(ref))
		}
		for i := range fast {
			if !almostEq(fast[i].DistVertex, ref[i].DistVertex, 1e-9) {
				t.Errorf("trial %d rank %d: fattening %v vs scan %v (shapes %d vs %d)",
					trial, i, fast[i].DistVertex, ref[i].DistVertex, fast[i].ShapeID, ref[i].ShapeID)
			}
		}
	}
}

func TestMatchTopKOrdering(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	ms, _, err := b.Match(testShapes()[0], 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("got %d matches", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].DistVertex > ms[i].DistVertex {
			t.Errorf("matches unsorted at %d", i)
		}
	}
	if ms[0].ShapeID != 0 {
		t.Errorf("best match = %d", ms[0].ShapeID)
	}
	// Distances must be consistent with direct evaluation.
	qe, _ := NormalizeCanonical(testShapes()[0])
	for _, m := range ms {
		direct := AvgMinDistVerticesSym(b.Entry(m.EntryID).Poly, qe.Poly)
		if !almostEq(direct, m.DistVertex, 1e-9) {
			t.Errorf("reported distance %v != direct %v", m.DistVertex, direct)
		}
	}
}

func TestMatchErrors(t *testing.T) {
	b := NewBase(DefaultOptions())
	if _, _, err := b.Match(testShapes()[0], 1); err == nil {
		t.Error("unfrozen base should error")
	}
	bb := buildTestBase(t, DefaultOptions())
	if _, _, err := bb.Match(testShapes()[0], 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, _, err := bb.Match(geom.NewPolyline(geom.Pt(0, 0)), 1); err == nil {
		t.Error("invalid query should error")
	}
}

func TestSimilarShapesThreshold(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	// A tight threshold retrieves only the square itself.
	ms, _, err := b.SimilarShapes(testShapes()[0], 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].ShapeID != 0 {
		t.Fatalf("tight threshold: %v", ms)
	}
	// A huge threshold retrieves everything.
	ms, _, err = b.SimilarShapes(testShapes()[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != b.NumShapes() {
		t.Errorf("loose threshold: %d of %d shapes", len(ms), b.NumShapes())
	}
	for _, m := range ms {
		if m.DistVertex > 10 {
			t.Errorf("result above threshold: %v", m.DistVertex)
		}
	}
}

func TestMatchAcrossBackends(t *testing.T) {
	for _, kind := range []rangesearch.Kind{rangesearch.KindBrute, rangesearch.KindKDTree, rangesearch.KindLayered} {
		opts := DefaultOptions()
		opts.Backend = kind
		b := buildTestBase(t, opts)
		ms, _, err := b.Match(testShapes()[2], 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ms[0].ShapeID != 2 {
			t.Errorf("%s: matched %d", kind, ms[0].ShapeID)
		}
	}
}

func TestEpsilonMaxFormula(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	lq := 3.5
	got := b.EpsilonMax(lq)
	p := float64(b.NumShapes())
	n := float64(b.NumVertices())
	lg := math.Log2(n)
	want := LuneArea / (2 * p * lq) * lg * lg * lg
	if !almostEq(got, want, 1e-12) {
		t.Errorf("EpsilonMax = %v, want %v", got, want)
	}
	if !math.IsInf(NewBase(DefaultOptions()).EpsilonMax(1), 1) {
		t.Error("empty base EpsilonMax should be +Inf")
	}
}

func TestScanMatcherErrors(t *testing.T) {
	if _, err := NewScanMatcher(NewBase(DefaultOptions())); err == nil {
		t.Error("unfrozen base should be rejected")
	}
	b := buildTestBase(t, DefaultOptions())
	s, _ := NewScanMatcher(b)
	if _, err := s.Match(testShapes()[0], 0); err == nil {
		t.Error("k=0 should error")
	}
}

func TestMGIndexBasic(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())
	idx, err := NewMGIndex(b.Shapes())
	if err != nil {
		t.Fatal(err)
	}
	// Space overhead: two vectors per edge of every shape.
	wantVecs := 0
	for _, s := range b.Shapes() {
		wantVecs += 2 * s.Poly.NumEdges()
	}
	if idx.NumVectors() != wantVecs {
		t.Errorf("NumVectors = %d, want %d", idx.NumVectors(), wantVecs)
	}
	// Exact copies are retrieved.
	for want, q := range testShapes() {
		ms, err := idx.Match(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ms[0].ShapeID != want {
			t.Errorf("MG query %d matched %d", want, ms[0].ShapeID)
		}
	}
	if _, err := idx.Match(testShapes()[0], 0); err == nil {
		t.Error("k=0 should error")
	}
}

// Figure 2: local distortion that shortens/changes edges defeats the
// edge-normalized baseline but not diameter normalization. We verify the
// mechanism: a shape whose every edge is split with strong midpoint
// displacement keeps its h_avg-rank under our method.
func TestFigure2DistortionRobustness(t *testing.T) {
	b := buildTestBase(t, DefaultOptions())

	// Distort shape 2 (triangle) by splitting each edge at the midpoint
	// and pushing the midpoint outward — no original edge survives.
	src := testShapes()[2]
	var pts []geom.Point
	m := src.NumEdges()
	for i := 0; i < m; i++ {
		e := src.Edge(i)
		pts = append(pts, e.A)
		mid := e.Midpoint().Add(e.Dir().Unit().Perp().Scale(-0.06 * e.Length()))
		pts = append(pts, mid)
	}
	dq := geom.NewPolygon(pts...)
	if err := dq.Validate(); err != nil {
		t.Fatal(err)
	}

	ms, _, err := b.Match(dq, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].ShapeID != 2 {
		t.Errorf("diameter normalization failed on edge-split distortion: matched %d", ms[0].ShapeID)
	}
}
