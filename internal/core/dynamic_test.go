package core

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestDynamicInsertMatch(t *testing.T) {
	d := NewDynamic(DefaultOptions())
	if d.Len() != 0 {
		t.Fatal("fresh dynamic not empty")
	}
	ids := make([]int, 0, len(testShapes()))
	for i, p := range testShapes() {
		id, err := d.Insert(i, p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if d.Len() != len(testShapes()) {
		t.Fatalf("Len = %d", d.Len())
	}
	// Everything is still in overflow (below MinRebuild): matching must
	// work purely on the exact scan.
	if d.OverflowLen() == 0 {
		t.Fatal("expected overflow-resident shapes")
	}
	for want, q := range testShapes() {
		ms, _, err := d.Match(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 1 || ms[0].ShapeID != ids[want] {
			t.Errorf("query %d matched %v", want, ms)
		}
		if ms[0].DistVertex > 1e-9 {
			t.Errorf("exact copy distance %v", ms[0].DistVertex)
		}
	}
}

func TestDynamicDelete(t *testing.T) {
	d := NewDynamic(DefaultOptions())
	var ids []int
	for i, p := range testShapes() {
		id, err := d.Insert(i, p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Delete the square; a square query should now find something else.
	if err := d.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	if d.Len() != len(testShapes())-1 {
		t.Fatalf("Len after delete = %d", d.Len())
	}
	ms, _, err := d.Match(testShapes()[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 1 && ms[0].ShapeID == ids[0] {
		t.Error("deleted shape still retrieved")
	}
	// Error paths.
	if err := d.Delete(ids[0]); err == nil {
		t.Error("double delete should fail")
	}
	if err := d.Delete(999); err == nil {
		t.Error("out-of-range delete should fail")
	}
	if _, err := d.Shape(ids[0]); err == nil {
		t.Error("deleted shape should not be fetchable")
	}
	if s, err := d.Shape(ids[1]); err != nil || s.ID != ids[1] {
		t.Errorf("live shape fetch: %v %v", s, err)
	}
}

func TestDynamicRebuildAndFrozenPath(t *testing.T) {
	d := NewDynamic(DefaultOptions())
	d.MinRebuild = 4 // force early rebuilds
	rng := rand.New(rand.NewSource(2))
	var ids []int
	for i := 0; i < 30; i++ {
		p := distort(testShapes()[i%len(testShapes())], 0.03, rng)
		if p.Validate() != nil {
			p = testShapes()[i%len(testShapes())]
		}
		id, err := d.Insert(i, p)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Rebuild threshold must have fired at least once.
	if d.OverflowLen() >= 30 {
		t.Fatalf("no rebuild happened: overflow %d", d.OverflowLen())
	}
	// Matching merges frozen and overflow: an exact copy of the most
	// recent insert must be found even if it's still in overflow.
	last, err := d.Shape(ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := d.Match(last.Poly, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ms[0].ShapeID != ids[len(ids)-1] {
		t.Errorf("freshest insert not retrieved: %v", ms[0])
	}
	// Deleting a frozen-resident shape hides it immediately.
	victim := ids[0]
	if err := d.Delete(victim); err != nil {
		t.Fatal(err)
	}
	ms, _, err = d.Match(testShapes()[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.ShapeID == victim {
			t.Error("tombstoned shape leaked into results")
		}
	}
	// Explicit rebuild compacts tombstones away.
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.OverflowLen() != 0 {
		t.Error("rebuild should drain the overflow")
	}
}

func TestDynamicMatchAgainstStaticOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dyn := NewDynamic(DefaultOptions())
	static := NewBase(DefaultOptions())
	for i := 0; i < 12; i++ {
		p := distort(testShapes()[i%len(testShapes())], 0.04, rng)
		if p.Validate() != nil {
			p = testShapes()[i%len(testShapes())]
		}
		if _, err := dyn.Insert(i, p); err != nil {
			t.Fatal(err)
		}
		if _, err := static.AddShape(i, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := static.Freeze(); err != nil {
		t.Fatal(err)
	}
	if err := dyn.Rebuild(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		q := distort(testShapes()[trial], 0.02, rng)
		if q.Validate() != nil {
			continue
		}
		dm, _, err := dyn.Match(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		sm, _, err := static.Match(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(dm) != len(sm) {
			t.Fatalf("result sizes differ: %d vs %d", len(dm), len(sm))
		}
		for i := range dm {
			if !almostEq(dm[i].DistVertex, sm[i].DistVertex, 1e-9) {
				t.Errorf("trial %d rank %d: %v vs %v", trial, i, dm[i].DistVertex, sm[i].DistVertex)
			}
		}
	}
}

func TestDynamicEmptyAndErrors(t *testing.T) {
	d := NewDynamic(DefaultOptions())
	if _, _, err := d.Match(testShapes()[0], 0); err == nil {
		t.Error("k=0 should fail")
	}
	ms, _, err := d.Match(testShapes()[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Errorf("empty dynamic returned %v", ms)
	}
	if _, err := d.Insert(0, geom.NewPolyline(geom.Pt(0, 0))); err == nil {
		t.Error("invalid insert should fail")
	}
	// Rebuild of an empty structure is a no-op.
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	// Deleting everything then rebuilding leaves a working empty base.
	id, err := d.Insert(0, testShapes()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
}
