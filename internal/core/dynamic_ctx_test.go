package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// MatchCtx with a live context must agree exactly with Match.
func TestDynamicMatchCtxEquivalent(t *testing.T) {
	d := NewDynamic(DefaultOptions())
	for i, p := range testShapes() {
		if _, err := d.Insert(i, p); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range testShapes() {
		want, _, err := d.Match(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := d.MatchCtx(context.Background(), q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("MatchCtx returned %d matches, Match %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("match %d: ctx variant %+v != plain %+v", i, got[i], want[i])
			}
		}
	}
}

func TestDynamicMatchCtxCancelled(t *testing.T) {
	d := NewDynamic(DefaultOptions())
	// Keep everything in overflow so the scan loop is the path under test.
	d.MinRebuild = 1 << 30
	for i := 0; i < 100; i++ {
		for im, p := range testShapes() {
			if _, err := d.Insert(i*10+im, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, _, err := d.MatchCtx(ctx, testShapes()[0], 5)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ms != nil {
		t.Fatalf("cancelled scan still returned %d matches", len(ms))
	}
}

// The Dynamic bounded scorer must agree bit-for-bit with a frozen Base
// holding the same shapes, both in no-cutoff mode and under a tight
// admissible cutoff.
func TestDynamicShapeDistancePreparedBounded(t *testing.T) {
	opts := DefaultOptions()
	d := NewDynamic(opts)
	d.MinRebuild = 1 << 30
	b := NewBase(opts)
	var dynIDs, baseIDs []int
	for i, p := range testShapes() {
		did, err := d.Insert(i, p)
		if err != nil {
			t.Fatal(err)
		}
		bid, err := b.AddShape(i, p)
		if err != nil {
			t.Fatal(err)
		}
		dynIDs = append(dynIDs, did)
		baseIDs = append(baseIDs, bid)
	}
	if err := b.Freeze(); err != nil {
		t.Fatal(err)
	}
	for _, q := range testShapes() {
		pq, err := PrepareQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dynIDs {
			for _, cut := range []float64{math.Inf(1), 0.5, 0.01} {
				wantD, wantOK, err := b.ShapeDistancePreparedBounded(baseIDs[i], pq, cut)
				if err != nil {
					t.Fatal(err)
				}
				gotD, gotOK, err := d.ShapeDistancePreparedBounded(dynIDs[i], pq, cut)
				if err != nil {
					t.Fatal(err)
				}
				if gotOK != wantOK || (wantOK && gotD != wantD) {
					t.Fatalf("shape %d cut %v: dynamic (%v,%v) != base (%v,%v)",
						i, cut, gotD, gotOK, wantD, wantOK)
				}
			}
		}
	}
	// After a rebuild the frozen-part delegation must keep agreeing.
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	pq, err := PrepareQuery(testShapes()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := range dynIDs {
		wantD, wantOK, err := b.ShapeDistancePreparedBounded(baseIDs[i], pq, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		gotD, gotOK, err := d.ShapeDistancePreparedBounded(dynIDs[i], pq, math.Inf(1))
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK || gotD != wantD {
			t.Fatalf("post-rebuild shape %d: dynamic (%v,%v) != base (%v,%v)", i, gotD, gotOK, wantD, wantOK)
		}
	}
}
