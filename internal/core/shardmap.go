package core

// Shard-stable id mapping. A sharded base partitions images across N
// independent shards, each of which numbers its shapes locally from 0 in
// insertion order. Query results must still report the *global* shape
// ids a single unpartitioned base would have assigned (so results are
// byte-identical across shard counts, and ids survive re-sharding a
// saved base). ShardMap records that correspondence: global ids are
// handed out in image-insertion order, and each is pinned to the
// (shard, local) slot that holds the shape — or to no slot at all when a
// damaged snapshot shard dropped the image, in which case the global id
// stays reserved so every surviving shape keeps its id.

// ShardFor returns the shard an image id is assigned to, out of shards
// partitions. The mapping is a pure function of (imageID, shards) —
// stable across processes, insertion orders, and restarts — using an
// FNV-1a hash so that sequential, clustered, or negative image ids all
// spread evenly.
func ShardFor(imageID, shards int) int {
	if shards <= 1 {
		return 0
	}
	// FNV-1a over the 8 little-endian bytes of the id.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	v := uint64(int64(imageID))
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= prime64
	}
	return int(h % uint64(shards))
}

// ShardLoc is the physical slot of one shape: the shard holding it and
// its local id there.
type ShardLoc struct {
	Shard int32
	Local int32
}

// ShardMap is the bidirectional global⇄(shard, local) shape-id mapping.
// Build it by replaying the image-insertion order through AssignImage
// (or Skip for images that no longer load); afterwards it is immutable
// and safe for concurrent readers.
type ShardMap struct {
	shards  int
	globals [][]int32  // per shard: local id → global id
	locs    []ShardLoc // global id → slot; Shard < 0 when unmapped
}

// NewShardMap creates an empty mapping over the given shard count.
func NewShardMap(shards int) *ShardMap {
	if shards < 1 {
		shards = 1
	}
	return &ShardMap{shards: shards, globals: make([][]int32, shards)}
}

// Shards returns the shard count the mapping was built for.
func (m *ShardMap) Shards() int { return m.shards }

// AssignImage reserves the next count global ids for an image stored on
// the given shard, binding them to that shard's next count local ids.
func (m *ShardMap) AssignImage(shard, count int) {
	for i := 0; i < count; i++ {
		local := int32(len(m.globals[shard]))
		m.globals[shard] = append(m.globals[shard], int32(len(m.locs)))
		m.locs = append(m.locs, ShardLoc{Shard: int32(shard), Local: local})
	}
}

// Skip reserves count global ids with no backing slot: the image that
// owned them was dropped (damaged snapshot section), and consuming its
// ids keeps every later shape's global id unchanged.
func (m *ShardMap) Skip(count int) {
	for i := 0; i < count; i++ {
		m.locs = append(m.locs, ShardLoc{Shard: -1, Local: -1})
	}
}

// CloneGrow returns a deep copy of the mapping widened to shards+extra
// partitions, the new ones empty. Compaction uses it to append a frozen
// delta as a brand-new shard without disturbing the (immutable, shared)
// mapping concurrent readers hold.
func (m *ShardMap) CloneGrow(extra int) *ShardMap {
	if extra < 0 {
		extra = 0
	}
	out := &ShardMap{
		shards:  m.shards + extra,
		globals: make([][]int32, m.shards+extra),
		locs:    append([]ShardLoc(nil), m.locs...),
	}
	for i, g := range m.globals {
		out.globals[i] = append([]int32(nil), g...)
	}
	return out
}

// Global translates a shard-local shape id to its global id.
func (m *ShardMap) Global(shard, local int) int {
	return int(m.globals[shard][local])
}

// Locate translates a global shape id to its slot. ok is false for ids
// whose image was dropped or that were never assigned.
func (m *ShardMap) Locate(global int) (shard, local int, ok bool) {
	if global < 0 || global >= len(m.locs) {
		return 0, 0, false
	}
	loc := m.locs[global]
	if loc.Shard < 0 {
		return 0, 0, false
	}
	return int(loc.Shard), int(loc.Local), true
}

// NumGlobal returns the number of reserved global ids (mapped or
// skipped).
func (m *ShardMap) NumGlobal() int { return len(m.locs) }

// ShardSize returns the number of mapped shapes on one shard.
func (m *ShardMap) ShardSize(shard int) int { return len(m.globals[shard]) }
