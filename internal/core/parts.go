package core

import (
	"fmt"
	"os"

	"repro/internal/geom"
	"repro/internal/rangesearch"
	"repro/internal/shapeindex"
)

// This file is the persistence seam of the frozen base: FrozenParts
// exposes the flattened query-time arrays so a snapshot writer can
// serialize them verbatim, and BaseFromParts reassembles a frozen Base
// from such arrays without re-deriving anything from geometry — the
// decode-free load path of the GSIR3 format. Shape checks in
// BaseFromParts guard every slice-indexing invariant the match kernel
// relies on; element values are trusted, because the loader verifies
// each section's checksum before assembly.

// EntryMeta is the fixed-size scalar part of an Entry (everything but
// the polygon, whose vertices live in the flattened vertex array, and
// the transforms, which are serialized separately as plain float64s).
type EntryMeta struct {
	ShapeID int32
	Copy    int32
	DiamI   int32
	DiamJ   int32
}

// FrozenParts is a read-only view of a frozen base's flattened state.
// The slices alias the base's live internals — callers must not mutate
// them.
type FrozenParts struct {
	Entries    []Entry
	Verts      []geom.Point
	VertEntry  []int32
	EntryOff   []int32
	GeomBounds []GeomBound
	Oracles    []*BoundaryDist
	Backend    rangesearch.Backend
}

// FrozenParts returns the flattened state of a frozen base.
func (b *Base) FrozenParts() (FrozenParts, error) {
	if !b.frozen {
		return FrozenParts{}, fmt.Errorf("core: FrozenParts on an unfrozen base")
	}
	return FrozenParts{
		Entries:    b.entries,
		Verts:      b.verts,
		VertEntry:  b.vertEntry,
		EntryOff:   b.entryOff,
		GeomBounds: b.geomBounds,
		Oracles:    b.oracles,
		Backend:    b.backend,
	}, nil
}

// Grid returns the oracle's segment grid (for persistence).
func (b *BoundaryDist) Grid() *shapeindex.SegmentGrid { return b.grid }

// BaseSpec carries everything BaseFromParts needs to reassemble a
// frozen base. Slices are adopted, not copied: they may alias a
// read-only memory mapping, in which case the Base must not outlive it.
type BaseSpec struct {
	Opts       Options
	Shapes     []Shape          // fully formed, ids 0..n-1 in order
	EntryMeta  []EntryMeta      // one per entry
	EntryTrans []geom.Transform // 2 per entry: Norm then Inv
	Verts      []geom.Point     // flattened entry vertices
	VertEntry  []int32          // vertex id → entry index
	EntryOff   []int32          // entry index → first vertex id (len entries+1)
	GeomBounds []GeomBound      // one per entry
	Grids      []*shapeindex.SegmentGrid // one per entry: its oracle grid
	Backend    rangesearch.Backend
}

// BaseFromParts reassembles a frozen Base from flattened state. The
// result answers every query identically to the Base whose parts were
// serialized: entries, bounds, oracles, and the range-search backend
// are adopted as-is, and only O(n) bookkeeping (entry polygons aliasing
// the vertex array, the shape→entries index, block-cost accounting) is
// rebuilt.
func BaseFromParts(s BaseSpec) (*Base, error) {
	ne := len(s.EntryMeta)
	if ne == 0 {
		return nil, fmt.Errorf("core: base parts with no entries")
	}
	if len(s.Shapes) == 0 {
		return nil, fmt.Errorf("core: base parts with no shapes")
	}
	if len(s.EntryTrans) != 2*ne {
		return nil, fmt.Errorf("core: base parts with %d transforms, want %d", len(s.EntryTrans), 2*ne)
	}
	if len(s.EntryOff) != ne+1 {
		return nil, fmt.Errorf("core: base parts entryOff len %d, want %d", len(s.EntryOff), ne+1)
	}
	if len(s.GeomBounds) != ne || len(s.Grids) != ne {
		return nil, fmt.Errorf("core: base parts with mismatched per-entry arrays")
	}
	if len(s.VertEntry) != len(s.Verts) {
		return nil, fmt.Errorf("core: base parts vertEntry len %d, want %d", len(s.VertEntry), len(s.Verts))
	}
	if s.EntryOff[0] != 0 || int(s.EntryOff[ne]) != len(s.Verts) {
		return nil, fmt.Errorf("core: base parts entryOff does not span the vertex array")
	}
	if s.Backend == nil {
		return nil, fmt.Errorf("core: base parts without a backend")
	}
	for id, sh := range s.Shapes {
		if sh.ID != id {
			return nil, fmt.Errorf("core: base parts shape %d carries id %d", id, sh.ID)
		}
	}
	b := &Base{opts: s.Opts.withDefaults(), shapes: s.Shapes}
	b.entries = make([]Entry, ne)
	b.shapeEntries = make([][]int32, len(s.Shapes))
	for i := range b.entries {
		m := s.EntryMeta[i]
		lo, hi := s.EntryOff[i], s.EntryOff[i+1]
		if lo > hi || int(hi) > len(s.Verts) {
			return nil, fmt.Errorf("core: base parts entry %d has invalid vertex range [%d,%d)", i, lo, hi)
		}
		if m.ShapeID < 0 || int(m.ShapeID) >= len(s.Shapes) {
			return nil, fmt.Errorf("core: base parts entry %d references shape %d of %d", i, m.ShapeID, len(s.Shapes))
		}
		b.entries[i] = Entry{
			ShapeID: int(m.ShapeID),
			Copy:    int(m.Copy),
			Poly: geom.Poly{
				Pts:    s.Verts[lo:hi:hi],
				Closed: s.Shapes[m.ShapeID].Poly.Closed,
			},
			Norm:  s.EntryTrans[2*i],
			Inv:   s.EntryTrans[2*i+1],
			DiamI: int(m.DiamI),
			DiamJ: int(m.DiamJ),
		}
		b.shapeEntries[m.ShapeID] = append(b.shapeEntries[m.ShapeID], int32(i))
	}
	for id := range b.shapeEntries {
		if len(b.shapeEntries[id]) == 0 {
			return nil, fmt.Errorf("core: base parts shape %d has no entries", id)
		}
	}
	b.verts = s.Verts
	b.vertEntry = s.VertEntry
	b.entryOff = s.EntryOff
	b.geomBounds = s.GeomBounds
	b.oracles = make([]*BoundaryDist, ne)
	for i, g := range s.Grids {
		if g == nil {
			return nil, fmt.Errorf("core: base parts entry %d has no oracle grid", i)
		}
		b.oracles[i] = &BoundaryDist{shape: b.entries[i].Poly, grid: g}
	}
	b.backend = s.Backend
	b.frozen = true
	b.computeEntryCosts()
	return b, nil
}

// pageSize is the block-accounting unit: the VM page, since GSIR3
// serves shards through the page cache and the paper's §4 study judges
// the index by blocks fetched, not CPU.
var pageSize = os.Getpagesize()

// computeEntryCosts models each entry's storage footprint — its
// vertices, transforms, geometric bound, and oracle-grid arrays — in
// pages. The match kernel charges this cost whenever it evaluates the
// entry, turning the extstore simulation of the paper's §4 block
// accounting into live counters on the real path.
func (b *Base) computeEntryCosts() {
	b.entryCost = make([]int32, len(b.entries))
	for ei := range b.entries {
		nv := int(b.entryOff[ei+1] - b.entryOff[ei])
		bytes := nv*16 + // vertices
			7*8 + // GeomBound
			2*32 + // Norm + Inv transforms
			16 // entry meta
		if o := b.oracles[ei]; o != nil && o.grid != nil {
			p := o.grid.Parts()
			bytes += 80 + len(p.Ax)*5*8 + len(p.CellStart)*4 + len(p.CellIDs)*4
		}
		blocks := (bytes + pageSize - 1) / pageSize
		if blocks < 1 {
			blocks = 1
		}
		b.entryCost[ei] = int32(blocks)
	}
}

// blockCost returns the page-granular cost of touching entry ei. Bases
// frozen before block accounting existed (or mid-rebuild dynamic
// overflow entries) charge a flat 1.
func (b *Base) blockCost(ei int32) int {
	if b.entryCost == nil || int(ei) >= len(b.entryCost) {
		return 1
	}
	return int(b.entryCost[ei])
}
