package core

import (
	"fmt"

	"repro/internal/geom"
)

// Shape is an object boundary extracted from an image: a simple polygon
// or polyline (§2.4), tagged with the image it belongs to.
type Shape struct {
	ID    int       // shape id, assigned by the base
	Image int       // id of the image this shape was extracted from
	Poly  geom.Poly // the boundary in image coordinates
}

// Entry is one normalized copy of a shape in the shape base. Each shape
// is stored twice per α-diameter: once for each way of mapping the
// diameter endpoints onto (0,0) and (1,0) (§2.4).
type Entry struct {
	ShapeID int            // the shape this copy belongs to
	Copy    int            // copy ordinal within the shape
	Poly    geom.Poly      // normalized vertices
	Norm    geom.Transform // image frame → normalized frame
	Inv     geom.Transform // normalized frame → image frame
	DiamI   int            // vertex index mapped to (0,0)
	DiamJ   int            // vertex index mapped to (1,0)
}

// Normalize produces all normalized copies of p for the given α: two per
// α-diameter (both endpoint orders). α must be in [0, 1). Degenerate
// shapes (zero diameter) produce no copies and an error.
func Normalize(p geom.Poly, alpha float64) ([]Entry, error) {
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("core: alpha %v out of [0,1)", alpha)
	}
	pairs := p.AlphaDiameters(alpha)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: shape has no α-diameters (degenerate)")
	}
	out := make([]Entry, 0, 2*len(pairs))
	copyOrd := 0
	for _, pr := range pairs {
		for _, ord := range [2][2]int{{pr[0], pr[1]}, {pr[1], pr[0]}} {
			a, b := p.Pts[ord[0]], p.Pts[ord[1]]
			tr, err := geom.NormalizeOnto(a, b)
			if err != nil {
				continue
			}
			out = append(out, Entry{
				Copy:  copyOrd,
				Poly:  p.Transform(tr),
				Norm:  tr,
				Inv:   tr.Inverse(),
				DiamI: ord[0],
				DiamJ: ord[1],
			})
			copyOrd++
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: normalization produced no copies")
	}
	return out, nil
}

// NormalizeCanonical returns the single canonical normalization of p:
// about its true diameter, with the lower-index endpoint mapped to (0,0).
// This is the normalization applied to query shapes — the base's
// α-diameter copies absorb the remaining degrees of freedom.
func NormalizeCanonical(p geom.Poly) (Entry, error) {
	i, j, d := p.Diameter()
	if d <= geom.Eps {
		return Entry{}, fmt.Errorf("core: degenerate shape, zero diameter")
	}
	tr, err := geom.NormalizeOnto(p.Pts[i], p.Pts[j])
	if err != nil {
		return Entry{}, err
	}
	return Entry{
		Poly:  p.Transform(tr),
		Norm:  tr,
		Inv:   tr.Inverse(),
		DiamI: i,
		DiamJ: j,
	}, nil
}

// DiameterAngle returns the orientation, in the original image frame, of
// the entry's normalized diameter vector ((0,0),(1,0)) mapped back through
// the inverse normalization — the quantity used by the θ argument of the
// topological predicates (§5.3).
func (e Entry) DiameterAngle() float64 {
	v := e.Inv.Apply(geom.Pt(1, 0)).Sub(e.Inv.Apply(geom.Pt(0, 0)))
	return v.Angle()
}

// Lune bounds: shapes normalized about their true diameter have all
// vertices inside the lune defined by the two unit circles centered at
// (0,0) and (1,0) (§3). α-diameter copies may exceed it slightly.

// LuneArea is the area of the lune: the intersection of the two unit
// disks centered at (0,0) and (1,0) — 2π/3 − √3/2.
const LuneArea = 2*3.14159265358979323846/3 - 0.86602540378443864676

// InLune reports whether p lies inside the lune.
func InLune(p geom.Point) bool {
	return p.Norm2() <= 1+geom.Eps && p.Sub(geom.Pt(1, 0)).Norm2() <= 1+geom.Eps
}

// ClampToLune maps a point outside the lune onto (the vicinity of) its
// boundary, the treatment §3 prescribes for vertices of α-diameter copies
// that fall outside the locus.
func ClampToLune(p geom.Point) geom.Point {
	const maxIter = 48
	q := p
	for iter := 0; iter < maxIter && !InLune(q); iter++ {
		if n := q.Norm(); n > 1 {
			q = q.Scale(1 / n)
		}
		d := q.Sub(geom.Pt(1, 0))
		if n := d.Norm(); n > 1 {
			q = geom.Pt(1, 0).Add(d.Scale(1 / n))
		}
	}
	return q
}
