package iofault

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFailWriter(t *testing.T) {
	var sink bytes.Buffer
	w := FailWriter(&sink, 5)
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("crossing write: n=%d err=%v", n, err)
	}
	if !w.Tripped() {
		t.Error("not tripped")
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("post-trip write: %v", err)
	}
	if got := sink.String(); got != "abcde" {
		t.Errorf("sink = %q, want abcde", got)
	}
	if w.BytesPassed() != 5 {
		t.Errorf("passed = %d", w.BytesPassed())
	}
}

func TestFailWriterErrCustom(t *testing.T) {
	sentinel := errors.New("boom")
	w := FailWriterErr(io.Discard, 0, sentinel)
	if _, err := w.Write([]byte("a")); !errors.Is(err, sentinel) {
		t.Fatalf("want sentinel, got %v", err)
	}
	w = FailWriterErr(io.Discard, 0, nil)
	if _, err := w.Write([]byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("nil err should default to ErrInjected, got %v", err)
	}
}

func TestTruncWriterLies(t *testing.T) {
	var sink bytes.Buffer
	w := TruncWriter(&sink, 4)
	n, err := w.Write([]byte("abcdef"))
	if n != 6 || err != nil {
		t.Fatalf("torn write must claim success: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("gh"))
	if n != 2 || err != nil {
		t.Fatalf("post-trip torn write: n=%d err=%v", n, err)
	}
	if got := sink.String(); got != "abcd" {
		t.Errorf("sink = %q, want abcd", got)
	}
	if w.BytesSeen() != 8 || w.BytesPassed() != 4 {
		t.Errorf("seen=%d passed=%d", w.BytesSeen(), w.BytesPassed())
	}
}

func TestFailReader(t *testing.T) {
	r := FailReader(strings.NewReader("abcdef"), 4)
	buf, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if string(buf) != "abcd" {
		t.Errorf("read %q, want abcd", buf)
	}
	if !r.Tripped() {
		t.Error("not tripped")
	}
}

func TestTruncReader(t *testing.T) {
	r := TruncReader(strings.NewReader("abcdef"), 4)
	buf, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("truncated read should end cleanly: %v", err)
	}
	if string(buf) != "abcd" {
		t.Errorf("read %q, want abcd", buf)
	}
}

func TestBlockPlan(t *testing.T) {
	p := NewBlockPlan().FailWrite(1).TornWrite(2, 3).FailRead(0)
	if keep, err := p.NextWrite(10); keep != 10 || err != nil {
		t.Fatalf("op0: keep=%d err=%v", keep, err)
	}
	if _, err := p.NextWrite(10); !errors.Is(err, ErrInjected) {
		t.Fatalf("op1 should fail: %v", err)
	}
	if keep, err := p.NextWrite(10); keep != 3 || err != nil {
		t.Fatalf("op2: keep=%d err=%v", keep, err)
	}
	if keep, _ := p.NextWrite(2); keep != 2 {
		t.Fatalf("torn keep must clamp to size on later ops? op3 untouched, keep=%d", keep)
	}
	if err := p.NextRead(); !errors.Is(err, ErrInjected) {
		t.Fatalf("read op0 should fail: %v", err)
	}
	if err := p.NextRead(); err != nil {
		t.Fatalf("read op1: %v", err)
	}
	if p.WriteOps() != 4 || p.ReadOps() != 2 {
		t.Errorf("ops = %d/%d", p.WriteOps(), p.ReadOps())
	}
}

func TestNilBlockPlan(t *testing.T) {
	var p *BlockPlan
	if keep, err := p.NextWrite(7); keep != 7 || err != nil {
		t.Fatalf("nil plan write: keep=%d err=%v", keep, err)
	}
	if err := p.NextRead(); err != nil {
		t.Fatalf("nil plan read: %v", err)
	}
	if p.WriteOps() != 0 || p.ReadOps() != 0 {
		t.Error("nil plan counters must be zero")
	}
}

func TestTornWriteClamp(t *testing.T) {
	p := NewBlockPlan().TornWrite(0, 100)
	if keep, err := p.NextWrite(5); keep != 5 || err != nil {
		t.Fatalf("keep must clamp to payload size: keep=%d err=%v", keep, err)
	}
}
