// Package iofault provides injectable I/O fault wrappers for crash-safety
// and corruption testing. A faulty Writer either fails hard or silently
// truncates ("torn write") once a configured byte offset is reached; a
// faulty Reader fails or reports a premature EOF. BlockPlan schedules the
// same failure modes on a simulated block device by operation index.
//
// The wrappers are deliberately deterministic: a test that sweeps the
// fault offset across every byte of a stream exercises every possible
// crash point exactly once.
package iofault

import (
	"errors"
	"io"
)

// ErrInjected is the error surfaced by fault wrappers configured to fail.
var ErrInjected = errors.New("iofault: injected fault")

// Writer wraps an io.Writer and misbehaves once limit bytes have been let
// through. With a non-nil trip error it fails the crossing Write (and all
// later ones) after passing the bytes that fit — a crash mid-write. With a
// nil trip error it silently discards everything past the limit while
// reporting success — a torn write / lost page cache.
type Writer struct {
	w       io.Writer
	limit   int64
	tripErr error // nil = silent truncation
	passed  int64 // bytes actually handed to the underlying writer
	seen    int64 // bytes claimed written to the caller
	tripped bool
}

// FailWriter returns a Writer that passes through the first limit bytes
// and then fails every Write with ErrInjected.
func FailWriter(w io.Writer, limit int64) *Writer {
	return &Writer{w: w, limit: limit, tripErr: ErrInjected}
}

// FailWriterErr is FailWriter with a caller-chosen error.
func FailWriterErr(w io.Writer, limit int64, err error) *Writer {
	if err == nil {
		err = ErrInjected
	}
	return &Writer{w: w, limit: limit, tripErr: err}
}

// TruncWriter returns a Writer that passes through the first limit bytes
// and silently discards the rest, reporting success — the underlying
// stream ends up truncated at limit while the caller believes every byte
// landed.
func TruncWriter(w io.Writer, limit int64) *Writer {
	return &Writer{w: w, limit: limit}
}

// Write implements io.Writer with the configured fault behavior.
func (f *Writer) Write(p []byte) (int, error) {
	room := f.limit - f.passed
	if room < 0 {
		room = 0
	}
	pass := int64(len(p))
	if pass > room {
		pass = room
	}
	var n int
	var err error
	if pass > 0 {
		n, err = f.w.Write(p[:pass])
		f.passed += int64(n)
		if err != nil {
			f.seen += int64(n)
			return n, err
		}
	}
	if int64(len(p)) <= room {
		f.seen += int64(len(p))
		return len(p), nil
	}
	f.tripped = true
	if f.tripErr != nil {
		f.seen += int64(n)
		return n, f.tripErr
	}
	// Torn write: lie about the tail.
	f.seen += int64(len(p))
	return len(p), nil
}

// Tripped reports whether the fault fired.
func (f *Writer) Tripped() bool { return f.tripped }

// BytesPassed returns the bytes that actually reached the underlying
// writer.
func (f *Writer) BytesPassed() int64 { return f.passed }

// BytesSeen returns the bytes the caller believes were written.
func (f *Writer) BytesSeen() int64 { return f.seen }

// Reader wraps an io.Reader and misbehaves once limit bytes have been
// served: with a non-nil trip error it fails, otherwise it reports a
// clean EOF (a truncated file).
type Reader struct {
	r       io.Reader
	limit   int64
	tripErr error // nil = premature EOF
	served  int64
	tripped bool
}

// FailReader returns a Reader that serves the first limit bytes and then
// fails with ErrInjected.
func FailReader(r io.Reader, limit int64) *Reader {
	return &Reader{r: r, limit: limit, tripErr: ErrInjected}
}

// TruncReader returns a Reader that serves the first limit bytes and then
// reports EOF, as if the stream had been truncated there.
func TruncReader(r io.Reader, limit int64) *Reader {
	return &Reader{r: r, limit: limit}
}

// Read implements io.Reader with the configured fault behavior.
func (f *Reader) Read(p []byte) (int, error) {
	room := f.limit - f.served
	if room <= 0 {
		f.tripped = true
		if f.tripErr != nil {
			return 0, f.tripErr
		}
		return 0, io.EOF
	}
	if int64(len(p)) > room {
		p = p[:room]
	}
	n, err := f.r.Read(p)
	f.served += int64(n)
	return n, err
}

// Tripped reports whether the fault fired.
func (f *Reader) Tripped() bool { return f.tripped }

// BlockPlan schedules faults on a block device by zero-based operation
// index, counted separately for reads and writes. The zero value (or nil)
// injects nothing. Configure before use; a plan is not safe for
// concurrent mutation with device traffic.
type BlockPlan struct {
	writeErr  map[int]error
	writeKeep map[int]int
	readErr   map[int]error
	writes    int
	reads     int
}

// NewBlockPlan returns an empty plan.
func NewBlockPlan() *BlockPlan { return &BlockPlan{} }

// FailWrite makes write operation op fail with ErrInjected (the block is
// left untouched). Returns the plan for chaining.
func (p *BlockPlan) FailWrite(op int) *BlockPlan {
	if p.writeErr == nil {
		p.writeErr = make(map[int]error)
	}
	p.writeErr[op] = ErrInjected
	return p
}

// TornWrite makes write operation op keep only the first keep bytes of
// its payload while still reporting success — a block torn by a crash
// mid-write. Returns the plan for chaining.
func (p *BlockPlan) TornWrite(op, keep int) *BlockPlan {
	if p.writeKeep == nil {
		p.writeKeep = make(map[int]int)
	}
	if keep < 0 {
		keep = 0
	}
	p.writeKeep[op] = keep
	return p
}

// FailRead makes read operation op fail with ErrInjected. Returns the
// plan for chaining.
func (p *BlockPlan) FailRead(op int) *BlockPlan {
	if p.readErr == nil {
		p.readErr = make(map[int]error)
	}
	p.readErr[op] = ErrInjected
	return p
}

// NextWrite advances the write-operation counter and returns the number
// of payload bytes the device should keep (keep == size means the write
// is intact) plus the injected error, if any. A nil plan never faults.
func (p *BlockPlan) NextWrite(size int) (keep int, err error) {
	if p == nil {
		return size, nil
	}
	op := p.writes
	p.writes++
	if e, ok := p.writeErr[op]; ok {
		return 0, e
	}
	if k, ok := p.writeKeep[op]; ok {
		if k > size {
			k = size
		}
		return k, nil
	}
	return size, nil
}

// NextRead advances the read-operation counter and returns the injected
// error, if any. A nil plan never faults.
func (p *BlockPlan) NextRead() error {
	if p == nil {
		return nil
	}
	op := p.reads
	p.reads++
	return p.readErr[op]
}

// WriteOps returns the number of write operations the plan has seen.
func (p *BlockPlan) WriteOps() int {
	if p == nil {
		return 0
	}
	return p.writes
}

// ReadOps returns the number of read operations the plan has seen.
func (p *BlockPlan) ReadOps() int {
	if p == nil {
		return 0
	}
	return p.reads
}
