package shapeindex

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// randomPolyline builds an open or closed chain by a random walk, the shape
// family the grid actually indexes in the engine (Poly.Edges of extracted
// contours): consecutive, connected, unevenly sized segments.
func randomPolyline(rng *rand.Rand, n int, scale float64, closed bool) geom.Poly {
	pts := make([]geom.Point, n)
	cur := geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
	for i := range pts {
		pts[i] = cur
		step := geom.Pt(rng.NormFloat64(), rng.NormFloat64()).Scale(scale / 8)
		cur = cur.Add(step)
	}
	return geom.Poly{Pts: pts, Closed: closed}
}

// TestSegmentGridPolylineProperty checks Nearest against an exhaustive scan
// over the edge sets of random polylines — open and closed, long and
// degenerate-short — with queries on, near, and far from the chain.
func TestSegmentGridPolylineProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(90125))
	for trial := 0; trial < 60; trial++ {
		closed := trial%2 == 0
		n := 2 + rng.Intn(40)
		poly := randomPolyline(rng, n, 4+rng.Float64()*8, closed)
		segs := poly.Edges()
		if len(segs) == 0 {
			continue
		}
		g := NewSegmentGrid(segs)
		if g.NumSegments() != len(segs) {
			t.Fatalf("trial %d: indexed %d of %d segments", trial, g.NumSegments(), len(segs))
		}
		queries := make([]geom.Point, 0, 40)
		for q := 0; q < 20; q++ {
			queries = append(queries, geom.Pt(rng.NormFloat64()*10, rng.NormFloat64()*10))
		}
		// On-chain queries: vertices and edge midpoints must be at distance 0.
		for _, s := range segs {
			queries = append(queries, s.A, s.A.Lerp(s.B, 0.5))
		}
		// Far-outside queries exercise the ring-search fallback.
		b := poly.Bounds()
		queries = append(queries,
			geom.Pt(b.Min.X-50, b.Min.Y-50),
			geom.Pt(b.Max.X+100, b.Min.Y),
		)
		for _, p := range queries {
			gi, gd := g.Nearest(p)
			_, bd := bruteNearestSeg(segs, p)
			if !almostEq(gd, bd, 1e-9*(1+bd)) {
				t.Fatalf("trial %d (closed=%v, %d segs) at %v: grid %v != brute %v",
					trial, closed, len(segs), p, gd, bd)
			}
			if gi < 0 || gi >= len(segs) {
				t.Fatalf("trial %d: Nearest returned out-of-range index %d", trial, gi)
			}
			if !almostEq(segs[gi].DistToPoint(p), gd, 1e-12*(1+gd)) {
				t.Fatalf("trial %d: returned index %d inconsistent with distance %v", trial, gi, gd)
			}
		}
	}
}

// TestSegmentGridDegenerateChains pins the edge cases a uniform grid is
// most likely to mishandle: zero-length segments, a chain collapsed onto a
// point, and an axis-aligned chain with zero extent in one dimension.
func TestSegmentGridDegenerateChains(t *testing.T) {
	cases := []struct {
		name string
		segs []geom.Segment
	}{
		{"single-degenerate", []geom.Segment{geom.Seg(geom.Pt(3, 3), geom.Pt(3, 3))}},
		{"all-coincident", []geom.Segment{
			geom.Seg(geom.Pt(1, 1), geom.Pt(1, 1)),
			geom.Seg(geom.Pt(1, 1), geom.Pt(1, 1)),
		}},
		{"horizontal-line", geom.Poly{Pts: []geom.Point{
			geom.Pt(0, 2), geom.Pt(3, 2), geom.Pt(7, 2), geom.Pt(11, 2),
		}}.Edges()},
		{"vertical-line", geom.Poly{Pts: []geom.Point{
			geom.Pt(-1, 0), geom.Pt(-1, 5), geom.Pt(-1, 9),
		}}.Edges()},
	}
	queries := []geom.Point{
		geom.Pt(0, 0), geom.Pt(3, 3), geom.Pt(-4, 7), geom.Pt(100, -100), geom.Pt(1, 1),
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := NewSegmentGrid(tc.segs)
			for _, p := range queries {
				_, gd := g.Nearest(p)
				_, bd := bruteNearestSeg(tc.segs, p)
				if !almostEq(gd, bd, 1e-9*(1+bd)) {
					t.Fatalf("query %v: grid %v != brute %v", p, gd, bd)
				}
			}
		})
	}
}
