// Package shapeindex provides nearest-feature query structures over the
// geometry of a shape: a uniform grid over its edges for
// nearest-point-on-boundary queries (the inner min of the h_avg similarity
// measure, evaluated against the continuous boundary), and a kd-tree over
// point sets for nearest-vertex queries.
package shapeindex

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// SegmentGrid answers nearest-segment queries over a fixed set of
// segments using a uniform bucket grid with expanding ring search.
// Build is O(n) for n segments of bounded length; queries on
// image-extracted shapes (short, evenly sized edges) are O(1) expected.
//
// The segments are stored flattened into contiguous structure-of-arrays
// float64 slices (endpoint, direction, inverse squared length) and the
// cells as a CSR layout (cellStart offsets into one shared id slice), so
// the inner distance loop of a query touches only dense sequential
// float64 data — no per-cell slice headers, no geom.Point indirection —
// and works in squared distances with a single square root at the end.
type SegmentGrid struct {
	ax, ay, dx, dy []float64 // segment start points and direction vectors
	invL2          []float64 // 1 / |d|² (0 for degenerate segments)
	bounds         geom.Rect
	nx, ny         int
	cw, ch         float64 // cell width/height
	cellStart      []int32 // len nx*ny+1: CSR offsets into cellIDs
	cellIDs        []int32
}

// NewSegmentGrid indexes the given segments. It panics on an empty input
// since a grid over nothing has no meaningful queries.
func NewSegmentGrid(segs []geom.Segment) *SegmentGrid {
	if len(segs) == 0 {
		panic("shapeindex: NewSegmentGrid on empty segment set")
	}
	b := geom.EmptyRect()
	for _, s := range segs {
		b = b.Union(s.Bounds())
	}
	// Degenerate extents still need a positive cell size.
	w := math.Max(b.Width(), 1e-9)
	h := math.Max(b.Height(), 1e-9)
	n := len(segs)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	g := &SegmentGrid{
		ax:     make([]float64, n),
		ay:     make([]float64, n),
		dx:     make([]float64, n),
		dy:     make([]float64, n),
		invL2:  make([]float64, n),
		bounds: b,
		nx:     side,
		ny:     side,
		cw:     w / float64(side),
		ch:     h / float64(side),
	}
	for i, s := range segs {
		g.ax[i], g.ay[i] = s.A.X, s.A.Y
		g.dx[i], g.dy[i] = s.B.X-s.A.X, s.B.Y-s.A.Y
		if l2 := g.dx[i]*g.dx[i] + g.dy[i]*g.dy[i]; l2 > 0 {
			g.invL2[i] = 1 / l2
		}
	}
	// CSR cell build: count memberships, prefix-sum, then fill.
	counts := make([]int32, g.nx*g.ny)
	g.eachCell(segs, func(idx int, id int32) { counts[idx]++ })
	g.cellStart = make([]int32, len(counts)+1)
	for i, c := range counts {
		g.cellStart[i+1] = g.cellStart[i] + c
	}
	g.cellIDs = make([]int32, g.cellStart[len(counts)])
	fill := make([]int32, len(counts))
	g.eachCell(segs, func(idx int, id int32) {
		g.cellIDs[g.cellStart[idx]+fill[idx]] = id
		fill[idx]++
	})
	return g
}

// eachCell invokes fn for every (cell, segment) membership: each segment
// is recorded in every cell of its bounding box that it actually touches.
func (g *SegmentGrid) eachCell(segs []geom.Segment, fn func(idx int, id int32)) {
	for i, s := range segs {
		sb := s.Bounds()
		x0, y0 := g.cellOf(sb.Min)
		x1, y1 := g.cellOf(sb.Max)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				if segmentTouchesRect(s, g.cellRect(cx, cy)) {
					fn(g.cellIndex(cx, cy), int32(i))
				}
			}
		}
	}
}

func (g *SegmentGrid) cellIndex(cx, cy int) int { return cy*g.nx + cx }

func (g *SegmentGrid) cellOf(p geom.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cw)
	cy := int((p.Y - g.bounds.Min.Y) / g.ch)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *SegmentGrid) cellRect(cx, cy int) geom.Rect {
	return geom.Rect{
		Min: geom.Pt(g.bounds.Min.X+float64(cx)*g.cw, g.bounds.Min.Y+float64(cy)*g.ch),
		Max: geom.Pt(g.bounds.Min.X+float64(cx+1)*g.cw, g.bounds.Min.Y+float64(cy+1)*g.ch),
	}
}

func segmentTouchesRect(s geom.Segment, r geom.Rect) bool {
	if r.Contains(s.A) || r.Contains(s.B) {
		return true
	}
	c := r.Corners()
	for i := 0; i < 4; i++ {
		if hit, _ := s.Intersect(geom.Seg(c[i], c[(i+1)%4])); hit {
			return true
		}
	}
	return false
}

// NumSegments returns the number of indexed segments.
func (g *SegmentGrid) NumSegments() int { return len(g.ax) }

// Segment returns the i-th indexed segment.
func (g *SegmentGrid) Segment(i int) geom.Segment {
	return geom.Seg(geom.Pt(g.ax[i], g.ay[i]), geom.Pt(g.ax[i]+g.dx[i], g.ay[i]+g.dy[i]))
}

// scanCell folds every segment of cell idx into the running squared-
// distance minimum and returns the updated (best index, best distance²).
func (g *SegmentGrid) scanCell(idx int, px, py float64, best int, best2 float64) (int, float64) {
	lo, hi := g.cellStart[idx], g.cellStart[idx+1]
	for _, id := range g.cellIDs[lo:hi] {
		wx, wy := px-g.ax[id], py-g.ay[id]
		t := (wx*g.dx[id] + wy*g.dy[id]) * g.invL2[id]
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
		ex, ey := wx-t*g.dx[id], wy-t*g.dy[id]
		if d2 := ex*ex + ey*ey; d2 < best2 {
			best2 = d2
			best = int(id)
		}
	}
	return best, best2
}

// Nearest returns the index of the segment closest to p and the distance
// to it. It searches grid rings outward from p's cell and stops as soon as
// the best distance found cannot be beaten by any unexplored ring. The
// ring walk is open-coded (no callback) so the whole query runs without
// allocating.
func (g *SegmentGrid) Nearest(p geom.Point) (int, float64) {
	cx, cy := g.cellOf(p)
	px, py := p.X, p.Y
	best := -1
	best2 := math.Inf(1)
	maxRing := g.nx + g.ny // enough to cover the whole grid from any cell
	for ring := 0; ring <= maxRing; ring++ {
		// Lower bound on the distance to any cell in this ring.
		if best >= 0 && ring > 0 {
			lb := (float64(ring - 1)) * math.Min(g.cw, g.ch)
			if lb*lb > best2 {
				break
			}
		}
		if ring == 0 {
			best, best2 = g.scanCell(g.cellIndex(cx, cy), px, py, best, best2)
			continue
		}
		x0, x1 := cx-ring, cx+ring
		y0, y1 := cy-ring, cy+ring
		for x := x0; x <= x1; x++ {
			if x < 0 || x >= g.nx {
				continue
			}
			if y0 >= 0 && y0 < g.ny {
				best, best2 = g.scanCell(g.cellIndex(x, y0), px, py, best, best2)
			}
			if y1 >= 0 && y1 < g.ny {
				best, best2 = g.scanCell(g.cellIndex(x, y1), px, py, best, best2)
			}
		}
		for y := y0 + 1; y <= y1-1; y++ {
			if y < 0 || y >= g.ny {
				continue
			}
			if x0 >= 0 && x0 < g.nx {
				best, best2 = g.scanCell(g.cellIndex(x0, y), px, py, best, best2)
			}
			if x1 >= 0 && x1 < g.nx {
				best, best2 = g.scanCell(g.cellIndex(x1, y), px, py, best, best2)
			}
		}
	}
	if best < 0 {
		// p far outside a sparse grid: fall back to a scan (still correct).
		for id := range g.ax {
			wx, wy := px-g.ax[id], py-g.ay[id]
			t := (wx*g.dx[id] + wy*g.dy[id]) * g.invL2[id]
			if t < 0 {
				t = 0
			} else if t > 1 {
				t = 1
			}
			ex, ey := wx-t*g.dx[id], wy-t*g.dy[id]
			if d2 := ex*ex + ey*ey; d2 < best2 {
				best2 = d2
				best = id
			}
		}
	}
	return best, math.Sqrt(best2)
}

// Dist returns the distance from p to the nearest indexed segment.
func (g *SegmentGrid) Dist(p geom.Point) float64 {
	_, d := g.Nearest(p)
	return d
}

// String implements fmt.Stringer with a capacity summary.
func (g *SegmentGrid) String() string {
	return fmt.Sprintf("SegmentGrid{%d segments, %dx%d cells}", len(g.ax), g.nx, g.ny)
}

// GridParts is the flattened state of a SegmentGrid, exposed so a
// persistence layer can write the grid's arrays verbatim and rebuild
// (or alias) them without re-deriving cell memberships from geometry.
// The slices are the grid's live internals — callers must not mutate
// them.
type GridParts struct {
	Ax, Ay, Dx, Dy []float64 // segment start points and direction vectors
	InvL2          []float64 // 1 / |d|² (0 for degenerate segments)
	Bounds         geom.Rect
	Nx, Ny         int
	Cw, Ch         float64
	CellStart      []int32 // len Nx*Ny+1: CSR offsets into CellIDs
	CellIDs        []int32
}

// Parts returns the grid's flattened state.
func (g *SegmentGrid) Parts() GridParts {
	return GridParts{
		Ax: g.ax, Ay: g.ay, Dx: g.dx, Dy: g.dy, InvL2: g.invL2,
		Bounds: g.bounds, Nx: g.nx, Ny: g.ny, Cw: g.cw, Ch: g.ch,
		CellStart: g.cellStart, CellIDs: g.cellIDs,
	}
}

// GridFromParts reassembles a SegmentGrid from previously flattened
// state, adopting (possibly aliasing) the given slices. Shape checks
// guard slice-indexing invariants; element values are trusted — the
// caller is expected to have integrity-checked the bytes (the GSIR3
// loader verifies every section checksum before assembly).
func GridFromParts(p GridParts) (*SegmentGrid, error) {
	n := len(p.Ax)
	if n == 0 {
		return nil, fmt.Errorf("shapeindex: grid parts with no segments")
	}
	if len(p.Ay) != n || len(p.Dx) != n || len(p.Dy) != n || len(p.InvL2) != n {
		return nil, fmt.Errorf("shapeindex: grid parts with mismatched segment arrays")
	}
	if p.Nx < 1 || p.Ny < 1 || p.Nx > n+1 || p.Ny > n+1 {
		return nil, fmt.Errorf("shapeindex: grid parts with implausible dimensions %dx%d", p.Nx, p.Ny)
	}
	if len(p.CellStart) != p.Nx*p.Ny+1 {
		return nil, fmt.Errorf("shapeindex: grid parts cellStart len %d, want %d",
			len(p.CellStart), p.Nx*p.Ny+1)
	}
	if !(p.Cw > 0) || !(p.Ch > 0) {
		return nil, fmt.Errorf("shapeindex: grid parts with non-positive cell size")
	}
	if int(p.CellStart[len(p.CellStart)-1]) != len(p.CellIDs) {
		return nil, fmt.Errorf("shapeindex: grid parts cellIDs len %d, want %d",
			len(p.CellIDs), p.CellStart[len(p.CellStart)-1])
	}
	return &SegmentGrid{
		ax: p.Ax, ay: p.Ay, dx: p.Dx, dy: p.Dy, invL2: p.InvL2,
		bounds: p.Bounds, nx: p.Nx, ny: p.Ny, cw: p.Cw, ch: p.Ch,
		cellStart: p.CellStart, cellIDs: p.CellIDs,
	}, nil
}
