// Package shapeindex provides nearest-feature query structures over the
// geometry of a shape: a uniform grid over its edges for
// nearest-point-on-boundary queries (the inner min of the h_avg similarity
// measure, evaluated against the continuous boundary), and a kd-tree over
// point sets for nearest-vertex queries.
package shapeindex

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// SegmentGrid answers nearest-segment queries over a fixed set of
// segments using a uniform bucket grid with expanding ring search.
// Build is O(n) for n segments of bounded length; queries on
// image-extracted shapes (short, evenly sized edges) are O(1) expected.
type SegmentGrid struct {
	segs   []geom.Segment
	bounds geom.Rect
	nx, ny int
	cw, ch float64 // cell width/height
	cells  [][]int32
}

// NewSegmentGrid indexes the given segments. It panics on an empty input
// since a grid over nothing has no meaningful queries.
func NewSegmentGrid(segs []geom.Segment) *SegmentGrid {
	if len(segs) == 0 {
		panic("shapeindex: NewSegmentGrid on empty segment set")
	}
	b := geom.EmptyRect()
	for _, s := range segs {
		b = b.Union(s.Bounds())
	}
	// Degenerate extents still need a positive cell size.
	w := math.Max(b.Width(), 1e-9)
	h := math.Max(b.Height(), 1e-9)
	n := len(segs)
	side := int(math.Ceil(math.Sqrt(float64(n))))
	if side < 1 {
		side = 1
	}
	g := &SegmentGrid{
		segs:   append([]geom.Segment(nil), segs...),
		bounds: b,
		nx:     side,
		ny:     side,
		cw:     w / float64(side),
		ch:     h / float64(side),
	}
	g.cells = make([][]int32, g.nx*g.ny)
	for i, s := range g.segs {
		g.insert(int32(i), s)
	}
	return g
}

func (g *SegmentGrid) cellIndex(cx, cy int) int { return cy*g.nx + cx }

func (g *SegmentGrid) cellOf(p geom.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cw)
	cy := int((p.Y - g.bounds.Min.Y) / g.ch)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *SegmentGrid) cellRect(cx, cy int) geom.Rect {
	return geom.Rect{
		Min: geom.Pt(g.bounds.Min.X+float64(cx)*g.cw, g.bounds.Min.Y+float64(cy)*g.ch),
		Max: geom.Pt(g.bounds.Min.X+float64(cx+1)*g.cw, g.bounds.Min.Y+float64(cy+1)*g.ch),
	}
}

// insert records segment id in every cell its bounding box overlaps whose
// rectangle it actually approaches within half a cell diagonal.
func (g *SegmentGrid) insert(id int32, s geom.Segment) {
	sb := s.Bounds()
	x0, y0 := g.cellOf(sb.Min)
	x1, y1 := g.cellOf(sb.Max)
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			r := g.cellRect(cx, cy)
			// Exact test: does the segment come within the cell?
			if segmentTouchesRect(s, r) {
				idx := g.cellIndex(cx, cy)
				g.cells[idx] = append(g.cells[idx], id)
			}
		}
	}
}

func segmentTouchesRect(s geom.Segment, r geom.Rect) bool {
	if r.Contains(s.A) || r.Contains(s.B) {
		return true
	}
	c := r.Corners()
	for i := 0; i < 4; i++ {
		if hit, _ := s.Intersect(geom.Seg(c[i], c[(i+1)%4])); hit {
			return true
		}
	}
	return false
}

// NumSegments returns the number of indexed segments.
func (g *SegmentGrid) NumSegments() int { return len(g.segs) }

// Segment returns the i-th indexed segment.
func (g *SegmentGrid) Segment(i int) geom.Segment { return g.segs[i] }

// Nearest returns the index of the segment closest to p and the distance
// to it. It searches grid rings outward from p's cell and stops as soon as
// the best distance found cannot be beaten by any unexplored ring.
func (g *SegmentGrid) Nearest(p geom.Point) (int, float64) {
	cx, cy := g.cellOf(p)
	best := -1
	bestD := math.Inf(1)
	maxRing := g.nx + g.ny // enough to cover the whole grid from any cell
	for ring := 0; ring <= maxRing; ring++ {
		// Lower bound on the distance to any cell in this ring.
		if best >= 0 && ring > 0 {
			lb := (float64(ring - 1)) * math.Min(g.cw, g.ch)
			if lb > bestD {
				break
			}
		}
		g.visitRing(cx, cy, ring, func(idx int) {
			for _, id := range g.cells[idx] {
				if d := g.segs[id].DistToPoint(p); d < bestD {
					bestD = d
					best = int(id)
				}
			}
		})
	}
	if best < 0 {
		// p far outside a sparse grid: fall back to a scan (still correct).
		for i, s := range g.segs {
			if d := s.DistToPoint(p); d < bestD {
				bestD, best = d, i
			}
		}
	}
	return best, bestD
}

// Dist returns the distance from p to the nearest indexed segment.
func (g *SegmentGrid) Dist(p geom.Point) float64 {
	_, d := g.Nearest(p)
	return d
}

// visitRing calls fn for every valid cell index at Chebyshev distance
// exactly ring from (cx, cy).
func (g *SegmentGrid) visitRing(cx, cy, ring int, fn func(idx int)) {
	if ring == 0 {
		fn(g.cellIndex(cx, cy))
		return
	}
	x0, x1 := cx-ring, cx+ring
	y0, y1 := cy-ring, cy+ring
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= g.nx {
			continue
		}
		if y0 >= 0 && y0 < g.ny {
			fn(g.cellIndex(x, y0))
		}
		if y1 >= 0 && y1 < g.ny {
			fn(g.cellIndex(x, y1))
		}
	}
	for y := y0 + 1; y <= y1-1; y++ {
		if y < 0 || y >= g.ny {
			continue
		}
		if x0 >= 0 && x0 < g.nx {
			fn(g.cellIndex(x0, y))
		}
		if x1 >= 0 && x1 < g.nx {
			fn(g.cellIndex(x1, y))
		}
	}
}

// String implements fmt.Stringer with a capacity summary.
func (g *SegmentGrid) String() string {
	return fmt.Sprintf("SegmentGrid{%d segments, %dx%d cells}", len(g.segs), g.nx, g.ny)
}
