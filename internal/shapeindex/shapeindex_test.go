package shapeindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomSegments(rng *rand.Rand, n int, scale float64) []geom.Segment {
	segs := make([]geom.Segment, n)
	for i := range segs {
		a := geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
		d := geom.Pt(rng.NormFloat64(), rng.NormFloat64()).Unit().Scale(scale / 20)
		segs[i] = geom.Seg(a, a.Add(d))
	}
	return segs
}

func bruteNearestSeg(segs []geom.Segment, p geom.Point) (int, float64) {
	best, bd := -1, math.Inf(1)
	for i, s := range segs {
		if d := s.DistToPoint(p); d < bd {
			best, bd = i, d
		}
	}
	return best, bd
}

func TestSegmentGridPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty input")
		}
	}()
	NewSegmentGrid(nil)
}

func TestSegmentGridSingle(t *testing.T) {
	g := NewSegmentGrid([]geom.Segment{geom.Seg(geom.Pt(0, 0), geom.Pt(1, 0))})
	if g.NumSegments() != 1 {
		t.Fatalf("NumSegments = %d", g.NumSegments())
	}
	i, d := g.Nearest(geom.Pt(0.5, 2))
	if i != 0 || !almostEq(d, 2, 1e-12) {
		t.Errorf("Nearest = %d, %v", i, d)
	}
	if !almostEq(g.Dist(geom.Pt(-3, 0)), 3, 1e-12) {
		t.Errorf("Dist = %v", g.Dist(geom.Pt(-3, 0)))
	}
}

func TestSegmentGridMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		segs := randomSegments(rng, 50+rng.Intn(200), 10)
		g := NewSegmentGrid(segs)
		for q := 0; q < 100; q++ {
			// Mix of interior and far-outside query points.
			p := geom.Pt(rng.Float64()*16-3, rng.Float64()*16-3)
			_, gd := g.Nearest(p)
			_, bd := bruteNearestSeg(segs, p)
			if !almostEq(gd, bd, 1e-9*(1+bd)) {
				t.Fatalf("trial %d: grid %v != brute %v at %v", trial, gd, bd, p)
			}
		}
	}
}

func TestSegmentGridPolygonBoundary(t *testing.T) {
	sq := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(0, 4))
	g := NewSegmentGrid(sq.Edges())
	if d := g.Dist(geom.Pt(2, 2)); !almostEq(d, 2, 1e-12) {
		t.Errorf("center dist = %v", d)
	}
	if d := g.Dist(geom.Pt(6, 2)); !almostEq(d, 2, 1e-12) {
		t.Errorf("outside dist = %v", d)
	}
	if d := g.Dist(geom.Pt(2, 0)); !almostEq(d, 0, 1e-12) {
		t.Errorf("boundary dist = %v", d)
	}
}

func TestPointKDEmptyAndSingle(t *testing.T) {
	empty := NewPointKD(nil)
	if i, d := empty.Nearest(geom.Pt(0, 0)); i != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty Nearest = %d, %v", i, d)
	}
	if got := empty.KNearest(geom.Pt(0, 0), 3); got != nil {
		t.Errorf("empty KNearest = %v", got)
	}
	one := NewPointKD([]geom.Point{geom.Pt(1, 1)})
	if i, d := one.Nearest(geom.Pt(4, 5)); i != 0 || !almostEq(d, 5, 1e-12) {
		t.Errorf("single Nearest = %d, %v", i, d)
	}
}

func TestPointKDMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(500)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
		}
		kd := NewPointKD(pts)
		for q := 0; q < 100; q++ {
			p := geom.Pt(rng.NormFloat64()*12, rng.NormFloat64()*12)
			gi, gd := kd.Nearest(p)
			_, bd := bruteNearestPt(pts, p)
			if !almostEq(gd, bd, 1e-9*(1+bd)) {
				t.Fatalf("trial %d: kd %v != brute %v", trial, gd, bd)
			}
			if !almostEq(p.Dist(pts[gi]), gd, 1e-9) {
				t.Fatalf("trial %d: returned id %d inconsistent", trial, gi)
			}
		}
	}
}

func TestPointKDKNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 200
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*10, rng.Float64()*10)
	}
	kd := NewPointKD(pts)
	for q := 0; q < 30; q++ {
		p := geom.Pt(rng.Float64()*10, rng.Float64()*10)
		k := 1 + rng.Intn(12)
		got := kd.KNearest(p, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d of %d", len(got), k)
		}
		want := bruteKNearest(pts, p, k)
		for i := range want {
			// Compare by distance (ties may permute indices).
			if !almostEq(p.Dist(pts[got[i]]), p.Dist(pts[want[i]]), 1e-9) {
				t.Fatalf("k=%d position %d: got d=%v want d=%v", k, i,
					p.Dist(pts[got[i]]), p.Dist(pts[want[i]]))
			}
		}
		// Ordered by increasing distance.
		for i := 1; i < len(got); i++ {
			if p.Dist(pts[got[i-1]]) > p.Dist(pts[got[i]])+1e-12 {
				t.Fatalf("KNearest not sorted at %d", i)
			}
		}
	}
	// k larger than the tree.
	if got := kd.KNearest(geom.Pt(0, 0), n+50); len(got) != n {
		t.Errorf("oversized k returned %d", len(got))
	}
}

func bruteNearestPt(pts []geom.Point, q geom.Point) (int, float64) {
	best, bd := -1, math.Inf(1)
	for i, p := range pts {
		if d := q.Dist(p); d < bd {
			best, bd = i, d
		}
	}
	return best, bd
}

func bruteKNearest(pts []geom.Point, q geom.Point, k int) []int {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return q.Dist2(pts[idx[a]]) < q.Dist2(pts[idx[b]]) })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Property: grid nearest distance equals brute force on random inputs.
func TestQuickSegmentGrid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		segs := randomSegments(rng, 5+rng.Intn(40), 4)
		g := NewSegmentGrid(segs)
		p := geom.Pt(rng.Float64()*8-2, rng.Float64()*8-2)
		_, gd := g.Nearest(p)
		_, bd := bruteNearestSeg(segs, p)
		return almostEq(gd, bd, 1e-9*(1+bd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
