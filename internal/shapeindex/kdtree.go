package shapeindex

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// PointKD is a static 2-d tree over a point set supporting nearest- and
// k-nearest-neighbor queries. It backs the vertex-set variants of the
// similarity measures and the Mehrotra–Gary feature-index baseline.
type PointKD struct {
	pts  []geom.Point // points in tree order
	ids  []int        // original index of each tree point
	axis []int8       // split axis per node (0 = x, 1 = y)
}

// NewPointKD builds a kd-tree over pts. The input slice is not modified.
// An empty input yields a tree whose queries return index -1.
func NewPointKD(pts []geom.Point) *PointKD {
	n := len(pts)
	t := &PointKD{
		pts:  make([]geom.Point, n),
		ids:  make([]int, n),
		axis: make([]int8, n),
	}
	copy(t.pts, pts)
	for i := range t.ids {
		t.ids[i] = i
	}
	t.build(0, n, 0)
	return t
}

// build organizes pts[lo:hi] as a subtree whose root is the median
// element, stored at the median position (an implicit balanced tree).
func (t *PointKD) build(lo, hi int, depth int) {
	if hi-lo <= 1 {
		if hi-lo == 1 {
			t.axis[lo] = int8(depth % 2)
		}
		return
	}
	mid := (lo + hi) / 2
	ax := int8(depth % 2)
	sub := kdSlice{t, lo, hi, ax}
	sort.Sort(sub)
	// sort is fine for a static build; nth-element would only shave constants.
	t.axis[mid] = ax
	t.build(lo, mid, depth+1)
	t.build(mid+1, hi, depth+1)
}

type kdSlice struct {
	t      *PointKD
	lo, hi int
	ax     int8
}

func (s kdSlice) Len() int { return s.hi - s.lo }
func (s kdSlice) Less(i, j int) bool {
	a, b := s.t.pts[s.lo+i], s.t.pts[s.lo+j]
	if s.ax == 0 {
		return a.X < b.X
	}
	return a.Y < b.Y
}
func (s kdSlice) Swap(i, j int) {
	t := s.t
	t.pts[s.lo+i], t.pts[s.lo+j] = t.pts[s.lo+j], t.pts[s.lo+i]
	t.ids[s.lo+i], t.ids[s.lo+j] = t.ids[s.lo+j], t.ids[s.lo+i]
}

// Len returns the number of indexed points.
func (t *PointKD) Len() int { return len(t.pts) }

// Nearest returns the original index of the point closest to q and the
// distance. With an empty tree it returns (-1, +Inf).
func (t *PointKD) Nearest(q geom.Point) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	t.nearest(0, len(t.pts), q, &best, &bestD2)
	if best < 0 {
		return -1, math.Inf(1)
	}
	return best, math.Sqrt(bestD2)
}

func (t *PointKD) nearest(lo, hi int, q geom.Point, best *int, bestD2 *float64) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	if d2 := q.Dist2(p); d2 < *bestD2 {
		*bestD2 = d2
		*best = t.ids[mid]
	}
	var delta float64
	if t.axis[mid] == 0 {
		delta = q.X - p.X
	} else {
		delta = q.Y - p.Y
	}
	near, farLo, farHi := 0, 0, 0
	if delta < 0 {
		near, farLo, farHi = -1, mid+1, hi
	} else {
		near, farLo, farHi = +1, lo, mid
	}
	if near < 0 {
		t.nearest(lo, mid, q, best, bestD2)
	} else {
		t.nearest(mid+1, hi, q, best, bestD2)
	}
	if delta*delta < *bestD2 {
		t.nearest(farLo, farHi, q, best, bestD2)
	}
}

// KNearest returns the original indices of the k points closest to q,
// ordered by increasing distance. Fewer than k are returned when the tree
// is smaller than k.
func (t *PointKD) KNearest(q geom.Point, k int) []int {
	if k <= 0 || len(t.pts) == 0 {
		return nil
	}
	if k > len(t.pts) {
		k = len(t.pts)
	}
	h := &distHeap{}
	t.knearest(0, len(t.pts), q, k, h)
	out := make([]int, len(h.ids))
	// Heap holds the k best with the worst on top; pop into reverse order.
	for i := len(h.ids) - 1; i >= 0; i-- {
		out[i] = h.popMax()
	}
	return out
}

func (t *PointKD) knearest(lo, hi int, q geom.Point, k int, h *distHeap) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	p := t.pts[mid]
	h.offer(t.ids[mid], q.Dist2(p), k)
	var delta float64
	if t.axis[mid] == 0 {
		delta = q.X - p.X
	} else {
		delta = q.Y - p.Y
	}
	if delta < 0 {
		t.knearest(lo, mid, q, k, h)
		if len(h.ids) < k || delta*delta < h.max() {
			t.knearest(mid+1, hi, q, k, h)
		}
	} else {
		t.knearest(mid+1, hi, q, k, h)
		if len(h.ids) < k || delta*delta < h.max() {
			t.knearest(lo, mid, q, k, h)
		}
	}
}

// distHeap is a bounded max-heap of (id, squared distance) pairs.
type distHeap struct {
	ids []int
	d2  []float64
}

func (h *distHeap) max() float64 { return h.d2[0] }

func (h *distHeap) offer(id int, d2 float64, k int) {
	if len(h.ids) < k {
		h.ids = append(h.ids, id)
		h.d2 = append(h.d2, d2)
		h.up(len(h.ids) - 1)
		return
	}
	if d2 >= h.d2[0] {
		return
	}
	h.ids[0], h.d2[0] = id, d2
	h.down(0)
}

func (h *distHeap) popMax() int {
	id := h.ids[0]
	n := len(h.ids) - 1
	h.ids[0], h.d2[0] = h.ids[n], h.d2[n]
	h.ids, h.d2 = h.ids[:n], h.d2[:n]
	if n > 0 {
		h.down(0)
	}
	return id
}

func (h *distHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.d2[p] >= h.d2[i] {
			break
		}
		h.d2[p], h.d2[i] = h.d2[i], h.d2[p]
		h.ids[p], h.ids[i] = h.ids[i], h.ids[p]
		i = p
	}
}

func (h *distHeap) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.d2[l] > h.d2[big] {
			big = l
		}
		if r < n && h.d2[r] > h.d2[big] {
			big = r
		}
		if big == i {
			return
		}
		h.d2[big], h.d2[i] = h.d2[i], h.d2[big]
		h.ids[big], h.ids[i] = h.ids[i], h.ids[big]
		i = big
	}
}
