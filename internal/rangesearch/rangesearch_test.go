package rangesearch

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randomPoints(rng *rand.Rand, n int, scale float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
	}
	return pts
}

func randomRect(rng *rand.Rand, scale float64) geom.Rect {
	a := geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
	b := geom.Pt(rng.Float64()*scale, rng.Float64()*scale)
	return geom.RectOf(a, b)
}

func randomTriangle(rng *rand.Rand, scale float64) geom.Triangle {
	return geom.Tri(
		geom.Pt(rng.Float64()*scale, rng.Float64()*scale),
		geom.Pt(rng.Float64()*scale, rng.Float64()*scale),
		geom.Pt(rng.Float64()*scale, rng.Float64()*scale),
	)
}

func collect(report func(fn func(id int))) []int {
	var out []int
	report(func(id int) { out = append(out, id) })
	sort.Ints(out)
	return out
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewKinds(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if _, ok := New(KindBrute, pts).(*Brute); !ok {
		t.Error("KindBrute")
	}
	if _, ok := New(KindKDTree, pts).(*KDTree); !ok {
		t.Error("KindKDTree")
	}
	if _, ok := New(KindLayered, pts).(*Layered); !ok {
		t.Error("KindLayered")
	}
	if _, ok := New(Kind("bogus"), pts).(*Brute); !ok {
		t.Error("unknown kind should fall back to brute")
	}
}

func TestEmptyBackends(t *testing.T) {
	for _, kind := range []Kind{KindBrute, KindKDTree, KindLayered} {
		b := New(kind, nil)
		if b.Len() != 0 {
			t.Errorf("%s: Len = %d", kind, b.Len())
		}
		r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
		if b.CountRect(r) != 0 {
			t.Errorf("%s: CountRect on empty", kind)
		}
		if b.CountTriangle(geom.Tri(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1))) != 0 {
			t.Errorf("%s: CountTriangle on empty", kind)
		}
		b.ReportRect(r, func(int) { t.Errorf("%s: reported from empty", kind) })
	}
}

func TestBackendsSmallFixed(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(1, 1),
		geom.Pt(0.5, 0.5), geom.Pt(2, 2), geom.Pt(-1, -1),
	}
	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)}
	tri := geom.Tri(geom.Pt(-0.1, -0.1), geom.Pt(1.2, -0.1), geom.Pt(-0.1, 1.2))
	for _, kind := range []Kind{KindBrute, KindKDTree, KindLayered} {
		b := New(kind, pts)
		if got := b.CountRect(r); got != 5 {
			t.Errorf("%s: CountRect = %d, want 5", kind, got)
		}
		// Triangle with vertices (-.1,-.1),(1.2,-.1),(-.1,1.2): contains
		// (0,0),(1,0),(0,1),(0.5,0.5) but not (1,1).
		if got := b.CountTriangle(tri); got != 4 {
			t.Errorf("%s: CountTriangle = %d, want 4", kind, got)
		}
	}
}

func TestBackendsAgreeOnRects(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(400), 10)
		oracle := NewBrute(pts)
		kd := NewKDTree(pts)
		lt := NewLayered(pts)
		for q := 0; q < 60; q++ {
			r := randomRect(rng, 10)
			want := oracle.CountRect(r)
			if got := kd.CountRect(r); got != want {
				t.Fatalf("kd CountRect = %d, want %d", got, want)
			}
			if got := lt.CountRect(r); got != want {
				t.Fatalf("layered CountRect = %d, want %d", got, want)
			}
			wantIDs := collect(func(fn func(int)) { oracle.ReportRect(r, fn) })
			if got := collect(func(fn func(int)) { kd.ReportRect(r, fn) }); !sameIDs(got, wantIDs) {
				t.Fatalf("kd ReportRect mismatch")
			}
			if got := collect(func(fn func(int)) { lt.ReportRect(r, fn) }); !sameIDs(got, wantIDs) {
				t.Fatalf("layered ReportRect mismatch: got %v want %v", got, wantIDs)
			}
		}
	}
}

func TestBackendsAgreeOnTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		pts := randomPoints(rng, 1+rng.Intn(400), 10)
		oracle := NewBrute(pts)
		kd := NewKDTree(pts)
		lt := NewLayered(pts)
		for q := 0; q < 60; q++ {
			tri := randomTriangle(rng, 10)
			want := oracle.CountTriangle(tri)
			if got := kd.CountTriangle(tri); got != want {
				t.Fatalf("kd CountTriangle = %d, want %d (tri %v)", got, want, tri)
			}
			if got := lt.CountTriangle(tri); got != want {
				t.Fatalf("layered CountTriangle = %d, want %d", got, want)
			}
			wantIDs := collect(func(fn func(int)) { oracle.ReportTriangle(tri, fn) })
			if got := collect(func(fn func(int)) { kd.ReportTriangle(tri, fn) }); !sameIDs(got, wantIDs) {
				t.Fatalf("kd ReportTriangle mismatch")
			}
			if got := collect(func(fn func(int)) { lt.ReportTriangle(tri, fn) }); !sameIDs(got, wantIDs) {
				t.Fatalf("layered ReportTriangle mismatch")
			}
		}
	}
}

func TestDegenerateTriangleQueries(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(1, 1)}
	flat := geom.Tri(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)) // zero area
	want := NewBrute(pts).CountTriangle(flat)
	for _, kind := range []Kind{KindKDTree, KindLayered} {
		if got := New(kind, pts).CountTriangle(flat); got != want {
			t.Errorf("%s: degenerate CountTriangle = %d, want %d", kind, got, want)
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([]geom.Point, 32)
	for i := range pts {
		pts[i] = geom.Pt(1, 1) // all identical
	}
	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2, 2)}
	miss := geom.Rect{Min: geom.Pt(3, 3), Max: geom.Pt(4, 4)}
	for _, kind := range []Kind{KindBrute, KindKDTree, KindLayered} {
		b := New(kind, pts)
		if got := b.CountRect(r); got != 32 {
			t.Errorf("%s: duplicates CountRect = %d", kind, got)
		}
		if got := b.CountRect(miss); got != 0 {
			t.Errorf("%s: miss CountRect = %d", kind, got)
		}
	}
}

// Property: all three backends agree on random configurations.
func TestQuickBackendsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(60), 5)
		tri := randomTriangle(rng, 5)
		r := randomRect(rng, 5)
		oracle := NewBrute(pts)
		kd := NewKDTree(pts)
		lt := NewLayered(pts)
		return kd.CountTriangle(tri) == oracle.CountTriangle(tri) &&
			lt.CountTriangle(tri) == oracle.CountTriangle(tri) &&
			kd.CountRect(r) == oracle.CountRect(r) &&
			lt.CountRect(r) == oracle.CountRect(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// The fractional-cascading bridges must be structurally consistent: cntL
// is monotone and ends at the left child's length.
func TestLayeredBridgeInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	lt := NewLayered(randomPoints(rng, 300, 10))
	for ni := range lt.nodes {
		nd := &lt.nodes[ni]
		if len(nd.cntL) != len(nd.ys)+1 {
			t.Fatalf("node %d: cntL length %d for %d ys", ni, len(nd.cntL), len(nd.ys))
		}
		for p := 1; p < len(nd.cntL); p++ {
			if nd.cntL[p] < nd.cntL[p-1] || nd.cntL[p] > nd.cntL[p-1]+1 {
				t.Fatalf("node %d: cntL not a unit-step monotone sequence at %d", ni, p)
			}
		}
		if nd.left >= 0 {
			l := &lt.nodes[nd.left]
			if int(nd.cntL[len(nd.cntL)-1]) != len(l.ys) {
				t.Fatalf("node %d: final cntL %d != left size %d", ni, nd.cntL[len(nd.cntL)-1], len(l.ys))
			}
			// y-array sorted.
			for p := 1; p < len(nd.ys); p++ {
				if nd.ys[p-1] > nd.ys[p] {
					t.Fatalf("node %d: ys unsorted", ni)
				}
			}
		}
	}
}
