package rangesearch

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// KDTree is an implicit, balanced 2-d tree over a static point set. Every
// node knows the exact bounding box of its subtree, so a triangle query
// prunes disjoint subtrees, counts fully-contained subtrees in O(1), and
// only tests individual points near the triangle boundary.
type KDTree struct {
	pts    []geom.Point // points in tree order (median layout)
	ids    []int32      // original index per tree position
	bounds []geom.Rect  // exact subtree bounding box per tree position
}

// NewKDTree builds the tree in O(n log n). The input slice is not
// modified.
func NewKDTree(pts []geom.Point) *KDTree {
	n := len(pts)
	t := &KDTree{
		pts:    make([]geom.Point, n),
		ids:    make([]int32, n),
		bounds: make([]geom.Rect, n),
	}
	copy(t.pts, pts)
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	t.build(0, n, 0)
	return t
}

func (t *KDTree) build(lo, hi, depth int) geom.Rect {
	if lo >= hi {
		return geom.EmptyRect()
	}
	mid := (lo + hi) / 2
	byX := depth%2 == 0
	sort.Sort(&kdSort{t, lo, hi, byX})
	b := geom.RectOf(t.pts[mid])
	b = b.Union(t.build(lo, mid, depth+1))
	b = b.Union(t.build(mid+1, hi, depth+1))
	t.bounds[mid] = b
	return b
}

type kdSort struct {
	t      *KDTree
	lo, hi int
	byX    bool
}

func (s *kdSort) Len() int { return s.hi - s.lo }
func (s *kdSort) Less(i, j int) bool {
	a, b := s.t.pts[s.lo+i], s.t.pts[s.lo+j]
	if s.byX {
		return a.X < b.X
	}
	return a.Y < b.Y
}
func (s *kdSort) Swap(i, j int) {
	t := s.t
	t.pts[s.lo+i], t.pts[s.lo+j] = t.pts[s.lo+j], t.pts[s.lo+i]
	t.ids[s.lo+i], t.ids[s.lo+j] = t.ids[s.lo+j], t.ids[s.lo+i]
}

// Len implements Backend.
func (t *KDTree) Len() int { return len(t.pts) }

// CountRect implements Backend.
func (t *KDTree) CountRect(r geom.Rect) int { return t.countRect(0, len(t.pts), r) }

func (t *KDTree) countRect(lo, hi int, r geom.Rect) int {
	if lo >= hi {
		return 0
	}
	mid := (lo + hi) / 2
	b := t.bounds[mid]
	if !r.Intersects(b) {
		return 0
	}
	if r.ContainsRect(b) {
		return hi - lo
	}
	n := 0
	if r.Contains(t.pts[mid]) {
		n++
	}
	return n + t.countRect(lo, mid, r) + t.countRect(mid+1, hi, r)
}

// ReportRect implements Backend.
func (t *KDTree) ReportRect(r geom.Rect, fn func(id int)) {
	t.reportRect(0, len(t.pts), r, fn)
}

func (t *KDTree) reportRect(lo, hi int, r geom.Rect, fn func(id int)) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	b := t.bounds[mid]
	if !r.Intersects(b) {
		return
	}
	if r.ContainsRect(b) {
		for i := lo; i < hi; i++ {
			fn(int(t.ids[i]))
		}
		return
	}
	if r.Contains(t.pts[mid]) {
		fn(int(t.ids[mid]))
	}
	t.reportRect(lo, mid, r, fn)
	t.reportRect(mid+1, hi, r, fn)
}

// CountTriangle implements Backend. The triangle is prepared once (edge
// vectors, separating-axis intervals) and the query form is shared by the
// whole traversal; see geom.TriQuery.
func (t *KDTree) CountTriangle(tr geom.Triangle) int {
	q := tr.Prepare()
	return t.countTri(0, len(t.pts), &q)
}

func (t *KDTree) countTri(lo, hi int, q *geom.TriQuery) int {
	if lo >= hi {
		return 0
	}
	mid := (lo + hi) / 2
	b := t.bounds[mid]
	if !q.IntersectsRect(b) {
		return 0
	}
	if q.ContainsRect(b) {
		return hi - lo
	}
	n := 0
	if q.Contains(t.pts[mid]) {
		n++
	}
	return n + t.countTri(lo, mid, q) + t.countTri(mid+1, hi, q)
}

// ReportTriangle implements Backend.
func (t *KDTree) ReportTriangle(tr geom.Triangle, fn func(id int)) {
	q := tr.Prepare()
	t.reportTri(0, len(t.pts), &q, fn)
}

func (t *KDTree) reportTri(lo, hi int, q *geom.TriQuery, fn func(id int)) {
	if lo >= hi {
		return
	}
	mid := (lo + hi) / 2
	b := t.bounds[mid]
	if !q.IntersectsRect(b) {
		return
	}
	if q.ContainsRect(b) {
		for i := lo; i < hi; i++ {
			fn(int(t.ids[i]))
		}
		return
	}
	if q.Contains(t.pts[mid]) {
		fn(int(t.ids[mid]))
	}
	t.reportTri(lo, mid, q, fn)
	t.reportTri(mid+1, hi, q, fn)
}

// KDTreeParts is the tree's flattened state (median layout), exposed so
// a persistence layer can write the arrays verbatim and rebuild — or
// alias — them without re-sorting the point set. The slices are the
// tree's live internals; callers must not mutate them.
type KDTreeParts struct {
	Pts    []geom.Point
	IDs    []int32
	Bounds []geom.Rect
}

// Parts returns the tree's flattened state.
func (t *KDTree) Parts() KDTreeParts {
	return KDTreeParts{Pts: t.pts, IDs: t.ids, Bounds: t.bounds}
}

// KDTreeFromParts adopts previously flattened tree state. Only shapes
// are checked; element values are trusted because the GSIR3 loader
// verifies section checksums before assembly.
func KDTreeFromParts(p KDTreeParts) (*KDTree, error) {
	if len(p.IDs) != len(p.Pts) || len(p.Bounds) != len(p.Pts) {
		return nil, fmt.Errorf("rangesearch: kd-tree parts with mismatched arrays (%d pts, %d ids, %d bounds)",
			len(p.Pts), len(p.IDs), len(p.Bounds))
	}
	return &KDTree{pts: p.Pts, ids: p.IDs, bounds: p.Bounds}, nil
}
