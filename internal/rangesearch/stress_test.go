package rangesearch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// Degenerate coordinate layouts that historically break tree structures:
// all points on one vertical line, one horizontal line, a grid with many
// duplicate coordinates, and a diagonal.
func degenerateLayouts(rng *rand.Rand) map[string][]geom.Point {
	n := 200
	vert := make([]geom.Point, n)
	horiz := make([]geom.Point, n)
	grid := make([]geom.Point, 0, n)
	diag := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		vert[i] = geom.Pt(5, rng.Float64()*10)
		horiz[i] = geom.Pt(rng.Float64()*10, 5)
		diag[i] = geom.Pt(float64(i)*0.05, float64(i)*0.05)
	}
	for x := 0; x < 14; x++ {
		for y := 0; y < 14; y++ {
			grid = append(grid, geom.Pt(float64(x), float64(y)))
		}
	}
	return map[string][]geom.Point{
		"vertical-line":   vert,
		"horizontal-line": horiz,
		"integer-grid":    grid,
		"diagonal":        diag,
	}
}

func TestDegenerateLayouts(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for name, pts := range degenerateLayouts(rng) {
		oracle := NewBrute(pts)
		kd := NewKDTree(pts)
		lt := NewLayered(pts)
		for q := 0; q < 40; q++ {
			r := randomRect(rng, 12)
			tri := randomTriangle(rng, 12)
			if kd.CountRect(r) != oracle.CountRect(r) {
				t.Fatalf("%s: kd CountRect mismatch", name)
			}
			if lt.CountRect(r) != oracle.CountRect(r) {
				t.Fatalf("%s: layered CountRect mismatch", name)
			}
			if kd.CountTriangle(tri) != oracle.CountTriangle(tri) {
				t.Fatalf("%s: kd CountTriangle mismatch", name)
			}
			if lt.CountTriangle(tri) != oracle.CountTriangle(tri) {
				t.Fatalf("%s: layered CountTriangle mismatch", name)
			}
		}
	}
}

// Property: count always equals the length of the corresponding report.
func TestQuickCountEqualsReport(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(150), 6)
		for _, kind := range []Kind{KindKDTree, KindLayered} {
			b := New(kind, pts)
			r := randomRect(rng, 6)
			got := 0
			b.ReportRect(r, func(int) { got++ })
			if got != b.CountRect(r) {
				return false
			}
			tri := randomTriangle(rng, 6)
			got = 0
			b.ReportTriangle(tri, func(int) { got++ })
			if got != b.CountTriangle(tri) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: queries never report an id twice and never an out-of-range
// id.
func TestQuickReportedIDsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(rng, 1+rng.Intn(120), 5)
		tri := randomTriangle(rng, 5)
		for _, kind := range []Kind{KindBrute, KindKDTree, KindLayered} {
			b := New(kind, pts)
			seen := make(map[int]bool)
			ok := true
			b.ReportTriangle(tri, func(id int) {
				if id < 0 || id >= len(pts) || seen[id] {
					ok = false
				}
				seen[id] = true
			})
			if !ok {
				return false
			}
			// Reported points are truly inside.
			for id := range seen {
				if !tri.Contains(pts[id]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Whole-plane query returns everything.
func TestWholePlaneQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 500, 10)
	all := geom.Rect{Min: geom.Pt(-1, -1), Max: geom.Pt(11, 11)}
	bigTri := geom.Tri(geom.Pt(-100, -100), geom.Pt(200, -100), geom.Pt(-100, 200))
	for _, kind := range []Kind{KindBrute, KindKDTree, KindLayered} {
		b := New(kind, pts)
		if got := b.CountRect(all); got != 500 {
			t.Errorf("%s: whole-plane rect = %d", kind, got)
		}
		if got := b.CountTriangle(bigTri); got != 500 {
			t.Errorf("%s: whole-plane triangle = %d", kind, got)
		}
	}
}
