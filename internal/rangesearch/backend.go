// Package rangesearch implements the simplex (triangle) range counting and
// reporting structures that drive the ε-envelope fattening algorithm
// (§2.5 of the paper). Three interchangeable backends are provided:
//
//   - Brute: a linear scan, used as correctness oracle and ablation
//     baseline.
//   - KDTree: a kd-tree whose internal nodes carry exact subtree bounding
//     boxes; triangle queries prune disjoint subtrees and count
//     fully-contained subtrees in O(1), giving the classical
//     O(√n + k) simplex query bound in the plane.
//   - Layered: a layered range tree with fractional cascading — one
//     binary search at the root, bridge pointers thereafter — answering
//     orthogonal range queries in O(log n + k); triangle queries filter
//     the reported candidates through an exact point-in-triangle test.
//
// The paper assumes Matoušek-style structures with O(log³n + k) triangle
// queries and near-quadratic space; the backends here provide the same
// interface with practical sub-linear query growth (see DESIGN.md for the
// substitution note).
package rangesearch

import "repro/internal/geom"

// Backend answers rectangle and triangle range queries over a static set
// of points identified by their position in the original input slice.
type Backend interface {
	// Len returns the number of indexed points.
	Len() int
	// CountRect returns how many points lie in the closed rectangle r.
	CountRect(r geom.Rect) int
	// ReportRect calls fn with the id of every point inside r.
	ReportRect(r geom.Rect, fn func(id int))
	// CountTriangle returns how many points lie in the closed triangle t.
	CountTriangle(t geom.Triangle) int
	// ReportTriangle calls fn with the id of every point inside t.
	ReportTriangle(t geom.Triangle, fn func(id int))
}

// Kind names a backend implementation, for configuration and ablation.
type Kind string

// The available backend kinds.
const (
	KindBrute   Kind = "brute"
	KindKDTree  Kind = "kdtree"
	KindLayered Kind = "layered"
)

// New builds a backend of the given kind over pts.
func New(kind Kind, pts []geom.Point) Backend {
	switch kind {
	case KindKDTree:
		return NewKDTree(pts)
	case KindLayered:
		return NewLayered(pts)
	default:
		return NewBrute(pts)
	}
}

// Brute is the linear-scan reference backend.
type Brute struct {
	pts []geom.Point
}

// NewBrute copies pts into a scan backend.
func NewBrute(pts []geom.Point) *Brute {
	return &Brute{pts: append([]geom.Point(nil), pts...)}
}

// Len implements Backend.
func (b *Brute) Len() int { return len(b.pts) }

// CountRect implements Backend.
func (b *Brute) CountRect(r geom.Rect) int {
	n := 0
	for _, p := range b.pts {
		if r.Contains(p) {
			n++
		}
	}
	return n
}

// ReportRect implements Backend.
func (b *Brute) ReportRect(r geom.Rect, fn func(id int)) {
	for i, p := range b.pts {
		if r.Contains(p) {
			fn(i)
		}
	}
}

// CountTriangle implements Backend.
func (b *Brute) CountTriangle(t geom.Triangle) int {
	n := 0
	for _, p := range b.pts {
		if t.Contains(p) {
			n++
		}
	}
	return n
}

// ReportTriangle implements Backend.
func (b *Brute) ReportTriangle(t geom.Triangle, fn func(id int)) {
	for i, p := range b.pts {
		if t.Contains(p) {
			fn(i)
		}
	}
}

// KindOf reports which Kind built a backend, or "" for an unknown
// (custom) implementation. Persistence uses it to record the backend so
// a reload can reconstruct the same structure.
func KindOf(b Backend) Kind {
	switch b.(type) {
	case *KDTree:
		return KindKDTree
	case *Layered:
		return KindLayered
	case *Brute:
		return KindBrute
	}
	return ""
}
