package rangesearch

import (
	"sort"

	"repro/internal/geom"
)

// Layered is a layered range tree with fractional cascading.
//
// The primary tree is a balanced BST over the points sorted by x
// (implicit: a node covers a contiguous slice of the x-sorted order and
// splits at its midpoint). Every node stores the y-sorted sequence of the
// points in its subtree together with *bridge counters*: cntL[p] is the
// number of elements among the first p entries of the node's y-array that
// belong to the left child. A query therefore performs its two binary
// searches (lower bound of y₁, upper bound of y₂) once, at the root, and
// then walks down following the counters in O(1) per node — the classic
// fractional-cascading trick that turns O(log²n) orthogonal queries into
// O(log n + k).
//
// Triangle queries report the points in the triangle's bounding rectangle
// and filter them through the exact point-in-triangle predicate.
type Layered struct {
	pts   []geom.Point // original points (by original id)
	nodes []ltNode
	root  int32
}

type ltNode struct {
	left, right int32 // child node indices; -1 for none
	minX, maxX  float64
	ys          []float64 // y-sorted values of the subtree's points
	ids         []int32   // original point id per y-array position
	cntL        []int32   // cntL[p] = #left-child elements among ys[:p]; len = len(ys)+1
}

// NewLayered builds the structure in O(n log n) time and O(n log n) space.
func NewLayered(pts []geom.Point) *Layered {
	t := &Layered{pts: append([]geom.Point(nil), pts...)}
	n := len(pts)
	if n == 0 {
		t.root = -1
		return t
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	t.nodes = make([]ltNode, 0, 2*n)
	t.root = t.build(order)
	return t
}

// build constructs the subtree over the x-ordered ids and returns its node
// index. Each node's y-array is produced by merging its children's
// y-arrays, which also yields the bridge counters for free.
func (t *Layered) build(order []int32) int32 {
	idx := int32(len(t.nodes))
	t.nodes = append(t.nodes, ltNode{left: -1, right: -1})

	n := len(order)
	nd := ltNode{left: -1, right: -1}
	nd.minX = t.pts[order[0]].X
	nd.maxX = t.pts[order[n-1]].X

	if n == 1 {
		nd.ys = []float64{t.pts[order[0]].Y}
		nd.ids = []int32{order[0]}
		nd.cntL = []int32{0, 0}
		t.nodes[idx] = nd
		return idx
	}

	mid := n / 2
	nd.left = t.build(order[:mid])
	nd.right = t.build(order[mid:])

	l, r := &t.nodes[nd.left], &t.nodes[nd.right]
	total := len(l.ys) + len(r.ys)
	nd.ys = make([]float64, 0, total)
	nd.ids = make([]int32, 0, total)
	nd.cntL = make([]int32, 0, total+1)
	li, ri := 0, 0
	nd.cntL = append(nd.cntL, 0)
	for li < len(l.ys) || ri < len(r.ys) {
		takeLeft := ri >= len(r.ys) || (li < len(l.ys) && l.ys[li] <= r.ys[ri])
		if takeLeft {
			nd.ys = append(nd.ys, l.ys[li])
			nd.ids = append(nd.ids, l.ids[li])
			li++
		} else {
			nd.ys = append(nd.ys, r.ys[ri])
			nd.ids = append(nd.ids, r.ids[ri])
			ri++
		}
		nd.cntL = append(nd.cntL, int32(li))
	}
	t.nodes[idx] = nd
	return idx
}

// Len implements Backend.
func (t *Layered) Len() int { return len(t.pts) }

// lowerBound returns the first index p with ys[p] >= v.
func lowerBound(ys []float64, v float64) int32 {
	lo, hi := 0, len(ys)
	for lo < hi {
		mid := (lo + hi) / 2
		if ys[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// upperBound returns the first index p with ys[p] > v.
func upperBound(ys []float64, v float64) int32 {
	lo, hi := 0, len(ys)
	for lo < hi {
		mid := (lo + hi) / 2
		if ys[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}

// query walks the tree once; emit is called with (node, p1, p2) for every
// canonical node, where [p1, p2) is the y-range slice within that node.
func (t *Layered) query(r geom.Rect, emit func(nd *ltNode, p1, p2 int32)) {
	if t.root < 0 || r.IsEmpty() {
		return
	}
	root := &t.nodes[t.root]
	p1 := lowerBound(root.ys, r.Min.Y)
	p2 := upperBound(root.ys, r.Max.Y)
	t.descend(t.root, r, p1, p2, emit)
}

func (t *Layered) descend(ni int32, r geom.Rect, p1, p2 int32, emit func(nd *ltNode, p1, p2 int32)) {
	if ni < 0 || p1 >= p2 {
		return
	}
	nd := &t.nodes[ni]
	if nd.maxX < r.Min.X || nd.minX > r.Max.X {
		return
	}
	if r.Min.X <= nd.minX && nd.maxX <= r.Max.X {
		emit(nd, p1, p2)
		return
	}
	if nd.left < 0 { // single point not fully inside on x
		p := t.pts[nd.ids[0]]
		if r.Contains(p) {
			emit(nd, 0, 1)
		}
		return
	}
	// Cascade the y-pointers into both children using the bridge counters.
	l1, l2 := nd.cntL[p1], nd.cntL[p2]
	r1, r2 := p1-l1, p2-l2
	t.descend(nd.left, r, l1, l2, emit)
	t.descend(nd.right, r, r1, r2, emit)
}

// CountRect implements Backend.
func (t *Layered) CountRect(r geom.Rect) int {
	n := 0
	t.query(r, func(_ *ltNode, p1, p2 int32) { n += int(p2 - p1) })
	return n
}

// ReportRect implements Backend.
func (t *Layered) ReportRect(r geom.Rect, fn func(id int)) {
	t.query(r, func(nd *ltNode, p1, p2 int32) {
		for i := p1; i < p2; i++ {
			fn(int(nd.ids[i]))
		}
	})
}

// CountTriangle implements Backend.
func (t *Layered) CountTriangle(tr geom.Triangle) int {
	n := 0
	t.query(tr.Bounds(), func(nd *ltNode, p1, p2 int32) {
		for i := p1; i < p2; i++ {
			if tr.Contains(t.pts[nd.ids[i]]) {
				n++
			}
		}
	})
	return n
}

// ReportTriangle implements Backend.
func (t *Layered) ReportTriangle(tr geom.Triangle, fn func(id int)) {
	t.query(tr.Bounds(), func(nd *ltNode, p1, p2 int32) {
		for i := p1; i < p2; i++ {
			if id := nd.ids[i]; tr.Contains(t.pts[id]) {
				fn(int(id))
			}
		}
	})
}
