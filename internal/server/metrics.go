package server

import (
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// endpointMetrics is one endpoint's counters and latency distribution.
// Everything is atomics: the hot path never takes a lock to record.
type endpointMetrics struct {
	requests atomic.Int64 // admitted requests (any outcome)
	shed     atomic.Int64 // turned away by admission control (429/503)
	status4x atomic.Int64 // 4xx answered (excluding sheds)
	status5x atomic.Int64 // 5xx answered (excluding sheds)
	latency  histogram    // admitted requests only

	// Query-result cache dispositions (only advanced when a cache is
	// configured; set counts live on the cache itself).
	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheCoalesced atomic.Int64

	// blockReads accumulates the engine's block-access accounting
	// (geosir.Stats.BlockReads) over the searches this endpoint actually
	// ran — cache hits and coalesced waits touch no storage and are not
	// charged.
	blockReads atomic.Int64
}

// EndpointSnapshot is the exported view of one endpoint's metrics.
type EndpointSnapshot struct {
	Requests int64   `json:"requests"`
	Shed     int64   `json:"shed"`
	Status4x int64   `json:"status_4xx"`
	Status5x int64   `json:"status_5xx"`
	MeanMs   float64 `json:"mean_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`

	CacheHits      int64 `json:"cache_hits,omitempty"`
	CacheMisses    int64 `json:"cache_misses,omitempty"`
	CacheCoalesced int64 `json:"cache_coalesced,omitempty"`

	BlockReads int64 `json:"block_reads,omitempty"`
}

// metrics aggregates the server's observability state.
type metrics struct {
	start     time.Time
	mu        sync.Mutex // guards the endpoints map shape (writes only at registration)
	endpoints map[string]*endpointMetrics

	reloads     atomic.Int64
	reloadFails atomic.Int64

	// ANN candidate-tier counters, cumulative over all queries the tier
	// participated in (see geosir.Stats).
	annQueries    atomic.Int64
	annProbes     atomic.Int64
	annCandidates atomic.Int64

	// Acknowledged live-ingestion writes served over HTTP.
	inserts atomic.Int64
	deletes atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics)}
}

// endpoint returns (registering on first use) the named endpoint's
// metrics. Registration happens at route-construction time, before any
// traffic, so handler-time lookups hit the fast read path.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em, ok := m.endpoints[name]
	if !ok {
		em = &endpointMetrics{}
		m.endpoints[name] = em
	}
	return em
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (em *endpointMetrics) snapshot() EndpointSnapshot {
	return EndpointSnapshot{
		Requests:       em.requests.Load(),
		Shed:           em.shed.Load(),
		Status4x:       em.status4x.Load(),
		Status5x:       em.status5x.Load(),
		MeanMs:         ms(em.latency.mean()),
		P50Ms:          ms(em.latency.quantile(0.50)),
		P95Ms:          ms(em.latency.quantile(0.95)),
		P99Ms:          ms(em.latency.quantile(0.99)),
		CacheHits:      em.cacheHits.Load(),
		CacheMisses:    em.cacheMisses.Load(),
		CacheCoalesced: em.cacheCoalesced.Load(),
		BlockReads:     em.blockReads.Load(),
	}
}

// snapshotEndpoints returns a name-sorted stable view for rendering.
func (m *metrics) snapshotEndpoints() map[string]EndpointSnapshot {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	ems := make(map[string]*endpointMetrics, len(names))
	for _, n := range names {
		ems[n] = m.endpoints[n]
	}
	m.mu.Unlock()
	sort.Strings(names)
	out := make(map[string]EndpointSnapshot, len(names))
	for _, n := range names {
		out[n] = ems[n].snapshot()
	}
	return out
}

// publishExpvar exposes fn under the process-global expvar namespace so
// standard tooling reading /debug/vars sees the serving metrics. expvar
// forbids re-publishing a name, so only the first server in a process
// (the daemon case — tests construct many) claims it.
var publishOnce sync.Once

func publishExpvar(name string, fn func() any) {
	publishOnce.Do(func() {
		if expvar.Get(name) == nil {
			expvar.Publish(name, expvar.Func(fn))
		}
	})
}
