package server

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	geosir "repro"
	"repro/internal/mmap"
)

// TestLoadModeMmapServing proves the serving path end to end in mmap
// mode: a GSIR3 snapshot loaded with Config.LoadMode = LoadModeMmap
// answers identically to the heap-loaded server, and /statz reports the
// storage section as mapped.
func TestLoadModeMmapServing(t *testing.T) {
	if !mmap.Supported() || !mmap.CanCast() {
		t.Skip("mmap serving not supported on this platform/build")
	}
	path := filepath.Join(t.TempDir(), "base.gsir3")
	if err := testEngine(t).SaveFileAs(path, geosir.FormatGSIR3); err != nil {
		t.Fatalf("SaveFileAs: %v", err)
	}

	heapSrv := New(Config{})
	if _, err := heapSrv.LoadSnapshot(path); err != nil {
		t.Fatalf("heap load: %v", err)
	}
	mmapSrv := New(Config{LoadMode: geosir.LoadModeMmap})
	if _, err := mmapSrv.LoadSnapshot(path); err != nil {
		t.Fatalf("mmap load: %v", err)
	}

	hs, ms := heapSrv.Statz(), mmapSrv.Statz()
	if hs.Storage == nil || hs.Storage.LoadMode != "heap" || hs.Storage.MappedBytes != 0 {
		t.Errorf("heap storage section = %+v", hs.Storage)
	}
	if ms.Storage == nil || ms.Storage.LoadMode != "mmap" || ms.Storage.MappedBytes == 0 {
		t.Errorf("mmap storage section = %+v", ms.Storage)
	}

	// Identical queries against both servers must produce identical
	// responses (matches AND stats, block accounting included).
	ctx := context.Background()
	for _, req := range []geosir.SearchRequest{
		{Query: geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(12, 0), geosir.Pt(12, 12), geosir.Pt(0, 12)), K: 3, Mode: geosir.ModeAuto},
		{Query: geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(12, 0), geosir.Pt(12, 12), geosir.Pt(0, 12)), K: 2, Mode: geosir.ModeApproximate},
	} {
		want, werr := heapSrv.Serving().Search(ctx, req)
		got, gerr := mmapSrv.Serving().Search(ctx, req)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("mode=%v: errors differ: %v vs %v", req.Mode, werr, gerr)
		}
		if werr != nil {
			continue
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Errorf("mode=%v: responses differ\nheap: %s\nmmap: %s", req.Mode, wb, gb)
		}
	}
}
