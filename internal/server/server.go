// Package server is geosird's HTTP serving layer: it puts a frozen
// GeoSIR engine behind a JSON API and owns the production concerns the
// library deliberately does not — admission control (bounded in-flight
// plus a bounded, deadlined wait queue; overload sheds with 429/503 and
// Retry-After instead of queueing unboundedly), per-request timeouts
// threaded through context into the engine's fan-out paths, zero-downtime
// snapshot hot-swap behind an atomic engine pointer, and live metrics
// (per-endpoint counters and latency quantiles) on /metrics and /statz.
//
// Endpoints:
//
//	POST /v1/search        {"shape": {...}, "k": 5, "mode": "auto"}  (unified; sketch mode takes "shapes")
//	POST /v1/similar       {"shape": {...}, "k": 5}
//	POST /v1/approximate   {"shape": {...}, "k": 5}
//	POST /v1/sketch        {"shapes": [{...}, ...], "k": 5}
//	POST /v1/topological   {"query": "similar(a) AND ...", "binds": {"a": {...}}}
//	POST /v1/images        {"id": 7, "shapes": [{...}, ...]}  (live insert; Config.Ingest)
//	DELETE /v1/images/{id}                                    (live delete)
//	POST /admin/reload     {"path": "other.gsir"}  (empty body reloads the current snapshot)
//	POST /admin/compact    (fold the live delta into a frozen shard)
//	GET  /healthz /readyz /metrics /statz
//
// The server is engine-kind agnostic: every query flows through the
// unified geosir.Searcher interface, so a snapshot may be a single
// engine (a .gsir2 file) or a ShardedEngine (a snapshot directory with
// per-shard files); /statz reports per-shard rows for the latter.
// Engine failures map to HTTP statuses via the geosir sentinel errors
// (errors.Is), not string matching.
//
// Engines are immutable after Freeze, so a request loads the engine
// pointer once at admission and keeps answering from that engine even if
// a reload swaps the pointer mid-request: no request ever observes a
// half-loaded engine, and reloads never fail in-flight traffic.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	geosir "repro"
	"repro/internal/qcache"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxInFlight bounds concurrently executing queries
	// (default 4×GOMAXPROCS).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an in-flight slot (default
	// 4×MaxInFlight). Arrivals beyond it are shed immediately with 429.
	MaxQueue int
	// QueueWait is how long a queued query may wait for a slot before
	// being shed with 503 (default 100ms).
	QueueWait time.Duration
	// RequestTimeout bounds one query's execution; it becomes the
	// request context's deadline (default 10s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
	// CacheBytes bounds the query-result cache (internal/qcache); 0
	// disables caching entirely. The cache holds marshaled
	// SearchResponses keyed by canonical query fingerprint + snapshot
	// epoch, and coalesces concurrent identical requests onto one
	// engine search.
	CacheBytes int64
	// CacheEntries bounds the cache entry count (0 = derived from
	// CacheBytes).
	CacheEntries int
	// AccessLog, when non-nil, receives one JSON line per request.
	AccessLog io.Writer
	// Ingest, when non-nil, enables live ingestion on sharded snapshot
	// directories the server installs: /v1/images accepts writes, the
	// delta WAL lives next to the shard files, and /admin/compact (or
	// the threshold) folds the delta. File snapshots stay read-only.
	Ingest *IngestOptions
	// DefaultExec is the execution policy applied to requests that do
	// not set one ("exec" in the /v1/search body). The zero value is
	// geosir.ExecAuto: fan out at idle, go sequential under load.
	DefaultExec geosir.ExecPolicy
	// LoadMode selects how snapshots install: the zero value
	// (geosir.LoadModeHeap) decodes into the heap; geosir.LoadModeMmap
	// maps GSIR3 files and serves the hot sections straight off the page
	// cache, falling back to a heap load per file when a snapshot
	// predates GSIR3 or the platform cannot alias mapped memory.
	LoadMode geosir.LoadMode
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxInFlight
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 100 * time.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Serving is what the server needs from an engine: the unified Search
// surface, the topological query entry point, and the size accessors
// the status endpoints report. Both geosir.Engine and
// geosir.ShardedEngine satisfy it.
type Serving interface {
	geosir.Searcher
	Query(src string, binds map[string]geosir.Shape) ([]int, string, error)
	NumImages() int
	NumShapes() int
	NumEntries() int
	Frozen() bool
	SchedStats() geosir.SchedStats
	StorageStats() geosir.StorageStats
}

// engineState is what the atomic pointer swaps: the frozen engine plus
// the provenance the status endpoints report.
type engineState struct {
	serving  Serving
	source   string
	info     geosir.SnapshotInfo
	loadedAt time.Time
	// epoch is the snapshot generation this engine was installed under.
	// It is part of every cache fingerprint, so a request that loaded
	// this state can only ever see cache entries computed against this
	// exact engine — a hot-swap bumps the epoch and thereby makes every
	// older entry unreachable atomically with the pointer store.
	epoch uint64
	// shards holds per-shard status rows when serving a ShardedEngine
	// (nil for a single engine).
	shards []ShardStatz
}

// Server serves a frozen engine over HTTP. Create with New, install an
// engine with LoadSnapshot or SetEngine, and mount Handler.
type Server struct {
	cfg     Config
	state   atomic.Pointer[engineState]
	limiter *limiter
	metrics *metrics

	// cache is the query-result cache (nil when Config.CacheBytes is 0;
	// every qcache method is a safe no-op on nil). epochCounter feeds
	// engineState.epoch on every successful engine install.
	cache        *qcache.Cache
	epochCounter atomic.Uint64

	// topoMu serializes topological queries: Engine.Query updates the
	// shared selectivity estimator and must not race with itself. The
	// similarity endpoints stay fully concurrent.
	topoMu sync.Mutex
	// reloadMu serializes reloads; traffic keeps flowing off the old
	// engine while the new one loads outside any request path.
	reloadMu sync.Mutex

	accessMu sync.Mutex // serializes access-log writes

	mux http.Handler
}

// New creates a server with no engine installed: /healthz answers 200,
// /readyz answers 503, and query endpoints answer 503 until LoadSnapshot
// or SetEngine succeeds.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		limiter: newLimiter(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait),
		metrics: newMetrics(),
		cache:   qcache.New(qcache.Config{MaxBytes: cfg.CacheBytes, MaxEntries: cfg.CacheEntries}),
	}
	s.mux = s.routes()
	publishExpvar("geosird", func() any { return s.Statz() })
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports whether an engine is installed and queryable.
func (s *Server) Ready() bool { return s.state.Load() != nil }

// Engine returns the currently serving single engine (nil before the
// first load, and nil when a ShardedEngine is serving — use Serving for
// kind-agnostic access). The returned engine is frozen and safe for
// concurrent reads.
func (s *Server) Engine() *geosir.Engine {
	if st := s.state.Load(); st != nil {
		if eng, ok := st.serving.(*geosir.Engine); ok {
			return eng
		}
	}
	return nil
}

// Serving returns whatever engine kind currently serves (nil before the
// first load).
func (s *Server) Serving() Serving {
	if st := s.state.Load(); st != nil {
		return st.serving
	}
	return nil
}

// SetEngine installs an already-built frozen engine (tests, demo bases).
func (s *Server) SetEngine(eng *geosir.Engine, source string) error {
	if eng == nil {
		return errors.New("server: engine must be non-nil and frozen")
	}
	return s.SetServing(eng, source)
}

// SetServing installs any frozen engine kind.
func (s *Server) SetServing(sv Serving, source string) error {
	if sv == nil || !sv.Frozen() {
		return errors.New("server: engine must be non-nil and frozen")
	}
	st := &engineState{serving: sv, source: source, loadedAt: time.Now()}
	if se, ok := sv.(*geosir.ShardedEngine); ok {
		st.shards = shardStatz(se, nil)
	}
	s.installState(st)
	return nil
}

// installState atomically swaps the serving engine in under a fresh
// snapshot epoch, then purges the cache. The order matters for nothing
// but memory: old-epoch entries are unreachable from new traffic the
// instant the pointer store lands (the epoch is part of every
// fingerprint), so the purge is hygiene; a failed load never reaches
// here and therefore leaves both the old engine and its still-valid
// cache intact.
func (s *Server) installState(st *engineState) {
	st.epoch = s.epochCounter.Add(1)
	old := s.state.Swap(st)
	s.cache.Purge()
	if old != nil && old.serving != st.serving {
		// The outgoing engine must release its WAL handle: the incoming
		// one may have (re)opened the same log, and two appenders on one
		// log would interleave. In-flight queries on the old engine are
		// unaffected — only its mutations are fenced off.
		closeIngest(old)
	}
}

// LoadSnapshot loads a snapshot and atomically swaps it in. A file path
// loads a single engine strictly (any damage fails the load and leaves
// the serving engine untouched); a directory path loads a sharded
// snapshot, where damage degrades — a corrupt image or a dead shard
// file costs that much data, the rest serves, and /statz reports what
// was dropped. The old engine keeps serving every request admitted
// before the swap; the swap itself is a single pointer store. Only one
// load runs at a time.
func (s *Server) LoadSnapshot(path string) (geosir.SnapshotInfo, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if s.cfg.Ingest != nil {
		// Quiesce writes before the new engine replays the directory's
		// WAL: an append landing after the replay read it would be
		// invisible to the incoming engine. Queries keep flowing; writes
		// answer 409 until the reload completes (or until the next
		// successful reload, if this one fails).
		closeIngest(s.state.Load())
	}
	st, err := s.loadState(path)
	if err != nil {
		s.metrics.reloadFails.Add(1)
		return geosir.SnapshotInfo{}, err
	}
	s.installState(st)
	s.metrics.reloads.Add(1)
	return st.info, nil
}

func (s *Server) loadState(path string) (*engineState, error) {
	if fi, err := os.Stat(path); err == nil && fi.IsDir() {
		se, rec, err := geosir.LoadShardedDirMode(path, s.cfg.LoadMode)
		if err != nil {
			return nil, fmt.Errorf("server: loading sharded snapshot: %w", err)
		}
		if !se.Frozen() || se.NumShapes() == 0 {
			return nil, fmt.Errorf("server: snapshot %s holds no shapes", path)
		}
		if s.cfg.Ingest != nil {
			if err := se.EnableIngest(geosir.IngestConfig{
				Dir:              path,
				CompactThreshold: s.cfg.Ingest.CompactThreshold,
				NoSync:           s.cfg.Ingest.NoSync,
			}); err != nil {
				return nil, fmt.Errorf("server: enabling ingestion: %w", err)
			}
		}
		return &engineState{
			serving: se,
			source:  path,
			info: geosir.SnapshotInfo{
				Format:     geosir.FormatGSIR2,
				FormatName: shardedFormatName,
				Options:    se.Options(),
				Images:     se.NumImages(),
			},
			loadedAt: time.Now(),
			shards:   shardStatz(se, rec),
		}, nil
	}
	info, err := geosir.PeekFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot header: %w", err)
	}
	var eng *geosir.Engine
	if s.cfg.LoadMode == geosir.LoadModeMmap {
		// Serve the sections in place when the snapshot and platform
		// allow it; anything else (GSIR2 file, no mmap support) falls
		// back to the strict heap load below.
		eng, err = geosir.LoadFileMmap(path)
	}
	if eng == nil {
		eng, err = geosir.LoadFile(path)
	}
	if err != nil {
		return nil, fmt.Errorf("server: loading snapshot: %w", err)
	}
	if !eng.Frozen() {
		// An empty snapshot loads as an unfrozen engine; it cannot serve.
		return nil, fmt.Errorf("server: snapshot %s holds no shapes", path)
	}
	return &engineState{serving: eng, source: path, info: info, loadedAt: time.Now()}, nil
}

// shardedFormatName is the FormatName /statz and reload responses
// report for sharded snapshot directories.
const shardedFormatName = "GSIR2-SHARDED"

// shardStatz builds the per-shard status rows, folding in the load-time
// recovery report when the engine came from a snapshot directory.
func shardStatz(se *geosir.ShardedEngine, rec *geosir.ShardRecovery) []ShardStatz {
	out := make([]ShardStatz, se.NumShards())
	for i := range out {
		sh := se.Shard(i)
		out[i] = ShardStatz{
			Shard:  i,
			Live:   sh.Frozen() && sh.NumShapes() > 0,
			Images: sh.NumImages(),
			Shapes: sh.NumShapes(),
		}
		if out[i].Live {
			out[i].Entries = sh.NumEntries()
		}
		if rec != nil && i < len(rec.Shards) {
			fr := rec.Shards[i]
			out[i].Dropped = fr.Dropped
			if fr.Err != nil {
				out[i].Error = fr.Err.Error()
			}
			if fr.Recovery != nil {
				out[i].ImagesDropped = len(fr.Recovery.Dropped) + fr.Recovery.ImagesUnread
			}
		}
	}
	return out
}

// apiError carries the HTTP status a handler-level failure maps to.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// unprocessable marks a syntactically valid request whose content the
// engine rejects (non-simple shape, k ≤ 0, malformed query language).
func unprocessable(err error) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/admin/reload", s.instrument("admin_reload", s.handleReload))
	mux.HandleFunc("/admin/compact", s.instrument("admin_compact", s.handleCompact))
	mux.HandleFunc("/v1/search", s.query("search", s.handleSearch))
	mux.HandleFunc("/v1/similar", s.query("similar", s.handleSimilar))
	mux.HandleFunc("/v1/approximate", s.query("approximate", s.handleApproximate))
	mux.HandleFunc("/v1/sketch", s.query("sketch", s.handleSketch))
	mux.HandleFunc("/v1/topological", s.query("topological", s.handleTopological))
	mux.HandleFunc("POST /v1/images", s.mutate("images_insert", s.handleInsertImage))
	mux.HandleFunc("DELETE /v1/images/{id}", s.mutate("images_delete", s.handleDeleteImage))
	// Pre-register the metric rows so /statz lists every endpoint from
	// the first scrape, not only the ones that saw traffic.
	for _, name := range []string{"search", "similar", "approximate", "sketch", "topological",
		"images_insert", "images_delete", "admin_reload", "admin_compact"} {
		s.metrics.endpoint(name)
	}
	return mux
}

// statusRecorder captures the response status for logs and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) accessLog(r *http.Request, status, bytes int, d time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(map[string]any{
		"ts":     time.Now().UTC().Format(time.RFC3339Nano),
		"method": r.Method,
		"path":   r.URL.Path,
		"status": status,
		"ms":     ms(d),
		"bytes":  bytes,
		"remote": r.RemoteAddr,
	})
	if err != nil {
		return
	}
	s.accessMu.Lock()
	_, _ = s.cfg.AccessLog.Write(append(line, '\n'))
	s.accessMu.Unlock()
}

// instrument wraps a handler with metrics and access logging (no
// admission control — used for admin endpoints).
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	em := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h(rec, r)
		d := time.Since(start)
		em.requests.Add(1)
		em.latency.observe(d)
		countStatus(em, rec.status)
		s.accessLog(r, rec.status, rec.bytes, d)
	}
}

func countStatus(em *endpointMetrics, status int) {
	switch {
	case status >= 500:
		em.status5x.Add(1)
	case status >= 400:
		em.status4x.Add(1)
	}
}

// queryHandler is one endpoint's decode-and-dispatch step. It receives
// the engine state loaded once at admission (engine + snapshot epoch —
// the pair the cache fingerprint must be consistent with) and reports
// how the cache participated, so the pipeline can record it.
type queryHandler func(ctx context.Context, st *engineState, body []byte) (any, qcache.Disposition, error)

// query wraps a query handler with the full serving pipeline: method
// check, readiness, admission control, per-request deadline, body
// decoding limits, error mapping, metrics, and access logging. The
// engine pointer is loaded exactly once per request.
func (s *Server) query(name string, h queryHandler) http.HandlerFunc {
	em := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		s.serveQuery(rec, r, em, h)
		s.accessLog(r, rec.status, rec.bytes, time.Since(start))
	}
}

func (s *Server) serveQuery(w *statusRecorder, r *http.Request, em *endpointMetrics, h queryHandler) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	st := s.state.Load()
	if st == nil {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "no snapshot loaded")
		return
	}
	if err := s.limiter.acquire(r.Context()); err != nil {
		var shed *shedError
		if errors.As(err, &shed) {
			em.shed.Add(1)
			w.Header().Set("Retry-After", retryAfter(shed.retryAfter))
			s.writeError(w, shed.status, shed.reason)
			return
		}
		// Client went away while queued; nothing useful to send.
		s.writeError(w, 499, "client closed request")
		return
	}
	defer s.limiter.release()
	em.requests.Add(1)
	qstart := time.Now()
	defer func() { em.latency.observe(time.Since(qstart)) }()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		em.status4x.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	resp, disp, err := h(ctx, st, body)
	if s.cache != nil {
		// The disposition is a response *header*, never a body field: the
		// correctness contract is that cached and uncached serving produce
		// byte-identical bodies, so the diagnostic must ride outside them.
		w.Header().Set(cacheHeader, disp.String())
		switch disp {
		case qcache.Hit:
			em.cacheHits.Add(1)
		case qcache.Miss:
			em.cacheMisses.Add(1)
		case qcache.Coalesced:
			em.cacheCoalesced.Add(1)
		}
	}
	if err != nil {
		status := http.StatusInternalServerError
		var ae *apiError
		switch {
		case errors.As(err, &ae):
			status = ae.status
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = 499
		// The geosir sentinels carry the client/server distinction:
		// argument problems (bad k, empty query, frozen-state misuse) are
		// the request's fault, an unfrozen engine is a serving-side
		// sequencing bug.
		case errors.Is(err, geosir.ErrBadK),
			errors.Is(err, geosir.ErrEmptyQuery),
			errors.Is(err, geosir.ErrFrozen):
			status = http.StatusUnprocessableEntity
		case errors.Is(err, geosir.ErrNotFrozen):
			status = http.StatusServiceUnavailable
		}
		countStatus(em, status)
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// --- query handlers -------------------------------------------------

type similarRequest struct {
	Shape WireShape `json:"shape"`
	K     int       `json:"k"`
}

type similarResponse struct {
	Matches []MatchJSON `json:"matches"`
	Stats   StatsJSON   `json:"stats"`
}

func decodeStrict(body []byte, v any) error {
	if len(body) == 0 {
		return badRequest("empty body")
	}
	if err := json.Unmarshal(body, v); err != nil {
		return badRequest("malformed JSON: %v", err)
	}
	return nil
}

// cacheHeader carries the cache disposition of a query response
// (hit / miss / coalesced / bypass). It exists so clients and the load
// generator can measure hit rates without the body ever differing
// between cached and uncached serving.
const cacheHeader = "X-Geosir-Cache"

// errUncacheable marks a search response that could not be marshaled
// for storage (a non-finite float somewhere); the response is served,
// just never cached.
var errUncacheable = errors.New("server: response not cacheable")

// runSearch funnels every similarity endpoint through the unified
// Search API — through the query-result cache when one is configured —
// translating the engine's sentinel failures to statuses in
// serveQuery's error switch, and folds the response's ANN and block
// accounting into the cumulative /statz counters. Both track engine
// work actually performed, so cache hits and coalesced waits (which run
// no engine search of their own) do not advance them.
func (s *Server) runSearch(ctx context.Context, endpoint string, st *engineState, req geosir.SearchRequest) (*geosir.SearchResponse, qcache.Disposition, error) {
	resp, disp, err := s.searchCached(ctx, st, req)
	if err != nil {
		return nil, disp, err
	}
	if disp != qcache.Hit && disp != qcache.Coalesced {
		if resp.Stats.UsedANN {
			s.metrics.annQueries.Add(1)
			s.metrics.annProbes.Add(int64(resp.Stats.ANNProbes))
			s.metrics.annCandidates.Add(int64(resp.Stats.ANNCandidates))
		}
		if resp.Stats.BlockReads > 0 {
			s.metrics.endpoint(endpoint).blockReads.Add(int64(resp.Stats.BlockReads))
		}
	}
	return resp, disp, nil
}

// searchCached answers a search through the result cache. The cached
// value is the engine response marshaled once; hits, coalesced waiters,
// AND the miss that computed it all decode the same stored bytes, so
// every disposition renders identical wire bytes by construction.
//
// Caching keys on the canonical query fingerprint bound to this
// request's cache epoch (cacheEpoch: install epoch composed with the
// engine's mutation epoch): the (engine, epoch) pair was loaded
// atomically at admission, so neither a hot-swap nor a live write
// landing mid-request can pair this engine's results with another
// epoch's entries.
// The scheduling knobs (exec policy, max-workers cap, and the legacy
// workers alias) are deliberately outside the fingerprint — they
// schedule work, they never change results (PR 4/5 and the PR 9 exec
// equivalence suite).
func (s *Server) searchCached(ctx context.Context, st *engineState, req geosir.SearchRequest) (*geosir.SearchResponse, qcache.Disposition, error) {
	if s.cache == nil {
		resp, err := st.serving.Search(ctx, req)
		return resp, qcache.Bypass, err
	}
	fp, ok := qcache.SearchFingerprint(req, cacheEpoch(st))
	if !ok {
		// Unfingerprintable (degenerate shape, bad mode): let the engine
		// produce its usual error or result, uncached.
		s.cache.Bypassed()
		resp, err := st.serving.Search(ctx, req)
		return resp, qcache.Bypass, err
	}
	var uncacheable *geosir.SearchResponse
	body, disp, err := s.cache.Do(ctx, fp, func() ([]byte, error) {
		// Detach the computation from this requester's cancellation: any
		// number of coalesced waiters may be depending on it, so one
		// client hanging up must not abort the shared search. The
		// configured request timeout still bounds it.
		dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.cfg.RequestTimeout)
		defer cancel()
		resp, err := st.serving.Search(dctx, req)
		if err != nil {
			return nil, err
		}
		blob, err := json.Marshal(resp)
		if err != nil {
			uncacheable = resp
			return nil, errUncacheable
		}
		return blob, nil
	})
	if err != nil {
		if errors.Is(err, errUncacheable) {
			if uncacheable != nil {
				return uncacheable, qcache.Bypass, nil
			}
			// A coalesced waiter saw the leader's uncacheable marker but
			// holds no response object; run the search itself.
			resp, serr := st.serving.Search(ctx, req)
			return resp, qcache.Bypass, serr
		}
		return nil, disp, err
	}
	resp := new(geosir.SearchResponse)
	if err := json.Unmarshal(body, resp); err != nil {
		return nil, disp, fmt.Errorf("server: decoding cached response: %w", err)
	}
	return resp, disp, nil
}

func (s *Server) handleSimilar(ctx context.Context, st *engineState, body []byte) (any, qcache.Disposition, error) {
	var req similarRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, qcache.Bypass, err
	}
	q, err := req.Shape.Shape()
	if err != nil {
		return nil, qcache.Bypass, unprocessable(err)
	}
	resp, disp, err := s.runSearch(ctx, "similar", st, geosir.SearchRequest{Query: q, K: req.K, Mode: geosir.ModeAuto, Exec: s.cfg.DefaultExec})
	if err != nil {
		return nil, disp, err
	}
	return similarResponse{Matches: matchesJSON(resp.Matches), Stats: statsJSON(resp.Stats)}, disp, nil
}

func (s *Server) handleApproximate(ctx context.Context, st *engineState, body []byte) (any, qcache.Disposition, error) {
	var req similarRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, qcache.Bypass, err
	}
	q, err := req.Shape.Shape()
	if err != nil {
		return nil, qcache.Bypass, unprocessable(err)
	}
	resp, disp, err := s.runSearch(ctx, "approximate", st, geosir.SearchRequest{Query: q, K: req.K, Mode: geosir.ModeApproximate, Exec: s.cfg.DefaultExec})
	if err != nil {
		return nil, disp, err
	}
	return similarResponse{Matches: matchesJSON(resp.Matches), Stats: statsJSON(resp.Stats)}, disp, nil
}

// searchRequest is the unified /v1/search wire request: one shape (or,
// for sketch mode, several), k, an optional mode name, an optional
// execution policy ("auto", "fanout", "sequential") with a worker cap,
// and an optional ANN tier mode ("off", "verify", "approx"). The
// legacy "workers" field is still accepted: a positive value (with
// "exec"/"max_workers" unset) behaves as it always did, forcing a
// fan-out capped at that width.
type searchRequest struct {
	Shape         *WireShape  `json:"shape,omitempty"`
	Shapes        []WireShape `json:"shapes,omitempty"`
	K             int         `json:"k"`
	Mode          string      `json:"mode,omitempty"`
	Exec          string      `json:"exec,omitempty"`
	MaxWorkersCap int         `json:"max_workers,omitempty"`
	LegacyWorkers int         `json:"workers,omitempty"`
	Ann           string      `json:"ann,omitempty"`
}

type searchResponse struct {
	Mode          string            `json:"mode"`
	Matches       []MatchJSON       `json:"matches,omitempty"`
	SketchMatches []SketchMatchJSON `json:"sketch_matches,omitempty"`
	Stats         StatsJSON         `json:"stats"`
}

func (s *Server) handleSearch(ctx context.Context, st *engineState, body []byte) (any, qcache.Disposition, error) {
	var req searchRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, qcache.Bypass, err
	}
	mode, err := geosir.ParseMode(req.Mode)
	if err != nil {
		return nil, qcache.Bypass, unprocessable(err)
	}
	ann, err := geosir.ParseAnnMode(req.Ann)
	if err != nil {
		return nil, qcache.Bypass, unprocessable(err)
	}
	greq := geosir.SearchRequest{K: req.K, Mode: mode, Ann: ann, MaxWorkers: req.MaxWorkersCap}
	switch {
	case req.Exec != "":
		exec, err := geosir.ParseExecPolicy(req.Exec)
		if err != nil {
			return nil, qcache.Bypass, unprocessable(err)
		}
		greq.Exec = exec
	case req.LegacyWorkers > 0 && req.MaxWorkersCap <= 0:
		// The pre-ExecPolicy contract: an explicit positive "workers"
		// forced a fan-out of that width.
		greq.Exec, greq.MaxWorkers = geosir.ExecFanout, req.LegacyWorkers
	default:
		greq.Exec = s.cfg.DefaultExec
	}
	if req.Shape != nil {
		q, err := req.Shape.Shape()
		if err != nil {
			return nil, qcache.Bypass, unprocessable(err)
		}
		greq.Query = q
	}
	if len(req.Shapes) > 0 {
		shapes, err := shapesOf(req.Shapes)
		if err != nil {
			return nil, qcache.Bypass, unprocessable(err)
		}
		greq.Sketch = shapes
	}
	resp, disp, err := s.runSearch(ctx, "search", st, greq)
	if err != nil {
		return nil, disp, err
	}
	out := searchResponse{Mode: mode.String(), Stats: statsJSON(resp.Stats)}
	if resp.Matches != nil {
		out.Matches = matchesJSON(resp.Matches)
	}
	if resp.SketchMatches != nil {
		out.SketchMatches = sketchMatchesJSON(resp.SketchMatches)
	}
	return out, disp, nil
}

type sketchRequest struct {
	Shapes []WireShape `json:"shapes"`
	K      int         `json:"k"`
	Ann    string      `json:"ann,omitempty"`
}

type sketchResponse struct {
	Matches []SketchMatchJSON `json:"matches"`
}

func (s *Server) handleSketch(ctx context.Context, st *engineState, body []byte) (any, qcache.Disposition, error) {
	var req sketchRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, qcache.Bypass, err
	}
	shapes, err := shapesOf(req.Shapes)
	if err != nil {
		return nil, qcache.Bypass, unprocessable(err)
	}
	ann, err := geosir.ParseAnnMode(req.Ann)
	if err != nil {
		return nil, qcache.Bypass, unprocessable(err)
	}
	resp, disp, err := s.runSearch(ctx, "sketch", st, geosir.SearchRequest{Sketch: shapes, K: req.K, Mode: geosir.ModeSketch, Ann: ann, Exec: s.cfg.DefaultExec})
	if err != nil {
		return nil, disp, err
	}
	return sketchResponse{Matches: sketchMatchesJSON(resp.SketchMatches)}, disp, nil
}

type topologicalRequest struct {
	Query string               `json:"query"`
	Binds map[string]WireShape `json:"binds"`
}

type topologicalResponse struct {
	Images []int  `json:"images"`
	Plan   string `json:"plan"`
}

// handleTopological never caches: Engine.Query feeds the shared
// selectivity estimator, so repeated identical queries are not pure
// reads, and the endpoint is a small fraction of traffic.
func (s *Server) handleTopological(ctx context.Context, st *engineState, body []byte) (any, qcache.Disposition, error) {
	var req topologicalRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, qcache.Bypass, err
	}
	if req.Query == "" {
		return nil, qcache.Bypass, unprocessable(errors.New("empty query"))
	}
	binds := make(map[string]geosir.Shape, len(req.Binds))
	for name, ws := range req.Binds {
		sh, err := ws.Shape()
		if err != nil {
			return nil, qcache.Bypass, unprocessable(fmt.Errorf("bind %q: %w", name, err))
		}
		binds[name] = sh
	}
	if err := ctx.Err(); err != nil {
		return nil, qcache.Bypass, err
	}
	// Engine.Query mutates the shared selectivity estimator; serialize.
	s.topoMu.Lock()
	ids, plan, err := st.serving.Query(req.Query, binds)
	s.topoMu.Unlock()
	if err != nil {
		// Parse and bind errors are the client's; the engine has no other
		// failure mode here on a frozen base.
		return nil, qcache.Bypass, unprocessable(err)
	}
	if ids == nil {
		ids = []int{}
	}
	return topologicalResponse{Images: ids, Plan: plan}, qcache.Bypass, nil
}

// --- admin & status -------------------------------------------------

type reloadRequest struct {
	Path string `json:"path"`
}

type reloadResponse struct {
	Source string  `json:"source"`
	Format string  `json:"format"`
	Images int     `json:"images"`
	Shapes int     `json:"shapes"`
	Shards int     `json:"shards,omitempty"`
	LoadMs float64 `json:"load_ms"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<16))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var req reloadRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Sprintf("malformed JSON: %v", err))
			return
		}
	}
	path := req.Path
	if path == "" {
		if st := s.state.Load(); st != nil {
			path = st.source
		}
	}
	if path == "" {
		s.writeError(w, http.StatusBadRequest, "no path given and no snapshot previously loaded")
		return
	}
	start := time.Now()
	info, err := s.LoadSnapshot(path)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	st := s.state.Load()
	s.writeJSON(w, http.StatusOK, reloadResponse{
		Source: path,
		Format: info.FormatName,
		Images: st.serving.NumImages(),
		Shapes: st.serving.NumShapes(),
		Shards: len(st.shards),
		LoadMs: ms(time.Since(start)),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no snapshot loaded")
		return
	}
	fmt.Fprintln(w, "ready")
}

// ShardStatz is one shard's row in /statz when a ShardedEngine serves.
type ShardStatz struct {
	Shard   int  `json:"shard"`
	Live    bool `json:"live"`
	Images  int  `json:"images"`
	Shapes  int  `json:"shapes"`
	Entries int  `json:"entries,omitempty"`
	// Dropped marks a shard whose snapshot file was unreadable or
	// inconsistent at load time; its images are missing from results.
	Dropped bool   `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
	// ImagesDropped counts images lost to per-file recovery inside an
	// otherwise live shard.
	ImagesDropped int `json:"images_dropped,omitempty"`
}

// SnapshotStatz describes the serving snapshot in /statz.
type SnapshotStatz struct {
	Source    string    `json:"source"`
	Format    string    `json:"format,omitempty"`
	SizeBytes int64     `json:"size_bytes,omitempty"`
	LoadedAt  time.Time `json:"loaded_at"`
	Images    int       `json:"images"`
	Shapes    int       `json:"shapes"`
	Entries   int       `json:"entries"`
	// Shards holds per-shard rows when serving a sharded snapshot.
	Shards []ShardStatz `json:"shards,omitempty"`
}

// ANNStatz is the cumulative ANN candidate-tier accounting in /statz:
// how many queries the tier participated in, and the total LSH bucket
// probes and emitted candidates across them.
type ANNStatz struct {
	Queries    int64 `json:"queries"`
	Probes     int64 `json:"probes"`
	Candidates int64 `json:"candidates"`
}

// SchedStatz is the engine execution scheduler's section of /statz:
// the engine-side in-flight gauge and how many request plans chose
// fan-out versus sequential execution since the engine was installed.
type SchedStatz struct {
	InFlight        int64  `json:"in_flight"`
	PlansFanout     uint64 `json:"plans_fanout"`
	PlansSequential uint64 `json:"plans_sequential"`
}

// StatzSchema is the version of the /statz document shape, bumped
// whenever a field is renamed, removed, or changes meaning (additions
// alone do not bump it). Schema 2 added this field itself and the
// "sched" section. Schema 3 promoted block accounting from the
// extstore simulation to the serving path: the "storage" section
// (load mode, mapped/resident bytes) and per-endpoint "block_reads".
// The full schema is documented in DESIGN.md §4.13.
const StatzSchema = 3

// StorageStatz is the serving snapshot's storage section of /statz:
// how the engine's frozen sections are held (decoded into the heap, or
// mmap'd and served off the page cache) and how much is mapped versus
// memory-resident right now.
type StorageStatz struct {
	LoadMode    string `json:"load_mode"`
	MappedBytes int64  `json:"mapped_bytes"`
	// ResidentEstimate is the page-cache residency of the mapped
	// sections sampled at scrape time (mincore); -1 when the platform
	// cannot report it. Always 0 for heap-loaded engines.
	ResidentEstimate int64 `json:"resident_estimate"`
}

// Statz is the full status document served on /statz (and exported via
// expvar on /metrics).
type Statz struct {
	Schema      int     `json:"schema"`
	UptimeS     float64 `json:"uptime_s"`
	Ready       bool    `json:"ready"`
	InFlight    int     `json:"in_flight"`
	QueueDepth  int64   `json:"queue_depth"`
	MaxInFlight int     `json:"max_in_flight"`
	MaxQueue    int     `json:"max_queue"`
	Reloads     int64   `json:"reloads"`
	ReloadFails int64   `json:"reload_fails"`
	// Sched reports the serving engine's execution scheduler (absent
	// until an engine is installed).
	Sched *SchedStatz `json:"sched,omitempty"`
	ANN   *ANNStatz   `json:"ann,omitempty"`
	// Cache reports the query-result cache (absent when caching is off);
	// Epoch is the serving snapshot's cache generation.
	Cache *qcache.Stats `json:"cache,omitempty"`
	Epoch uint64        `json:"epoch,omitempty"`
	// Ingest reports the live-ingestion subsystem (absent when the
	// serving engine is read-only): delta sizes, WAL length, compaction
	// counters. Inserts/Deletes below count the writes served over HTTP.
	Ingest  *geosir.IngestStats `json:"ingest,omitempty"`
	Inserts int64               `json:"inserts,omitempty"`
	Deletes int64               `json:"deletes,omitempty"`
	// Storage reports how the serving snapshot is held in memory
	// (absent until an engine is installed).
	Storage   *StorageStatz               `json:"storage,omitempty"`
	Snapshot  *SnapshotStatz              `json:"snapshot,omitempty"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
}

// Statz assembles the live status document.
func (s *Server) Statz() Statz {
	out := Statz{
		Schema:      StatzSchema,
		UptimeS:     time.Since(s.metrics.start).Seconds(),
		Ready:       s.Ready(),
		InFlight:    s.limiter.inFlight(),
		QueueDepth:  s.limiter.queueDepth(),
		MaxInFlight: s.cfg.MaxInFlight,
		MaxQueue:    s.cfg.MaxQueue,
		Reloads:     s.metrics.reloads.Load(),
		ReloadFails: s.metrics.reloadFails.Load(),
		Endpoints:   s.metrics.snapshotEndpoints(),
	}
	if q := s.metrics.annQueries.Load(); q > 0 {
		out.ANN = &ANNStatz{
			Queries:    q,
			Probes:     s.metrics.annProbes.Load(),
			Candidates: s.metrics.annCandidates.Load(),
		}
	}
	if s.cache != nil {
		cs := s.cache.Snapshot()
		out.Cache = &cs
	}
	out.Inserts = s.metrics.inserts.Load()
	out.Deletes = s.metrics.deletes.Load()
	if st := s.state.Load(); st != nil {
		out.Epoch = st.epoch
		ss := st.serving.SchedStats()
		out.Sched = &SchedStatz{
			InFlight:        ss.InFlight,
			PlansFanout:     ss.PlansFanout,
			PlansSequential: ss.PlansSequential,
		}
		out.Ingest = ingestStatz(st)
		ts := st.serving.StorageStats()
		out.Storage = &StorageStatz{
			LoadMode:         ts.LoadMode,
			MappedBytes:      ts.MappedBytes,
			ResidentEstimate: ts.ResidentBytes,
		}
		out.Snapshot = &SnapshotStatz{
			Source:    st.source,
			Format:    st.info.FormatName,
			SizeBytes: st.info.Size,
			LoadedAt:  st.loadedAt,
			Images:    st.serving.NumImages(),
			Shapes:    st.serving.NumShapes(),
			Entries:   st.serving.NumEntries(),
			Shards:    st.shards,
		}
	}
	return out
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Statz())
}

// handleMetrics renders the expvar-style flat variable map: the serving
// metrics under "geosird" plus the standard process variables expvar
// publishes globally (cmdline, memstats).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n")
	blob, err := json.Marshal(s.Statz())
	if err != nil {
		blob = []byte("{}")
	}
	fmt.Fprintf(w, "%q: %s", "geosird", blob)
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	if blob, err := json.Marshal(struct {
		Alloc      uint64 `json:"alloc"`
		TotalAlloc uint64 `json:"total_alloc"`
		Sys        uint64 `json:"sys"`
		HeapAlloc  uint64 `json:"heap_alloc"`
		NumGC      uint32 `json:"num_gc"`
		Goroutines int    `json:"goroutines"`
	}{mem.Alloc, mem.TotalAlloc, mem.Sys, mem.HeapAlloc, mem.NumGC, runtime.NumGoroutine()}); err == nil {
		fmt.Fprintf(w, ",\n%q: %s", "process", blob)
	}
	fmt.Fprintf(w, "\n}\n")
}
