package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	geosir "repro"
)

// testSharded builds the same base as testEngine, partitioned.
func testSharded(t *testing.T, shards int) *geosir.ShardedEngine {
	t.Helper()
	se := geosir.NewSharded(geosir.DefaultOptions(), shards)
	images := [][]geosir.Shape{
		{sq(0, 0, 20), tri(5, 5, 3)},
		{sq(0, 0, 10), sq(8, 8, 6)},
		{tri(0, 0, 4)},
		{lsh(0, 0, 2)},
		{sq(0, 0, 20), lsh(3, 3, 1.5)},
	}
	for id, shapes := range images {
		if err := se.AddImage(id, shapes); err != nil {
			t.Fatalf("AddImage(%d): %v", id, err)
		}
	}
	if err := se.Freeze(); err != nil {
		t.Fatal(err)
	}
	return se
}

func newShardedTestServer(t *testing.T, shards int) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{})
	if err := s.SetServing(testSharded(t, shards), "(sharded-test)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestShardedServesAllEndpoints drives every query endpoint against a
// sharded engine and checks the answers equal the single-engine
// server's, wire byte for wire byte.
func TestShardedServesAllEndpoints(t *testing.T) {
	_, single := newTestServer(t, Config{})
	_, sharded := newShardedTestServer(t, 3)

	for _, tc := range []struct {
		path string
		body any
	}{
		{"/v1/similar", map[string]any{"shape": wireSquare(), "k": 3}},
		{"/v1/approximate", map[string]any{"shape": wireSquare(), "k": 3}},
		{"/v1/sketch", map[string]any{"shapes": []WireShape{wireSquare(), wireL()}, "k": 3}},
		{"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "mode": "exact"}},
		{"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "mode": "auto"}},
		{"/v1/search", map[string]any{"shapes": []WireShape{wireSquare(), wireL()}, "k": 2, "mode": "sketch"}},
		// The execution policy schedules work; it must never change the
		// wire answer. "workers" is the deprecated alias for a forced
		// fan-out of that width.
		{"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "mode": "exact", "exec": "sequential"}},
		{"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "mode": "exact", "exec": "fanout", "max_workers": 2}},
		{"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "mode": "exact", "workers": 2}},
		{"/v1/topological", map[string]any{"query": "similar(a)", "binds": map[string]WireShape{"a": wireSquare()}}},
	} {
		respS, bodyS := post(t, single.URL+tc.path, tc.body)
		respP, bodyP := post(t, sharded.URL+tc.path, tc.body)
		if respS.StatusCode != http.StatusOK || respP.StatusCode != http.StatusOK {
			t.Fatalf("%s: statuses %d vs %d (%s / %s)", tc.path, respS.StatusCode, respP.StatusCode, bodyS, bodyP)
		}
		var a, b map[string]any
		if err := json.Unmarshal(bodyS, &a); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(bodyP, &b); err != nil {
			t.Fatal(err)
		}
		// Stats and plan renderings legitimately differ across
		// partitionings (per-shard iteration counts and selectivity
		// estimates); results must not.
		delete(a, "stats")
		delete(b, "stats")
		delete(a, "plan")
		delete(b, "plan")
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: single and sharded servers disagree\nsingle:  %s\nsharded: %s", tc.path, bodyS, bodyP)
		}
	}
}

// TestSentinelStatusMapping pins the errors.Is → HTTP status mapping on
// both engine kinds: bad k and empty sketches are the client's fault
// (422), regardless of which engine is serving.
func TestSentinelStatusMapping(t *testing.T) {
	_, single := newTestServer(t, Config{})
	_, sharded := newShardedTestServer(t, 2)
	for _, base := range []string{single.URL, sharded.URL} {
		for _, tc := range []struct {
			path string
			body any
		}{
			{"/v1/search", map[string]any{"shape": wireSquare(), "k": 0}},
			{"/v1/search", map[string]any{"k": 3}},
			{"/v1/search", map[string]any{"shapes": []WireShape{}, "k": 3, "mode": "sketch"}},
			{"/v1/similar", map[string]any{"shape": wireSquare(), "k": -1}},
			{"/v1/sketch", map[string]any{"shapes": []WireShape{}, "k": 3}},
		} {
			resp, body := post(t, base+tc.path, tc.body)
			if resp.StatusCode != http.StatusUnprocessableEntity {
				t.Fatalf("%s %v: status %d (%s), want 422", tc.path, tc.body, resp.StatusCode, body)
			}
		}
		resp, body := post(t, base+"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "mode": "nope"})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("unknown mode: status %d (%s), want 422", resp.StatusCode, body)
		}
		resp, body = post(t, base+"/v1/search", map[string]any{"shape": wireSquare(), "k": 3, "exec": "nope"})
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("unknown exec: status %d (%s), want 422", resp.StatusCode, body)
		}
	}
}

// TestShardedSnapshotReloadAndStatz saves a sharded snapshot directory,
// reloads it over /admin/reload, and checks /statz gains per-shard rows
// — including a dropped row after a shard file is destroyed.
func TestShardedSnapshotReloadAndStatz(t *testing.T) {
	se := testSharded(t, 3)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := se.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{})
	resp, body := post(t, ts.URL+"/admin/reload", map[string]string{"path": dir})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d (%s)", resp.StatusCode, body)
	}
	var rl reloadResponse
	if err := json.Unmarshal(body, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Shards != 3 || rl.Shapes != se.NumShapes() || rl.Format != shardedFormatName {
		t.Fatalf("reload response: %+v", rl)
	}

	stz := s.Statz()
	if stz.Snapshot == nil || len(stz.Snapshot.Shards) != 3 {
		t.Fatalf("statz lacks per-shard rows: %+v", stz.Snapshot)
	}
	for _, row := range stz.Snapshot.Shards {
		if row.Dropped || (row.Shapes > 0 && !row.Live) {
			t.Fatalf("healthy snapshot reported damage: %+v", row)
		}
	}
	// The swapped-in engine serves queries.
	if resp, body := post(t, ts.URL+"/v1/search", map[string]any{"shape": wireSquare(), "k": 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search after sharded reload: %d (%s)", resp.StatusCode, body)
	}

	// Destroy one shard file: the reload must degrade, not fail, and
	// /statz must say which shard died.
	if err := os.WriteFile(filepath.Join(dir, "shard-001.gsir2"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, body = post(t, ts.URL+"/admin/reload", map[string]string{"path": dir})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded reload: %d (%s)", resp.StatusCode, body)
	}
	stz = s.Statz()
	if stz.Snapshot == nil || len(stz.Snapshot.Shards) != 3 {
		t.Fatalf("statz lacks per-shard rows after degraded reload: %+v", stz.Snapshot)
	}
	if row := stz.Snapshot.Shards[1]; !row.Dropped || row.Error == "" || row.Live {
		t.Fatalf("dead shard not reported: %+v", row)
	}
	if resp, body := post(t, ts.URL+"/v1/search", map[string]any{"shape": wireSquare(), "k": 2}); resp.StatusCode != http.StatusOK {
		t.Fatalf("search on degraded snapshot: %d (%s)", resp.StatusCode, body)
	}
}
