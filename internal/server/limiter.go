package server

import (
	"context"
	"sync/atomic"
	"time"
)

// limiter is the admission controller: a bounded in-flight semaphore
// fronted by a bounded wait queue with a deadline. Every request path is
// O(1) in memory — a request is either executing (holds a token), waiting
// (counted against maxQueue, parked on the semaphore channel), or shed
// immediately. Nothing ever queues unboundedly, so overload degrades to
// fast 429/503 responses instead of memory growth and collapse.
type limiter struct {
	tokens   chan struct{} // capacity = max in-flight
	queued   atomic.Int64
	maxQueue int64
	maxWait  time.Duration
}

func newLimiter(maxInFlight, maxQueue int, maxWait time.Duration) *limiter {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if maxWait <= 0 {
		maxWait = 100 * time.Millisecond
	}
	return &limiter{
		tokens:   make(chan struct{}, maxInFlight),
		maxQueue: int64(maxQueue),
		maxWait:  maxWait,
	}
}

// shedError reports an admission decision that turned the request away,
// carrying the HTTP status the handler should answer with. RetryAfter is
// the client backoff hint.
type shedError struct {
	status     int
	reason     string
	retryAfter time.Duration
}

func (e *shedError) Error() string { return e.reason }

// acquire admits the request or sheds it. On nil the caller holds an
// in-flight token and must call release. The error is either a *shedError
// (queue full → 429, wait deadline exceeded → 503) or the context's error
// when the client went away while queued.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.tokens <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return &shedError{status: 429, reason: "server overloaded: queue full", retryAfter: l.maxWait}
	}
	defer l.queued.Add(-1)
	timer := time.NewTimer(l.maxWait)
	defer timer.Stop()
	select {
	case l.tokens <- struct{}{}:
		return nil
	case <-timer.C:
		return &shedError{status: 503, reason: "server overloaded: queue wait deadline exceeded", retryAfter: 2 * l.maxWait}
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) release() { <-l.tokens }

// inFlight returns the number of requests currently holding a token.
func (l *limiter) inFlight() int { return len(l.tokens) }

// queueDepth returns the number of requests currently waiting.
func (l *limiter) queueDepth() int64 { return l.queued.Load() }
