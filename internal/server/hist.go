package server

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// histogram is a lock-free latency histogram with geometric (power-of-two)
// buckets. Recording is a couple of atomic adds, so it sits directly on
// the request hot path; quantiles are computed on demand from a bucket
// scan with linear interpolation inside the bucket. Concurrent observe
// and quantile reads are safe — a read concurrent with writes sees some
// recent, internally plausible state, which is all a metrics endpoint
// needs.
type histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// histBase is the width of the first bucket; each subsequent bucket
// doubles. 24 buckets span 50µs … ~7 min, far beyond any plausible
// request timeout; slower samples clamp into the last bucket.
const (
	histBase    = 50 * time.Microsecond
	histBuckets = 24
)

func bucketIndex(d time.Duration) int {
	if d < histBase {
		return 0
	}
	i := bits.Len64(uint64(d / histBase))
	if i > histBuckets-1 {
		i = histBuckets - 1
	}
	return i
}

// bucketUpper returns the exclusive upper bound of bucket i.
func bucketUpper(i int) time.Duration { return histBase << i }

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) time.Duration {
	if i == 0 {
		return 0
	}
	return histBase << (i - 1)
}

func (h *histogram) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketIndex(d)].Add(1)
}

// quantile returns the q-th latency quantile (q in [0,1]), interpolated
// within the containing bucket. Returns 0 when nothing was recorded.
func (h *histogram) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c > 0 && cum+c >= target {
			lo, hi := bucketLower(i), bucketUpper(i)
			frac := float64(target-cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	// Writers raced the scan; report the top of the range we did see.
	return bucketUpper(histBuckets - 1)
}

// mean returns the average recorded latency (0 when empty).
func (h *histogram) mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}
