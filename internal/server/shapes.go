package server

import (
	"fmt"

	geosir "repro"
)

// WireShape is the JSON representation of a query shape:
//
//	{"points": [[x1,y1], [x2,y2], ...], "closed": true}
//
// closed selects polygon vs polyline, matching geosir.NewPolygon /
// NewPolyline.
type WireShape struct {
	Points [][2]float64 `json:"points"`
	Closed bool         `json:"closed"`
}

// Shape converts the wire form into a validated engine shape. The error
// distinguishes the caller's data being wrong (non-simple polygon, too
// few vertices, …) from transport problems, so handlers can answer 422.
func (ws WireShape) Shape() (geosir.Shape, error) {
	pts := make([]geosir.Point, len(ws.Points))
	for i, p := range ws.Points {
		pts[i] = geosir.Pt(p[0], p[1])
	}
	sh := geosir.Shape{Pts: pts, Closed: ws.Closed}
	if err := sh.Validate(); err != nil {
		return geosir.Shape{}, err
	}
	return sh, nil
}

// shapesOf converts a slice of wire shapes, reporting the index of the
// first invalid one.
func shapesOf(ws []WireShape) ([]geosir.Shape, error) {
	out := make([]geosir.Shape, len(ws))
	for i, w := range ws {
		sh, err := w.Shape()
		if err != nil {
			return nil, fmt.Errorf("shape %d: %w", i, err)
		}
		out[i] = sh
	}
	return out, nil
}

// MatchJSON is one retrieved shape on the wire.
type MatchJSON struct {
	ShapeID            int     `json:"shape_id"`
	ImageID            int     `json:"image_id"`
	Distance           float64 `json:"distance"`
	ContinuousDistance float64 `json:"continuous_distance,omitempty"`
	Approximate        bool    `json:"approximate,omitempty"`
}

// StatsJSON mirrors geosir.Stats on the wire.
type StatsJSON struct {
	Iterations      int     `json:"iterations"`
	FinalEpsilon    float64 `json:"final_epsilon"`
	VerticesCounted int     `json:"vertices_counted"`
	Candidates      int     `json:"candidates"`
	Converged       bool    `json:"converged"`
	UsedHashing     bool    `json:"used_hashing"`
	UsedANN         bool    `json:"used_ann,omitempty"`
	ANNProbes       int     `json:"ann_probes,omitempty"`
	ANNCandidates   int     `json:"ann_candidates,omitempty"`
}

// SketchMatchJSON is one image retrieved by a multi-shape sketch.
type SketchMatchJSON struct {
	ImageID  int       `json:"image_id"`
	Score    float64   `json:"score"`
	PerShape []float64 `json:"per_shape"`
}

func matchesJSON(ms []geosir.Match) []MatchJSON {
	out := make([]MatchJSON, len(ms))
	for i, m := range ms {
		out[i] = MatchJSON{
			ShapeID:            m.ShapeID,
			ImageID:            m.ImageID,
			Distance:           m.Distance,
			ContinuousDistance: m.ContinuousDistance,
			Approximate:        m.Approximate,
		}
	}
	return out
}

func statsJSON(st geosir.Stats) StatsJSON {
	return StatsJSON{
		Iterations:      st.Iterations,
		FinalEpsilon:    st.FinalEpsilon,
		VerticesCounted: st.VerticesCounted,
		Candidates:      st.Candidates,
		Converged:       st.Converged,
		UsedHashing:     st.UsedHashing,
		UsedANN:         st.UsedANN,
		ANNProbes:       st.ANNProbes,
		ANNCandidates:   st.ANNCandidates,
	}
}

func sketchMatchesJSON(ms []geosir.SketchMatch) []SketchMatchJSON {
	out := make([]SketchMatchJSON, len(ms))
	for i, m := range ms {
		out[i] = SketchMatchJSON{ImageID: m.ImageID, Score: m.Score, PerShape: m.PerShape}
	}
	return out
}
