package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	geosir "repro"
)

// newIngestTestServer saves a sharded base into a temp snapshot
// directory and serves it with live ingestion enabled (manual
// compaction, no WAL fsync).
func newIngestTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	if err := testSharded(t, 2).SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	if cfg.Ingest == nil {
		cfg.Ingest = &IngestOptions{CompactThreshold: -1, NoSync: true}
	}
	s := New(cfg)
	if _, err := s.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { closeIngest(s.state.Load()) })
	return s, ts, dir
}

// wirePentagon is geometrically unlike every shape in the test base, so
// an exact search for it can only hit the image that carries it.
func wirePentagon() WireShape {
	return WireShape{Points: [][2]float64{{0, 0}, {6, 0}, {7.5, 4}, {3, 7}, {-1.5, 4}}, Closed: true}
}

func del(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [4096]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

// topImage runs an exact k=1 search for the given shape and returns the
// best match's image id (-1 when nothing matched).
func topImage(t *testing.T, ts *httptest.Server, shape WireShape) int {
	t.Helper()
	resp, raw := post(t, ts.URL+"/v1/search", map[string]any{"shape": shape, "k": 1, "mode": "exact"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: %d %s", resp.StatusCode, raw)
	}
	var sr struct {
		Matches []MatchJSON `json:"matches"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Matches) == 0 {
		return -1
	}
	return sr.Matches[0].ImageID
}

// TestImagesCRUD is the end-to-end live-ingestion flow over HTTP:
// insert → immediately searchable, duplicate insert → 409, compact →
// still searchable, delete → gone, delete again → 404.
func TestImagesCRUD(t *testing.T) {
	s, ts, _ := newIngestTestServer(t, Config{})

	resp, raw := post(t, ts.URL+"/v1/images", map[string]any{"id": 9, "shapes": []WireShape{wirePentagon()}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, raw)
	}
	if got := topImage(t, ts, wirePentagon()); got != 9 {
		t.Fatalf("inserted image not served: top match is image %d", got)
	}

	resp, raw = post(t, ts.URL+"/v1/images", map[string]any{"id": 9, "shapes": []WireShape{wirePentagon()}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate insert: %d %s", resp.StatusCode, raw)
	}

	resp, raw = post(t, ts.URL+"/admin/compact", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d %s", resp.StatusCode, raw)
	}
	var cr compactResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Ingest.Compactions != 1 || cr.Ingest.DeltaShapes != 0 {
		t.Fatalf("compact stats: %+v", cr.Ingest)
	}
	if got := topImage(t, ts, wirePentagon()); got != 9 {
		t.Fatalf("compacted image not served: top match is image %d", got)
	}

	resp, raw = del(t, ts.URL+"/v1/images/9")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, raw)
	}
	if got := topImage(t, ts, wirePentagon()); got == 9 {
		t.Fatal("deleted image still served")
	}
	resp, _ = del(t, ts.URL+"/v1/images/9")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: %d", resp.StatusCode)
	}
	resp, _ = del(t, ts.URL+"/v1/images/not-a-number")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-integer id: %d", resp.StatusCode)
	}

	// /statz reports the ingest section and the write counters.
	st := s.Statz()
	if st.Ingest == nil || !st.Ingest.Enabled {
		t.Fatalf("statz ingest section missing: %+v", st.Ingest)
	}
	if st.Inserts != 1 || st.Deletes != 1 {
		t.Fatalf("statz write counters: inserts=%d deletes=%d", st.Inserts, st.Deletes)
	}
	if st.Ingest.Compactions != 1 {
		t.Fatalf("statz compactions: %+v", st.Ingest)
	}
}

// TestImagesValidation covers the client-error mapping of the write
// path: malformed body, no shapes, non-simple shape.
func TestImagesValidation(t *testing.T) {
	_, ts, _ := newIngestTestServer(t, Config{})
	for _, tc := range []struct {
		name   string
		body   any
		status int
	}{
		{"malformed", `{"id": `, http.StatusBadRequest},
		{"no shapes", map[string]any{"id": 10}, http.StatusUnprocessableEntity},
		{"non-simple", map[string]any{"id": 10, "shapes": []WireShape{wireBowtie()}}, http.StatusUnprocessableEntity},
	} {
		resp, raw := post(t, ts.URL+"/v1/images", tc.body)
		if resp.StatusCode != tc.status {
			t.Fatalf("%s: got %d want %d (%s)", tc.name, resp.StatusCode, tc.status, raw)
		}
	}
}

// TestImagesReadOnly verifies write endpoints refuse cleanly when the
// serving engine has no ingestion (single-file snapshots, or no
// Config.Ingest).
func TestImagesReadOnly(t *testing.T) {
	_, ts := newShardedTestServer(t, 2)
	resp, raw := post(t, ts.URL+"/v1/images", map[string]any{"id": 9, "shapes": []WireShape{wirePentagon()}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("insert on read-only: %d %s", resp.StatusCode, raw)
	}
	resp, _ = del(t, ts.URL+"/v1/images/0")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("delete on read-only: %d", resp.StatusCode)
	}
	resp, _ = post(t, ts.URL+"/admin/compact", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("compact on read-only: %d", resp.StatusCode)
	}
}

// TestWriteInvalidatesCache pins the cache-coherence contract: a cached
// search result must not survive a write that changes its answer. The
// second identical search hits the cache; after an insert the third
// search misses (new fingerprint epoch) and sees the new image.
func TestWriteInvalidatesCache(t *testing.T) {
	_, ts, _ := newIngestTestServer(t, Config{CacheBytes: 1 << 20})

	body := map[string]any{"shape": wirePentagon(), "k": 1, "mode": "exact"}
	resp, _ := post(t, ts.URL+"/v1/search", body)
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("first search disposition: %q", got)
	}
	resp, _ = post(t, ts.URL+"/v1/search", body)
	if got := resp.Header.Get(cacheHeader); got != "hit" {
		t.Fatalf("second search disposition: %q", got)
	}

	if resp, raw := post(t, ts.URL+"/v1/images", map[string]any{"id": 42, "shapes": []WireShape{wirePentagon()}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, raw)
	}
	resp, raw := post(t, ts.URL+"/v1/search", body)
	if got := resp.Header.Get(cacheHeader); got != "miss" {
		t.Fatalf("post-write search disposition: %q", got)
	}
	var sr struct {
		Matches []MatchJSON `json:"matches"`
	}
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Matches) == 0 || sr.Matches[0].ImageID != 42 {
		t.Fatalf("post-write search does not see the insert: %s", raw)
	}
}

// TestIngestSurvivesReload verifies the reload path re-attaches
// ingestion: writes land in the WAL, a reload of the same directory
// replays them, and the written image keeps serving.
func TestIngestSurvivesReload(t *testing.T) {
	_, ts, dir := newIngestTestServer(t, Config{})
	if resp, raw := post(t, ts.URL+"/v1/images", map[string]any{"id": 9, "shapes": []WireShape{wirePentagon()}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert: %d %s", resp.StatusCode, raw)
	}
	resp, raw := post(t, ts.URL+"/admin/reload", map[string]any{"path": dir})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d %s", resp.StatusCode, raw)
	}
	if got := topImage(t, ts, wirePentagon()); got != 9 {
		t.Fatalf("write lost across reload: top match is image %d", got)
	}
	// And the engine is writable again after the swap.
	if resp, raw := post(t, ts.URL+"/v1/images", map[string]any{"id": 11, "shapes": []WireShape{wireL()}}); resp.StatusCode != http.StatusOK {
		t.Fatalf("insert after reload: %d %s", resp.StatusCode, raw)
	}
}

// TestMethodPatterns verifies the mux enforces methods on the image
// endpoints (405 with Allow, per the go 1.22 pattern registration).
func TestMethodPatterns(t *testing.T) {
	_, ts, _ := newIngestTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/images")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/images: %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, fmt.Sprintf("%s/v1/images/3", ts.URL), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/images/3: %d", resp.StatusCode)
	}
}

var _ mutable = (*geosir.ShardedEngine)(nil)
var _ mutationEpoch = (*geosir.ShardedEngine)(nil)
