package server

import (
	"sync"
	"testing"
	"time"
)

func TestBucketIndexBounds(t *testing.T) {
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d", got)
	}
	if got := bucketIndex(histBase - 1); got != 0 {
		t.Errorf("bucketIndex(base-1) = %d", got)
	}
	if got := bucketIndex(histBase); got != 1 {
		t.Errorf("bucketIndex(base) = %d", got)
	}
	if got := bucketIndex(365 * 24 * time.Hour); got != histBuckets-1 {
		t.Errorf("bucketIndex(1y) = %d, want %d", got, histBuckets-1)
	}
	// Every bucket's bounds nest: lower < upper, and upper(i) == lower(i+1).
	for i := 0; i < histBuckets-1; i++ {
		if bucketLower(i) >= bucketUpper(i) {
			t.Errorf("bucket %d: lower %v >= upper %v", i, bucketLower(i), bucketUpper(i))
		}
		if bucketUpper(i) != bucketLower(i+1) {
			t.Errorf("bucket %d/%d: bounds don't nest", i, i+1)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	if h.quantile(0.5) != 0 || h.mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	// 90 fast samples, 10 slow ones: p50 lands in the fast bucket's
	// range, p99 in the slow one's.
	for i := 0; i < 90; i++ {
		h.observe(60 * time.Microsecond) // bucket [50µs, 100µs)
	}
	for i := 0; i < 10; i++ {
		h.observe(70 * time.Millisecond) // bucket [~51.2ms, ~102.4ms)
	}
	if p50 := h.quantile(0.50); p50 < 50*time.Microsecond || p50 >= 100*time.Microsecond {
		t.Errorf("p50 = %v, want within [50µs, 100µs)", p50)
	}
	if p99 := h.quantile(0.99); p99 < 51*time.Millisecond || p99 > 103*time.Millisecond {
		t.Errorf("p99 = %v, want within the slow bucket", p99)
	}
	if h.count.Load() != 100 {
		t.Errorf("count = %d", h.count.Load())
	}
	mean := h.mean()
	if mean < 5*time.Millisecond || mean > 10*time.Millisecond {
		t.Errorf("mean = %v, want ≈7ms", mean)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.observe(time.Duration(w+1) * time.Millisecond)
				_ = h.quantile(0.95)
			}
		}(w)
	}
	wg.Wait()
	if got := h.count.Load(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}
