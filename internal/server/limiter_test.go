package server

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLimiterAdmitsUpToCapacity(t *testing.T) {
	l := newLimiter(3, 0, 10*time.Millisecond)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := l.acquire(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
	}
	if got := l.inFlight(); got != 3 {
		t.Fatalf("inFlight = %d", got)
	}
	// Capacity exhausted and the queue is zero-length: immediate 429.
	err := l.acquire(ctx)
	var shed *shedError
	if !errors.As(err, &shed) || shed.status != 429 {
		t.Fatalf("err = %v, want 429 shed", err)
	}
	l.release()
	if err := l.acquire(ctx); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
}

func TestLimiterQueueWaitDeadline(t *testing.T) {
	l := newLimiter(1, 4, 20*time.Millisecond)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// The slot never frees: the queued request must shed with 503 after
	// the wait deadline, not hang.
	start := time.Now()
	err := l.acquire(ctx)
	var shed *shedError
	if !errors.As(err, &shed) || shed.status != 503 {
		t.Fatalf("err = %v, want 503 shed", err)
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("shed after %v, before the wait deadline", elapsed)
	}
	if l.queueDepth() != 0 {
		t.Errorf("queueDepth = %d after shed", l.queueDepth())
	}
}

func TestLimiterQueueHandoff(t *testing.T) {
	l := newLimiter(1, 4, time.Second)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- l.acquire(ctx) }()
	// Give the waiter time to park, then free the slot; the waiter must
	// be admitted well before its deadline.
	time.Sleep(5 * time.Millisecond)
	l.release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("queued acquire: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queued request never admitted")
	}
}

func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := newLimiter(1, 4, time.Minute)
	if err := l.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan error, 1)
	go func() { got <- l.acquire(ctx) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-got:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
}

func TestLimiterQueueOverflowSheds(t *testing.T) {
	l := newLimiter(1, 2, time.Minute)
	ctx := context.Background()
	if err := l.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Fill the queue with two parked waiters.
	parked := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { parked <- l.acquire(ctx) }()
	}
	deadline := time.Now().Add(2 * time.Second)
	for l.queueDepth() != 2 {
		if time.Now().After(deadline) {
			t.Fatal("waiters never parked")
		}
		time.Sleep(time.Millisecond)
	}
	// The third arrival overflows the queue: immediate 429.
	err := l.acquire(ctx)
	var shed *shedError
	if !errors.As(err, &shed) || shed.status != 429 {
		t.Fatalf("err = %v, want 429 shed", err)
	}
	// Drain: release twice, both parked waiters get slots.
	l.release()
	if err := <-parked; err != nil {
		t.Fatalf("first parked waiter: %v", err)
	}
	l.release()
	if err := <-parked; err != nil {
		t.Fatalf("second parked waiter: %v", err)
	}
}
