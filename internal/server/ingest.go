package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	geosir "repro"
)

// Live-ingestion serving: when the installed engine supports mutations
// (a ShardedEngine with EnableIngest done), the server exposes
//
//	POST   /v1/images        {"id": 7, "shapes": [{...}, ...]}
//	DELETE /v1/images/{id}
//	POST   /admin/compact    (synchronous fold; 409 when one is running)
//
// Writes ride the same admission control and per-request deadline as
// queries — an overloaded server sheds writes exactly like reads. Every
// acknowledged write bumps the engine's mutation epoch, which is folded
// into the query-cache fingerprint (see cacheEpoch), so a cached result
// can never outlive the write that invalidated it.

// IngestOptions makes directory snapshots writable: when Config.Ingest
// is non-nil, every sharded snapshot directory the server installs gets
// live ingestion enabled on it (EnableIngest with these knobs).
type IngestOptions struct {
	// CompactThreshold is the delta shape count that triggers background
	// compaction (0 = geosir.DefaultCompactThreshold, negative = manual
	// compaction via /admin/compact only).
	CompactThreshold int
	// NoSync skips the WAL's per-write fsync (benchmarks only).
	NoSync bool
}

// mutable is what the mutation endpoints need from an engine; only a
// ShardedEngine with ingestion enabled provides working versions.
type mutable interface {
	InsertImage(ctx context.Context, imageID int, shapes []geosir.Shape) error
	DeleteImage(ctx context.Context, imageID int) error
	Compact() error
	IngestEnabled() bool
	IngestStats() geosir.IngestStats
}

// mutationEpoch is implemented by engines whose contents can change
// after install (ShardedEngine); the epoch advances on every
// acknowledged write.
type mutationEpoch interface {
	MutationEpoch() uint64
}

// cacheEpoch is the cache-fingerprint epoch for one admitted request:
// the install epoch in the high bits (hot-swaps invalidate everything)
// XOR-folded with the engine's mutation epoch (each acknowledged write
// invalidates the affected snapshot's entries). Both values were loaded
// from the same engineState, so a result computed against this engine
// can only be served while neither has moved.
func cacheEpoch(st *engineState) uint64 {
	e := st.epoch << 32
	if m, ok := st.serving.(mutationEpoch); ok {
		e ^= m.MutationEpoch()
	}
	return e
}

// writable returns the serving engine's mutation surface, or an
// apiError explaining why writes are unavailable.
func writable(st *engineState) (mutable, *apiError) {
	m, ok := st.serving.(mutable)
	if !ok || !m.IngestEnabled() {
		return nil, &apiError{status: http.StatusConflict,
			msg: "snapshot is read-only (serve a sharded snapshot directory with -ingest)"}
	}
	return m, nil
}

// mutateHandler is one mutation endpoint's decode-and-apply step.
type mutateHandler func(ctx context.Context, st *engineState, r *http.Request, body []byte) (any, error)

// mutate wraps a mutation handler with the serving pipeline: readiness,
// admission control, per-request deadline, body limits, ingest error
// mapping, metrics, and access logging. The HTTP method is enforced by
// the route pattern, not here.
func (s *Server) mutate(name string, h mutateHandler) http.HandlerFunc {
	em := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		s.serveMutate(rec, r, em, h)
		s.accessLog(r, rec.status, rec.bytes, time.Since(start))
	}
}

func (s *Server) serveMutate(w *statusRecorder, r *http.Request, em *endpointMetrics, h mutateHandler) {
	st := s.state.Load()
	if st == nil {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "no snapshot loaded")
		return
	}
	if err := s.limiter.acquire(r.Context()); err != nil {
		var shed *shedError
		if errors.As(err, &shed) {
			em.shed.Add(1)
			w.Header().Set("Retry-After", retryAfter(shed.retryAfter))
			s.writeError(w, shed.status, shed.reason)
			return
		}
		s.writeError(w, 499, "client closed request")
		return
	}
	defer s.limiter.release()
	em.requests.Add(1)
	qstart := time.Now()
	defer func() { em.latency.observe(time.Since(qstart)) }()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		em.status4x.Add(1)
		s.writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	resp, err := h(ctx, st, r, body)
	if err != nil {
		status := http.StatusInternalServerError
		var ae *apiError
		switch {
		case errors.As(err, &ae):
			status = ae.status
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = 499
		case errors.Is(err, geosir.ErrImageExists):
			status = http.StatusConflict
		case errors.Is(err, geosir.ErrNoImage):
			status = http.StatusNotFound
		case errors.Is(err, geosir.ErrCompacting):
			// Transient: the fold finishes and the write becomes possible.
			status = http.StatusConflict
			w.Header().Set("Retry-After", "1")
		case errors.Is(err, geosir.ErrIngestOff):
			status = http.StatusConflict
		}
		countStatus(em, status)
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type insertImageRequest struct {
	ID     int         `json:"id"`
	Shapes []WireShape `json:"shapes"`
}

type mutationResponse struct {
	ID     int    `json:"id"`
	Shapes int    `json:"shapes,omitempty"`
	Epoch  uint64 `json:"epoch"`
}

func (s *Server) handleInsertImage(ctx context.Context, st *engineState, r *http.Request, body []byte) (any, error) {
	m, aerr := writable(st)
	if aerr != nil {
		return nil, aerr
	}
	var req insertImageRequest
	if err := decodeStrict(body, &req); err != nil {
		return nil, err
	}
	if len(req.Shapes) == 0 {
		return nil, unprocessable(errors.New("an image needs at least one shape"))
	}
	shapes, err := shapesOf(req.Shapes)
	if err != nil {
		return nil, unprocessable(err)
	}
	if err := m.InsertImage(ctx, req.ID, shapes); err != nil {
		return nil, err
	}
	s.metrics.inserts.Add(1)
	return mutationResponse{ID: req.ID, Shapes: len(shapes), Epoch: cacheEpoch(st)}, nil
}

func (s *Server) handleDeleteImage(ctx context.Context, st *engineState, r *http.Request, _ []byte) (any, error) {
	m, aerr := writable(st)
	if aerr != nil {
		return nil, aerr
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		return nil, badRequest("image id %q is not an integer", r.PathValue("id"))
	}
	if err := m.DeleteImage(ctx, id); err != nil {
		return nil, err
	}
	s.metrics.deletes.Add(1)
	return mutationResponse{ID: id, Epoch: cacheEpoch(st)}, nil
}

type compactResponse struct {
	DurationMs float64            `json:"duration_ms"`
	Ingest     geosir.IngestStats `json:"ingest"`
}

// handleCompact folds the delta synchronously. It bypasses admission
// control like the other admin endpoints: a compaction is long-running
// maintenance, not query traffic, and must not hold a query slot.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	st := s.state.Load()
	if st == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no snapshot loaded")
		return
	}
	m, aerr := writable(st)
	if aerr != nil {
		s.writeError(w, aerr.status, aerr.msg)
		return
	}
	start := time.Now()
	if err := m.Compact(); err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, geosir.ErrCompacting) {
			status = http.StatusConflict
			w.Header().Set("Retry-After", "1")
		}
		s.writeError(w, status, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, compactResponse{
		DurationMs: ms(time.Since(start)),
		Ingest:     m.IngestStats(),
	})
}

// ingestStatz returns the /statz ingest section, nil when the serving
// engine is read-only.
func ingestStatz(st *engineState) *geosir.IngestStats {
	if st == nil {
		return nil
	}
	if m, ok := st.serving.(mutable); ok && m.IngestEnabled() {
		ist := m.IngestStats()
		return &ist
	}
	return nil
}

// closeIngest quiesces an engine's ingestion if it has any: used when a
// state is swapped out (its WAL handle must be released before another
// engine opens the same log) and before reloading in place.
func closeIngest(st *engineState) {
	if st == nil {
		return
	}
	if c, ok := st.serving.(interface{ CloseIngest() error }); ok {
		_ = c.CloseIngest()
	}
}
