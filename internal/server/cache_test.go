package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	geosir "repro"
	"repro/internal/qcache"
)

// cacheOn is the Config the cache tests serve under.
func cacheOn() Config {
	return Config{CacheBytes: 1 << 20, MaxInFlight: 64, MaxQueue: 1024, QueueWait: 5 * time.Second}
}

// postRaw is post without the test-failure coupling: it returns the
// response, body, and cache header for equivalence comparisons.
func postRaw(t *testing.T, url string, body any) (int, []byte, string) {
	t.Helper()
	resp, raw := post(t, url, body)
	return resp.StatusCode, raw, resp.Header.Get("X-Geosir-Cache")
}

// transformWire applies rotation/scale/translation to a wire shape —
// the similarity transforms the fingerprint must be invariant under.
func transformWire(ws WireShape, theta, scale, dx, dy float64) WireShape {
	c, s := math.Cos(theta), math.Sin(theta)
	out := ws
	out.Points = make([][2]float64, len(ws.Points))
	for i, p := range ws.Points {
		out.Points[i] = [2]float64{
			scale*(c*p[0]-s*p[1]) + dx,
			scale*(s*p[0]+c*p[1]) + dy,
		}
	}
	return out
}

// TestCacheEquivalence is the core acceptance property: for every mode ×
// k × ann combination, the cached server's responses (miss, then hit)
// are byte-identical to an uncached server's response over the same
// engine. Run under -race in CI.
func TestCacheEquivalence(t *testing.T) {
	eng := testEngine(t)

	plain := New(Config{})
	if err := plain.SetEngine(eng, "(plain)"); err != nil {
		t.Fatal(err)
	}
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()

	cached := New(cacheOn())
	if err := cached.SetEngine(eng, "(cached)"); err != nil {
		t.Fatal(err)
	}
	tsCached := httptest.NewServer(cached.Handler())
	defer tsCached.Close()

	type probe struct {
		name string
		path string
		body map[string]any
	}
	var probes []probe
	for _, mode := range []string{"auto", "exact", "approximate"} {
		for _, k := range []int{1, 3} {
			for _, ann := range []string{"", "verify", "approx"} {
				probes = append(probes, probe{
					name: fmt.Sprintf("search/%s/k%d/ann=%s", mode, k, ann),
					path: "/v1/search",
					body: map[string]any{"shape": wireSquare(), "k": k, "mode": mode, "ann": ann},
				})
			}
		}
	}
	for _, k := range []int{1, 3} {
		probes = append(probes,
			probe{fmt.Sprintf("search/sketch/k%d", k), "/v1/search",
				map[string]any{"shapes": []WireShape{wireSquare(), wireL()}, "k": k, "mode": "sketch"}},
			probe{fmt.Sprintf("similar/k%d", k), "/v1/similar",
				map[string]any{"shape": wireL(), "k": k}},
			probe{fmt.Sprintf("approximate/k%d", k), "/v1/approximate",
				map[string]any{"shape": wireSquare(), "k": k}},
			probe{fmt.Sprintf("sketch/k%d", k), "/v1/sketch",
				map[string]any{"shapes": []WireShape{wireSquare(), wireL()}, "k": k}},
		)
	}

	for _, p := range probes {
		t.Run(p.name, func(t *testing.T) {
			stP, bodyP, hdrP := postRaw(t, tsPlain.URL+p.path, p.body)
			if stP != 200 {
				t.Fatalf("uncached: %d %s", stP, bodyP)
			}
			if hdrP != "" {
				t.Fatalf("uncached server must not set the cache header, got %q", hdrP)
			}
			st1, body1, hdr1 := postRaw(t, tsCached.URL+p.path, p.body)
			st2, body2, hdr2 := postRaw(t, tsCached.URL+p.path, p.body)
			if st1 != 200 || st2 != 200 {
				t.Fatalf("cached: %d / %d", st1, st2)
			}
			// The first touch may already hit: the cache stores the engine
			// response keyed by SearchRequest fingerprint, so /v1/approximate
			// and /v1/search?mode=approximate share entries by design (each
			// endpoint re-renders its own body from the cached response).
			if (hdr1 != "miss" && hdr1 != "hit") || hdr2 != "hit" {
				t.Fatalf("dispositions = %q, %q; want miss|hit then hit", hdr1, hdr2)
			}
			if !bytes.Equal(bodyP, body1) {
				t.Fatalf("miss body differs from uncached:\n  plain:  %s\n  cached: %s", bodyP, body1)
			}
			if !bytes.Equal(body1, body2) {
				t.Fatalf("hit body differs from miss body:\n  miss: %s\n  hit:  %s", body1, body2)
			}
		})
	}
}

// TestCacheAffineEquivalence: similarity-transformed placements of one
// query are one cache entry; genuinely different queries are not.
func TestCacheAffineEquivalence(t *testing.T) {
	s := New(cacheOn())
	if err := s.SetEngine(testEngine(t), "(test)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base := wireSquare()
	_, body0, hdr0 := postRaw(t, ts.URL+"/v1/search", map[string]any{"shape": base, "k": 3})
	if hdr0 != "miss" {
		t.Fatalf("first request = %q, want miss", hdr0)
	}
	variants := []WireShape{
		transformWire(base, 0.7, 2.5, 31.4, -7.9),
		transformWire(base, -2.1, 0.33, -400, 12),
		transformWire(base, math.Pi/3, 17, 0.001, 9999),
	}
	for i, v := range variants {
		_, body, hdr := postRaw(t, ts.URL+"/v1/search", map[string]any{"shape": v, "k": 3})
		if hdr != "hit" {
			t.Fatalf("affine variant %d = %q, want hit", i, hdr)
		}
		if !bytes.Equal(body, body0) {
			t.Fatalf("affine variant %d body differs:\n  base:    %s\n  variant: %s", i, body0, body)
		}
	}
	// A different shape must not alias.
	if _, _, hdr := postRaw(t, ts.URL+"/v1/search", map[string]any{"shape": wireL(), "k": 3}); hdr != "miss" {
		t.Fatalf("different shape = %q, want miss", hdr)
	}
	// Same shape, different k: separate entry.
	if _, _, hdr := postRaw(t, ts.URL+"/v1/search", map[string]any{"shape": base, "k": 2}); hdr != "miss" {
		t.Fatalf("different k = %q, want miss", hdr)
	}
	// Topological is stateful and never cached.
	if _, _, hdr := postRaw(t, ts.URL+"/v1/topological",
		map[string]any{"query": "similar(a)", "binds": map[string]WireShape{"a": base}}); hdr != "bypass" {
		t.Fatalf("topological = %q, want bypass", hdr)
	}
}

// countingServing wraps a real engine, counting Search calls and
// (optionally) blocking them until released — the observable the
// coalescing test needs.
type countingServing struct {
	Serving
	calls atomic.Int64
	block chan struct{} // nil = don't block
}

func (c *countingServing) Search(ctx context.Context, req geosir.SearchRequest) (*geosir.SearchResponse, error) {
	c.calls.Add(1)
	if c.block != nil {
		select {
		case <-c.block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return c.Serving.Search(ctx, req)
}

// TestCacheCoalescing: M concurrent identical requests cause exactly one
// engine Search; every client receives the full, identical response.
func TestCacheCoalescing(t *testing.T) {
	stub := &countingServing{Serving: testEngine(t), block: make(chan struct{})}
	s := New(cacheOn())
	if err := s.SetServing(stub, "(stub)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const m = 12
	reqBody, _ := json.Marshal(map[string]any{"shape": wireSquare(), "k": 3})
	type result struct {
		status int
		body   []byte
		disp   string
		err    error
	}
	results := make([]result, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(reqBody))
			if err != nil {
				results[i].err = err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			results[i] = result{resp.StatusCode, raw, resp.Header.Get("X-Geosir-Cache"), nil}
		}(i)
	}
	// Wait for the leader to be inside Search and all followers parked on
	// its flight, then release.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if stub.calls.Load() == 1 && s.cache.Snapshot().Waiting == m-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never coalesced: calls=%d waiting=%d", stub.calls.Load(), s.cache.Snapshot().Waiting)
		}
		time.Sleep(time.Millisecond)
	}
	close(stub.block)
	wg.Wait()

	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("engine Search ran %d times for %d identical requests, want 1", got, m)
	}
	var misses, coalesced int
	for i, r := range results {
		if r.err != nil || r.status != 200 {
			t.Fatalf("client %d: status=%d err=%v", i, r.status, r.err)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("client %d body differs from client 0", i)
		}
		switch r.disp {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("client %d disposition = %q", i, r.disp)
		}
	}
	if misses != 1 || coalesced != m-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1 and %d", misses, coalesced, m-1)
	}
}

// TestCacheLeaderDisconnectDoesNotPoisonWaiters: the computing leader's
// client hangs up mid-search; the coalesced waiter must still receive
// the complete result (the compute context is detached from the
// leader's request).
func TestCacheLeaderDisconnectDoesNotPoisonWaiters(t *testing.T) {
	stub := &countingServing{Serving: testEngine(t), block: make(chan struct{})}
	s := New(cacheOn())
	if err := s.SetServing(stub, "(stub)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqBody, _ := json.Marshal(map[string]any{"shape": wireSquare(), "k": 3})

	// Leader: a request we will cancel while the engine is "working".
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		req, _ := http.NewRequestWithContext(leaderCtx, http.MethodPost,
			ts.URL+"/v1/search", bytes.NewReader(reqBody))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for stub.calls.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never reached the engine")
		}
		time.Sleep(time.Millisecond)
	}

	// Waiter: a patient client that coalesces onto the leader's flight.
	waiterDone := make(chan result2, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/search", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			waiterDone <- result2{err: err}
			return
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		waiterDone <- result2{status: resp.StatusCode, body: raw, disp: resp.Header.Get("X-Geosir-Cache")}
	}()
	for s.cache.Snapshot().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the leader's connection, then let the engine finish.
	cancelLeader()
	<-leaderDone
	close(stub.block)

	got := <-waiterDone
	if got.err != nil || got.status != 200 {
		t.Fatalf("waiter: status=%d err=%v — leader disconnect poisoned the flight", got.status, got.err)
	}
	var out struct {
		Matches []MatchJSON `json:"matches"`
	}
	if err := json.Unmarshal(got.body, &out); err != nil || len(out.Matches) == 0 {
		t.Fatalf("waiter got an empty/broken body: %v %s", err, got.body)
	}
	if got := stub.calls.Load(); got != 1 {
		t.Fatalf("engine Search ran %d times, want 1", got)
	}
	// The result was cached despite the leader's disconnect.
	if _, _, hdr := postRaw(t, ts.URL+"/v1/search", map[string]any{"shape": wireSquare(), "k": 3}); hdr != "hit" {
		t.Fatalf("follow-up = %q, want hit", hdr)
	}
}

type result2 struct {
	status int
	body   []byte
	disp   string
	err    error
}

// TestCacheInvalidationUnderReload hammers a cached server while
// snapshots hot-swap: every response must be byte-identical to one of
// the two engines' canonical answers (no stale serving, no epoch
// mixing), and a failed reload must leave both the engine and the cache
// intact.
func TestCacheInvalidationUnderReload(t *testing.T) {
	engA := testEngine(t) // 5 images
	engB := geosir.New(geosir.DefaultOptions())
	for id := 0; id < 3; id++ {
		if err := engB.AddImage(id, []geosir.Shape{sq(0, 0, float64(5+id))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := engB.Freeze(); err != nil {
		t.Fatal(err)
	}
	snapA := saveSnapshot(t, engA, "a.gsir")
	snapB := saveSnapshot(t, engB, "b.gsir")

	// Canonical answers, computed once against dedicated plain servers.
	canonical := func(eng *geosir.Engine) []byte {
		p := New(Config{})
		if err := p.SetEngine(eng, "(ref)"); err != nil {
			t.Fatal(err)
		}
		ref := httptest.NewServer(p.Handler())
		defer ref.Close()
		st, body, _ := postRaw(t, ref.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 3})
		if st != 200 {
			t.Fatalf("canonical answer: %d %s", st, body)
		}
		return body
	}
	bodyA := canonical(engA)
	bodyB := canonical(engB)
	if bytes.Equal(bodyA, bodyB) {
		t.Fatal("test engines must answer distinguishably")
	}

	s := New(cacheOn())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.LoadSnapshot(snapA); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var failures, served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	reqBody, _ := json.Marshal(map[string]any{"shape": wireSquare(), "k": 3})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/similar", "application/json", bytes.NewReader(reqBody))
				if err != nil {
					failures.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("request failed during reload: %d %s", resp.StatusCode, raw)
					failures.Add(1)
					continue
				}
				// The no-stale-serving contract, at byte granularity: every
				// response is exactly engine A's answer or exactly engine B's.
				if !bytes.Equal(raw, bodyA) && !bytes.Equal(raw, bodyB) {
					t.Errorf("response matches neither engine (stale or mixed): %s", raw)
					failures.Add(1)
					continue
				}
				served.Add(1)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		path := snapA
		if i%2 == 0 {
			path = snapB
		}
		if _, err := s.LoadSnapshot(path); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d bad responses during reloads (%d ok)", failures.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served")
	}

	// --- failed reload leaves engine AND cache intact -----------------

	// Warm the cache on the current engine (last loop load was snapA).
	_, warmBody, hdrWarm := postRaw(t, ts.URL+"/v1/similar", map[string]any{"shape": wireL(), "k": 2})
	epochBefore := s.Statz().Epoch
	if hdrWarm == "bypass" {
		t.Fatalf("warm request bypassed the cache")
	}
	resp, _ := post(t, ts.URL+"/admin/reload", map[string]string{"path": filepath.Join(t.TempDir(), "missing.gsir")})
	if resp.StatusCode != 422 {
		t.Fatalf("missing snapshot reload: %d, want 422", resp.StatusCode)
	}
	if got := s.Statz().Epoch; got != epochBefore {
		t.Fatalf("failed reload bumped the epoch %d → %d; cache was invalidated for nothing", epochBefore, got)
	}
	st, body, hdr := postRaw(t, ts.URL+"/v1/similar", map[string]any{"shape": wireL(), "k": 2})
	if st != 200 || hdr != "hit" {
		t.Fatalf("post-failed-reload request = %d %q, want a 200 hit (cache intact)", st, hdr)
	}
	if !bytes.Equal(body, warmBody) {
		t.Fatal("post-failed-reload body differs from the warmed entry")
	}
}

// TestCacheStatzAndMetrics: the cache surfaces in /statz (stats +
// epoch) and per-endpoint counters.
func TestCacheStatzAndMetrics(t *testing.T) {
	s := New(cacheOn())
	if err := s.SetEngine(testEngine(t), "(test)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := map[string]any{"shape": wireSquare(), "k": 3}
	postRaw(t, ts.URL+"/v1/search", body) // miss
	postRaw(t, ts.URL+"/v1/search", body) // hit
	postRaw(t, ts.URL+"/v1/search", body) // hit

	_, raw := get(t, ts.URL+"/statz")
	var statz struct {
		Epoch     uint64        `json:"epoch"`
		Cache     *qcache.Stats `json:"cache"`
		Endpoints map[string]struct {
			CacheHits   int64 `json:"cache_hits"`
			CacheMisses int64 `json:"cache_misses"`
		} `json:"endpoints"`
	}
	if err := json.Unmarshal(raw, &statz); err != nil {
		t.Fatal(err)
	}
	if statz.Cache == nil {
		t.Fatalf("statz lacks a cache section: %s", raw)
	}
	if statz.Cache.Hits != 2 || statz.Cache.Misses != 1 || statz.Cache.Entries != 1 {
		t.Fatalf("cache stats = %+v", statz.Cache)
	}
	if statz.Epoch == 0 {
		t.Fatal("statz lacks the snapshot epoch")
	}
	ep := statz.Endpoints["search"]
	if ep.CacheHits != 2 || ep.CacheMisses != 1 {
		t.Fatalf("endpoint cache counters = %+v", ep)
	}

	// A cache-off server reports no cache section and no header.
	off := New(Config{})
	if err := off.SetEngine(testEngine(t), "(off)"); err != nil {
		t.Fatal(err)
	}
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	_, _, hdr := postRaw(t, tsOff.URL+"/v1/search", body)
	if hdr != "" {
		t.Fatalf("cache-off server set header %q", hdr)
	}
	_, raw = get(t, tsOff.URL+"/statz")
	var offStatz struct {
		Cache *qcache.Stats `json:"cache"`
	}
	if err := json.Unmarshal(raw, &offStatz); err != nil {
		t.Fatal(err)
	}
	if offStatz.Cache != nil {
		t.Fatalf("cache-off statz reports a cache section: %+v", offStatz.Cache)
	}
}
