package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	geosir "repro"
)

func sq(x, y, side float64) geosir.Shape {
	return geosir.NewPolygon(geosir.Pt(x, y), geosir.Pt(x+side, y),
		geosir.Pt(x+side, y+side), geosir.Pt(x, y+side))
}

func tri(x, y, s float64) geosir.Shape {
	return geosir.NewPolygon(geosir.Pt(x, y), geosir.Pt(x+s, y), geosir.Pt(x, y+2*s))
}

func lsh(x, y, s float64) geosir.Shape {
	return geosir.NewPolygon(
		geosir.Pt(x, y), geosir.Pt(x+2*s, y), geosir.Pt(x+2*s, y+s),
		geosir.Pt(x+s, y+s), geosir.Pt(x+s, y+3*s), geosir.Pt(x, y+3*s))
}

// testEngine builds a small frozen base: squares, triangles, an L-shape.
func testEngine(t *testing.T) *geosir.Engine {
	t.Helper()
	eng := geosir.New(geosir.DefaultOptions())
	images := [][]geosir.Shape{
		{sq(0, 0, 20), tri(5, 5, 3)},
		{sq(0, 0, 10), sq(8, 8, 6)},
		{tri(0, 0, 4)},
		{lsh(0, 0, 2)},
		{sq(0, 0, 20), lsh(3, 3, 1.5)},
	}
	for id, shapes := range images {
		if err := eng.AddImage(id, shapes); err != nil {
			t.Fatalf("AddImage(%d): %v", id, err)
		}
	}
	if err := eng.Freeze(); err != nil {
		t.Fatal(err)
	}
	return eng
}

// newTestServer builds a ready server plus its httptest host.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.SetEngine(testEngine(t), "(test)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func wireSquare() WireShape {
	return WireShape{Points: [][2]float64{{0, 0}, {12, 0}, {12, 12}, {0, 12}}, Closed: true}
}

func wireL() WireShape {
	return WireShape{Points: [][2]float64{{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 6}, {0, 6}}, Closed: true}
}

// bowtie is syntactically valid JSON but a non-simple polygon.
func wireBowtie() WireShape {
	return WireShape{Points: [][2]float64{{0, 0}, {1, 1}, {1, 0}, {0, 1}}, Closed: true}
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func TestHealthAndReady(t *testing.T) {
	// Before any engine: healthy but not ready.
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if resp, body := get(t, ts.URL+"/healthz"); resp.StatusCode != 200 || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != 503 {
		t.Errorf("readyz before load: %d, want 503", resp.StatusCode)
	}
	// Query endpoints shed with 503 + Retry-After until a snapshot lands.
	if resp, _ := post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 1}); resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
		t.Errorf("similar before load: %d Retry-After=%q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if err := s.SetEngine(testEngine(t), "(test)"); err != nil {
		t.Fatal(err)
	}
	if resp, body := get(t, ts.URL+"/readyz"); resp.StatusCode != 200 || !strings.Contains(string(body), "ready") {
		t.Errorf("readyz after load: %d %q", resp.StatusCode, body)
	}
}

func TestSimilarEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 2})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type %q", ct)
	}
	var out struct {
		Matches []MatchJSON `json:"matches"`
		Stats   StatsJSON   `json:"stats"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decode: %v in %s", err, raw)
	}
	if len(out.Matches) != 2 {
		t.Fatalf("matches = %d, want 2: %s", len(out.Matches), raw)
	}
	// A square query must rank a square image first, exactly.
	if out.Matches[0].Distance > 1e-6 {
		t.Errorf("best distance %v", out.Matches[0].Distance)
	}
	if out.Stats.Iterations <= 0 {
		t.Errorf("stats missing: %+v", out.Stats)
	}
	// Result must be identical to calling the library directly.
	eng := testEngine(t)
	want, _, err := eng.FindSimilar(sq(0, 0, 12), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].ShapeID != out.Matches[i].ShapeID || want[i].ImageID != out.Matches[i].ImageID {
			t.Errorf("rank %d: got shape %d image %d, want shape %d image %d",
				i, out.Matches[i].ShapeID, out.Matches[i].ImageID, want[i].ShapeID, want[i].ImageID)
		}
	}
}

func TestApproximateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := post(t, ts.URL+"/v1/approximate", map[string]any{"shape": wireL(), "k": 3})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Matches []MatchJSON `json:"matches"`
		Stats   StatsJSON   `json:"stats"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Stats.UsedHashing {
		t.Error("approximate endpoint must report used_hashing")
	}
	for _, m := range out.Matches {
		if !m.Approximate {
			t.Errorf("match %+v not flagged approximate", m)
		}
	}
}

func TestSketchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Image 0 and 4 hold a big square; image 4 holds square + L.
	body := map[string]any{
		"shapes": []WireShape{
			{Points: [][2]float64{{0, 0}, {20, 0}, {20, 20}, {0, 20}}, Closed: true},
			{Points: [][2]float64{{0, 0}, {3, 0}, {3, 1.5}, {1.5, 1.5}, {1.5, 4.5}, {0, 4.5}}, Closed: true},
		},
		"k": 3,
	}
	resp, raw := post(t, ts.URL+"/v1/sketch", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Matches []SketchMatchJSON `json:"matches"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) == 0 {
		t.Fatalf("no sketch matches: %s", raw)
	}
	if out.Matches[0].ImageID != 4 {
		t.Errorf("best image = %d, want 4 (square + L): %s", out.Matches[0].ImageID, raw)
	}
	if len(out.Matches[0].PerShape) != 2 {
		t.Errorf("per_shape = %v", out.Matches[0].PerShape)
	}
}

func TestTopologicalEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := map[string]any{
		"query": "similar(q)",
		"binds": map[string]WireShape{"q": wireL()},
	}
	resp, raw := post(t, ts.URL+"/v1/topological", body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Images []int  `json:"images"`
		Plan   string `json:"plan"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Plan == "" {
		t.Error("missing plan")
	}
	// Images 3 and 4 contain L-shapes.
	found := map[int]bool{}
	for _, id := range out.Images {
		found[id] = true
	}
	if !found[3] || !found[4] {
		t.Errorf("images = %v, want 3 and 4 present", out.Images)
	}
	// Malformed query language → 422.
	resp, _ = post(t, ts.URL+"/v1/topological", map[string]any{"query": "similar(("})
	if resp.StatusCode != 422 {
		t.Errorf("bad query: %d, want 422", resp.StatusCode)
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name string
		path string
		body any
		want int
	}{
		{"malformed JSON", "/v1/similar", `{"shape": {`, 400},
		{"empty body", "/v1/similar", ``, 400},
		{"non-simple shape", "/v1/similar", map[string]any{"shape": wireBowtie(), "k": 1}, 422},
		{"k zero", "/v1/similar", map[string]any{"shape": wireSquare()}, 422},
		{"too few vertices", "/v1/similar", map[string]any{"shape": WireShape{Points: [][2]float64{{0, 0}, {1, 1}}, Closed: true}, "k": 1}, 422},
		{"approximate bowtie", "/v1/approximate", map[string]any{"shape": wireBowtie(), "k": 1}, 422},
		{"sketch empty", "/v1/sketch", map[string]any{"shapes": []WireShape{}, "k": 1}, 422},
		{"sketch bad shape", "/v1/sketch", map[string]any{"shapes": []WireShape{wireBowtie()}, "k": 1}, 422},
		{"sketch malformed", "/v1/sketch", `[1,2`, 400},
		{"topological empty query", "/v1/topological", map[string]any{"query": ""}, 422},
		{"topological bad bind", "/v1/topological", map[string]any{"query": "similar(q)", "binds": map[string]WireShape{"q": wireBowtie()}}, 422},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := post(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.want, raw)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
				t.Errorf("error body missing: %s", raw)
			}
		})
	}
	// Wrong method → 405 with Allow.
	resp, _ := get(t, ts.URL+"/v1/similar")
	if resp.StatusCode != 405 || resp.Header.Get("Allow") != "POST" {
		t.Errorf("GET similar: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	resp, _ := post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 1})
	if resp.StatusCode != 400 {
		t.Errorf("oversized body: %d, want 400", resp.StatusCode)
	}
}

func TestOverloadSheds429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond})
	// Occupy the only in-flight slot and the only queue slot directly, so
	// the next HTTP arrival overflows the queue deterministically.
	if err := s.limiter.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer s.limiter.release()
	parked := make(chan error, 1)
	go func() { parked <- s.limiter.acquire(context.Background()) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.limiter.queueDepth() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	resp, raw := post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 1})
	if resp.StatusCode != 429 {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	<-parked // the queued waiter sheds with 503 after QueueWait
	// Shed counter moved.
	if got := s.metrics.endpoint("similar").shed.Load(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	// After load drains, the endpoint serves again.
	s.limiter.release()
	defer func() {
		if err := s.limiter.acquire(context.Background()); err != nil {
			t.Errorf("re-acquire for balanced deferred release: %v", err)
		}
	}()
	resp, raw = post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 1})
	if resp.StatusCode != 200 {
		t.Fatalf("post-overload status %d: %s", resp.StatusCode, raw)
	}
}

func TestStatzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Drive one request of each kind so counters move. The sketch search
	// is the one that exercises the single engine's fan-out planner.
	post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 1})
	post(t, ts.URL+"/v1/similar", `{"oops`)
	post(t, ts.URL+"/v1/sketch", map[string]any{"shapes": []WireShape{wireSquare(), wireL()}, "k": 1})

	resp, raw := get(t, ts.URL+"/statz")
	if resp.StatusCode != 200 {
		t.Fatalf("statz: %d", resp.StatusCode)
	}
	var st Statz
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("statz decode: %v in %s", err, raw)
	}
	if !st.Ready || st.Snapshot == nil || st.Snapshot.Shapes != 8 {
		t.Errorf("statz = %s", raw)
	}
	if st.Schema != StatzSchema {
		t.Errorf("statz schema = %d, want %d", st.Schema, StatzSchema)
	}
	// The sched section reports the engine's scheduler: the gauge is
	// idle between requests, and the sketch search above planned exactly
	// one execution (a single Engine plans only its sketch fan-out).
	if st.Sched == nil {
		t.Fatalf("statz has no sched section: %s", raw)
	}
	if st.Sched.InFlight != 0 {
		t.Errorf("sched.in_flight = %d, want 0 between requests", st.Sched.InFlight)
	}
	if st.Sched.PlansFanout+st.Sched.PlansSequential != 1 {
		t.Errorf("sched plans = %d fanout + %d sequential, want 1 total", st.Sched.PlansFanout, st.Sched.PlansSequential)
	}
	// Schema 3: the storage section reports how the snapshot is held.
	// SetEngine installs a heap-built engine, so nothing is mapped.
	if st.Storage == nil || st.Storage.LoadMode != "heap" || st.Storage.MappedBytes != 0 {
		t.Errorf("storage section = %+v, want heap with no mapping", st.Storage)
	}
	sim, ok := st.Endpoints["similar"]
	if !ok {
		t.Fatalf("no similar endpoint in statz: %s", raw)
	}
	if sim.Requests != 2 || sim.Status4x != 1 {
		t.Errorf("similar endpoint stats = %+v", sim)
	}
	// The successful similar search evaluated candidates, so the block
	// accounting must have moved for the endpoint that ran it.
	if sim.BlockReads <= 0 {
		t.Errorf("similar block_reads = %d, want > 0", sim.BlockReads)
	}
	if sim.P50Ms <= 0 || sim.P99Ms < sim.P50Ms {
		t.Errorf("latency quantiles implausible: %+v", sim)
	}
	// Every endpoint is pre-registered even without traffic.
	for _, name := range []string{"approximate", "sketch", "topological", "admin_reload"} {
		if _, ok := st.Endpoints[name]; !ok {
			t.Errorf("endpoint %q missing from statz", name)
		}
	}

	// /metrics is a flat expvar-style JSON document embedding the same data.
	resp, raw = get(t, ts.URL+"/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var vars struct {
		Geosird Statz `json:"geosird"`
		Process struct {
			Alloc      uint64 `json:"alloc"`
			Goroutines int    `json:"goroutines"`
		} `json:"process"`
	}
	if err := json.Unmarshal(raw, &vars); err != nil {
		t.Fatalf("metrics decode: %v in %s", err, raw)
	}
	if vars.Geosird.Endpoints["similar"].Requests != 2 || vars.Process.Goroutines <= 0 {
		t.Errorf("metrics = %s", raw)
	}
}

func saveSnapshot(t *testing.T, eng *geosir.Engine, name string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReloadEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	snapA := saveSnapshot(t, testEngine(t), "a.gsir")

	// Reload with no previous snapshot and no path → 400.
	resp, _ := post(t, ts.URL+"/admin/reload", "")
	if resp.StatusCode != 400 {
		t.Errorf("pathless reload before boot: %d, want 400", resp.StatusCode)
	}
	// Load A explicitly.
	resp, raw := post(t, ts.URL+"/admin/reload", map[string]string{"path": snapA})
	if resp.StatusCode != 200 {
		t.Fatalf("reload: %d %s", resp.StatusCode, raw)
	}
	var out reloadResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Images != 5 || out.Shapes != 8 || out.Format != "GSIR2" {
		t.Errorf("reload response = %+v", out)
	}
	if resp, _ := get(t, ts.URL+"/readyz"); resp.StatusCode != 200 {
		t.Error("not ready after reload")
	}
	// Empty body now re-reads the active snapshot path.
	resp, raw = post(t, ts.URL+"/admin/reload", "")
	if resp.StatusCode != 200 {
		t.Fatalf("implicit reload: %d %s", resp.StatusCode, raw)
	}
	// A missing file fails the reload and leaves the old engine serving.
	resp, _ = post(t, ts.URL+"/admin/reload", map[string]string{"path": filepath.Join(t.TempDir(), "gone.gsir")})
	if resp.StatusCode != 422 {
		t.Errorf("missing snapshot reload: %d, want 422", resp.StatusCode)
	}
	if resp, _ := post(t, ts.URL+"/v1/similar", map[string]any{"shape": wireSquare(), "k": 1}); resp.StatusCode != 200 {
		t.Error("old engine must keep serving after failed reload")
	}
	// GET → 405.
	if resp, _ := get(t, ts.URL+"/admin/reload"); resp.StatusCode != 405 {
		t.Error("GET reload should 405")
	}
}

// TestReloadUnderTraffic hammers the query endpoints while snapshots swap
// repeatedly; no request may fail, and every response must come from a
// fully-loaded engine (the two bases answer with disjoint image-count
// signatures, never a mix).
func TestReloadUnderTraffic(t *testing.T) {
	s := New(Config{MaxInFlight: 32, MaxQueue: 1024, QueueWait: 5 * time.Second})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Base A: 5 images (testEngine). Base B: 3 images of squares only.
	engB := geosir.New(geosir.DefaultOptions())
	for id := 0; id < 3; id++ {
		if err := engB.AddImage(id, []geosir.Shape{sq(0, 0, float64(5+id))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := engB.Freeze(); err != nil {
		t.Fatal(err)
	}
	snapA := saveSnapshot(t, testEngine(t), "a.gsir")
	snapB := saveSnapshot(t, engB, "b.gsir")
	if _, err := s.LoadSnapshot(snapA); err != nil {
		t.Fatal(err)
	}

	const clients = 8
	var failures atomic.Int64
	var served atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{"shape": wireSquare(), "k": 3})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/similar", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Errorf("request failed during reload: %d %s", resp.StatusCode, raw)
					failures.Add(1)
					continue
				}
				var out struct {
					Matches []MatchJSON `json:"matches"`
				}
				if err := json.Unmarshal(raw, &out); err != nil || len(out.Matches) == 0 {
					t.Errorf("bad response during reload: %v %s", err, raw)
					failures.Add(1)
					continue
				}
				served.Add(1)
			}
		}()
	}
	// Swap snapshots back and forth while traffic flows.
	for i := 0; i < 10; i++ {
		path := snapA
		if i%2 == 0 {
			path = snapB
		}
		if _, err := s.LoadSnapshot(path); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d failed requests during reloads (%d served)", failures.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no traffic served")
	}
	if got := s.metrics.reloads.Load(); got < 11 {
		t.Errorf("reload counter = %d, want ≥ 11", got)
	}
}
