// Package annindex is the sublinear candidate-generation tier in front
// of the exact match kernel: a MinHash + LSH-banding index over the
// rasterized boundaries of normalized shape copies, after "Locality
// Sensitive Hashing for Efficient Similar Polygon Retrieval"
// (arXiv:2101.04339) and PolyMinHash (arXiv:2511.16576).
//
// Every normalized entry's boundary is sampled into cells of a fixed
// grid over the lune frame; the cell set's MinHash signature (Bands ×
// Rows hashes) is stored, and each band of Rows hashes is keyed into a
// bucket map. Two shapes whose normalized boundaries overlap heavily
// share most cells, so their signatures agree position-wise with
// probability equal to the cell-set Jaccard similarity and they collide
// in at least one band with probability 1-(1-J^Rows)^Bands.
//
// Construction is deterministic: signatures depend only on the entry
// polygons and Params (no time, no random state), so a rebuilt index is
// byte-identical to a persisted one and snapshot round-trips stay
// canonical.
//
// The index never answers a query by itself. In verify mode it only
// orders the candidates the exact kernel was going to evaluate anyway;
// in approximate mode it emits a candidate set that the admissible
// bounded evaluators then verify (DESIGN.md §4.10).
package annindex

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// Params fix the signature family. Two indexes (or an index and a
// query signature) are comparable only under identical Params.
type Params struct {
	// GridRes is the rasterization resolution: cells per unit length of
	// the normalized (lune) frame, so the cell side is 1/GridRes.
	GridRes int
	// Bands and Rows shape the LSH banding: Bands×Rows total hashes,
	// Rows hashes per bucket key. More rows sharpen each band (fewer
	// false positives), more bands raise recall.
	Bands int
	Rows  int
	// Seed seeds the deterministic hash family.
	Seed uint64
}

// DefaultParams are tuned on the 400-image demo base (see BENCH_ann.json):
// cell side ≈ 0.05 diameters absorbs query distortion, 16 bands × 2 rows
// keeps band collisions likely down to moderate similarity.
func DefaultParams() Params {
	return Params{GridRes: 20, Bands: 16, Rows: 2, Seed: 0x67736972616e6e31}
}

// hashCount is the signature length.
func (p Params) hashCount() int { return p.Bands * p.Rows }

// The raster grid covers the normalized frame: canonical copies live in
// the lune (x ∈ [0,1], |y| ≤ √3/2) and α-diameter copies may spill
// slightly, so the box is padded; points outside clamp to the border.
const (
	boxMinX = -0.5
	boxMinY = -1.0
	boxSpan = 2.0
)

func cellOf(x, y float64, res int) uint32 {
	w := 2 * res
	ix := int((x - boxMinX) * float64(res))
	iy := int((y - boxMinY) * float64(res))
	if ix < 0 {
		ix = 0
	} else if ix >= w {
		ix = w - 1
	}
	if iy < 0 {
		iy = 0
	} else if iy >= w {
		iy = w - 1
	}
	return uint32(iy*w + ix)
}

// appendCells rasterizes a polygon boundary into grid cells: each edge
// is sampled at half-cell steps (no cell on the path is skipped), and
// the result is sorted and deduplicated. dst is reused scratch.
func appendCells(dst []uint32, poly geom.Poly, res int) []uint32 {
	pts := poly.Pts
	n := len(pts)
	if n == 0 {
		return dst[:0]
	}
	dst = append(dst[:0], cellOf(pts[0].X, pts[0].Y, res))
	step := 0.5 / float64(res)
	edges := n
	if !poly.Closed {
		edges = n - 1
	}
	for i := 0; i < edges; i++ {
		a, b := pts[i], pts[(i+1)%n]
		dx, dy := b.X-a.X, b.Y-a.Y
		k := int(math.Hypot(dx, dy)/step) + 1
		for j := 1; j <= k; j++ {
			t := float64(j) / float64(k)
			dst = append(dst, cellOf(a.X+t*dx, a.Y+t*dy, res))
		}
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	out := dst[:1]
	for _, c := range dst[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// mix64 is the splitmix64 finalizer: a cheap, well-mixed 64-bit hash.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// signatureInto fills sig (length hashCount) with the cell set's MinHash
// signature: sig[h] = min over cells of the h-th hash of the cell.
func (p Params) signatureInto(sig []uint64, cells []uint32) {
	for h := range sig {
		sig[h] = math.MaxUint64
	}
	for _, c := range cells {
		base := mix64(p.Seed ^ (uint64(c) + 1))
		for h := range sig {
			v := mix64(base + uint64(h)*0x9E3779B97F4A7C15)
			if v < sig[h] {
				sig[h] = v
			}
		}
	}
}

// bandKey folds one band's Rows signature values into its bucket key.
func (p Params) bandKey(sig []uint64, band int) uint64 {
	k := p.Seed ^ (uint64(band+1) * 0x9E3779B97F4A7C15)
	for r := 0; r < p.Rows; r++ {
		k = mix64(k ^ sig[band*p.Rows+r])
	}
	return k
}

// ComputeSignatures returns the concatenated signatures of n entries
// (n × hashCount values), computed in parallel. polyAt must be safe for
// concurrent calls; the result depends only on Params and the polygons.
func ComputeSignatures(p Params, n int, polyAt func(i int) geom.Poly) []uint64 {
	h := p.hashCount()
	sigs := make([]uint64, n*h)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	const stride = 32
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var cells []uint32
			for {
				lo := int(next.Add(stride)) - stride
				if lo >= n {
					return
				}
				hi := lo + stride
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					cells = appendCells(cells, polyAt(i), p.GridRes)
					p.signatureInto(sigs[i*h:(i+1)*h], cells)
				}
			}
		}()
	}
	wg.Wait()
	return sigs
}

// Index is a frozen ANN index over one base's normalized entries.
// Immutable after construction; safe for any number of concurrent
// readers.
type Index struct {
	p       Params
	n       int
	sigs    []uint64 // n × hashCount, entry-major
	shapeOf []int32  // entry → shape id
	nShapes int
	buckets []map[uint64][]int32 // per band: bucket key → entry ids (ascending)
}

// Build computes signatures for n entries and assembles the index.
// at(i) returns the i-th entry's normalized polygon and its shape id and
// must be safe for concurrent calls.
func Build(p Params, n int, at func(i int) (geom.Poly, int32)) *Index {
	shapeOf := make([]int32, n)
	for i := 0; i < n; i++ {
		_, shapeOf[i] = at(i)
	}
	sigs := ComputeSignatures(p, n, func(i int) geom.Poly {
		poly, _ := at(i)
		return poly
	})
	return FromSignatures(p, sigs, shapeOf)
}

// FromSignatures assembles an index from precomputed (typically
// persisted) signatures. len(sigs) must be len(shapeOf) × hashCount.
func FromSignatures(p Params, sigs []uint64, shapeOf []int32) *Index {
	n := len(shapeOf)
	ix := &Index{p: p, n: n, sigs: sigs, shapeOf: shapeOf}
	for _, s := range shapeOf {
		if int(s)+1 > ix.nShapes {
			ix.nShapes = int(s) + 1
		}
	}
	ix.buckets = make([]map[uint64][]int32, p.Bands)
	for b := range ix.buckets {
		ix.buckets[b] = make(map[uint64][]int32)
	}
	h := p.hashCount()
	for i := 0; i < n; i++ {
		sig := sigs[i*h : (i+1)*h]
		for b := 0; b < p.Bands; b++ {
			key := p.bandKey(sig, b)
			ix.buckets[b][key] = append(ix.buckets[b][key], int32(i))
		}
	}
	return ix
}

// Params returns the signature family the index was built under.
func (ix *Index) Params() Params { return ix.p }

// NumEntries returns the number of indexed entries.
func (ix *Index) NumEntries() int { return ix.n }

// Signatures returns the concatenated entry signatures (entry-major).
// The slice is the index's own storage: callers must not mutate it.
func (ix *Index) Signatures() []uint64 { return ix.sigs }

// Signature computes the query-side signature of a normalized polygon.
func (ix *Index) Signature(poly geom.Poly) []uint64 {
	sig := make([]uint64, ix.p.hashCount())
	ix.p.signatureInto(sig, appendCells(nil, poly, ix.p.GridRes))
	return sig
}

// Candidates is one probe's result: entries and shapes ordered best-
// first by signature agreement (ties broken on ascending id, so the
// ordering is deterministic).
type Candidates struct {
	// Entries are candidate entry ids, best-first; Scores holds the
	// aligned agreement counts (matching signature positions, 0..H).
	Entries []int32
	Scores  []int32
	// Shapes are the candidates' shape ids, deduplicated in best-first
	// order (each shape appears at its best entry's position);
	// ShapeScores holds the aligned best-entry agreement counts.
	Shapes      []int
	ShapeScores []int32
	// Probes counts the LSH buckets probed.
	Probes int
	// Scanned reports that bucket probing fell short of minShapes and
	// the floor was met by ranking all signatures directly.
	Scanned bool
}

// agreement counts signature positions where entry ei matches sig.
func (ix *Index) agreement(sig []uint64, ei int32) int32 {
	h := ix.p.hashCount()
	base := int(ei) * h
	var c int32
	for i := 0; i < h; i++ {
		if ix.sigs[base+i] == sig[i] {
			c++
		}
	}
	return c
}

// Probe collects the entries colliding with sig in any band, ranks them
// by signature agreement, and dedupes to shapes. If the buckets yield
// fewer than minShapes distinct shapes, the floor is met by ranking
// every entry's signature directly — a linear pass over cheap integer
// compares, not geometry, so the expensive exact evaluations stay
// bounded by the candidate list. The result is deterministic for a
// given index and signature.
func (ix *Index) Probe(sig []uint64, minShapes int) Candidates {
	var out Candidates
	if ix.n == 0 {
		return out
	}
	if minShapes > ix.nShapes {
		minShapes = ix.nShapes
	}
	seen := make(map[int32]struct{})
	for b := 0; b < ix.p.Bands; b++ {
		out.Probes++
		for _, ei := range ix.buckets[b][ix.p.bandKey(sig, b)] {
			if _, dup := seen[ei]; !dup {
				seen[ei] = struct{}{}
				out.Entries = append(out.Entries, ei)
			}
		}
	}
	shapeCount := func(entries []int32) int {
		hit := make(map[int32]struct{}, len(entries))
		for _, ei := range entries {
			hit[ix.shapeOf[ei]] = struct{}{}
		}
		return len(hit)
	}
	if shapeCount(out.Entries) < minShapes {
		// Floor unmet: rank the whole base by agreement and cut at the
		// first point covering minShapes shapes. The bucket hits are a
		// subset of this ranking (bucket collision implies agreement), so
		// nothing found above is lost.
		out.Scanned = true
		all := make([]int32, ix.n)
		for i := range all {
			all[i] = int32(i)
		}
		scores := make([]int32, ix.n)
		for i := range scores {
			scores[i] = ix.agreement(sig, int32(i))
		}
		sort.Slice(all, func(i, j int) bool {
			if scores[all[i]] != scores[all[j]] {
				return scores[all[i]] > scores[all[j]]
			}
			return all[i] < all[j]
		})
		hit := make(map[int32]struct{}, minShapes)
		cut := 0
		for cut < len(all) && len(hit) < minShapes {
			hit[ix.shapeOf[all[cut]]] = struct{}{}
			cut++
		}
		out.Entries = all[:cut]
		out.Scores = make([]int32, cut)
		for i, ei := range out.Entries {
			out.Scores[i] = scores[ei]
		}
	} else {
		out.Scores = make([]int32, len(out.Entries))
		for i, ei := range out.Entries {
			out.Scores[i] = ix.agreement(sig, ei)
		}
		sort.Sort(byScore{out.Entries, out.Scores})
	}
	shapeSeen := make(map[int32]struct{}, len(out.Entries))
	for i, ei := range out.Entries {
		s := ix.shapeOf[ei]
		if _, dup := shapeSeen[s]; !dup {
			shapeSeen[s] = struct{}{}
			out.Shapes = append(out.Shapes, int(s))
			out.ShapeScores = append(out.ShapeScores, out.Scores[i])
		}
	}
	return out
}

// byScore sorts entries by descending score, ascending entry id.
type byScore struct {
	ents   []int32
	scores []int32
}

func (s byScore) Len() int { return len(s.ents) }
func (s byScore) Less(i, j int) bool {
	if s.scores[i] != s.scores[j] {
		return s.scores[i] > s.scores[j]
	}
	return s.ents[i] < s.ents[j]
}
func (s byScore) Swap(i, j int) {
	s.ents[i], s.ents[j] = s.ents[j], s.ents[i]
	s.scores[i], s.scores[j] = s.scores[j], s.scores[i]
}
