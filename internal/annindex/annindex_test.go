package annindex

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// ngon builds a regular n-gon of radius r centered at (cx, cy), with
// per-vertex jitter drawn from rng.
func ngon(rng *rand.Rand, n int, cx, cy, r, jitter float64) geom.Poly {
	pts := make([]geom.Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		rr := r * (1 + jitter*(2*rng.Float64()-1))
		pts[i] = geom.Pt(cx+rr*math.Cos(a), cy+rr*math.Sin(a))
	}
	return geom.NewPolygon(pts...)
}

func TestSignatureDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := DefaultParams()
	poly := ngon(rng, 9, 0.5, 0.1, 0.4, 0.2)
	polys := []geom.Poly{poly}
	a := ComputeSignatures(p, 1, func(i int) geom.Poly { return polys[i] })
	b := ComputeSignatures(p, 1, func(i int) geom.Poly { return polys[i] })
	if len(a) != p.hashCount() {
		t.Fatalf("signature length %d, want %d", len(a), p.hashCount())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("signature not deterministic at position %d", i)
		}
	}
}

func TestSimilarShapesAgreeMoreThanDissimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := DefaultParams()
	base := ngon(rng, 12, 0.5, 0.0, 0.45, 0)
	near := geom.NewPolygon(base.Pts...)
	near.Pts = append([]geom.Point(nil), base.Pts...)
	for i := range near.Pts {
		near.Pts[i].X += 0.004 * (2*rng.Float64() - 1)
		near.Pts[i].Y += 0.004 * (2*rng.Float64() - 1)
	}
	far := ngon(rng, 3, 0.5, 0.0, 0.45, 0)

	polys := []geom.Poly{base, near, far}
	ix := Build(p, len(polys), func(i int) (geom.Poly, int32) { return polys[i], int32(i) })
	sig := ix.Signature(base)
	nearAgree := ix.agreement(sig, 1)
	farAgree := ix.agreement(sig, 2)
	if nearAgree <= farAgree {
		t.Fatalf("near shape agreement %d not above far shape agreement %d", nearAgree, farAgree)
	}
	cand := ix.Probe(sig, 0)
	if len(cand.Shapes) == 0 {
		t.Fatalf("probe found no candidates for an indexed shape")
	}
	if cand.Shapes[0] != 0 {
		t.Fatalf("probe ranked shape %d first, want the identical shape 0", cand.Shapes[0])
	}
}

func TestProbeFloorScansWhenBucketsMiss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := DefaultParams()
	polys := make([]geom.Poly, 20)
	for i := range polys {
		polys[i] = ngon(rng, 5+i%5, 0.5, 0.0, 0.3, 0.3)
	}
	ix := Build(p, len(polys), func(i int) (geom.Poly, int32) { return polys[i], int32(i) })
	// A signature of an un-indexed frame corner: buckets will likely
	// miss, the floor must still be met by the signature scan.
	probe := ix.Probe(ix.Signature(ngon(rng, 32, -0.3, -0.8, 0.05, 0)), 7)
	if len(probe.Shapes) < 7 {
		t.Fatalf("probe returned %d shapes, want the floor of 7", len(probe.Shapes))
	}
	if probe.Probes != p.Bands {
		t.Fatalf("probe count %d, want %d", probe.Probes, p.Bands)
	}
}

func TestProbeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := DefaultParams()
	polys := make([]geom.Poly, 50)
	for i := range polys {
		polys[i] = ngon(rng, 6+i%7, 0.5, 0.0, 0.4, 0.2)
	}
	ix := Build(p, len(polys), func(i int) (geom.Poly, int32) { return polys[i], int32(i / 2) })
	ix2 := FromSignatures(p, append([]uint64(nil), ix.Signatures()...), func() []int32 {
		so := make([]int32, len(polys))
		for i := range so {
			so[i] = int32(i / 2)
		}
		return so
	}())
	sig := ix.Signature(polys[17])
	a := ix.Probe(sig, 10)
	b := ix2.Probe(sig, 10)
	if len(a.Shapes) != len(b.Shapes) {
		t.Fatalf("rebuilt index probe differs: %d vs %d shapes", len(a.Shapes), len(b.Shapes))
	}
	for i := range a.Shapes {
		if a.Shapes[i] != b.Shapes[i] {
			t.Fatalf("rebuilt index probe differs at %d: %d vs %d", i, a.Shapes[i], b.Shapes[i])
		}
	}
	for i := range a.Entries {
		if a.Entries[i] != b.Entries[i] || a.Scores[i] != b.Scores[i] {
			t.Fatalf("rebuilt index entries differ at %d", i)
		}
	}
}
