// Package envelope implements the ε-envelope of a query shape (§2.3 of
// the paper): the "fattened" region of all points within distance ε of
// the shape's boundary, together with the triangle decomposition of an
// envelope difference (ε_i-envelope − ε_{i-1}-envelope) that the matching
// algorithm feeds to the simplex range-search structures.
//
// Membership uses the exact boundary distance, so the envelope family is
// monotone in ε (a point inside the ε-envelope is inside every larger
// envelope) — the property the incremental fattening algorithm relies on.
// The triangle decomposition is a *cover* of the annular difference region
// built from one offset strip per edge side plus one cap box per vertex
// (O(m) triangles for an m-edge shape). The cover may slightly exceed the
// exact annulus near vertices; the matching algorithm filters every
// reported candidate through the exact distance test, so overcoverage
// costs a constant factor of filtering and never correctness.
package envelope

import (
	"math"

	"fmt"

	"repro/internal/geom"
	"repro/internal/shapeindex"
)

// Envelope answers distance and ε-membership queries for a fixed shape.
type Envelope struct {
	shape geom.Poly
	grid  *shapeindex.SegmentGrid
}

// New builds an Envelope for the given shape. The shape must have at
// least one edge.
func New(shape geom.Poly) (*Envelope, error) {
	if shape.NumEdges() == 0 {
		return nil, fmt.Errorf("envelope: shape has no edges")
	}
	return &Envelope{
		shape: shape.Clone(),
		grid:  shapeindex.NewSegmentGrid(shape.Edges()),
	}, nil
}

// Shape returns the underlying shape.
func (e *Envelope) Shape() geom.Poly { return e.shape }

// Dist returns the distance from p to the shape's boundary.
func (e *Envelope) Dist(p geom.Point) float64 { return e.grid.Dist(p) }

// Contains reports whether p lies inside the eps-envelope, i.e. within
// distance eps of the boundary.
func (e *Envelope) Contains(p geom.Point, eps float64) bool {
	return e.grid.Dist(p) <= eps
}

// InAnnulus reports whether p lies in the difference region between the
// rOut- and rIn-envelopes: rIn < dist(p) ≤ rOut.
func (e *Envelope) InAnnulus(p geom.Point, rIn, rOut float64) bool {
	d := e.grid.Dist(p)
	return d > rIn && d <= rOut
}

// AnnulusTriangles returns O(m) triangles covering every point p with
// rIn < dist(p, boundary) ≤ rOut. For rIn = 0 this covers the whole
// rOut-envelope. rOut must be positive and at least rIn.
func (e *Envelope) AnnulusTriangles(rIn, rOut float64) []geom.Triangle {
	if rOut <= 0 {
		return nil
	}
	m := e.shape.NumEdges()
	out := make([]geom.Triangle, 0, 4*m+2*len(e.shape.Pts))
	for i := 0; i < m; i++ {
		edge := e.shape.Edge(i)
		n := edge.Dir().Unit().Perp()
		// Two offset strips, one on each side of the edge. For an annulus
		// (rIn > 0) each strip spans offsets [rIn, rOut]; points closer
		// than rIn to this edge may still be needed if another feature is
		// their nearest one, but those points are then covered by that
		// feature's strip or cap.
		inner := rIn
		for _, side := range [2]float64{+1, -1} {
			a0 := edge.A.Add(n.Scale(side * inner))
			b0 := edge.B.Add(n.Scale(side * inner))
			a1 := edge.A.Add(n.Scale(side * rOut))
			b1 := edge.B.Add(n.Scale(side * rOut))
			out = append(out,
				geom.Tri(a0, b0, b1),
				geom.Tri(a0, b1, a1),
			)
		}
	}
	// Vertex caps: near each vertex the edge strips miss the circular caps
	// and annular wedges. A box of half-width rOut covers them; for
	// rIn > 0 the interior square of half-width rIn/√2 contains only
	// points strictly closer than rIn (Chebyshev ≤ rIn/√2 implies
	// Euclidean ≤ rIn), so a 4-rectangle frame suffices and avoids
	// re-reporting deep-inside vertices on every fattening iteration.
	h := rIn / math.Sqrt2
	for _, v := range e.shape.Pts {
		if rIn <= 0 {
			c := [4]geom.Point{
				v.Add(geom.Pt(-rOut, -rOut)),
				v.Add(geom.Pt(rOut, -rOut)),
				v.Add(geom.Pt(rOut, rOut)),
				v.Add(geom.Pt(-rOut, rOut)),
			}
			out = append(out,
				geom.Tri(c[0], c[1], c[2]),
				geom.Tri(c[0], c[2], c[3]),
			)
			continue
		}
		rects := [4]geom.Rect{
			{Min: v.Add(geom.Pt(-rOut, h)), Max: v.Add(geom.Pt(rOut, rOut))},   // top
			{Min: v.Add(geom.Pt(-rOut, -rOut)), Max: v.Add(geom.Pt(rOut, -h))}, // bottom
			{Min: v.Add(geom.Pt(-rOut, -h)), Max: v.Add(geom.Pt(-h, h))},       // left
			{Min: v.Add(geom.Pt(h, -h)), Max: v.Add(geom.Pt(rOut, h))},         // right
		}
		for _, r := range rects {
			c := r.Corners()
			out = append(out,
				geom.Tri(c[0], c[1], c[2]),
				geom.Tri(c[0], c[2], c[3]),
			)
		}
	}
	return out
}

// BandTriangles returns triangles covering the full r-envelope
// (equivalent to AnnulusTriangles(0, r)).
func (e *Envelope) BandTriangles(r float64) []geom.Triangle {
	return e.AnnulusTriangles(0, r)
}
