package envelope

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// The triangle cover must stay O(m): exact counts per construction.
func TestCoverSizeLinearInEdges(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32} {
		pts := make([]geom.Point, n)
		for i := range pts {
			a := 2 * math.Pi * float64(i) / float64(n)
			pts[i] = geom.Pt(math.Cos(a), math.Sin(a))
		}
		e, err := New(geom.NewPolygon(pts...))
		if err != nil {
			t.Fatal(err)
		}
		// Band: 4 per edge + 2 per vertex = 6n.
		if got := len(e.BandTriangles(0.1)); got != 6*n {
			t.Errorf("n=%d: band cover = %d, want %d", n, got, 6*n)
		}
		// Annulus: 4 per edge + 8 per vertex = 12n.
		if got := len(e.AnnulusTriangles(0.05, 0.1)); got != 12*n {
			t.Errorf("n=%d: annulus cover = %d, want %d", n, got, 12*n)
		}
	}
}

// The annulus cover must not include deep-interior regions: points well
// inside the inner envelope should rarely be covered (the frame
// construction excludes the inner Chebyshev square).
func TestAnnulusCoverExcludesDeepInterior(t *testing.T) {
	sqp := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10))
	e, err := New(sqp)
	if err != nil {
		t.Fatal(err)
	}
	rIn, rOut := 2.0, 2.5
	tris := e.AnnulusTriangles(rIn, rOut)
	covered := func(p geom.Point) bool {
		for _, tr := range tris {
			if tr.Contains(p) {
				return true
			}
		}
		return false
	}
	// The square's center is 5 away from the boundary — far inside rIn.
	if covered(geom.Pt(5, 5)) {
		t.Error("deep interior point covered by annulus triangles")
	}
	// A point at distance ~0.5 (well under rIn) near an edge's middle.
	if covered(geom.Pt(5, 0.5)) {
		t.Error("near-boundary interior point under rIn covered by edge strips")
	}
}

// Envelope distances must agree with the brute-force edge scan.
func TestEnvelopeDistMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			a := 2 * math.Pi * float64(i) / float64(n)
			r := 1 + rng.Float64()
			pts[i] = geom.Pt(r*math.Cos(a), r*math.Sin(a))
		}
		p := geom.NewPolygon(pts...)
		if p.Validate() != nil {
			continue
		}
		e, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 40; q++ {
			pt := geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
			want := p.DistToPoint(pt)
			if got := e.Dist(pt); math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("trial %d: Dist(%v) = %v, brute %v", trial, pt, got, want)
			}
		}
	}
}

// Open polylines get envelopes too (the shape base stores open chains).
func TestEnvelopeOpenChain(t *testing.T) {
	line := geom.NewPolyline(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4))
	e, err := New(line)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Contains(geom.Pt(2, 0.3), 0.4) {
		t.Error("point near the chain should be inside")
	}
	if e.Contains(geom.Pt(0, 4), 1) {
		t.Error("the far corner is ~4 away from the L-chain")
	}
	tris := e.AnnulusTriangles(0.2, 0.5)
	// 2 edges × 4 + 3 vertices × 8 = 32.
	if len(tris) != 32 {
		t.Errorf("open-chain annulus cover = %d", len(tris))
	}
}
