package envelope

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func square() geom.Poly {
	return geom.NewPolygon(geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1))
}

func TestNewErrors(t *testing.T) {
	if _, err := New(geom.Poly{}); err == nil {
		t.Error("edgeless shape should fail")
	}
	if _, err := New(geom.NewPolyline(geom.Pt(0, 0))); err == nil {
		t.Error("single vertex should fail")
	}
}

func TestDistAndContains(t *testing.T) {
	e, err := New(square())
	if err != nil {
		t.Fatal(err)
	}
	// Center of unit square: boundary distance 0.5.
	if d := e.Dist(geom.Pt(0.5, 0.5)); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("center Dist = %v", d)
	}
	if !e.Contains(geom.Pt(0.5, 0.5), 0.5) {
		t.Error("center inside 0.5-envelope")
	}
	if e.Contains(geom.Pt(0.5, 0.5), 0.49) {
		t.Error("center outside 0.49-envelope")
	}
	// Outside point.
	if !e.Contains(geom.Pt(1.3, 0.5), 0.3+1e-12) {
		t.Error("(1.3,0.5) inside 0.3-envelope")
	}
	if e.Contains(geom.Pt(1.3, 0.5), 0.29) {
		t.Error("(1.3,0.5) outside 0.29-envelope")
	}
	// ε = 0 envelope coincides with the shape boundary.
	if !e.Contains(geom.Pt(0.5, 0), 0) {
		t.Error("boundary point in 0-envelope")
	}
	if e.Contains(geom.Pt(0.5, 0.01), 0) {
		t.Error("off-boundary point not in 0-envelope")
	}
}

func TestInAnnulus(t *testing.T) {
	e, _ := New(square())
	p := geom.Pt(1.2, 0.5) // distance 0.2 from the right edge
	if !e.InAnnulus(p, 0.1, 0.3) {
		t.Error("p in (0.1, 0.3] annulus")
	}
	if e.InAnnulus(p, 0.2, 0.3) {
		t.Error("annulus is open at the inner radius")
	}
	if !e.InAnnulus(p, 0.1, 0.2) {
		t.Error("annulus is closed at the outer radius")
	}
	if e.InAnnulus(p, 0.3, 0.5) {
		t.Error("p below inner radius")
	}
}

func TestEnvelopeMonotonicity(t *testing.T) {
	e, _ := New(square())
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64()*3-1, rng.Float64()*3-1)
		if e.Contains(p, 0.2) && !e.Contains(p, 0.5) {
			t.Fatalf("envelope not monotone at %v", p)
		}
	}
}

func TestBandTrianglesCount(t *testing.T) {
	e, _ := New(square())
	tris := e.BandTriangles(0.1)
	// 4 edges × 4 triangles + 4 vertices × 2 triangles = 24: O(m).
	if len(tris) != 24 {
		t.Errorf("triangle count = %d, want 24", len(tris))
	}
	if got := e.AnnulusTriangles(0.1, 0); got != nil {
		t.Errorf("non-positive outer radius should yield nil, got %d", len(got))
	}
}

// Every point of the annulus must be covered by at least one triangle.
func TestAnnulusTrianglesCover(t *testing.T) {
	shapes := []geom.Poly{
		square(),
		geom.NewPolyline(geom.Pt(0, 0), geom.Pt(1, 0.2), geom.Pt(2, 0)),
		geom.NewPolygon(geom.Pt(0, 0), geom.Pt(4, 0), geom.Pt(4, 4), geom.Pt(2, 2), geom.Pt(0, 4)),
	}
	rng := rand.New(rand.NewSource(13))
	for si, shape := range shapes {
		e, err := New(shape)
		if err != nil {
			t.Fatal(err)
		}
		cases := [][2]float64{{0, 0.15}, {0.1, 0.25}, {0.3, 0.6}}
		for _, c := range cases {
			rIn, rOut := c[0], c[1]
			tris := e.AnnulusTriangles(rIn, rOut)
			b := shape.Bounds().Expand(rOut + 0.1)
			covered := func(p geom.Point) bool {
				for _, tr := range tris {
					if tr.Contains(p) {
						return true
					}
				}
				return false
			}
			checked := 0
			for i := 0; i < 5000 && checked < 300; i++ {
				p := geom.Pt(
					b.Min.X+rng.Float64()*b.Width(),
					b.Min.Y+rng.Float64()*b.Height(),
				)
				if !e.InAnnulus(p, rIn, rOut) {
					continue
				}
				checked++
				if !covered(p) {
					t.Fatalf("shape %d annulus (%v,%v]: point %v (d=%v) uncovered",
						si, rIn, rOut, p, e.Dist(p))
				}
			}
			if checked == 0 {
				t.Fatalf("shape %d: no annulus samples found", si)
			}
		}
	}
}

// Property: envelope distance of points ON the boundary is 0, and the
// boundary is always inside every positive envelope.
func TestQuickBoundaryInEnvelope(t *testing.T) {
	e, _ := New(square())
	f := func(tRaw float64, epsRaw float64) bool {
		tt := math.Mod(math.Abs(tRaw), 1)
		eps := math.Mod(math.Abs(epsRaw), 2)
		// Walk the perimeter.
		p := square().Resample(64)[int(tt*63)]
		return e.Dist(p) < 1e-9 && e.Contains(p, eps)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
