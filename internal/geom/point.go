// Package geom provides the 2-D computational-geometry substrate used by
// GeoSIR: points, segments, polygons and polylines, similarity transforms,
// convex hulls, shape diameters, and the distance predicates on which the
// average-minimum-distance similarity measure is built.
//
// All coordinates are float64. The package is deliberately dependency-free
// (standard library only) and allocation-conscious: hot-path predicates
// operate on values, not pointers.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default tolerance used by approximate comparisons throughout
// the geometry layer. It is intentionally coarse relative to float64
// precision because shape coordinates are normalized to the unit diameter.
const Eps = 1e-9

// Point is a point (or vector) in the plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Neg returns -p.
func (p Point) Neg() Point { return Point{-p.X, -p.Y} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Angle returns the angle of p viewed as a vector, in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// Rotate returns p rotated about the origin by theta radians
// (counter-clockwise).
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c*p.X - s*p.Y, s*p.X + c*p.Y}
}

// Perp returns p rotated by +π/2 (a counter-clockwise perpendicular).
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Lerp returns the point p + t·(q-p); t=0 yields p and t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + t*(q.X-p.X), p.Y + t*(q.Y-p.Y)}
}

// Eq reports whether p and q coincide within tolerance eps.
func (p Point) Eq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// IsFinite reports whether both coordinates are finite numbers.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g, %.6g)", p.X, p.Y) }

// Orientation classifies the turn a→b→c:
// +1 for a counter-clockwise (left) turn, -1 for clockwise (right),
// 0 for collinear within Eps scaled by the magnitudes involved.
func Orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	// Scale the tolerance by the extent of the inputs so that the
	// classification is robust for both unit-normalized and raster-scale
	// coordinates.
	scale := math.Abs(b.X-a.X) + math.Abs(b.Y-a.Y) + math.Abs(c.X-a.X) + math.Abs(c.Y-a.Y)
	tol := Eps * (1 + scale*scale)
	switch {
	case v > tol:
		return +1
	case v < -tol:
		return -1
	default:
		return 0
	}
}

// Collinear reports whether a, b and c lie on a common line (within the
// Orientation tolerance).
func Collinear(a, b, c Point) bool { return Orientation(a, b, c) == 0 }

// SignedAngle returns the signed angle from vector u to vector v in
// (-π, π]. Positive angles are counter-clockwise.
func SignedAngle(u, v Point) float64 {
	return math.Atan2(u.Cross(v), u.Dot(v))
}

// InteriorAngle returns the non-reflex angle at vertex b of the chain
// a-b-c, in [0, π].
func InteriorAngle(a, b, c Point) float64 {
	u, v := a.Sub(b), c.Sub(b)
	nu, nv := u.Norm(), v.Norm()
	if nu == 0 || nv == 0 {
		return 0
	}
	cos := u.Dot(v) / (nu * nv)
	cos = math.Max(-1, math.Min(1, cos))
	return math.Acos(cos)
}
