package geom

import "fmt"

// Transform is a direct similarity transform of the plane: a rotation by
// Theta and uniform scaling by S about the origin, followed by a
// translation by T. It maps p to S·R(Theta)·p + T. Similarity transforms
// are exactly the normalizations used by the shape base (§2.4): they
// preserve shape up to translation, rotation, and scaling.
type Transform struct {
	S     float64 // uniform scale factor (> 0 for a valid transform)
	Theta float64 // rotation angle, radians, counter-clockwise
	T     Point   // translation applied last
}

// Identity returns the identity transform.
func Identity() Transform { return Transform{S: 1} }

// Translation returns the transform that translates by t.
func Translation(t Point) Transform { return Transform{S: 1, T: t} }

// Rotation returns the transform that rotates by theta about the origin.
func Rotation(theta float64) Transform { return Transform{S: 1, Theta: theta} }

// Scaling returns the transform that scales by s about the origin.
func Scaling(s float64) Transform { return Transform{S: s} }

// Apply maps the point p through t.
func (t Transform) Apply(p Point) Point {
	return p.Rotate(t.Theta).Scale(t.S).Add(t.T)
}

// ApplySegment maps both endpoints of s through t.
func (t Transform) ApplySegment(s Segment) Segment {
	return Segment{t.Apply(s.A), t.Apply(s.B)}
}

// Compose returns the transform equivalent to applying t first and then u:
// Compose(u, t).Apply(p) == u.Apply(t.Apply(p)).
func Compose(u, t Transform) Transform {
	// u(t(p)) = Su·R(θu)·(St·R(θt)·p + Tt) + Tu
	//         = Su·St·R(θu+θt)·p + (Su·R(θu)·Tt + Tu)
	return Transform{
		S:     u.S * t.S,
		Theta: u.Theta + t.Theta,
		T:     t.T.Rotate(u.Theta).Scale(u.S).Add(u.T),
	}
}

// Inverse returns the inverse transform. It panics if the scale is zero.
func (t Transform) Inverse() Transform {
	if t.S == 0 {
		panic("geom: cannot invert transform with zero scale")
	}
	inv := Transform{S: 1 / t.S, Theta: -t.Theta}
	inv.T = t.T.Rotate(inv.Theta).Scale(inv.S).Neg()
	return inv
}

// String implements fmt.Stringer.
func (t Transform) String() string {
	return fmt.Sprintf("Transform{s=%.6g θ=%.6g t=%v}", t.S, t.Theta, t.T)
}

// NormalizeOnto returns the similarity transform that maps point a to
// (0,0) and point b to (1,0). This is the paper's normalization about a
// diameter (§2.3): translate, rotate, and scale so that the chosen vertex
// pair is positioned at ((0,0),(1,0)). An error is returned if a and b
// coincide.
func NormalizeOnto(a, b Point) (Transform, error) {
	d := b.Sub(a)
	n := d.Norm()
	if n <= Eps {
		return Transform{}, fmt.Errorf("geom: cannot normalize onto coincident points %v, %v", a, b)
	}
	t := Transform{
		S:     1 / n,
		Theta: -d.Angle(),
	}
	// After rotation and scaling, a must land on the origin.
	t.T = a.Rotate(t.Theta).Scale(t.S).Neg()
	return t, nil
}
