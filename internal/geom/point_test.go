package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Neg(); got != Pt(-1, -2) {
		t.Errorf("Neg = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v", got)
	}
}

func TestPointNormDist(t *testing.T) {
	p := Pt(3, 4)
	if p.Norm() != 5 {
		t.Errorf("Norm = %v", p.Norm())
	}
	if p.Norm2() != 25 {
		t.Errorf("Norm2 = %v", p.Norm2())
	}
	if d := Pt(0, 0).Dist(p); d != 5 {
		t.Errorf("Dist = %v", d)
	}
	if d := Pt(0, 0).Dist2(p); d != 25 {
		t.Errorf("Dist2 = %v", d)
	}
}

func TestPointRotate(t *testing.T) {
	p := Pt(1, 0).Rotate(math.Pi / 2)
	if !p.Eq(Pt(0, 1), 1e-12) {
		t.Errorf("Rotate(π/2) = %v", p)
	}
	p = Pt(1, 0).Rotate(math.Pi)
	if !p.Eq(Pt(-1, 0), 1e-12) {
		t.Errorf("Rotate(π) = %v", p)
	}
}

func TestPointUnitPerp(t *testing.T) {
	u := Pt(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := Pt(0, 0).Unit(); got != Pt(0, 0) {
		t.Errorf("Unit(0) = %v", got)
	}
	if got := Pt(1, 0).Perp(); got != Pt(0, 1) {
		t.Errorf("Perp = %v", got)
	}
	if d := Pt(2, 5).Dot(Pt(2, 5).Perp()); d != 0 {
		t.Errorf("Perp not orthogonal: %v", d)
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := a.Lerp(b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestOrientation(t *testing.T) {
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(1, 1)) != 1 {
		t.Error("expected CCW")
	}
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(1, -1)) != -1 {
		t.Error("expected CW")
	}
	if Orientation(Pt(0, 0), Pt(1, 0), Pt(2, 0)) != 0 {
		t.Error("expected collinear")
	}
	if !Collinear(Pt(0, 0), Pt(1, 1), Pt(5, 5)) {
		t.Error("expected collinear diagonal")
	}
}

func TestSignedAngle(t *testing.T) {
	if a := SignedAngle(Pt(1, 0), Pt(0, 1)); !almostEq(a, math.Pi/2, 1e-12) {
		t.Errorf("SignedAngle = %v", a)
	}
	if a := SignedAngle(Pt(1, 0), Pt(0, -1)); !almostEq(a, -math.Pi/2, 1e-12) {
		t.Errorf("SignedAngle = %v", a)
	}
}

func TestInteriorAngle(t *testing.T) {
	// Right angle at origin.
	if a := InteriorAngle(Pt(1, 0), Pt(0, 0), Pt(0, 1)); !almostEq(a, math.Pi/2, 1e-12) {
		t.Errorf("InteriorAngle = %v", a)
	}
	// Straight line.
	if a := InteriorAngle(Pt(-1, 0), Pt(0, 0), Pt(1, 0)); !almostEq(a, math.Pi, 1e-12) {
		t.Errorf("straight InteriorAngle = %v", a)
	}
	// Degenerate zero vector.
	if a := InteriorAngle(Pt(0, 0), Pt(0, 0), Pt(1, 0)); a != 0 {
		t.Errorf("degenerate InteriorAngle = %v", a)
	}
}

func TestPointIsFinite(t *testing.T) {
	if !Pt(1, 2).IsFinite() {
		t.Error("finite point reported non-finite")
	}
	if Pt(math.NaN(), 0).IsFinite() || Pt(0, math.Inf(1)).IsFinite() {
		t.Error("non-finite point reported finite")
	}
}

// Property: rotation preserves norms and pairwise distances.
func TestQuickRotationIsometry(t *testing.T) {
	f := func(x, y, x2, y2 float64, theta float64) bool {
		if math.Abs(x) > 1e6 || math.Abs(y) > 1e6 || math.Abs(x2) > 1e6 || math.Abs(y2) > 1e6 {
			return true
		}
		theta = math.Mod(theta, 2*math.Pi)
		p, q := Pt(x, y), Pt(x2, y2)
		d0 := p.Dist(q)
		d1 := p.Rotate(theta).Dist(q.Rotate(theta))
		return almostEq(d0, d1, 1e-6*(1+d0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cross is antisymmetric and Dot symmetric.
func TestQuickCrossDotSymmetry(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 1e6) }
		p, q := Pt(clamp(a), clamp(b)), Pt(clamp(c), clamp(d))
		return p.Cross(q) == -q.Cross(p) && p.Dot(q) == q.Dot(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
