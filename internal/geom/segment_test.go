package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(3, 4))
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
	if s.Midpoint() != Pt(1.5, 2) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if s.Dir() != Pt(3, 4) {
		t.Errorf("Dir = %v", s.Dir())
	}
	if s.Reverse().A != s.B {
		t.Error("Reverse broken")
	}
	b := s.Bounds()
	if b.Min != Pt(0, 0) || b.Max != Pt(3, 4) {
		t.Errorf("Bounds = %v", b)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p    Point
		want Point
		dist float64
	}{
		{Pt(5, 3), Pt(5, 0), 3},
		{Pt(-2, 0), Pt(0, 0), 2},
		{Pt(14, 3), Pt(10, 0), 5},
		{Pt(7, 0), Pt(7, 0), 0},
	}
	for _, c := range cases {
		got := s.ClosestPoint(c.p)
		if !got.Eq(c.want, 1e-12) {
			t.Errorf("ClosestPoint(%v) = %v, want %v", c.p, got, c.want)
		}
		if d := s.DistToPoint(c.p); !almostEq(d, c.dist, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v, want %v", c.p, d, c.dist)
		}
	}
}

func TestSegmentDegenerateClosest(t *testing.T) {
	s := Seg(Pt(2, 2), Pt(2, 2)) // zero-length
	if got := s.ClosestPoint(Pt(5, 6)); got != Pt(2, 2) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
	if d := s.DistToPoint(Pt(5, 6)); d != 5 {
		t.Errorf("degenerate DistToPoint = %v", d)
	}
}

func TestSegmentIntersectProper(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 10))
	u := Seg(Pt(0, 10), Pt(10, 0))
	hit, p := s.Intersect(u)
	if !hit || !p.Eq(Pt(5, 5), 1e-9) {
		t.Errorf("Intersect = %v %v", hit, p)
	}
	if !s.ProperlyIntersects(u) {
		t.Error("expected proper intersection")
	}
}

func TestSegmentIntersectDisjoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 0))
	u := Seg(Pt(0, 1), Pt(1, 1))
	if hit, _ := s.Intersect(u); hit {
		t.Error("disjoint segments reported intersecting")
	}
	if s.ProperlyIntersects(u) {
		t.Error("disjoint segments reported properly intersecting")
	}
}

func TestSegmentIntersectTouching(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(2, 0))
	u := Seg(Pt(1, 0), Pt(1, 5)) // T-touch at (1,0)
	hit, p := s.Intersect(u)
	if !hit || !p.Eq(Pt(1, 0), 1e-9) {
		t.Errorf("touching Intersect = %v %v", hit, p)
	}
	if s.ProperlyIntersects(u) {
		t.Error("T-touch is not a proper intersection")
	}
	// Shared endpoint.
	v := Seg(Pt(2, 0), Pt(3, 3))
	if hit, _ := s.Intersect(v); !hit {
		t.Error("shared endpoint should intersect")
	}
	if s.ProperlyIntersects(v) {
		t.Error("shared endpoint is not proper")
	}
}

func TestSegmentIntersectCollinear(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(4, 0))
	u := Seg(Pt(2, 0), Pt(6, 0)) // overlapping
	if hit, _ := s.Intersect(u); !hit {
		t.Error("overlapping collinear segments should intersect")
	}
	w := Seg(Pt(5, 0), Pt(8, 0)) // collinear, disjoint
	if hit, _ := s.Intersect(w); hit {
		t.Error("disjoint collinear segments should not intersect")
	}
}

func TestSegmentDistToSegment(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 0))
	u := Seg(Pt(0, 2), Pt(1, 2))
	if d := s.DistToSegment(u); !almostEq(d, 2, 1e-12) {
		t.Errorf("parallel DistToSegment = %v", d)
	}
	v := Seg(Pt(0.5, -1), Pt(0.5, 1)) // crosses s
	if d := s.DistToSegment(v); d != 0 {
		t.Errorf("crossing DistToSegment = %v", d)
	}
	w := Seg(Pt(3, 0), Pt(3, 4))
	if d := s.DistToSegment(w); !almostEq(d, 2, 1e-12) {
		t.Errorf("endpoint DistToSegment = %v", d)
	}
}

func TestSegmentLineSide(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(1, 0))
	if s.LineSide(Pt(0, 1)) <= 0 {
		t.Error("left side should be positive")
	}
	if s.LineSide(Pt(0, -1)) >= 0 {
		t.Error("right side should be negative")
	}
	if s.LineSide(Pt(5, 0)) != 0 {
		t.Error("on-line should be zero")
	}
}

// Property: the closest point on a segment is never farther than either
// endpoint, and DistToPoint is symmetric under reversal.
func TestQuickSegmentClosest(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 100) }
		s := Seg(Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by)))
		p := Pt(clamp(px), clamp(py))
		d := s.DistToPoint(p)
		if d > p.Dist(s.A)+1e-9 || d > p.Dist(s.B)+1e-9 {
			return false
		}
		return almostEq(d, s.Reverse().DistToPoint(p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
