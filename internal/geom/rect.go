package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned rectangle, the closed region
// [Min.X, Max.X] × [Min.Y, Max.Y].
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity for Union: a rectangle that contains
// nothing and extends any rectangle it is united with.
func EmptyRect() Rect {
	inf := math.Inf(1)
	return Rect{Min: Point{inf, inf}, Max: Point{-inf, -inf}}
}

// RectOf returns the smallest rectangle containing all the given points.
// With no points it returns EmptyRect().
func RectOf(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether r contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the horizontal extent of r (zero if empty).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the vertical extent of r (zero if empty).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Area returns the area of r (zero if empty).
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point { return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2} }

// Contains reports whether p lies in the closed rectangle r.
func (r Rect) Contains(p Point) bool {
	return r.Min.X <= p.X && p.X <= r.Max.X && r.Min.Y <= p.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s is entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.IsEmpty() {
		return true
	}
	return r.Min.X <= s.Min.X && s.Max.X <= r.Max.X &&
		r.Min.Y <= s.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return r.Union(Rect{Min: p, Max: p})
}

// Expand returns r grown by d on every side. Negative d shrinks r and may
// make it empty.
func (r Rect) Expand(d float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Corners returns the four corners of r in counter-clockwise order starting
// from Min.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// DistToPoint returns the distance from p to the closed region r
// (zero when p is inside).
func (r Rect) DistToPoint(p Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// String implements fmt.Stringer.
func (r Rect) String() string { return fmt.Sprintf("Rect[%v, %v]", r.Min, r.Max) }
