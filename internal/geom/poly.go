package geom

import (
	"errors"
	"fmt"
	"math"
)

// Poly is a polygonal chain: a sequence of vertices joined by straight
// edges. When Closed is true the last vertex connects back to the first
// and the chain bounds a region; otherwise it is an open polyline.
//
// GeoSIR shapes (object boundaries extracted from images) are exactly
// non-self-intersecting Polys, per §2.4 of the paper.
type Poly struct {
	Pts    []Point
	Closed bool
}

// NewPolygon constructs a closed Poly from the given vertices.
func NewPolygon(pts ...Point) Poly { return Poly{Pts: pts, Closed: true} }

// NewPolyline constructs an open Poly from the given vertices.
func NewPolyline(pts ...Point) Poly { return Poly{Pts: pts, Closed: false} }

// Clone returns a deep copy of p.
func (p Poly) Clone() Poly {
	pts := make([]Point, len(p.Pts))
	copy(pts, p.Pts)
	return Poly{Pts: pts, Closed: p.Closed}
}

// NumVertices returns the number of vertices.
func (p Poly) NumVertices() int { return len(p.Pts) }

// NumEdges returns the number of edges: n for a closed chain with n ≥ 3
// vertices, n-1 for an open chain.
func (p Poly) NumEdges() int {
	n := len(p.Pts)
	if n < 2 {
		return 0
	}
	if p.Closed {
		return n
	}
	return n - 1
}

// Edge returns the i-th edge (0-based). For closed chains edge n-1 joins
// the last vertex back to the first.
func (p Poly) Edge(i int) Segment {
	j := i + 1
	if j == len(p.Pts) {
		j = 0
	}
	return Segment{p.Pts[i], p.Pts[j]}
}

// Edges returns all edges as a slice.
func (p Poly) Edges() []Segment {
	m := p.NumEdges()
	out := make([]Segment, m)
	for i := 0; i < m; i++ {
		out[i] = p.Edge(i)
	}
	return out
}

// Perimeter returns the total edge length of p.
func (p Poly) Perimeter() float64 {
	var sum float64
	for i := 0; i < p.NumEdges(); i++ {
		sum += p.Edge(i).Length()
	}
	return sum
}

// SignedArea returns the signed area of a closed chain (positive when the
// vertices are in counter-clockwise order). Open chains have zero area.
func (p Poly) SignedArea() float64 {
	if !p.Closed || len(p.Pts) < 3 {
		return 0
	}
	var s float64
	for i := 0; i < len(p.Pts); i++ {
		e := p.Edge(i)
		s += e.A.Cross(e.B)
	}
	return s / 2
}

// Area returns the absolute area enclosed by a closed chain.
func (p Poly) Area() float64 { return math.Abs(p.SignedArea()) }

// Centroid returns the centroid of the vertex set. (The vertex centroid is
// what the matching layer needs; it is not the area centroid.)
func (p Poly) Centroid() Point {
	if len(p.Pts) == 0 {
		return Point{}
	}
	var c Point
	for _, q := range p.Pts {
		c = c.Add(q)
	}
	return c.Scale(1 / float64(len(p.Pts)))
}

// Bounds returns the axis-aligned bounding box of the vertices.
func (p Poly) Bounds() Rect { return RectOf(p.Pts...) }

// Reverse returns p with the vertex order reversed.
func (p Poly) Reverse() Poly {
	q := p.Clone()
	for i, j := 0, len(q.Pts)-1; i < j; i, j = i+1, j-1 {
		q.Pts[i], q.Pts[j] = q.Pts[j], q.Pts[i]
	}
	return q
}

// Transform returns p with t applied to every vertex.
func (p Poly) Transform(t Transform) Poly {
	q := p.Clone()
	for i := range q.Pts {
		q.Pts[i] = t.Apply(q.Pts[i])
	}
	return q
}

// ContainsPoint reports whether pt lies inside (or on the boundary of) a
// closed chain, using the even-odd crossing rule. Open chains contain
// only their boundary points.
func (p Poly) ContainsPoint(pt Point) bool {
	if p.OnBoundary(pt, Eps) {
		return true
	}
	if !p.Closed || len(p.Pts) < 3 {
		return false
	}
	inside := false
	n := len(p.Pts)
	for i := 0; i < n; i++ {
		a, b := p.Pts[i], p.Pts[(i+1)%n]
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			x := a.X + (pt.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if pt.X < x {
				inside = !inside
			}
		}
	}
	return inside
}

// OnBoundary reports whether pt lies on one of p's edges within tolerance
// tol.
func (p Poly) OnBoundary(pt Point, tol float64) bool {
	for i := 0; i < p.NumEdges(); i++ {
		if p.Edge(i).DistToPoint(pt) <= tol {
			return true
		}
	}
	return false
}

// DistToPoint returns the minimum distance from pt to the chain (its
// boundary, not its interior).
func (p Poly) DistToPoint(pt Point) float64 {
	if len(p.Pts) == 1 {
		return pt.Dist(p.Pts[0])
	}
	best := math.Inf(1)
	for i := 0; i < p.NumEdges(); i++ {
		if d := p.Edge(i).DistToPoint(pt); d < best {
			best = d
		}
	}
	return best
}

// IsSimple reports whether the chain is non-self-intersecting: no two
// non-adjacent edges share a point, and adjacent edges meet only at their
// common vertex.
func (p Poly) IsSimple() bool {
	m := p.NumEdges()
	if m <= 1 {
		return true
	}
	for i := 0; i < m; i++ {
		ei := p.Edge(i)
		for j := i + 1; j < m; j++ {
			adjacent := j == i+1 || (p.Closed && i == 0 && j == m-1)
			ej := p.Edge(j)
			if adjacent {
				if ei.ProperlyIntersects(ej) {
					return false
				}
				// Adjacent edges may only share the single common vertex;
				// a collinear overlap makes the chain degenerate.
				if Collinear(ei.A, ei.B, ej.B) && ei.onSegment(ej.B) && !ei.B.Eq(ej.B, Eps) && !ei.A.Eq(ej.B, Eps) {
					return false
				}
				continue
			}
			if hit, _ := ei.Intersect(ej); hit {
				return false
			}
		}
	}
	return true
}

// Diameter returns the pair of vertex indices (i, j) realizing the largest
// inter-vertex distance, and that distance. For chains with at least a few
// dozen vertices it uses the convex hull and rotating calipers
// (O(n log n)); tiny chains fall back to the quadratic scan.
func (p Poly) Diameter() (i, j int, d float64) {
	n := len(p.Pts)
	switch {
	case n == 0:
		return 0, 0, 0
	case n == 1:
		return 0, 0, 0
	case n <= 32:
		return p.diameterBrute()
	default:
		return diameterCalipers(p.Pts)
	}
}

func (p Poly) diameterBrute() (bi, bj int, bd float64) {
	for i := 0; i < len(p.Pts); i++ {
		for j := i + 1; j < len(p.Pts); j++ {
			if d := p.Pts[i].Dist2(p.Pts[j]); d > bd {
				bd, bi, bj = d, i, j
			}
		}
	}
	return bi, bj, math.Sqrt(bd)
}

// AlphaDiameters returns all vertex pairs whose distance is at least
// (1-alpha) times the diameter, per §2.4. The true diameter pair is always
// included. alpha must be in [0, 1).
func (p Poly) AlphaDiameters(alpha float64) []([2]int) {
	_, _, d := p.Diameter()
	if d == 0 {
		return nil
	}
	thr := (1 - alpha) * d
	thr2 := thr * thr
	var out [][2]int
	for i := 0; i < len(p.Pts); i++ {
		for j := i + 1; j < len(p.Pts); j++ {
			if p.Pts[i].Dist2(p.Pts[j]) >= thr2-Eps {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Validate checks that p is a usable shape: at least two distinct vertices
// (three for a closed chain), finite coordinates, no zero-length edges, and
// simplicity.
func (p Poly) Validate() error {
	minV := 2
	if p.Closed {
		minV = 3
	}
	if len(p.Pts) < minV {
		return fmt.Errorf("geom: chain has %d vertices, need at least %d", len(p.Pts), minV)
	}
	for k, q := range p.Pts {
		if !q.IsFinite() {
			return fmt.Errorf("geom: vertex %d is not finite: %v", k, q)
		}
	}
	for i := 0; i < p.NumEdges(); i++ {
		if p.Edge(i).Length() <= Eps {
			return fmt.Errorf("geom: zero-length edge %d", i)
		}
	}
	if !p.IsSimple() {
		return errors.New("geom: chain is self-intersecting")
	}
	return nil
}

// Resample returns k points spread uniformly (by arc length) along the
// chain, including the start vertex. Closed chains wrap around; open
// chains include the final vertex as the k-th point when k ≥ 2.
// Resample is the basis of the continuous-boundary average distance.
func (p Poly) Resample(k int) []Point {
	return p.ResampleInto(nil, k)
}

// ResampleInto is Resample writing into dst's backing array (grown as
// needed), so hot loops can reuse one buffer across calls instead of
// allocating k points per evaluation. It returns the filled slice; the
// produced points are identical to Resample's.
func (p Poly) ResampleInto(dst []Point, k int) []Point {
	if k <= 0 || len(p.Pts) == 0 {
		return nil
	}
	out := dst[:0]
	if len(p.Pts) == 1 {
		for i := 0; i < k; i++ {
			out = append(out, p.Pts[0])
		}
		return out
	}
	total := p.Perimeter()
	if total == 0 {
		for i := 0; i < k; i++ {
			out = append(out, p.Pts[0])
		}
		return out
	}
	var step float64
	if p.Closed {
		step = total / float64(k)
	} else {
		if k == 1 {
			return append(out, p.Pts[0])
		}
		step = total / float64(k-1)
	}
	edge := 0
	edgeLen := p.Edge(0).Length()
	pos := 0.0 // distance consumed on current edge
	target := 0.0
	walked := 0.0
	for len(out) < k {
		for target-walked > edgeLen-pos+Eps {
			walked += edgeLen - pos
			pos = 0
			edge++
			if edge >= p.NumEdges() {
				// Numerical tail: clamp to final vertex.
				last := p.Pts[len(p.Pts)-1]
				if p.Closed {
					last = p.Pts[0]
				}
				for len(out) < k {
					out = append(out, last)
				}
				return out
			}
			edgeLen = p.Edge(edge).Length()
		}
		pos += target - walked
		walked = target
		e := p.Edge(edge)
		out = append(out, e.At(pos/edgeLen))
		target += step
	}
	return out
}

// VertexDistancesTo returns, for each vertex of p, its distance to the
// chain q. This is the inner "min" of the similarity measure evaluated at
// p's vertices.
func (p Poly) VertexDistancesTo(q Poly) []float64 {
	out := make([]float64, len(p.Pts))
	for i, v := range p.Pts {
		out[i] = q.DistToPoint(v)
	}
	return out
}
