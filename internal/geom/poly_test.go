package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Poly {
	return NewPolygon(Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1))
}

func TestPolyEdgesCounts(t *testing.T) {
	sq := unitSquare()
	if sq.NumVertices() != 4 || sq.NumEdges() != 4 {
		t.Fatalf("square counts: %d vertices, %d edges", sq.NumVertices(), sq.NumEdges())
	}
	open := NewPolyline(Pt(0, 0), Pt(1, 0), Pt(2, 1))
	if open.NumEdges() != 2 {
		t.Errorf("open NumEdges = %d", open.NumEdges())
	}
	// Closing edge wraps.
	last := sq.Edge(3)
	if last.A != Pt(0, 1) || last.B != Pt(0, 0) {
		t.Errorf("closing edge = %v", last)
	}
}

func TestPolyPerimeterArea(t *testing.T) {
	sq := unitSquare()
	if !almostEq(sq.Perimeter(), 4, 1e-12) {
		t.Errorf("Perimeter = %v", sq.Perimeter())
	}
	if !almostEq(sq.SignedArea(), 1, 1e-12) {
		t.Errorf("SignedArea = %v", sq.SignedArea())
	}
	if !almostEq(sq.Reverse().SignedArea(), -1, 1e-12) {
		t.Errorf("reversed SignedArea = %v", sq.Reverse().SignedArea())
	}
	if !almostEq(sq.Area(), 1, 1e-12) {
		t.Errorf("Area = %v", sq.Area())
	}
	open := NewPolyline(Pt(0, 0), Pt(3, 4))
	if open.SignedArea() != 0 {
		t.Error("open chain must have zero area")
	}
	if !almostEq(open.Perimeter(), 5, 1e-12) {
		t.Errorf("open Perimeter = %v", open.Perimeter())
	}
}

func TestPolyCentroidBounds(t *testing.T) {
	sq := unitSquare()
	if !sq.Centroid().Eq(Pt(0.5, 0.5), 1e-12) {
		t.Errorf("Centroid = %v", sq.Centroid())
	}
	b := sq.Bounds()
	if b.Min != Pt(0, 0) || b.Max != Pt(1, 1) {
		t.Errorf("Bounds = %v", b)
	}
	if (Poly{}).Centroid() != Pt(0, 0) {
		t.Error("empty centroid")
	}
}

func TestPolyContainsPoint(t *testing.T) {
	sq := unitSquare()
	inside := []Point{Pt(0.5, 0.5), Pt(0.01, 0.01), Pt(0.99, 0.5)}
	outside := []Point{Pt(-0.1, 0.5), Pt(1.1, 0.5), Pt(0.5, 2), Pt(-5, -5)}
	for _, p := range inside {
		if !sq.ContainsPoint(p) {
			t.Errorf("%v should be inside", p)
		}
	}
	for _, p := range outside {
		if sq.ContainsPoint(p) {
			t.Errorf("%v should be outside", p)
		}
	}
	// Boundary points count as contained.
	if !sq.ContainsPoint(Pt(0.5, 0)) || !sq.ContainsPoint(Pt(0, 0)) {
		t.Error("boundary should be contained")
	}
	// Concave polygon.
	conc := NewPolygon(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(2, 2), Pt(0, 4))
	if !conc.ContainsPoint(Pt(1, 1)) {
		t.Error("(1,1) inside concave")
	}
	if conc.ContainsPoint(Pt(2, 3.5)) {
		t.Error("(2,3.5) in the notch, outside")
	}
}

func TestPolyDistToPoint(t *testing.T) {
	sq := unitSquare()
	if d := sq.DistToPoint(Pt(0.5, 0.5)); !almostEq(d, 0.5, 1e-12) {
		t.Errorf("interior boundary distance = %v", d)
	}
	if d := sq.DistToPoint(Pt(2, 0.5)); !almostEq(d, 1, 1e-12) {
		t.Errorf("outside distance = %v", d)
	}
	single := Poly{Pts: []Point{Pt(1, 1)}}
	if d := single.DistToPoint(Pt(4, 5)); d != 5 {
		t.Errorf("single-point distance = %v", d)
	}
}

func TestPolyIsSimple(t *testing.T) {
	if !unitSquare().IsSimple() {
		t.Error("square is simple")
	}
	bow := NewPolygon(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)) // bowtie
	if bow.IsSimple() {
		t.Error("bowtie is self-intersecting")
	}
	openX := NewPolyline(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2))
	if openX.IsSimple() {
		t.Error("crossing polyline is not simple")
	}
	zig := NewPolyline(Pt(0, 0), Pt(1, 1), Pt(2, 0), Pt(3, 1))
	if !zig.IsSimple() {
		t.Error("zigzag is simple")
	}
}

func TestPolyDiameter(t *testing.T) {
	sq := unitSquare()
	i, j, d := sq.Diameter()
	if !almostEq(d, math.Sqrt2, 1e-12) {
		t.Errorf("square diameter = %v", d)
	}
	if sq.Pts[i].Dist(sq.Pts[j]) != d {
		t.Error("diameter indices inconsistent")
	}
	// A long thin shape: diameter between the far ends.
	thin := NewPolyline(Pt(0, 0), Pt(5, 0.1), Pt(10, 0))
	_, _, d = thin.Diameter()
	if !almostEq(d, 10, 1e-12) {
		t.Errorf("thin diameter = %v", d)
	}
}

func TestPolyDiameterCalipersMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 40 + rng.Intn(80)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100-50, rng.Float64()*100-50)
		}
		p := Poly{Pts: pts}
		_, _, dc := p.Diameter() // n > 32 → calipers
		_, _, db := p.diameterBrute()
		if !almostEq(dc, db, 1e-9*(1+db)) {
			t.Fatalf("trial %d: calipers %v != brute %v", trial, dc, db)
		}
	}
}

func TestAlphaDiameters(t *testing.T) {
	sq := unitSquare()
	// alpha = 0: only the two diagonals qualify.
	pairs := sq.AlphaDiameters(0)
	if len(pairs) != 2 {
		t.Errorf("alpha=0 pairs = %d, want 2 (both diagonals)", len(pairs))
	}
	// alpha large enough to include the sides (1 ≥ (1-α)·√2 → α ≥ 1-1/√2).
	pairs = sq.AlphaDiameters(0.3)
	if len(pairs) != 6 {
		t.Errorf("alpha=0.3 pairs = %d, want 6 (4 sides + 2 diagonals)", len(pairs))
	}
	if (Poly{}).AlphaDiameters(0.1) != nil {
		t.Error("empty shape has no alpha-diameters")
	}
}

func TestPolyValidate(t *testing.T) {
	if err := unitSquare().Validate(); err != nil {
		t.Errorf("square Validate: %v", err)
	}
	if err := NewPolygon(Pt(0, 0), Pt(1, 0)).Validate(); err == nil {
		t.Error("2-vertex polygon should fail")
	}
	if err := NewPolyline(Pt(0, 0)).Validate(); err == nil {
		t.Error("1-vertex polyline should fail")
	}
	if err := NewPolyline(Pt(0, 0), Pt(0, 0), Pt(1, 1)).Validate(); err == nil {
		t.Error("zero-length edge should fail")
	}
	if err := NewPolygon(Pt(0, 0), Pt(2, 2), Pt(2, 0), Pt(0, 2)).Validate(); err == nil {
		t.Error("bowtie should fail")
	}
	if err := NewPolyline(Pt(0, 0), Pt(math.NaN(), 1)).Validate(); err == nil {
		t.Error("NaN vertex should fail")
	}
}

func TestPolyResampleClosed(t *testing.T) {
	sq := unitSquare()
	pts := sq.Resample(8)
	if len(pts) != 8 {
		t.Fatalf("Resample count = %d", len(pts))
	}
	// All samples on the boundary; spacing uniform (perimeter 4 / 8 = 0.5).
	for _, p := range pts {
		if d := sq.DistToPoint(p); d > 1e-9 {
			t.Errorf("sample %v off boundary by %v", p, d)
		}
	}
	if !pts[0].Eq(Pt(0, 0), 1e-12) || !pts[1].Eq(Pt(0.5, 0), 1e-12) {
		t.Errorf("first samples = %v %v", pts[0], pts[1])
	}
}

func TestPolyResampleOpen(t *testing.T) {
	line := NewPolyline(Pt(0, 0), Pt(10, 0))
	pts := line.Resample(5)
	want := []Point{Pt(0, 0), Pt(2.5, 0), Pt(5, 0), Pt(7.5, 0), Pt(10, 0)}
	for k := range want {
		if !pts[k].Eq(want[k], 1e-9) {
			t.Errorf("sample %d = %v, want %v", k, pts[k], want[k])
		}
	}
	if got := line.Resample(1); len(got) != 1 || got[0] != Pt(0, 0) {
		t.Errorf("Resample(1) = %v", got)
	}
	if got := line.Resample(0); got != nil {
		t.Errorf("Resample(0) = %v", got)
	}
}

func TestPolyTransformRoundTrip(t *testing.T) {
	sq := unitSquare()
	tr := Transform{S: 2.5, Theta: 0.7, T: Pt(3, -4)}
	back := sq.Transform(tr).Transform(tr.Inverse())
	for k := range sq.Pts {
		if !back.Pts[k].Eq(sq.Pts[k], 1e-9) {
			t.Errorf("vertex %d: %v != %v", k, back.Pts[k], sq.Pts[k])
		}
	}
}

// Property: resampled points always lie on the chain.
func TestQuickResampleOnBoundary(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*10, rng.Float64()*10)
		}
		p := Poly{Pts: pts, Closed: seed%2 == 0}
		for _, s := range p.Resample(17) {
			if p.DistToPoint(s) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
