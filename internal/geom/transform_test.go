package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransformBasics(t *testing.T) {
	if got := Identity().Apply(Pt(3, 4)); got != Pt(3, 4) {
		t.Errorf("Identity = %v", got)
	}
	if got := Translation(Pt(1, 2)).Apply(Pt(3, 4)); got != Pt(4, 6) {
		t.Errorf("Translation = %v", got)
	}
	if got := Scaling(2).Apply(Pt(3, 4)); got != Pt(6, 8) {
		t.Errorf("Scaling = %v", got)
	}
	got := Rotation(math.Pi / 2).Apply(Pt(1, 0))
	if !got.Eq(Pt(0, 1), 1e-12) {
		t.Errorf("Rotation = %v", got)
	}
}

func TestTransformCompose(t *testing.T) {
	t1 := Transform{S: 2, Theta: 0.3, T: Pt(1, 1)}
	t2 := Transform{S: 0.5, Theta: -1.1, T: Pt(-3, 4)}
	p := Pt(2.5, -7)
	want := t2.Apply(t1.Apply(p))
	got := Compose(t2, t1).Apply(p)
	if !got.Eq(want, 1e-9) {
		t.Errorf("Compose = %v, want %v", got, want)
	}
}

func TestTransformInverse(t *testing.T) {
	tr := Transform{S: 3, Theta: 1.2, T: Pt(-5, 2)}
	inv := tr.Inverse()
	for _, p := range []Point{Pt(0, 0), Pt(1, 0), Pt(-3, 7)} {
		if got := inv.Apply(tr.Apply(p)); !got.Eq(p, 1e-9) {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Inverse of zero-scale should panic")
		}
	}()
	(Transform{S: 0}).Inverse()
}

func TestNormalizeOnto(t *testing.T) {
	a, b := Pt(2, 3), Pt(5, 7)
	tr, err := NormalizeOnto(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Apply(a); !got.Eq(Pt(0, 0), 1e-9) {
		t.Errorf("a maps to %v", got)
	}
	if got := tr.Apply(b); !got.Eq(Pt(1, 0), 1e-9) {
		t.Errorf("b maps to %v", got)
	}
	if _, err := NormalizeOnto(a, a); err == nil {
		t.Error("coincident points should error")
	}
}

func TestNormalizeOntoInverse(t *testing.T) {
	a, b := Pt(-1, 4), Pt(3, -2)
	tr, _ := NormalizeOnto(a, b)
	inv := tr.Inverse()
	if got := inv.Apply(Pt(0, 0)); !got.Eq(a, 1e-9) {
		t.Errorf("(0,0) maps back to %v, want %v", got, a)
	}
	if got := inv.Apply(Pt(1, 0)); !got.Eq(b, 1e-9) {
		t.Errorf("(1,0) maps back to %v, want %v", got, b)
	}
}

// Property: similarity transforms scale all distances by |S|.
func TestQuickTransformSimilarity(t *testing.T) {
	f := func(ax, ay, bx, by, s, theta, tx, ty float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 50) }
		s = math.Mod(math.Abs(s), 10) + 0.1
		tr := Transform{S: s, Theta: math.Mod(theta, 7), T: Pt(clamp(tx), clamp(ty))}
		p, q := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		d0 := p.Dist(q)
		d1 := tr.Apply(p).Dist(tr.Apply(q))
		return almostEq(d1, s*d0, 1e-6*(1+d0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: NormalizeOnto always lands its anchors on (0,0) and (1,0).
func TestQuickNormalizeOntoAnchors(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		clamp := func(v float64) float64 { return math.Mod(v, 100) }
		a, b := Pt(clamp(ax), clamp(ay)), Pt(clamp(bx), clamp(by))
		if a.Dist(b) < 1e-6 {
			return true
		}
		tr, err := NormalizeOnto(a, b)
		if err != nil {
			return false
		}
		return tr.Apply(a).Eq(Pt(0, 0), 1e-7) && tr.Apply(b).Eq(Pt(1, 0), 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
