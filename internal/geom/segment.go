package geom

import (
	"fmt"
	"math"
)

// Segment is a closed line segment between two endpoints.
type Segment struct {
	A, B Point
}

// Seg is shorthand for constructing a Segment.
func Seg(a, b Point) Segment { return Segment{a, b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Point { return s.A.Lerp(s.B, 0.5) }

// Dir returns the (unnormalized) direction vector B - A.
func (s Segment) Dir() Point { return s.B.Sub(s.A) }

// At returns the point A + t·(B-A).
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Reverse returns the segment with endpoints swapped.
func (s Segment) Reverse() Segment { return Segment{s.B, s.A} }

// Bounds returns the axis-aligned bounding box of s.
func (s Segment) Bounds() Rect {
	return Rect{
		Min: Point{math.Min(s.A.X, s.B.X), math.Min(s.A.Y, s.B.Y)},
		Max: Point{math.Max(s.A.X, s.B.X), math.Max(s.A.Y, s.B.Y)},
	}
}

// String implements fmt.Stringer.
func (s Segment) String() string { return fmt.Sprintf("[%v-%v]", s.A, s.B) }

// ClosestParam returns the parameter t ∈ [0,1] such that s.At(t) is the
// point of s closest to p.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.Dir()
	den := d.Norm2()
	if den == 0 {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / den
	return math.Max(0, math.Min(1, t))
}

// ClosestPoint returns the point of s closest to p.
func (s Segment) ClosestPoint(p Point) Point { return s.At(s.ClosestParam(p)) }

// DistToPoint returns the Euclidean distance from p to segment s.
func (s Segment) DistToPoint(p Point) float64 { return p.Dist(s.ClosestPoint(p)) }

// Dist2ToPoint returns the squared distance from p to segment s.
func (s Segment) Dist2ToPoint(p Point) float64 { return p.Dist2(s.ClosestPoint(p)) }

// DistToSegment returns the minimum distance between segments s and t.
// It is zero when the segments intersect.
func (s Segment) DistToSegment(t Segment) float64 {
	if hit, _ := s.Intersect(t); hit {
		return 0
	}
	d := s.DistToPoint(t.A)
	if v := s.DistToPoint(t.B); v < d {
		d = v
	}
	if v := t.DistToPoint(s.A); v < d {
		d = v
	}
	if v := t.DistToPoint(s.B); v < d {
		d = v
	}
	return d
}

// onSegment reports whether point p, known to be collinear with s, lies
// within s's bounding box (and therefore on s).
func (s Segment) onSegment(p Point) bool {
	return math.Min(s.A.X, s.B.X)-Eps <= p.X && p.X <= math.Max(s.A.X, s.B.X)+Eps &&
		math.Min(s.A.Y, s.B.Y)-Eps <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)+Eps
}

// Intersect reports whether s and t intersect. When they cross at a single
// proper point, that point is returned; for touching or overlapping
// configurations a representative common point is returned.
func (s Segment) Intersect(t Segment) (bool, Point) {
	o1 := Orientation(s.A, s.B, t.A)
	o2 := Orientation(s.A, s.B, t.B)
	o3 := Orientation(t.A, t.B, s.A)
	o4 := Orientation(t.A, t.B, s.B)

	if o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 {
		// Proper crossing: solve for the intersection point.
		d1 := s.Dir()
		d2 := t.Dir()
		den := d1.Cross(d2)
		u := t.A.Sub(s.A).Cross(d2) / den
		return true, s.At(u)
	}
	// Touching / collinear special cases.
	if o1 == 0 && s.onSegment(t.A) {
		return true, t.A
	}
	if o2 == 0 && s.onSegment(t.B) {
		return true, t.B
	}
	if o3 == 0 && t.onSegment(s.A) {
		return true, s.A
	}
	if o4 == 0 && t.onSegment(s.B) {
		return true, s.B
	}
	if o1 != o2 && o3 != o4 {
		// Mixed zero/nonzero orientations that still straddle: treat as a
		// crossing and solve directly (degenerate near-touch).
		d1 := s.Dir()
		d2 := t.Dir()
		den := d1.Cross(d2)
		if den != 0 {
			u := t.A.Sub(s.A).Cross(d2) / den
			if u >= -Eps && u <= 1+Eps {
				return true, s.At(math.Max(0, math.Min(1, u)))
			}
		}
	}
	return false, Point{}
}

// ProperlyIntersects reports whether s and t cross at a single interior
// point of both (no shared endpoints, no collinear overlap).
func (s Segment) ProperlyIntersects(t Segment) bool {
	o1 := Orientation(s.A, s.B, t.A)
	o2 := Orientation(s.A, s.B, t.B)
	o3 := Orientation(t.A, t.B, s.A)
	o4 := Orientation(t.A, t.B, s.B)
	return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4
}

// LineSide returns the signed perpendicular offset of p from the directed
// line through s (positive to the left of A→B), scaled by |s|.
func (s Segment) LineSide(p Point) float64 {
	return s.Dir().Cross(p.Sub(s.A))
}
