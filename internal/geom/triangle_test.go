package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestTriangleContains(t *testing.T) {
	tr := Tri(Pt(0, 0), Pt(4, 0), Pt(0, 4))
	if !tr.Contains(Pt(1, 1)) {
		t.Error("(1,1) inside")
	}
	if !tr.Contains(Pt(0, 0)) || !tr.Contains(Pt(2, 0)) || !tr.Contains(Pt(2, 2)) {
		t.Error("boundary points inside")
	}
	if tr.Contains(Pt(3, 3)) || tr.Contains(Pt(-1, 0)) {
		t.Error("outside points reported inside")
	}
	// Orientation independence.
	cw := Tri(Pt(0, 0), Pt(0, 4), Pt(4, 0))
	if !cw.Contains(Pt(1, 1)) {
		t.Error("CW triangle containment broken")
	}
}

func TestTriangleAreaDegenerate(t *testing.T) {
	tr := Tri(Pt(0, 0), Pt(4, 0), Pt(0, 3))
	if !almostEq(tr.Area(), 6, 1e-12) {
		t.Errorf("Area = %v", tr.Area())
	}
	if tr.SignedArea() != 6 {
		t.Errorf("SignedArea = %v", tr.SignedArea())
	}
	flat := Tri(Pt(0, 0), Pt(1, 1), Pt(2, 2))
	if !flat.IsDegenerate() {
		t.Error("collinear triangle should be degenerate")
	}
	if tr.IsDegenerate() {
		t.Error("proper triangle reported degenerate")
	}
}

func TestTriangleRectPredicates(t *testing.T) {
	tr := Tri(Pt(0, 0), Pt(10, 0), Pt(0, 10))
	inside := Rect{Min: Pt(1, 1), Max: Pt(2, 2)}
	if !tr.ContainsRect(inside) {
		t.Error("small rect inside triangle")
	}
	straddle := Rect{Min: Pt(4, 4), Max: Pt(8, 8)}
	if tr.ContainsRect(straddle) {
		t.Error("straddling rect not contained")
	}
	if !tr.IntersectsRect(straddle) {
		t.Error("straddling rect intersects")
	}
	far := Rect{Min: Pt(20, 20), Max: Pt(30, 30)}
	if tr.IntersectsRect(far) {
		t.Error("far rect does not intersect")
	}
	// Rect fully containing the triangle.
	big := Rect{Min: Pt(-5, -5), Max: Pt(50, 50)}
	if !tr.IntersectsRect(big) {
		t.Error("enclosing rect intersects")
	}
	// Edge-crossing with no corner containment:
	// thin rect crossing the hypotenuse region horizontally.
	cross := Rect{Min: Pt(-1, 4), Max: Pt(11, 5)}
	if !tr.IntersectsRect(cross) {
		t.Error("edge-crossing rect intersects")
	}
}

func TestTriangulateEarClipConvex(t *testing.T) {
	sq := unitSquare()
	tris := TriangulateEarClip(sq)
	if len(tris) != 2 {
		t.Fatalf("square triangulation size = %d", len(tris))
	}
	var area float64
	for _, tr := range tris {
		area += tr.Area()
	}
	if !almostEq(area, 1, 1e-9) {
		t.Errorf("triangulated area = %v", area)
	}
}

func TestTriangulateEarClipConcave(t *testing.T) {
	conc := NewPolygon(Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(2, 2), Pt(0, 4))
	tris := TriangulateEarClip(conc)
	if len(tris) != 3 {
		t.Fatalf("concave triangulation size = %d", len(tris))
	}
	var area float64
	for _, tr := range tris {
		area += tr.Area()
	}
	if !almostEq(area, conc.Area(), 1e-9) {
		t.Errorf("triangulated area = %v, want %v", area, conc.Area())
	}
	// CW input must work too.
	trisCW := TriangulateEarClip(conc.Reverse())
	if len(trisCW) != 3 {
		t.Errorf("CW triangulation size = %d", len(trisCW))
	}
}

func TestTriangulateEarClipRandomStars(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		p := randomStarPolygon(rng, 6+rng.Intn(20))
		tris := TriangulateEarClip(p)
		if len(tris) != len(p.Pts)-2 {
			t.Fatalf("trial %d: %d triangles for %d vertices", trial, len(tris), len(p.Pts))
		}
		var area float64
		for _, tr := range tris {
			area += tr.Area()
		}
		if !almostEq(area, p.Area(), 1e-6*(1+p.Area())) {
			t.Fatalf("trial %d: area %v != %v", trial, area, p.Area())
		}
	}
}

func TestTriangulateDegenerateInputs(t *testing.T) {
	if got := TriangulateEarClip(NewPolyline(Pt(0, 0), Pt(1, 1))); got != nil {
		t.Error("open chain should not triangulate")
	}
	if got := TriangulateEarClip(NewPolygon(Pt(0, 0), Pt(1, 1))); got != nil {
		t.Error("2-gon should not triangulate")
	}
}

// randomStarPolygon builds a simple star-shaped polygon with n vertices by
// choosing random radii at sorted angles around the origin.
func randomStarPolygon(rng *rand.Rand, n int) Poly {
	pts := make([]Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		r := 1 + 4*rng.Float64()
		pts[i] = Pt(r*math.Cos(a), r*math.Sin(a))
	}
	return NewPolygon(pts...)
}
