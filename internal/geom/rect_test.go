package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyRect(t *testing.T) {
	e := EmptyRect()
	if !e.IsEmpty() {
		t.Fatal("EmptyRect not empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 {
		t.Error("empty rect extents should be 0")
	}
	if e.Contains(Pt(0, 0)) {
		t.Error("empty rect contains nothing")
	}
	// Union identity.
	r := Rect{Min: Pt(1, 2), Max: Pt(3, 4)}
	if got := e.Union(r); got != r {
		t.Errorf("empty ∪ r = %v", got)
	}
	if got := r.Union(e); got != r {
		t.Errorf("r ∪ empty = %v", got)
	}
	if e.Intersects(r) || r.Intersects(e) {
		t.Error("empty intersects nothing")
	}
	// Empty is inside everything.
	if !r.ContainsRect(e) {
		t.Error("every rect contains the empty rect")
	}
}

func TestRectOfAndExtend(t *testing.T) {
	r := RectOf(Pt(3, -1), Pt(-2, 5), Pt(0, 0))
	if r.Min != Pt(-2, -1) || r.Max != Pt(3, 5) {
		t.Errorf("RectOf = %v", r)
	}
	r2 := r.ExtendPoint(Pt(10, 10))
	if r2.Max != Pt(10, 10) || r2.Min != r.Min {
		t.Errorf("ExtendPoint = %v", r2)
	}
	if RectOf().IsEmpty() != true {
		t.Error("RectOf() should be empty")
	}
}

func TestRectGeometry(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 2)}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("extents: %v %v %v", r.Width(), r.Height(), r.Area())
	}
	if r.Center() != Pt(2, 1) {
		t.Errorf("Center = %v", r.Center())
	}
	c := r.Corners()
	if c[0] != Pt(0, 0) || c[2] != Pt(4, 2) {
		t.Errorf("Corners = %v", c)
	}
	// CCW order: positive polygon area.
	if a := NewPolygon(c[0], c[1], c[2], c[3]).SignedArea(); a <= 0 {
		t.Errorf("corners not CCW: area %v", a)
	}
}

func TestRectContainsIntersects(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	if !r.Contains(Pt(0, 0)) || !r.Contains(Pt(10, 10)) || !r.Contains(Pt(5, 5)) {
		t.Error("closed containment broken")
	}
	if r.Contains(Pt(10.001, 5)) {
		t.Error("outside point contained")
	}
	inner := Rect{Min: Pt(2, 2), Max: Pt(3, 3)}
	if !r.ContainsRect(inner) || inner.ContainsRect(r) {
		t.Error("ContainsRect broken")
	}
	touch := Rect{Min: Pt(10, 0), Max: Pt(12, 2)}
	if !r.Intersects(touch) {
		t.Error("edge-touching rects intersect (closed regions)")
	}
	apart := Rect{Min: Pt(11, 0), Max: Pt(12, 2)}
	if r.Intersects(apart) {
		t.Error("disjoint rects reported intersecting")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	g := r.Expand(1)
	if g.Min != Pt(-1, -1) || g.Max != Pt(3, 3) {
		t.Errorf("Expand = %v", g)
	}
	shrunk := r.Expand(-2)
	if !shrunk.IsEmpty() {
		t.Errorf("over-shrunk rect should be empty: %v", shrunk)
	}
	if got := EmptyRect().Expand(5); !got.IsEmpty() {
		t.Error("expanding empty stays empty")
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(2, 2)}
	if d := r.DistToPoint(Pt(1, 1)); d != 0 {
		t.Errorf("inside dist = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 1)); d != 3 {
		t.Errorf("side dist = %v", d)
	}
	if d := r.DistToPoint(Pt(5, 6)); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner dist = %v", d)
	}
}

// Property: Union is commutative, associative, and monotone for
// containment.
func TestQuickRectUnion(t *testing.T) {
	gen := func(a, b, c, d float64) Rect {
		m := func(v float64) float64 { return math.Mod(v, 50) }
		return RectOf(Pt(m(a), m(b)), Pt(m(c), m(d)))
	}
	f := func(a1, a2, a3, a4, b1, b2, b3, b4, c1, c2, c3, c4 float64) bool {
		ra := gen(a1, a2, a3, a4)
		rb := gen(b1, b2, b3, b4)
		rc := gen(c1, c2, c3, c4)
		if ra.Union(rb) != rb.Union(ra) {
			return false
		}
		if ra.Union(rb).Union(rc) != ra.Union(rb.Union(rc)) {
			return false
		}
		u := ra.Union(rb)
		return u.ContainsRect(ra) && u.ContainsRect(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Transform composition is associative in effect.
func TestQuickTransformComposeAssociative(t *testing.T) {
	f := func(s1, t1, x1, y1, s2, t2, x2, y2, s3, t3, x3, y3, px, py float64) bool {
		m := func(v float64) float64 { return math.Mod(v, 10) }
		mk := func(s, th, x, y float64) Transform {
			return Transform{S: math.Abs(m(s)) + 0.1, Theta: m(th), T: Pt(m(x), m(y))}
		}
		a := mk(s1, t1, x1, y1)
		b := mk(s2, t2, x2, y2)
		c := mk(s3, t3, x3, y3)
		p := Pt(m(px), m(py))
		lhs := Compose(Compose(c, b), a).Apply(p)
		rhs := Compose(c, Compose(b, a)).Apply(p)
		return lhs.Eq(rhs, 1e-6*(1+lhs.Norm()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
