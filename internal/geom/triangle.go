package geom

import (
	"fmt"
	"math"
)

// Triangle is a triangle given by its three corners. Triangles are the
// query ranges of the simplex range-search layer: the envelope difference
// of §2.5 is decomposed into triangles before being handed to the range
// structures.
type Triangle struct {
	A, B, C Point
}

// Tri is shorthand for constructing a Triangle.
func Tri(a, b, c Point) Triangle { return Triangle{a, b, c} }

// SignedArea returns the signed area of t (positive when A,B,C are in
// counter-clockwise order).
func (t Triangle) SignedArea() float64 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A)) / 2
}

// Area returns the absolute area of t.
func (t Triangle) Area() float64 {
	a := t.SignedArea()
	if a < 0 {
		return -a
	}
	return a
}

// IsDegenerate reports whether the three corners are (nearly) collinear.
func (t Triangle) IsDegenerate() bool { return Collinear(t.A, t.B, t.C) }

// Bounds returns the axis-aligned bounding box of t.
func (t Triangle) Bounds() Rect { return RectOf(t.A, t.B, t.C) }

// Contains reports whether p lies inside t or on its boundary,
// independent of the corner orientation.
func (t Triangle) Contains(p Point) bool {
	d1 := t.B.Sub(t.A).Cross(p.Sub(t.A))
	d2 := t.C.Sub(t.B).Cross(p.Sub(t.B))
	d3 := t.A.Sub(t.C).Cross(p.Sub(t.C))
	hasNeg := d1 < -Eps || d2 < -Eps || d3 < -Eps
	hasPos := d1 > Eps || d2 > Eps || d3 > Eps
	return !(hasNeg && hasPos)
}

// ContainsRect reports whether the entire rectangle r lies inside t.
func (t Triangle) ContainsRect(r Rect) bool {
	if r.IsEmpty() {
		return true
	}
	for _, c := range r.Corners() {
		if !t.Contains(c) {
			return false
		}
	}
	return true
}

// IntersectsRect reports whether t and r share any point. It is used for
// subtree pruning in the range-search structures; it may not be exact for
// degenerate triangles but never returns false for a true intersection.
func (t Triangle) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if !t.Bounds().Intersects(r) {
		return false
	}
	// Any corner containment in either direction settles it.
	if r.Contains(t.A) || r.Contains(t.B) || r.Contains(t.C) {
		return true
	}
	if t.Contains(r.Min) || t.Contains(r.Max) ||
		t.Contains(Point{r.Min.X, r.Max.Y}) || t.Contains(Point{r.Max.X, r.Min.Y}) {
		return true
	}
	// Remaining case: an edge of t crosses an edge of r.
	corners := r.Corners()
	tEdges := [3]Segment{{t.A, t.B}, {t.B, t.C}, {t.C, t.A}}
	for i := 0; i < 4; i++ {
		re := Segment{corners[i], corners[(i+1)%4]}
		for _, te := range tEdges {
			if hit, _ := te.Intersect(re); hit {
				return true
			}
		}
	}
	return false
}

// String implements fmt.Stringer.
func (t Triangle) String() string { return fmt.Sprintf("Tri{%v %v %v}", t.A, t.B, t.C) }

// TriQuery is a Triangle prepared for many point/rectangle tests against
// the same triangle — the access pattern of a range-search traversal,
// which probes one triangle against every visited tree node. Prepare
// hoists the bounding box, the edge vectors, and the separating-axis
// projection intervals out of the per-node work, so the rectangle overlap
// test is a handful of multiply-adds instead of twelve segment
// intersections.
type TriQuery struct {
	bounds Rect
	// Edge origins and vectors in Contains order: (A, B−A), (B, C−B),
	// (C, A−C). Contains must reproduce Triangle.Contains bit for bit, so
	// the vectors are the exact differences that method computes.
	ox, oy [3]float64
	ex, ey [3]float64
	// Projection interval of the triangle onto each edge normal
	// (−ey[i], ex[i]), for the separating-axis rectangle test.
	pmin, pmax [3]float64
}

// Prepare returns t's query form.
func (t Triangle) Prepare() TriQuery {
	var q TriQuery
	q.bounds = t.Bounds()
	corners := [3]Point{t.A, t.B, t.C}
	for i := 0; i < 3; i++ {
		a, b := corners[i], corners[(i+1)%3]
		q.ox[i], q.oy[i] = a.X, a.Y
		q.ex[i], q.ey[i] = b.X-a.X, b.Y-a.Y
		nx, ny := -q.ey[i], q.ex[i]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, c := range corners {
			p := nx*c.X + ny*c.Y
			lo = math.Min(lo, p)
			hi = math.Max(hi, p)
		}
		q.pmin[i], q.pmax[i] = lo, hi
	}
	return q
}

// Contains is Triangle.Contains with the edge vectors precomputed. The
// arithmetic — operand values and operation order — is identical, so a
// TriQuery reports exactly the same point set as its Triangle.
func (q *TriQuery) Contains(p Point) bool {
	d1 := q.ex[0]*(p.Y-q.oy[0]) - q.ey[0]*(p.X-q.ox[0])
	d2 := q.ex[1]*(p.Y-q.oy[1]) - q.ey[1]*(p.X-q.ox[1])
	d3 := q.ex[2]*(p.Y-q.oy[2]) - q.ey[2]*(p.X-q.ox[2])
	hasNeg := d1 < -Eps || d2 < -Eps || d3 < -Eps
	hasPos := d1 > Eps || d2 > Eps || d3 > Eps
	return !(hasNeg && hasPos)
}

// ContainsRect reports whether the entire rectangle r lies inside the
// triangle, by the same four-corner test as Triangle.ContainsRect.
func (q *TriQuery) ContainsRect(r Rect) bool {
	if r.IsEmpty() {
		return true
	}
	return q.Contains(r.Min) && q.Contains(Point{r.Max.X, r.Min.Y}) &&
		q.Contains(r.Max) && q.Contains(Point{r.Min.X, r.Max.Y})
}

// IntersectsRect reports whether the triangle and r share any point,
// via separating axes: the two box axes (the bounds test) and the three
// edge normals, each slackened by Eps so the test is conservative — it
// may keep a rectangle that misses the triangle by less than Eps, but
// never discards one that truly intersects. Used for subtree pruning;
// any over-approximation only costs extra node visits, since the points
// themselves are filtered by the exact Contains.
func (q *TriQuery) IntersectsRect(r Rect) bool {
	if r.IsEmpty() || !q.bounds.Intersects(r) {
		return false
	}
	for i := 0; i < 3; i++ {
		nx, ny := -q.ey[i], q.ex[i]
		// Projection interval of r onto (nx, ny): each coordinate
		// contributes its min/max independently.
		ax, bx := nx*r.Min.X, nx*r.Max.X
		if ax > bx {
			ax, bx = bx, ax
		}
		ay, by := ny*r.Min.Y, ny*r.Max.Y
		if ay > by {
			ay, by = by, ay
		}
		if ax+ay > q.pmax[i]+Eps || bx+by < q.pmin[i]-Eps {
			return false
		}
	}
	return true
}

// TriangulateEarClip triangulates a simple closed polygon by ear clipping
// (O(n²)) and returns n-2 triangles. The polygon may be given in either
// orientation. It returns nil when the input has fewer than 3 vertices.
func TriangulateEarClip(poly Poly) []Triangle {
	n := len(poly.Pts)
	if !poly.Closed || n < 3 {
		return nil
	}
	pts := make([]Point, n)
	copy(pts, poly.Pts)
	if poly.SignedArea() < 0 {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out []Triangle
	guard := 0
	for len(idx) > 3 && guard < n*n+n {
		guard++
		clipped := false
		m := len(idx)
		for k := 0; k < m; k++ {
			ia, ib, ic := idx[(k+m-1)%m], idx[k], idx[(k+1)%m]
			a, b, c := pts[ia], pts[ib], pts[ic]
			if Orientation(a, b, c) <= 0 {
				continue // reflex or degenerate corner
			}
			ear := Triangle{a, b, c}
			ok := true
			for _, io := range idx {
				if io == ia || io == ib || io == ic {
					continue
				}
				p := pts[io]
				if ear.Contains(p) && !p.Eq(a, Eps) && !p.Eq(b, Eps) && !p.Eq(c, Eps) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			out = append(out, ear)
			idx = append(idx[:k], idx[k+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Numerically stuck (nearly collinear ring): emit a fan and stop.
			break
		}
	}
	if len(idx) >= 3 {
		for k := 1; k+1 < len(idx); k++ {
			tr := Triangle{pts[idx[0]], pts[idx[k]], pts[idx[k+1]]}
			if !tr.IsDegenerate() {
				out = append(out, tr)
			}
		}
	}
	return out
}
