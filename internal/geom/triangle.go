package geom

import "fmt"

// Triangle is a triangle given by its three corners. Triangles are the
// query ranges of the simplex range-search layer: the envelope difference
// of §2.5 is decomposed into triangles before being handed to the range
// structures.
type Triangle struct {
	A, B, C Point
}

// Tri is shorthand for constructing a Triangle.
func Tri(a, b, c Point) Triangle { return Triangle{a, b, c} }

// SignedArea returns the signed area of t (positive when A,B,C are in
// counter-clockwise order).
func (t Triangle) SignedArea() float64 {
	return t.B.Sub(t.A).Cross(t.C.Sub(t.A)) / 2
}

// Area returns the absolute area of t.
func (t Triangle) Area() float64 {
	a := t.SignedArea()
	if a < 0 {
		return -a
	}
	return a
}

// IsDegenerate reports whether the three corners are (nearly) collinear.
func (t Triangle) IsDegenerate() bool { return Collinear(t.A, t.B, t.C) }

// Bounds returns the axis-aligned bounding box of t.
func (t Triangle) Bounds() Rect { return RectOf(t.A, t.B, t.C) }

// Contains reports whether p lies inside t or on its boundary,
// independent of the corner orientation.
func (t Triangle) Contains(p Point) bool {
	d1 := t.B.Sub(t.A).Cross(p.Sub(t.A))
	d2 := t.C.Sub(t.B).Cross(p.Sub(t.B))
	d3 := t.A.Sub(t.C).Cross(p.Sub(t.C))
	hasNeg := d1 < -Eps || d2 < -Eps || d3 < -Eps
	hasPos := d1 > Eps || d2 > Eps || d3 > Eps
	return !(hasNeg && hasPos)
}

// ContainsRect reports whether the entire rectangle r lies inside t.
func (t Triangle) ContainsRect(r Rect) bool {
	if r.IsEmpty() {
		return true
	}
	for _, c := range r.Corners() {
		if !t.Contains(c) {
			return false
		}
	}
	return true
}

// IntersectsRect reports whether t and r share any point. It is used for
// subtree pruning in the range-search structures; it may not be exact for
// degenerate triangles but never returns false for a true intersection.
func (t Triangle) IntersectsRect(r Rect) bool {
	if r.IsEmpty() {
		return false
	}
	if !t.Bounds().Intersects(r) {
		return false
	}
	// Any corner containment in either direction settles it.
	if r.Contains(t.A) || r.Contains(t.B) || r.Contains(t.C) {
		return true
	}
	if t.Contains(r.Min) || t.Contains(r.Max) ||
		t.Contains(Point{r.Min.X, r.Max.Y}) || t.Contains(Point{r.Max.X, r.Min.Y}) {
		return true
	}
	// Remaining case: an edge of t crosses an edge of r.
	corners := r.Corners()
	tEdges := [3]Segment{{t.A, t.B}, {t.B, t.C}, {t.C, t.A}}
	for i := 0; i < 4; i++ {
		re := Segment{corners[i], corners[(i+1)%4]}
		for _, te := range tEdges {
			if hit, _ := te.Intersect(re); hit {
				return true
			}
		}
	}
	return false
}

// String implements fmt.Stringer.
func (t Triangle) String() string { return fmt.Sprintf("Tri{%v %v %v}", t.A, t.B, t.C) }

// TriangulateEarClip triangulates a simple closed polygon by ear clipping
// (O(n²)) and returns n-2 triangles. The polygon may be given in either
// orientation. It returns nil when the input has fewer than 3 vertices.
func TriangulateEarClip(poly Poly) []Triangle {
	n := len(poly.Pts)
	if !poly.Closed || n < 3 {
		return nil
	}
	pts := make([]Point, n)
	copy(pts, poly.Pts)
	if poly.SignedArea() < 0 {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out []Triangle
	guard := 0
	for len(idx) > 3 && guard < n*n+n {
		guard++
		clipped := false
		m := len(idx)
		for k := 0; k < m; k++ {
			ia, ib, ic := idx[(k+m-1)%m], idx[k], idx[(k+1)%m]
			a, b, c := pts[ia], pts[ib], pts[ic]
			if Orientation(a, b, c) <= 0 {
				continue // reflex or degenerate corner
			}
			ear := Triangle{a, b, c}
			ok := true
			for _, io := range idx {
				if io == ia || io == ib || io == ic {
					continue
				}
				p := pts[io]
				if ear.Contains(p) && !p.Eq(a, Eps) && !p.Eq(b, Eps) && !p.Eq(c, Eps) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			out = append(out, ear)
			idx = append(idx[:k], idx[k+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Numerically stuck (nearly collinear ring): emit a fan and stop.
			break
		}
	}
	if len(idx) >= 3 {
		for k := 1; k+1 < len(idx); k++ {
			tr := Triangle{pts[idx[0]], pts[idx[k]], pts[idx[k+1]]}
			if !tr.IsDegenerate() {
				out = append(out, tr)
			}
		}
	}
	return out
}
