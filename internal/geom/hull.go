package geom

import (
	"math"
	"sort"
)

// ConvexHull returns the convex hull of pts in counter-clockwise order,
// using Andrew's monotone-chain algorithm (O(n log n)). Collinear points
// on the hull boundary are dropped. The input slice is not modified.
func ConvexHull(pts []Point) []Point {
	n := len(pts)
	if n < 3 {
		out := make([]Point, n)
		copy(out, pts)
		return out
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		if !p.Eq(uniq[len(uniq)-1], Eps) {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return uniq
	}
	hull := make([]Point, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// diameterCalipers computes the farthest pair of pts by rotating calipers
// over the convex hull, returning indices into pts and the distance.
func diameterCalipers(pts []Point) (bi, bj int, bd float64) {
	hull := ConvexHull(pts)
	h := len(hull)
	if h == 0 {
		return 0, 0, 0
	}
	if h == 1 {
		return 0, 0, 0
	}
	// Map hull points back to original indices (first match wins; ties are
	// irrelevant for the distance).
	idx := make([]int, h)
	for k, hp := range hull {
		for i, p := range pts {
			if p.Eq(hp, Eps) {
				idx[k] = i
				break
			}
		}
	}
	if h == 2 {
		return idx[0], idx[1], hull[0].Dist(hull[1])
	}
	best2 := 0.0
	j := 1
	for i := 0; i < h; i++ {
		ni := (i + 1) % h
		edge := hull[ni].Sub(hull[i])
		// Advance j while the next hull point is farther from edge i.
		for {
			nj := (j + 1) % h
			if edge.Cross(hull[nj].Sub(hull[i])) > edge.Cross(hull[j].Sub(hull[i])) {
				j = nj
			} else {
				break
			}
		}
		for _, cand := range [2]int{i, ni} {
			if d := hull[cand].Dist2(hull[j]); d > best2 {
				best2 = d
				bi, bj = idx[cand], idx[j]
			}
		}
	}
	if bi > bj {
		bi, bj = bj, bi
	}
	return bi, bj, math.Sqrt(best2)
}
