package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1),
		Pt(0.5, 0.5), Pt(0.2, 0.8), Pt(0.9, 0.1),
	}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4: %v", len(hull), hull)
	}
	// CCW orientation.
	area := NewPolygon(hull...).SignedArea()
	if area <= 0 {
		t.Errorf("hull not CCW, area = %v", area)
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	hull := ConvexHull(pts)
	if len(hull) != 2 {
		t.Errorf("collinear hull size = %d, want 2: %v", len(hull), hull)
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("nil hull = %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 2)}); len(got) != 1 {
		t.Errorf("single hull = %v", got)
	}
	if got := ConvexHull([]Point{Pt(1, 2), Pt(1, 2), Pt(1, 2)}); len(got) != 1 {
		t.Errorf("duplicate hull = %v", got)
	}
}

func TestConvexHullContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.NormFloat64()*10, rng.NormFloat64()*10)
		}
		hull := ConvexHull(pts)
		hp := NewPolygon(hull...)
		for _, p := range pts {
			if !hp.ContainsPoint(p) {
				t.Fatalf("trial %d: hull does not contain %v", trial, p)
			}
		}
		// Hull must be convex: every turn non-negative.
		for i := range hull {
			a := hull[i]
			b := hull[(i+1)%len(hull)]
			c := hull[(i+2)%len(hull)]
			if Orientation(a, b, c) < 0 {
				t.Fatalf("trial %d: reflex hull corner at %v", trial, b)
			}
		}
	}
}

func TestDiameterOnCircle(t *testing.T) {
	// Points on a circle of radius 5: diameter must be ~10.
	n := 100
	pts := make([]Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Pt(5*math.Cos(a), 5*math.Sin(a))
	}
	_, _, d := diameterCalipers(pts)
	if d < 9.98 || d > 10.001 {
		t.Errorf("circle diameter = %v", d)
	}
}
