package geom

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzPoints decodes up to maxN points from raw fuzz bytes (16 bytes per
// point, little-endian float64 pairs).
func fuzzPoints(data []byte, maxN int) []Point {
	n := len(data) / 16
	if n > maxN {
		n = maxN
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[16*i+8:]))
		pts = append(pts, Pt(x, y))
	}
	return pts
}

// snapPoints maps points onto a bounded grid (|coord| ≤ 1024, step 1/64)
// where the Eps-tolerant orientation predicate is well conditioned, so
// geometric invariants can be asserted with a meaningful tolerance.
// Points with non-finite or out-of-range coordinates are dropped.
func snapPoints(pts []Point) []Point {
	out := make([]Point, 0, len(pts))
	for _, p := range pts {
		if !p.IsFinite() || math.Abs(p.X) > 1024 || math.Abs(p.Y) > 1024 {
			continue
		}
		out = append(out, Pt(math.Round(p.X*64)/64, math.Round(p.Y*64)/64))
	}
	return out
}

func seedPointBytes(pts []Point) []byte {
	buf := make([]byte, 0, 16*len(pts))
	for _, p := range pts {
		var b [16]byte
		binary.LittleEndian.PutUint64(b[0:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(b[8:], math.Float64bits(p.Y))
		buf = append(buf, b[:]...)
	}
	return buf
}

// FuzzConvexHull checks, on arbitrary inputs, that ConvexHull never
// panics and only ever returns input points; on well-conditioned
// (snapped) inputs it additionally checks the two defining invariants:
// the hull is convex and contains every input point.
func FuzzConvexHull(f *testing.F) {
	f.Add(seedPointBytes([]Point{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1), Pt(0.5, 0.5)}))
	f.Add(seedPointBytes([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}))          // collinear
	f.Add(seedPointBytes([]Point{Pt(2, 2), Pt(2, 2), Pt(2, 2)}))                    // duplicates
	f.Add(seedPointBytes([]Point{Pt(-1024, -1024), Pt(1024, 1024), Pt(1024, -1024)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		raw := fuzzPoints(data, 64)
		// Robustness: no panic on anything, and the hull is always a
		// subset of the input (hull construction selects, never computes,
		// coordinates — so exact equality must hold).
		rawHull := ConvexHull(raw)
		// Compare by bit pattern so NaN coordinates (never equal to
		// themselves) still participate in the subset check.
		bits := func(p Point) [2]uint64 {
			return [2]uint64{math.Float64bits(p.X), math.Float64bits(p.Y)}
		}
		inputSet := make(map[[2]uint64]bool, len(raw))
		for _, p := range raw {
			inputSet[bits(p)] = true
		}
		for _, h := range rawHull {
			if !inputSet[bits(h)] {
				t.Fatalf("hull invented a point: %v", h)
			}
		}

		pts := snapPoints(raw)
		hull := ConvexHull(pts)
		if len(pts) >= 1 && len(hull) == 0 {
			t.Fatalf("hull of %d points is empty", len(pts))
		}
		if len(hull) < 3 {
			return
		}
		// Convexity: walking the hull counter-clockwise never turns right.
		h := len(hull)
		for i := 0; i < h; i++ {
			a, b, c := hull[i], hull[(i+1)%h], hull[(i+2)%h]
			if Orientation(a, b, c) < 0 {
				t.Fatalf("hull is not convex at %d: %v %v %v", i, a, b, c)
			}
		}
		// Containment: every input point lies inside or within tolerance
		// of the hull. The tolerance accommodates the Eps-scaled
		// orientation predicate on the snapped domain.
		const tol = 0.5
		poly := NewPolygon(hull...)
		for _, p := range pts {
			if poly.ContainsPoint(p) {
				continue
			}
			if d := poly.DistToPoint(p); d > tol {
				t.Fatalf("input point %v is %g outside the hull", p, d)
			}
		}
	})
}

// FuzzPointInPolygon checks that ContainsPoint never panics on arbitrary
// chains and respects two invariants on finite ones: every vertex is
// contained (vertices are on the boundary), and no point beyond the
// bounding box is.
func FuzzPointInPolygon(f *testing.F) {
	f.Add(seedPointBytes([]Point{Pt(0.5, 0.5), Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)}))
	f.Add(seedPointBytes([]Point{Pt(9, 9), Pt(0, 0), Pt(4, 0), Pt(0, 4)}))
	f.Add(seedPointBytes([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3), Pt(4, 4)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		pts := fuzzPoints(data, 33)
		if len(pts) < 1 {
			return
		}
		// First decoded point is the query; the rest form the chain.
		q, chain := pts[0], pts[1:]
		for _, closed := range []bool{true, false} {
			poly := Poly{Pts: chain, Closed: closed}
			in := poly.ContainsPoint(q) // must not panic, whatever the chain
			// Geometric invariants only hold where the arithmetic cannot
			// overflow; beyond ~1e9 the squared distances saturate.
			const rangeMax = 1e9
			wellCond := func(p Point) bool {
				return p.IsFinite() && math.Abs(p.X) <= rangeMax && math.Abs(p.Y) <= rangeMax
			}
			finite := wellCond(q)
			for _, p := range chain {
				finite = finite && wellCond(p)
			}
			if !finite || len(chain) == 0 {
				continue
			}
			// Containment is defined through edges; a single-vertex chain
			// has none and contains nothing.
			if poly.NumEdges() > 0 {
				for _, v := range chain {
					if !poly.ContainsPoint(v) {
						t.Fatalf("closed=%v: vertex %v not contained in its own chain", closed, v)
					}
				}
			}
			b := poly.Bounds()
			if in && (q.X < b.Min.X-Eps || q.X > b.Max.X+Eps ||
				q.Y < b.Min.Y-Eps || q.Y > b.Max.Y+Eps) {
				t.Fatalf("closed=%v: point %v outside bounds %v reported contained", closed, q, b)
			}
			far := Pt(b.Max.X+1+math.Abs(b.Max.X)*0.5, b.Max.Y+1)
			if far.IsFinite() && poly.ContainsPoint(far) {
				t.Fatalf("closed=%v: far point %v reported contained", closed, far)
			}
		}
	})
}
