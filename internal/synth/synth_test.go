package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestGenerateBaseDeterministic(t *testing.T) {
	spec := BaseSpec{Images: 20, MeanShapes: 3, MeanVertices: 12, Prototypes: 4, Distortion: 0.01, Seed: 5}
	a := GenerateBase(spec)
	b := GenerateBase(spec)
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("image counts %d %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Shapes) != len(b[i].Shapes) {
			t.Fatalf("image %d shape counts differ", i)
		}
		for s := range a[i].Shapes {
			for v := range a[i].Shapes[s].Pts {
				if a[i].Shapes[s].Pts[v] != b[i].Shapes[s].Pts[v] {
					t.Fatalf("nondeterministic vertex %d/%d/%d", i, s, v)
				}
			}
		}
	}
}

func TestGenerateBaseStatistics(t *testing.T) {
	spec := PaperSpec(0.02, 7) // 200 images
	images := GenerateBase(spec)
	if len(images) != 200 {
		t.Fatalf("images = %d", len(images))
	}
	totShapes, totVerts := 0, 0
	for _, img := range images {
		if len(img.Shapes) == 0 {
			t.Fatalf("image %d has no shapes", img.ID)
		}
		if len(img.Shapes) != len(img.Class) {
			t.Fatalf("image %d class labels missing", img.ID)
		}
		totShapes += len(img.Shapes)
		for _, s := range img.Shapes {
			totVerts += s.NumVertices()
		}
	}
	meanShapes := float64(totShapes) / float64(len(images))
	if meanShapes < 4 || meanShapes > 7 {
		t.Errorf("mean shapes per image = %v, want ≈5.5", meanShapes)
	}
	meanVerts := float64(totVerts) / float64(totShapes)
	if meanVerts < 15 || meanVerts > 27 {
		t.Errorf("mean vertices per shape = %v, want ≈20", meanVerts)
	}
}

func TestAllShapesValid(t *testing.T) {
	images := GenerateBase(BaseSpec{Images: 60, MeanShapes: 4, MeanVertices: 16, Prototypes: 10, Distortion: 0.02, OpenFraction: 0.3, Seed: 11})
	open, closed := 0, 0
	for _, img := range images {
		for si, s := range img.Shapes {
			if err := s.Validate(); err != nil {
				t.Fatalf("image %d shape %d invalid: %v", img.ID, si, err)
			}
			if s.Closed {
				closed++
			} else {
				open++
			}
		}
	}
	if open == 0 || closed == 0 {
		t.Errorf("expected a mix of open (%d) and closed (%d) shapes", open, closed)
	}
}

func TestPrototypeClassesDiffer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Prototype(rng, 0, 20, false)
	b := Prototype(rng, 1, 20, false)
	// Same class regenerates the same radial profile (vertex counts may
	// differ because of rng, but profiles are class-seeded): compare
	// against class 0 again with a fresh rng at the same state.
	if a.NumVertices() < 4 || b.NumVertices() < 4 {
		t.Fatal("degenerate prototypes")
	}
	// Different classes should differ substantially after normalization.
	if a.NumVertices() == b.NumVertices() {
		same := true
		for i := range a.Pts {
			if !a.Pts[i].Eq(b.Pts[i], 1e-9) {
				same = false
				break
			}
		}
		if same {
			t.Error("distinct classes produced identical prototypes")
		}
	}
}

func TestInstanceIsPlacedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	proto := Prototype(rng, 2, 16, false)
	inst := Instance(rng, proto, 0.01)
	if err := inst.Validate(); err != nil {
		t.Fatalf("instance invalid: %v", err)
	}
	if inst.NumVertices() != proto.NumVertices() {
		t.Errorf("vertex count changed: %d vs %d", inst.NumVertices(), proto.NumVertices())
	}
	// The instance must actually be moved (placement is random).
	if inst.Pts[0].Eq(proto.Pts[0], 1e-9) {
		t.Error("instance not transformed")
	}
}

func TestDistortMagnitude(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := geom.NewPolygon(geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(10, 10), geom.Pt(0, 10))
	_, _, d := p.Diameter()
	q := Distort(rng, p, 0.01)
	for i := range p.Pts {
		if dd := p.Pts[i].Dist(q.Pts[i]); dd > 0.01*d*math.Sqrt2+1e-9 {
			t.Errorf("vertex %d moved %v, max %v", i, dd, 0.01*d*math.Sqrt2)
		}
	}
	if got := Distort(rng, p, 0); got.Pts[0] != p.Pts[0] {
		t.Error("zero distortion should be identity")
	}
}

func TestQueriesValidAndDerived(t *testing.T) {
	images := GenerateBase(BaseSpec{Images: 30, MeanShapes: 3, MeanVertices: 14, Prototypes: 5, Distortion: 0.01, Seed: 2})
	rng := rand.New(rand.NewSource(4))
	qs := Queries(rng, images, 15, 0.02)
	if len(qs) != 15 {
		t.Fatalf("query count = %d", len(qs))
	}
	for i, q := range qs {
		if err := q.Validate(); err != nil {
			t.Errorf("query %d invalid: %v", i, err)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 20000
	sum := 0
	for i := 0; i < n; i++ {
		sum += poisson(rng, 4.5)
	}
	mean := float64(sum) / n
	if mean < 4.3 || mean > 4.7 {
		t.Errorf("poisson mean = %v, want ≈4.5", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("zero-mean poisson should be 0")
	}
}

func TestStarShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range []int{3, 5, 12} {
		s := Star(rng, c, 0.02)
		if err := s.Validate(); err != nil {
			t.Fatalf("c=%d: %v", c, err)
		}
		if s.NumVertices() != 2*c {
			t.Errorf("c=%d: vertices = %d", c, s.NumVertices())
		}
		if !s.Closed {
			t.Errorf("c=%d: star should be closed", c)
		}
	}
	// Degenerate corner counts clamp to 3.
	if s := Star(rng, 1, 0); s.NumVertices() != 6 {
		t.Errorf("clamped star vertices = %d", s.NumVertices())
	}
	// Zero noise is deterministic.
	a := Star(rng, 7, 0)
	b := Star(rng, 7, 0)
	for i := range a.Pts {
		if a.Pts[i] != b.Pts[i] {
			t.Fatal("noise-free stars should be identical")
		}
	}
}

func TestZipfStarImages(t *testing.T) {
	images := ZipfStarImages(ZipfStarSpec{Shapes: 600, MinC: 3, MaxC: 10, Noise: 0.01, Seed: 4})
	if len(images) != 600 {
		t.Fatalf("images = %d", len(images))
	}
	counts := map[int]int{}
	for _, img := range images {
		if len(img.Shapes) != 1 || len(img.Class) != 1 {
			t.Fatal("one shape per image expected")
		}
		if err := img.Shapes[0].Validate(); err != nil {
			t.Fatalf("image %d: %v", img.ID, err)
		}
		c := img.Class[0]
		if c < 3 || c > 10 {
			t.Fatalf("class %d out of range", c)
		}
		counts[c]++
	}
	// Zipf: class 3 must be clearly more frequent than class 10.
	if counts[3] < 2*counts[10] {
		t.Errorf("zipf shape: count(3)=%d count(10)=%d", counts[3], counts[10])
	}
	// Defaults clamp.
	tiny := ZipfStarImages(ZipfStarSpec{Shapes: 0, MinC: 0, MaxC: 0, Seed: 1})
	if len(tiny) != 1 {
		t.Errorf("clamped spec images = %d", len(tiny))
	}
}

func TestPaperSpecScaling(t *testing.T) {
	s := PaperSpec(0.5, 9)
	if s.Images != 5000 {
		t.Errorf("Images = %d", s.Images)
	}
	if s.MeanShapes != 5.5 || s.MeanVertices != 20 {
		t.Errorf("spec = %+v", s)
	}
	if PaperSpec(0, 9).Images != 1 {
		t.Error("zero scale should clamp to 1 image")
	}
}
