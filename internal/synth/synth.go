// Package synth generates synthetic shapes, images, and query workloads.
//
// The paper's experiments (§4, §5.2) run on a base of 10,000 images with
// an average of 5.5 shapes per image and about 20 vertices per shape,
// queried with user-drafted sketches. The originals are unavailable, so
// this package produces the closest synthetic equivalent: a pool of
// prototype object boundaries, instantiated per image with controlled
// distortion, rotation, scaling and translation — which preserves exactly
// the properties the experiments measure (match-cluster structure,
// vertex-count statistics, locality of similar shapes).
package synth

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Image is a synthetic image: a set of object-boundary shapes.
type Image struct {
	ID     int
	Shapes []geom.Poly
	// Class[i] is the prototype class of Shapes[i] (ground truth for
	// retrieval-quality checks).
	Class []int
}

// BaseSpec configures GenerateBase.
type BaseSpec struct {
	Images       int     // number of images
	MeanShapes   float64 // mean shapes per image (Poisson-ish, ≥ 1)
	MeanVertices int     // mean vertices per shape
	Prototypes   int     // size of the prototype pool
	Distortion   float64 // per-vertex jitter as a fraction of diameter
	OpenFraction float64 // fraction of prototypes that are open polylines
	Seed         int64
}

// PaperSpec returns the paper's base statistics (§4.1) scaled by the
// given factor in image count: 10,000 images × 5.5 shapes × ~20 vertices.
func PaperSpec(scale float64, seed int64) BaseSpec {
	img := int(10000 * scale)
	if img < 1 {
		img = 1
	}
	return BaseSpec{
		Images:       img,
		MeanShapes:   5.5,
		MeanVertices: 20,
		Prototypes:   max(8, img/25),
		Distortion:   0.015,
		OpenFraction: 0.25,
		Seed:         seed,
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GenerateBase produces the synthetic image base. Deterministic for a
// fixed spec (all randomness from spec.Seed).
func GenerateBase(spec BaseSpec) []Image {
	rng := rand.New(rand.NewSource(spec.Seed))
	if spec.Images < 1 {
		spec.Images = 1
	}
	if spec.MeanShapes < 1 {
		spec.MeanShapes = 1
	}
	if spec.MeanVertices < 4 {
		spec.MeanVertices = 4
	}
	if spec.Prototypes < 1 {
		spec.Prototypes = 1
	}
	protos := make([]geom.Poly, spec.Prototypes)
	for i := range protos {
		open := rng.Float64() < spec.OpenFraction
		protos[i] = Prototype(rng, i, spec.MeanVertices, open)
	}
	images := make([]Image, spec.Images)
	for i := range images {
		n := 1 + poisson(rng, spec.MeanShapes-1)
		img := Image{ID: i, Shapes: make([]geom.Poly, 0, n), Class: make([]int, 0, n)}
		for s := 0; s < n; s++ {
			class := rng.Intn(len(protos))
			sh := Instance(rng, protos[class], spec.Distortion)
			img.Shapes = append(img.Shapes, sh)
			img.Class = append(img.Class, class)
		}
		images[i] = img
	}
	return images
}

// poisson draws a Poisson-distributed count with the given mean (Knuth's
// method; the means here are small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}

// Prototype deterministically generates the class-th prototype boundary:
// a star polygon whose radial profile is a class-seeded mixture of
// harmonics, or an open arc-like polyline. Prototypes are simple
// (non-self-intersecting) by construction.
func Prototype(rng *rand.Rand, class, meanVerts int, open bool) geom.Poly {
	n := meanVerts + rng.Intn(meanVerts/2+1) - meanVerts/4
	if n < 4 {
		n = 4
	}
	// Class-seeded harmonics make prototypes mutually dissimilar.
	h := rand.New(rand.NewSource(int64(class)*7919 + 17))
	a1 := 0.1 + 0.25*h.Float64()
	a2 := 0.1 + 0.2*h.Float64()
	p1 := h.Float64() * 2 * math.Pi
	p2 := h.Float64() * 2 * math.Pi
	k1 := 2 + h.Intn(3)
	k2 := 3 + h.Intn(4)

	if open {
		// Open boundary: a wavy arc spanning ~3/4 of the circle.
		pts := make([]geom.Point, n)
		for i := range pts {
			t := float64(i) / float64(n-1)
			ang := t * 1.5 * math.Pi
			r := 1 + a1*math.Sin(float64(k1)*ang+p1) + a2*math.Cos(float64(k2)*ang+p2)
			pts[i] = geom.Pt(r*math.Cos(ang), r*math.Sin(ang))
		}
		return geom.NewPolyline(pts...)
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := 1 + a1*math.Sin(float64(k1)*ang+p1) + a2*math.Cos(float64(k2)*ang+p2)
		pts[i] = geom.Pt(r*math.Cos(ang), r*math.Sin(ang))
	}
	return geom.NewPolygon(pts...)
}

// Instance produces a placed, distorted copy of a prototype: jitter each
// vertex by up to distortion·diameter, then rotate/scale/translate
// randomly. The result is guaranteed simple (falls back to the undistorted
// placement if jitter keeps self-intersecting).
func Instance(rng *rand.Rand, proto geom.Poly, distortion float64) geom.Poly {
	place := geom.Transform{
		S:     0.5 + rng.Float64()*2,
		Theta: rng.Float64() * 2 * math.Pi,
		T:     geom.Pt(rng.Float64()*100, rng.Float64()*100),
	}
	for attempt := 0; attempt < 8; attempt++ {
		q := Distort(rng, proto, distortion)
		if q.Validate() == nil {
			return q.Transform(place)
		}
	}
	return proto.Transform(place)
}

// Distort jitters every vertex by up to mag·diameter in each coordinate.
func Distort(rng *rand.Rand, p geom.Poly, mag float64) geom.Poly {
	_, _, d := p.Diameter()
	q := p.Clone()
	for i := range q.Pts {
		q.Pts[i] = q.Pts[i].Add(geom.Pt(
			(rng.Float64()*2-1)*mag*d,
			(rng.Float64()*2-1)*mag*d,
		))
	}
	return q
}

// Queries draws a workload of query shapes: each is a distorted copy of a
// shape already in the base ("sketches of known objects"), guaranteed
// valid.
func Queries(rng *rand.Rand, images []Image, count int, distortion float64) []geom.Poly {
	out := make([]geom.Poly, 0, count)
	for len(out) < count {
		img := images[rng.Intn(len(images))]
		if len(img.Shapes) == 0 {
			continue
		}
		src := img.Shapes[rng.Intn(len(img.Shapes))]
		q := Distort(rng, src, distortion)
		if q.Validate() != nil {
			q = src.Clone()
		}
		out = append(out, q)
	}
	return out
}

// Star generates a c-pointed star polygon with outer radius 1, inner
// radius 0.35, and per-vertex radial noise. Star families underlie the
// Figure 10 selectivity experiment: V_S grows roughly linearly with c,
// and deep spikes keep different c-classes dissimilar under the average
// measure.
func Star(rng *rand.Rand, c int, noise float64) geom.Poly {
	if c < 3 {
		c = 3
	}
	for attempt := 0; attempt < 16; attempt++ {
		pts := make([]geom.Point, 2*c)
		for i := range pts {
			th := math.Pi * float64(i) / float64(c)
			r := 1.0
			if i%2 == 1 {
				r = 0.35
			}
			r += noise * (rng.Float64()*2 - 1)
			pts[i] = geom.Pt(r*math.Cos(th), r*math.Sin(th))
		}
		p := geom.NewPolygon(pts...)
		if p.Validate() == nil {
			return p
		}
	}
	// Noise-free stars are always simple.
	return Star(rng, c, 0)
}

// ZipfStarSpec configures ZipfStarImages.
type ZipfStarSpec struct {
	Shapes int     // total shapes to generate
	MinC   int     // smallest corner count (≥ 3)
	MaxC   int     // largest corner count
	Noise  float64 // per-vertex radial noise
	Seed   int64
}

// ZipfStarImages generates a complexity-graded base: star shapes whose
// corner count c follows a Zipf-like 1/c frequency — the natural-image
// property (simple boundaries are more common than structured ones) on
// which the paper's Figure 10 selectivity law rests. One shape per image.
func ZipfStarImages(spec ZipfStarSpec) []Image {
	if spec.Shapes < 1 {
		spec.Shapes = 1
	}
	if spec.MinC < 3 {
		spec.MinC = 3
	}
	if spec.MaxC < spec.MinC {
		spec.MaxC = spec.MinC + 9
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var tot float64
	for c := spec.MinC; c <= spec.MaxC; c++ {
		tot += 1 / float64(c)
	}
	drawC := func() int {
		u := rng.Float64() * tot
		for c := spec.MinC; c <= spec.MaxC; c++ {
			u -= 1 / float64(c)
			if u <= 0 {
				return c
			}
		}
		return spec.MaxC
	}
	images := make([]Image, spec.Shapes)
	for i := range images {
		c := drawC()
		images[i] = Image{
			ID:     i,
			Shapes: []geom.Poly{Star(rng, c, spec.Noise)},
			Class:  []int{c},
		}
	}
	return images
}
