// Package geohash implements the geometric hashing of §3: when the
// fattening algorithm finds no sufficiently similar shape, retrieval
// falls back to an approximate match through a family of unit-radius
// circular arcs that uniformly covers the lune (the locus of vertices of
// diameter-normalized shapes, split into four quarters). Each shape is
// associated with the curve per quarter that minimizes the average
// distance of its vertices in that quarter; lookup collects the shapes
// sharing the query's characteristic curves.
package geohash

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// Quarter identifies one of the four quarters of the lune (Figure 4): the
// lune is split by the vertical line x = 1/2 and the horizontal axis.
type Quarter int

// The four quarters. Q1 and Q3 use arcs through (0,0); Q2 and Q4 arcs
// through (1,0).
const (
	Q1 Quarter = iota // upper left
	Q2                // upper right
	Q3                // lower left
	Q4                // lower right
)

// QuarterOf classifies a point of the lune into its quarter.
func QuarterOf(p geom.Point) Quarter {
	if p.Y >= 0 {
		if p.X < 0.5 {
			return Q1
		}
		return Q2
	}
	if p.X < 0.5 {
		return Q3
	}
	return Q4
}

// toQ1 maps a point of any quarter into the upper-left quarter's frame by
// the lune's mirror symmetries.
func toQ1(q Quarter, p geom.Point) geom.Point {
	switch q {
	case Q2:
		return geom.Pt(1-p.X, p.Y)
	case Q3:
		return geom.Pt(p.X, -p.Y)
	case Q4:
		return geom.Pt(1-p.X, -p.Y)
	default:
		return p
	}
}

// E computes the area function of §3 in closed form:
//
//	E(x) = ∫₀^min(2x,1/2) ( √(1-(t-x)²) − √(1-x²) ) dt
//	     = H(u-x) − H(−x) − u·√(1-x²),  u = min(2x, 1/2),
//
// with H(w) = (w·√(1-w²) + asin w)/2 the antiderivative of √(1-w²).
// E is the area swept in the upper-left quarter between the x-axis and
// the arc of the unit circle centered at (x, −√(1-x²)); it grows
// continuously from E(0)=0 to E(1)=A₀/4.
func E(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x > 1 {
		x = 1
	}
	u := math.Min(2*x, 0.5)
	return hAnti(u-x) - hAnti(-x) - u*math.Sqrt(1-x*x)
}

func hAnti(w float64) float64 {
	w = math.Max(-1, math.Min(1, w))
	return (w*math.Sqrt(1-w*w) + math.Asin(w)) / 2
}

// DE computes ∂E/∂x, continuous on (0,1) (Figure 5, right):
//
//	x < 1/4:  dE/dx = 2x²/√(1-x²)
//	x ≥ 1/4:  dE/dx = √(1-x²) − √(1-(1/2−x)²) + x/√(1-x²)·1/2
func DE(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		x = 1 - 1e-12
	}
	s := math.Sqrt(1 - x*x)
	if x < 0.25 {
		return 2 * x * x / s
	}
	u := 0.5
	return s - math.Sqrt(1-(u-x)*(u-x)) + u*x/s
}

// Family is a family of K unit-radius arcs per quarter partitioning each
// quarter into K regions of equal area A₀/(4K). Arc i (1-based) in the
// Q1 frame belongs to the unit circle centered at (xᵢ, −√(1-xᵢ²)), where
// xᵢ solves E(xᵢ) = (A₀/4)·(i/K).
type Family struct {
	K  int
	xs []float64 // xs[i-1] = xᵢ, increasing, xs[K-1] = 1
}

// NewFamily solves the K equal-area equations with a Newton iteration
// safeguarded by bisection ("fast gradient-based numerical methods").
func NewFamily(k int) (*Family, error) {
	if k < 1 {
		return nil, fmt.Errorf("geohash: family size %d < 1", k)
	}
	quarterArea := core.LuneArea / 4
	f := &Family{K: k, xs: make([]float64, k)}
	for i := 1; i <= k; i++ {
		target := quarterArea * float64(i) / float64(k)
		x, err := solveE(target)
		if err != nil {
			return nil, fmt.Errorf("geohash: solving curve %d/%d: %w", i, k, err)
		}
		f.xs[i-1] = x
	}
	return f, nil
}

// solveE finds x ∈ [0,1] with E(x) = target.
func solveE(target float64) (float64, error) {
	lo, hi := 0.0, 1.0
	if target <= 0 {
		return 0, nil
	}
	if target >= E(1) {
		return 1, nil
	}
	x := 0.5
	for iter := 0; iter < 100; iter++ {
		v := E(x) - target
		if math.Abs(v) < 1e-14 {
			return x, nil
		}
		if v > 0 {
			hi = x
		} else {
			lo = x
		}
		// Newton step, clamped into the bracket.
		d := DE(x)
		var nx float64
		if d > 1e-12 {
			nx = x - v/d
		}
		if !(nx > lo && nx < hi) {
			nx = (lo + hi) / 2
		}
		if math.Abs(nx-x) < 1e-15 {
			return nx, nil
		}
		x = nx
	}
	if hi-lo < 1e-9 {
		return (lo + hi) / 2, nil
	}
	return 0, fmt.Errorf("no convergence for target %v", target)
}

// CurveX returns the xᵢ parameter of the 1-based curve index i.
func (f *Family) CurveX(i int) float64 {
	if i < 1 {
		i = 1
	}
	if i > f.K {
		i = f.K
	}
	return f.xs[i-1]
}

// arcCenter returns the Q1-frame center of the curve with parameter x.
func arcCenter(x float64) geom.Point {
	return geom.Pt(x, -math.Sqrt(math.Max(0, 1-x*x)))
}

// distToArc returns the distance from a Q1-frame point to the full circle
// carrying curve x (the standard approximation of arc distance inside the
// quarter).
func distToArc(x float64, p geom.Point) float64 {
	return math.Abs(p.Dist(arcCenter(x)) - 1)
}

// DistToCurve returns the distance from p (in lune coordinates, any
// quarter) to curve i of quarter q.
func (f *Family) DistToCurve(q Quarter, i int, p geom.Point) float64 {
	return distToArc(f.CurveX(i), toQ1(q, p))
}

// avgDist returns the average distance of the (Q1-frame) points to the
// curve with parameter x.
func avgDist(x float64, pts []geom.Point) float64 {
	if len(pts) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, p := range pts {
		s += distToArc(x, p)
	}
	return s / float64(len(pts))
}

// bestCurveContinuous minimizes the average distance over the continuous
// family x ∈ [0,1]. For vertex sets that hug a single arc the objective
// has one local minimum (§3) and golden-section search suffices; for
// scattered clusters it can develop shallow secondary basins, so the
// search is seeded by a coarse grid scan and golden-section only refines
// the winning bracket.
func bestCurveContinuous(pts []geom.Point) float64 {
	const gridN = 96
	bestI, bestF := 0, math.Inf(1)
	for i := 0; i <= gridN; i++ {
		x := float64(i) / gridN
		if f := avgDist(x, pts); f < bestF {
			bestI, bestF = i, f
		}
	}
	lo := math.Max(0, float64(bestI-1)/gridN)
	hi := math.Min(1, float64(bestI+1)/gridN)

	const phi = 0.6180339887498949
	a := hi - phi*(hi-lo)
	b := lo + phi*(hi-lo)
	fa, fb := avgDist(a, pts), avgDist(b, pts)
	for iter := 0; iter < 60 && hi-lo > 1e-10; iter++ {
		if fa < fb {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = avgDist(a, pts)
		} else {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = avgDist(b, pts)
		}
	}
	return (lo + hi) / 2
}

// Characteristic computes the characteristic curve index (1-based) of the
// point set in each quarter: the discrete curve minimizing the average
// vertex distance. Quarters containing no vertices get index 0. Points
// outside the lune are clamped onto its boundary first (§3).
func (f *Family) Characteristic(pts []geom.Point) Quadruple {
	var buckets [4][]geom.Point
	for _, p := range pts {
		if !core.InLune(p) {
			p = core.ClampToLune(p)
		}
		q := QuarterOf(p)
		buckets[q] = append(buckets[q], toQ1(q, p))
	}
	var out Quadruple
	for q := 0; q < 4; q++ {
		if len(buckets[q]) == 0 {
			out[q] = 0
			continue
		}
		xStar := bestCurveContinuous(buckets[q])
		out[q] = f.nearestIndex(xStar, buckets[q])
	}
	return out
}

// nearestIndex maps the continuous optimum to the best discrete neighbor,
// comparing the actual average distance of the two candidates around the
// optimum ("select the discrete neighbor that lies closest").
func (f *Family) nearestIndex(xStar float64, pts []geom.Point) int {
	// Locate by area fraction: i ≈ E(x*) / (A₀/4K).
	frac := E(xStar) / (core.LuneArea / 4)
	i := int(math.Round(frac * float64(f.K)))
	best, bestD := 0, math.Inf(1)
	for _, c := range [3]int{i - 1, i, i + 1} {
		if c < 1 || c > f.K {
			continue
		}
		if d := avgDist(f.xs[c-1], pts); d < bestD {
			best, bestD = c, d
		}
	}
	if best == 0 {
		best = 1
		if i > f.K {
			best = f.K
		}
	}
	return best
}

// Quadruple is the characteristic hash signature of a shape: one curve
// index per quarter (1-based; 0 = no vertices in that quarter). It is
// also the sort key of the external-storage layouts (§4.1).
type Quadruple [4]int

// Mean returns round((c1+c2+c3+c4)/4) over the non-empty quarters —
// sorting method (i) of §4.1.
func (q Quadruple) Mean() int {
	sum, n := 0, 0
	for _, c := range q {
		if c > 0 {
			sum += c
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return int(math.Round(float64(sum) / float64(n)))
}

// MedianNearMean implements sorting method (iii) of §4.1: sort the four
// elements, take the two medians, and of those pick the one closest to
// the mean.
func (q Quadruple) MedianNearMean() int {
	vals := []int{q[0], q[1], q[2], q[3]}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	m1, m2 := vals[1], vals[2]
	mean := float64(vals[0]+vals[1]+vals[2]+vals[3]) / 4
	if math.Abs(float64(m1)-mean) <= math.Abs(float64(m2)-mean) {
		return m1
	}
	return m2
}

// Less orders quadruples lexicographically — sorting method (ii) of §4.1.
func (q Quadruple) Less(r Quadruple) bool {
	for i := 0; i < 4; i++ {
		if q[i] != r[i] {
			return q[i] < r[i]
		}
	}
	return false
}
