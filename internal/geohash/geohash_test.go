package geohash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEEndpoints(t *testing.T) {
	if E(0) != 0 {
		t.Errorf("E(0) = %v", E(0))
	}
	// E(1) must equal a quarter of the lune area.
	if !almostEq(E(1), core.LuneArea/4, 1e-12) {
		t.Errorf("E(1) = %v, want %v", E(1), core.LuneArea/4)
	}
	if E(-0.5) != 0 {
		t.Errorf("E clamps below 0")
	}
	if !almostEq(E(2), E(1), 1e-12) {
		t.Errorf("E clamps above 1")
	}
}

func TestEMatchesNumericalIntegral(t *testing.T) {
	// Validate the closed form against a direct Riemann sum.
	for _, x := range []float64{0.05, 0.1, 0.2, 0.25, 0.4, 0.6, 0.8, 0.95} {
		u := math.Min(2*x, 0.5)
		const n = 200000
		var sum float64
		for i := 0; i < n; i++ {
			tt := u * (float64(i) + 0.5) / n
			sum += math.Sqrt(1-(tt-x)*(tt-x)) - math.Sqrt(1-x*x)
		}
		sum *= u / n
		if !almostEq(E(x), sum, 1e-6) {
			t.Errorf("E(%v) = %v, integral %v", x, E(x), sum)
		}
	}
}

func TestEMonotoneAndContinuous(t *testing.T) {
	prev := E(0)
	for i := 1; i <= 1000; i++ {
		x := float64(i) / 1000
		cur := E(x)
		if cur < prev-1e-12 {
			t.Fatalf("E not monotone at %v", x)
		}
		// E is continuous but its derivative has a √-singularity at x = 1
		// (see the paper's Figure 5 right plot rising steeply), so the
		// admissible local increment grows near the right endpoint.
		// Near x = 1 the increment of a 1e-3 step approaches
		// 0.5·√(2·1e-3) ≈ 0.022 because of the √-singularity.
		tol := 0.002
		if x > 0.9 {
			tol = 0.025
		}
		if cur-prev > tol {
			t.Fatalf("E jumps at %v: %v -> %v", x, prev, cur)
		}
		prev = cur
	}
}

func TestDEMatchesFiniteDifference(t *testing.T) {
	for _, x := range []float64{0.05, 0.2, 0.24, 0.26, 0.5, 0.7, 0.9} {
		h := 1e-6
		fd := (E(x+h) - E(x-h)) / (2 * h)
		if !almostEq(DE(x), fd, 1e-4) {
			t.Errorf("DE(%v) = %v, finite difference %v", x, DE(x), fd)
		}
	}
	// Continuity across the x = 1/4 regime switch.
	if !almostEq(DE(0.25-1e-9), DE(0.25+1e-9), 1e-6) {
		t.Errorf("DE discontinuous at 1/4: %v vs %v", DE(0.25-1e-9), DE(0.25+1e-9))
	}
}

func TestNewFamilyEqualAreas(t *testing.T) {
	for _, k := range []int{1, 5, 50} {
		f, err := NewFamily(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(f.xs) != k {
			t.Fatalf("k=%d: %d curves", k, len(f.xs))
		}
		quarter := core.LuneArea / 4
		for i := 1; i <= k; i++ {
			want := quarter * float64(i) / float64(k)
			if got := E(f.CurveX(i)); !almostEq(got, want, 1e-9) {
				t.Errorf("k=%d curve %d: E = %v, want %v", k, i, got, want)
			}
		}
		// Curves ordered by parameter.
		for i := 1; i < k; i++ {
			if f.xs[i] <= f.xs[i-1] {
				t.Errorf("k=%d: xs not increasing at %d", k, i)
			}
		}
		// Last curve is the lune boundary (x = 1).
		if !almostEq(f.CurveX(k), 1, 1e-9) {
			t.Errorf("k=%d: last curve x = %v", k, f.CurveX(k))
		}
	}
	if _, err := NewFamily(0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestQuarterOf(t *testing.T) {
	cases := []struct {
		p geom.Point
		q Quarter
	}{
		{geom.Pt(0.2, 0.3), Q1},
		{geom.Pt(0.8, 0.3), Q2},
		{geom.Pt(0.2, -0.3), Q3},
		{geom.Pt(0.8, -0.3), Q4},
		{geom.Pt(0.5, 0.1), Q2}, // boundary x=0.5 goes right
		{geom.Pt(0.2, 0), Q1},   // y=0 counts as upper
	}
	for _, c := range cases {
		if got := QuarterOf(c.p); got != c.q {
			t.Errorf("QuarterOf(%v) = %v, want %v", c.p, got, c.q)
		}
	}
}

func TestToQ1RoundTrip(t *testing.T) {
	p := geom.Pt(0.7, -0.4)
	q := QuarterOf(p)
	if q != Q4 {
		t.Fatal("setup")
	}
	m := toQ1(q, p)
	if !m.Eq(geom.Pt(0.3, 0.4), 1e-12) {
		t.Errorf("toQ1 = %v", m)
	}
	if got := QuarterOf(m); got != Q1 {
		t.Errorf("mapped point is in %v", got)
	}
}

func TestArcDistances(t *testing.T) {
	f, _ := NewFamily(10)
	// The last curve (x=1) is the unit circle centered at (1, 0) — wait,
	// arcCenter(1) = (1, 0); points on the lune's left boundary circle
	// |p - (1,0)| = 1 are at distance 0.
	p := geom.Pt(1, 0).Add(geom.Pt(-math.Cos(0.3), math.Sin(0.3)))
	if d := f.DistToCurve(Q1, 10, p); !almostEq(d, 0, 1e-12) {
		t.Errorf("boundary point distance = %v", d)
	}
	// Curve through (0,0): every curve passes through the origin.
	for i := 1; i <= 10; i++ {
		if d := f.DistToCurve(Q1, i, geom.Pt(0, 0)); !almostEq(d, 0, 1e-9) {
			t.Errorf("curve %d should pass through (0,0): %v", i, d)
		}
	}
}

func TestCharacteristicOnCurvePoints(t *testing.T) {
	// Points sampled exactly on a family curve must hash to that curve.
	f, _ := NewFamily(50)
	for _, i := range []int{5, 17, 30, 44} {
		x := f.CurveX(i)
		// Parametrize the arc by its horizontal coordinate t: the curve is
		// y(t) = √(1-(t-x)²) − √(1-x²) for t ∈ [0, min(2x, 1/2)].
		u := math.Min(2*x, 0.5)
		var pts []geom.Point
		for a := 1; a <= 12; a++ {
			tt := u * float64(a) / 13
			p := geom.Pt(tt, math.Sqrt(1-(tt-x)*(tt-x))-math.Sqrt(1-x*x))
			if p.X >= 0 && p.X < 0.5 && p.Y >= 0 && core.InLune(p) {
				pts = append(pts, p)
			}
		}
		if len(pts) < 3 {
			t.Fatalf("curve %d: only %d usable sample points", i, len(pts))
		}
		quad := f.Characteristic(pts)
		if quad[Q1] != i {
			t.Errorf("curve %d hashed to %d", i, quad[Q1])
		}
		for _, q := range []Quarter{Q2, Q3, Q4} {
			if quad[q] != 0 {
				t.Errorf("empty quarter %v got curve %d", q, quad[q])
			}
		}
	}
}

func TestCharacteristicClampsOutsideLune(t *testing.T) {
	f, _ := NewFamily(20)
	// α-diameter copies can put vertices outside the lune.
	pts := []geom.Point{geom.Pt(-0.3, 0.4), geom.Pt(0.2, 1.4), geom.Pt(0.3, 0.2)}
	quad := f.Characteristic(pts)
	if quad[Q1] < 1 || quad[Q1] > 20 {
		t.Errorf("clamped characteristic = %v", quad)
	}
}

func TestQuadrupleKeys(t *testing.T) {
	q := Quadruple{4, 8, 6, 2}
	if q.Mean() != 5 {
		t.Errorf("Mean = %d", q.Mean())
	}
	// sorted: 2 4 6 8, medians 4 and 6, mean 5: tie goes to the lower.
	if q.MedianNearMean() != 4 {
		t.Errorf("MedianNearMean = %d", q.MedianNearMean())
	}
	q2 := Quadruple{4, 8, 7, 2}
	// sorted: 2 4 7 8, medians 4, 7; mean 5.25 → 4 is closer.
	if q2.MedianNearMean() != 4 {
		t.Errorf("MedianNearMean = %d", q2.MedianNearMean())
	}
	// Empty quarters are excluded from the mean.
	if (Quadruple{0, 10, 0, 20}).Mean() != 15 {
		t.Errorf("Mean with empties = %d", (Quadruple{0, 10, 0, 20}).Mean())
	}
	if (Quadruple{}).Mean() != 0 {
		t.Error("all-empty Mean should be 0")
	}
	if !(Quadruple{1, 2, 3, 4}).Less(Quadruple{1, 2, 4, 0}) {
		t.Error("lexicographic Less broken")
	}
	if (Quadruple{1, 2, 3, 4}).Less(Quadruple{1, 2, 3, 4}) {
		t.Error("Less on equal should be false")
	}
}

func TestTableInsertLookup(t *testing.T) {
	f, _ := NewFamily(30)
	tab := NewTable(f)
	if err := tab.Insert(1, Quadruple{3, 7, 0, 12}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(2, Quadruple{3, 9, 5, 0}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(3, Quadruple{20, 21, 22, 23}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(1, Quadruple{}); err == nil {
		t.Error("duplicate insert should fail")
	}
	if tab.Len() != 3 {
		t.Errorf("Len = %d", tab.Len())
	}
	// Exact lookup: shares curve 3 in Q1 with shapes 1 and 2.
	got := tab.Lookup(Quadruple{3, 0, 0, 0}, 0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Lookup = %v", got)
	}
	// Radius widens the net.
	got = tab.Lookup(Quadruple{0, 8, 0, 0}, 1)
	if len(got) != 2 {
		t.Errorf("radius lookup = %v", got)
	}
	// Zero-quarters in the query are skipped.
	if got := tab.Lookup(Quadruple{}, 3); len(got) != 0 {
		t.Errorf("empty query returned %v", got)
	}
	if q, ok := tab.Quad(3); !ok || q != (Quadruple{20, 21, 22, 23}) {
		t.Errorf("Quad = %v %v", q, ok)
	}
	if _, ok := tab.Quad(99); ok {
		t.Error("missing id should not be found")
	}
	mean, max := tab.BucketStats()
	if mean <= 0 || max < 2 {
		t.Errorf("BucketStats = %v %v", mean, max)
	}
}

// Similar shapes should land on the same or adjacent curves.
func TestSimilarShapesShareCurves(t *testing.T) {
	f, _ := NewFamily(50)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		// A random cluster of points in the lune.
		n := 6 + rng.Intn(10)
		base := make([]geom.Point, 0, n)
		for len(base) < n {
			p := geom.Pt(rng.Float64(), rng.Float64()*1.7-0.85)
			if core.InLune(p) {
				base = append(base, p)
			}
		}
		jig := make([]geom.Point, n)
		for i, p := range base {
			jig[i] = p.Add(geom.Pt(rng.NormFloat64()*0.002, rng.NormFloat64()*0.002))
		}
		q1 := f.Characteristic(base)
		q2 := f.Characteristic(jig)
		for q := 0; q < 4; q++ {
			if d := q1[q] - q2[q]; d < -1 || d > 1 {
				t.Errorf("trial %d quarter %d: curves %d vs %d", trial, q, q1[q], q2[q])
			}
		}
	}
}

// Property: the characteristic curve index is always in [0, K].
func TestQuickCharacteristicRange(t *testing.T) {
	f, _ := NewFamily(25)
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*1.5-0.25, rng.Float64()*2-1)
		}
		quad := f.Characteristic(pts)
		for q := 0; q < 4; q++ {
			if quad[q] < 0 || quad[q] > 25 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
