package geohash

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

func TestRadialFamilyEqualAreas(t *testing.T) {
	for _, k := range []int{1, 8, 40} {
		f, err := NewRadialFamily(k)
		if err != nil {
			t.Fatal(err)
		}
		if f.Count() != k {
			t.Fatalf("Count = %d", f.Count())
		}
		quarter := core.LuneArea / 4
		for i := 1; i < k; i++ { // the last radius is clamped to the rim
			want := quarter * float64(i) / float64(k)
			if got := radialArea(f.CurveR(i)); math.Abs(got-want) > 1e-6 {
				t.Errorf("k=%d ring %d: area %v, want %v", k, i, got, want)
			}
		}
		for i := 2; i <= k; i++ {
			if f.CurveR(i) <= f.CurveR(i-1) {
				t.Errorf("radii not increasing at %d", i)
			}
		}
	}
	if _, err := NewRadialFamily(0); err == nil {
		t.Error("k=0 should fail")
	}
}

func TestRadialAreaTotalIsQuarter(t *testing.T) {
	rmax := radialRho(math.Pi / 2)
	if got := radialArea(rmax * 1.01); math.Abs(got-core.LuneArea/4) > 1e-6 {
		t.Errorf("total quarter area = %v, want %v", got, core.LuneArea/4)
	}
	if radialArea(0) != 0 {
		t.Error("zero radius has zero area")
	}
}

func TestRadialRhoOnLuneBoundary(t *testing.T) {
	// For several angles, the exit point must lie on the lune boundary.
	for _, theta := range []float64{math.Pi / 2, 2, 2.5, 3, math.Pi} {
		rho := radialRho(theta)
		p := luneCenter.Add(geom.Pt(rho*math.Cos(theta), rho*math.Sin(theta)))
		d1 := p.Norm()
		d2 := p.Dist(geom.Pt(1, 0))
		onBoundary := math.Abs(d1-1) < 1e-9 || math.Abs(d2-1) < 1e-9
		if !onBoundary {
			t.Errorf("theta=%v: exit point %v not on lune boundary (%v, %v)", theta, p, d1, d2)
		}
	}
}

func TestRadialCharacteristicOnRings(t *testing.T) {
	f, err := NewRadialFamily(30)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{3, 12, 25} {
		r := f.CurveR(i)
		var pts []geom.Point
		for a := 0; a < 10; a++ {
			theta := math.Pi/2 + 0.4*float64(a)/10 + 0.05
			p := luneCenter.Add(geom.Pt(r*math.Cos(theta), r*math.Sin(theta)))
			if core.InLune(p) && QuarterOf(p) == Q1 {
				pts = append(pts, p)
			}
		}
		if len(pts) < 4 {
			t.Fatalf("ring %d: only %d samples", i, len(pts))
		}
		quad := f.Characteristic(pts)
		if quad[Q1] != i {
			t.Errorf("ring %d hashed to %d", i, quad[Q1])
		}
	}
}

func TestRadialTableIntegration(t *testing.T) {
	f, err := NewRadialFamily(25)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTableWith(f)
	rng := rand.New(rand.NewSource(3))
	// Insert clusters and verify self-retrieval through the table.
	var quads []Quadruple
	for id := 0; id < 20; id++ {
		var pts []geom.Point
		for len(pts) < 6 {
			p := geom.Pt(rng.Float64(), rng.Float64()*1.7-0.85)
			if core.InLune(p) {
				pts = append(pts, p)
			}
		}
		quad := f.Characteristic(pts)
		quads = append(quads, quad)
		if err := tab.Insert(id, quad); err != nil {
			t.Fatal(err)
		}
	}
	for id, quad := range quads {
		found := false
		for _, got := range tab.Lookup(quad, 0) {
			if got == id {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("shape %d not retrieved by its own quadruple", id)
		}
	}
}

// Both families implement CurveFamily.
var (
	_ CurveFamily = (*Family)(nil)
	_ CurveFamily = (*RadialFamily)(nil)
)
