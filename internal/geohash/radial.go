package geohash

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/geom"
)

// CurveFamily abstracts a family of hash curves over the lune quarters —
// §3 considers "different families of conic curves, trying to increase
// the retrieval accuracy, while minimizing the computational complexity".
// Family (unit-radius arcs through the lune tips) and RadialFamily
// (concentric arcs about the lune center) both implement it, so the hash
// table and the experiments can compare them.
type CurveFamily interface {
	// Count returns the number of curves per quarter.
	Count() int
	// DistToCurve returns the distance from a lune point to curve i
	// (1-based) of quarter q.
	DistToCurve(q Quarter, i int, p geom.Point) float64
	// Characteristic returns the per-quarter characteristic curve indices
	// of a vertex set (0 for quarters without vertices).
	Characteristic(pts []geom.Point) Quadruple
}

// Count implements CurveFamily for the unit-arc family.
func (f *Family) Count() int { return f.K }

// RadialFamily partitions each lune quarter into K equal-area rings with
// circular arcs centered at the lune's center (1/2, 0). The i-th curve is
// the circle of radius rᵢ where the quarter area within radius rᵢ equals
// (A₀/4)·(i/K). Distances to these curves are the cheapest of any conic
// family (one subtraction from a center distance), the "minimal
// computational complexity" end of §3's design space.
type RadialFamily struct {
	k  int
	rs []float64 // rs[i-1] = rᵢ, increasing
}

// luneCenter is the center of the radial family's circles.
var luneCenter = geom.Pt(0.5, 0)

// radialRho returns, for polar angle theta around the lune center
// (θ ∈ [π/2, π] spans the upper-left quarter), the radius at which the
// ray exits the lune: the binding constraint is the unit circle centered
// at (1,0) (by symmetry (0,0)'s circle binds the mirrored quarters).
func radialRho(theta float64) float64 {
	c := math.Cos(theta)
	return (c + math.Sqrt(c*c+3)) / 2
}

// radialArea returns the area of the upper-left quarter within radius r
// of the lune center (adaptive Simpson over the polar angle).
func radialArea(r float64) float64 {
	const n = 512 // even
	a, b := math.Pi/2, math.Pi
	h := (b - a) / n
	f := func(theta float64) float64 {
		rho := math.Min(r, radialRho(theta))
		return rho * rho / 2
	}
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// NewRadialFamily solves the K equal-area radii by bisection.
func NewRadialFamily(k int) (*RadialFamily, error) {
	if k < 1 {
		return nil, fmt.Errorf("geohash: radial family size %d < 1", k)
	}
	quarter := core.LuneArea / 4
	// The largest reachable radius is at θ = π/2.
	rmax := radialRho(math.Pi / 2)
	f := &RadialFamily{k: k, rs: make([]float64, k)}
	for i := 1; i <= k; i++ {
		target := quarter * float64(i) / float64(k)
		lo, hi := 0.0, rmax
		for iter := 0; iter < 80 && hi-lo > 1e-12; iter++ {
			mid := (lo + hi) / 2
			if radialArea(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		f.rs[i-1] = (lo + hi) / 2
	}
	// Numerical safety: the last ring reaches the quarter boundary.
	f.rs[k-1] = rmax
	return f, nil
}

// Count implements CurveFamily.
func (f *RadialFamily) Count() int { return f.k }

// CurveR returns the radius of the 1-based curve i.
func (f *RadialFamily) CurveR(i int) float64 {
	if i < 1 {
		i = 1
	}
	if i > f.k {
		i = f.k
	}
	return f.rs[i-1]
}

// DistToCurve implements CurveFamily. The family is mirror-symmetric, so
// the quarter does not change the geometry.
func (f *RadialFamily) DistToCurve(_ Quarter, i int, p geom.Point) float64 {
	return math.Abs(p.Dist(luneCenter) - f.CurveR(i))
}

// Characteristic implements CurveFamily: per quarter, the ring whose
// radius is nearest the quarter's mean center distance (the continuous
// minimizer of the average |d - r| is the median; the mean is within one
// ring for the tight vertex clusters hashing cares about, and both are
// then refined against the two neighboring rings).
func (f *RadialFamily) Characteristic(pts []geom.Point) Quadruple {
	var buckets [4][]float64 // center distances per quarter
	for _, p := range pts {
		if !core.InLune(p) {
			p = core.ClampToLune(p)
		}
		q := QuarterOf(p)
		buckets[q] = append(buckets[q], p.Dist(luneCenter))
	}
	var out Quadruple
	for q := 0; q < 4; q++ {
		ds := buckets[q]
		if len(ds) == 0 {
			out[q] = 0
			continue
		}
		// Median minimizes the average absolute deviation.
		med := medianOf(ds)
		// Locate the nearest ring by binary search, refine by comparing
		// the true average distance of the neighbors.
		idx := lowerBoundF(f.rs, med) + 1 // 1-based candidate
		best, bestD := 0, math.Inf(1)
		for _, c := range [3]int{idx - 1, idx, idx + 1} {
			if c < 1 || c > f.k {
				continue
			}
			var s float64
			for _, d := range ds {
				s += math.Abs(d - f.rs[c-1])
			}
			if s < bestD {
				best, bestD = c, s
			}
		}
		if best == 0 {
			best = f.k
		}
		out[q] = best
	}
	return out
}

func medianOf(v []float64) float64 {
	tmp := append([]float64(nil), v...)
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

func lowerBoundF(v []float64, x float64) int {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := (lo + hi) / 2
		if v[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
