package geohash

import (
	"fmt"
	"sort"
)

// Table is the geometric hash table: per quarter, a bucket per curve
// holding the ids of the shapes whose characteristic curve in that
// quarter is that curve. With enough curves each bucket holds a small,
// on-average-constant number of shapes, so lookup is logarithmic in the
// family size (binary search over curves) plus the constant bucket work
// (§3).
type Table struct {
	family  CurveFamily
	buckets [4]map[int][]int32
	quads   map[int32]Quadruple
}

// NewTable creates an empty table over the unit-arc curve family.
func NewTable(f *Family) *Table { return NewTableWith(f) }

// NewTableWith creates an empty table over any curve family (§3 considers
// several; see CurveFamily).
func NewTableWith(f CurveFamily) *Table {
	t := &Table{family: f, quads: make(map[int32]Quadruple)}
	for q := range t.buckets {
		t.buckets[q] = make(map[int][]int32)
	}
	return t
}

// Family returns the table's curve family.
func (t *Table) Family() CurveFamily { return t.family }

// Insert associates a shape id with its characteristic quadruple.
func (t *Table) Insert(id int, quad Quadruple) error {
	if _, dup := t.quads[int32(id)]; dup {
		return fmt.Errorf("geohash: shape %d already inserted", id)
	}
	t.quads[int32(id)] = quad
	for q := 0; q < 4; q++ {
		if c := quad[q]; c > 0 {
			t.buckets[q][c] = append(t.buckets[q][c], int32(id))
		}
	}
	return nil
}

// Len returns the number of inserted shapes.
func (t *Table) Len() int { return len(t.quads) }

// Quad returns the stored quadruple of a shape id.
func (t *Table) Quad(id int) (Quadruple, bool) {
	q, ok := t.quads[int32(id)]
	return q, ok
}

// Lookup returns the ids of all shapes associated, in at least one
// quarter, with the query quadruple's curve in that quarter or a curve
// within the given index radius of it (radius 0 = exact curve only;
// "neighboring curves may however be associated with dissimilar shapes",
// so callers re-rank with the similarity measure). The result is sorted
// and duplicate-free.
func (t *Table) Lookup(quad Quadruple, radius int) []int {
	if radius < 0 {
		radius = 0
	}
	seen := make(map[int32]bool)
	for q := 0; q < 4; q++ {
		c := quad[q]
		if c <= 0 {
			continue
		}
		for d := -radius; d <= radius; d++ {
			for _, id := range t.buckets[q][c+d] {
				seen[id] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for id := range seen {
		out = append(out, int(id))
	}
	sort.Ints(out)
	return out
}

// BucketStats reports the mean and maximum bucket occupancy over the
// non-empty buckets of all quarters — the "small, on the average, number
// of shapes associated with each hash curve" the paper relies on.
func (t *Table) BucketStats() (mean float64, max int) {
	total, n := 0, 0
	for q := 0; q < 4; q++ {
		for _, ids := range t.buckets[q] {
			total += len(ids)
			n++
			if len(ids) > max {
				max = len(ids)
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(total) / float64(n), max
}
