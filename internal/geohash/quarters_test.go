package geohash

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geom"
)

// Every quarter's characteristic computation must agree with Q1 under the
// lune's mirror symmetries: reflecting a point set into another quarter
// yields the same curve index there.
func TestCharacteristicSymmetryAcrossQuarters(t *testing.T) {
	f, err := NewFamily(40)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		// A point cluster strictly inside Q1.
		var pts []geom.Point
		for len(pts) < 8 {
			p := geom.Pt(rng.Float64()*0.45, rng.Float64()*0.8)
			if core.InLune(p) && p.Y > 0.02 {
				pts = append(pts, p)
			}
		}
		base := f.Characteristic(pts)
		mirror := func(m func(geom.Point) geom.Point) []geom.Point {
			out := make([]geom.Point, len(pts))
			for i, p := range pts {
				out[i] = m(p)
			}
			return out
		}
		q2 := f.Characteristic(mirror(func(p geom.Point) geom.Point { return geom.Pt(1-p.X, p.Y) }))
		q3 := f.Characteristic(mirror(func(p geom.Point) geom.Point { return geom.Pt(p.X, -p.Y) }))
		q4 := f.Characteristic(mirror(func(p geom.Point) geom.Point { return geom.Pt(1-p.X, -p.Y) }))
		if q2[Q2] != base[Q1] {
			t.Errorf("trial %d: Q2 mirror curve %d != Q1 %d", trial, q2[Q2], base[Q1])
		}
		if q3[Q3] != base[Q1] {
			t.Errorf("trial %d: Q3 mirror curve %d != Q1 %d", trial, q3[Q3], base[Q1])
		}
		if q4[Q4] != base[Q1] {
			t.Errorf("trial %d: Q4 mirror curve %d != Q1 %d", trial, q4[Q4], base[Q1])
		}
	}
}

func TestDistToCurveQuarterConsistency(t *testing.T) {
	f, _ := NewFamily(20)
	p1 := geom.Pt(0.2, 0.4)
	mirrors := map[Quarter]geom.Point{
		Q1: p1,
		Q2: geom.Pt(0.8, 0.4),
		Q3: geom.Pt(0.2, -0.4),
		Q4: geom.Pt(0.8, -0.4),
	}
	for i := 1; i <= 20; i += 6 {
		want := f.DistToCurve(Q1, i, p1)
		for q, p := range mirrors {
			if got := f.DistToCurve(q, i, p); math.Abs(got-want) > 1e-12 {
				t.Errorf("curve %d quarter %v: %v != %v", i, q, got, want)
			}
		}
	}
}

func TestCurveXClamping(t *testing.T) {
	f, _ := NewFamily(10)
	if f.CurveX(0) != f.CurveX(1) {
		t.Error("index below 1 should clamp")
	}
	if f.CurveX(99) != f.CurveX(10) {
		t.Error("index above K should clamp")
	}
}

func TestTableLookupRadiusWidening(t *testing.T) {
	f, _ := NewFamily(30)
	tab := NewTable(f)
	if err := tab.Insert(7, Quadruple{10, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	// Exact curve misses, radius 2 catches.
	if got := tab.Lookup(Quadruple{12, 0, 0, 0}, 0); len(got) != 0 {
		t.Errorf("radius 0: %v", got)
	}
	if got := tab.Lookup(Quadruple{12, 0, 0, 0}, 1); len(got) != 0 {
		t.Errorf("radius 1: %v", got)
	}
	if got := tab.Lookup(Quadruple{12, 0, 0, 0}, 2); len(got) != 1 || got[0] != 7 {
		t.Errorf("radius 2: %v", got)
	}
	// Negative radius behaves as 0.
	if got := tab.Lookup(Quadruple{10, 0, 0, 0}, -5); len(got) != 1 {
		t.Errorf("negative radius: %v", got)
	}
}

func TestBucketStatsEmpty(t *testing.T) {
	f, _ := NewFamily(5)
	tab := NewTable(f)
	if mean, max := tab.BucketStats(); mean != 0 || max != 0 {
		t.Errorf("empty table stats: %v %v", mean, max)
	}
}
