package qcache

import (
	"encoding/binary"
	"math"
	"testing"

	geosir "repro"
)

// FuzzFingerprint decodes arbitrary bytes into a search request and
// asserts the fingerprint's structural invariants: it never panics, it
// is deterministic (same request → same bytes, call after call), ok
// requests stay ok, and the refusal cases (NaN/Inf coordinates,
// degenerate or empty queries) refuse rather than alias. Affine-
// duplicate collision is deliberately NOT asserted here — arbitrary
// fuzz inputs can straddle the quantization grid, which is a documented
// cache miss, not a bug; the deterministic property tests in
// fingerprint_test.go cover collision with fixed seeds.
//
// Input encoding (all little-endian, permissive — short input just
// yields fewer points):
//
//	byte 0:      mode (mod 5 — one value past the valid modes)
//	byte 1:      k (int8)
//	byte 2:      ann (mod 4)
//	byte 3:      flags (bit0: closed, bit1: sketch split point)
//	bytes 4..:   float64 pairs → vertices
func FuzzFingerprint(f *testing.F) {
	mk := func(mode, k, ann, flags byte, coords ...float64) []byte {
		in := []byte{mode, k, ann, flags}
		for _, c := range coords {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], math.Float64bits(c))
			in = append(in, b[:]...)
		}
		return in
	}
	// A healthy square, the engine's own modes.
	f.Add(mk(0, 3, 0, 1, 0, 0, 12, 0, 12, 12, 0, 12))
	f.Add(mk(1, 5, 1, 1, 0, 0, 12, 0, 12, 12, 0, 12))
	f.Add(mk(2, 1, 2, 0, 0, 0, 4, 0, 0, 8))
	// Sketch mode with a split.
	f.Add(mk(3, 3, 0, 3, 0, 0, 12, 0, 12, 12, 0, 0, 3, 0, 3, 3))
	// Refusal seeds: NaN, Inf, degenerate, empty.
	f.Add(mk(0, 3, 0, 1, math.NaN(), 0, 1, 1, 2, 2))
	f.Add(mk(0, 3, 0, 1, math.Inf(1), 0, 1, 1, 2, 2))
	f.Add(mk(0, 3, 0, 1, 5, 5, 5, 5, 5, 5))
	f.Add(mk(0, 3, 0, 0))
	// Huge coordinates probing the quantizer's int64 range.
	f.Add(mk(0, 3, 0, 1, 1e300, 0, -1e300, 1, 0, 1e300))

	f.Fuzz(func(t *testing.T, in []byte) {
		req, epoch := decodeFuzzRequest(in)

		fp1, ok1 := SearchFingerprint(req, epoch)
		fp2, ok2 := SearchFingerprint(req, epoch)
		if ok1 != ok2 || (ok1 && fp1 != fp2) {
			t.Fatalf("fingerprint not deterministic: (%x,%v) vs (%x,%v)", fp1, ok1, fp2, ok2)
		}
		if !ok1 {
			return
		}
		if fp1 == (Fingerprint{}) {
			t.Fatal("ok fingerprint is the zero value")
		}
		// The epoch must separate: the same request against the next
		// snapshot generation can never alias.
		if fp3, ok3 := SearchFingerprint(req, epoch+1); ok3 && fp3 == fp1 {
			t.Fatal("epoch bump did not change the fingerprint")
		}
		// The scheduling knobs must not separate: they schedule, they
		// never change results.
		wreq := req
		wreq.Workers = 13
		wreq.Exec, wreq.MaxWorkers = geosir.ExecSequential, 2
		if fpW, okW := SearchFingerprint(wreq, epoch); !okW || fpW != fp1 {
			t.Fatal("scheduling knobs perturbed the fingerprint")
		}
		// Round-trip stability: a request rebuilt from the same wire bytes
		// (the save/load path a client would take) fingerprints the same.
		req2, epoch2 := decodeFuzzRequest(in)
		if fpR, okR := SearchFingerprint(req2, epoch2); !okR || fpR != fp1 {
			t.Fatal("rebuilt request fingerprints differently")
		}
	})
}

// decodeFuzzRequest maps fuzz bytes onto a SearchRequest + epoch. It is
// deterministic in its input — the round-trip assertion above depends
// on that.
func decodeFuzzRequest(in []byte) (geosir.SearchRequest, uint64) {
	var req geosir.SearchRequest
	if len(in) < 4 {
		return req, 1
	}
	req.Mode = geosir.Mode(int(in[0]) % 5)
	req.K = int(int8(in[1]))
	req.Ann = geosir.AnnMode(int(in[2]) % 4)
	flags := in[3]
	closed := flags&1 != 0

	var pts []geosir.Point
	for rest := in[4:]; len(rest) >= 16; rest = rest[16:] {
		x := math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(rest[8:16]))
		pts = append(pts, geosir.Pt(x, y))
	}
	mkShape := func(pts []geosir.Point) geosir.Shape {
		if closed {
			return geosir.NewPolygon(pts...)
		}
		return geosir.NewPolyline(pts...)
	}
	if req.Mode == geosir.ModeSketch {
		// Split the points into up to two sketch shapes.
		if flags&2 != 0 && len(pts) >= 6 {
			half := len(pts) / 2
			req.Sketch = []geosir.Shape{mkShape(pts[:half]), mkShape(pts[half:])}
		} else if len(pts) > 0 {
			req.Sketch = []geosir.Shape{mkShape(pts)}
		}
	} else if len(pts) > 0 {
		req.Query = mkShape(pts)
	}
	epoch := uint64(1)
	if len(in) >= 12 {
		epoch = binary.LittleEndian.Uint64(in[4:12]) % 1000
	}
	return req, epoch
}
