package qcache

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fpN builds a distinct fingerprint; the first bytes spread across
// shards like real SHA-256 output would.
func fpN(n int) Fingerprint {
	var fp Fingerprint
	fp[0] = byte(n)
	fp[1] = byte(n >> 8)
	fp[2] = byte(n >> 16)
	fp[3] = byte(n >> 24)
	fp[31] = byte(n)
	return fp
}

func mustDo(t *testing.T, c *Cache, fp Fingerprint, body string) Disposition {
	t.Helper()
	got, disp, err := c.Do(context.Background(), fp, func() ([]byte, error) {
		return []byte(body), nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if string(got) != body && disp == Miss {
		t.Fatalf("Do returned %q, want %q", got, body)
	}
	return disp
}

func TestNilCacheIsBypass(t *testing.T) {
	var c *Cache = New(Config{MaxBytes: 0})
	if c != nil {
		t.Fatal("MaxBytes 0 must mean caching off (nil cache)")
	}
	body, disp, err := c.Do(context.Background(), fpN(1), func() ([]byte, error) {
		return []byte("x"), nil
	})
	if err != nil || string(body) != "x" || disp != Bypass {
		t.Fatalf("nil Do = (%q, %v, %v), want (x, bypass, nil)", body, disp, err)
	}
	if _, ok := c.Get(fpN(1)); ok {
		t.Fatal("nil Get must miss")
	}
	c.Purge()
	c.Bypassed()
	if st := c.Snapshot(); st != (Stats{}) {
		t.Fatalf("nil Snapshot = %+v, want zero", st)
	}
}

func TestHitMissAndStats(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	if d := mustDo(t, c, fpN(1), "alpha"); d != Miss {
		t.Fatalf("first Do = %v, want miss", d)
	}
	if d := mustDo(t, c, fpN(1), "SHOULD NOT RECOMPUTE"); d != Hit {
		t.Fatalf("second Do = %v, want hit", d)
	}
	body, ok := c.Get(fpN(1))
	if !ok || string(body) != "alpha" {
		t.Fatalf("Get = (%q, %v), want original body", body, ok)
	}
	c.Bypassed()
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Sets != 1 || st.Bypasses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if want := 0.5; st.HitRate != want {
		t.Fatalf("hit rate = %v, want %v", st.HitRate, want)
	}
}

func TestErrorsAreNeverCached(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 3; i++ {
		_, disp, err := c.Do(context.Background(), fpN(2), func() ([]byte, error) {
			calls++
			return nil, boom
		})
		if !errors.Is(err, boom) || disp != Miss {
			t.Fatalf("Do %d = (%v, %v)", i, disp, err)
		}
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times, want 3 (errors must not stick)", calls)
	}
	// After a success, the error history is irrelevant.
	if d := mustDo(t, c, fpN(2), "ok"); d != Miss {
		t.Fatalf("post-error Do = %v, want miss", d)
	}
	if d := mustDo(t, c, fpN(2), ""); d != Hit {
		t.Fatalf("post-success Do = %v, want hit", d)
	}
}

func TestByteBoundEviction(t *testing.T) {
	// One shard so the LRU order is observable; budget fits two bodies
	// plus overhead but not three.
	body := bytes.Repeat([]byte("x"), 1024)
	c := New(Config{MaxBytes: 2*(1024+entryOverhead) + 64, Shards: 1, MaxEntries: 1024})
	for i := 0; i < 3; i++ {
		mustDo(t, c, fpN(i), string(body))
	}
	st := c.Snapshot()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	if _, ok := c.Get(fpN(0)); ok {
		t.Fatal("LRU tail (first insert) should have been evicted")
	}
	if _, ok := c.Get(fpN(2)); !ok {
		t.Fatal("most recent insert must survive")
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 1024)
	c := New(Config{MaxBytes: 2*(1024+entryOverhead) + 64, Shards: 1, MaxEntries: 1024})
	mustDo(t, c, fpN(0), string(body))
	mustDo(t, c, fpN(1), string(body))
	mustDo(t, c, fpN(0), "") // hit: 0 becomes most recent
	mustDo(t, c, fpN(2), string(body))
	if _, ok := c.Get(fpN(1)); ok {
		t.Fatal("1 was least recent and should be gone")
	}
	if _, ok := c.Get(fpN(0)); !ok {
		t.Fatal("touched entry 0 must survive the eviction")
	}
}

func TestEntryCountBound(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, MaxEntries: 4, Shards: 1})
	for i := 0; i < 10; i++ {
		mustDo(t, c, fpN(i), "tiny")
	}
	if st := c.Snapshot(); st.Entries > 4 {
		t.Fatalf("entries = %d, want ≤ 4", st.Entries)
	}
}

func TestOversizedEntryRefused(t *testing.T) {
	c := New(Config{MaxBytes: 1024, Shards: 1})
	small := "s"
	mustDo(t, c, fpN(1), small)
	huge := string(bytes.Repeat([]byte("x"), 4096))
	if d := mustDo(t, c, fpN(2), huge); d != Miss {
		t.Fatalf("oversized Do = %v, want miss", d)
	}
	if _, ok := c.Get(fpN(2)); ok {
		t.Fatal("oversized entry must not be stored")
	}
	if _, ok := c.Get(fpN(1)); !ok {
		t.Fatal("oversized insert must not evict everything else")
	}
}

func TestPurge(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	for i := 0; i < 50; i++ {
		mustDo(t, c, fpN(i), fmt.Sprintf("body-%d", i))
	}
	c.Purge()
	st := c.Snapshot()
	if st.Entries != 0 || st.Bytes != 0 || st.Purges != 1 {
		t.Fatalf("post-purge stats = %+v", st)
	}
	for i := 0; i < 50; i++ {
		if _, ok := c.Get(fpN(i)); ok {
			t.Fatalf("entry %d survived the purge", i)
		}
	}
	// The cache still works after a purge.
	if d := mustDo(t, c, fpN(1), "fresh"); d != Miss {
		t.Fatalf("post-purge Do = %v, want miss", d)
	}
}

// TestSingleflightCoalescing: M concurrent identical requests run
// compute exactly once; everyone gets the full body.
func TestSingleflightCoalescing(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	const m = 16
	var calls atomic.Int64
	release := make(chan struct{})

	var wg sync.WaitGroup
	disps := make([]Disposition, m)
	bodies := make([]string, m)
	errs := make([]error, m)
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, disp, err := c.Do(context.Background(), fpN(9), func() ([]byte, error) {
				calls.Add(1)
				<-release // hold every follower in the waiter path
				return []byte("shared"), nil
			})
			bodies[i], disps[i], errs[i] = string(body), disp, err
		}(i)
	}
	// Wait until the leader is computing and all m-1 followers are parked.
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Waiting != m-1 {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never parked: %+v", c.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	var misses, coalesced int
	for i := 0; i < m; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if bodies[i] != "shared" {
			t.Fatalf("caller %d body = %q", i, bodies[i])
		}
		switch disps[i] {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		default:
			t.Fatalf("caller %d disposition = %v", i, disps[i])
		}
	}
	if misses != 1 || coalesced != m-1 {
		t.Fatalf("misses=%d coalesced=%d, want 1 and %d", misses, coalesced, m-1)
	}
	if st := c.Snapshot(); st.Waiting != 0 {
		t.Fatalf("waiting = %d after completion", st.Waiting)
	}
}

// TestWaiterCancellationDoesNotPoison: a waiter abandoning the flight
// gets its own ctx error; the leader and the remaining waiter still get
// the real result, and the entry is stored.
func TestWaiterCancellationDoesNotPoison(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	computing := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), fpN(5), func() ([]byte, error) {
			close(computing) // the flight is registered; waiters will coalesce
			<-release
			return []byte("result"), nil
		})
		leaderDone <- err
	}()
	<-computing

	// Park one cancellable waiter, then cancel it mid-flight.
	ctx, cancel := context.WithCancel(context.Background())
	parked := make(chan error, 1)
	go func() {
		_, disp, err := c.Do(ctx, fpN(5), func() ([]byte, error) {
			return []byte("WRONG: waiter must not compute"), nil
		})
		if disp != Coalesced {
			err = fmt.Errorf("waiter disposition = %v, want coalesced", disp)
		}
		parked <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Snapshot().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancellable waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-parked; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	// A second, patient waiter still gets the shared result.
	patient := make(chan string, 1)
	go func() {
		body, _, _ := c.Do(context.Background(), fpN(5), func() ([]byte, error) {
			return []byte("WRONG"), nil
		})
		patient <- string(body)
	}()
	deadline = time.Now().Add(5 * time.Second)
	for c.Snapshot().Waiting == 0 {
		if time.Now().After(deadline) {
			t.Fatal("patient waiter never parked")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader err = %v (a waiter's cancellation leaked in?)", err)
	}
	if got := <-patient; got != "result" {
		t.Fatalf("patient waiter got %q, want the leader's result", got)
	}
	if body, ok := c.Get(fpN(5)); !ok || string(body) != "result" {
		t.Fatalf("entry after flight = (%q, %v)", body, ok)
	}
}

// TestConcurrentChurn hammers Do/Get/Purge from many goroutines; run
// under -race this is the data-race proof for the shard locking.
func TestConcurrentChurn(t *testing.T) {
	c := New(Config{MaxBytes: 64 << 10, Shards: 4, MaxEntries: 256})
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fp := fpN(i % 97)
				body, _, err := c.Do(ctx, fp, func() ([]byte, error) {
					return []byte(fmt.Sprintf("v-%d", i%97)), nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if want := fmt.Sprintf("v-%d", i%97); string(body) != want {
					t.Errorf("worker %d: got %q want %q (cross-key corruption)", w, body, want)
					return
				}
				c.Get(fpN((i + 13) % 97))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			time.Sleep(2 * time.Millisecond)
			c.Purge()
			c.Snapshot()
		}
		close(stop)
	}()
	wg.Wait()
	if st := c.Snapshot(); st.Bytes < 0 {
		t.Fatalf("negative byte accounting after churn: %+v", st)
	}
}
