package qcache

import (
	"math"
	"math/rand"
	"testing"

	geosir "repro"
)

// square returns a closed unit-side square anchored at (x, y), scaled by
// side.
func square(x, y, side float64) geosir.Shape {
	return geosir.NewPolygon(geosir.Pt(x, y), geosir.Pt(x+side, y),
		geosir.Pt(x+side, y+side), geosir.Pt(x, y+side))
}

func lshape(x, y, s float64) geosir.Shape {
	return geosir.NewPolygon(
		geosir.Pt(x, y), geosir.Pt(x+2*s, y), geosir.Pt(x+2*s, y+s),
		geosir.Pt(x+s, y+s), geosir.Pt(x+s, y+3*s), geosir.Pt(x, y+3*s))
}

// transform applies rotation by theta, uniform scale, then translation —
// the similarity group the retrieval (and hence the fingerprint) must be
// invariant under.
func transform(q geosir.Shape, theta, scale, dx, dy float64) geosir.Shape {
	c, s := math.Cos(theta), math.Sin(theta)
	out := q
	out.Pts = make([]geosir.Point, len(q.Pts))
	for i, p := range q.Pts {
		x := scale*(c*p.X-s*p.Y) + dx
		y := scale*(s*p.X+c*p.Y) + dy
		out.Pts[i] = geosir.Pt(x, y)
	}
	return out
}

func mustFP(t *testing.T, req geosir.SearchRequest, epoch uint64) Fingerprint {
	t.Helper()
	fp, ok := SearchFingerprint(req, epoch)
	if !ok {
		t.Fatalf("SearchFingerprint(%+v) not fingerprintable", req)
	}
	return fp
}

// TestFingerprintAffineInvariance is the core property the cache keys
// on: every similarity-transformed placement of one query collides onto
// one fingerprint, across modes, k, and ann settings. The seed is fixed
// so the transform parameters never wander near a quantization boundary
// flake.
func TestFingerprintAffineInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := []geosir.Shape{square(0, 0, 12), lshape(0, 0, 2)}
	modes := []geosir.Mode{geosir.ModeAuto, geosir.ModeExact, geosir.ModeApproximate}
	anns := []geosir.AnnMode{geosir.AnnOff, geosir.AnnVerify, geosir.AnnApprox}
	for _, base := range shapes {
		for _, mode := range modes {
			for _, ann := range anns {
				for _, k := range []int{1, 3, 10} {
					req := geosir.SearchRequest{Query: base, K: k, Mode: mode, Ann: ann}
					want := mustFP(t, req, 1)
					for trial := 0; trial < 25; trial++ {
						theta := rng.Float64() * 2 * math.Pi
						scale := 0.25 + rng.Float64()*8
						dx := (rng.Float64() - 0.5) * 2000
						dy := (rng.Float64() - 0.5) * 2000
						req.Query = transform(base, theta, scale, dx, dy)
						got := mustFP(t, req, 1)
						if got != want {
							t.Fatalf("mode=%v ann=%v k=%d trial %d (θ=%.3f s=%.3f d=(%.1f,%.1f)): fingerprint diverged",
								mode, ann, k, trial, theta, scale, dx, dy)
						}
					}
				}
			}
		}
	}
}

// TestFingerprintSeparation: anything that can change the response bytes
// must change the fingerprint.
func TestFingerprintSeparation(t *testing.T) {
	base := geosir.SearchRequest{Query: square(0, 0, 12), K: 3, Mode: geosir.ModeAuto}
	fp := mustFP(t, base, 1)

	cases := []struct {
		name string
		req  geosir.SearchRequest
		ep   uint64
	}{
		{"different shape", geosir.SearchRequest{Query: lshape(0, 0, 2), K: 3, Mode: geosir.ModeAuto}, 1},
		{"different k", geosir.SearchRequest{Query: square(0, 0, 12), K: 4, Mode: geosir.ModeAuto}, 1},
		{"different mode", geosir.SearchRequest{Query: square(0, 0, 12), K: 3, Mode: geosir.ModeExact}, 1},
		{"different ann", geosir.SearchRequest{Query: square(0, 0, 12), K: 3, Mode: geosir.ModeAuto, Ann: geosir.AnnApprox}, 1},
		{"different epoch", base, 2},
	}
	for _, tc := range cases {
		if got := mustFP(t, tc.req, tc.ep); got == fp {
			t.Errorf("%s: fingerprint did not separate", tc.name)
		}
	}

	// The scheduling knobs are scheduling, not semantics: none of them
	// may separate.
	w := base
	w.Workers = 7
	if got := mustFP(t, w, 1); got != fp {
		t.Error("Workers changed the fingerprint; it must not (it never changes results)")
	}
	x := base
	x.Exec, x.MaxWorkers = geosir.ExecSequential, 2
	if got := mustFP(t, x, 1); got != fp {
		t.Error("Exec/MaxWorkers changed the fingerprint; they must not (they never change results)")
	}
}

// TestFingerprintSketch: sketch fingerprints cover every shape in
// request order (PerShape distances come back positionally).
func TestFingerprintSketch(t *testing.T) {
	a, b := square(0, 0, 12), lshape(0, 0, 2)
	mk := func(sketch ...geosir.Shape) geosir.SearchRequest {
		return geosir.SearchRequest{Sketch: sketch, K: 3, Mode: geosir.ModeSketch}
	}
	ab := mustFP(t, mk(a, b), 1)
	ba := mustFP(t, mk(b, a), 1)
	if ab == ba {
		t.Error("sketch shape order must be significant")
	}
	if aa := mustFP(t, mk(a, a), 1); aa == ab {
		t.Error("different sketch contents must separate")
	}
	// Affine-equivalent sketches collide.
	a2 := transform(a, 1.1, 3, 40, -17)
	b2 := transform(b, -0.6, 0.5, -3, 9)
	if got := mustFP(t, mk(a2, b2), 1); got != ab {
		t.Error("affine-equivalent sketch diverged")
	}
	// The single-shape Query field is ignored in sketch mode.
	withQ := mk(a, b)
	withQ.Query = b
	if got := mustFP(t, withQ, 1); got != ab {
		t.Error("sketch fingerprint must not depend on the unused Query field")
	}
}

// TestFingerprintRefusals: requests the engine would reject (or that
// cannot be canonicalized) refuse to fingerprint rather than risk
// aliasing.
func TestFingerprintRefusals(t *testing.T) {
	nan := geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(math.NaN(), 1), geosir.Pt(1, 1))
	inf := geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(math.Inf(1), 1), geosir.Pt(1, 1))
	degenerate := geosir.NewPolygon(geosir.Pt(0, 0), geosir.Pt(0, 0), geosir.Pt(0, 0))
	cases := []struct {
		name string
		req  geosir.SearchRequest
	}{
		{"empty query", geosir.SearchRequest{K: 3, Mode: geosir.ModeAuto}},
		{"NaN vertex", geosir.SearchRequest{Query: nan, K: 3}},
		{"Inf vertex", geosir.SearchRequest{Query: inf, K: 3}},
		{"degenerate (zero diameter)", geosir.SearchRequest{Query: degenerate, K: 3}},
		{"empty sketch", geosir.SearchRequest{K: 3, Mode: geosir.ModeSketch}},
		{"NaN sketch member", geosir.SearchRequest{Sketch: []geosir.Shape{square(0, 0, 12), nan}, K: 3, Mode: geosir.ModeSketch}},
		{"unknown mode", geosir.SearchRequest{Query: square(0, 0, 12), K: 3, Mode: geosir.Mode(99)}},
	}
	for _, tc := range cases {
		if _, ok := SearchFingerprint(tc.req, 1); ok {
			t.Errorf("%s: expected refusal", tc.name)
		}
	}
}

// TestFingerprintDeterminism: same request, same bytes — across repeated
// calls and across polyline/polygon closedness.
func TestFingerprintDeterminism(t *testing.T) {
	req := geosir.SearchRequest{Query: square(3, 4, 5), K: 2, Mode: geosir.ModeApproximate}
	fp := mustFP(t, req, 9)
	for i := 0; i < 100; i++ {
		if got := mustFP(t, req, 9); got != fp {
			t.Fatalf("call %d: fingerprint not deterministic", i)
		}
	}
	// An open polyline tracing the same vertices is a different shape.
	open := geosir.NewPolyline(req.Query.Pts...)
	oreq := req
	oreq.Query = open
	if got := mustFP(t, oreq, 9); got == fp {
		t.Error("open polyline must not collide with the closed polygon")
	}
}
